/// Reproduces Table III: component-graph counts and the total number of
/// subsystems S for each instance.
///
/// Paper values: ieee13 29/28/7 -> S=50; ieee123 147/146/43 -> S=250;
/// ieee8500 11932/14291/1222 -> S=25001. The synthetic feeders hit these
/// counts exactly by construction.

#include "bench/common.hpp"
#include "opf/stats.hpp"

int main() {
  dopf::bench::header("Table III", "component counts of the decomposition");
  std::printf("%-14s %10s %10s %12s %10s\n", "instance", "nodes", "lines",
              "leaf-nodes", "S");
  for (const std::string& name : dopf::bench::instance_names()) {
    const auto inst = dopf::runtime::make_instance(name);
    const auto counts = dopf::opf::component_counts(inst.net, inst.problem);
    std::printf("%-14s %10zu %10zu %12zu %10zu\n", name.c_str(), counts.nodes,
                counts.lines, counts.leaves, counts.S);
  }
  std::printf(
      "\npaper:   ieee13 29/28/7 S=50   ieee123 147/146/43 S=250   "
      "ieee8500 11932/14291/1222 S=25001\n");
  return 0;
}
