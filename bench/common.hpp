#pragma once

/// Shared plumbing for the reproduction benches (one binary per paper table
/// or figure). Environment knobs:
///   DOPF_BENCH_INSTANCES  comma list of instances
///                         (default "ieee13,ieee123,ieee8500")
///   DOPF_BENCH_FULL=1     run everything to convergence, including the
///                         benchmark ADMM on the 8500-bus instance (slow on
///                         one host core); otherwise its total time is
///                         projected from measured per-iteration cost.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "runtime/instances.hpp"

namespace dopf::bench {

inline std::vector<std::string> instance_names() {
  const char* env = std::getenv("DOPF_BENCH_INSTANCES");
  const std::string csv = env != nullptr && *env != '\0'
                              ? env
                              : "ieee13,ieee123,ieee8500";
  std::vector<std::string> names;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string token =
        csv.substr(start, comma == std::string::npos ? std::string::npos
                                                     : comma - start);
    if (!token.empty()) names.push_back(token);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return names;
}

inline bool full_mode() {
  const char* env = std::getenv("DOPF_BENCH_FULL");
  return env != nullptr && std::strcmp(env, "1") == 0;
}

inline void header(const char* id, const char* what) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id, what);
  std::printf("==============================================================\n");
}

}  // namespace dopf::bench
