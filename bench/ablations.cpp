/// Ablations of the design choices DESIGN.md calls out (not in the paper's
/// evaluation, but cheap to quantify with the same harness):
///   1. leaf merging on/off       — component count & iteration count
///   2. residual balancing (rho adaptation, [29]) on/off
///   3. even-count vs load-balanced (LPT) partitioning of components
///   4. row-reduction preprocessing: rows dropped per instance
///   5. over-relaxation sweep     — iterations vs alpha
///   6. message quantization      — iterations & traffic vs bits ([37])

#include "bench/common.hpp"
#include "core/admm.hpp"
#include "runtime/cluster.hpp"
#include "runtime/measure.hpp"

int main() {
  dopf::bench::header("Ablations", "leaf merge / adaptive rho / partition / "
                                   "row reduction");
  dopf::core::AdmmOptions opt;
  opt.check_every = 10;
  opt.max_iterations = 200000;

  for (const std::string& name : dopf::bench::instance_names()) {
    std::printf("\n%s\n", name.c_str());

    // --- 1. leaf merging.
    for (bool merge : {true, false}) {
      dopf::opf::DecomposeOptions dopts;
      dopts.merge_leaves = merge;
      const auto inst = dopf::runtime::make_instance(name, dopts);
      dopf::core::SolverFreeAdmm admm(inst.problem, opt);
      const auto res = admm.solve();
      std::printf(
          "  leaf-merge %-3s : S = %6zu, iterations = %6d, serial local "
          "%.3e s/iter\n",
          merge ? "on" : "off", inst.problem.num_components(),
          res.iterations,
          res.timing.local_update / std::max(1, res.timing.iterations));
    }

    const auto inst = dopf::runtime::make_instance(name);

    // --- 2. residual balancing.
    for (bool adaptive : {false, true}) {
      dopf::core::AdmmOptions aopt = opt;
      aopt.adaptive_rho = adaptive;
      dopf::core::SolverFreeAdmm admm(inst.problem, aopt);
      const auto res = admm.solve();
      std::printf(
          "  adaptive-rho %-3s: iterations = %6d (final rho %.1f), "
          "converged = %d\n",
          adaptive ? "on" : "off", res.iterations, res.final_rho,
          res.converged);
    }

    // --- 3. partitioning rule at 16 ranks.
    {
      const auto costs =
          dopf::runtime::measure_solver_free(inst.problem, opt, 30);
      const auto even =
          dopf::runtime::block_partition(costs.component_seconds.size(), 16);
      const auto lpt =
          dopf::runtime::lpt_partition(costs.component_seconds, 16);
      std::printf(
          "  partition @16  : even-count makespan %.3e s, LPT makespan "
          "%.3e s (%.1f%% better)\n",
          dopf::runtime::makespan(even, costs.component_seconds),
          dopf::runtime::makespan(lpt, costs.component_seconds),
          100.0 * (1.0 - dopf::runtime::makespan(lpt,
                                                 costs.component_seconds) /
                             dopf::runtime::makespan(
                                 even, costs.component_seconds)));
    }

    // --- 5. over-relaxation sweep.
    for (double alpha : {1.0, 1.6, 1.8}) {
      dopf::core::AdmmOptions ropt = opt;
      ropt.relaxation = alpha;
      dopf::core::SolverFreeAdmm admm(inst.problem, ropt);
      const auto res = admm.solve();
      std::printf("  relaxation %.1f : iterations = %6d, converged = %d\n",
                  alpha, res.iterations, res.converged);
    }

    // --- 6. message quantization (operator<->agent traffic compression).
    for (int bits : {24, 16}) {
      dopf::core::AdmmOptions qopt = opt;
      qopt.quantize_bits = bits;
      qopt.max_iterations = 100000;
      dopf::core::SolverFreeAdmm admm(inst.problem, qopt);
      const auto res = admm.solve();
      const double traffic = bits == 0 ? 1.0 : bits / 64.0;
      std::printf(
          "  quantize %2d bit: iterations = %6d, converged = %d, traffic "
          "x%.2f\n",
          bits, res.iterations, res.converged, traffic);
    }

    // --- 4. row reduction.
    {
      dopf::opf::DecomposeOptions raw;
      raw.row_reduce = false;
      const auto unreduced = dopf::runtime::make_instance(name, raw);
      std::size_t before = 0, after = 0;
      for (const auto& comp : unreduced.problem.components) {
        before += comp.num_rows();
      }
      for (const auto& comp : inst.problem.components) {
        after += comp.num_rows();
      }
      std::printf(
          "  row reduction  : %zu -> %zu constraint rows (%zu dependent "
          "rows dropped)\n",
          before, after, before - after);
    }
  }
  return 0;
}
