/// Reproduces Table II: the number of rows and columns of the centralized
/// constraint matrix A in (7) for each test instance.
///
/// Paper values: IEEE13 (456, 454); IEEE123 (1834, 1834);
/// IEEE8500 (86114, 87285). Our feeders are calibrated stand-ins (see
/// DESIGN.md), so sizes match in order of magnitude, not digit for digit.

#include "bench/common.hpp"
#include "opf/stats.hpp"

int main() {
  dopf::bench::header("Table II", "size of A in the centralized LP (7)");
  std::printf("%-14s %10s %10s %12s\n", "instance", "rows", "cols",
              "nonzeros");
  for (const std::string& name : dopf::bench::instance_names()) {
    const auto inst = dopf::runtime::make_instance(name);
    const auto sizes = dopf::opf::model_sizes(inst.model);
    std::printf("%-14s %10zu %10zu %12zu\n", name.c_str(), sizes.rows,
                sizes.cols, sizes.nonzeros);
  }
  std::printf(
      "\npaper:   ieee13 (456, 454)   ieee123 (1834, 1834)   "
      "ieee8500 (86114, 87285)\n");
  return 0;
}
