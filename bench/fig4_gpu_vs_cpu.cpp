/// Reproduces Figure 4: total time to convergence, one GPU vs 16 CPUs
/// (log-scaled axis in the paper; we print the values and the ratio).
///
/// Expected shape: the GPU advantage grows with instance size, reaching
/// ~50x on the 8500-bus system in the paper.

#include "bench/common.hpp"
#include "core/admm.hpp"
#include "runtime/cluster.hpp"
#include "runtime/measure.hpp"
#include "simt/gpu_admm.hpp"

int main() {
  dopf::bench::header("Figure 4", "total time: 1 GPU vs 16 CPUs");
  dopf::core::AdmmOptions opt;
  opt.check_every = 10;
  opt.max_iterations = 200000;

  std::printf("%-14s %10s %14s %14s %10s\n", "instance", "iters",
              "16 CPUs [s]", "1 GPU [s]", "speedup");
  for (const std::string& name : dopf::bench::instance_names()) {
    const auto inst = dopf::runtime::make_instance(name);

    // Iterations to convergence (identical on both platforms — Fig. 2).
    dopf::core::SolverFreeAdmm cpu(inst.problem, opt);
    const auto res = cpu.solve();

    // 16-CPU per-iteration time from measured component costs.
    const auto costs =
        dopf::runtime::measure_solver_free(inst.problem, opt, 30);
    const dopf::runtime::VirtualCluster cluster(16,
                                                dopf::runtime::CommModel{});
    const auto phase = cluster.price_local_update(costs.component_seconds,
                                                  costs.payload_vars);
    const double cpu_iter = phase.total() + costs.global_update_seconds +
                            costs.dual_update_seconds;

    // 1-GPU per-iteration time from the SIMT cost model.
    dopf::simt::GpuAdmmOptions gopt;
    gopt.admm = opt;
    gopt.admm.max_iterations = 30;
    gopt.admm.check_every = 1000;
    dopf::simt::GpuSolverFreeAdmm gpu(inst.problem, gopt);
    gpu.solve();
    const double gpu_iter = gpu.kernel_averages().total();

    const double cpu_total = cpu_iter * res.iterations;
    const double gpu_total = gpu_iter * res.iterations;
    std::printf("%-14s %10d %14.2f %14.2f %9.1fx\n", name.c_str(),
                res.iterations, cpu_total, gpu_total, cpu_total / gpu_total);
  }
  std::printf("\npaper: speedup grows with size, ~50x at ieee8500\n");
  return 0;
}
