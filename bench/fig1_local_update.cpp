/// Reproduces Figure 1: average wall-clock time of the local-update phase
/// per ADMM iteration, split into (b) subproblem computation and (c)
/// aggregator communication, as the number of CPUs grows — for the
/// solver-free local update (15) vs the benchmark's per-component QP.
///
/// Expected shape (paper): computation falls with CPUs, communication rises;
/// the benchmark needs many CPUs to close the gap while the solver-free
/// update is faster even with very few.

#include "bench/common.hpp"
#include "core/admm.hpp"
#include "runtime/cluster.hpp"
#include "runtime/measure.hpp"

int main() {
  dopf::bench::header("Figure 1",
                      "local-update time vs #CPUs: compute + communication");
  dopf::core::AdmmOptions opt;
  const int kMeasureIters = 30;
  const std::vector<std::size_t> cpu_counts = {1,  2,  4,   8,   16,
                                               32, 64, 128, 256, 512};

  for (const std::string& name : dopf::bench::instance_names()) {
    const auto inst = dopf::runtime::make_instance(name);
    const auto ours =
        dopf::runtime::measure_solver_free(inst.problem, opt, kMeasureIters);
    const auto base =
        dopf::runtime::measure_benchmark(inst.problem, opt, kMeasureIters);

    std::printf("\n%s (S = %zu components)\n", name.c_str(),
                inst.problem.num_components());
    std::printf("%6s | %12s %12s %12s | %12s %12s %12s\n", "CPUs",
                "ours comp", "ours comm", "ours total", "bench comp",
                "bench comm", "bench total");
    for (std::size_t cpus : cpu_counts) {
      const dopf::runtime::VirtualCluster cluster(cpus,
                                                  dopf::runtime::CommModel{});
      const auto po =
          cluster.price_local_update(ours.component_seconds,
                                     ours.payload_vars);
      const auto pb =
          cluster.price_local_update(base.component_seconds,
                                     base.payload_vars);
      std::printf(
          "%6zu | %12.3e %12.3e %12.3e | %12.3e %12.3e %12.3e\n", cpus,
          po.compute_seconds, po.communication_seconds, po.total(),
          pb.compute_seconds, pb.communication_seconds, pb.total());
    }
  }
  std::printf(
      "\nexpected shape: compute falls ~1/N, comm rises ~N; ours beats the "
      "benchmark at every N\n");
  return 0;
}
