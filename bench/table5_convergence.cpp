/// Reproduces Table V: total time and iterations to reach the termination
/// criterion (16) with eps_rel = 1e-3 and rho = 100, for the solver-free
/// ADMM ("ours", 16 CPUs) vs the benchmark ADMM with bound-constrained QP
/// subproblems (32 / 128 / 512 CPUs as in the paper).
///
/// Wall-clock methodology (DESIGN.md substitution): per-component compute
/// seconds are *measured* on this host, then projected onto a virtual
/// cluster (alpha-beta communication model, makespan accounting). Absolute
/// seconds therefore differ from the paper's Bebop cluster; the shape —
/// who wins and by roughly what factor, growing with instance size — is the
/// reproduced claim (paper: 5.7x / 23x / 67x).
///
/// On one host core the benchmark ADMM cannot be run to convergence on the
/// 8500-bus instance in reasonable time; by default its iteration count is
/// projected as (ours' iterations) x (the 13/123 iteration ratio trend ~ 1),
/// matching the paper's observation that both methods need a similar
/// iteration count. Set DOPF_BENCH_FULL=1 to run it for real.

#include <cmath>

#include "baseline/benchmark_admm.hpp"
#include "bench/common.hpp"
#include "core/admm.hpp"
#include "runtime/cluster.hpp"
#include "runtime/measure.hpp"

namespace {

struct MethodReport {
  int cpus = 0;
  double time_s = 0.0;
  long long iterations = 0;
  bool projected = false;
};

int paper_benchmark_cpus(const std::string& name) {
  if (name == "ieee13") return 32;
  if (name == "ieee123") return 128;
  if (name == "ieee8500") return 512;
  return 64;
}

double per_iteration_seconds(const dopf::runtime::IterationCosts& costs,
                             int cpus) {
  const dopf::runtime::VirtualCluster cluster(cpus,
                                              dopf::runtime::CommModel{});
  const auto phase =
      cluster.price_local_update(costs.component_seconds, costs.payload_vars);
  return phase.total() + costs.global_update_seconds +
         costs.dual_update_seconds;
}

}  // namespace

int main() {
  dopf::bench::header("Table V",
                      "total time & iterations to convergence "
                      "(eps_rel=1e-3, rho=100)");
  const bool full = dopf::bench::full_mode();
  std::printf("%-14s | %6s %12s %10s | %6s %12s %10s | %8s\n", "instance",
              "CPUs", "ours[s]", "iters", "CPUs", "benchmark[s]", "iters",
              "speedup");

  dopf::core::AdmmOptions opt;  // paper defaults
  opt.check_every = 10;
  opt.max_iterations = 200000;

  for (const std::string& name : dopf::bench::instance_names()) {
    const auto inst = dopf::runtime::make_instance(name);

    // Measured per-iteration costs (30 iterations with per-component timers).
    const auto ours_costs =
        dopf::runtime::measure_solver_free(inst.problem, opt, 30);
    const auto base_costs =
        dopf::runtime::measure_benchmark(inst.problem, opt, 30);

    MethodReport ours;
    ours.cpus = 16;
    {
      dopf::core::SolverFreeAdmm admm(inst.problem, opt);
      const auto res = admm.solve();
      ours.iterations = res.iterations;
      ours.time_s =
          per_iteration_seconds(ours_costs, ours.cpus) * res.iterations;
      if (!res.converged) std::printf("WARNING: ours did not converge\n");
    }

    MethodReport base;
    base.cpus = paper_benchmark_cpus(name);
    const bool run_baseline = full || name != "ieee8500";
    if (run_baseline) {
      dopf::baseline::BenchmarkAdmm admm(inst.problem, opt);
      const auto res = admm.solve();
      base.iterations = res.iterations;
      if (!res.converged) {
        std::printf("WARNING: benchmark did not converge\n");
      }
    } else {
      base.iterations = ours.iterations;  // paper: similar iteration counts
      base.projected = true;
    }
    base.time_s =
        per_iteration_seconds(base_costs, base.cpus) * base.iterations;

    std::printf("%-14s | %6d %12.2f %10lld | %6d %12.2f %9lld%s | %7.1fx\n",
                name.c_str(), ours.cpus, ours.time_s, ours.iterations,
                base.cpus, base.time_s, base.iterations,
                base.projected ? "*" : " ", base.time_s / ours.time_s);
  }
  std::printf(
      "\n(*) iterations projected from ours (run with DOPF_BENCH_FULL=1 for "
      "the real count)\n");
  std::printf(
      "paper:   ieee13 4.91s/944 vs 28.13s/1064 (5.7x)   "
      "ieee123 7.25s/3496 vs 169.67s/3215 (23x)\n"
      "         ieee8500 668.3s/15817 vs 44720s/26252 (67x)\n");
  return 0;
}
