/// Deterministic session-reuse replay: a 10-scenario load-only sweep on
/// ieee123 through ONE SolveSession. The point under measurement is the
/// session architecture's contract:
///   - exactly one full topology precompute for the whole sweep
///     (counter-verified: every scenario solve is a precompute reuse),
///   - zero refactorizations (constant-power load scaling is rhs-only and
///     flows through the cached Cholesky factors),
///   - warm-started scenario solves converge in measurably fewer
///     iterations than the same scenarios solved cold.
/// The run is fully deterministic (serial backend, fixed factors), so the
/// emitted JSON is committable; the binary exits non-zero if any contract
/// line fails, making it usable as a CI gate.
///
/// Usage: session_reuse [output.json]   (default BENCH_session_reuse.json)

#include <cstdio>
#include <string>
#include <vector>

#include "core/admm.hpp"
#include "core/scenario_binding.hpp"
#include "core/solve_model.hpp"
#include "core/solve_session.hpp"
#include "opf/decompose.hpp"
#include "opf/model.hpp"
#include "runtime/instances.hpp"
#include "runtime/scenario.hpp"

namespace {

struct Row {
  std::string name;
  double factor = 1.0;
  int warm_iterations = 0;
  int cold_iterations = 0;
  double objective = 0.0;
  dopf::core::RebindStats rebind;
};

constexpr int kNumScenarios = 10;

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : "BENCH_session_reuse.json";

  const auto net = dopf::runtime::make_instance("ieee123").net;
  const auto model = dopf::opf::build_model(net);
  const auto problem = dopf::opf::decompose(net, model);

  dopf::core::AdmmOptions opt;
  opt.check_every = 10;

  dopf::core::SolveModel solve_model(problem, opt.projector);
  dopf::core::ScenarioBinding binding(solve_model);
  dopf::core::SolveSession session(binding, opt);

  const auto base = session.solve();
  std::printf("base: %s in %d iterations, objective %.8f\n",
              dopf::core::to_string(base.status), base.iterations,
              base.objective);
  bool ok = base.converged;

  std::vector<Row> rows;
  long long warm_total = 0, cold_total = 0;
  for (int k = 0; k < kNumScenarios; ++k) {
    Row row;
    row.factor = 0.90 + 0.02 * k;
    row.name = "sweep" + std::to_string(k);
    const dopf::runtime::Scenario sc{
        row.name,
        {{dopf::runtime::ScenarioOverride::Kind::kLoadScale, "constant",
          row.factor}}};
    const auto net_s = dopf::runtime::apply_scenario(net, sc);
    const auto problem_s = dopf::opf::decompose(net_s);

    row.rebind = session.rebind(problem_s);
    const auto warm = session.solve();
    row.warm_iterations = warm.iterations;
    row.objective = warm.objective;
    ok = ok && warm.converged && warm.warm_started;

    // Cold baseline: a throwaway session on the SAME binding — identical
    // pack and factorizations, fresh iterate state.
    dopf::core::SolveSession cold_session(binding, opt);
    const auto cold = cold_session.solve();
    row.cold_iterations = cold.iterations;
    ok = ok && cold.converged;

    warm_total += row.warm_iterations;
    cold_total += row.cold_iterations;
    std::printf(
        "%s (x%.2f): warm %d vs cold %d iterations, objective %.8f "
        "[%d refactorization(s), %d rhs rebind(s)]\n",
        row.name.c_str(), row.factor, row.warm_iterations,
        row.cold_iterations, row.objective, row.rebind.refactorizations,
        row.rebind.rhs_rebinds);
    rows.push_back(row);
  }

  const auto& st = session.stats();
  std::printf(
      "session: %d solve(s), %d precompute reuse(s), %d refactorization(s), "
      "%d rhs rebind(s); warm %lld vs cold %lld total iterations\n",
      st.solves, st.precompute_reuses, st.refactorizations, st.rhs_rebinds,
      warm_total, cold_total);

  // The contract the committed JSON certifies.
  if (st.precompute_reuses != kNumScenarios) {
    std::fprintf(stderr,
                 "FAIL: expected every scenario solve to reuse the "
                 "precompute (%d/%d)\n",
                 st.precompute_reuses, kNumScenarios);
    ok = false;
  }
  if (st.refactorizations != 0 || solve_model.refactorizations() != 0) {
    std::fprintf(stderr, "FAIL: load-only sweep refactorized (%d)\n",
                 st.refactorizations);
    ok = false;
  }
  if (warm_total >= cold_total) {
    std::fprintf(stderr,
                 "FAIL: warm-started sweep not faster (%lld vs %lld "
                 "iterations)\n",
                 warm_total, cold_total);
    ok = false;
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n  \"bench\": \"session_reuse\",\n"
               "  \"instance\": \"ieee123\",\n"
               "  \"num_scenarios\": %d,\n"
               "  \"base_iterations\": %d,\n  \"scenarios\": [\n",
               kNumScenarios, base.iterations);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"load_factor\": %.2f, "
                 "\"warm_iterations\": %d, \"cold_iterations\": %d, "
                 "\"objective\": %.12g, \"refactorizations\": %d, "
                 "\"rhs_rebinds\": %d}%s\n",
                 r.name.c_str(), r.factor, r.warm_iterations,
                 r.cold_iterations, r.objective, r.rebind.refactorizations,
                 r.rebind.rhs_rebinds, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n  \"totals\": {\"warm_iterations\": %lld, "
               "\"cold_iterations\": %lld, \"warm_over_cold\": %.4f},\n"
               "  \"session\": {\"solves\": %d, \"full_precomputes\": 1, "
               "\"precompute_reuses\": %d, \"refactorizations\": %d, "
               "\"rhs_rebinds\": %d},\n  \"verified\": %s\n}\n",
               warm_total, cold_total,
               static_cast<double>(warm_total) /
                   static_cast<double>(cold_total),
               st.solves, st.precompute_reuses, st.refactorizations,
               st.rhs_rebinds, ok ? "true" : "false");
  std::fclose(out);
  std::printf("%s written to %s\n", ok ? "VERIFIED" : "FAILED",
              out_path.c_str());
  return ok ? 0 : 2;
}
