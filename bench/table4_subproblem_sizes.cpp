/// Reproduces Table IV: distribution of the component subproblem sizes
/// m_s x n_s (rows/cols of A_s in (9)) across all S components.
///
/// The headline property: subproblems stay tiny everywhere, and the
/// 8500-class instance has the *smallest* mean sizes (single-phase
/// secondaries dominate) — which is why the one-block-per-component GPU
/// mapping thrives there.

#include "bench/common.hpp"
#include "opf/stats.hpp"

int main() {
  dopf::bench::header("Table IV", "component subproblem size distribution");
  std::printf("%-14s %-4s %6s %6s %8s %8s %10s\n", "instance", "dim", "min",
              "max", "mean", "stdev", "sum");
  for (const std::string& name : dopf::bench::instance_names()) {
    const auto inst = dopf::runtime::make_instance(name);
    const auto stats = dopf::opf::subproblem_stats(inst.problem);
    std::printf("%-14s %-4s %6zu %6zu %8.2f %8.2f %10zu\n", name.c_str(),
                "m_s", stats.rows.min, stats.rows.max, stats.rows.mean,
                stats.rows.stdev, stats.rows.sum);
    std::printf("%-14s %-4s %6zu %6zu %8.2f %8.2f %10zu\n", name.c_str(),
                "n_s", stats.cols.min, stats.cols.max, stats.cols.mean,
                stats.cols.stdev, stats.cols.sum);
  }
  std::printf(
      "\npaper means: ieee13 m 9.08 / n 16.1;  ieee123 m 7.34 / n 13.16;  "
      "ieee8500 m 3.44 / n 6.69\n");
  return 0;
}
