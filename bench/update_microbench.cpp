/// Google-benchmark micro-benchmarks of the per-iteration kernels: the
/// closed-form local update (15) vs the benchmark's per-component QP solve,
/// plus the global (13)/(18) and dual (12) updates. These are the
/// building-block costs behind Figures 1, 3 and 4.

#include <benchmark/benchmark.h>

#include "baseline/benchmark_admm.hpp"
#include "core/admm.hpp"
#include "runtime/instances.hpp"
#include "simt/gpu_admm.hpp"

namespace {

const dopf::runtime::Instance& instance13() {
  static const auto inst = dopf::runtime::make_instance("ieee13");
  return inst;
}

const dopf::runtime::Instance& instance123() {
  static const auto inst = dopf::runtime::make_instance("ieee123");
  return inst;
}

const dopf::runtime::Instance& pick(int which) {
  return which == 0 ? instance13() : instance123();
}

void BM_SolverFreeLocalUpdate(benchmark::State& state) {
  const auto& inst = pick(static_cast<int>(state.range(0)));
  dopf::core::SolverFreeAdmm admm(inst.problem, {});
  admm.global_update();
  for (auto _ : state) {
    admm.local_update();
  }
  state.SetItemsProcessed(state.iterations() *
                          inst.problem.num_components());
}
BENCHMARK(BM_SolverFreeLocalUpdate)->Arg(0)->Arg(1);

void BM_BenchmarkQpLocalUpdate(benchmark::State& state) {
  const auto& inst = pick(static_cast<int>(state.range(0)));
  dopf::baseline::BenchmarkAdmm admm(inst.problem, {});
  admm.global_update();
  for (auto _ : state) {
    admm.local_update();
  }
  state.SetItemsProcessed(state.iterations() *
                          inst.problem.num_components());
}
BENCHMARK(BM_BenchmarkQpLocalUpdate)->Arg(0)->Arg(1);

void BM_GlobalUpdate(benchmark::State& state) {
  const auto& inst = pick(static_cast<int>(state.range(0)));
  dopf::core::SolverFreeAdmm admm(inst.problem, {});
  for (auto _ : state) {
    admm.global_update();
  }
}
BENCHMARK(BM_GlobalUpdate)->Arg(0)->Arg(1);

void BM_DualUpdate(benchmark::State& state) {
  const auto& inst = pick(static_cast<int>(state.range(0)));
  dopf::core::SolverFreeAdmm admm(inst.problem, {});
  admm.global_update();
  admm.local_update();
  for (auto _ : state) {
    admm.dual_update();
  }
}
BENCHMARK(BM_DualUpdate)->Arg(0)->Arg(1);

void BM_Residuals(benchmark::State& state) {
  const auto& inst = pick(static_cast<int>(state.range(0)));
  dopf::core::SolverFreeAdmm admm(inst.problem, {});
  admm.global_update();
  admm.local_update();
  admm.dual_update();
  for (auto _ : state) {
    benchmark::DoNotOptimize(admm.compute_residuals(1));
  }
}
BENCHMARK(BM_Residuals)->Arg(0)->Arg(1);

void BM_Precompute(benchmark::State& state) {
  const auto& inst = pick(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dopf::core::LocalSolvers::precompute(inst.problem));
  }
}
BENCHMARK(BM_Precompute)->Arg(0)->Arg(1);

void BM_ModelBuild(benchmark::State& state) {
  const auto& inst = pick(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dopf::opf::build_model(inst.net));
  }
}
BENCHMARK(BM_ModelBuild)->Arg(0)->Arg(1);

void BM_Decompose(benchmark::State& state) {
  const auto& inst = pick(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dopf::opf::decompose(inst.net, inst.model));
  }
}
BENCHMARK(BM_Decompose)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
