/// Google-benchmark micro-benchmarks of the per-iteration kernels: the
/// closed-form local update (15) vs the benchmark's per-component QP solve,
/// plus the global (13)/(18) and dual (12) updates. These are the
/// building-block costs behind Figures 1, 3 and 4.

#include <benchmark/benchmark.h>

#include "baseline/benchmark_admm.hpp"
#include "core/admm.hpp"
#include "runtime/instances.hpp"
#include "runtime/threaded_backend.hpp"
#include "simt/gpu_admm.hpp"

namespace {

const dopf::runtime::Instance& instance13() {
  static const auto inst = dopf::runtime::make_instance("ieee13");
  return inst;
}

const dopf::runtime::Instance& instance123() {
  static const auto inst = dopf::runtime::make_instance("ieee123");
  return inst;
}

const dopf::runtime::Instance& pick(int which) {
  return which == 0 ? instance13() : instance123();
}

void BM_SolverFreeLocalUpdate(benchmark::State& state) {
  const auto& inst = pick(static_cast<int>(state.range(0)));
  dopf::core::SolverFreeAdmm admm(inst.problem, {});
  admm.global_update();
  for (auto _ : state) {
    admm.local_update();
  }
  state.SetItemsProcessed(state.iterations() *
                          inst.problem.num_components());
}
BENCHMARK(BM_SolverFreeLocalUpdate)->Arg(0)->Arg(1);

void BM_BenchmarkQpLocalUpdate(benchmark::State& state) {
  const auto& inst = pick(static_cast<int>(state.range(0)));
  dopf::baseline::BenchmarkAdmm admm(inst.problem, {});
  admm.global_update();
  for (auto _ : state) {
    admm.local_update();
  }
  state.SetItemsProcessed(state.iterations() *
                          inst.problem.num_components());
}
BENCHMARK(BM_BenchmarkQpLocalUpdate)->Arg(0)->Arg(1);

void BM_GlobalUpdate(benchmark::State& state) {
  const auto& inst = pick(static_cast<int>(state.range(0)));
  dopf::core::SolverFreeAdmm admm(inst.problem, {});
  for (auto _ : state) {
    admm.global_update();
  }
}
BENCHMARK(BM_GlobalUpdate)->Arg(0)->Arg(1);

void BM_DualUpdate(benchmark::State& state) {
  const auto& inst = pick(static_cast<int>(state.range(0)));
  dopf::core::SolverFreeAdmm admm(inst.problem, {});
  admm.global_update();
  admm.local_update();
  for (auto _ : state) {
    admm.dual_update();
  }
}
BENCHMARK(BM_DualUpdate)->Arg(0)->Arg(1);

void BM_Residuals(benchmark::State& state) {
  const auto& inst = pick(static_cast<int>(state.range(0)));
  dopf::core::SolverFreeAdmm admm(inst.problem, {});
  admm.global_update();
  admm.local_update();
  admm.dual_update();
  for (auto _ : state) {
    benchmark::DoNotOptimize(admm.compute_residuals(1));
  }
}
BENCHMARK(BM_Residuals)->Arg(0)->Arg(1);

const dopf::runtime::Instance& instance8500() {
  // Full 8500-bus instance (S = 25001): the local update is milliseconds of
  // work per call, so pool wakeup overhead is negligible and the threaded
  // rows reflect genuine scaling.
  static const auto inst = dopf::runtime::make_instance("ieee8500");
  return inst;
}

// Backend comparison on the largest local-update workload: serial packed
// backend (Arg = 0) vs the threaded backend with Arg worker threads. On a
// multi-core host the 8-thread row should show the >= 2x makespan win; on a
// 1-core host all rows collapse to serial speed (the iterates stay
// bit-identical either way).
void BM_BackendLocalUpdate(benchmark::State& state) {
  const auto& inst = instance8500();
  dopf::core::SolverFreeAdmm admm(inst.problem, {});
  const int threads = static_cast<int>(state.range(0));
  if (threads > 0) {
    admm.set_backend(dopf::runtime::make_threaded_backend(threads));
  }
  admm.global_update();
  for (auto _ : state) {
    admm.local_update();
  }
  state.SetLabel(threads > 0 ? "threaded" : "serial-packed");
  state.SetItemsProcessed(state.iterations() *
                          inst.problem.num_components());
}
BENCHMARK(BM_BackendLocalUpdate)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Pre-refactor reference path: one AffineProjector object per component,
// staging buffers allocated per call. The packed serial backend
// (BM_BackendLocalUpdate/0) must be no slower than this.
void BM_ProjectorObjectLocalUpdate(benchmark::State& state) {
  const auto& inst = instance8500();
  const auto& problem = inst.problem;
  const auto solvers = dopf::core::LocalSolvers::precompute(problem);
  const double rho = dopf::core::AdmmOptions{}.rho;
  const std::vector<double>& x = problem.x0;
  std::vector<double> lambda(problem.total_local_vars(), 0.0);
  std::vector<double> z(problem.total_local_vars(), 0.0);
  for (auto _ : state) {
    std::size_t off = 0;
    for (std::size_t s = 0; s < problem.num_components(); ++s) {
      const auto& comp = problem.components[s];
      const std::size_t ns = comp.num_vars();
      std::vector<double> y(ns);
      for (std::size_t j = 0; j < ns; ++j) {
        y[j] = x[comp.global[j]] + lambda[off + j] / rho;
      }
      solvers.projectors[s].project_into(
          y, std::span<double>(z.data() + off, ns));
      off += ns;
    }
    benchmark::DoNotOptimize(z.data());
  }
  state.SetItemsProcessed(state.iterations() * problem.num_components());
}
BENCHMARK(BM_ProjectorObjectLocalUpdate);

void BM_Precompute(benchmark::State& state) {
  const auto& inst = pick(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dopf::core::LocalSolvers::precompute(inst.problem));
  }
}
BENCHMARK(BM_Precompute)->Arg(0)->Arg(1);

void BM_ModelBuild(benchmark::State& state) {
  const auto& inst = pick(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dopf::opf::build_model(inst.net));
  }
}
BENCHMARK(BM_ModelBuild)->Arg(0)->Arg(1);

void BM_Decompose(benchmark::State& state) {
  const auto& inst = pick(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dopf::opf::decompose(inst.net, inst.model));
  }
}
BENCHMARK(BM_Decompose)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
