/// Reproduces Figure 2: primal and dual residual trajectories of
/// Algorithm 1 on the IEEE13 instance, run on the CPU path and the
/// (simulated) GPU path.
///
/// The paper demonstrates the two platforms converge identically; our SIMT
/// simulation preserves floating-point summation order, so the trajectories
/// are bit-identical — verified below, then printed for plotting.

#include <cmath>

#include "bench/common.hpp"
#include "core/admm.hpp"
#include "simt/gpu_admm.hpp"

int main() {
  dopf::bench::header("Figure 2",
                      "primal/dual residuals per iteration, CPU vs GPU "
                      "(ieee13)");
  const auto inst = dopf::runtime::make_instance("ieee13");
  dopf::core::AdmmOptions opt;  // eps_rel = 1e-3, rho = 100
  opt.record_every = 1;

  dopf::core::SolverFreeAdmm cpu(inst.problem, opt);
  const auto rc = cpu.solve();

  dopf::simt::GpuAdmmOptions gopt;
  gopt.admm = opt;
  dopf::simt::GpuSolverFreeAdmm gpu(inst.problem, gopt);
  const auto rg = gpu.solve();

  std::printf("CPU: %d iterations;  GPU: %d iterations\n", rc.iterations,
              rg.iterations);
  bool identical = rc.history.size() == rg.history.size();
  double max_rel_diff = 0.0;
  for (std::size_t k = 0; identical && k < rc.history.size(); ++k) {
    const double dp = std::abs(rc.history[k].primal_residual -
                               rg.history[k].primal_residual);
    const double dd = std::abs(rc.history[k].dual_residual -
                               rg.history[k].dual_residual);
    max_rel_diff = std::max(max_rel_diff, std::max(dp, dd));
  }
  std::printf("trajectory match: %s (max abs diff %.3e)\n",
              identical && max_rel_diff == 0.0 ? "bit-identical" : "DIFFERS",
              max_rel_diff);

  std::printf("\n%10s %14s %14s %14s %14s\n", "iteration", "pres(cpu)",
              "dres(cpu)", "eps_prim", "eps_dual");
  const std::size_t stride = std::max<std::size_t>(1, rc.history.size() / 25);
  for (std::size_t k = 0; k < rc.history.size(); k += stride) {
    const auto& r = rc.history[k];
    std::printf("%10d %14.6e %14.6e %14.6e %14.6e\n", r.iteration,
                r.primal_residual, r.dual_residual, r.eps_primal, r.eps_dual);
  }
  const auto& last = rc.history.back();
  std::printf("%10d %14.6e %14.6e %14.6e %14.6e  <- converged\n",
              last.iteration, last.primal_residual, last.dual_residual,
              last.eps_primal, last.eps_dual);
  return 0;
}
