/// Reproduces Figure 3: average per-iteration time of the global, local and
/// dual updates (and their total) under three execution regimes:
///   (top)    multiple CPUs in parallel          — virtual cluster
///   (middle) multiple GPUs via MPI              — SIMT cost model + staging
///   (bottom) one GPU, threads-per-block sweep   — SIMT cost model
///
/// Expected shapes (paper): CPU local time falls with N while global/dual
/// stay flat; multi-GPU local time *rises* slightly with N (PCIe staging +
/// MPI); the thread sweep accelerates the local kernel, most on the
/// 8500-bus instance whose many small subproblems map one-per-block.

#include "bench/common.hpp"
#include "core/admm.hpp"
#include "runtime/cluster.hpp"
#include "runtime/measure.hpp"
#include "runtime/threaded_backend.hpp"
#include "simt/gpu_admm.hpp"
#include "simt/multi_gpu.hpp"

namespace {

void cpu_row(const dopf::runtime::Instance& inst,
             const dopf::core::AdmmOptions& opt) {
  const auto costs =
      dopf::runtime::measure_solver_free(inst.problem, opt, 30);
  std::printf("  multi-CPU:\n");
  std::printf("  %6s %12s %12s %12s %12s\n", "CPUs", "global", "local",
              "dual", "total");
  for (std::size_t cpus : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    const dopf::runtime::VirtualCluster cluster(cpus,
                                                dopf::runtime::CommModel{});
    const auto phase = cluster.price_local_update(costs.component_seconds,
                                                  costs.payload_vars);
    const double total = phase.total() + costs.global_update_seconds +
                         costs.dual_update_seconds;
    std::printf("  %6zu %12.3e %12.3e %12.3e %12.3e\n", cpus,
                costs.global_update_seconds, phase.total(),
                costs.dual_update_seconds, total);
  }
}

void threaded_cpu_row(const dopf::runtime::Instance& inst,
                      const dopf::core::AdmmOptions& opt) {
  // Measured (not modeled) shared-memory execution: the ThreadedBackend
  // runs the same packed kernels on this host's cores. Complements the
  // virtual-cluster projection above with real wall-clock makespans.
  std::printf("  multi-thread CPU (measured on this host):\n");
  std::printf("  %6s %12s %12s %12s %12s\n", "thr", "global", "local",
              "dual", "total");
  for (int threads : {1, 2, 4, 8}) {
    const auto costs = dopf::runtime::measure_solver_free(
        inst.problem, opt, 30,
        dopf::runtime::make_threaded_backend(threads));
    const double total = costs.global_update_seconds +
                         costs.local_update_wall_seconds +
                         costs.dual_update_seconds;
    std::printf("  %6d %12.3e %12.3e %12.3e %12.3e\n", threads,
                costs.global_update_seconds, costs.local_update_wall_seconds,
                costs.dual_update_seconds, total);
  }
}

void gpu_row(const dopf::runtime::Instance& inst,
             const dopf::core::AdmmOptions& opt) {
  // Functional multi-GPU execution (bit-identical iterates): the phase time
  // combines the slowest device's kernels with PCIe staging and MPI traffic
  // of the consensus payload.
  std::printf("  multi-GPU (MPI):\n");
  std::printf("  %6s %12s %12s %12s %12s\n", "GPUs", "global", "local",
              "dual", "total");
  for (std::size_t gpus : {1u, 2u, 4u, 8u}) {
    dopf::simt::MultiGpuOptions mo;
    mo.gpu.admm = opt;
    mo.gpu.admm.max_iterations = 30;
    mo.gpu.admm.check_every = 1000;
    mo.num_devices = gpus;
    dopf::simt::MultiGpuSolverFreeAdmm gpu(inst.problem, mo);
    gpu.solve();
    const auto avg = gpu.iteration_averages();
    std::printf("  %6zu %12.3e %12.3e %12.3e %12.3e\n", gpus,
                avg.global_update, avg.local_update, avg.dual_update,
                avg.total());
  }
}

void thread_row(const dopf::runtime::Instance& inst,
                const dopf::core::AdmmOptions& opt) {
  std::printf("  single GPU, threads-per-block sweep:\n");
  std::printf("  %6s %12s %12s %12s %12s\n", "T", "global", "local", "dual",
              "total");
  for (int threads : {1, 2, 4, 8, 16, 32, 64}) {
    dopf::simt::GpuAdmmOptions gopt;
    gopt.admm = opt;
    gopt.admm.max_iterations = 30;
    gopt.admm.check_every = 1000;
    gopt.threads_per_block = threads;
    dopf::simt::GpuSolverFreeAdmm gpu(inst.problem, gopt);
    gpu.solve();
    const auto avg = gpu.kernel_averages();
    std::printf("  %6d %12.3e %12.3e %12.3e %12.3e\n", threads,
                avg.global_update, avg.local_update, avg.dual_update,
                avg.total());
  }
}

}  // namespace

int main() {
  dopf::bench::header("Figure 3",
                      "per-iteration update-time breakdown: CPUs / GPUs / "
                      "GPU threads");
  dopf::core::AdmmOptions opt;
  for (const std::string& name : dopf::bench::instance_names()) {
    const auto inst = dopf::runtime::make_instance(name);
    std::printf("\n%s (S = %zu)\n", name.c_str(),
                inst.problem.num_components());
    cpu_row(inst, opt);
    threaded_cpu_row(inst, opt);
    gpu_row(inst, opt);
    thread_row(inst, opt);
  }
  return 0;
}
