/// Deterministic streaming replay: a 288-step (24h of 5-minute steps)
/// receding-horizon day on ieee123 through ONE SolveSession. The profile is
/// generated as text and fed through the real parser (the bench exercises
/// the same path as `dopf_solve --stream`): a smooth daily load curve of
/// per-step load blocks plus two switching events (impedance re-rates on
/// two distinct lines at steps 96 and 192). The contract the committed
/// JSON certifies:
///   - exactly one full topology precompute for the whole day (every
///     non-switching warm solve is a precompute reuse),
///   - component refactorizations == switched-component count (2): load
///     steps are rhs-only, each switch event refreshes exactly the one
///     component owning the re-rated line,
///   - warm-started steps converge in <= 0.6x the iterations of the same
///     steps solved cold.
/// Fully deterministic (serial backend, fixed curve), so the JSON is
/// committable; exits non-zero if any contract line fails.
///
/// Usage: streaming [output.json]   (default BENCH_streaming.json)

#include <cmath>
#include <cstdio>
#include <sstream>
#include <string>

#include "core/admm.hpp"
#include "runtime/instances.hpp"
#include "stream/driver.hpp"
#include "stream/profile.hpp"

namespace {

constexpr int kSteps = 288;          // 24h at 5-minute resolution
constexpr int kSwitchSteps[2] = {96, 192};
const char* const kSwitchLines[2] = {"l17", "l43"};
constexpr double kSwitchFactors[2] = {2.0, 1.5};

/// Smooth double-peak daily load curve in [0.85, 1.10] — morning and
/// evening peaks, deterministic in the step index only.
double load_factor(int step) {
  const double h = 24.0 * step / kSteps;
  const double morning = std::exp(-0.5 * std::pow((h - 8.5) / 2.5, 2.0));
  const double evening = std::exp(-0.5 * std::pow((h - 19.0) / 3.0, 2.0));
  const double f = 0.85 + 0.18 * morning + 0.25 * evening;
  return std::round(f * 1000.0) / 1000.0;  // 3 decimals, parses exactly
}

std::string make_profile_text() {
  std::ostringstream out;
  out << "profile day\nsteps " << kSteps << "\ndt 300\n";
  for (int k = 0; k < kSteps; ++k) {
    char factor[32];
    std::snprintf(factor, sizeof(factor), "%.3f", load_factor(k));
    out << "step " << k << "\n  load constant scale " << factor << "\n";
    // Blocks are ABSOLUTE against base, so an actuated switch must appear
    // in every later block or the next block would revert it (and pay a
    // second refactorization flipping the line back).
    for (int s = 0; s < 2; ++s) {
      if (k >= kSwitchSteps[s]) {
        out << "  switch " << kSwitchLines[s] << " impedance-scale "
            << kSwitchFactors[s] << "\n";
      }
    }
  }
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_streaming.json";

  const auto net = dopf::runtime::make_instance("ieee123").net;
  std::istringstream profile_text(make_profile_text());
  const auto profile = dopf::stream::parse_profile(profile_text);
  std::printf("profile '%s': %d steps, %zu blocks\n", profile.name.c_str(),
              profile.num_steps, profile.blocks.size());

  dopf::stream::StreamOptions sopt;
  sopt.admm.check_every = 10;
  sopt.cold_compare = true;
  dopf::stream::StreamDriver driver(net, profile, sopt);
  const auto result = driver.run();

  // Warm-vs-cold over the warm steps only (step 0 is the cold start and
  // has no warm counterpart).
  long long warm_total = 0, cold_total = 0;
  int switched_steps = 0;
  bool ok = result.all_converged;
  for (const auto& rec : result.steps) {
    if (rec.warm_started) {
      warm_total += rec.iterations;
      cold_total += rec.cold_iterations;
    }
    if (rec.switched) {
      ++switched_steps;
      std::printf(
          "switch step %d: warm %d vs cold %d iterations "
          "[%d refactorization(s), %d rhs rebind(s)]\n",
          rec.step, rec.iterations, rec.cold_iterations,
          rec.rebind.refactorizations, rec.rebind.rhs_rebinds);
    }
  }
  const double ratio =
      static_cast<double>(warm_total) / static_cast<double>(cold_total);
  const auto& st = result.session;
  std::printf(
      "day: %zu steps, %d switch event(s); session %d solve(s) "
      "(%d cold, %d warm), %d precompute reuse(s), "
      "%d refactorization(s), %d rhs rebind(s)\n"
      "warm %lld vs cold %lld iterations over warm steps (ratio %.3f)\n",
      result.steps.size(), switched_steps, st.solves, st.cold_solves,
      st.warm_solves, st.precompute_reuses, st.refactorizations,
      st.rhs_rebinds, warm_total, cold_total, ratio);

  // The contract the committed JSON certifies.
  if (st.cold_solves != 1) {
    std::fprintf(stderr, "FAIL: expected exactly one cold solve (%d)\n",
                 st.cold_solves);
    ok = false;
  }
  if (st.precompute_reuses != kSteps - 1 - 2) {
    std::fprintf(stderr,
                 "FAIL: every non-switching warm step must reuse the "
                 "precompute (%d/%d)\n",
                 st.precompute_reuses, kSteps - 1 - 2);
    ok = false;
  }
  if (result.refactorizations != 2 || st.refactorizations != 2 ||
      switched_steps != 2) {
    std::fprintf(stderr,
                 "FAIL: 2 switch events must cost exactly 2 component "
                 "refactorizations (model %d, session %d, %d switched "
                 "steps)\n",
                 result.refactorizations, st.refactorizations,
                 switched_steps);
    ok = false;
  }
  if (ratio > 0.6) {
    std::fprintf(stderr,
                 "FAIL: warm stream must need <= 0.6x cold iterations "
                 "(ratio %.3f)\n",
                 ratio);
    ok = false;
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n  \"bench\": \"streaming\",\n"
               "  \"instance\": \"ieee123\",\n"
               "  \"num_steps\": %d,\n  \"dt_seconds\": %.0f,\n"
               "  \"switch_steps\": [%d, %d],\n"
               "  \"switch_lines\": [\"%s\", \"%s\"],\n",
               kSteps, profile.dt_seconds, kSwitchSteps[0], kSwitchSteps[1],
               kSwitchLines[0], kSwitchLines[1]);
  std::fprintf(out, "  \"warm_iterations_per_step\": [");
  for (std::size_t i = 0; i < result.steps.size(); ++i) {
    std::fprintf(out, "%s%d", i == 0 ? "" : ",", result.steps[i].iterations);
  }
  std::fprintf(out, "],\n  \"cold_iterations_per_step\": [");
  for (std::size_t i = 0; i < result.steps.size(); ++i) {
    std::fprintf(out, "%s%d", i == 0 ? "" : ",",
                 result.steps[i].cold_iterations);
  }
  std::fprintf(out,
               "],\n  \"totals\": {\"warm_iterations\": %lld, "
               "\"cold_iterations\": %lld, \"warm_over_cold\": %.4f},\n"
               "  \"session\": {\"solves\": %d, \"cold_solves\": %d, "
               "\"warm_solves\": %d, \"full_precomputes\": 1, "
               "\"precompute_reuses\": %d, \"refactorizations\": %d, "
               "\"rhs_rebinds\": %d},\n"
               "  \"model_refactorizations\": %d,\n"
               "  \"all_converged\": %s,\n  \"verified\": %s\n}\n",
               warm_total, cold_total, ratio, st.solves, st.cold_solves,
               st.warm_solves, st.precompute_reuses, st.refactorizations,
               st.rhs_rebinds, result.refactorizations,
               result.all_converged ? "true" : "false", ok ? "true" : "false");
  std::fclose(out);
  std::printf("%s written to %s\n", ok ? "VERIFIED" : "FAILED",
              out_path.c_str());
  return ok ? 0 : 2;
}
