#include "baseline/benchmark_admm.hpp"

#include <chrono>
#include <cmath>

#include "linalg/vector_ops.hpp"

namespace dopf::baseline {

using Clock = std::chrono::steady_clock;
using dopf::core::AdmmOptions;
using dopf::core::AdmmResult;
using dopf::core::IterationRecord;
using dopf::opf::Component;
using dopf::opf::DistributedProblem;

namespace {
double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}
}  // namespace

BenchmarkAdmm::BenchmarkAdmm(const DistributedProblem& problem,
                             AdmmOptions options,
                             dopf::solver::BoxQpOptions qp_options)
    : problem_(&problem),
      options_(options),
      qp_options_(qp_options),
      rho_(options.rho) {
  const auto start = Clock::now();
  local_qps_.reserve(problem.components.size());
  warm_mu_.reserve(problem.components.size());
  for (const Component& comp : problem.components) {
    std::vector<double> lb(comp.num_vars()), ub(comp.num_vars());
    for (std::size_t j = 0; j < comp.num_vars(); ++j) {
      lb[j] = problem.lb[comp.global[j]];
      ub[j] = problem.ub[comp.global[j]];
    }
    local_qps_.emplace_back(comp.a, comp.b, std::move(lb), std::move(ub));
    warm_mu_.emplace_back(comp.num_rows(), 0.0);
    offsets_.push_back(total_local_);
    total_local_ += comp.num_vars();
  }
  timing_.precompute = seconds_since(start);

  x_.assign(problem.num_vars, 0.0);
  z_.assign(total_local_, 0.0);
  z_prev_.assign(total_local_, 0.0);
  lambda_.assign(total_local_, 0.0);
  y_scratch_.assign(total_local_, 0.0);
  reset();
}

void BenchmarkAdmm::reset() {
  rho_ = options_.rho;
  x_ = problem_->x0;
  std::fill(lambda_.begin(), lambda_.end(), 0.0);
  for (std::size_t s = 0; s < problem_->components.size(); ++s) {
    const Component& comp = problem_->components[s];
    double* zs = z_.data() + offsets_[s];
    for (std::size_t j = 0; j < comp.num_vars(); ++j) {
      zs[j] = problem_->x0[comp.global[j]];
    }
    std::fill(warm_mu_[s].begin(), warm_mu_[s].end(), 0.0);
  }
  z_prev_ = z_;
  component_seconds_.assign(problem_->components.size(), 0.0);
  newton_iters_ = dykstra_iters_ = 0;
}

void BenchmarkAdmm::global_update() {
  // Model (8) keeps bounds local, so the global step is the unclipped
  // minimizer xhat of (10).
  std::vector<double>& accum = x_;
  std::fill(accum.begin(), accum.end(), 0.0);
  for (std::size_t s = 0; s < problem_->components.size(); ++s) {
    const Component& comp = problem_->components[s];
    const double* zs = z_.data() + offsets_[s];
    const double* ls = lambda_.data() + offsets_[s];
    for (std::size_t j = 0; j < comp.num_vars(); ++j) {
      accum[comp.global[j]] += rho_ * zs[j] - ls[j];
    }
  }
  for (std::size_t i = 0; i < problem_->num_vars; ++i) {
    x_[i] = (accum[i] - problem_->c[i]) /
            (rho_ * problem_->copy_count[i]);
  }
}

void BenchmarkAdmm::local_update() {
  // (14) with bounds: x_s = argmin 1/2||x - (B_s x + lambda_s/rho)||^2
  // over { A_s x = b_s, lb_s <= x <= ub_s } — one QP solve per component.
  z_prev_.swap(z_);
  const bool timed = options_.record_component_times;
  for (std::size_t s = 0; s < problem_->components.size(); ++s) {
    const Component& comp = problem_->components[s];
    const std::size_t ns = comp.num_vars();
    double* y = y_scratch_.data() + offsets_[s];
    const double* ls = lambda_.data() + offsets_[s];
    double* zs = z_.data() + offsets_[s];

    const auto start = timed ? Clock::now() : Clock::time_point{};
    for (std::size_t j = 0; j < ns; ++j) {
      y[j] = x_[comp.global[j]] + ls[j] / rho_;
    }
    auto result = local_qps_[s].project({y, ns}, qp_options_, &warm_mu_[s]);
    newton_iters_ += result.newton_iterations;
    dykstra_iters_ += result.dykstra_iterations;
    std::copy(result.x.begin(), result.x.end(), zs);
    if (timed) component_seconds_[s] += seconds_since(start);
  }
}

void BenchmarkAdmm::dual_update() {
  for (std::size_t s = 0; s < problem_->components.size(); ++s) {
    const Component& comp = problem_->components[s];
    double* ls = lambda_.data() + offsets_[s];
    const double* zs = z_.data() + offsets_[s];
    for (std::size_t j = 0; j < comp.num_vars(); ++j) {
      ls[j] += rho_ * (x_[comp.global[j]] - zs[j]);
    }
  }
}

IterationRecord BenchmarkAdmm::compute_residuals(int iteration) const {
  IterationRecord rec;
  rec.iteration = iteration;
  rec.rho = rho_;
  double pres2 = 0.0, bx2 = 0.0, z2 = 0.0, dz2 = 0.0, l2 = 0.0;
  for (std::size_t s = 0; s < problem_->components.size(); ++s) {
    const Component& comp = problem_->components[s];
    const double* zs = z_.data() + offsets_[s];
    const double* zp = z_prev_.data() + offsets_[s];
    const double* ls = lambda_.data() + offsets_[s];
    for (std::size_t j = 0; j < comp.num_vars(); ++j) {
      const double bx = x_[comp.global[j]];
      const double d = bx - zs[j];
      pres2 += d * d;
      bx2 += bx * bx;
      z2 += zs[j] * zs[j];
      const double dz = zs[j] - zp[j];
      dz2 += dz * dz;
      l2 += ls[j] * ls[j];
    }
  }
  rec.primal_residual = std::sqrt(pres2);
  rec.dual_residual = rho_ * std::sqrt(dz2);
  rec.eps_primal = options_.eps_rel * std::sqrt(std::max(bx2, z2));
  rec.eps_dual = options_.eps_rel * std::sqrt(l2);
  return rec;
}

bool BenchmarkAdmm::termination_satisfied(const IterationRecord& rec) const {
  return rec.primal_residual <= rec.eps_primal &&
         rec.dual_residual <= rec.eps_dual;
}

AdmmResult BenchmarkAdmm::solve() {
  AdmmResult result;
  int recorded = 0;
  const auto wall_start = Clock::now();
  for (int t = 1; t <= options_.max_iterations; ++t) {
    auto tic = Clock::now();
    global_update();
    timing_.global_update += seconds_since(tic);

    tic = Clock::now();
    local_update();
    timing_.local_update += seconds_since(tic);

    tic = Clock::now();
    dual_update();
    timing_.dual_update += seconds_since(tic);
    ++timing_.iterations;

    result.iterations = t;
    if (t % options_.check_every == 0) {
      tic = Clock::now();
      const IterationRecord rec = compute_residuals(t);
      timing_.residuals += seconds_since(tic);
      if (++recorded % options_.record_every == 0) {
        result.history.push_back(rec);
      }
      result.primal_residual = rec.primal_residual;
      result.dual_residual = rec.dual_residual;
      if (termination_satisfied(rec)) {
        result.converged = true;
        result.status = dopf::core::AdmmStatus::kConverged;
        break;
      }
      if (!std::isfinite(rec.primal_residual) ||
          !std::isfinite(rec.dual_residual)) {
        result.status = dopf::core::AdmmStatus::kDiverged;
        break;
      }
      if (options_.time_limit_seconds > 0.0 &&
          seconds_since(wall_start) > options_.time_limit_seconds) {
        result.status = dopf::core::AdmmStatus::kTimeLimit;
        break;
      }
    }
  }
  result.x.assign(x_.begin(), x_.end());
  // The benchmark's global iterate is not bound-clipped; report the
  // objective of the bound-respecting local consensus instead, evaluated by
  // averaging copies (equivalently, clip x to the box for reporting).
  for (std::size_t i = 0; i < result.x.size(); ++i) {
    result.x[i] = std::min(std::max(result.x[i], problem_->lb[i]),
                           problem_->ub[i]);
  }
  result.objective = dopf::linalg::dot(problem_->c, result.x);
  result.final_rho = rho_;
  result.timing = timing_;
  result.component_seconds.assign(component_seconds_.begin(),
                                  component_seconds_.end());
  return result;
}

}  // namespace dopf::baseline
