#pragma once

#include <memory>
#include <vector>

#include "core/admm.hpp"
#include "opf/decompose.hpp"
#include "solver/box_qp.hpp"

namespace dopf::baseline {

/// The benchmark approach of Sec. V-B: conventional consensus ADMM on the
/// distributed model (8), where the bounds stay inside the component
/// subproblems. Per iteration:
///
///   global update:  x_i = xhat_i          (no clipping; (8) has no (9d))
///   local update:   x_s = argmin over { A_s x = b_s, lb_s <= x <= ub_s }
///                   of the proximal QP (14) — requires a QP solver
///   dual update:    (12)
///
/// The local step is served by solver::BoxQp (semismooth Newton dual with a
/// Dykstra fallback), warm-started from the previous iteration's
/// multipliers. Its cost relative to the single matvec of the solver-free
/// local update (15) is exactly the performance gap the paper measures.
class BenchmarkAdmm {
 public:
  BenchmarkAdmm(const dopf::opf::DistributedProblem& problem,
                dopf::core::AdmmOptions options,
                dopf::solver::BoxQpOptions qp_options = {});

  dopf::core::AdmmResult solve();

  // Step-level API, mirroring core::SolverFreeAdmm.
  void global_update();
  void local_update();
  void dual_update();
  dopf::core::IterationRecord compute_residuals(int iteration) const;
  bool termination_satisfied(const dopf::core::IterationRecord& rec) const;
  void reset();

  std::span<const double> x() const { return x_; }
  std::span<const double> z() const { return z_; }
  double rho() const { return rho_; }
  std::size_t offset(std::size_t s) const { return offsets_[s]; }

  std::span<const double> component_seconds() const {
    return component_seconds_;
  }
  /// Cumulative inner QP iteration counts (diagnostics).
  long long total_newton_iterations() const { return newton_iters_; }
  long long total_dykstra_iterations() const { return dykstra_iters_; }

  const dopf::opf::DistributedProblem& problem() const { return *problem_; }

 private:
  const dopf::opf::DistributedProblem* problem_;
  dopf::core::AdmmOptions options_;
  dopf::solver::BoxQpOptions qp_options_;
  double rho_;

  std::vector<dopf::solver::BoxQp> local_qps_;
  std::vector<std::vector<double>> warm_mu_;

  std::vector<std::size_t> offsets_;
  std::size_t total_local_ = 0;

  std::vector<double> x_, z_, z_prev_, lambda_, y_scratch_;
  std::vector<double> component_seconds_;
  dopf::core::TimingBreakdown timing_;
  long long newton_iters_ = 0;
  long long dykstra_iters_ = 0;
};

}  // namespace dopf::baseline
