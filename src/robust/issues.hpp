#pragma once

#include <string>
#include <vector>

namespace dopf::robust {

/// Typed taxonomy of everything the preflight sanitizer can object to.
/// Structural codes come from the feeder/network data itself; numerical
/// codes come from the assembled model / component blocks. Each issue
/// carries component/row provenance in `site` so a rejection is actionable
/// at the input level instead of surfacing as a NaN downstream.
enum class IssueCode {
  // Structural (feeder / network level).
  kNonFiniteData,       ///< NaN or raw IEEE infinity in a numeric field
  kInvertedBounds,      ///< lb > ub on an active phase
  kDegenerateBox,       ///< lb == ub (legal but pins the variable)
  kPhaseMismatch,       ///< component phases not a subset of its bus phases
  kOrphanPhase,         ///< bus phase served by no incident line
  kEmptyPhases,         ///< line carrying no phase at all
  kBadScalar,           ///< non-positive tap ratio / flow limit, negative ZIP
  kNoGenerator,         ///< nothing can produce power
  kDisconnected,        ///< bus unreachable from the feeder head
  // Numerical (model / component-block level).
  kRowScaleDisparity,   ///< coefficient magnitudes in one equation span decades
  kNearDuplicateRows,   ///< two constraint rows nearly parallel
  kInconsistentRows,    ///< RREF found 0 = nonzero within a component
  kRankDeficient,       ///< Gram matrix not SPD, projector does not exist
  kIllConditioned,      ///< cond(A_s A_s^T) beyond the marginal threshold
  // Remediation records (only emitted when a fix was applied).
  kEquilibrated,        ///< rows rescaled to unit infinity norm
  kRegularized,         ///< Tikhonov ridge added to a Gram matrix
};

enum class Severity : int { kInfo = 0, kWarning = 1, kError = 2 };

const char* to_string(IssueCode code);
const char* to_string(Severity severity);

/// One finding: what, how bad, where (e.g. "bus:632", "line:L7 row 3",
/// "equation pbal:671:a"), and a human-readable explanation.
struct Issue {
  IssueCode code = IssueCode::kNonFiniteData;
  Severity severity = Severity::kError;
  std::string site;
  std::string message;

  std::string to_string() const;
};

/// Count issues at exactly `severity`.
std::size_t count_severity(const std::vector<Issue>& issues,
                           Severity severity);

}  // namespace dopf::robust
