#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "network/network.hpp"
#include "opf/decompose.hpp"
#include "opf/model.hpp"
#include "robust/conditioning.hpp"
#include "robust/issues.hpp"
#include "robust/sanitize.hpp"

namespace dopf::robust {

/// What preflight is allowed to do about what it finds.
///
///   kWarn      analyze and report; reject only hard structural errors
///              (non-finite data, inverted bounds, disconnection, ...).
///              Numerically marginal/degenerate blocks proceed unchanged —
///              the run is byte-identical to one without preflight.
///   kRemediate like kWarn, plus automatic repair of the numerical issues:
///              rows are equilibrated before RREF, and a projector whose
///              Gram matrix fails Cholesky falls back to a reported
///              Tikhonov ridge instead of failing.
///   kStrict    refuse anything not perfectly healthy: structural errors,
///              degenerate component blocks, AND nearly-parallel constraint
///              rows in the raw model are rejections. No remediation is
///              applied.
enum class PreflightPolicy { kWarn, kRemediate, kStrict };

const char* to_string(PreflightPolicy policy);
/// Parse "warn" / "auto" / "remediate" / "strict". Throws
/// std::invalid_argument otherwise ("off" is handled by callers).
PreflightPolicy parse_policy(const std::string& text);

struct PreflightOptions {
  PreflightPolicy policy = PreflightPolicy::kWarn;
  SanitizeOptions sanitize;
  ConditioningOptions conditioning;
  /// Decomposition profile preflight analyzes (and, under kRemediate,
  /// amends with row equilibration). Must match what the solve will use so
  /// the verdict talks about the actual blocks.
  dopf::opf::DecomposeOptions decompose;
};

/// Everything preflight determined, in one consumable report.
struct PreflightReport {
  PreflightPolicy policy = PreflightPolicy::kWarn;
  std::vector<Issue> issues;
  std::vector<BlockConditioning> blocks;

  /// Remediation actually applied (kRemediate only).
  bool equilibrated = false;
  double max_ridge = 0.0;

  /// Scenario preflight only (run_scenario_preflight): components whose
  /// equality block is unchanged from the base, i.e. whose factorization —
  /// and whose sanitation/conditioning verdict — is reused, not re-derived.
  std::size_t scenario_components_reused = 0;

  bool accepted = true;
  /// Non-empty exactly when !accepted: the first rejection reason, with
  /// component/row provenance.
  std::string rejection;

  std::size_t num_errors() const {
    return count_severity(issues, Severity::kError);
  }
  std::size_t num_warnings() const {
    return count_severity(issues, Severity::kWarning);
  }
  std::size_t count_health(BlockHealth health) const;
  double worst_cond() const;

  /// Multi-line human-readable report (one line per issue + a conditioning
  /// summary + the verdict).
  std::string summary() const;
  /// The projector policy a solve consuming this report must use so that
  /// the solver applies exactly the remediation the report describes.
  dopf::linalg::ProjectorOptions projector_options() const;
};

/// Thrown by entry points when a preflighted input is rejected; carries the
/// full report for diagnostics.
class PreflightError : public std::runtime_error {
 public:
  explicit PreflightError(PreflightReport report)
      : std::runtime_error(report.rejection), report_(std::move(report)) {}

  const PreflightReport& report() const noexcept { return report_; }

 private:
  PreflightReport report_;
};

/// Run the full preflight pipeline over a loaded network + built model:
/// structural sanitation, numerical model sanitation, decomposition (with
/// row equilibration under kRemediate), and per-component conditioning
/// analysis. On acceptance `problem_out` (if non-null) receives the
/// decomposition the solve should use — identical to a plain decompose()
/// under kWarn/kStrict, equilibrated under kRemediate.
///
/// Never throws on findings (the verdict is in the report); throws only on
/// infrastructure misuse (e.g. model/net mismatch propagating out of
/// decompose as ModelError).
PreflightReport run_preflight(const dopf::network::Network& net,
                              const dopf::opf::OpfModel& model,
                              dopf::opf::DistributedProblem* problem_out,
                              const PreflightOptions& options = {});

/// Validate a ScenarioBinding delta WITHOUT re-sanitizing the unchanged
/// topology: `scenario` is a re-decomposition of the same network under
/// edited loads/costs/bounds, about to be rebound against a model built
/// from `base`. Checks that the decomposition layout matches (a shape
/// change is rejected — that is a new model, not a scenario), that the
/// scenario surface (c, bounds, x0, changed b_s) is finite and ordered,
/// and runs conditioning analysis ONLY on components whose equality block
/// actually changed; untouched components are counted in
/// `scenario_components_reused` and skipped entirely.
PreflightReport run_scenario_preflight(
    const dopf::opf::DistributedProblem& base,
    const dopf::opf::DistributedProblem& scenario,
    const PreflightOptions& options = {});

}  // namespace dopf::robust
