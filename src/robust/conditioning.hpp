#pragma once

#include <string>
#include <vector>

#include "linalg/affine_projector.hpp"
#include "opf/decompose.hpp"

namespace dopf::robust {

/// Classification of one component block's numerical health.
enum class BlockHealth { kHealthy, kMarginal, kDegenerate };

const char* to_string(BlockHealth health);

/// Conditioning estimate for one component's equality block A_s (after the
/// RREF preprocessing of Sec. IV-B). `rank` is the numerical row rank the
/// pivoted reduction found; `cond` estimates cond(A_s A_s^T) — the matrix
/// whose Cholesky factorization the closed-form projector (15b)-(15c)
/// stands on. `ridge` is the Tikhonov perturbation the remediation policy
/// would need (0 when the exact factorization succeeds).
struct BlockConditioning {
  std::string component;
  std::size_t rows = 0;                   ///< m_s after reduction
  std::size_t cols = 0;                   ///< n_s
  std::size_t rows_before_reduction = 0;
  std::size_t rank = 0;
  double cond = 1.0;
  double ridge = 0.0;
  BlockHealth health = BlockHealth::kHealthy;
};

struct ConditioningOptions {
  /// cond(A_s A_s^T) thresholds for the marginal / degenerate verdicts.
  double cond_marginal = 1e8;
  double cond_degenerate = 1e12;
  /// Power-iteration steps for the extreme-eigenvalue estimates. The
  /// iteration is deterministic (fixed start vector), so preflight output
  /// is reproducible across runs and backends.
  int power_iterations = 48;
  /// Factorization policy used to probe whether the projector exists and
  /// what ridge the remediation path would apply.
  dopf::linalg::ProjectorOptions projector;
};

/// Estimate cond(G) for the SPD-candidate Gram matrix of `a` via power
/// iteration (largest eigenvalue) and inverse iteration through the
/// Cholesky factor (smallest). Returns +inf when G is numerically
/// indefinite. Exposed for tests.
double estimate_gram_cond(const dopf::linalg::Matrix& a,
                          const ConditioningOptions& options = {});

/// Analyze one component block.
BlockConditioning analyze_component(const dopf::opf::Component& comp,
                                    const ConditioningOptions& options = {});

/// Analyze every component of a decomposed problem.
std::vector<BlockConditioning> analyze_conditioning(
    const dopf::opf::DistributedProblem& problem,
    const ConditioningOptions& options = {});

}  // namespace dopf::robust
