#include "robust/sanitize.hpp"

#include <cmath>
#include <cstdio>
#include <map>
#include <utility>

namespace dopf::robust {

using dopf::network::Bus;
using dopf::network::Generator;
using dopf::network::kInfinity;
using dopf::network::Line;
using dopf::network::Load;
using dopf::network::Network;
using dopf::network::PerPhase;
using dopf::network::Phase;
using dopf::network::PhaseMatrix;
using dopf::network::PhaseSet;
using dopf::opf::Equation;
using dopf::opf::OpfModel;

namespace {

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3g", v);
  return buf;
}

/// The library's bounds use kInfinity = 1e30 as "unbounded"; raw IEEE
/// NaN/inf in any field is always corrupt data.
bool bad(double v) { return !std::isfinite(v); }

class Collector {
 public:
  explicit Collector(std::vector<Issue>* out) : out_(out) {}

  void add(IssueCode code, Severity severity, std::string site,
           std::string message) {
    out_->push_back(
        Issue{code, severity, std::move(site), std::move(message)});
  }

  /// Flag any non-finite entry of a per-phase triple.
  void check_finite(const PerPhase<double>& v, const std::string& site,
                    const char* field) {
    for (double x : v.values) {
      if (bad(x)) {
        add(IssueCode::kNonFiniteData, Severity::kError, site,
            std::string(field) + " contains a non-finite value");
        return;
      }
    }
  }

  void check_finite(const PhaseMatrix& m, const std::string& site,
                    const char* field) {
    for (const auto& row : m.m) {
      for (double x : row) {
        if (bad(x)) {
          add(IssueCode::kNonFiniteData, Severity::kError, site,
              std::string(field) + " contains a non-finite value");
          return;
        }
      }
    }
  }

  /// Per-phase box check: inverted (error) or pinned lb == ub (info).
  void check_box(const PerPhase<double>& lo, const PerPhase<double>& hi,
                 PhaseSet phases, const std::string& site,
                 const char* field) {
    for (Phase p : phases.phases()) {
      const double l = lo[p], h = hi[p];
      if (bad(l) || bad(h)) continue;  // already reported as non-finite
      if (l > h) {
        add(IssueCode::kInvertedBounds, Severity::kError, site,
            std::string(field) + " inverted on phase " +
                std::string(1, "abc"[dopf::network::index(p)]) + ": lb " +
                fmt(l) + " > ub " + fmt(h));
      } else if (l == h && std::abs(l) < kInfinity / 2) {
        add(IssueCode::kDegenerateBox, Severity::kInfo, site,
            std::string(field) + " pinned (lb == ub == " + fmt(l) +
                ") on phase " +
                std::string(1, "abc"[dopf::network::index(p)]));
      }
    }
  }

 private:
  std::vector<Issue>* out_;
};

}  // namespace

std::vector<Issue> sanitize_network(const Network& net,
                                    const SanitizeOptions& options) {
  (void)options;
  std::vector<Issue> issues;
  Collector c(&issues);

  for (const Bus& b : net.buses()) {
    const std::string site = "bus:" + b.name;
    c.check_finite(b.w_min, site, "w_min");
    c.check_finite(b.w_max, site, "w_max");
    c.check_finite(b.g_shunt, site, "g_shunt");
    c.check_finite(b.b_shunt, site, "b_shunt");
    c.check_box(b.w_min, b.w_max, b.phases, site, "voltage bounds");
    for (Phase p : b.phases.phases()) {
      if (!bad(b.w_min[p]) && b.w_min[p] < 0.0) {
        c.add(IssueCode::kBadScalar, Severity::kError, site,
              "negative squared-voltage lower bound " + fmt(b.w_min[p]));
      }
    }
    // Orphan phases: a non-head bus phase no incident line delivers. The
    // model still creates w variables for it, but nothing couples them to
    // the feeder; a load there demands power that cannot arrive.
    if (b.id != 0) {
      PhaseSet served = PhaseSet::none();
      for (const auto& inc : net.lines_at(b.id)) {
        for (Phase p : net.line(inc.line).phases.phases()) {
          served = served.with(p);
        }
      }
      for (Phase p : b.phases.phases()) {
        if (!served.has(p)) {
          c.add(IssueCode::kOrphanPhase, Severity::kWarning, site,
                std::string("phase ") +
                    std::string(1, "abc"[dopf::network::index(p)]) +
                    " is carried by no incident line");
        }
      }
    }
  }

  for (const Generator& g : net.generators()) {
    const std::string site = "gen:" + g.name;
    c.check_finite(g.p_min, site, "p_min");
    c.check_finite(g.p_max, site, "p_max");
    c.check_finite(g.q_min, site, "q_min");
    c.check_finite(g.q_max, site, "q_max");
    if (bad(g.cost)) {
      c.add(IssueCode::kNonFiniteData, Severity::kError, site,
            "cost is non-finite");
    }
    c.check_box(g.p_min, g.p_max, g.phases, site, "active power bounds");
    c.check_box(g.q_min, g.q_max, g.phases, site, "reactive power bounds");
    if (!g.phases.subset_of(net.bus(g.bus).phases)) {
      c.add(IssueCode::kPhaseMismatch, Severity::kError, site,
            "phases " + g.phases.to_string() + " not a subset of bus " +
                net.bus(g.bus).name + " phases " +
                net.bus(g.bus).phases.to_string());
    }
  }

  for (const Load& l : net.loads()) {
    const std::string site = "load:" + l.name;
    c.check_finite(l.p_ref, site, "p_ref");
    c.check_finite(l.q_ref, site, "q_ref");
    c.check_finite(l.alpha, site, "alpha");
    c.check_finite(l.beta, site, "beta");
    if (!l.phases.subset_of(net.bus(l.bus).phases)) {
      c.add(IssueCode::kPhaseMismatch, Severity::kError, site,
            "phases " + l.phases.to_string() + " not a subset of bus " +
                net.bus(l.bus).name + " phases");
    }
    if (l.connection == dopf::network::Connection::kDelta &&
        l.phases != PhaseSet::abc()) {
      c.add(IssueCode::kPhaseMismatch, Severity::kError, site,
            "delta load must be three-phase (linearization (4f)-(4j))");
    }
    for (Phase p : l.phases.phases()) {
      if ((!bad(l.alpha[p]) && l.alpha[p] < 0.0) ||
          (!bad(l.beta[p]) && l.beta[p] < 0.0)) {
        c.add(IssueCode::kBadScalar, Severity::kError, site,
              "negative ZIP exponent");
      }
    }
  }

  for (const Line& l : net.lines()) {
    const std::string site = "line:" + l.name;
    c.check_finite(l.r, site, "r");
    c.check_finite(l.x, site, "x");
    c.check_finite(l.g_shunt_from, site, "g_shunt_from");
    c.check_finite(l.b_shunt_from, site, "b_shunt_from");
    c.check_finite(l.g_shunt_to, site, "g_shunt_to");
    c.check_finite(l.b_shunt_to, site, "b_shunt_to");
    c.check_finite(l.tap_ratio, site, "tap_ratio");
    c.check_finite(l.flow_limit, site, "flow_limit");
    if (l.phases.empty()) {
      c.add(IssueCode::kEmptyPhases, Severity::kError, site,
            "line carries no phase");
    }
    if (!l.phases.subset_of(net.bus(l.from_bus).phases) ||
        !l.phases.subset_of(net.bus(l.to_bus).phases)) {
      c.add(IssueCode::kPhaseMismatch, Severity::kError, site,
            "phases " + l.phases.to_string() +
                " not a subset of both endpoint buses");
    }
    for (Phase p : l.phases.phases()) {
      if (!bad(l.tap_ratio[p]) && l.tap_ratio[p] <= 0.0) {
        c.add(IssueCode::kBadScalar, Severity::kError, site,
              "non-positive tap ratio " + fmt(l.tap_ratio[p]));
      }
      if (!bad(l.flow_limit[p]) && l.flow_limit[p] <= 0.0) {
        c.add(IssueCode::kBadScalar, Severity::kError, site,
              "non-positive flow limit " + fmt(l.flow_limit[p]));
      }
    }
  }

  if (net.num_generators() == 0) {
    c.add(IssueCode::kNoGenerator, Severity::kError, "network",
          "no generator (no substation modeled)");
  }
  if (net.num_buses() > 0 && !net.is_connected()) {
    c.add(IssueCode::kDisconnected, Severity::kError, "network",
          "graph is not connected: some bus is unreachable from the feeder "
          "head");
  }
  return issues;
}

std::vector<Issue> sanitize_model(const OpfModel& model,
                                  const SanitizeOptions& options) {
  std::vector<Issue> issues;
  Collector c(&issues);

  // Per-equation checks: non-finite terms and in-row scale disparity
  // (mixed units — e.g. impedances entered in ohms against per-unit
  // voltages — make one coefficient dwarf the rest and poison the pivot
  // tolerance of the row reduction).
  for (const Equation& eq : model.equations) {
    const std::string site = "equation:" + eq.name;
    double min_abs = kInfinity, max_abs = 0.0;
    bool finite = true;
    for (const auto& [var, coeff] : eq.terms) {
      (void)var;
      if (bad(coeff)) {
        finite = false;
        break;
      }
      const double a = std::abs(coeff);
      if (a > 0.0) {
        min_abs = std::min(min_abs, a);
        max_abs = std::max(max_abs, a);
      }
    }
    if (!finite || bad(eq.rhs)) {
      c.add(IssueCode::kNonFiniteData, Severity::kError, site,
            "equation has a non-finite coefficient or right-hand side");
      continue;
    }
    if (max_abs > 0.0 && min_abs < kInfinity) {
      const double disparity = max_abs / min_abs;
      if (disparity > options.row_disparity_error) {
        c.add(IssueCode::kRowScaleDisparity, Severity::kError, site,
              "coefficient magnitudes span " + fmt(disparity) +
                  "x (mixed-unit data?); row equilibration required");
      } else if (disparity > options.row_disparity_warn) {
        c.add(IssueCode::kRowScaleDisparity, Severity::kWarning, site,
              "coefficient magnitudes span " + fmt(disparity) + "x");
      }
    }
  }

  // Near-duplicate rows within one owning component: group equations by
  // (owner kind, owner id) — the grouping decompose() uses — and compare
  // normalized sparse rows pairwise. Components are tiny (Table IV), so
  // the O(m^2) pairs per component are negligible.
  std::map<std::pair<int, int>, std::vector<const Equation*>> groups;
  for (const Equation& eq : model.equations) {
    groups[{static_cast<int>(eq.owner), eq.owner_id}].push_back(&eq);
  }
  for (const auto& [key, eqs] : groups) {
    (void)key;
    // Dense-ify each row over the union of variables in the group.
    std::map<int, std::size_t> local;
    for (const Equation* eq : eqs) {
      for (const auto& [var, coeff] : eq->terms) {
        (void)coeff;
        local.emplace(var, local.size());
      }
    }
    std::vector<std::vector<double>> rows(eqs.size(),
                                          std::vector<double>(local.size()));
    std::vector<double> norms(eqs.size(), 0.0);
    for (std::size_t r = 0; r < eqs.size(); ++r) {
      for (const auto& [var, coeff] : eqs[r]->terms) {
        rows[r][local[var]] += coeff;
      }
      double nn = 0.0;
      for (double v : rows[r]) nn += v * v;
      norms[r] = std::sqrt(nn);
    }
    for (std::size_t i = 0; i < eqs.size(); ++i) {
      if (!(norms[i] > 0.0) || bad(norms[i])) continue;
      for (std::size_t j = i + 1; j < eqs.size(); ++j) {
        if (!(norms[j] > 0.0) || bad(norms[j])) continue;
        double dot = 0.0;
        for (std::size_t k = 0; k < rows[i].size(); ++k) {
          dot += rows[i][k] * rows[j][k];
        }
        const double cosine = std::abs(dot) / (norms[i] * norms[j]);
        // The |cos| = 1 boundary is fuzzy in floating point (an exact
        // duplicate can evaluate to 1 +/- 1ulp); anything parallel to
        // machine precision counts as an exact duplicate.
        if (1.0 - cosine <= 1e-15) {
          c.add(IssueCode::kNearDuplicateRows, Severity::kInfo,
                "equation:" + eqs[i]->name + " / " + eqs[j]->name,
                "rows are parallel (RREF will drop one)");
        } else if (1.0 - cosine <= options.near_parallel_tol) {
          c.add(IssueCode::kNearDuplicateRows, Severity::kWarning,
                "equation:" + eqs[i]->name + " / " + eqs[j]->name,
                "rows are nearly parallel (1 - |cos| = " + fmt(1.0 - cosine) +
                    "); the Gram matrix may lose positive definiteness");
        }
      }
    }
  }
  return issues;
}

}  // namespace dopf::robust
