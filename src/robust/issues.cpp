#include "robust/issues.hpp"

namespace dopf::robust {

const char* to_string(IssueCode code) {
  switch (code) {
    case IssueCode::kNonFiniteData: return "non-finite-data";
    case IssueCode::kInvertedBounds: return "inverted-bounds";
    case IssueCode::kDegenerateBox: return "degenerate-box";
    case IssueCode::kPhaseMismatch: return "phase-mismatch";
    case IssueCode::kOrphanPhase: return "orphan-phase";
    case IssueCode::kEmptyPhases: return "empty-phases";
    case IssueCode::kBadScalar: return "bad-scalar";
    case IssueCode::kNoGenerator: return "no-generator";
    case IssueCode::kDisconnected: return "disconnected";
    case IssueCode::kRowScaleDisparity: return "row-scale-disparity";
    case IssueCode::kNearDuplicateRows: return "near-duplicate-rows";
    case IssueCode::kInconsistentRows: return "inconsistent-rows";
    case IssueCode::kRankDeficient: return "rank-deficient";
    case IssueCode::kIllConditioned: return "ill-conditioned";
    case IssueCode::kEquilibrated: return "equilibrated";
    case IssueCode::kRegularized: return "regularized";
  }
  return "unknown";
}

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

std::string Issue::to_string() const {
  std::string out = "[";
  out += robust::to_string(severity);
  out += "] ";
  out += robust::to_string(code);
  out += " at ";
  out += site;
  out += ": ";
  out += message;
  return out;
}

std::size_t count_severity(const std::vector<Issue>& issues,
                           Severity severity) {
  std::size_t n = 0;
  for (const Issue& issue : issues) {
    if (issue.severity == severity) ++n;
  }
  return n;
}

}  // namespace dopf::robust
