#include "robust/preflight.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

namespace dopf::robust {

const char* to_string(PreflightPolicy policy) {
  switch (policy) {
    case PreflightPolicy::kWarn: return "warn";
    case PreflightPolicy::kRemediate: return "remediate";
    case PreflightPolicy::kStrict: return "strict";
  }
  return "unknown";
}

PreflightPolicy parse_policy(const std::string& text) {
  if (text == "warn") return PreflightPolicy::kWarn;
  if (text == "auto" || text == "remediate") return PreflightPolicy::kRemediate;
  if (text == "strict") return PreflightPolicy::kStrict;
  throw std::invalid_argument("unknown preflight policy '" + text +
                              "' (expected warn, auto, or strict)");
}

std::size_t PreflightReport::count_health(BlockHealth health) const {
  std::size_t n = 0;
  for (const BlockConditioning& b : blocks) {
    if (b.health == health) ++n;
  }
  return n;
}

double PreflightReport::worst_cond() const {
  double worst = 1.0;
  for (const BlockConditioning& b : blocks) {
    worst = std::max(worst, b.cond);
  }
  return worst;
}

dopf::linalg::ProjectorOptions PreflightReport::projector_options() const {
  dopf::linalg::ProjectorOptions opts;
  opts.auto_regularize = policy == PreflightPolicy::kRemediate;
  return opts;
}

std::string PreflightReport::summary() const {
  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line),
                "preflight[policy=%s]: %zu components, %zu error(s), %zu "
                "warning(s), %zu note(s)\n",
                robust::to_string(policy), blocks.size(), num_errors(),
                num_warnings(), count_severity(issues, Severity::kInfo));
  out += line;
  for (const Issue& issue : issues) {
    out += "  " + issue.to_string() + "\n";
  }
  const BlockConditioning* worst = nullptr;
  for (const BlockConditioning& b : blocks) {
    if (worst == nullptr || b.cond > worst->cond) worst = &b;
  }
  std::snprintf(line, sizeof(line),
                "conditioning: %zu healthy, %zu marginal, %zu degenerate",
                count_health(BlockHealth::kHealthy),
                count_health(BlockHealth::kMarginal),
                count_health(BlockHealth::kDegenerate));
  out += line;
  if (worst != nullptr) {
    std::snprintf(line, sizeof(line), "; worst cond %.3e (%s)",
                  worst->cond, worst->component.c_str());
    out += line;
  }
  out += "\n";
  if (equilibrated || max_ridge > 0.0) {
    out += "remediation:";
    if (equilibrated) out += " rows equilibrated;";
    std::snprintf(line, sizeof(line), " max Tikhonov ridge %.3e\n", max_ridge);
    out += line;
  }
  out += accepted ? "verdict: accepted\n" : "verdict: REJECTED: " + rejection +
                                                "\n";
  return out;
}

PreflightReport run_preflight(const dopf::network::Network& net,
                              const dopf::opf::OpfModel& model,
                              dopf::opf::DistributedProblem* problem_out,
                              const PreflightOptions& options) {
  PreflightReport report;
  report.policy = options.policy;

  // 1. Structural sanitation of the feeder, then numerical sanitation of
  //    the assembled model. Collect everything before judging.
  report.issues = sanitize_network(net, options.sanitize);
  {
    std::vector<Issue> model_issues = sanitize_model(model, options.sanitize);
    report.issues.insert(report.issues.end(),
                         std::make_move_iterator(model_issues.begin()),
                         std::make_move_iterator(model_issues.end()));
  }
  if (options.policy == PreflightPolicy::kStrict) {
    // Strict refuses raw models whose constraint rows are nearly parallel
    // even when RREF would recover a well-conditioned block: the Gram
    // matrix of the *input* is on the edge of losing positive definiteness,
    // and strict mode exists to surface that instead of relying on the
    // elimination order to save it.
    for (Issue& issue : report.issues) {
      if (issue.code == IssueCode::kNearDuplicateRows &&
          issue.severity == Severity::kWarning) {
        issue.severity = Severity::kError;
      }
    }
  }

  // 2. Decompose. Under the remediation policy, equilibrate the raw rows
  //    first (exact: the feasible sets are unchanged). An inconsistent
  //    component surfaces here as ModelError and becomes a typed issue
  //    rather than an exception escaping preflight.
  dopf::opf::DecomposeOptions dec = options.decompose;
  if (options.policy == PreflightPolicy::kRemediate) {
    dec.equilibrate_rows = true;
  }
  dopf::opf::DistributedProblem problem;
  bool decomposed = false;
  const bool sanitation_clean =
      count_severity(report.issues, Severity::kError) == 0;
  if (sanitation_clean) {
    try {
      problem = dopf::opf::decompose(net, model, dec);
      decomposed = true;
      report.equilibrated = dec.equilibrate_rows;
    } catch (const dopf::opf::ModelError& e) {
      report.issues.push_back(Issue{IssueCode::kInconsistentRows,
                                    Severity::kError, "decompose", e.what()});
    }
  }

  // 3. Conditioning analysis of each component block.
  if (decomposed) {
    ConditioningOptions cond = options.conditioning;
    report.blocks = analyze_conditioning(problem, cond);
    for (const BlockConditioning& block : report.blocks) {
      char msg[192];
      if (std::isinf(block.cond)) {
        // The exact projector does not exist. Under remediation a probed
        // ridge (if any) rescues it; otherwise this is fatal in every
        // policy — proceeding would only defer to a ConditioningError.
        if (options.policy == PreflightPolicy::kRemediate &&
            block.ridge > 0.0) {
          std::snprintf(msg, sizeof(msg),
                        "Gram matrix not SPD; remediated with Tikhonov "
                        "ridge %.3e (solution perturbed accordingly)",
                        block.ridge);
          report.issues.push_back(Issue{IssueCode::kRegularized,
                                        Severity::kWarning, block.component,
                                        msg});
          report.max_ridge = std::max(report.max_ridge, block.ridge);
        } else {
          std::snprintf(msg, sizeof(msg),
                        "Gram matrix not SPD within tolerance: the "
                        "closed-form projector (15) does not exist "
                        "(%zu rows kept of %zu)",
                        block.rows, block.rows_before_reduction);
          report.issues.push_back(Issue{IssueCode::kRankDeficient,
                                        Severity::kError, block.component,
                                        msg});
        }
      } else if (block.health == BlockHealth::kDegenerate) {
        std::snprintf(msg, sizeof(msg),
                      "cond(A_s A_s') ~ %.3e exceeds the degenerate "
                      "threshold %.1e",
                      block.cond, options.conditioning.cond_degenerate);
        report.issues.push_back(
            Issue{IssueCode::kIllConditioned,
                  options.policy == PreflightPolicy::kStrict
                      ? Severity::kError
                      : Severity::kWarning,
                  block.component, msg});
      } else if (block.health == BlockHealth::kMarginal) {
        std::snprintf(msg, sizeof(msg), "cond(A_s A_s') ~ %.3e is marginal",
                      block.cond);
        report.issues.push_back(Issue{IssueCode::kIllConditioned,
                                      Severity::kInfo, block.component, msg});
      }
    }
  }

  // 4. Verdict. Errors reject under every policy; strict additionally
  //    refuses any block that is not healthy-or-marginal (handled above by
  //    upgrading degenerate conditioning to an error).
  for (const Issue& issue : report.issues) {
    if (issue.severity == Severity::kError) {
      report.accepted = false;
      report.rejection = issue.to_string();
      break;
    }
  }

  if (report.accepted && problem_out != nullptr) {
    *problem_out = std::move(problem);
  }
  return report;
}

namespace {

bool same_block(const dopf::linalg::Matrix& a, const dopf::linalg::Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  const std::span<const double> da = a.data();
  const std::span<const double> db = b.data();
  return std::equal(da.begin(), da.end(), db.begin());
}

/// Emit kNonFiniteData errors for every NaN/inf entry of `v` (objective,
/// initial point, and right-hand sides must be finite; bounds may be
/// infinite and are checked separately).
void check_finite(std::span<const double> v, const std::string& site,
                  std::vector<Issue>* issues) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (!std::isfinite(v[i])) {
      issues->push_back(Issue{IssueCode::kNonFiniteData, Severity::kError,
                              site + "[" + std::to_string(i) + "]",
                              "non-finite value in scenario data"});
    }
  }
}

}  // namespace

PreflightReport run_scenario_preflight(
    const dopf::opf::DistributedProblem& base,
    const dopf::opf::DistributedProblem& scenario,
    const PreflightOptions& options) {
  PreflightReport report;
  report.policy = options.policy;

  // 1. Layout gate: a scenario must decompose to exactly the bound model's
  //    shape. Anything else is a new model, not a rebind.
  if (scenario.num_vars != base.num_vars ||
      scenario.components.size() != base.components.size()) {
    report.accepted = false;
    report.rejection =
        "scenario decomposition shape differs from the bound model (" +
        std::to_string(scenario.num_vars) + "/" +
        std::to_string(base.num_vars) + " variables, " +
        std::to_string(scenario.components.size()) + "/" +
        std::to_string(base.components.size()) +
        " components) — rebuild the SolveModel instead of rebinding";
    return report;
  }
  for (std::size_t s = 0; s < base.components.size(); ++s) {
    if (scenario.components[s].global != base.components[s].global) {
      report.accepted = false;
      report.rejection = "scenario component '" +
                         scenario.components[s].name +
                         "' covers a different variable set than the bound "
                         "model — rebuild the SolveModel instead of rebinding";
      return report;
    }
  }

  // 2. Scenario-surface sanitation: only the data a rebind touches. The
  //    unchanged topology was sanitized when the model was built and is
  //    deliberately NOT re-checked — that is the point of this entry point.
  check_finite(scenario.c, "scenario:c", &report.issues);
  check_finite(scenario.x0, "scenario:x0", &report.issues);
  for (std::size_t i = 0; i < scenario.lb.size(); ++i) {
    if (std::isnan(scenario.lb[i]) || std::isnan(scenario.ub[i])) {
      report.issues.push_back(Issue{IssueCode::kNonFiniteData,
                                    Severity::kError,
                                    "scenario:bounds[" + std::to_string(i) +
                                        "]",
                                    "NaN bound in scenario data"});
    } else if (scenario.lb[i] > scenario.ub[i]) {
      report.issues.push_back(
          Issue{IssueCode::kInvertedBounds, Severity::kError,
                "scenario:bounds[" + std::to_string(i) + "]",
                "lower bound exceeds upper bound in scenario data"});
    }
  }

  // 3. Per-component dirty check: conditioning analysis only where the
  //    equality block actually changed; everything else reuses the base
  //    verdict (and its factorization).
  for (std::size_t s = 0; s < base.components.size(); ++s) {
    const auto& sc = scenario.components[s];
    const auto& bc = base.components[s];
    const bool a_changed = !same_block(sc.a, bc.a);
    if (!a_changed) {
      ++report.scenario_components_reused;
      if (sc.b != bc.b) {
        check_finite(sc.b, "scenario:" + sc.name + ":b", &report.issues);
      }
      continue;
    }
    check_finite(sc.b, "scenario:" + sc.name + ":b", &report.issues);
    const BlockConditioning block =
        analyze_component(sc, options.conditioning);
    report.blocks.push_back(block);
    char msg[192];
    if (std::isinf(block.cond)) {
      if (options.policy == PreflightPolicy::kRemediate && block.ridge > 0.0) {
        std::snprintf(msg, sizeof(msg),
                      "Gram matrix not SPD; remediated with Tikhonov "
                      "ridge %.3e (solution perturbed accordingly)",
                      block.ridge);
        report.issues.push_back(Issue{IssueCode::kRegularized,
                                      Severity::kWarning, block.component,
                                      msg});
        report.max_ridge = std::max(report.max_ridge, block.ridge);
      } else {
        std::snprintf(msg, sizeof(msg),
                      "scenario edit makes the Gram matrix non-SPD: the "
                      "closed-form projector (15) does not exist");
        report.issues.push_back(Issue{IssueCode::kRankDeficient,
                                      Severity::kError, block.component,
                                      msg});
      }
    } else if (block.health == BlockHealth::kDegenerate) {
      std::snprintf(msg, sizeof(msg),
                    "cond(A_s A_s') ~ %.3e exceeds the degenerate "
                    "threshold %.1e after the scenario edit",
                    block.cond, options.conditioning.cond_degenerate);
      report.issues.push_back(Issue{IssueCode::kIllConditioned,
                                    options.policy == PreflightPolicy::kStrict
                                        ? Severity::kError
                                        : Severity::kWarning,
                                    block.component, msg});
    } else if (block.health == BlockHealth::kMarginal) {
      std::snprintf(msg, sizeof(msg),
                    "cond(A_s A_s') ~ %.3e is marginal after the scenario "
                    "edit",
                    block.cond);
      report.issues.push_back(Issue{IssueCode::kIllConditioned,
                                    Severity::kInfo, block.component, msg});
    }
  }

  // 4. Verdict: same rule as the full preflight.
  for (const Issue& issue : report.issues) {
    if (issue.severity == Severity::kError) {
      report.accepted = false;
      report.rejection = issue.to_string();
      break;
    }
  }
  return report;
}

}  // namespace dopf::robust
