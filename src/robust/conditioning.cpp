#include "robust/conditioning.hpp"

#include <cmath>
#include <limits>

#include "linalg/cholesky.hpp"

namespace dopf::robust {

using dopf::linalg::Cholesky;
using dopf::linalg::Matrix;

const char* to_string(BlockHealth health) {
  switch (health) {
    case BlockHealth::kHealthy: return "healthy";
    case BlockHealth::kMarginal: return "marginal";
    case BlockHealth::kDegenerate: return "degenerate";
  }
  return "unknown";
}

namespace {

/// Largest eigenvalue of the SPD(ish) matrix `g` by power iteration with a
/// fixed deterministic start vector. Good to a few percent after ~50
/// steps — plenty for an order-of-magnitude conditioning verdict.
double lambda_max(const Matrix& g, int iterations) {
  const std::size_t m = g.rows();
  if (m == 0) return 0.0;
  std::vector<double> v(m);
  // Deterministic, not axis-aligned (an eigenvector-orthogonal start would
  // stall); mild index-dependent ramp breaks symmetry.
  for (std::size_t i = 0; i < m; ++i) {
    v[i] = 1.0 + 0.25 * static_cast<double>(i % 7);
  }
  double lambda = 0.0;
  for (int it = 0; it < iterations; ++it) {
    std::vector<double> w = multiply(g, v);
    double norm = 0.0;
    for (double x : w) norm += x * x;
    norm = std::sqrt(norm);
    if (!(norm > 0.0) || !std::isfinite(norm)) return 0.0;
    for (double& x : w) x /= norm;
    lambda = norm;  // ||G v|| with ||v|| = 1 converges to lambda_max
    v = std::move(w);
  }
  return lambda;
}

/// Smallest eigenvalue of G via inverse power iteration through an
/// existing Cholesky factorization: lambda_min(G) = 1 / lambda_max(G^-1).
double lambda_min(const Cholesky& chol, int iterations) {
  const std::size_t m = chol.dim();
  if (m == 0) return 0.0;
  std::vector<double> v(m);
  for (std::size_t i = 0; i < m; ++i) {
    v[i] = 1.0 + 0.25 * static_cast<double>(i % 5);
  }
  double inv_lambda = 0.0;
  for (int it = 0; it < iterations; ++it) {
    std::vector<double> w = chol.solve(v);
    double norm = 0.0;
    for (double x : w) norm += x * x;
    norm = std::sqrt(norm);
    if (!(norm > 0.0) || !std::isfinite(norm)) return 0.0;
    for (double& x : w) x /= norm;
    inv_lambda = norm;
    v = std::move(w);
  }
  return inv_lambda > 0.0 ? 1.0 / inv_lambda : 0.0;
}

}  // namespace

double estimate_gram_cond(const Matrix& a, const ConditioningOptions& options) {
  if (a.rows() == 0) return 1.0;
  const Matrix g = dopf::linalg::gram_aat(a);
  const double lmax = lambda_max(g, options.power_iterations);
  const auto chol = Cholesky::try_factor(g, options.projector.chol_tol);
  if (!chol) return std::numeric_limits<double>::infinity();
  const double lmin = lambda_min(*chol, options.power_iterations);
  if (!(lmin > 0.0)) return std::numeric_limits<double>::infinity();
  return lmax / lmin;
}

BlockConditioning analyze_component(const dopf::opf::Component& comp,
                                    const ConditioningOptions& options) {
  BlockConditioning block;
  block.component = comp.name;
  block.rows = comp.num_rows();
  block.cols = comp.num_vars();
  block.rows_before_reduction = comp.rows_before_reduction;
  block.rank = comp.num_rows();  // full row rank by RREF construction
  if (comp.num_rows() == 0) {
    block.cond = 1.0;
    block.health = BlockHealth::kHealthy;
    return block;
  }

  block.cond = estimate_gram_cond(comp.a, options);
  if (std::isinf(block.cond)) {
    // Exact factorization failed: the projector does not exist as-is.
    // Probe what the remediation path would do so the report can state the
    // exact perturbation a regularized solve will accept.
    dopf::linalg::ProjectorOptions probe = options.projector;
    probe.auto_regularize = true;
    dopf::linalg::ProjectorStatus status;
    const auto proj =
        dopf::linalg::AffineProjector::try_build(comp.a, comp.b, probe,
                                                 &status);
    block.ridge = proj ? status.ridge : 0.0;
    block.health = BlockHealth::kDegenerate;
    return block;
  }
  if (block.cond >= options.cond_degenerate) {
    block.health = BlockHealth::kDegenerate;
  } else if (block.cond >= options.cond_marginal) {
    block.health = BlockHealth::kMarginal;
  } else {
    block.health = BlockHealth::kHealthy;
  }
  return block;
}

std::vector<BlockConditioning> analyze_conditioning(
    const dopf::opf::DistributedProblem& problem,
    const ConditioningOptions& options) {
  std::vector<BlockConditioning> blocks;
  blocks.reserve(problem.components.size());
  for (const auto& comp : problem.components) {
    blocks.push_back(analyze_component(comp, options));
  }
  return blocks;
}

}  // namespace dopf::robust
