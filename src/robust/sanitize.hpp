#pragma once

#include <vector>

#include "network/network.hpp"
#include "opf/model.hpp"
#include "robust/issues.hpp"

namespace dopf::robust {

/// Thresholds for the numerical model checks.
struct SanitizeOptions {
  /// Per-row coefficient magnitude range (max|a_ij| / min nonzero |a_ij|)
  /// beyond which an equation is flagged as mixed-unit data.
  double row_disparity_warn = 1e8;
  double row_disparity_error = 1e12;
  /// Two rows of one component are "near-duplicate" when the angle between
  /// them is below this (1 - |cos| <= tol). Exact duplicates are dropped by
  /// RREF and only noted; near-parallel survivors are warned about, since
  /// they are what breaks the Gram Cholesky later.
  double near_parallel_tol = 1e-8;
};

/// Structural sanitation of a feeder/network: non-finite numeric fields,
/// inverted or degenerate bound boxes, phase consistency, orphaned phases,
/// connectivity, generator presence. Unlike Network::validate() this never
/// throws — it collects EVERY finding with component provenance, so a user
/// fixing a malformed feeder sees all problems at once.
std::vector<Issue> sanitize_network(const dopf::network::Network& net,
                                    const SanitizeOptions& options = {});

/// Numerical sanitation of the assembled model: non-finite coefficients,
/// per-row scale disparity, near-duplicate constraint rows within one
/// owning component (the blocks that become A_s).
std::vector<Issue> sanitize_model(const dopf::opf::OpfModel& model,
                                  const SanitizeOptions& options = {});

}  // namespace dopf::robust
