#include "serve/client.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include <sys/socket.h>

namespace dopf::serve {

namespace {

dopf::runtime::BackoffOptions client_backoff(const ClientOptions& opts) {
  dopf::runtime::BackoffOptions bo;
  bo.base = static_cast<double>(opts.backoff_base_ms);
  bo.factor = 2.0;
  bo.max = 10000.0;
  // Multiplicative jitter in [0.5, 1.0): retrying clients de-synchronize
  // instead of stampeding the drained queue in lockstep.
  bo.jitter_min = 0.5;
  bo.jitter_max = 1.0;
  bo.seed = opts.seed;
  return bo;
}

}  // namespace

Client::Client(ClientOptions options)
    : opts_(std::move(options)), backoff_(client_backoff(opts_)) {}

bool Client::ensure_connected() {
  if (fd_.valid()) return true;
  fd_ = connect_unix(opts_.socket_path);
  return fd_.valid();
}

void Client::backoff(int attempt, std::uint32_t server_hint_ms) {
  // The server's hint is a floor, not a cap — it knows the backlog, we
  // know how often we have been shed (runtime::Backoff policy).
  const double ms =
      backoff_.delay(attempt, static_cast<double>(server_hint_ms));
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int>(ms)));
}

bool Client::ping(std::uint64_t id) {
  for (int attempt = 0; attempt <= opts_.retries; ++attempt) {
    ++total_attempts_;
    if (attempt > 0) backoff(attempt - 1, 0);
    if (!ensure_connected()) continue;
    Ping ping;
    ping.id = id;
    if (!write_all_fd(fd_.get(), encode_frame(Op::kPing, ping.encode()))) {
      fd_.reset();
      continue;
    }
    try {
      for (;;) {
        const ReadOutcome out = read_frame_fd(fd_.get(), 2000);
        if (out.status != ReadOutcome::kFrame) break;  // idle or EOF
        if (out.frame.op == Op::kPong &&
            Ping::decode(out.frame.payload).id == id) {
          return true;
        }
        // A stale frame for an earlier exchange; keep reading.
      }
    } catch (const WireError&) {
      // Torn or corrupted pong: fall through to reconnect.
    }
    fd_.reset();
  }
  return false;
}

Outcome Client::submit(const SolveRequest& req) {
  int overload_rejects = 0;
  int transport_faults = 0;
  bool ever_connected = false;
  std::string last_error = "no attempt made";

  for (int attempt = 0; attempt <= opts_.retries; ++attempt) {
    ++total_attempts_;
    if (!ensure_connected()) {
      last_error = "connect to " + opts_.socket_path + " failed";
      backoff(attempt, 0);
      continue;
    }
    ever_connected = true;
    if (!write_all_fd(fd_.get(),
                      encode_frame(Op::kSolveRequest, req.encode()))) {
      fd_.reset();
      last_error = "request write failed";
      ++transport_faults;
      backoff(attempt, 0);
      continue;
    }

    std::uint32_t hint = 0;
    bool retry = false;
    try {
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::milliseconds(opts_.response_timeout_ms);
      for (;;) {
        const auto left =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - std::chrono::steady_clock::now())
                .count();
        if (left <= 0) {
          // Response never arrived (dropped frame or a server that went
          // away mid-solve): reconnect and resend.
          fd_.reset();
          last_error = "timed out waiting for response";
          ++transport_faults;
          retry = true;
          break;
        }
        const ReadOutcome out =
            read_frame_fd(fd_.get(), static_cast<int>(left));
        if (out.status == ReadOutcome::kIdle) continue;  // deadline loop
        if (out.status == ReadOutcome::kEof) {
          fd_.reset();
          last_error = "connection closed before response";
          ++transport_faults;
          retry = true;
          break;
        }
        if (out.frame.op == Op::kSolveResponse) {
          const SolveResponse resp = SolveResponse::decode(out.frame.payload);
          if (resp.request_id != req.request_id) continue;  // stale
          Outcome ok;
          ok.kind = Outcome::Kind::kResponse;
          ok.response = resp;
          ok.attempts = attempt + 1;
          return ok;
        }
        if (out.frame.op == Op::kReject) {
          const Reject rej = Reject::decode(out.frame.payload);
          if (rej.request_id != 0 && rej.request_id != req.request_id) {
            continue;  // stale reject for an earlier exchange
          }
          if (rej.code == RejectCode::kOverloaded) {
            ++overload_rejects;
            hint = rej.retry_after_ms;
            last_error = "shed by overloaded server";
            retry = true;
            break;
          }
          if (rej.code == RejectCode::kWire) {
            // The server could not decode our frame (corrupted in
            // flight); it may have closed the stream. Resend fresh.
            fd_.reset();
            ++transport_faults;
            last_error = "server rejected frame as malformed";
            retry = true;
            break;
          }
          Outcome no;
          no.kind = Outcome::Kind::kReject;
          no.reject = rej;
          no.attempts = attempt + 1;
          return no;
        }
        // Unknown-but-valid frame kind (pong for someone else): skip.
      }
    } catch (const WireError& e) {
      // Torn/corrupted response frame: the stream is desynchronized.
      fd_.reset();
      ++transport_faults;
      last_error = std::string("transport fault: ") + e.what();
      retry = true;
    }
    if (retry) backoff(attempt, hint);
  }

  if (!ever_connected) {
    throw ClientError(ClientError::Kind::kConnect,
                      "request " + std::to_string(req.request_id) + ": " +
                          last_error);
  }
  if (overload_rejects > transport_faults) {
    throw ClientError(ClientError::Kind::kOverloaded,
                      "request " + std::to_string(req.request_id) +
                          ": shed " + std::to_string(overload_rejects) +
                          " time(s); retry budget exhausted");
  }
  throw ClientError(ClientError::Kind::kTransport,
                    "request " + std::to_string(req.request_id) +
                        ": retry budget exhausted; last: " + last_error);
}

}  // namespace dopf::serve
