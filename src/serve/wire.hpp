#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace dopf::serve {

/// Thrown on any malformed, truncated, oversized, or CRC-mismatched frame
/// or payload field. The load-bearing contract of the wire layer: a torn or
/// corrupted frame ALWAYS surfaces as this type — never a crash, a hang,
/// or a silently partial decode (the same solve-or-typed-reject discipline
/// the checkpoint/record codecs follow, now at the socket boundary).
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Frame kinds. The ordinal-keyed ServeFaultPlan counts frames of every
/// kind, so keep the numbering stable.
enum class Op : std::uint8_t {
  kSolveRequest = 1,   ///< client -> server: feeder + scenario + options
  kSolveResponse = 2,  ///< server -> client: deterministic solve summary
  kReject = 3,         ///< server -> client: typed rejection
  kPing = 4,           ///< client -> server: liveness / readiness probe
  kPong = 5,           ///< server -> client: ping reply (echoes the id)
  // Supervisor link only (parent <-> worker subprocess over a socketpair;
  // see serve/supervisor.hpp). A client sending these gets kBadRequest.
  kCrashArm = 6,       ///< parent -> worker: crash on the next solve (drill)
  kWorkerStats = 7,    ///< worker -> parent: final stats report before exit
};

/// Why a request was rejected instead of solved. Every rejection carries
/// one of these over the wire; the client maps them onto its pinned exit
/// codes (see tools/dopf_client.cpp).
enum class RejectCode : std::uint8_t {
  kOverloaded = 1,    ///< bounded queue full; retry_after_ms is a hint
  kDeadline = 2,      ///< the request's deadline expired (queued or solving)
  kPreflight = 3,     ///< admission control (PR 5 preflight) refused input
  kWire = 4,          ///< the request frame failed to decode (CRC/truncated)
  kShuttingDown = 5,  ///< server draining; request was not admitted
  kBadRequest = 6,    ///< decodable frame, invalid content (unknown feeder,
                      ///< malformed scenario override, bad options)
  kDrained = 7,       ///< in-flight solve checkpointed durably on drain;
                      ///< resubmit with resume to continue byte-identically
  kInternal = 8,      ///< unexpected server-side failure (typed, not crash)
  kQuarantined = 9,   ///< poison-pill circuit breaker: this request's
                      ///< content_hash crashed a worker twice; retry_after_ms
                      ///< carries the quarantine TTL (readmission time)
};

const char* to_string(Op op);
const char* to_string(RejectCode code);

/// Frame layout (all integers little-endian):
///
///   magic   u32  'D''P''F''1'
///   op      u8
///   length  u32  payload byte count (<= kMaxPayload)
///   payload length bytes
///   crc     u32  CRC-32 over op || length || payload
///
/// The CRC covers the header fields after the magic, so a flipped op or a
/// spliced length is caught the same way as payload rot. Oversized length
/// fields are rejected BEFORE allocation — a corrupt length cannot make the
/// receiver try to allocate 4 GiB.
inline constexpr std::uint32_t kWireMagic = 0x31465044u;  // "DPF1" LE
inline constexpr std::uint32_t kMaxPayload = 1u << 20;    // 1 MiB

/// Serialize a frame (header + payload + CRC) into a byte string.
std::string encode_frame(Op op, std::string_view payload);

/// Decode one frame from `bytes`. Throws WireError on truncation, bad
/// magic, oversize, unknown op, or CRC mismatch. On success `*consumed`
/// receives the frame's total byte length.
struct Frame {
  Op op = Op::kPing;
  std::string payload;
};
Frame decode_frame(std::string_view bytes, std::size_t* consumed = nullptr);

/// Bounds-checked little-endian payload writer. Append-only; the result is
/// the payload handed to encode_frame.
class WireWriter {
 public:
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// Exact IEEE-754 bits: doubles round-trip losslessly (the binary
  /// equivalent of the hex-float text codec).
  void f64(double v);
  /// u32 length prefix + raw bytes.
  void str(std::string_view s);

  const std::string& bytes() const { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked payload reader: every getter throws WireError (naming the
/// field) instead of reading past the end. `done()` rejects trailing
/// garbage so a spliced payload cannot hide extra bytes.
class WireReader {
 public:
  explicit WireReader(std::string_view bytes) : bytes_(bytes) {}

  std::uint8_t u8(const char* field);
  std::uint32_t u32(const char* field);
  std::uint64_t u64(const char* field);
  double f64(const char* field);
  std::string str(const char* field);
  /// Throw unless the payload was consumed exactly.
  void done(const char* what) const;

 private:
  std::string_view need(std::size_t n, const char* field);
  std::string_view bytes_;
  std::size_t pos_ = 0;
};

/// One solve request: a feeder reference, scenario overrides against its
/// base case (the runtime/scenario.hpp override grammar, one per line),
/// and the solver options the server honors. Everything else about the
/// solve (backend, preflight remediation artifacts) is server policy.
struct SolveRequest {
  std::uint64_t request_id = 0;
  /// Relative deadline in milliseconds, armed at ADMISSION (queue wait
  /// counts against it); 0 = none.
  std::uint32_t deadline_ms = 0;
  /// Preflight policy for admission control: "off", "warn", "auto",
  /// "strict" (the dopf_solve --preflight vocabulary).
  std::string preflight = "warn";
  /// Consult the server's checkpoint directory for a durable checkpoint of
  /// this exact request (same content hash) and resume from it.
  bool resume = false;
  double rho = 100.0;
  double eps_rel = 1e-3;
  std::uint32_t max_iterations = 200000;
  std::uint32_t check_every = 10;
  std::string feeder;    ///< "builtin:NAME" or a feeder file path
  std::string scenario;  ///< override lines ("load * scale 1.1\n..."), may
                         ///< be empty for the base case

  std::string encode() const;
  static SolveRequest decode(std::string_view payload);

  /// FNV-1a over the solve-defining content (feeder, scenario, options —
  /// NOT request_id): two requests with equal hashes ask for the same
  /// solve, so the hash names the drain-checkpoint file a resubmission
  /// resumes from.
  std::uint64_t content_hash() const;
};

/// A deterministic solve summary: exact result bits, no wall-clock times,
/// so the same request always yields byte-identical response frames — the
/// property the fault harness byte-compares against solo solves.
struct SolveResponse {
  std::uint64_t request_id = 0;
  std::uint8_t status = 0;  ///< core::AdmmStatus as u8
  bool converged = false;
  std::uint32_t iterations = 0;
  double objective = 0.0;
  double primal_residual = 0.0;
  double dual_residual = 0.0;
  std::uint64_t model_fp = 0;
  std::uint64_t scenario_fp = 0;

  std::string encode() const;
  static SolveResponse decode(std::string_view payload);
};

/// A typed rejection. `retry_after_ms` is the server's backoff hint
/// (meaningful for kOverloaded; 0 otherwise).
struct Reject {
  std::uint64_t request_id = 0;  ///< 0 = unattributable (corrupt frame)
  RejectCode code = RejectCode::kInternal;
  std::uint32_t retry_after_ms = 0;
  std::string message;

  std::string encode() const;
  static Reject decode(std::string_view payload);
};

/// Ping/pong carry only an id so a delayed pong cannot be mistaken for the
/// answer to a later ping.
struct Ping {
  std::uint64_t id = 0;
  std::string encode() const;
  static Ping decode(std::string_view payload);
};

}  // namespace dopf::serve
