#pragma once

#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/scenario_binding.hpp"
#include "core/solve_model.hpp"
#include "network/network.hpp"
#include "opf/decompose.hpp"

namespace dopf::serve {

/// One cached topology precompute: everything requests sharing a topology
/// fingerprint coalesce onto. The SolveModel owns the per-component
/// projector factorizations (the paper's Table 4 subproblem precompute —
/// the expensive part, identical across load-only scenario variations);
/// the ScenarioBinding is rebound in place per request, so a b-only
/// scenario is a rhs rebind with zero refactorizations.
///
/// `mu` serializes rebind+solve on the binding: one scenario is bound at a
/// time per model, while requests against DIFFERENT models solve in
/// parallel on other workers.
struct CachedModel {
  std::string key;  ///< feeder + preflight policy (what admission derived)
  dopf::network::Network net;
  dopf::opf::DecomposeOptions decompose;
  dopf::linalg::ProjectorOptions projector;
  std::unique_ptr<dopf::core::SolveModel> model;
  std::unique_ptr<dopf::core::ScenarioBinding> binding;
  std::uint64_t model_fp = 0;  ///< core::topology_fingerprint of the pack
  std::size_t bytes = 0;       ///< resident-memory estimate for the budget
  std::mutex mu;
};

/// Rough resident-byte estimate for a bound model: the packed SoA image
/// plus the retained Gram factorizations (approximated as one more
/// Abar-sized block). Order-of-magnitude is all the budget needs.
std::size_t estimate_model_bytes(const dopf::core::ScenarioBinding& binding);

/// Memory-budgeted LRU cache of CachedModel entries, keyed by the
/// admission-derived model key. Entries are handed out as shared_ptr, so an
/// evicted entry stays alive until its last in-flight request releases it —
/// eviction bounds RESIDENT cache memory, never dangles a solve.
///
/// Concurrent acquires of the same missing key build once: later arrivals
/// wait for the builder instead of paying a duplicate factorization.
class ModelCache {
 public:
  using Builder = std::function<std::shared_ptr<CachedModel>()>;

  /// `budget_bytes` caps the estimated resident total; at least one entry
  /// is always retained (a budget smaller than any model still serves,
  /// thrashing instead of failing).
  explicit ModelCache(std::size_t budget_bytes);

  /// Return the cached entry for `key`, building it via `build` on a miss.
  /// Throws whatever `build` throws (the key stays absent).
  std::shared_ptr<CachedModel> acquire(const std::string& key,
                                       const Builder& build);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t resident_bytes = 0;
    std::size_t entries = 0;
  };
  Stats stats() const;

 private:
  void evict_over_budget_locked();

  std::size_t budget_bytes_;
  mutable std::mutex mu_;
  std::condition_variable build_done_;
  /// Most-recently-used at the front; eviction pops the back.
  std::list<std::shared_ptr<CachedModel>> lru_;
  std::unordered_map<std::string, std::list<std::shared_ptr<CachedModel>>::iterator>
      by_key_;
  std::unordered_map<std::string, bool> building_;
  Stats stats_;
};

}  // namespace dopf::serve
