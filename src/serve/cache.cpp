#include "serve/cache.hpp"

namespace dopf::serve {

std::size_t estimate_model_bytes(const dopf::core::ScenarioBinding& binding) {
  const auto& pack = binding.pack();
  const std::size_t doubles =
      pack.abar.size() + pack.bbar.size() + pack.c.size() + pack.lb.size() +
      pack.ub.size() + pack.x0.size();
  const std::size_t ints = pack.global_idx.size() + pack.comp_nvars.size();
  const std::size_t longs = pack.comp_offset.size() + pack.abar_offset.size() +
                            pack.gather_ptr.size() + pack.gather_pos.size();
  // The retained per-component factorizations are roughly another
  // Abar-sized block (Gram factors + pivot bookkeeping).
  return (doubles + pack.abar.size()) * sizeof(double) + ints * sizeof(int) +
         longs * sizeof(std::int64_t);
}

ModelCache::ModelCache(std::size_t budget_bytes)
    : budget_bytes_(budget_bytes) {}

std::shared_ptr<CachedModel> ModelCache::acquire(const std::string& key,
                                                 const Builder& build) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto it = by_key_.find(key);
    if (it != by_key_.end()) {
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, it->second);  // touch
      return *it->second;
    }
    if (building_.count(key) == 0) break;
    // Another worker is factorizing this key right now; wait for it
    // instead of paying a duplicate precompute.
    build_done_.wait(lock);
  }

  building_[key] = true;
  lock.unlock();
  std::shared_ptr<CachedModel> entry;
  try {
    entry = build();
  } catch (...) {
    lock.lock();
    building_.erase(key);
    build_done_.notify_all();
    throw;
  }
  lock.lock();
  building_.erase(key);
  ++stats_.misses;
  lru_.push_front(entry);
  by_key_[key] = lru_.begin();
  stats_.resident_bytes += entry->bytes;
  stats_.entries = lru_.size();
  evict_over_budget_locked();
  build_done_.notify_all();
  return entry;
}

void ModelCache::evict_over_budget_locked() {
  while (stats_.resident_bytes > budget_bytes_ && lru_.size() > 1) {
    const std::shared_ptr<CachedModel> victim = lru_.back();
    lru_.pop_back();
    by_key_.erase(victim->key);
    stats_.resident_bytes -= victim->bytes;
    ++stats_.evictions;
    // In-flight requests still hold shared_ptr copies; the model is freed
    // when the last one releases it.
  }
  stats_.entries = lru_.size();
}

ModelCache::Stats ModelCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace dopf::serve
