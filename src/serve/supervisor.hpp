#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include <sys/types.h>

#include <chrono>
#include <mutex>

#include "core/cancel.hpp"
#include "core/solve_session.hpp"
#include "runtime/backoff.hpp"
#include "runtime/durable.hpp"
#include "runtime/fault.hpp"
#include "serve/cache.hpp"
#include "serve/socket_io.hpp"
#include "serve/wire.hpp"

namespace dopf::serve {

/// Process-isolated solve workers (DESIGN.md §10).
///
/// The server's dispatcher threads no longer solve in-process: each owns a
/// WorkerSupervisor that forks a worker subprocess and shuttles
/// SolveRequest/SolveResponse frames over a socketpair using the existing
/// wire codec. A worker that segfaults, aborts, or is OOM-killed takes down
/// one request's execution, never the server: the supervisor classifies the
/// exit, restarts the worker under a seeded jittered backoff with a bounded
/// restart budget, re-dispatches the victim request once, and quarantines
/// any request content that crashes workers twice (poison-pill circuit
/// breaker, typed kQuarantined reject with a TTL readmission hint).

// ---------------------------------------------------------------------------
// Worker exit classification

/// What waitpid() said about a worker that is gone.
struct WorkerExit {
  enum class Kind {
    kClean,    ///< exit(0)
    kNonZero,  ///< exit(N), N != 0 (includes a failed exec)
    kSignal,   ///< killed by a signal (SIGSEGV, SIGABRT, SIGKILL, ...)
  };
  Kind kind = Kind::kClean;
  int code = 0;    ///< exit status for kNonZero
  int signal = 0;  ///< terminating signal for kSignal

  /// "clean exit" / "exit code 3" / "killed by signal 11 (SIGSEGV)".
  std::string to_string() const;
};

/// Map a raw waitpid() status word onto a WorkerExit.
WorkerExit classify_worker_exit(int waitpid_status);

// ---------------------------------------------------------------------------
// Crash fault plane (the fourth plane, next to --faults / --serve-faults /
// --io-faults)

/// One scheduled worker crash, keyed by the 1-based global DISPATCH ordinal:
/// every hand-off of a request to a worker — including the re-dispatch of a
/// crash victim — consumes one ordinal, so a plan is deterministic for a
/// fixed request sequence regardless of timing.
struct CrashFailpoint {
  enum class Kind {
    kSignal,  ///< worker raises SIGSEGV at the start of the solve
    kExit,    ///< worker calls _exit(3) at the start of the solve
    kHang,    ///< worker blocks forever (caught by --hang-timeout-ms)
  };
  Kind kind = Kind::kSignal;
  int request = 1;  ///< first dispatch ordinal to crash on (1-based)
  int times = 1;    ///< crash on `times` consecutive ordinals

  std::string to_string() const;
};

/// A deterministic worker-crash schedule, parseable from a CLI spec string
/// (same grammar family as ServeFaultPlan):
///
///   signal:request=N[,times=K]
///   exit:request=N[,times=K]
///   hang:request=N[,times=K]
///
/// Events are separated by ';'. Example — the second dispatch segfaults its
/// worker and the fifth exits uncleanly:
///   "signal:request=2;exit:request=5"
///
/// Duplicate (kind, request) entries are rejected; throws WireError on any
/// malformed input.
struct CrashFaultPlan {
  std::vector<CrashFailpoint> events;

  bool empty() const { return events.empty(); }
  static CrashFaultPlan parse(const std::string& spec);
  std::string to_string() const;
};

/// Query-side view of a CrashFaultPlan shared by all dispatcher threads:
/// one global dispatch counter under a mutex, so concurrent dispatchers
/// observe a single deterministic ordinal sequence per dispatch order.
class CrashFaultInjector {
 public:
  CrashFaultInjector() = default;
  explicit CrashFaultInjector(CrashFaultPlan plan) : plan_(std::move(plan)) {}

  struct Counts {
    int signaled = 0;
    int exited = 0;
    int hung = 0;
  };

  /// Register one dispatch; returns the failpoint to arm on the worker (the
  /// first match on this ordinal), or nullptr for a clean dispatch.
  const CrashFailpoint* on_dispatch();

  bool empty() const { return plan_.empty(); }
  Counts counts() const;

 private:
  CrashFaultPlan plan_;
  mutable std::mutex mu_;
  int dispatched_ = 0;
  Counts counts_;
};

// ---------------------------------------------------------------------------
// Poison-request quarantine

/// Content-keyed crash circuit breaker. A request whose content_hash
/// crashes a worker twice is quarantined: further submissions of the same
/// content are rejected typed (kQuarantined) instead of being allowed to
/// take down worker after worker. After `ttl_ms` the entry is dropped and
/// the content is readmitted (it takes two fresh crashes to re-quarantine —
/// the crash may have been environmental, not the request's fault).
class Quarantine {
 public:
  explicit Quarantine(int ttl_ms) : ttl_ms_(ttl_ms) {}

  /// Record one worker crash attributed to `content_hash`; returns the
  /// accumulated crash count. The second crash arms the quarantine.
  int record_crash(std::uint64_t content_hash);

  /// Remaining quarantine TTL in milliseconds (>= 1) when `content_hash` is
  /// quarantined, 0 when admissible. An expired entry is erased here — the
  /// readmission path.
  std::uint32_t active_ms(std::uint64_t content_hash);

  /// How many distinct content hashes were ever quarantined (stats).
  std::uint64_t total_quarantined() const;

 private:
  struct Entry {
    int crashes = 0;
    bool armed = false;
    std::chrono::steady_clock::time_point until{};
  };
  int ttl_ms_;
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::uint64_t total_ = 0;
};

// ---------------------------------------------------------------------------
// Supervisor-link payloads (Op::kCrashArm, Op::kWorkerStats)

/// parent -> worker: crash (drill) at the start of the next solve.
struct CrashArm {
  CrashFailpoint::Kind kind = CrashFailpoint::Kind::kSignal;

  std::string encode() const;
  static CrashArm decode(std::string_view payload);
};

/// worker -> parent: final stats report, sent once when the worker drains
/// (EOF on the supervisor link, or drain signal while idle) just before it
/// exits 0. The parent folds these into the ServerStats aggregate a crash
/// would otherwise lose silently.
struct WorkerStatsMsg {
  dopf::core::SessionStats session;
  dopf::runtime::IoStats io;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_resident_bytes = 0;
  std::uint64_t cache_entries = 0;
  std::uint64_t solved = 0;
  /// A durable checkpoint write/read failed in this worker (maps to the
  /// server's exit-code-7 contract).
  bool io_failure = false;

  std::string encode() const;
  static WorkerStatsMsg decode(std::string_view payload);
};

// ---------------------------------------------------------------------------
// Worker side

/// Everything a worker subprocess needs besides the socketpair fd. Built
/// from argv in --worker mode (tools/dopf_serve.cpp) or captured by the
/// in-process `worker_entry` closure in tests.
struct WorkerConfig {
  std::size_t cache_budget_bytes = 256u << 20;
  std::string checkpoint_dir;
  dopf::runtime::DurableOptions durable;  ///< `faults` pointer ignored
  dopf::runtime::FsFaultPlan fs_faults;   ///< injector built per worker
};

/// Worker subprocess main loop: read SolveRequest frames from `fd`, solve,
/// write SolveResponse/Reject frames back; honor Op::kCrashArm drills. On
/// EOF (parent closed its end) or a drain signal while idle, send one
/// Op::kWorkerStats frame and return. Returns 0, or 7 when a durable-I/O
/// failure occurred (belt to the stats frame's suspenders).
int worker_main(int fd, const WorkerConfig& config);

// ---------------------------------------------------------------------------
// Parent side

struct SupervisorOptions {
  /// argv prefix used to exec a worker subprocess; the supervisor appends
  /// "--worker-fd N". Typically {"/proc/self/exe", "--worker", ...config}.
  std::vector<std::string> worker_command;
  /// Test seam: run this in the forked child instead of exec'ing
  /// worker_command (plain fork, no exec — unit tests only).
  std::function<int(int fd)> worker_entry;
  /// Restarts allowed per worker slot before it degrades permanently.
  int restart_budget = 8;
  /// Seeded jittered exponential backoff between restarts (runtime::Backoff
  /// policy — the same engine the client and durable retries use).
  int backoff_base_ms = 50;
  int backoff_max_ms = 2000;
  std::uint64_t backoff_seed = 1;
  /// SIGKILL a worker that takes longer than this to answer one dispatch;
  /// 0 disables (a legitimate solve can take arbitrarily long).
  int hang_timeout_ms = 0;
  /// How long shutdown() waits for the farewell stats frame / exit before
  /// escalating to SIGKILL.
  int grace_ms = 10000;
};

/// One worker slot: spawn, exchange, classify, restart. Owned and driven by
/// exactly one dispatcher thread; `signal_drain()` is the only cross-thread
/// entry point (it touches nothing but an atomic pid).
class WorkerSupervisor {
 public:
  /// `drain` (may be null) suppresses respawns once cancelled — a worker
  /// that dies during drain is not worth restarting.
  WorkerSupervisor(int slot, SupervisorOptions options,
                   const dopf::core::CancelToken* drain);
  ~WorkerSupervisor();
  WorkerSupervisor(const WorkerSupervisor&) = delete;
  WorkerSupervisor& operator=(const WorkerSupervisor&) = delete;

  /// Outcome of one request round-trip.
  struct Exchange {
    enum class Kind {
      kFrame,       ///< worker answered; `frame` is the reply to relay
      kWorkerExit,  ///< worker died before answering; `exit` says how
      kDegraded,    ///< no live worker and the restart budget is spent
    };
    Kind kind = Kind::kFrame;
    Frame frame;
    WorkerExit exit;
    bool hang_killed = false;  ///< kWorkerExit caused by the hang reaper
  };

  /// Send one encoded request frame (optionally preceded by a crash-arm
  /// directive) and wait for the worker's reply. Spawns or restarts the
  /// worker first if needed.
  Exchange exchange(const std::string& request_frame,
                    const CrashFailpoint* directive);

  /// Forward the drain signal (SIGTERM) to the live worker so its in-flight
  /// solve observes cancellation. Async-thread-safe; called from run()'s
  /// drain path while the dispatcher may be mid-exchange.
  void signal_drain();

  /// Final report collected by shutdown().
  struct ShutdownReport {
    bool have_stats = false;
    WorkerStatsMsg stats;
    WorkerExit exit;
  };

  /// Close the request direction, collect the worker's farewell stats
  /// frame, reap it (SIGKILL after `grace_ms`). Idempotent.
  ShutdownReport shutdown();

  bool degraded() const { return degraded_; }
  int restarts() const { return restarts_; }

 private:
  bool ensure_worker();
  bool try_spawn();
  /// Reap the worker after its fd went dead (blocking waitpid; optionally
  /// SIGKILL first). Records last_exit_.
  void reap(bool kill_first);
  bool draining() const;

  int slot_;
  SupervisorOptions opts_;
  const dopf::core::CancelToken* drain_;
  dopf::runtime::Backoff backoff_;
  Fd fd_;
  std::atomic<pid_t> pid_{-1};
  int spawns_ = 0;
  int spawn_failures_ = 0;
  int restarts_ = 0;
  bool degraded_ = false;
  bool shut_down_ = false;
  WorkerExit last_exit_;
  bool have_stats_ = false;
  WorkerStatsMsg stats_;
};

// ---------------------------------------------------------------------------
// Shared request plumbing (used by both the parent's dispatcher pre-checks
// and the worker's solve path)

/// Tagged wrapper so catch ladders can map a validation failure to
/// kBadRequest without stringly-typed matching.
class BadRequestError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Reject a structurally-decodable request with invalid content (empty
/// feeder, non-finite rho, bad preflight policy, ...). Throws
/// BadRequestError. Runs in the PARENT before dispatch — garbage never
/// reaches a worker — and again in the worker as defense in depth.
void validate_request(const SolveRequest& req);

}  // namespace dopf::serve
