#pragma once

#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

#include "serve/wire.hpp"

namespace dopf::serve {

/// One scheduled transport failpoint. Where FsFailpoint (runtime/fault.hpp)
/// is keyed by the 1-based ordinal of a filesystem operation, transport
/// failpoints are keyed by the 1-based ordinal of the matching frame the
/// server SENDS — deterministic for the same request schedule, independent
/// of wall time. The four kinds model the torn/corrupted/slow shapes a real
/// transport exhibits:
///
///   kDrop      the frame is silently not sent (client read times out)
///   kCorrupt   one payload byte is flipped (client CRC check fires)
///   kTruncate  only a byte-prefix is sent and the connection is closed
///              (the wire-level torn write; client sees EOF mid-frame)
///   kDelay     the frame is sent after a real `delay_ms` sleep (reorders
///              against client retries; answers must still be identical)
struct ServeFailpoint {
  enum class Kind { kDrop, kCorrupt, kTruncate, kDelay };
  Kind kind = Kind::kDrop;
  /// 1-based ordinal of the first matching sent frame this fires on.
  int op = 1;
  /// Fire on `times` consecutive matching frames [op, op+times-1].
  int times = 1;
  /// Truncation length (kTruncate; default = half the frame).
  std::size_t bytes = 0;
  /// Real delay in milliseconds (kDelay; default 50).
  int delay_ms = 50;
  /// Only frames of this op kind count (0 = every frame). Lets a plan
  /// target "the 3rd solve-response" instead of "the 3rd frame".
  std::uint8_t frame_op = 0;

  std::string to_string() const;
};

/// A deterministic schedule of transport failpoints, parseable from a CLI
/// spec string (same grammar family as FaultPlan / FsFaultPlan):
///
///   drop:op=N[,times=K][,frame=response]
///   corrupt:op=N[,times=K][,frame=response]
///   truncate:op=N[,times=K][,bytes=B][,frame=response]
///   delay:op=N[,times=K][,ms=M][,frame=response]
///
/// `frame=` filters by frame kind: response, reject, pong (0 = all).
/// Events are separated by ';'. Duplicate (kind, op, frame) entries are
/// rejected with entry numbers — a duplicated failpoint is an editing
/// mistake, and silently keeping both would double-fire.
struct ServeFaultPlan {
  std::vector<ServeFailpoint> events;

  bool empty() const { return events.empty(); }
  static ServeFaultPlan parse(const std::string& spec);
  std::string to_string() const;
};

/// Query-side view used inside the server's frame-send path. Each failpoint
/// keeps its own matching-frame counter (like FsFaultInjector), advanced
/// under a mutex so concurrent worker sends observe one deterministic
/// global frame ordering per counter. Thread-safe.
class ServeFaultInjector {
 public:
  ServeFaultInjector() = default;
  explicit ServeFaultInjector(ServeFaultPlan plan);

  const ServeFaultPlan& plan() const { return plan_; }
  bool empty() const { return plan_.empty(); }

  /// Register one outgoing frame of kind `op`; returns the failpoint to
  /// apply (the first armed match), or nullptr for a clean send.
  const ServeFailpoint* on_send(Op op);

  /// Frames that were dropped / corrupted / truncated / delayed so far.
  struct Counts {
    int dropped = 0;
    int corrupted = 0;
    int truncated = 0;
    int delayed = 0;
  };
  Counts counts() const;

 private:
  ServeFaultPlan plan_;
  std::vector<int> seen_;  // per-event matching-frame counters
  Counts counts_;
  mutable std::mutex mu_;
};

/// Apply `fp` to an encoded frame in place (kCorrupt flips a payload byte;
/// kTruncate shortens to the configured prefix). Returns false when the
/// frame must not be sent at all (kDrop). kDelay is the caller's job (it
/// owns the socket write). Exposed for tests.
bool apply_failpoint(const ServeFailpoint& fp, std::string* frame,
                     bool* close_after);

}  // namespace dopf::serve
