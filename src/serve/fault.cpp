#include "serve/fault.hpp"

#include <cctype>
#include <cstdlib>
#include <sstream>

namespace dopf::serve {
namespace {

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : text) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

long parse_value(const std::string& text, const std::string& entry) {
  const char* begin = text.c_str();
  char* end = nullptr;
  const long v = std::strtol(begin, &end, 10);
  if (end == begin || *end != '\0') {
    throw WireError("serve fault spec: bad numeric value '" + text +
                    "' in '" + entry + "'");
  }
  return v;
}

std::uint8_t parse_frame_filter(const std::string& text,
                                const std::string& entry) {
  if (text == "response") return static_cast<std::uint8_t>(Op::kSolveResponse);
  if (text == "reject") return static_cast<std::uint8_t>(Op::kReject);
  if (text == "pong") return static_cast<std::uint8_t>(Op::kPong);
  throw WireError("serve fault spec: unknown frame filter '" + text +
                  "' in '" + entry + "' (response|reject|pong)");
}

const char* kind_name(ServeFailpoint::Kind kind) {
  switch (kind) {
    case ServeFailpoint::Kind::kDrop: return "drop";
    case ServeFailpoint::Kind::kCorrupt: return "corrupt";
    case ServeFailpoint::Kind::kTruncate: return "truncate";
    case ServeFailpoint::Kind::kDelay: return "delay";
  }
  return "unknown";
}

}  // namespace

std::string ServeFailpoint::to_string() const {
  std::ostringstream out;
  out << kind_name(kind) << ":op=" << op;
  if (times != 1) out << ",times=" << times;
  if (kind == Kind::kTruncate && bytes != 0) out << ",bytes=" << bytes;
  if (kind == Kind::kDelay) out << ",ms=" << delay_ms;
  if (frame_op != 0) {
    out << ",frame=";
    switch (static_cast<Op>(frame_op)) {
      case Op::kSolveResponse: out << "response"; break;
      case Op::kReject: out << "reject"; break;
      case Op::kPong: out << "pong"; break;
      default: out << static_cast<int>(frame_op); break;
    }
  }
  return out.str();
}

ServeFaultPlan ServeFaultPlan::parse(const std::string& spec) {
  ServeFaultPlan plan;
  for (const std::string& entry : split(spec, ';')) {
    if (entry.empty()) continue;
    const auto colon = entry.find(':');
    if (colon == std::string::npos) {
      throw WireError("serve fault spec: missing ':' in '" + entry + "'");
    }
    const std::string kind = entry.substr(0, colon);
    ServeFailpoint ev;
    if (kind == "drop") {
      ev.kind = ServeFailpoint::Kind::kDrop;
    } else if (kind == "corrupt") {
      ev.kind = ServeFailpoint::Kind::kCorrupt;
    } else if (kind == "truncate") {
      ev.kind = ServeFailpoint::Kind::kTruncate;
    } else if (kind == "delay") {
      ev.kind = ServeFailpoint::Kind::kDelay;
    } else {
      throw WireError("serve fault spec: unknown failpoint kind '" + kind +
                      "' in '" + entry + "'");
    }
    bool have_op = false;
    for (const std::string& kv : split(entry.substr(colon + 1), ',')) {
      if (kv.empty()) continue;
      const auto eq = kv.find('=');
      if (eq == std::string::npos) {
        throw WireError("serve fault spec: expected key=value, got '" + kv +
                        "' in '" + entry + "'");
      }
      const std::string key = kv.substr(0, eq);
      if (key == "frame") {
        ev.frame_op = parse_frame_filter(kv.substr(eq + 1), entry);
        continue;
      }
      const long value = parse_value(kv.substr(eq + 1), entry);
      if (key == "op") {
        ev.op = static_cast<int>(value);
        have_op = true;
      } else if (key == "times") {
        ev.times = static_cast<int>(value);
      } else if (key == "bytes") {
        if (value < 0) {
          throw WireError("serve fault spec: negative bytes in '" + entry +
                          "'");
        }
        ev.bytes = static_cast<std::size_t>(value);
      } else if (key == "ms") {
        if (value < 0 || value > 60000) {
          throw WireError("serve fault spec: ms must be in [0, 60000] in '" +
                          entry + "'");
        }
        ev.delay_ms = static_cast<int>(value);
      } else {
        throw WireError("serve fault spec: unknown key '" + key + "' in '" +
                        entry + "'");
      }
    }
    if (!have_op) {
      throw WireError("serve fault spec: '" + entry + "' needs op=");
    }
    if (ev.op < 1) {
      throw WireError("serve fault spec: op must be >= 1 in '" + entry + "'");
    }
    if (ev.times < 1) {
      throw WireError("serve fault spec: times must be >= 1 in '" + entry +
                      "'");
    }
    for (std::size_t i = 0; i < plan.events.size(); ++i) {
      const ServeFailpoint& prev = plan.events[i];
      if (prev.kind == ev.kind && prev.op == ev.op &&
          prev.frame_op == ev.frame_op) {
        throw WireError("serve fault spec: entry " +
                        std::to_string(plan.events.size() + 1) + " ('" +
                        entry + "') duplicates entry " + std::to_string(i + 1) +
                        " ('" + prev.to_string() +
                        "'): same kind, op and frame filter");
      }
    }
    plan.events.push_back(ev);
  }
  return plan;
}

std::string ServeFaultPlan::to_string() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i > 0) out << ';';
    out << events[i].to_string();
  }
  return out.str();
}

ServeFaultInjector::ServeFaultInjector(ServeFaultPlan plan)
    : plan_(std::move(plan)) {
  seen_.assign(plan_.events.size(), 0);
}

const ServeFailpoint* ServeFaultInjector::on_send(Op op) {
  std::lock_guard<std::mutex> lock(mu_);
  const ServeFailpoint* hit = nullptr;
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const ServeFailpoint& ev = plan_.events[i];
    if (ev.frame_op != 0 && ev.frame_op != static_cast<std::uint8_t>(op)) {
      continue;
    }
    const int ordinal = ++seen_[i];
    if (hit == nullptr && ordinal >= ev.op && ordinal < ev.op + ev.times) {
      hit = &ev;
    }
  }
  if (hit != nullptr) {
    switch (hit->kind) {
      case ServeFailpoint::Kind::kDrop: ++counts_.dropped; break;
      case ServeFailpoint::Kind::kCorrupt: ++counts_.corrupted; break;
      case ServeFailpoint::Kind::kTruncate: ++counts_.truncated; break;
      case ServeFailpoint::Kind::kDelay: ++counts_.delayed; break;
    }
  }
  return hit;
}

ServeFaultInjector::Counts ServeFaultInjector::counts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counts_;
}

bool apply_failpoint(const ServeFailpoint& fp, std::string* frame,
                     bool* close_after) {
  switch (fp.kind) {
    case ServeFailpoint::Kind::kDrop:
      return false;
    case ServeFailpoint::Kind::kCorrupt: {
      // Flip one bit inside the CRC-guarded region (op byte onward); the
      // receiver's CRC check must catch it. Deterministic position: the
      // middle of the frame body.
      const std::size_t lo = 4;  // skip the magic: a bad magic is a
                                 // different (also covered) failure shape
      const std::size_t pos = lo + (frame->size() - lo) / 2;
      (*frame)[pos] = static_cast<char>((*frame)[pos] ^ 0x01);
      return true;
    }
    case ServeFailpoint::Kind::kTruncate: {
      std::size_t keep = fp.bytes != 0 ? fp.bytes : frame->size() / 2;
      if (keep >= frame->size()) keep = frame->size() - 1;
      frame->resize(keep);
      // A torn frame desynchronizes the stream; the sender closes the
      // connection right after, like a real torn TCP write at process death.
      if (close_after != nullptr) *close_after = true;
      return true;
    }
    case ServeFailpoint::Kind::kDelay:
      return true;  // the sleep is the sender's job
  }
  return true;
}

}  // namespace dopf::serve
