#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <optional>
#include <vector>

namespace dopf::serve {

/// Bounded multi-producer multi-consumer request ring with SHED-NEVER-BLOCK
/// admission: try_push is non-blocking and returns false when the ring is
/// full, so an overloaded server rejects with a typed kOverloaded (plus a
/// retry-after hint) instead of stacking unbounded work or blocking the
/// connection readers. Consumers block in pop() until an item arrives or
/// the ring is closed.
///
/// A fixed circular buffer under one mutex: producers are connection
/// readers (one cheap enqueue per request), consumers are solve workers
/// (milliseconds-to-seconds per item), so lock contention is noise next to
/// the work items carry. What matters for robustness is the BOUND and the
/// non-blocking producer side, not lock-freedom — the deterministic
/// thread-pool work-stealing rings stay over in runtime/thread_pool.
template <typename T>
class BoundedMpscRing {
 public:
  explicit BoundedMpscRing(std::size_t capacity)
      : buf_(capacity == 0 ? 1 : capacity) {}

  std::size_t capacity() const { return buf_.size(); }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }

  /// Non-blocking enqueue. False when full or closed — the caller sheds.
  bool try_push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || count_ == buf_.size()) return false;
      buf_[(head_ + count_) % buf_.size()] = std::move(item);
      ++count_;
    }
    ready_.notify_one();
    return true;
  }

  /// Blocking dequeue. Empty optional once the ring is closed AND drained —
  /// the consumer's exit signal.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    ready_.wait(lock, [this] { return count_ > 0 || closed_; });
    if (count_ == 0) return std::nullopt;
    T item = std::move(buf_[head_]);
    head_ = (head_ + 1) % buf_.size();
    --count_;
    return item;
  }

  /// Non-blocking dequeue (drain path): empty optional when nothing queued.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (count_ == 0) return std::nullopt;
    T item = std::move(buf_[head_]);
    head_ = (head_ + 1) % buf_.size();
    --count_;
    return item;
  }

  /// Stop admitting (try_push returns false) and wake all consumers.
  /// Queued items remain poppable via pop()/try_pop().
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  bool closed_ = false;
  mutable std::mutex mu_;
  std::condition_variable ready_;
};

}  // namespace dopf::serve
