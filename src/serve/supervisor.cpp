#include "serve/supervisor.hpp"

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <sstream>
#include <thread>
#include <utility>

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "core/admm.hpp"
#include "feeders/feeder_io.hpp"
#include "opf/model.hpp"
#include "robust/preflight.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/instances.hpp"
#include "runtime/scenario.hpp"
#include "runtime/signals.hpp"

namespace dopf::serve {
namespace {

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : text) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

long parse_value(const std::string& text, const std::string& entry) {
  const char* begin = text.c_str();
  char* end = nullptr;
  const long v = std::strtol(begin, &end, 10);
  if (end == begin || *end != '\0') {
    throw WireError("crash fault spec: bad numeric value '" + text + "' in '" +
                    entry + "'");
  }
  return v;
}

const char* kind_name(CrashFailpoint::Kind kind) {
  switch (kind) {
    case CrashFailpoint::Kind::kSignal: return "signal";
    case CrashFailpoint::Kind::kExit: return "exit";
    case CrashFailpoint::Kind::kHang: return "hang";
  }
  return "unknown";
}

std::string hex_u64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Parse the request's scenario override lines (runtime/scenario.hpp
/// grammar, one override per line, '#' comments allowed). Throws
/// ScenarioError with line provenance.
dopf::runtime::Scenario parse_request_scenario(const std::string& text) {
  dopf::runtime::Scenario sc;
  sc.name = "request";
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream ls(line);
    std::vector<std::string> tokens;
    std::string tok;
    while (ls >> tok) {
      if (tok[0] == '#') break;
      tokens.push_back(tok);
    }
    if (tokens.empty()) continue;
    const auto ov = dopf::runtime::parse_scenario_override(tokens, line_no);
    dopf::runtime::reject_duplicate_override(sc.overrides, ov,
                                             "request scenario");
    sc.overrides.push_back(ov);
  }
  return sc;
}

}  // namespace

// ---------------------------------------------------------------------------
// Worker exit classification

std::string WorkerExit::to_string() const {
  switch (kind) {
    case Kind::kClean:
      return "clean exit";
    case Kind::kNonZero:
      return "exit code " + std::to_string(code);
    case Kind::kSignal: {
      std::string name = "signal " + std::to_string(signal);
      const char* abbrev = ::strsignal(signal);
      if (abbrev != nullptr) name += std::string(" (") + abbrev + ")";
      return "killed by " + name;
    }
  }
  return "unknown exit";
}

WorkerExit classify_worker_exit(int waitpid_status) {
  WorkerExit e;
  if (WIFSIGNALED(waitpid_status)) {
    e.kind = WorkerExit::Kind::kSignal;
    e.signal = WTERMSIG(waitpid_status);
    return e;
  }
  if (WIFEXITED(waitpid_status)) {
    e.code = WEXITSTATUS(waitpid_status);
    e.kind = e.code == 0 ? WorkerExit::Kind::kClean : WorkerExit::Kind::kNonZero;
    return e;
  }
  // Stopped/continued should never reach here (no WUNTRACED); treat as a
  // signal death so the supervisor restarts rather than wedges.
  e.kind = WorkerExit::Kind::kSignal;
  e.signal = 0;
  return e;
}

// ---------------------------------------------------------------------------
// Crash fault plane

std::string CrashFailpoint::to_string() const {
  std::ostringstream out;
  out << kind_name(kind) << ":request=" << request;
  if (times != 1) out << ",times=" << times;
  return out.str();
}

CrashFaultPlan CrashFaultPlan::parse(const std::string& spec) {
  CrashFaultPlan plan;
  for (const std::string& entry : split(spec, ';')) {
    if (entry.empty()) continue;
    const auto colon = entry.find(':');
    if (colon == std::string::npos) {
      throw WireError("crash fault spec: missing ':' in '" + entry + "'");
    }
    const std::string kind = entry.substr(0, colon);
    CrashFailpoint ev;
    if (kind == "signal") {
      ev.kind = CrashFailpoint::Kind::kSignal;
    } else if (kind == "exit") {
      ev.kind = CrashFailpoint::Kind::kExit;
    } else if (kind == "hang") {
      ev.kind = CrashFailpoint::Kind::kHang;
    } else {
      throw WireError("crash fault spec: unknown failpoint kind '" + kind +
                      "' in '" + entry + "' (signal|exit|hang)");
    }
    bool have_request = false;
    for (const std::string& kv : split(entry.substr(colon + 1), ',')) {
      if (kv.empty()) continue;
      const auto eq = kv.find('=');
      if (eq == std::string::npos) {
        throw WireError("crash fault spec: expected key=value, got '" + kv +
                        "' in '" + entry + "'");
      }
      const std::string key = kv.substr(0, eq);
      const long value = parse_value(kv.substr(eq + 1), entry);
      if (key == "request") {
        ev.request = static_cast<int>(value);
        have_request = true;
      } else if (key == "times") {
        ev.times = static_cast<int>(value);
      } else {
        throw WireError("crash fault spec: unknown key '" + key + "' in '" +
                        entry + "'");
      }
    }
    if (!have_request) {
      throw WireError("crash fault spec: '" + entry + "' needs request=");
    }
    if (ev.request < 1) {
      throw WireError("crash fault spec: request must be >= 1 in '" + entry +
                      "'");
    }
    if (ev.times < 1) {
      throw WireError("crash fault spec: times must be >= 1 in '" + entry +
                      "'");
    }
    for (std::size_t i = 0; i < plan.events.size(); ++i) {
      const CrashFailpoint& prev = plan.events[i];
      if (prev.kind == ev.kind && prev.request == ev.request) {
        throw WireError("crash fault spec: entry " +
                        std::to_string(plan.events.size() + 1) + " ('" +
                        entry + "') duplicates entry " + std::to_string(i + 1) +
                        " ('" + prev.to_string() +
                        "'): same kind and request ordinal");
      }
    }
    plan.events.push_back(ev);
  }
  return plan;
}

std::string CrashFaultPlan::to_string() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i > 0) out << ';';
    out << events[i].to_string();
  }
  return out.str();
}

const CrashFailpoint* CrashFaultInjector::on_dispatch() {
  std::lock_guard<std::mutex> lock(mu_);
  const int ordinal = ++dispatched_;
  const CrashFailpoint* hit = nullptr;
  for (const CrashFailpoint& ev : plan_.events) {
    if (ordinal >= ev.request && ordinal < ev.request + ev.times) {
      hit = &ev;
      break;
    }
  }
  if (hit != nullptr) {
    switch (hit->kind) {
      case CrashFailpoint::Kind::kSignal: ++counts_.signaled; break;
      case CrashFailpoint::Kind::kExit: ++counts_.exited; break;
      case CrashFailpoint::Kind::kHang: ++counts_.hung; break;
    }
  }
  return hit;
}

CrashFaultInjector::Counts CrashFaultInjector::counts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counts_;
}

// ---------------------------------------------------------------------------
// Poison-request quarantine

int Quarantine::record_crash(std::uint64_t content_hash) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[content_hash];
  if (e.armed && std::chrono::steady_clock::now() >= e.until) {
    // Expired while quarantined: readmitted — start a fresh count.
    e = Entry{};
  }
  ++e.crashes;
  if (e.crashes >= 2 && !e.armed) {
    e.armed = true;
    e.until =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(ttl_ms_);
    ++total_;
  }
  return e.crashes;
}

std::uint32_t Quarantine::active_ms(std::uint64_t content_hash) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(content_hash);
  if (it == entries_.end() || !it->second.armed) return 0;
  const auto now = std::chrono::steady_clock::now();
  if (now >= it->second.until) {
    // TTL expired: drop the entry entirely. Readmission means the content
    // gets a clean slate (two fresh crashes to re-quarantine).
    entries_.erase(it);
    return 0;
  }
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        it->second.until - now)
                        .count();
  return left < 1 ? 1u : static_cast<std::uint32_t>(left);
}

std::uint64_t Quarantine::total_quarantined() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

// ---------------------------------------------------------------------------
// Supervisor-link payloads

std::string CrashArm::encode() const {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(kind) + 1);
  return w.take();
}

CrashArm CrashArm::decode(std::string_view payload) {
  WireReader r(payload);
  const std::uint8_t k = r.u8("crash_kind");
  if (k < 1 || k > 3) {
    throw WireError("unknown crash-arm kind " + std::to_string(k));
  }
  r.done("crash-arm payload");
  CrashArm arm;
  arm.kind = static_cast<CrashFailpoint::Kind>(k - 1);
  return arm;
}

std::string WorkerStatsMsg::encode() const {
  WireWriter w;
  w.u32(static_cast<std::uint32_t>(session.solves));
  w.u32(static_cast<std::uint32_t>(session.cold_solves));
  w.u32(static_cast<std::uint32_t>(session.warm_solves));
  w.u32(static_cast<std::uint32_t>(session.precompute_reuses));
  w.u32(static_cast<std::uint32_t>(session.refactorizations));
  w.u32(static_cast<std::uint32_t>(session.rhs_rebinds));
  w.u32(static_cast<std::uint32_t>(io.writes));
  w.u32(static_cast<std::uint32_t>(io.reads));
  w.u32(static_cast<std::uint32_t>(io.retries));
  w.f64(io.retry_seconds);
  w.u64(cache_hits);
  w.u64(cache_misses);
  w.u64(cache_evictions);
  w.u64(cache_resident_bytes);
  w.u64(cache_entries);
  w.u64(solved);
  w.u8(io_failure ? 1 : 0);
  return w.take();
}

WorkerStatsMsg WorkerStatsMsg::decode(std::string_view payload) {
  WireReader r(payload);
  WorkerStatsMsg m;
  m.session.solves = static_cast<int>(r.u32("solves"));
  m.session.cold_solves = static_cast<int>(r.u32("cold_solves"));
  m.session.warm_solves = static_cast<int>(r.u32("warm_solves"));
  m.session.precompute_reuses = static_cast<int>(r.u32("precompute_reuses"));
  m.session.refactorizations = static_cast<int>(r.u32("refactorizations"));
  m.session.rhs_rebinds = static_cast<int>(r.u32("rhs_rebinds"));
  m.io.writes = static_cast<int>(r.u32("io_writes"));
  m.io.reads = static_cast<int>(r.u32("io_reads"));
  m.io.retries = static_cast<int>(r.u32("io_retries"));
  m.io.retry_seconds = r.f64("io_retry_seconds");
  m.cache_hits = r.u64("cache_hits");
  m.cache_misses = r.u64("cache_misses");
  m.cache_evictions = r.u64("cache_evictions");
  m.cache_resident_bytes = r.u64("cache_resident_bytes");
  m.cache_entries = r.u64("cache_entries");
  m.solved = r.u64("solved");
  m.io_failure = r.u8("io_failure") != 0;
  r.done("worker-stats payload");
  return m;
}

// ---------------------------------------------------------------------------
// Shared request validation

void validate_request(const SolveRequest& req) {
  if (req.feeder.empty()) throw BadRequestError("empty feeder reference");
  if (!(req.rho > 0.0) || !std::isfinite(req.rho)) {
    throw BadRequestError("rho must be finite and > 0");
  }
  if (!(req.eps_rel > 0.0) || !std::isfinite(req.eps_rel)) {
    throw BadRequestError("eps_rel must be finite and > 0");
  }
  if (req.max_iterations < 1) {
    throw BadRequestError("max_iterations must be >= 1");
  }
  if (req.check_every < 1) throw BadRequestError("check_every must be >= 1");
  if (req.preflight != "off") {
    try {
      (void)dopf::robust::parse_policy(req.preflight);
    } catch (const std::invalid_argument& e) {
      throw BadRequestError(std::string("bad preflight policy: ") + e.what());
    }
  }
}

// ---------------------------------------------------------------------------
// Worker side

namespace {

/// The worker's solve engine: the PR 9 in-process handle_request path moved
/// verbatim behind the process boundary. One per worker subprocess, with
/// its own model cache and durable-I/O injector; produces exactly one reply
/// frame (response or typed reject) per request.
class RequestProcessor {
 public:
  RequestProcessor(const WorkerConfig& cfg, dopf::core::CancelToken* drain)
      : cfg_(cfg),
        drain_(drain),
        cache_(cfg.cache_budget_bytes),
        fs_faults_(cfg.fs_faults) {
    durable_ = cfg.durable;
    durable_.faults = fs_faults_.empty() ? nullptr : &fs_faults_;
  }

  std::pair<Op, std::string> process(const SolveRequest& req);

  WorkerStatsMsg stats() const {
    WorkerStatsMsg m;
    m.session = session_;
    m.io = io_;
    const auto c = cache_.stats();
    m.cache_hits = c.hits;
    m.cache_misses = c.misses;
    m.cache_evictions = c.evictions;
    m.cache_resident_bytes = c.resident_bytes;
    m.cache_entries = c.entries;
    m.solved = solved_;
    m.io_failure = io_failure_;
    return m;
  }

  bool io_failure() const { return io_failure_; }

 private:
  std::string checkpoint_path(const SolveRequest& req) const {
    return cfg_.checkpoint_dir + "/req-" + hex_u64(req.content_hash()) +
           ".ckpt";
  }

  std::shared_ptr<CachedModel> build_entry(const SolveRequest& req,
                                           const std::string& key);

  WorkerConfig cfg_;
  dopf::core::CancelToken* drain_;
  ModelCache cache_;
  dopf::runtime::FsFaultInjector fs_faults_;
  dopf::runtime::DurableOptions durable_;
  dopf::core::SessionStats session_;
  dopf::runtime::IoStats io_;
  std::uint64_t solved_ = 0;
  bool io_failure_ = false;
};

std::shared_ptr<CachedModel> RequestProcessor::build_entry(
    const SolveRequest& req, const std::string& key) {
  // Mirrors the dopf_solve cold path exactly (preflight -> projector
  // options -> equilibrated decompose -> SolveModel) so worker solves are
  // byte-identical to solo solves of the same request.
  auto entry = std::make_shared<CachedModel>();
  entry->key = key;
  if (req.feeder.rfind("builtin:", 0) == 0) {
    entry->net = dopf::runtime::make_instance(req.feeder.substr(8)).net;
  } else {
    entry->net = dopf::feeders::load_feeder(req.feeder);
  }
  const auto model = dopf::opf::build_model(entry->net);
  dopf::opf::DistributedProblem problem;
  if (req.preflight != "off") {
    dopf::robust::PreflightOptions popt;
    popt.policy = dopf::robust::parse_policy(req.preflight);
    const auto pre =
        dopf::robust::run_preflight(entry->net, model, &problem, popt);
    if (!pre.accepted) throw dopf::robust::PreflightError(pre);
    entry->projector = pre.projector_options();
    entry->decompose.equilibrate_rows = pre.equilibrated;
  } else {
    problem = dopf::opf::decompose(entry->net, model);
  }
  entry->model =
      std::make_unique<dopf::core::SolveModel>(problem, entry->projector);
  entry->binding =
      std::make_unique<dopf::core::ScenarioBinding>(*entry->model);
  entry->model_fp = entry->binding->model_fingerprint();
  entry->bytes = estimate_model_bytes(*entry->binding);
  return entry;
}

std::pair<Op, std::string> RequestProcessor::process(const SolveRequest& req) {
  const std::uint64_t id = req.request_id;
  auto reject = [id](RejectCode code, std::uint32_t retry_after,
                     const std::string& message) {
    Reject r;
    r.request_id = id;
    r.code = code;
    r.retry_after_ms = retry_after;
    r.message = message;
    return std::make_pair(Op::kReject, r.encode());
  };
  try {
    // The per-request token: deadline_ms arrives already rewritten to the
    // time REMAINING (the parent charged the queue wait), parent-linked to
    // the worker's drain token so one solver poll observes both.
    dopf::core::CancelToken token;
    token.link_parent(drain_);
    if (req.deadline_ms > 0) {
      token.set_deadline_after(req.deadline_ms / 1000.0);
    }
    if (token.deadline_exceeded()) {
      return reject(RejectCode::kDeadline, 0, "deadline expired while queued");
    }
    if (drain_->cancelled()) {
      return reject(RejectCode::kShuttingDown, 0,
                    "server draining; queued request shed before starting");
    }
    validate_request(req);

    const std::string key = req.feeder + "#" + req.preflight;
    const std::shared_ptr<CachedModel> entry =
        cache_.acquire(key, [&] { return build_entry(req, key); });

    const dopf::runtime::Scenario sc = parse_request_scenario(req.scenario);

    std::lock_guard<std::mutex> model_lock(entry->mu);

    const auto net_s = dopf::runtime::apply_scenario(entry->net, sc);
    const auto model_s = dopf::opf::build_model(net_s);
    const auto problem_s =
        dopf::opf::decompose(net_s, model_s, entry->decompose);
    if (req.preflight != "off") {
      dopf::robust::PreflightOptions popt;
      popt.policy = dopf::robust::parse_policy(req.preflight);
      popt.decompose = entry->decompose;
      const auto pre = dopf::robust::run_scenario_preflight(
          entry->model->problem(), problem_s, popt);
      if (!pre.accepted) {
        return reject(RejectCode::kPreflight, 0, pre.rejection);
      }
    }

    dopf::core::AdmmOptions opt;
    opt.rho = req.rho;
    opt.eps_rel = req.eps_rel;
    opt.max_iterations = static_cast<int>(req.max_iterations);
    opt.check_every = static_cast<int>(req.check_every);
    opt.projector = entry->projector;
    opt.cancel = &token;

    // A FRESH session per request: the rebind is bit-identical to a cold
    // build (retained factorizations, PR 6), and a cold solve over it
    // reproduces a solo dopf_solve byte for byte — the determinism the
    // fault and crash harnesses assert. Reuse lives in the model/binding,
    // not in iterate state, so a crashed request's retry on a fresh worker
    // is byte-identical too.
    dopf::core::SolveSession session(*entry->binding, opt);
    session.rebind(problem_s);

    if (req.resume && !cfg_.checkpoint_dir.empty()) {
      dopf::runtime::CheckpointStore store(checkpoint_path(req), durable_);
      if (store.any_slot_exists()) {
        auto loaded = store.load();
        loaded.checkpoint.validate_for(session.solver(), req.feeder);
        loaded.checkpoint.restore(&session.solver(), req.feeder);
        session.mark_warm();
      }
    }

    dopf::core::AdmmResult res = session.solve();
    {
      const auto& st = session.stats();
      session_.solves += st.solves;
      session_.cold_solves += st.cold_solves;
      session_.warm_solves += st.warm_solves;
      session_.precompute_reuses += st.precompute_reuses;
      session_.refactorizations += st.refactorizations;
      session_.rhs_rebinds += st.rhs_rebinds;
    }

    if (res.status == dopf::core::AdmmStatus::kCancelled) {
      if (token.deadline_exceeded()) {
        return reject(RejectCode::kDeadline, 0,
                      "deadline expired after " +
                          std::to_string(res.iterations) + " iterations");
      }
      // Drain: checkpoint the in-flight solve durably so a resubmission
      // with resume continues byte-identically.
      if (cfg_.checkpoint_dir.empty()) {
        return reject(RejectCode::kShuttingDown, 0,
                      "drained at iteration " +
                          std::to_string(res.iterations) +
                          "; no checkpoint dir, progress discarded");
      }
      auto ck = dopf::runtime::AdmmCheckpoint::capture(
          session.solver(), res.iterations, req.feeder);
      dopf::runtime::CheckpointStore store(checkpoint_path(req), durable_);
      io_ += store.save(std::move(ck));
      return reject(RejectCode::kDrained, 0,
                    "drained at iteration " + std::to_string(res.iterations) +
                        "; resubmit with resume to continue");
    }

    SolveResponse resp;
    resp.request_id = id;
    resp.status = static_cast<std::uint8_t>(res.status);
    resp.converged = res.converged;
    resp.iterations = static_cast<std::uint32_t>(res.iterations);
    resp.objective = res.objective;
    resp.primal_residual = res.primal_residual;
    resp.dual_residual = res.dual_residual;
    resp.model_fp = entry->binding->model_fingerprint();
    resp.scenario_fp = entry->binding->scenario_fingerprint();
    ++solved_;
    return std::make_pair(Op::kSolveResponse, resp.encode());
  } catch (const BadRequestError& e) {
    return reject(RejectCode::kBadRequest, 0, e.what());
  } catch (const dopf::runtime::ScenarioError& e) {
    return reject(RejectCode::kBadRequest, 0, e.what());
  } catch (const dopf::robust::PreflightError& e) {
    return reject(RejectCode::kPreflight, 0, e.what());
  } catch (const dopf::runtime::CheckpointError& e) {
    return reject(RejectCode::kBadRequest, 0,
                  std::string("resume checkpoint rejected: ") + e.what());
  } catch (const dopf::runtime::SimulatedCrash& e) {
    io_failure_ = true;
    return reject(RejectCode::kInternal, 0,
                  std::string("durable checkpoint failed: ") + e.what());
  } catch (const dopf::runtime::IoError& e) {
    io_failure_ = true;
    return reject(RejectCode::kInternal, 0,
                  std::string("durable checkpoint failed: ") + e.what());
  } catch (const dopf::feeders::FeederFormatError& e) {
    return reject(RejectCode::kBadRequest, 0, e.what());
  } catch (const std::invalid_argument& e) {
    return reject(RejectCode::kBadRequest, 0, e.what());
  } catch (const std::exception& e) {
    return reject(RejectCode::kInternal, 0,
                  std::string("internal error: ") + e.what());
  }
}

/// Execute an armed crash drill. kSignal resets the disposition to SIG_DFL
/// first so a sanitizer's handler cannot turn the death into a report+exit
/// — the parent must observe WIFSIGNALED(SIGSEGV), the same shape a real
/// wild pointer produces.
[[noreturn]] void apply_crash(CrashFailpoint::Kind kind) {
  switch (kind) {
    case CrashFailpoint::Kind::kSignal:
      ::signal(SIGSEGV, SIG_DFL);
      ::raise(SIGSEGV);
      break;
    case CrashFailpoint::Kind::kExit:
      ::_exit(3);
    case CrashFailpoint::Kind::kHang:
      for (;;) ::pause();
  }
  ::_exit(3);  // raise() cannot return, but the compiler cannot know that
}

}  // namespace

int worker_main(int fd, const WorkerConfig& config) {
  // The worker's own drain token: the parent forwards SIGTERM on drain so
  // an in-flight solve cancels at a checkpointable boundary.
  static dopf::core::CancelToken drain;
  dopf::runtime::install_cancel_signal_handlers(&drain);

  RequestProcessor proc(config, &drain);
  bool armed = false;
  CrashFailpoint::Kind armed_kind = CrashFailpoint::Kind::kSignal;

  for (;;) {
    ReadOutcome out;
    try {
      out = read_frame_fd(fd, /*idle_timeout_ms=*/200);
    } catch (const WireError&) {
      break;  // supervisor link torn: the parent is gone, stop
    }
    if (out.status == ReadOutcome::kEof) break;
    if (out.status == ReadOutcome::kIdle) {
      if (drain.cancelled()) break;  // idle drain: report stats and exit
      continue;
    }
    switch (out.frame.op) {
      case Op::kCrashArm: {
        try {
          armed_kind = CrashArm::decode(out.frame.payload).kind;
          armed = true;
        } catch (const WireError&) {
          // A malformed drill directive is ignored, not fatal.
        }
        break;
      }
      case Op::kSolveRequest: {
        SolveRequest req;
        try {
          req = SolveRequest::decode(out.frame.payload);
        } catch (const WireError& e) {
          // The parent validated before dispatch, so this is supervisor-link
          // corruption; answer typed and keep serving.
          Reject r;
          r.request_id = 0;
          r.code = RejectCode::kInternal;
          r.message = std::string("worker decode failed: ") + e.what();
          if (!write_all_fd(fd, encode_frame(Op::kReject, r.encode()))) {
            goto drain_exit;
          }
          break;
        }
        if (armed) {
          armed = false;
          apply_crash(armed_kind);  // does not return
        }
        const auto reply = proc.process(req);
        if (!write_all_fd(fd, encode_frame(reply.first, reply.second))) {
          goto drain_exit;
        }
        break;
      }
      default:
        break;  // protocol slack: ignore unexpected-but-valid frames
    }
  }

drain_exit:
  // Farewell: one stats frame so the parent's aggregate includes this
  // worker's session/io/cache counters. Best-effort — the parent may
  // already be gone.
  (void)write_all_fd(fd,
                     encode_frame(Op::kWorkerStats, proc.stats().encode()));
  // Exit 7 doubles the io_failure signal in case the farewell frame is
  // lost; the parent treats a code-7 exit at shutdown as an I/O failure,
  // not a crash.
  return proc.io_failure() ? 7 : 0;
}

// ---------------------------------------------------------------------------
// Parent side

namespace {

dopf::runtime::BackoffOptions restart_backoff(const SupervisorOptions& opts,
                                              int slot) {
  dopf::runtime::BackoffOptions bo;
  bo.base = static_cast<double>(opts.backoff_base_ms);
  bo.factor = 2.0;
  bo.max = static_cast<double>(opts.backoff_max_ms);
  // Jitter in [0.5, 1.0): restarting slots de-synchronize instead of
  // thundering onto the same core the moment a shared cause clears.
  bo.jitter_min = 0.5;
  bo.jitter_max = 1.0;
  bo.seed = opts.backoff_seed + static_cast<std::uint64_t>(slot);
  return bo;
}

}  // namespace

WorkerSupervisor::WorkerSupervisor(int slot, SupervisorOptions options,
                                   const dopf::core::CancelToken* drain)
    : slot_(slot),
      opts_(std::move(options)),
      drain_(drain),
      backoff_(restart_backoff(opts_, slot)) {}

WorkerSupervisor::~WorkerSupervisor() {
  if (!shut_down_) (void)shutdown();
}

bool WorkerSupervisor::draining() const {
  return drain_ != nullptr && drain_->cancelled();
}

bool WorkerSupervisor::try_spawn() {
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) return false;
  // CLOEXEC on BOTH ends: a sibling slot forking concurrently must not
  // inherit a copy of this link (a stray copy would keep the EOF that
  // signals this worker's death from ever arriving). The child clears the
  // flag on its own end between fork and exec.
  ::fcntl(sv[0], F_SETFD, FD_CLOEXEC);
  ::fcntl(sv[1], F_SETFD, FD_CLOEXEC);

  // Everything the child needs is prepared BEFORE fork: between fork and
  // exec only async-signal-safe calls are allowed (the parent is
  // multithreaded, so the child's heap may be mid-mutation).
  std::vector<std::string> argv_store = opts_.worker_command;
  if (opts_.worker_entry == nullptr) {
    argv_store.push_back("--worker-fd");
    argv_store.push_back(std::to_string(sv[1]));
  }
  std::vector<char*> argv;
  argv.reserve(argv_store.size() + 1);
  for (std::string& a : argv_store) argv.push_back(a.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(sv[0]);
    ::close(sv[1]);
    return false;
  }
  if (pid == 0) {
    ::close(sv[0]);
    if (opts_.worker_entry != nullptr) {
      // Test seam: run the worker loop in-process (fork without exec —
      // safe only from effectively-single-threaded test parents).
      ::_exit(opts_.worker_entry(sv[1]));
    }
    ::fcntl(sv[1], F_SETFD, 0);  // the link must survive exec
    ::execv(argv[0], argv.data());
    ::_exit(127);
  }
  ::close(sv[1]);
  fd_.reset(sv[0]);
  pid_.store(pid, std::memory_order_release);
  ++spawns_;
  return true;
}

bool WorkerSupervisor::ensure_worker() {
  if (pid_.load(std::memory_order_acquire) > 0) return true;
  if (degraded_) return false;
  for (;;) {
    if (draining()) return false;
    if (spawns_ > 0 || spawn_failures_ > 0) {
      if (restarts_ >= opts_.restart_budget) {
        degraded_ = true;
        return false;
      }
      ++restarts_;
      const double ms = backoff_.next();
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(ms));
    }
    if (try_spawn()) return true;
    ++spawn_failures_;
  }
}

void WorkerSupervisor::reap(bool kill_first) {
  const pid_t pid = pid_.exchange(-1, std::memory_order_acq_rel);
  fd_.reset();
  if (pid <= 0) return;
  if (kill_first) ::kill(pid, SIGKILL);
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  last_exit_ = classify_worker_exit(status);
}

WorkerSupervisor::Exchange WorkerSupervisor::exchange(
    const std::string& request_frame, const CrashFailpoint* directive) {
  Exchange out;
  auto worker_exit = [&](bool hang) {
    out.kind = Exchange::Kind::kWorkerExit;
    out.exit = last_exit_;
    out.hang_killed = hang;
    return out;
  };
  if (!ensure_worker()) {
    out.kind = Exchange::Kind::kDegraded;
    return out;
  }
  if (directive != nullptr) {
    CrashArm arm;
    arm.kind = directive->kind;
    if (!write_all_fd(fd_.get(),
                      encode_frame(Op::kCrashArm, arm.encode()))) {
      reap(false);
      return worker_exit(false);
    }
  }
  if (!write_all_fd(fd_.get(), request_frame)) {
    reap(false);
    return worker_exit(false);
  }

  using Clock = std::chrono::steady_clock;
  Clock::time_point hang_deadline{};
  if (opts_.hang_timeout_ms > 0) {
    hang_deadline =
        Clock::now() + std::chrono::milliseconds(opts_.hang_timeout_ms);
  }
  Clock::time_point drain_kill{};
  bool drain_kill_armed = false;
  for (;;) {
    ReadOutcome r;
    try {
      r = read_frame_fd(fd_.get(), /*idle_timeout_ms=*/200);
    } catch (const WireError&) {
      // Torn frame: the worker died mid-write (or desynchronized, which is
      // just as fatal for the link). SIGKILL settles any doubt.
      reap(true);
      return worker_exit(false);
    }
    if (r.status == ReadOutcome::kFrame) {
      if (r.frame.op == Op::kWorkerStats) {
        // The worker is exiting under us (drain observed mid-exchange):
        // keep the farewell, keep reading to the EOF that follows.
        try {
          stats_ = WorkerStatsMsg::decode(r.frame.payload);
          have_stats_ = true;
        } catch (const WireError&) {
        }
        continue;
      }
      out.kind = Exchange::Kind::kFrame;
      out.frame = std::move(r.frame);
      return out;
    }
    if (r.status == ReadOutcome::kEof) {
      reap(false);
      return worker_exit(false);
    }
    // Idle tick.
    if (opts_.hang_timeout_ms > 0 && Clock::now() >= hang_deadline) {
      reap(true);
      return worker_exit(true);
    }
    if (draining()) {
      if (!drain_kill_armed) {
        drain_kill_armed = true;
        drain_kill = Clock::now() + std::chrono::milliseconds(opts_.grace_ms);
      } else if (Clock::now() >= drain_kill) {
        // The worker ignored the forwarded SIGTERM for a whole grace
        // period; a drain must terminate.
        reap(true);
        return worker_exit(false);
      }
    }
  }
}

void WorkerSupervisor::signal_drain() {
  const pid_t pid = pid_.load(std::memory_order_acquire);
  if (pid > 0) ::kill(pid, SIGTERM);
}

WorkerSupervisor::ShutdownReport WorkerSupervisor::shutdown() {
  ShutdownReport rep;
  if (!shut_down_) {
    shut_down_ = true;
    if (pid_.load(std::memory_order_acquire) > 0 && fd_.valid()) {
      // Close the request direction: the worker sees EOF, sends its
      // farewell stats frame, and exits 0.
      ::shutdown(fd_.get(), SHUT_WR);
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::milliseconds(opts_.grace_ms);
      bool escalate = false;
      for (;;) {
        ReadOutcome r;
        try {
          r = read_frame_fd(fd_.get(), /*idle_timeout_ms=*/100);
        } catch (const WireError&) {
          break;
        }
        if (r.status == ReadOutcome::kFrame) {
          if (r.frame.op == Op::kWorkerStats) {
            try {
              stats_ = WorkerStatsMsg::decode(r.frame.payload);
              have_stats_ = true;
            } catch (const WireError&) {
            }
          }
          continue;
        }
        if (r.status == ReadOutcome::kEof) break;
        if (std::chrono::steady_clock::now() >= deadline) {
          escalate = true;
          break;
        }
      }
      reap(escalate);
    }
  }
  rep.have_stats = have_stats_;
  rep.stats = stats_;
  rep.exit = last_exit_;
  return rep;
}

}  // namespace dopf::serve
