#pragma once

#include <string>

#include "serve/wire.hpp"

namespace dopf::serve {

/// Thin POSIX socket layer for the serve protocol (AF_UNIX stream sockets).
/// All reads run through poll() with finite timeouts and treat EINTR as a
/// wakeup, not an error — the signal handlers are installed WITHOUT
/// SA_RESTART precisely so a drain signal interrupts a blocked read.

/// RAII file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  ~Fd() { reset(); }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release();
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// Connect to a unix-domain stream socket. Returns an invalid Fd on failure
/// (errno preserved for the caller's message).
Fd connect_unix(const std::string& path);

/// Bind + listen on a unix-domain stream socket, unlinking any stale socket
/// file first. Throws WireError with errno context on failure.
Fd listen_unix(const std::string& path, int backlog);

/// Outcome of trying to read one frame.
struct ReadOutcome {
  enum Status {
    kFrame,  ///< one complete, CRC-valid frame decoded
    kIdle,   ///< no bytes arrived within idle_timeout_ms (connection fine)
    kEof,    ///< orderly close before any frame byte (connection done)
  };
  Status status = kIdle;
  Frame frame;
};

/// Read exactly one frame from `fd`. `idle_timeout_ms` bounds the wait for
/// the FIRST byte; once a frame has started, `stall_timeout_ms` bounds the
/// wait for the remainder. A torn frame — EOF or stall mid-frame — and any
/// malformed bytes (bad magic, oversize length, CRC mismatch) throw
/// WireError; the stream is desynchronized and the caller must close it.
ReadOutcome read_frame_fd(int fd, int idle_timeout_ms,
                          int stall_timeout_ms = 5000);

/// Write all of `bytes` to `fd` (handles partial writes and EINTR, never
/// raises SIGPIPE). Returns false on error — for a response writer that
/// means the peer is gone, which is their loss, not ours.
bool write_all_fd(int fd, std::string_view bytes);

}  // namespace dopf::serve
