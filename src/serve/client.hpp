#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "runtime/backoff.hpp"
#include "serve/socket_io.hpp"
#include "serve/wire.hpp"

namespace dopf::serve {

/// Thrown when the client exhausts its retry budget without reaching a
/// terminal outcome (connect failures, torn frames, dropped responses,
/// repeated kOverloaded shedding).
class ClientError : public std::runtime_error {
 public:
  enum class Kind { kConnect, kTransport, kOverloaded };
  ClientError(Kind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}
  Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

struct ClientOptions {
  std::string socket_path;
  /// Retry attempts beyond the first try, for transport faults and
  /// kOverloaded shedding.
  int retries = 8;
  /// Jittered exponential backoff base; doubles per attempt. The wait is
  /// max(server retry-after hint, backoff).
  int backoff_base_ms = 20;
  /// How long to wait for the response frame of a submitted request. Must
  /// cover the solve itself, not just the round trip.
  int response_timeout_ms = 120000;
  /// Jitter seed: storms are reproducible run to run.
  std::uint64_t seed = 1;
};

/// What one submit() ended as: exactly one of a solve response or a typed
/// terminal rejection (deadline, preflight, bad request, drained,
/// shutting-down, internal). Retryable rejections (kOverloaded, kWire) are
/// consumed by the retry loop and never surface here.
struct Outcome {
  enum class Kind { kResponse, kReject };
  Kind kind = Kind::kResponse;
  SolveResponse response;
  Reject reject;
  /// Total tries this outcome took (1 = first try).
  int attempts = 1;
};

/// One connection's worth of client: reconnects transparently, retries
/// with jittered exponential backoff honoring the server's retry-after
/// hint, skips stale frames for other request ids. One Client per thread —
/// not thread-safe (a storm driver makes one per concurrent lane).
class Client {
 public:
  explicit Client(ClientOptions options);

  /// Liveness probe: true when a pong echoing `id` arrives (with retry).
  bool ping(std::uint64_t id);

  /// Submit one request to a terminal outcome. Throws ClientError when
  /// the retry budget runs out first.
  Outcome submit(const SolveRequest& req);

  /// Attempts consumed across all calls (storm bookkeeping).
  std::uint64_t total_attempts() const { return total_attempts_; }

 private:
  /// Connect if not connected. Returns false on failure.
  bool ensure_connected();
  void backoff(int attempt, std::uint32_t server_hint_ms);

  ClientOptions opts_;
  Fd fd_;
  dopf::runtime::Backoff backoff_;
  std::uint64_t total_attempts_ = 0;
};

}  // namespace dopf::serve
