#include "serve/wire.hpp"

#include <cstring>

#include "verify/codec.hpp"

namespace dopf::serve {

namespace {

void put_u32(std::string* out, std::uint32_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

std::uint32_t read_u32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

bool known_op(std::uint8_t op) {
  return op >= static_cast<std::uint8_t>(Op::kSolveRequest) &&
         op <= static_cast<std::uint8_t>(Op::kWorkerStats);
}

}  // namespace

const char* to_string(Op op) {
  switch (op) {
    case Op::kSolveRequest: return "solve-request";
    case Op::kSolveResponse: return "solve-response";
    case Op::kReject: return "reject";
    case Op::kPing: return "ping";
    case Op::kPong: return "pong";
    case Op::kCrashArm: return "crash-arm";
    case Op::kWorkerStats: return "worker-stats";
  }
  return "unknown";
}

const char* to_string(RejectCode code) {
  switch (code) {
    case RejectCode::kOverloaded: return "overloaded";
    case RejectCode::kDeadline: return "deadline";
    case RejectCode::kPreflight: return "preflight";
    case RejectCode::kWire: return "wire";
    case RejectCode::kShuttingDown: return "shutting-down";
    case RejectCode::kBadRequest: return "bad-request";
    case RejectCode::kDrained: return "drained";
    case RejectCode::kInternal: return "internal";
    case RejectCode::kQuarantined: return "quarantined";
  }
  return "unknown";
}

std::string encode_frame(Op op, std::string_view payload) {
  if (payload.size() > kMaxPayload) {
    throw WireError("frame payload of " + std::to_string(payload.size()) +
                    " bytes exceeds the " + std::to_string(kMaxPayload) +
                    "-byte limit");
  }
  std::string out;
  out.reserve(4 + 1 + 4 + payload.size() + 4);
  put_u32(&out, kWireMagic);
  const std::size_t crc_begin = out.size();
  out.push_back(static_cast<char>(op));
  put_u32(&out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload);
  const std::uint32_t crc = dopf::verify::crc32(
      std::string_view(out.data() + crc_begin, out.size() - crc_begin));
  put_u32(&out, crc);
  return out;
}

Frame decode_frame(std::string_view bytes, std::size_t* consumed) {
  if (bytes.size() < 4) {
    throw WireError("truncated frame: " + std::to_string(bytes.size()) +
                    " byte(s), need 4 for the magic");
  }
  const auto* p = reinterpret_cast<const unsigned char*>(bytes.data());
  if (read_u32(p) != kWireMagic) {
    throw WireError("bad frame magic (stream desynchronized or not DPF1)");
  }
  if (bytes.size() < 9) {
    throw WireError("truncated frame header: " +
                    std::to_string(bytes.size()) + " byte(s), need 9");
  }
  const std::uint8_t op = p[4];
  const std::uint32_t len = read_u32(p + 5);
  // Length sanity BEFORE any allocation or wait: a corrupt length field
  // must not make the receiver wait for (or allocate) gigabytes.
  if (len > kMaxPayload) {
    throw WireError("frame length " + std::to_string(len) +
                    " exceeds the " + std::to_string(kMaxPayload) +
                    "-byte limit (corrupt length field?)");
  }
  const std::size_t total = 9 + static_cast<std::size_t>(len) + 4;
  if (bytes.size() < total) {
    throw WireError("truncated frame: have " + std::to_string(bytes.size()) +
                    " byte(s) of " + std::to_string(total));
  }
  const std::uint32_t want_crc = read_u32(p + 9 + len);
  const std::uint32_t got_crc =
      dopf::verify::crc32(std::string_view(bytes.data() + 4, 5 + len));
  if (want_crc != got_crc) {
    throw WireError("frame CRC mismatch (corrupted in transit)");
  }
  // Op validity is checked AFTER the CRC: a flipped op byte fails the CRC
  // first; an unknown-but-CRC-valid op means a protocol version mismatch.
  if (!known_op(op)) {
    throw WireError("unknown frame op " + std::to_string(op) +
                    " (protocol mismatch?)");
  }
  if (consumed != nullptr) *consumed = total;
  Frame f;
  f.op = static_cast<Op>(op);
  f.payload.assign(bytes.data() + 9, len);
  return f;
}

void WireWriter::u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }

void WireWriter::u32(std::uint32_t v) { put_u32(&buf_, v); }

void WireWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v & 0xffffffffu));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void WireWriter::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void WireWriter::str(std::string_view s) {
  if (s.size() > kMaxPayload) {
    throw WireError("string field of " + std::to_string(s.size()) +
                    " bytes exceeds the payload limit");
  }
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.append(s);
}

std::string_view WireReader::need(std::size_t n, const char* field) {
  if (bytes_.size() - pos_ < n) {
    throw WireError(std::string("truncated payload: field '") + field +
                    "' needs " + std::to_string(n) + " byte(s), " +
                    std::to_string(bytes_.size() - pos_) + " left");
  }
  const std::string_view v = bytes_.substr(pos_, n);
  pos_ += n;
  return v;
}

std::uint8_t WireReader::u8(const char* field) {
  return static_cast<std::uint8_t>(need(1, field)[0]);
}

std::uint32_t WireReader::u32(const char* field) {
  const auto v = need(4, field);
  return read_u32(reinterpret_cast<const unsigned char*>(v.data()));
}

std::uint64_t WireReader::u64(const char* field) {
  const std::uint64_t lo = u32(field);
  const std::uint64_t hi = u32(field);
  return lo | (hi << 32);
}

double WireReader::f64(const char* field) {
  const std::uint64_t bits = u64(field);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string WireReader::str(const char* field) {
  const std::uint32_t len = u32(field);
  if (len > kMaxPayload) {
    throw WireError(std::string("string field '") + field + "' claims " +
                    std::to_string(len) + " bytes (corrupt length?)");
  }
  return std::string(need(len, field));
}

void WireReader::done(const char* what) const {
  if (pos_ != bytes_.size()) {
    throw WireError(std::string(what) + ": " +
                    std::to_string(bytes_.size() - pos_) +
                    " trailing byte(s) after the last field");
  }
}

std::string SolveRequest::encode() const {
  WireWriter w;
  w.u64(request_id);
  w.u32(deadline_ms);
  w.u8(resume ? 1 : 0);
  w.f64(rho);
  w.f64(eps_rel);
  w.u32(max_iterations);
  w.u32(check_every);
  w.str(preflight);
  w.str(feeder);
  w.str(scenario);
  return w.take();
}

SolveRequest SolveRequest::decode(std::string_view payload) {
  WireReader r(payload);
  SolveRequest req;
  req.request_id = r.u64("request_id");
  req.deadline_ms = r.u32("deadline_ms");
  req.resume = r.u8("resume") != 0;
  req.rho = r.f64("rho");
  req.eps_rel = r.f64("eps_rel");
  req.max_iterations = r.u32("max_iterations");
  req.check_every = r.u32("check_every");
  req.preflight = r.str("preflight");
  req.feeder = r.str("feeder");
  req.scenario = r.str("scenario");
  r.done("solve-request payload");
  return req;
}

std::uint64_t SolveRequest::content_hash() const {
  // FNV-1a over the solve-defining fields; request_id and resume are
  // deliberately excluded so a resubmission hashes to the same checkpoint.
  std::uint64_t h = 1469598103934665603ull;
  auto mix_bytes = [&h](const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ull;
    }
  };
  auto mix_str = [&](const std::string& s) {
    const std::uint64_t len = s.size();
    mix_bytes(&len, sizeof(len));
    mix_bytes(s.data(), s.size());
  };
  mix_bytes(&rho, sizeof(rho));
  mix_bytes(&eps_rel, sizeof(eps_rel));
  mix_bytes(&max_iterations, sizeof(max_iterations));
  mix_bytes(&check_every, sizeof(check_every));
  mix_str(preflight);
  mix_str(feeder);
  mix_str(scenario);
  return h;
}

std::string SolveResponse::encode() const {
  WireWriter w;
  w.u64(request_id);
  w.u8(status);
  w.u8(converged ? 1 : 0);
  w.u32(iterations);
  w.f64(objective);
  w.f64(primal_residual);
  w.f64(dual_residual);
  w.u64(model_fp);
  w.u64(scenario_fp);
  return w.take();
}

SolveResponse SolveResponse::decode(std::string_view payload) {
  WireReader r(payload);
  SolveResponse res;
  res.request_id = r.u64("request_id");
  res.status = r.u8("status");
  res.converged = r.u8("converged") != 0;
  res.iterations = r.u32("iterations");
  res.objective = r.f64("objective");
  res.primal_residual = r.f64("primal_residual");
  res.dual_residual = r.f64("dual_residual");
  res.model_fp = r.u64("model_fp");
  res.scenario_fp = r.u64("scenario_fp");
  r.done("solve-response payload");
  return res;
}

std::string Reject::encode() const {
  WireWriter w;
  w.u64(request_id);
  w.u8(static_cast<std::uint8_t>(code));
  w.u32(retry_after_ms);
  w.str(message);
  return w.take();
}

Reject Reject::decode(std::string_view payload) {
  WireReader r(payload);
  Reject rej;
  rej.request_id = r.u64("request_id");
  const std::uint8_t code = r.u8("code");
  if (code < static_cast<std::uint8_t>(RejectCode::kOverloaded) ||
      code > static_cast<std::uint8_t>(RejectCode::kQuarantined)) {
    throw WireError("unknown reject code " + std::to_string(code));
  }
  rej.code = static_cast<RejectCode>(code);
  rej.retry_after_ms = r.u32("retry_after_ms");
  rej.message = r.str("message");
  r.done("reject payload");
  return rej;
}

std::string Ping::encode() const {
  WireWriter w;
  w.u64(id);
  return w.take();
}

Ping Ping::decode(std::string_view payload) {
  WireReader r(payload);
  Ping p;
  p.id = r.u64("id");
  r.done("ping payload");
  return p;
}

}  // namespace dopf::serve
