#include "serve/socket_io.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace dopf::serve {
namespace {

using Clock = std::chrono::steady_clock;

int remaining_ms(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - Clock::now())
                        .count();
  if (left <= 0) return 0;
  if (left > 60000) return 60000;
  return static_cast<int>(left);
}

/// Read exactly `n` bytes before `deadline`. Returns the byte count read so
/// far when the deadline expires or the peer closes early (< n), or n on
/// success. Throws WireError only on a hard socket error.
std::size_t read_upto_deadline(int fd, char* buf, std::size_t n,
                               Clock::time_point deadline) {
  std::size_t got = 0;
  while (got < n) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int timeout = remaining_ms(deadline);
    if (timeout == 0) return got;
    const int rc = ::poll(&pfd, 1, timeout);
    if (rc < 0) {
      if (errno == EINTR) continue;  // signal wakeup: re-check the deadline
      throw WireError(std::string("poll failed: ") + std::strerror(errno));
    }
    if (rc == 0) return got;  // idle past the deadline
    const ssize_t r = ::read(fd, buf + got, n - got);
    if (r < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      throw WireError(std::string("read failed: ") + std::strerror(errno));
    }
    if (r == 0) return got;  // EOF
    got += static_cast<std::size_t>(r);
  }
  return got;
}

}  // namespace

Fd& Fd::operator=(Fd&& other) noexcept {
  if (this != &other) {
    reset(other.fd_);
    other.fd_ = -1;
  }
  return *this;
}

int Fd::release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

void Fd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

Fd connect_unix(const std::string& path) {
  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    errno = ENAMETOOLONG;
    return Fd();
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) return Fd();
  if (::connect(fd.get(), reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    return Fd();
  }
  return fd;
}

Fd listen_unix(const std::string& path, int backlog) {
  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw WireError("socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());  // stale socket from a crashed predecessor
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) {
    throw WireError(std::string("socket failed: ") + std::strerror(errno));
  }
  if (::bind(fd.get(), reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throw WireError("bind failed on " + path + ": " + std::strerror(errno));
  }
  if (::listen(fd.get(), backlog) != 0) {
    throw WireError("listen failed on " + path + ": " + std::strerror(errno));
  }
  return fd;
}

ReadOutcome read_frame_fd(int fd, int idle_timeout_ms, int stall_timeout_ms) {
  ReadOutcome out;

  // Header: magic(4) + op(1) + length(4). The idle timeout applies only
  // while nothing has arrived; once the first byte lands we are mid-frame
  // and switch to the (shorter) stall budget.
  char header[9];
  const auto idle_deadline =
      Clock::now() + std::chrono::milliseconds(idle_timeout_ms);
  std::size_t got = read_upto_deadline(fd, header, 1, idle_deadline);
  if (got == 0) {
    // Distinguish "peer closed" from "nothing yet": peek with a zero wait.
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    if (::poll(&pfd, 1, 0) > 0 && (pfd.revents & (POLLHUP | POLLIN)) != 0) {
      char probe;
      const ssize_t r = ::recv(fd, &probe, 1, MSG_PEEK | MSG_DONTWAIT);
      if (r == 0) {
        out.status = ReadOutcome::kEof;
        return out;
      }
      if (r == 1) {
        // A byte raced in after the deadline; treat as idle — the caller
        // loops around and reads it next time.
      }
    }
    out.status = ReadOutcome::kIdle;
    return out;
  }

  const auto stall_deadline =
      Clock::now() + std::chrono::milliseconds(stall_timeout_ms);
  got += read_upto_deadline(fd, header + got, sizeof(header) - got,
                            stall_deadline);
  if (got < sizeof(header)) {
    throw WireError("torn frame: connection ended after " +
                    std::to_string(got) + " header byte(s)");
  }

  // Validate magic and length BEFORE allocating the payload buffer — a
  // corrupt length field must not turn into a giant allocation.
  std::uint32_t magic = 0;
  std::uint32_t length = 0;
  std::memcpy(&magic, header, 4);
  std::memcpy(&length, header + 5, 4);
  if (magic != kWireMagic) {
    throw WireError("bad frame magic on stream (desynchronized?)");
  }
  if (length > kMaxPayload) {
    throw WireError("frame length " + std::to_string(length) +
                    " exceeds kMaxPayload");
  }

  std::string rest(static_cast<std::size_t>(length) + 4, '\0');
  const std::size_t rest_got =
      read_upto_deadline(fd, rest.data(), rest.size(), stall_deadline);
  if (rest_got < rest.size()) {
    throw WireError("torn frame: connection ended " +
                    std::to_string(rest.size() - rest_got) +
                    " byte(s) short of a full frame");
  }

  std::string full(header, sizeof(header));
  full += rest;
  std::size_t consumed = 0;
  out.frame = decode_frame(full, &consumed);  // CRC + op validation
  out.status = ReadOutcome::kFrame;
  return out;
}

bool write_all_fd(int fd, std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t r = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return false;
    }
    sent += static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace dopf::serve
