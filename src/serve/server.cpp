#include "serve/server.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "core/admm.hpp"
#include "feeders/feeder_io.hpp"
#include "network/network.hpp"
#include "opf/model.hpp"
#include "robust/preflight.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/instances.hpp"
#include "runtime/scenario.hpp"
#include "serve/queue.hpp"
#include "serve/socket_io.hpp"

namespace dopf::serve {
namespace {

/// One client connection: the fd plus a write mutex so a worker's response
/// and the reader's rejects interleave at frame granularity, never byte
/// granularity. Held by shared_ptr from the reader thread and from every
/// queued request, so the fd stays open until the last response is written.
struct Connection {
  explicit Connection(Fd f) : fd(std::move(f)) {}
  Fd fd;
  std::mutex write_mu;
};

std::string hex_u64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Parse the request's scenario override lines (runtime/scenario.hpp
/// grammar, one override per line, '#' comments allowed). Throws
/// ScenarioError with line provenance.
dopf::runtime::Scenario parse_request_scenario(const std::string& text) {
  dopf::runtime::Scenario sc;
  sc.name = "request";
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream ls(line);
    std::vector<std::string> tokens;
    std::string tok;
    while (ls >> tok) {
      if (tok[0] == '#') break;
      tokens.push_back(tok);
    }
    if (tokens.empty()) continue;
    const auto ov = dopf::runtime::parse_scenario_override(tokens, line_no);
    dopf::runtime::reject_duplicate_override(sc.overrides, ov,
                                             "request scenario");
    sc.overrides.push_back(ov);
  }
  return sc;
}

/// Tagged wrapper so handle_request's catch ladder can map a validation
/// failure to kBadRequest without stringly-typed matching.
class BadRequestError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

void validate_request(const SolveRequest& req) {
  if (req.feeder.empty()) throw BadRequestError("empty feeder reference");
  if (!(req.rho > 0.0) || !std::isfinite(req.rho)) {
    throw BadRequestError("rho must be finite and > 0");
  }
  if (!(req.eps_rel > 0.0) || !std::isfinite(req.eps_rel)) {
    throw BadRequestError("eps_rel must be finite and > 0");
  }
  if (req.max_iterations < 1) {
    throw BadRequestError("max_iterations must be >= 1");
  }
  if (req.check_every < 1) throw BadRequestError("check_every must be >= 1");
  if (req.preflight != "off") {
    try {
      (void)dopf::robust::parse_policy(req.preflight);
    } catch (const std::invalid_argument& e) {
      throw BadRequestError(std::string("bad preflight policy: ") + e.what());
    }
  }
}

}  // namespace

struct QueuedRequest {
  SolveRequest req;
  std::shared_ptr<Connection> conn;
  /// Per-request token: deadline armed at admission, parent-linked to the
  /// drain token so one poll observes both.
  std::shared_ptr<dopf::core::CancelToken> token;
};

struct Server::Impl {
  ServeOptions opts;
  Fd listen_fd;
  ServeFaultInjector faults;
  ModelCache cache;
  BoundedMpscRing<QueuedRequest> ring;
  std::atomic<int> inflight{0};

  mutable std::mutex stats_mu;
  ServerStats stats_snapshot;  // counters only; cache/faults filled on read
  bool io_failure = false;

  std::mutex threads_mu;
  std::vector<std::thread> conn_threads;
  std::vector<std::thread> workers;

  explicit Impl(ServeOptions o)
      : opts(std::move(o)),
        faults(opts.faults),
        cache(opts.cache_budget_bytes),
        ring(opts.queue_depth) {}

  bool draining() const { return opts.drain->cancelled(); }

  template <typename Fn>
  void bump(Fn&& fn) {
    std::lock_guard<std::mutex> lock(stats_mu);
    fn(stats_snapshot);
  }

  std::string checkpoint_path(const SolveRequest& req) const {
    return opts.checkpoint_dir + "/req-" + hex_u64(req.content_hash()) +
           ".ckpt";
  }

  /// Every outgoing frame funnels through here: the fault injector sees
  /// one deterministic sent-frame ordering, and the per-connection write
  /// mutex keeps frames atomic on the stream.
  void send_frame(Connection& conn, Op op, const std::string& payload) {
    std::string frame = encode_frame(op, payload);
    bool close_after = false;
    if (const ServeFailpoint* fp = faults.on_send(op)) {
      if (fp->kind == ServeFailpoint::Kind::kDelay) {
        std::this_thread::sleep_for(std::chrono::milliseconds(fp->delay_ms));
      }
      if (!apply_failpoint(*fp, &frame, &close_after)) return;  // dropped
    }
    std::lock_guard<std::mutex> lock(conn.write_mu);
    (void)write_all_fd(conn.fd.get(), frame);
    if (close_after) ::shutdown(conn.fd.get(), SHUT_RDWR);
  }

  void send_reject(Connection& conn, std::uint64_t request_id, RejectCode code,
                   std::uint32_t retry_after_ms, const std::string& message) {
    Reject r;
    r.request_id = request_id;
    r.code = code;
    r.retry_after_ms = retry_after_ms;
    r.message = message;
    send_frame(conn, Op::kReject, r.encode());
  }

  void admit(const std::shared_ptr<Connection>& conn, SolveRequest req) {
    const std::uint64_t id = req.request_id;
    if (draining() || ring.closed()) {
      bump([](ServerStats& s) { ++s.rejected_shutdown; });
      send_reject(*conn, id, RejectCode::kShuttingDown, 0,
                  "server is draining; request not admitted");
      return;
    }
    QueuedRequest qr;
    qr.token = std::make_shared<dopf::core::CancelToken>();
    qr.token->link_parent(opts.drain);
    if (req.deadline_ms > 0) {
      // Armed at ADMISSION: queue wait counts against the deadline.
      qr.token->set_deadline_after(req.deadline_ms / 1000.0);
    }
    qr.req = std::move(req);
    qr.conn = conn;
    if (!ring.try_push(std::move(qr))) {
      if (ring.closed()) {
        bump([](ServerStats& s) { ++s.rejected_shutdown; });
        send_reject(*conn, id, RejectCode::kShuttingDown, 0,
                    "server is draining; request not admitted");
        return;
      }
      // SHED, never block: the bounded ring is full. The hint scales with
      // how much work is ahead of the client.
      const auto backlog =
          static_cast<std::uint32_t>(ring.size()) +
          static_cast<std::uint32_t>(inflight.load(std::memory_order_relaxed));
      bump([](ServerStats& s) { ++s.rejected_overload; });
      send_reject(*conn, id, RejectCode::kOverloaded, 25 * (1 + backlog),
                  "request ring full (" + std::to_string(ring.capacity()) +
                      " queued); retry after the hint");
      return;
    }
    bump([](ServerStats& s) { ++s.admitted; });
  }

  void reader_loop(std::shared_ptr<Connection> conn) {
    while (!draining()) {
      ReadOutcome out;
      try {
        out = read_frame_fd(conn->fd.get(), /*idle_timeout_ms=*/200);
      } catch (const WireError& e) {
        // Torn or corrupted frame: the byte stream is desynchronized, so
        // a typed reject (unattributable id) is all we can say before
        // closing. The client reconnects and retries.
        bump([](ServerStats& s) { ++s.rejected_wire; });
        send_reject(*conn, 0, RejectCode::kWire, 0, e.what());
        ::shutdown(conn->fd.get(), SHUT_RDWR);
        return;
      }
      if (out.status == ReadOutcome::kIdle) continue;
      if (out.status == ReadOutcome::kEof) return;

      switch (out.frame.op) {
        case Op::kPing: {
          Ping ping;
          try {
            ping = Ping::decode(out.frame.payload);
          } catch (const WireError& e) {
            bump([](ServerStats& s) { ++s.rejected_wire; });
            send_reject(*conn, 0, RejectCode::kWire, 0, e.what());
            break;
          }
          bump([](ServerStats& s) { ++s.pings; });
          send_frame(*conn, Op::kPong, ping.encode());
          break;
        }
        case Op::kSolveRequest: {
          SolveRequest req;
          try {
            req = SolveRequest::decode(out.frame.payload);
          } catch (const WireError& e) {
            // CRC was fine, so the framing is still in sync — reject the
            // payload, keep the connection.
            bump([](ServerStats& s) { ++s.rejected_wire; });
            send_reject(*conn, 0, RejectCode::kWire, 0, e.what());
            break;
          }
          admit(conn, std::move(req));
          break;
        }
        default:
          bump([](ServerStats& s) { ++s.rejected_bad_request; });
          send_reject(*conn, 0, RejectCode::kBadRequest, 0,
                      std::string("unexpected frame kind from client: ") +
                          to_string(out.frame.op));
          break;
      }
    }
  }

  /// Build one cached topology precompute. Mirrors the dopf_solve cold
  /// path exactly (preflight -> projector options -> equilibrated
  /// decompose -> SolveModel) so server solves are byte-identical to solo
  /// solves of the same request.
  std::shared_ptr<CachedModel> build_entry(const SolveRequest& req,
                                           const std::string& key) {
    auto entry = std::make_shared<CachedModel>();
    entry->key = key;
    if (req.feeder.rfind("builtin:", 0) == 0) {
      entry->net = dopf::runtime::make_instance(req.feeder.substr(8)).net;
    } else {
      entry->net = dopf::feeders::load_feeder(req.feeder);
    }
    const auto model = dopf::opf::build_model(entry->net);
    dopf::opf::DistributedProblem problem;
    if (req.preflight != "off") {
      dopf::robust::PreflightOptions popt;
      popt.policy = dopf::robust::parse_policy(req.preflight);
      const auto pre =
          dopf::robust::run_preflight(entry->net, model, &problem, popt);
      if (!pre.accepted) throw dopf::robust::PreflightError(pre);
      entry->projector = pre.projector_options();
      entry->decompose.equilibrate_rows = pre.equilibrated;
    } else {
      problem = dopf::opf::decompose(entry->net, model);
    }
    entry->model =
        std::make_unique<dopf::core::SolveModel>(problem, entry->projector);
    entry->binding =
        std::make_unique<dopf::core::ScenarioBinding>(*entry->model);
    entry->model_fp = entry->binding->model_fingerprint();
    entry->bytes = estimate_model_bytes(*entry->binding);
    return entry;
  }

  void worker_loop() {
    while (auto item = ring.pop()) {
      inflight.fetch_add(1, std::memory_order_relaxed);
      handle_request(std::move(*item));
      inflight.fetch_sub(1, std::memory_order_relaxed);
    }
  }

  void handle_request(QueuedRequest qr) {
    const SolveRequest& req = qr.req;
    Connection& conn = *qr.conn;
    const std::uint64_t id = req.request_id;
    try {
      if (qr.token->deadline_exceeded()) {
        bump([](ServerStats& s) { ++s.rejected_deadline; });
        send_reject(conn, id, RejectCode::kDeadline, 0,
                    "deadline expired while queued");
        return;
      }
      if (draining()) {
        bump([](ServerStats& s) { ++s.rejected_shutdown; });
        send_reject(conn, id, RejectCode::kShuttingDown, 0,
                    "server draining; queued request shed before starting");
        return;
      }
      validate_request(req);

      const std::string key = req.feeder + "#" + req.preflight;
      const std::shared_ptr<CachedModel> entry =
          cache.acquire(key, [&] { return build_entry(req, key); });

      const dopf::runtime::Scenario sc = parse_request_scenario(req.scenario);

      // One scenario bound at a time per model; requests against other
      // cached models keep solving on other workers.
      std::lock_guard<std::mutex> model_lock(entry->mu);

      const auto net_s = dopf::runtime::apply_scenario(entry->net, sc);
      const auto model_s = dopf::opf::build_model(net_s);
      const auto problem_s =
          dopf::opf::decompose(net_s, model_s, entry->decompose);
      if (req.preflight != "off") {
        dopf::robust::PreflightOptions popt;
        popt.policy = dopf::robust::parse_policy(req.preflight);
        popt.decompose = entry->decompose;
        const auto pre = dopf::robust::run_scenario_preflight(
            entry->model->problem(), problem_s, popt);
        if (!pre.accepted) {
          bump([](ServerStats& s) { ++s.rejected_preflight; });
          send_reject(conn, id, RejectCode::kPreflight, 0, pre.rejection);
          return;
        }
      }

      dopf::core::AdmmOptions opt;
      opt.rho = req.rho;
      opt.eps_rel = req.eps_rel;
      opt.max_iterations = static_cast<int>(req.max_iterations);
      opt.check_every = static_cast<int>(req.check_every);
      opt.projector = entry->projector;
      opt.cancel = qr.token.get();

      // A FRESH session per request: the rebind is bit-identical to a cold
      // build (retained factorizations, PR 6), and a cold solve over it
      // reproduces a solo dopf_solve byte for byte — the determinism the
      // fault harness asserts. Reuse lives in the model/binding, not in
      // iterate state.
      dopf::core::SolveSession session(*entry->binding, opt);
      session.rebind(problem_s);

      if (req.resume && !opts.checkpoint_dir.empty()) {
        dopf::runtime::CheckpointStore store(checkpoint_path(req),
                                             opts.durable);
        if (store.any_slot_exists()) {
          auto loaded = store.load();
          loaded.checkpoint.validate_for(session.solver(), req.feeder);
          loaded.checkpoint.restore(&session.solver(), req.feeder);
          session.mark_warm();
        }
      }

      dopf::core::AdmmResult res = session.solve();
      bump([&](ServerStats& s) {
        const auto& st = session.stats();
        s.session.solves += st.solves;
        s.session.cold_solves += st.cold_solves;
        s.session.warm_solves += st.warm_solves;
        s.session.precompute_reuses += st.precompute_reuses;
        s.session.refactorizations += st.refactorizations;
        s.session.rhs_rebinds += st.rhs_rebinds;
      });

      if (res.status == dopf::core::AdmmStatus::kCancelled) {
        if (qr.token->deadline_exceeded()) {
          bump([](ServerStats& s) { ++s.rejected_deadline; });
          send_reject(conn, id, RejectCode::kDeadline, 0,
                      "deadline expired after " +
                          std::to_string(res.iterations) + " iterations");
          return;
        }
        // Drain: checkpoint the in-flight solve durably so a resubmission
        // with resume continues byte-identically.
        if (opts.checkpoint_dir.empty()) {
          bump([](ServerStats& s) { ++s.rejected_shutdown; });
          send_reject(conn, id, RejectCode::kShuttingDown, 0,
                      "drained at iteration " +
                          std::to_string(res.iterations) +
                          "; no checkpoint dir, progress discarded");
          return;
        }
        auto ck = dopf::runtime::AdmmCheckpoint::capture(
            session.solver(), res.iterations, req.feeder);
        dopf::runtime::CheckpointStore store(checkpoint_path(req),
                                             opts.durable);
        const auto io = store.save(std::move(ck));
        bump([&](ServerStats& s) {
          ++s.drain_checkpointed;
          s.io += io;
        });
        send_reject(conn, id, RejectCode::kDrained, 0,
                    "drained at iteration " + std::to_string(res.iterations) +
                        "; resubmit with resume to continue");
        return;
      }

      SolveResponse resp;
      resp.request_id = id;
      resp.status = static_cast<std::uint8_t>(res.status);
      resp.converged = res.converged;
      resp.iterations = static_cast<std::uint32_t>(res.iterations);
      resp.objective = res.objective;
      resp.primal_residual = res.primal_residual;
      resp.dual_residual = res.dual_residual;
      resp.model_fp = entry->binding->model_fingerprint();
      resp.scenario_fp = entry->binding->scenario_fingerprint();
      bump([](ServerStats& s) { ++s.solved; });
      send_frame(conn, Op::kSolveResponse, resp.encode());
    } catch (const BadRequestError& e) {
      bump([](ServerStats& s) { ++s.rejected_bad_request; });
      send_reject(conn, id, RejectCode::kBadRequest, 0, e.what());
    } catch (const dopf::runtime::ScenarioError& e) {
      bump([](ServerStats& s) { ++s.rejected_bad_request; });
      send_reject(conn, id, RejectCode::kBadRequest, 0, e.what());
    } catch (const dopf::robust::PreflightError& e) {
      bump([](ServerStats& s) { ++s.rejected_preflight; });
      send_reject(conn, id, RejectCode::kPreflight, 0, e.what());
    } catch (const dopf::runtime::CheckpointError& e) {
      bump([](ServerStats& s) { ++s.rejected_bad_request; });
      send_reject(conn, id, RejectCode::kBadRequest, 0,
                  std::string("resume checkpoint rejected: ") + e.what());
    } catch (const dopf::runtime::SimulatedCrash& e) {
      bump([this](ServerStats&) { io_failure = true; });
      send_reject(conn, id, RejectCode::kInternal, 0,
                  std::string("durable checkpoint failed: ") + e.what());
    } catch (const dopf::runtime::IoError& e) {
      bump([this](ServerStats&) { io_failure = true; });
      send_reject(conn, id, RejectCode::kInternal, 0,
                  std::string("durable checkpoint failed: ") + e.what());
    } catch (const dopf::feeders::FeederFormatError& e) {
      bump([](ServerStats& s) { ++s.rejected_bad_request; });
      send_reject(conn, id, RejectCode::kBadRequest, 0, e.what());
    } catch (const std::invalid_argument& e) {
      // Unknown builtin feeder name, bad policy text, ...
      bump([](ServerStats& s) { ++s.rejected_bad_request; });
      send_reject(conn, id, RejectCode::kBadRequest, 0, e.what());
    } catch (const std::exception& e) {
      bump([](ServerStats& s) { ++s.rejected_bad_request; });
      send_reject(conn, id, RejectCode::kInternal, 0,
                  std::string("internal error: ") + e.what());
    }
  }
};

Server::Server(ServeOptions options) : impl_(new Impl(std::move(options))) {}

Server::~Server() { delete impl_; }

void Server::start() {
  if (impl_->opts.drain == nullptr) {
    throw WireError("ServeOptions.drain token is required");
  }
  impl_->listen_fd = listen_unix(impl_->opts.socket_path, /*backlog=*/64);
}

int Server::run() {
  Impl& im = *impl_;
  const int nworkers = im.opts.workers < 1 ? 1 : im.opts.workers;
  for (int i = 0; i < nworkers; ++i) {
    im.workers.emplace_back([&im] { im.worker_loop(); });
  }

  while (!im.draining()) {
    struct pollfd pfd;
    pfd.fd = im.listen_fd.get();
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int rc = ::poll(&pfd, 1, 200);
    if (rc < 0) {
      if (errno == EINTR) continue;  // drain signal; loop re-checks
      break;
    }
    if (rc == 0 || (pfd.revents & POLLIN) == 0) continue;
    const int cfd = ::accept(im.listen_fd.get(), nullptr, nullptr);
    if (cfd < 0) continue;
    auto conn = std::make_shared<Connection>(Fd(cfd));
    std::lock_guard<std::mutex> lock(im.threads_mu);
    im.conn_threads.emplace_back([&im, conn] { im.reader_loop(conn); });
  }

  // Drain: stop listening, close the ring (workers finish what is queued —
  // handle_request sheds it typed — and in-flight solves observe the drain
  // token through their parent link).
  im.listen_fd.reset();
  im.ring.close();
  for (auto& th : im.workers) th.join();
  {
    std::lock_guard<std::mutex> lock(im.threads_mu);
    for (auto& th : im.conn_threads) th.join();
  }
  ::unlink(im.opts.socket_path.c_str());

  std::lock_guard<std::mutex> lock(im.stats_mu);
  if (im.io_failure) return 7;
  return im.stats_snapshot.drain_checkpointed > 0 ? 6 : 0;
}

ServerStats Server::stats() const {
  Impl& im = *impl_;
  ServerStats out;
  {
    std::lock_guard<std::mutex> lock(im.stats_mu);
    out = im.stats_snapshot;
  }
  out.cache = im.cache.stats();
  out.faults = im.faults.counts();
  return out;
}

}  // namespace dopf::serve
