#include "serve/server.hpp"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "serve/queue.hpp"
#include "serve/socket_io.hpp"

namespace dopf::serve {
namespace {

/// One client connection: the fd plus a write mutex so a dispatcher's
/// relayed response and the reader's rejects interleave at frame
/// granularity, never byte granularity. Held by shared_ptr from the reader
/// thread and from every queued request, so the fd stays open until the
/// last response is written.
struct Connection {
  explicit Connection(Fd f) : fd(std::move(f)) {}
  Fd fd;
  std::mutex write_mu;
};

}  // namespace

struct QueuedRequest {
  SolveRequest req;
  std::shared_ptr<Connection> conn;
  /// Per-request token: deadline armed at admission, parent-linked to the
  /// drain token so one poll observes both.
  std::shared_ptr<dopf::core::CancelToken> token;
};

struct Server::Impl {
  ServeOptions opts;
  Fd listen_fd;
  ServeFaultInjector faults;
  CrashFaultInjector crash_faults;
  Quarantine quarantine;
  BoundedMpscRing<QueuedRequest> ring;
  std::atomic<int> inflight{0};
  std::atomic<int> live_dispatchers{0};

  mutable std::mutex stats_mu;
  ServerStats stats_snapshot;  // counters only; faults filled on read
  bool io_failure = false;

  // Connection reader threads, keyed so finished ones can be reaped by the
  // accept loop instead of accumulating for the whole server lifetime.
  std::mutex threads_mu;
  std::unordered_map<std::uint64_t, std::thread> conn_threads;
  std::vector<std::uint64_t> finished_conns;
  std::uint64_t next_conn_id = 0;
  std::vector<std::thread> dispatchers;

  // Live supervisors, registered by their dispatcher threads so run()'s
  // drain path can forward SIGTERM to every worker subprocess.
  std::mutex sup_mu;
  std::vector<WorkerSupervisor*> supervisors;

  explicit Impl(ServeOptions o)
      : opts(std::move(o)),
        faults(opts.faults),
        crash_faults(opts.crash_faults),
        quarantine(opts.quarantine_ttl_ms),
        ring(opts.queue_depth) {}

  bool draining() const { return opts.drain->cancelled(); }

  template <typename Fn>
  void bump(Fn&& fn) {
    std::lock_guard<std::mutex> lock(stats_mu);
    fn(stats_snapshot);
  }

  /// Every outgoing frame funnels through here: the fault injector sees
  /// one deterministic sent-frame ordering, and the per-connection write
  /// mutex keeps frames atomic on the stream.
  void send_frame(Connection& conn, Op op, const std::string& payload) {
    std::string frame = encode_frame(op, payload);
    bool close_after = false;
    if (const ServeFailpoint* fp = faults.on_send(op)) {
      if (fp->kind == ServeFailpoint::Kind::kDelay) {
        std::this_thread::sleep_for(std::chrono::milliseconds(fp->delay_ms));
      }
      if (!apply_failpoint(*fp, &frame, &close_after)) return;  // dropped
    }
    std::lock_guard<std::mutex> lock(conn.write_mu);
    (void)write_all_fd(conn.fd.get(), frame);
    if (close_after) ::shutdown(conn.fd.get(), SHUT_RDWR);
  }

  void send_reject(Connection& conn, std::uint64_t request_id, RejectCode code,
                   std::uint32_t retry_after_ms, const std::string& message) {
    Reject r;
    r.request_id = request_id;
    r.code = code;
    r.retry_after_ms = retry_after_ms;
    r.message = message;
    send_frame(conn, Op::kReject, r.encode());
  }

  void admit(const std::shared_ptr<Connection>& conn, SolveRequest req) {
    const std::uint64_t id = req.request_id;
    if (draining() || ring.closed()) {
      bump([](ServerStats& s) { ++s.rejected_shutdown; });
      send_reject(*conn, id, RejectCode::kShuttingDown, 0,
                  "server is draining; request not admitted");
      return;
    }
    if (live_dispatchers.load(std::memory_order_acquire) == 0) {
      // Every worker slot spent its restart budget: nothing will ever
      // consume the ring again. Shed typed — the server stays up.
      bump([](ServerStats& s) { ++s.rejected_degraded; });
      send_reject(*conn, id, RejectCode::kInternal, 0,
                  "all solve workers degraded; restart budget exhausted");
      return;
    }
    QueuedRequest qr;
    qr.token = std::make_shared<dopf::core::CancelToken>();
    qr.token->link_parent(opts.drain);
    if (req.deadline_ms > 0) {
      // Armed at ADMISSION: queue wait counts against the deadline.
      qr.token->set_deadline_after(req.deadline_ms / 1000.0);
    }
    qr.req = std::move(req);
    qr.conn = conn;
    if (!ring.try_push(std::move(qr))) {
      if (ring.closed()) {
        bump([](ServerStats& s) { ++s.rejected_shutdown; });
        send_reject(*conn, id, RejectCode::kShuttingDown, 0,
                    "server is draining; request not admitted");
        return;
      }
      // SHED, never block: the bounded ring is full. The hint scales with
      // how much work is ahead of the client.
      const auto backlog =
          static_cast<std::uint32_t>(ring.size()) +
          static_cast<std::uint32_t>(inflight.load(std::memory_order_relaxed));
      bump([](ServerStats& s) { ++s.rejected_overload; });
      send_reject(*conn, id, RejectCode::kOverloaded, 25 * (1 + backlog),
                  "request ring full (" + std::to_string(ring.capacity()) +
                      " queued); retry after the hint");
      return;
    }
    bump([](ServerStats& s) { ++s.admitted; });
  }

  void reader_loop(std::shared_ptr<Connection> conn) {
    while (!draining()) {
      ReadOutcome out;
      try {
        out = read_frame_fd(conn->fd.get(), /*idle_timeout_ms=*/200);
      } catch (const WireError& e) {
        // Torn or corrupted frame: the byte stream is desynchronized, so
        // a typed reject (unattributable id) is all we can say before
        // closing. The client reconnects and retries.
        bump([](ServerStats& s) { ++s.rejected_wire; });
        send_reject(*conn, 0, RejectCode::kWire, 0, e.what());
        ::shutdown(conn->fd.get(), SHUT_RDWR);
        return;
      }
      if (out.status == ReadOutcome::kIdle) continue;
      if (out.status == ReadOutcome::kEof) return;

      switch (out.frame.op) {
        case Op::kPing: {
          Ping ping;
          try {
            ping = Ping::decode(out.frame.payload);
          } catch (const WireError& e) {
            bump([](ServerStats& s) { ++s.rejected_wire; });
            send_reject(*conn, 0, RejectCode::kWire, 0, e.what());
            break;
          }
          bump([](ServerStats& s) { ++s.pings; });
          send_frame(*conn, Op::kPong, ping.encode());
          break;
        }
        case Op::kSolveRequest: {
          SolveRequest req;
          try {
            req = SolveRequest::decode(out.frame.payload);
          } catch (const WireError& e) {
            // CRC was fine, so the framing is still in sync — reject the
            // payload, keep the connection.
            bump([](ServerStats& s) { ++s.rejected_wire; });
            send_reject(*conn, 0, RejectCode::kWire, 0, e.what());
            break;
          }
          admit(conn, std::move(req));
          break;
        }
        default:
          // Includes the supervisor-link ops (kCrashArm, kWorkerStats): a
          // client has no business sending those.
          bump([](ServerStats& s) { ++s.rejected_bad_request; });
          send_reject(*conn, 0, RejectCode::kBadRequest, 0,
                      std::string("unexpected frame kind from client: ") +
                          to_string(out.frame.op));
          break;
      }
    }
  }

  /// Relay a worker's reply frame to the client, bumping the counter the
  /// in-process server used to bump when it produced the frame itself.
  void relay(Connection& conn, const Frame& frame) {
    if (frame.op == Op::kSolveResponse) {
      bump([](ServerStats& s) { ++s.solved; });
    } else if (frame.op == Op::kReject) {
      try {
        const Reject rej = Reject::decode(frame.payload);
        bump([&rej](ServerStats& s) {
          switch (rej.code) {
            case RejectCode::kDeadline: ++s.rejected_deadline; break;
            case RejectCode::kPreflight: ++s.rejected_preflight; break;
            case RejectCode::kDrained: ++s.drain_checkpointed; break;
            case RejectCode::kShuttingDown: ++s.rejected_shutdown; break;
            case RejectCode::kBadRequest:
            case RejectCode::kInternal:
            default: ++s.rejected_bad_request; break;
          }
        });
      } catch (const WireError&) {
        // Undecodable worker reject: still relay the bytes; the client's
        // decoder is the authority.
      }
    }
    send_frame(conn, frame.op, frame.payload);
  }

  /// Drive one queued request through a worker subprocess: pre-checks in
  /// the parent (deadline, drain, validation, quarantine), then up to two
  /// dispatch attempts — a crash victim is re-queued exactly once, and a
  /// second crash quarantines the content hash.
  void dispatch(WorkerSupervisor& sup, QueuedRequest qr) {
    Connection& conn = *qr.conn;
    const std::uint64_t id = qr.req.request_id;
    if (qr.token->deadline_exceeded()) {
      bump([](ServerStats& s) { ++s.rejected_deadline; });
      send_reject(conn, id, RejectCode::kDeadline, 0,
                  "deadline expired while queued");
      return;
    }
    if (draining()) {
      bump([](ServerStats& s) { ++s.rejected_shutdown; });
      send_reject(conn, id, RejectCode::kShuttingDown, 0,
                  "server draining; queued request shed before starting");
      return;
    }
    try {
      validate_request(qr.req);
    } catch (const BadRequestError& e) {
      bump([](ServerStats& s) { ++s.rejected_bad_request; });
      send_reject(conn, id, RejectCode::kBadRequest, 0, e.what());
      return;
    }
    const std::uint64_t hash = qr.req.content_hash();
    if (const std::uint32_t ttl = quarantine.active_ms(hash)) {
      bump([](ServerStats& s) { ++s.rejected_quarantined; });
      send_reject(conn, id, RejectCode::kQuarantined, ttl,
                  "request quarantined: identical content crashed solve "
                  "workers twice; readmitted in " +
                      std::to_string(ttl) + " ms");
      return;
    }

    for (int attempt = 0; attempt < 2; ++attempt) {
      // Rewrite the relative deadline to the time REMAINING: the worker
      // arms a fresh token, and the queue wait (plus any first crashed
      // attempt) must stay charged against the request's budget.
      SolveRequest req = qr.req;
      if (req.deadline_ms > 0) {
        const double rem = qr.token->deadline_remaining_seconds();
        req.deadline_ms =
            rem <= 1e-3 ? 1u : static_cast<std::uint32_t>(rem * 1000.0);
      }
      const CrashFailpoint* fp = crash_faults.on_dispatch();
      const std::string frame = encode_frame(Op::kSolveRequest, req.encode());

      auto ex = sup.exchange(frame, fp);
      switch (ex.kind) {
        case WorkerSupervisor::Exchange::Kind::kFrame:
          relay(conn, ex.frame);
          return;
        case WorkerSupervisor::Exchange::Kind::kDegraded:
          if (draining()) {
            bump([](ServerStats& s) { ++s.rejected_shutdown; });
            send_reject(conn, id, RejectCode::kShuttingDown, 0,
                        "server draining; queued request shed before "
                        "starting");
          } else {
            bump([](ServerStats& s) { ++s.rejected_degraded; });
            send_reject(conn, id, RejectCode::kInternal, 0,
                        "solve worker unavailable; restart budget exhausted");
          }
          return;
        case WorkerSupervisor::Exchange::Kind::kWorkerExit: {
          if (draining() && ex.exit.kind == WorkerExit::Kind::kClean) {
            // The worker drained out from under the exchange — an orderly
            // exit, not a crash.
            bump([](ServerStats& s) { ++s.rejected_shutdown; });
            send_reject(conn, id, RejectCode::kShuttingDown, 0,
                        "worker drained before answering; resubmit");
            return;
          }
          bump([](ServerStats& s) { ++s.worker_crashes; });
          const int crashes = quarantine.record_crash(hash);
          if (crashes >= 2) {
            const std::uint32_t ttl = quarantine.active_ms(hash);
            bump([](ServerStats& s) { ++s.rejected_quarantined; });
            send_reject(conn, id, RejectCode::kQuarantined, ttl,
                        "request quarantined after " +
                            std::to_string(crashes) +
                            " worker crashes (last: " + ex.exit.to_string() +
                            "); readmitted in " + std::to_string(ttl) + " ms");
            return;
          }
          // Re-queue the victim exactly once: the crash may have been the
          // worker's fault (heap corruption from an earlier request, an
          // OOM kill), not this request's.
          bump([](ServerStats& s) { ++s.requeued; });
          continue;
        }
      }
    }
    // Both attempts crashed — unreachable in practice because the second
    // crash trips the >= 2 quarantine branch above, but a typed reply must
    // exist on every path.
    bump([](ServerStats& s) { ++s.rejected_bad_request; });
    send_reject(conn, id, RejectCode::kInternal, 0,
                "request failed twice on crashing workers");
  }

  /// Fold one worker's farewell stats (and its supervisor's restart
  /// bookkeeping) into the server aggregate.
  void absorb(const WorkerSupervisor& sup,
              const WorkerSupervisor::ShutdownReport& rep) {
    std::lock_guard<std::mutex> lock(stats_mu);
    stats_snapshot.worker_restarts +=
        static_cast<std::uint64_t>(sup.restarts());
    if (sup.degraded()) ++stats_snapshot.workers_degraded;
    if (rep.have_stats) {
      const WorkerStatsMsg& m = rep.stats;
      stats_snapshot.session.solves += m.session.solves;
      stats_snapshot.session.cold_solves += m.session.cold_solves;
      stats_snapshot.session.warm_solves += m.session.warm_solves;
      stats_snapshot.session.precompute_reuses += m.session.precompute_reuses;
      stats_snapshot.session.refactorizations += m.session.refactorizations;
      stats_snapshot.session.rhs_rebinds += m.session.rhs_rebinds;
      stats_snapshot.io += m.io;
      stats_snapshot.cache.hits += m.cache_hits;
      stats_snapshot.cache.misses += m.cache_misses;
      stats_snapshot.cache.evictions += m.cache_evictions;
      stats_snapshot.cache.resident_bytes +=
          static_cast<std::size_t>(m.cache_resident_bytes);
      stats_snapshot.cache.entries += static_cast<std::size_t>(m.cache_entries);
      if (m.io_failure) io_failure = true;
    } else if (rep.exit.kind == WorkerExit::Kind::kNonZero &&
               rep.exit.code == 7) {
      // Farewell frame lost but the worker pinned its exit code: a durable
      // I/O failure must still surface as exit 7.
      io_failure = true;
    }
  }

  SupervisorOptions supervisor_options(int slot) const {
    SupervisorOptions so;
    so.worker_command = opts.worker_command;
    so.worker_entry = opts.worker_entry;
    so.restart_budget = opts.restart_budget;
    so.backoff_seed = opts.supervisor_seed;
    so.hang_timeout_ms = opts.hang_timeout_ms;
    so.grace_ms = opts.drain_grace_ms;
    (void)slot;  // the slot index seeds the backoff inside WorkerSupervisor
    return so;
  }

  void dispatch_loop(int slot) {
    WorkerSupervisor sup(slot, supervisor_options(slot), opts.drain);
    {
      std::lock_guard<std::mutex> lock(sup_mu);
      supervisors.push_back(&sup);
    }
    while (auto item = ring.pop()) {
      inflight.fetch_add(1, std::memory_order_relaxed);
      dispatch(sup, std::move(*item));
      inflight.fetch_sub(1, std::memory_order_relaxed);
      if (sup.degraded()) break;  // this slot is done; others keep serving
    }
    const auto rep = sup.shutdown();
    absorb(sup, rep);
    {
      std::lock_guard<std::mutex> lock(sup_mu);
      for (auto it = supervisors.begin(); it != supervisors.end(); ++it) {
        if (*it == &sup) {
          supervisors.erase(it);
          break;
        }
      }
    }
    if (live_dispatchers.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
        !draining()) {
      // Last slot degraded with the server still up: nothing will consume
      // the ring again, so shed what is queued typed (admit() sheds new
      // arrivals from here on).
      while (auto leftover = ring.try_pop()) {
        bump([](ServerStats& s) { ++s.rejected_degraded; });
        send_reject(*leftover->conn, leftover->req.request_id,
                    RejectCode::kInternal, 0,
                    "all solve workers degraded; restart budget exhausted");
      }
    }
  }

  /// Join reader threads that have announced completion (under threads_mu).
  void reap_finished_conns_locked() {
    for (const std::uint64_t cid : finished_conns) {
      auto it = conn_threads.find(cid);
      if (it == conn_threads.end()) continue;
      it->second.join();
      conn_threads.erase(it);
    }
    finished_conns.clear();
  }
};

Server::Server(ServeOptions options) : impl_(new Impl(std::move(options))) {}

Server::~Server() { delete impl_; }

void Server::start() {
  if (impl_->opts.drain == nullptr) {
    throw WireError("ServeOptions.drain token is required");
  }
  if (impl_->opts.worker_command.empty() &&
      impl_->opts.worker_entry == nullptr) {
    throw WireError(
        "ServeOptions.worker_command (or worker_entry) is required: solves "
        "run in supervised worker subprocesses");
  }
  impl_->listen_fd = listen_unix(impl_->opts.socket_path, /*backlog=*/64);
  // Worker subprocesses must not inherit the listening socket: a worker
  // holding a copy would keep the socket alive past the parent's drain.
  ::fcntl(impl_->listen_fd.get(), F_SETFD, FD_CLOEXEC);
}

int Server::run() {
  Impl& im = *impl_;
  const int nworkers = im.opts.workers < 1 ? 1 : im.opts.workers;
  im.live_dispatchers.store(nworkers, std::memory_order_release);
  for (int i = 0; i < nworkers; ++i) {
    im.dispatchers.emplace_back([&im, i] { im.dispatch_loop(i); });
  }

  while (!im.draining()) {
    struct pollfd pfd;
    pfd.fd = im.listen_fd.get();
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int rc = ::poll(&pfd, 1, 200);
    if (rc < 0) {
      if (errno == EINTR) continue;  // drain signal; loop re-checks
      break;
    }
    if (rc == 0 || (pfd.revents & POLLIN) == 0) continue;
    const int cfd = ::accept(im.listen_fd.get(), nullptr, nullptr);
    if (cfd < 0) continue;
    ::fcntl(cfd, F_SETFD, FD_CLOEXEC);  // not for worker subprocesses

    std::lock_guard<std::mutex> lock(im.threads_mu);
    im.reap_finished_conns_locked();
    if (static_cast<int>(im.conn_threads.size()) >= im.opts.max_connections) {
      // Connection cap: shed typed instead of spawning reader thread
      // N+1. The Connection destructor closes the fd after the reject.
      Connection shed{Fd(cfd)};
      im.bump([](ServerStats& s) { ++s.rejected_overload; });
      im.send_reject(shed, 0, RejectCode::kOverloaded, 100,
                     "connection limit (" +
                         std::to_string(im.opts.max_connections) +
                         ") reached; retry after the hint");
      continue;
    }
    const std::uint64_t cid = im.next_conn_id++;
    auto conn = std::make_shared<Connection>(Fd(cfd));
    im.conn_threads.emplace(cid, std::thread([&im, conn, cid] {
                              im.reader_loop(conn);
                              std::lock_guard<std::mutex> l(im.threads_mu);
                              im.finished_conns.push_back(cid);
                            }));
  }

  // Drain: stop listening, forward the signal to every worker subprocess
  // (in-flight solves observe it and checkpoint), close the ring
  // (dispatchers shed what is queued, typed), then collect farewells.
  im.listen_fd.reset();
  {
    std::lock_guard<std::mutex> lock(im.sup_mu);
    for (WorkerSupervisor* sup : im.supervisors) sup->signal_drain();
  }
  im.ring.close();
  for (auto& th : im.dispatchers) th.join();
  // Anything still queued (possible only when every slot degraded early):
  // shed typed rather than drop silently.
  while (auto leftover = im.ring.try_pop()) {
    im.bump([](ServerStats& s) { ++s.rejected_shutdown; });
    im.send_reject(*leftover->conn, leftover->req.request_id,
                   RejectCode::kShuttingDown, 0,
                   "server is draining; request not admitted");
  }
  {
    // Move the readers out, THEN join without the lock: a reader's last act
    // is to take threads_mu and announce completion, so joining while
    // holding it deadlocks against any reader between its loop returning
    // and that announcement.
    std::unordered_map<std::uint64_t, std::thread> readers;
    {
      std::lock_guard<std::mutex> lock(im.threads_mu);
      readers.swap(im.conn_threads);
      im.finished_conns.clear();
    }
    for (auto& kv : readers) kv.second.join();
  }
  ::unlink(im.opts.socket_path.c_str());

  std::lock_guard<std::mutex> lock(im.stats_mu);
  if (im.io_failure) return 7;
  return im.stats_snapshot.drain_checkpointed > 0 ? 6 : 0;
}

ServerStats Server::stats() const {
  Impl& im = *impl_;
  ServerStats out;
  {
    std::lock_guard<std::mutex> lock(im.stats_mu);
    out = im.stats_snapshot;
  }
  out.quarantined = im.quarantine.total_quarantined();
  out.faults = im.faults.counts();
  out.crash_faults = im.crash_faults.counts();
  return out;
}

}  // namespace dopf::serve
