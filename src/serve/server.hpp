#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/cancel.hpp"
#include "core/solve_session.hpp"
#include "runtime/durable.hpp"
#include "serve/cache.hpp"
#include "serve/fault.hpp"

namespace dopf::serve {

struct ServeOptions {
  std::string socket_path;
  /// Solve worker threads consuming the request ring.
  int workers = 2;
  /// Bounded request-ring depth: admitted-but-unstarted requests. A full
  /// ring sheds with kOverloaded (never blocks the connection readers).
  std::size_t queue_depth = 16;
  /// Resident-memory budget for the model cache (estimated bytes).
  std::size_t cache_budget_bytes = 256u << 20;
  /// Directory for drain checkpoints of in-flight solves; empty disables
  /// checkpointing (drained work is shed with kShuttingDown instead).
  std::string checkpoint_dir;
  /// Deterministic transport fault schedule (tests).
  ServeFaultPlan faults;
  /// Durability options for drain checkpoints.
  dopf::runtime::DurableOptions durable;
  /// External drain token; flipped by SIGTERM/SIGINT (see
  /// runtime/signals.hpp). Required.
  dopf::core::CancelToken* drain = nullptr;
};

struct ServerStats {
  std::uint64_t admitted = 0;
  std::uint64_t solved = 0;
  std::uint64_t rejected_overload = 0;
  std::uint64_t rejected_deadline = 0;
  std::uint64_t rejected_preflight = 0;
  std::uint64_t rejected_bad_request = 0;
  std::uint64_t rejected_wire = 0;
  std::uint64_t rejected_shutdown = 0;
  std::uint64_t drain_checkpointed = 0;
  std::uint64_t pings = 0;
  /// Aggregated session reuse counters across all request solves (same
  /// field vocabulary as dopf_solve --json "session").
  dopf::core::SessionStats session;
  /// Aggregated durable-I/O stats from drain checkpoint writes/reads.
  dopf::runtime::IoStats io;
  ModelCache::Stats cache;
  ServeFaultInjector::Counts faults;
};

/// The long-lived solve server: admission control (preflight), a bounded
/// MPSC request ring, worker sessions coalescing requests onto cached
/// SolveModel/ScenarioBinding pairs, per-request deadlines, transport
/// fault injection, and graceful drain. See DESIGN.md §10.
class Server {
 public:
  explicit Server(ServeOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen on the socket. Throws WireError on failure.
  void start();

  /// Serve until the drain token fires, then drain: stop admitting, shed
  /// queued-but-unstarted work (kShuttingDown), let in-flight solves
  /// finish or checkpoint durably (kDrained), join everything. Returns the
  /// process exit code: 0 clean drain, 6 drained with checkpoints written,
  /// 7 durable I/O failure during drain.
  int run();

  ServerStats stats() const;

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace dopf::serve
