#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/cancel.hpp"
#include "core/solve_session.hpp"
#include "runtime/durable.hpp"
#include "serve/cache.hpp"
#include "serve/fault.hpp"
#include "serve/supervisor.hpp"

namespace dopf::serve {

struct ServeOptions {
  std::string socket_path;
  /// Worker subprocess slots: each is one supervised solve subprocess
  /// driven by one dispatcher thread (DESIGN.md §10).
  int workers = 2;
  /// Bounded request-ring depth: admitted-but-unstarted requests. A full
  /// ring sheds with kOverloaded (never blocks the connection readers).
  std::size_t queue_depth = 16;
  /// Concurrent client connections cap: the accept loop sheds connection
  /// number N+1 with a typed kOverloaded reject instead of spawning
  /// unbounded reader threads.
  int max_connections = 64;
  /// Resident-memory budget for each worker's model cache (estimated
  /// bytes). Per subprocess — workers do not share cached models.
  std::size_t cache_budget_bytes = 256u << 20;
  /// Directory for drain checkpoints of in-flight solves; empty disables
  /// checkpointing (drained work is shed with kShuttingDown instead).
  std::string checkpoint_dir;
  /// Deterministic transport fault schedule (tests). Applied in the PARENT
  /// on every outgoing client frame — worker replies are relayed through
  /// it, so the schedule sees the same frame stream as the in-process
  /// server did.
  ServeFaultPlan faults;
  /// Deterministic worker-crash schedule (tests), keyed by dispatch
  /// ordinal. The directive travels to the worker as an Op::kCrashArm
  /// frame; the crash itself happens in the worker subprocess.
  CrashFaultPlan crash_faults;
  /// Durability options for drain checkpoints (forwarded to workers via
  /// worker_command in --worker mode, or via worker_entry's closure).
  dopf::runtime::DurableOptions durable;
  /// argv prefix used to exec one worker subprocess; the supervisor
  /// appends "--worker-fd N". Typically {"/proc/self/exe", "--worker",
  /// <config flags>}. Required unless worker_entry is set.
  std::vector<std::string> worker_command;
  /// Test seam: run this in the forked child instead of exec'ing
  /// worker_command.
  std::function<int(int fd)> worker_entry;
  /// Worker restarts allowed per slot before the slot degrades permanently
  /// (the server keeps serving on the remaining slots; with zero slots
  /// left it sheds everything typed, it never exits on a worker crash).
  int restart_budget = 8;
  /// SIGKILL a worker that takes longer than this to answer one dispatch;
  /// 0 disables (a legitimate solve can take arbitrarily long).
  int hang_timeout_ms = 0;
  /// How long a quarantined content_hash stays rejected before readmission.
  int quarantine_ttl_ms = 60000;
  /// Shutdown/drain grace before escalating a worker to SIGKILL.
  int drain_grace_ms = 10000;
  /// Seed for the per-slot restart backoff jitter.
  std::uint64_t supervisor_seed = 1;
  /// External drain token; flipped by SIGTERM/SIGINT (see
  /// runtime/signals.hpp). Required.
  dopf::core::CancelToken* drain = nullptr;
};

struct ServerStats {
  std::uint64_t admitted = 0;
  std::uint64_t solved = 0;
  std::uint64_t rejected_overload = 0;
  std::uint64_t rejected_deadline = 0;
  std::uint64_t rejected_preflight = 0;
  std::uint64_t rejected_bad_request = 0;
  std::uint64_t rejected_wire = 0;
  std::uint64_t rejected_shutdown = 0;
  std::uint64_t rejected_quarantined = 0;
  /// Requests shed typed because every worker slot degraded.
  std::uint64_t rejected_degraded = 0;
  std::uint64_t drain_checkpointed = 0;
  std::uint64_t pings = 0;
  /// Worker supervision counters.
  std::uint64_t worker_crashes = 0;   ///< exchanges ended by a worker death
  std::uint64_t worker_restarts = 0;  ///< respawns after the initial spawn
  std::uint64_t workers_degraded = 0; ///< slots whose restart budget ran out
  std::uint64_t requeued = 0;         ///< crash victims re-dispatched
  std::uint64_t quarantined = 0;      ///< content hashes ever quarantined
  /// Aggregated session reuse counters across all worker subprocesses
  /// (same field vocabulary as dopf_solve --json "session"), collected
  /// from each worker's farewell stats frame.
  dopf::core::SessionStats session;
  /// Aggregated durable-I/O stats from worker drain checkpoint writes.
  dopf::runtime::IoStats io;
  /// Aggregated across worker subprocesses (each has its own cache).
  ModelCache::Stats cache;
  ServeFaultInjector::Counts faults;
  CrashFaultInjector::Counts crash_faults;
};

/// The long-lived solve server: admission control (preflight), a bounded
/// MPSC request ring, dispatcher threads feeding supervised worker
/// SUBPROCESSES over socketpairs (crash isolation: a segfaulting solve
/// never takes down the server), per-request deadlines, transport and
/// crash fault injection, poison-request quarantine, and graceful drain.
/// See DESIGN.md §10.
class Server {
 public:
  explicit Server(ServeOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen on the socket. Throws WireError on failure (including
  /// a missing worker_command/worker_entry).
  void start();

  /// Serve until the drain token fires, then drain: stop admitting,
  /// forward SIGTERM to the workers (in-flight solves checkpoint durably,
  /// kDrained), shed queued-but-unstarted work (kShuttingDown), collect
  /// worker farewell stats, join everything. Returns the process exit
  /// code: 0 clean drain, 6 drained with checkpoints written, 7 durable
  /// I/O failure in a worker.
  int run();

  ServerStats stats() const;

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace dopf::serve
