#include "opf/solution.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace dopf::opf {

using network::Phase;

namespace {
double at(std::span<const double> x, int idx) {
  if (idx < 0) {
    throw std::out_of_range("SolutionView: component has no such phase");
  }
  return x[idx];
}
}  // namespace

SolutionView::SolutionView(const dopf::network::Network& net,
                           const OpfModel& model, std::span<const double> x)
    : net_(&net), model_(&model), x_(x) {
  if (x.size() != model.num_vars()) {
    throw std::invalid_argument("SolutionView: x size != model variables");
  }
}

double SolutionView::gen_p(int gen, Phase p) const {
  return at(x_, model_->vars.gen_p(gen, p));
}
double SolutionView::gen_q(int gen, Phase p) const {
  return at(x_, model_->vars.gen_q(gen, p));
}

double SolutionView::gen_p_total(int gen) const {
  double total = 0.0;
  for (Phase p : net_->generator(gen).phases.phases()) total += gen_p(gen, p);
  return total;
}

double SolutionView::total_generation() const {
  double total = 0.0;
  for (const auto& g : net_->generators()) total += gen_p_total(g.id);
  return total;
}

double SolutionView::bus_w(int bus, Phase p) const {
  return at(x_, model_->vars.bus_w(bus, p));
}
double SolutionView::bus_v(int bus, Phase p) const {
  return std::sqrt(std::max(0.0, bus_w(bus, p)));
}

double SolutionView::min_voltage() const {
  double v = 1e30;
  for (const auto& b : net_->buses()) {
    for (Phase p : b.phases.phases()) v = std::min(v, bus_v(b.id, p));
  }
  return v;
}

double SolutionView::max_voltage() const {
  double v = 0.0;
  for (const auto& b : net_->buses()) {
    for (Phase p : b.phases.phases()) v = std::max(v, bus_v(b.id, p));
  }
  return v;
}

double SolutionView::load_p(int load, Phase p) const {
  return at(x_, model_->vars.load_pd(load, p));
}
double SolutionView::load_q(int load, Phase p) const {
  return at(x_, model_->vars.load_qd(load, p));
}

double SolutionView::total_load() const {
  double total = 0.0;
  for (const auto& l : net_->loads()) {
    for (Phase p : l.phases.phases()) total += load_p(l.id, p);
  }
  return total;
}

double SolutionView::flow_p_from(int line, Phase p) const {
  return at(x_, model_->vars.flow_pf(line, p));
}
double SolutionView::flow_q_from(int line, Phase p) const {
  return at(x_, model_->vars.flow_qf(line, p));
}
double SolutionView::flow_p_to(int line, Phase p) const {
  return at(x_, model_->vars.flow_pt(line, p));
}
double SolutionView::flow_q_to(int line, Phase p) const {
  return at(x_, model_->vars.flow_qt(line, p));
}

double SolutionView::max_loading(int line) const {
  double worst = 0.0;
  for (Phase p : net_->line(line).phases.phases()) {
    worst = std::max(worst, std::abs(flow_p_from(line, p)));
    worst = std::max(worst, std::abs(flow_p_to(line, p)));
  }
  return worst;
}

void SolutionView::write_report(std::ostream& out) const {
  out << "objective: " << objective() << "  (total load " << total_load()
      << ", total generation " << total_generation() << ")\n";
  out << "voltage band: [" << min_voltage() << ", " << max_voltage()
      << "] pu\n";
  out << "feasibility: max |Ax-b| = " << equation_residual()
      << ", bound violation = " << bound_violation() << "\n";
  out << "\ndispatch:\n";
  for (const auto& g : net_->generators()) {
    out << "  " << g.name << " @" << net_->bus(g.bus).name << ": P = "
        << gen_p_total(g.id) << " (";
    bool first = true;
    for (Phase p : g.phases.phases()) {
      out << (first ? "" : ", ") << "abc"[network::index(p)] << "="
          << gen_p(g.id, p);
      first = false;
    }
    out << ")\n";
  }
  out << "\nmost loaded lines:\n";
  // Top five by loading.
  std::vector<std::pair<double, int>> loads;
  for (const auto& l : net_->lines()) {
    loads.push_back({max_loading(l.id), l.id});
  }
  std::sort(loads.rbegin(), loads.rend());
  for (std::size_t k = 0; k < std::min<std::size_t>(5, loads.size()); ++k) {
    const auto& line = net_->line(loads[k].second);
    out << "  " << line.name << " (" << net_->bus(line.from_bus).name
        << " -> " << net_->bus(line.to_bus).name
        << "): max |p| = " << loads[k].first << "\n";
  }
}

std::string SolutionView::report() const {
  std::ostringstream os;
  write_report(os);
  return os.str();
}

}  // namespace dopf::opf
