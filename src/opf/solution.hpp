#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "network/network.hpp"
#include "opf/model.hpp"

namespace dopf::opf {

/// Read-only structured view over a solved global variable vector x of (7):
/// maps raw entries back to engineering quantities (dispatch, voltages,
/// flows, load consumption). Non-owning; the network, model and solution
/// must outlive the view.
class SolutionView {
 public:
  SolutionView(const dopf::network::Network& net, const OpfModel& model,
               std::span<const double> x);

  // --- Generators.
  double gen_p(int gen, dopf::network::Phase p) const;
  double gen_q(int gen, dopf::network::Phase p) const;
  /// Real power summed over the generator's phases.
  double gen_p_total(int gen) const;
  /// Sum of all generation (the objective when every cost is 1).
  double total_generation() const;

  // --- Buses.
  /// Squared voltage magnitude w.
  double bus_w(int bus, dopf::network::Phase p) const;
  /// Voltage magnitude |V| = sqrt(w).
  double bus_v(int bus, dopf::network::Phase p) const;
  /// Lowest / highest |V| over all buses and phases.
  double min_voltage() const;
  double max_voltage() const;

  // --- Loads.
  double load_p(int load, dopf::network::Phase p) const;  ///< consumption p^d
  double load_q(int load, dopf::network::Phase p) const;
  double total_load() const;

  // --- Line flows.
  double flow_p_from(int line, dopf::network::Phase p) const;
  double flow_q_from(int line, dopf::network::Phase p) const;
  double flow_p_to(int line, dopf::network::Phase p) const;
  double flow_q_to(int line, dopf::network::Phase p) const;
  /// max |p| over the line's phases and both ends (loading indicator).
  double max_loading(int line) const;

  // --- Solution quality.
  double objective() const { return model_->objective(x_); }
  double equation_residual() const { return model_->equation_residual(x_); }
  double bound_violation() const { return model_->bound_violation(x_); }

  /// Human-readable dispatch + voltage-profile report.
  void write_report(std::ostream& out) const;
  std::string report() const;

 private:
  const dopf::network::Network* net_;
  const OpfModel* model_;
  std::span<const double> x_;
};

}  // namespace dopf::opf
