#pragma once

#include <span>
#include <string>

#include "network/network.hpp"
#include "opf/solution.hpp"

namespace dopf::opf {

/// Physics-level validation of a solved OPF point, computed *directly from
/// the network data* — deliberately independent of the OpfModel equation
/// builder, so a bug in the builder cannot hide in its own residuals.
struct ValidationReport {
  double max_p_balance = 0.0;      ///< worst real power imbalance (3a)
  double max_q_balance = 0.0;      ///< worst reactive imbalance (3b)
  double max_flow_consistency = 0.0;  ///< worst (5a)/(5b) violation
  double max_voltage_equation = 0.0;  ///< worst (5c) violation
  double max_load_model = 0.0;     ///< worst ZIP relation (4a)/(4b)
  double max_bound_violation = 0.0;
  /// Name of the worst offender (bus/line/load), for diagnostics.
  std::string worst_site;

  double worst() const;
  /// Name of the dominant check category ("P-balance", "flow", ...), so a
  /// failure diagnostic can say *what kind* of physics is violated, not
  /// just where.
  std::string worst_check() const;
  bool ok(double tol) const { return worst() <= tol; }
  std::string to_string() const;
};

/// Validate `x` against the network's physics. Every check re-derives its
/// equation from `net` alone.
ValidationReport validate_solution(const dopf::network::Network& net,
                                   const OpfModel& model,
                                   std::span<const double> x);

}  // namespace dopf::opf
