#include "opf/decompose.hpp"

#include <algorithm>
#include <numeric>

#include "linalg/rref.hpp"

namespace dopf::opf {

using network::Network;

ConditioningError::ConditioningError(std::string component,
                                     std::size_t pivot_index,
                                     double pivot_value)
    : ModelError("component '" + component +
                 "' is numerically rank-deficient: Gram pivot " +
                 std::to_string(pivot_value) + " at row " +
                 std::to_string(pivot_index) +
                 " (near-duplicate constraint rows survived the RREF "
                 "tolerance; enable preflight remediation or fix the input)"),
      component_(std::move(component)),
      pivot_index_(pivot_index),
      pivot_value_(pivot_value) {}

std::size_t DistributedProblem::total_local_vars() const {
  return std::accumulate(components.begin(), components.end(), std::size_t{0},
                         [](std::size_t acc, const Component& comp) {
                           return acc + comp.num_vars();
                         });
}

std::size_t DistributedProblem::total_local_rows() const {
  return std::accumulate(components.begin(), components.end(), std::size_t{0},
                         [](std::size_t acc, const Component& comp) {
                           return acc + comp.num_rows();
                         });
}

namespace {

/// Assemble one component from its equation list: collect the local variable
/// set in order of first appearance, build the dense A_s / b_s, and
/// optionally row-reduce to full row rank.
Component assemble(std::string name,
                   const std::vector<const Equation*>& equations,
                   std::size_t num_global, const DecomposeOptions& options,
                   std::vector<int>& scratch_local_of_global) {
  Component comp;
  comp.name = std::move(name);

  for (const Equation* eq : equations) {
    for (const auto& [var, coeff] : eq->terms) {
      (void)coeff;
      if (scratch_local_of_global[var] < 0) {
        scratch_local_of_global[var] = static_cast<int>(comp.global.size());
        comp.global.push_back(var);
      }
    }
  }

  dopf::linalg::Matrix a(equations.size(), comp.global.size());
  std::vector<double> b(equations.size());
  for (std::size_t r = 0; r < equations.size(); ++r) {
    for (const auto& [var, coeff] : equations[r]->terms) {
      a(r, scratch_local_of_global[var]) += coeff;
    }
    b[r] = equations[r]->rhs;
  }
  comp.rows_before_reduction = equations.size();

  // Reset the scratch map for the next component.
  for (int g : comp.global) scratch_local_of_global[g] = -1;
  (void)num_global;

  if (options.equilibrate_rows) {
    dopf::linalg::equilibrate_rows(&a, &b);
  }

  if (options.row_reduce) {
    dopf::linalg::RrefResult red =
        dopf::linalg::row_reduce(a, std::move(b), options.rref_tol);
    if (red.inconsistent) {
      throw ModelError("component '" + comp.name +
                       "' has inconsistent equality constraints");
    }
    comp.a = std::move(red.a);
    comp.b = std::move(red.b);
  } else {
    comp.a = std::move(a);
    comp.b = std::move(b);
  }
  return comp;
}

}  // namespace

DistributedProblem decompose(const Network& net, const OpfModel& model,
                             const DecomposeOptions& options) {
  DistributedProblem problem;
  problem.num_vars = model.num_vars();
  problem.c = model.c;
  problem.lb = model.lb;
  problem.ub = model.ub;
  problem.x0 = model.x0;

  // Group equation pointers by owning component. A leaf bus (degree 1,
  // excluding the feeder head bus 0) is merged into its incident line's
  // component, per Sec. V-A.
  std::vector<std::vector<const Equation*>> bus_eqs(net.num_buses());
  std::vector<std::vector<const Equation*>> line_eqs(net.num_lines());
  for (const Equation& eq : model.equations) {
    if (eq.owner == Owner::kBus) {
      bus_eqs[eq.owner_id].push_back(&eq);
    } else {
      line_eqs[eq.owner_id].push_back(&eq);
    }
  }

  std::vector<int> merged_into_line(net.num_buses(), -1);
  if (options.merge_leaves) {
    for (const auto& bus : net.buses()) {
      if (bus.id == 0) continue;  // keep the feeder head separate
      const auto incident = net.lines_at(bus.id);
      if (incident.size() != 1) continue;
      merged_into_line[bus.id] = incident[0].line;
    }
  }

  std::vector<int> scratch(model.num_vars(), -1);

  for (const auto& bus : net.buses()) {
    if (merged_into_line[bus.id] >= 0) continue;
    problem.components.push_back(assemble("bus:" + bus.name, bus_eqs[bus.id],
                                          model.num_vars(), options, scratch));
  }
  for (const auto& line : net.lines()) {
    std::vector<const Equation*> eqs = line_eqs[line.id];
    std::string name = "line:" + line.name;
    for (int bus : {line.from_bus, line.to_bus}) {
      if (merged_into_line[bus] == line.id) {
        eqs.insert(eqs.end(), bus_eqs[bus].begin(), bus_eqs[bus].end());
        name = "leaf:" + net.bus(bus).name + "+" + line.name;
      }
    }
    problem.components.push_back(
        assemble(std::move(name), eqs, model.num_vars(), options, scratch));
  }

  // Consensus copy counts (the |I_si| sums of (13)).
  problem.copy_count.assign(model.num_vars(), 0);
  for (const Component& comp : problem.components) {
    for (int g : comp.global) ++problem.copy_count[g];
  }
  for (std::size_t i = 0; i < problem.copy_count.size(); ++i) {
    if (problem.copy_count[i] == 0) {
      throw ModelError("variable " +
                       model.vars.name(net, static_cast<int>(i)) +
                       " is covered by no component");
    }
  }
  return problem;
}

DistributedProblem decompose(const Network& net,
                             const DecomposeOptions& options) {
  const OpfModel model = build_model(net);
  return decompose(net, model, options);
}

}  // namespace dopf::opf
