#pragma once

#include <array>
#include <string>
#include <vector>

#include "network/network.hpp"

namespace dopf::opf {

/// Kind of a global OPF variable (the blocks of x in (7)).
enum class VarKind : std::uint8_t {
  kGenP,    ///< p^g_{k,phi}
  kGenQ,    ///< q^g_{k,phi}
  kBusW,    ///< w_{i,phi} (squared voltage magnitude)
  kLoadPb,  ///< p^b_{l,phi} (power withdrawn at the bus)
  kLoadQb,  ///< q^b_{l,phi}
  kLoadPd,  ///< p^d_{l,phi} (power consumed by the load)
  kLoadQd,  ///< q^d_{l,phi}
  kFlowPf,  ///< p_{eij,phi} (from-side real flow)
  kFlowQf,  ///< q_{eij,phi}
  kFlowPt,  ///< p_{eji,phi} (to-side real flow)
  kFlowQt,  ///< q_{eji,phi}
};

const char* to_string(VarKind kind);

/// Dense numbering of the global variable vector x of (7), in the paper's
/// block order: generators, buses, loads, lines; within each component, one
/// entry per present phase.
class VariableIndex {
 public:
  explicit VariableIndex(const dopf::network::Network& net);

  std::size_t size() const noexcept { return kinds_.size(); }

  // Lookups return -1 when the component does not carry the phase.
  int gen_p(int gen, dopf::network::Phase p) const {
    return gen_p_[gen][index(p)];
  }
  int gen_q(int gen, dopf::network::Phase p) const {
    return gen_q_[gen][index(p)];
  }
  int bus_w(int bus, dopf::network::Phase p) const {
    return bus_w_[bus][index(p)];
  }
  int load_pb(int load, dopf::network::Phase p) const {
    return load_pb_[load][index(p)];
  }
  int load_qb(int load, dopf::network::Phase p) const {
    return load_qb_[load][index(p)];
  }
  int load_pd(int load, dopf::network::Phase p) const {
    return load_pd_[load][index(p)];
  }
  int load_qd(int load, dopf::network::Phase p) const {
    return load_qd_[load][index(p)];
  }
  int flow_pf(int line, dopf::network::Phase p) const {
    return flow_pf_[line][index(p)];
  }
  int flow_qf(int line, dopf::network::Phase p) const {
    return flow_qf_[line][index(p)];
  }
  int flow_pt(int line, dopf::network::Phase p) const {
    return flow_pt_[line][index(p)];
  }
  int flow_qt(int line, dopf::network::Phase p) const {
    return flow_qt_[line][index(p)];
  }

  VarKind kind(int var) const { return kinds_.at(var); }
  /// Owning component id (generator/bus/load/line id depending on kind).
  int component(int var) const { return comps_.at(var); }
  dopf::network::Phase phase(int var) const { return phases_.at(var); }

  /// Debug name, e.g. "w[632,a]" or "pf[650-632,c]".
  std::string name(const dopf::network::Network& net, int var) const;

 private:
  using Slot = std::array<int, 3>;
  static std::size_t index(dopf::network::Phase p) {
    return dopf::network::index(p);
  }

  int add(VarKind kind, int comp, dopf::network::Phase p);

  std::vector<Slot> gen_p_, gen_q_, bus_w_;
  std::vector<Slot> load_pb_, load_qb_, load_pd_, load_qd_;
  std::vector<Slot> flow_pf_, flow_qf_, flow_pt_, flow_qt_;

  std::vector<VarKind> kinds_;
  std::vector<int> comps_;
  std::vector<dopf::network::Phase> phases_;
};

}  // namespace dopf::opf
