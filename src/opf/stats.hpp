#pragma once

#include <cstddef>
#include <string>

#include "opf/decompose.hpp"
#include "opf/model.hpp"

namespace dopf::opf {

/// Size of the centralized A of (7) — the paper's Table II.
struct ModelSizes {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::size_t nonzeros = 0;
};
ModelSizes model_sizes(const OpfModel& model);

/// Component-graph counts — the paper's Table III.
struct ComponentCounts {
  std::size_t nodes = 0;   ///< graph nodes (buses)
  std::size_t lines = 0;   ///< graph edges (branches + transformers)
  std::size_t leaves = 0;  ///< degree-1 non-root buses (merged with lines)
  std::size_t S = 0;       ///< number of components = nodes + lines - leaves
};
ComponentCounts component_counts(const dopf::network::Network& net,
                                 const DistributedProblem& problem);

/// Distribution summary of the m_s / n_s subproblem sizes — Table IV.
struct SizeDistribution {
  std::size_t min = 0;
  std::size_t max = 0;
  double mean = 0.0;
  double stdev = 0.0;
  std::size_t sum = 0;
};
struct SubproblemStats {
  SizeDistribution rows;  ///< m_s across components
  SizeDistribution cols;  ///< n_s across components
};
SubproblemStats subproblem_stats(const DistributedProblem& problem);

/// Fixed-width text renderings used by the bench harness (and tests).
std::string format_table2_row(const std::string& instance,
                              const ModelSizes& sizes);
std::string format_table3(const std::string& instance,
                          const ComponentCounts& counts);
std::string format_table4(const std::string& instance,
                          const SubproblemStats& stats);

}  // namespace dopf::opf
