#include "opf/validate.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace dopf::opf {

using network::Connection;
using network::Line;
using network::Network;
using network::Phase;

namespace {

constexpr double kSqrt3 = 1.7320508075688772;

struct Tracker {
  double* slot;
  ValidationReport* report;
  double current_worst = 0.0;

  void update(double value, const std::string& site) {
    const double v = std::abs(value);
    if (v > report->worst()) report->worst_site = site;
    *slot = std::max(*slot, v);
  }
};

}  // namespace

double ValidationReport::worst() const {
  return std::max({max_p_balance, max_q_balance, max_flow_consistency,
                   max_voltage_equation, max_load_model,
                   max_bound_violation});
}

std::string ValidationReport::worst_check() const {
  const struct {
    double value;
    const char* name;
  } checks[] = {{max_p_balance, "P-balance"},
                {max_q_balance, "Q-balance"},
                {max_flow_consistency, "flow"},
                {max_voltage_equation, "voltage"},
                {max_load_model, "load-model"},
                {max_bound_violation, "bounds"}};
  const char* name = checks[0].name;
  double best = checks[0].value;
  for (const auto& c : checks) {
    if (c.value > best) {
      best = c.value;
      name = c.name;
    }
  }
  return name;
}

std::string ValidationReport::to_string() const {
  std::ostringstream os;
  os << "P-balance " << max_p_balance << ", Q-balance " << max_q_balance
     << ", flow " << max_flow_consistency << ", voltage "
     << max_voltage_equation << ", load-model " << max_load_model
     << ", bounds " << max_bound_violation << " (worst at '" << worst_site
     << "')";
  return os.str();
}

ValidationReport validate_solution(const Network& net, const OpfModel& model,
                                   std::span<const double> x) {
  const SolutionView view(net, model, x);
  ValidationReport report;

  // ---- Power balance (3): recomputed by walking the network adjacency.
  for (const auto& bus : net.buses()) {
    for (Phase p : bus.phases.phases()) {
      double sum_p = 0.0, sum_q = 0.0;
      for (const auto& inc : net.lines_at(bus.id)) {
        const Line& line = net.line(inc.line);
        if (!line.phases.has(p)) continue;
        sum_p += inc.from_side ? view.flow_p_from(line.id, p)
                               : view.flow_p_to(line.id, p);
        sum_q += inc.from_side ? view.flow_q_from(line.id, p)
                               : view.flow_q_to(line.id, p);
      }
      for (int l : net.loads_at(bus.id)) {
        if (!net.load(l).phases.has(p)) continue;
        sum_p += x[model.vars.load_pb(l, p)];
        sum_q += x[model.vars.load_qb(l, p)];
      }
      const double w = view.bus_w(bus.id, p);
      sum_p += bus.g_shunt[p] * w;
      sum_q -= bus.b_shunt[p] * w;
      for (int g : net.generators_at(bus.id)) {
        if (!net.generator(g).phases.has(p)) continue;
        sum_p -= view.gen_p(g, p);
        sum_q -= view.gen_q(g, p);
      }
      Tracker{&report.max_p_balance, &report}.update(sum_p, bus.name);
      Tracker{&report.max_q_balance, &report}.update(sum_q, bus.name);
    }
  }

  // ---- Flow consistency (5a)/(5b) and voltage equation (5c).
  for (const auto& line : net.lines()) {
    for (Phase p : line.phases.phases()) {
      const double wi = view.bus_w(line.from_bus, p);
      const double wj = view.bus_w(line.to_bus, p);
      const double r5a = view.flow_p_from(line.id, p) +
                         view.flow_p_to(line.id, p) -
                         line.g_shunt_from[p] * wi - line.g_shunt_to[p] * wj;
      const double r5b = view.flow_q_from(line.id, p) +
                         view.flow_q_to(line.id, p) +
                         line.b_shunt_from[p] * wi + line.b_shunt_to[p] * wj;
      Tracker{&report.max_flow_consistency, &report}.update(r5a, line.name);
      Tracker{&report.max_flow_consistency, &report}.update(r5b, line.name);

      // (5c): w_i = tau w_j - sum_psi Mp (p - g w) - sum_psi Mq (q + b w).
      double rhs = line.tap_ratio[p] * wj;
      const std::size_t i = network::index(p);
      for (Phase psi : line.phases.phases()) {
        const std::size_t j = network::index(psi);
        double mp, mq;
        if (i == j) {
          mp = -2.0 * line.r(i, j);
          mq = -2.0 * line.x(i, j);
        } else {
          const double sign = (j == (i + 1) % 3) ? -1.0 : 1.0;
          mp = line.r(i, j) + sign * kSqrt3 * line.x(i, j);
          mq = line.x(i, j) - sign * kSqrt3 * line.r(i, j);
        }
        const double wpsi = view.bus_w(line.from_bus, psi);
        rhs -= mp * (view.flow_p_from(line.id, psi) -
                     line.g_shunt_from[psi] * wpsi);
        rhs -= mq * (view.flow_q_from(line.id, psi) +
                     line.b_shunt_from[psi] * wpsi);
      }
      Tracker{&report.max_voltage_equation, &report}.update(wi - rhs,
                                                            line.name);
    }
  }

  // ---- Voltage-dependent load model (4a)/(4b) and connection equations.
  for (const auto& load : net.loads()) {
    const double kappa = load.connection == Connection::kDelta ? 3.0 : 1.0;
    for (Phase p : load.phases.phases()) {
      const double w_hat = kappa * view.bus_w(load.bus, p);
      const double pd_expected =
          0.5 * load.p_ref[p] * load.alpha[p] * (w_hat - 1.0) + load.p_ref[p];
      const double qd_expected =
          0.5 * load.q_ref[p] * load.beta[p] * (w_hat - 1.0) + load.q_ref[p];
      Tracker{&report.max_load_model, &report}.update(
          view.load_p(load.id, p) - pd_expected, load.name);
      Tracker{&report.max_load_model, &report}.update(
          view.load_q(load.id, p) - qd_expected, load.name);
      if (load.connection == Connection::kWye) {
        Tracker{&report.max_load_model, &report}.update(
            x[model.vars.load_pb(load.id, p)] - view.load_p(load.id, p),
            load.name);
      }
    }
    if (load.connection == Connection::kDelta) {
      // Aggregate delta balance (4f); the per-phase coupling rows are
      // linear combinations checked implicitly via the builder tests.
      double dp = 0.0, dq = 0.0;
      for (Phase p : load.phases.phases()) {
        dp += x[model.vars.load_pb(load.id, p)] - view.load_p(load.id, p);
        dq += x[model.vars.load_qb(load.id, p)] - view.load_q(load.id, p);
      }
      Tracker{&report.max_load_model, &report}.update(dp, load.name);
      Tracker{&report.max_load_model, &report}.update(dq, load.name);
    }
  }

  // ---- Bounds straight from the component data.
  for (const auto& g : net.generators()) {
    for (Phase p : g.phases.phases()) {
      const double pg = view.gen_p(g.id, p);
      const double qg = view.gen_q(g.id, p);
      Tracker{&report.max_bound_violation, &report}.update(
          std::max({g.p_min[p] - pg, pg - g.p_max[p], 0.0}), g.name);
      Tracker{&report.max_bound_violation, &report}.update(
          std::max({g.q_min[p] - qg, qg - g.q_max[p], 0.0}), g.name);
    }
  }
  for (const auto& bus : net.buses()) {
    for (Phase p : bus.phases.phases()) {
      const double w = view.bus_w(bus.id, p);
      Tracker{&report.max_bound_violation, &report}.update(
          std::max({bus.w_min[p] - w, w - bus.w_max[p], 0.0}), bus.name);
    }
  }
  return report;
}

}  // namespace dopf::opf
