#pragma once

#include <string>
#include <vector>

#include "network/network.hpp"
#include "opf/variables.hpp"
#include "sparse/csr.hpp"

namespace dopf::opf {

/// Thrown when model construction finds an ill-posed input.
class ModelError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Which component of the paper's decomposition owns an equation.
enum class Owner : std::uint8_t { kBus, kLine };

/// One linear equality  sum(coeff * x[var]) = rhs  of (7b).
struct Equation {
  std::vector<std::pair<int, double>> terms;
  double rhs = 0.0;
  std::string name;
  Owner owner = Owner::kBus;
  int owner_id = -1;

  void add(int var, double coeff) {
    if (coeff != 0.0 && var >= 0) terms.emplace_back(var, coeff);
  }
};

/// The linearized multi-phase OPF of Section II in the abstract LP form (7):
///   min c'x  s.t.  A x = b,  lb <= x <= ub,
/// with every equation tagged by the component (bus or line) that owns it in
/// the component-wise decomposition. `x0` is the paper's initial point
/// (Sec. V-A): 1 for voltages, bound midpoints for doubly-bounded variables,
/// 0 otherwise.
struct OpfModel {
  VariableIndex vars;
  std::vector<Equation> equations;
  std::vector<double> c;
  std::vector<double> lb;
  std::vector<double> ub;
  std::vector<double> x0;

  std::size_t num_vars() const { return c.size(); }
  std::size_t num_equations() const { return equations.size(); }

  /// Assemble the sparse A of (7b) (rows follow `equations` order).
  dopf::sparse::CsrMatrix constraint_matrix() const;
  /// The b of (7b).
  std::vector<double> rhs() const;

  /// c' x.
  double objective(std::span<const double> x) const;

  /// max_i |A x - b|_i, for solution checking.
  double equation_residual(std::span<const double> x) const;
  /// max violation of lb <= x <= ub.
  double bound_violation(std::span<const double> x) const;
};

/// Build the full model (2)-(5) from a validated network.
OpfModel build_model(const dopf::network::Network& net);

}  // namespace dopf::opf
