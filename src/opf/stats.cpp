#include "opf/stats.hpp"

#include <cmath>
#include <limits>
#include <sstream>

namespace dopf::opf {

ModelSizes model_sizes(const OpfModel& model) {
  ModelSizes s;
  s.rows = model.num_equations();
  s.cols = model.num_vars();
  for (const Equation& eq : model.equations) s.nonzeros += eq.terms.size();
  return s;
}

ComponentCounts component_counts(const dopf::network::Network& net,
                                 const DistributedProblem& problem) {
  ComponentCounts c;
  c.nodes = net.num_buses();
  c.lines = net.num_lines();
  for (int leaf : net.leaf_buses()) {
    if (leaf != 0) ++c.leaves;  // the feeder head is never merged
  }
  c.S = problem.num_components();
  return c;
}

namespace {

template <typename Getter>
SizeDistribution distribution(const DistributedProblem& problem, Getter get) {
  SizeDistribution d;
  if (problem.components.empty()) return d;
  d.min = std::numeric_limits<std::size_t>::max();
  double sum = 0.0, sum_sq = 0.0;
  for (const Component& comp : problem.components) {
    const std::size_t v = get(comp);
    d.min = std::min(d.min, v);
    d.max = std::max(d.max, v);
    d.sum += v;
    sum += static_cast<double>(v);
    sum_sq += static_cast<double>(v) * static_cast<double>(v);
  }
  const double n = static_cast<double>(problem.components.size());
  d.mean = sum / n;
  d.stdev = std::sqrt(std::max(0.0, sum_sq / n - d.mean * d.mean));
  return d;
}

}  // namespace

SubproblemStats subproblem_stats(const DistributedProblem& problem) {
  SubproblemStats s;
  s.rows = distribution(problem,
                        [](const Component& c) { return c.num_rows(); });
  s.cols = distribution(problem,
                        [](const Component& c) { return c.num_vars(); });
  return s;
}

std::string format_table2_row(const std::string& instance,
                              const ModelSizes& sizes) {
  std::ostringstream os;
  os << instance << ": A is " << sizes.rows << " x " << sizes.cols << " ("
     << sizes.nonzeros << " nonzeros)";
  return os.str();
}

std::string format_table3(const std::string& instance,
                          const ComponentCounts& counts) {
  std::ostringstream os;
  os << instance << ": nodes=" << counts.nodes << " lines=" << counts.lines
     << " leaves=" << counts.leaves << " S=" << counts.S;
  return os.str();
}

std::string format_table4(const std::string& instance,
                          const SubproblemStats& stats) {
  std::ostringstream os;
  auto row = [&](const char* label, const SizeDistribution& d) {
    os << instance << " " << label << ": min=" << d.min << " max=" << d.max
       << " mean=" << d.mean << " stdev=" << d.stdev << " sum=" << d.sum
       << "\n";
  };
  row("m_s", stats.rows);
  row("n_s", stats.cols);
  return os.str();
}

}  // namespace dopf::opf
