#pragma once

#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "opf/model.hpp"

namespace dopf::opf {

/// Thrown when a component block is numerically unusable: its Gram matrix
/// `A_s A_s^T` is not SPD within tolerance, so the closed-form projector
/// (15b)-(15c) does not exist. Carries component provenance so the failure
/// is actionable at the feeder level instead of surfacing as a NaN (or a
/// bare SingularMatrixError) deep inside the solver precompute.
class ConditioningError : public ModelError {
 public:
  ConditioningError(std::string component, std::size_t pivot_index,
                    double pivot_value);

  const std::string& component() const noexcept { return component_; }
  std::size_t pivot_index() const noexcept { return pivot_index_; }
  double pivot_value() const noexcept { return pivot_value_; }

 private:
  std::string component_;
  std::size_t pivot_index_ = 0;
  double pivot_value_ = 0.0;
};

/// One component subproblem s of the distributed model (9):
/// local feasible set  { x_s : A_s x_s = b_s }  plus the consensus map B_s.
///
/// Because each row of B_s selects exactly one global variable and a
/// component never copies the same global variable twice, B_s is stored as
/// the index vector `global` (local j  <->  global variable global[j]).
struct Component {
  std::string name;
  dopf::linalg::Matrix a;   ///< A_s, full row rank after preprocessing
  std::vector<double> b;    ///< b_s
  std::vector<int> global;  ///< B_s: local index -> global index
  std::size_t rows_before_reduction = 0;

  std::size_t num_rows() const { return a.rows(); }     // m_s
  std::size_t num_vars() const { return global.size(); }  // n_s
};

/// The component-wise distributed OPF (9): global objective/bounds plus the
/// per-component equality blocks. Produced by decompose().
struct DistributedProblem {
  std::size_t num_vars = 0;
  std::vector<double> c;
  std::vector<double> lb;
  std::vector<double> ub;
  std::vector<double> x0;
  std::vector<Component> components;
  /// copy_count[i] = sum_s |I_si| of (13): how many components hold a copy
  /// of global variable i. Always >= 1.
  std::vector<int> copy_count;

  std::size_t num_components() const { return components.size(); }
  /// Total local dimension sum_s n_s (the length of z in (17)).
  std::size_t total_local_vars() const;
  /// Total constraint count sum_s m_s.
  std::size_t total_local_rows() const;
};

struct DecomposeOptions {
  /// Merge each degree-1 bus (except the feeder head, bus 0) with its only
  /// incident line, as in Sec. V-A of the paper.
  bool merge_leaves = true;
  /// Row-reduce each A_s to full row rank (Sec. IV-B). Disabling this is
  /// only useful for the ablation benchmark; the solver requires full row
  /// rank and will throw on rank-deficient components.
  bool row_reduce = true;
  double rref_tol = 1e-9;
  /// Scale every raw constraint row to unit infinity norm before the row
  /// reduction (preflight remediation for mixed-unit feeder data). Exact:
  /// the solution set of each A_s x = b_s is unchanged, but the relative
  /// pivot tolerance and the Gram conditioning both improve. Off by
  /// default so existing runs stay bit-identical.
  bool equilibrate_rows = false;
};

/// Split the model into per-component subproblems. Throws ModelError if a
/// component's equations are inconsistent or some variable would be covered
/// by no component.
DistributedProblem decompose(const dopf::network::Network& net,
                             const OpfModel& model,
                             const DecomposeOptions& options = {});

/// Convenience: build_model + decompose.
DistributedProblem decompose(const dopf::network::Network& net,
                             const DecomposeOptions& options = {});

}  // namespace dopf::opf
