#include "opf/variables.hpp"

namespace dopf::opf {

using network::Network;
using network::Phase;

const char* to_string(VarKind kind) {
  switch (kind) {
    case VarKind::kGenP:
      return "pg";
    case VarKind::kGenQ:
      return "qg";
    case VarKind::kBusW:
      return "w";
    case VarKind::kLoadPb:
      return "pb";
    case VarKind::kLoadQb:
      return "qb";
    case VarKind::kLoadPd:
      return "pd";
    case VarKind::kLoadQd:
      return "qd";
    case VarKind::kFlowPf:
      return "pf";
    case VarKind::kFlowQf:
      return "qf";
    case VarKind::kFlowPt:
      return "pt";
    case VarKind::kFlowQt:
      return "qt";
  }
  return "?";
}

int VariableIndex::add(VarKind kind, int comp, Phase p) {
  const int id = static_cast<int>(kinds_.size());
  kinds_.push_back(kind);
  comps_.push_back(comp);
  phases_.push_back(p);
  return id;
}

VariableIndex::VariableIndex(const Network& net) {
  const Slot empty = {-1, -1, -1};

  gen_p_.assign(net.num_generators(), empty);
  gen_q_.assign(net.num_generators(), empty);
  for (const auto& g : net.generators()) {
    for (Phase p : g.phases.phases()) {
      gen_p_[g.id][index(p)] = add(VarKind::kGenP, g.id, p);
      gen_q_[g.id][index(p)] = add(VarKind::kGenQ, g.id, p);
    }
  }

  bus_w_.assign(net.num_buses(), empty);
  for (const auto& b : net.buses()) {
    for (Phase p : b.phases.phases()) {
      bus_w_[b.id][index(p)] = add(VarKind::kBusW, b.id, p);
    }
  }

  load_pb_.assign(net.num_loads(), empty);
  load_qb_.assign(net.num_loads(), empty);
  load_pd_.assign(net.num_loads(), empty);
  load_qd_.assign(net.num_loads(), empty);
  for (const auto& l : net.loads()) {
    for (Phase p : l.phases.phases()) {
      load_pb_[l.id][index(p)] = add(VarKind::kLoadPb, l.id, p);
      load_qb_[l.id][index(p)] = add(VarKind::kLoadQb, l.id, p);
      load_pd_[l.id][index(p)] = add(VarKind::kLoadPd, l.id, p);
      load_qd_[l.id][index(p)] = add(VarKind::kLoadQd, l.id, p);
    }
  }

  flow_pf_.assign(net.num_lines(), empty);
  flow_qf_.assign(net.num_lines(), empty);
  flow_pt_.assign(net.num_lines(), empty);
  flow_qt_.assign(net.num_lines(), empty);
  for (const auto& l : net.lines()) {
    for (Phase p : l.phases.phases()) {
      flow_pf_[l.id][index(p)] = add(VarKind::kFlowPf, l.id, p);
      flow_qf_[l.id][index(p)] = add(VarKind::kFlowQf, l.id, p);
      flow_pt_[l.id][index(p)] = add(VarKind::kFlowPt, l.id, p);
      flow_qt_[l.id][index(p)] = add(VarKind::kFlowQt, l.id, p);
    }
  }
}

std::string VariableIndex::name(const Network& net, int var) const {
  const VarKind k = kinds_.at(var);
  const int comp = comps_.at(var);
  std::string owner;
  switch (k) {
    case VarKind::kGenP:
    case VarKind::kGenQ:
      owner = net.generator(comp).name;
      break;
    case VarKind::kBusW:
      owner = net.bus(comp).name;
      break;
    case VarKind::kLoadPb:
    case VarKind::kLoadQb:
    case VarKind::kLoadPd:
    case VarKind::kLoadQd:
      owner = net.load(comp).name;
      break;
    default:
      owner = net.line(comp).name;
      break;
  }
  const char phase_char = "abc"[index(phases_.at(var))];
  return std::string(to_string(k)) + "[" + owner + "," + phase_char + "]";
}

}  // namespace dopf::opf
