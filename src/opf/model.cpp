#include "opf/model.hpp"

#include <cmath>

#include "linalg/vector_ops.hpp"

namespace dopf::opf {

using dopf::linalg::is_unbounded;
using network::Connection;
using network::Line;
using network::Network;
using network::Phase;
using network::PhaseSet;

namespace {

constexpr double kSqrt3 = 1.7320508075688772;

/// Sign pattern of the off-diagonal M^p entries in (5c):
/// -1 when psi is the phase cyclically following phi, +1 when preceding.
double mp_sign(std::size_t phi, std::size_t psi) {
  return psi == (phi + 1) % 3 ? -1.0 : 1.0;
}

/// M^p_{e,phi,psi} from the line's series impedance block.
double mp_entry(const Line& line, Phase phi, Phase psi) {
  const std::size_t i = network::index(phi);
  const std::size_t j = network::index(psi);
  if (i == j) return -2.0 * line.r(i, j);
  return line.r(i, j) + mp_sign(i, j) * kSqrt3 * line.x(i, j);
}

/// M^q_{e,phi,psi}; the sign pattern is opposite to M^p's.
double mq_entry(const Line& line, Phase phi, Phase psi) {
  const std::size_t i = network::index(phi);
  const std::size_t j = network::index(psi);
  if (i == j) return -2.0 * line.x(i, j);
  return line.x(i, j) - mp_sign(i, j) * kSqrt3 * line.r(i, j);
}

}  // namespace

dopf::sparse::CsrMatrix OpfModel::constraint_matrix() const {
  std::vector<dopf::sparse::Triplet> trips;
  for (std::size_t r = 0; r < equations.size(); ++r) {
    for (const auto& [var, coeff] : equations[r].terms) {
      trips.push_back({static_cast<std::int64_t>(r), var, coeff});
    }
  }
  return dopf::sparse::CsrMatrix::from_triplets(equations.size(), num_vars(),
                                                trips);
}

std::vector<double> OpfModel::rhs() const {
  std::vector<double> b(equations.size());
  for (std::size_t r = 0; r < equations.size(); ++r) b[r] = equations[r].rhs;
  return b;
}

double OpfModel::objective(std::span<const double> x) const {
  return dopf::linalg::dot(c, x);
}

double OpfModel::equation_residual(std::span<const double> x) const {
  double worst = 0.0;
  for (const Equation& eq : equations) {
    double lhs = 0.0;
    for (const auto& [var, coeff] : eq.terms) lhs += coeff * x[var];
    worst = std::max(worst, std::abs(lhs - eq.rhs));
  }
  return worst;
}

double OpfModel::bound_violation(std::span<const double> x) const {
  double worst = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    worst = std::max(worst, lb[i] - x[i]);
    worst = std::max(worst, x[i] - ub[i]);
  }
  return std::max(worst, 0.0);
}

OpfModel build_model(const Network& net) {
  net.validate();
  OpfModel model{VariableIndex(net), {}, {}, {}, {}, {}};
  const VariableIndex& v = model.vars;
  const std::size_t n = v.size();

  // ---- Bounds (2) and objective (6a).
  model.c.assign(n, 0.0);
  model.lb.assign(n, -dopf::linalg::kInfinity);
  model.ub.assign(n, dopf::linalg::kInfinity);

  for (const auto& g : net.generators()) {
    for (Phase p : g.phases.phases()) {
      model.c[v.gen_p(g.id, p)] = g.cost;
      model.lb[v.gen_p(g.id, p)] = g.p_min[p];
      model.ub[v.gen_p(g.id, p)] = g.p_max[p];
      model.lb[v.gen_q(g.id, p)] = g.q_min[p];
      model.ub[v.gen_q(g.id, p)] = g.q_max[p];
    }
  }
  for (const auto& b : net.buses()) {
    for (Phase p : b.phases.phases()) {
      model.lb[v.bus_w(b.id, p)] = b.w_min[p];
      model.ub[v.bus_w(b.id, p)] = b.w_max[p];
    }
  }
  for (const auto& l : net.lines()) {
    for (Phase p : l.phases.phases()) {
      if (is_unbounded(l.flow_limit[p])) continue;
      for (int var : {v.flow_pf(l.id, p), v.flow_qf(l.id, p),
                      v.flow_pt(l.id, p), v.flow_qt(l.id, p)}) {
        model.lb[var] = -l.flow_limit[p];
        model.ub[var] = l.flow_limit[p];
      }
    }
  }

  // ---- Initial point (Sec. V-A).
  model.x0.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    if (v.kind(static_cast<int>(i)) == VarKind::kBusW) {
      model.x0[i] = 1.0;
    } else if (!is_unbounded(model.lb[i]) && !is_unbounded(model.ub[i])) {
      model.x0[i] = 0.5 * (model.lb[i] + model.ub[i]);
    }
  }

  // ---- Power balance (3), owned by the bus.
  for (const auto& bus : net.buses()) {
    for (Phase p : bus.phases.phases()) {
      Equation ep, eq;
      ep.owner = eq.owner = Owner::kBus;
      ep.owner_id = eq.owner_id = bus.id;
      ep.name = "balP[" + bus.name + "," + std::string(1, "abc"[index(p)]) + "]";
      eq.name = "balQ[" + bus.name + "," + std::string(1, "abc"[index(p)]) + "]";

      for (const auto& inc : net.lines_at(bus.id)) {
        const Line& line = net.line(inc.line);
        if (!line.phases.has(p)) continue;
        if (inc.from_side) {
          ep.add(v.flow_pf(line.id, p), 1.0);
          eq.add(v.flow_qf(line.id, p), 1.0);
        } else {
          ep.add(v.flow_pt(line.id, p), 1.0);
          eq.add(v.flow_qt(line.id, p), 1.0);
        }
      }
      for (int l : net.loads_at(bus.id)) {
        if (!net.load(l).phases.has(p)) continue;
        ep.add(v.load_pb(l, p), 1.0);
        eq.add(v.load_qb(l, p), 1.0);
      }
      ep.add(v.bus_w(bus.id, p), bus.g_shunt[p]);
      eq.add(v.bus_w(bus.id, p), -bus.b_shunt[p]);
      for (int g : net.generators_at(bus.id)) {
        if (!net.generator(g).phases.has(p)) continue;
        ep.add(v.gen_p(g, p), -1.0);
        eq.add(v.gen_q(g, p), -1.0);
      }
      model.equations.push_back(std::move(ep));
      model.equations.push_back(std::move(eq));
    }
  }

  // ---- Voltage-dependent load model (4a)-(4d) and the connection
  // equations (4e) (wye) / (4f)-(4j) (delta); owned by the load's bus.
  for (const auto& load : net.loads()) {
    const int bus = load.bus;
    const double kappa = load.connection == Connection::kDelta ? 3.0 : 1.0;
    for (Phase p : load.phases.phases()) {
      const char pc = "abc"[index(p)];
      {
        Equation e;
        e.owner = Owner::kBus;
        e.owner_id = bus;
        e.name = "loadP[" + load.name + "," + std::string(1, pc) + "]";
        // p^d - (a*alpha/2) * kappa * w = a - a*alpha/2   [(4a) with (4c/4d)]
        e.add(v.load_pd(load.id, p), 1.0);
        e.add(v.bus_w(bus, p), -0.5 * load.p_ref[p] * load.alpha[p] * kappa);
        e.rhs = load.p_ref[p] * (1.0 - 0.5 * load.alpha[p]);
        model.equations.push_back(std::move(e));
      }
      {
        Equation e;
        e.owner = Owner::kBus;
        e.owner_id = bus;
        e.name = "loadQ[" + load.name + "," + std::string(1, pc) + "]";
        e.add(v.load_qd(load.id, p), 1.0);
        e.add(v.bus_w(bus, p), -0.5 * load.q_ref[p] * load.beta[p] * kappa);
        e.rhs = load.q_ref[p] * (1.0 - 0.5 * load.beta[p]);
        model.equations.push_back(std::move(e));
      }
    }

    if (load.connection == Connection::kWye) {
      for (Phase p : load.phases.phases()) {
        Equation e1, e2;
        e1.owner = e2.owner = Owner::kBus;
        e1.owner_id = e2.owner_id = bus;
        e1.name = "wyeP[" + load.name + "]";
        e2.name = "wyeQ[" + load.name + "]";
        e1.add(v.load_pb(load.id, p), 1.0);
        e1.add(v.load_pd(load.id, p), -1.0);
        e2.add(v.load_qb(load.id, p), 1.0);
        e2.add(v.load_qd(load.id, p), -1.0);
        model.equations.push_back(std::move(e1));
        model.equations.push_back(std::move(e2));
      }
    } else {
      // Delta connection: aggregate balance (4f) plus the four phase
      // coupling rows (4g)-(4j); phases 1,2,3 of the paper are a,b,c.
      const int l = load.id;
      const Phase pa = Phase::kA, pb = Phase::kB, pc3 = Phase::kC;
      auto eqn = [&](const char* name) {
        Equation e;
        e.owner = Owner::kBus;
        e.owner_id = bus;
        e.name = std::string(name) + "[" + load.name + "]";
        return e;
      };
      {
        Equation e = eqn("deltaSumP");  // (4f) real part
        for (Phase p : load.phases.phases()) {
          e.add(v.load_pb(l, p), 1.0);
          e.add(v.load_pd(l, p), -1.0);
        }
        model.equations.push_back(std::move(e));
      }
      {
        Equation e = eqn("deltaSumQ");  // (4f) reactive part
        for (Phase p : load.phases.phases()) {
          e.add(v.load_qb(l, p), 1.0);
          e.add(v.load_qd(l, p), -1.0);
        }
        model.equations.push_back(std::move(e));
      }
      {
        Equation e = eqn("delta4g");  // (4g)
        e.add(v.load_pb(l, pb), 1.5);
        e.add(v.load_qb(l, pb), -0.5 * kSqrt3);
        e.add(v.load_pd(l, pb), -1.0);
        e.add(v.load_pd(l, pa), -0.5);
        e.add(v.load_qd(l, pa), 0.5 * kSqrt3);
        model.equations.push_back(std::move(e));
      }
      {
        Equation e = eqn("delta4h");  // (4h)
        e.add(v.load_pb(l, pb), 0.5 * kSqrt3);
        e.add(v.load_qb(l, pb), 1.5);
        e.add(v.load_pd(l, pa), -0.5 * kSqrt3);
        e.add(v.load_qd(l, pa), -0.5);
        e.add(v.load_qd(l, pb), -1.0);
        model.equations.push_back(std::move(e));
      }
      {
        Equation e = eqn("delta4i");  // (4i)
        e.add(v.load_qb(l, pb), kSqrt3);
        e.add(v.load_pb(l, pc3), 1.5);
        e.add(v.load_qb(l, pc3), -0.5 * kSqrt3);
        e.add(v.load_pd(l, pa), -0.5);
        e.add(v.load_qd(l, pa), -0.5 * kSqrt3);
        e.add(v.load_pd(l, pc3), -1.0);
        model.equations.push_back(std::move(e));
      }
      {
        Equation e = eqn("delta4j");  // (4j)
        e.add(v.load_pb(l, pb), -kSqrt3);
        e.add(v.load_pb(l, pc3), 0.5 * kSqrt3);
        e.add(v.load_qb(l, pc3), 1.5);
        e.add(v.load_pd(l, pa), 0.5 * kSqrt3);
        e.add(v.load_qd(l, pa), -0.5);
        e.add(v.load_qd(l, pc3), -1.0);
        model.equations.push_back(std::move(e));
      }
    }
  }

  // ---- Linearized flow equations (5), owned by the line.
  for (const auto& line : net.lines()) {
    const int i = line.from_bus;
    const int j = line.to_bus;
    for (Phase p : line.phases.phases()) {
      const std::string suffix =
          "[" + line.name + "," + std::string(1, "abc"[index(p)]) + "]";
      {
        Equation e;  // (5a)
        e.owner = Owner::kLine;
        e.owner_id = line.id;
        e.name = "flowP" + suffix;
        e.add(v.flow_pf(line.id, p), 1.0);
        e.add(v.flow_pt(line.id, p), 1.0);
        e.add(v.bus_w(i, p), -line.g_shunt_from[p]);
        e.add(v.bus_w(j, p), -line.g_shunt_to[p]);
        model.equations.push_back(std::move(e));
      }
      {
        Equation e;  // (5b)
        e.owner = Owner::kLine;
        e.owner_id = line.id;
        e.name = "flowQ" + suffix;
        e.add(v.flow_qf(line.id, p), 1.0);
        e.add(v.flow_qt(line.id, p), 1.0);
        e.add(v.bus_w(i, p), line.b_shunt_from[p]);
        e.add(v.bus_w(j, p), line.b_shunt_to[p]);
        model.equations.push_back(std::move(e));
      }
      {
        Equation e;  // (5c), all terms moved to the left-hand side
        e.owner = Owner::kLine;
        e.owner_id = line.id;
        e.name = "volt" + suffix;
        e.add(v.bus_w(i, p), 1.0);
        e.add(v.bus_w(j, p), -line.tap_ratio[p]);
        for (Phase psi : line.phases.phases()) {
          const double mp = mp_entry(line, p, psi);
          const double mq = mq_entry(line, p, psi);
          e.add(v.flow_pf(line.id, psi), mp);
          e.add(v.bus_w(i, psi), -mp * line.g_shunt_from[psi]);
          e.add(v.flow_qf(line.id, psi), mq);
          e.add(v.bus_w(i, psi), mq * line.b_shunt_from[psi]);
        }
        model.equations.push_back(std::move(e));
      }
    }
  }

  return model;
}

}  // namespace dopf::opf
