#pragma once

#include <span>
#include <stdexcept>
#include <vector>

#include "linalg/matrix.hpp"

namespace dopf::linalg {

/// Thrown when a matrix expected to be SPD / full rank is not (within
/// tolerance). The paper's preprocessing (Sec. IV-B) guarantees `A_s A_s^T`
/// is SPD after row reduction; this error firing afterwards indicates a bug
/// or an inconsistent model, so we fail loudly.
class SingularMatrixError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Dense Cholesky factorization of a symmetric positive definite matrix.
///
/// Used for the per-component Gram matrices `A_s A_s^T` in the local-update
/// precomputation (15b)-(15c); those are small (Table IV), so an O(m^3)
/// dense factorization is negligible and done once.
class Cholesky {
 public:
  /// Factor the SPD matrix `a` (only the lower triangle is read).
  /// Throws SingularMatrixError if a pivot falls below `tol`.
  explicit Cholesky(const Matrix& a, double tol = 1e-12);

  std::size_t dim() const noexcept { return l_.rows(); }

  /// Solve L L^T x = b.
  std::vector<double> solve(std::span<const double> b) const;

  /// Solve in place.
  void solve_in_place(std::span<double> x) const;

  /// Explicit inverse (tests / diagnostics only; prefer solve()).
  Matrix inverse() const;

  const Matrix& lower() const noexcept { return l_; }

 private:
  Matrix l_;
};

}  // namespace dopf::linalg
