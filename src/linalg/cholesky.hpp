#pragma once

#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "linalg/matrix.hpp"

namespace dopf::linalg {

/// Thrown when a matrix expected to be SPD / full rank is not (within
/// tolerance). The paper's preprocessing (Sec. IV-B) guarantees `A_s A_s^T`
/// is SPD after row reduction; this error firing afterwards indicates a bug
/// or an inconsistent model, so we fail loudly.
class SingularMatrixError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Outcome of a non-throwing factorization attempt (try_factor). When a
/// pivot fell at or below tolerance, `pivot_index`/`pivot_value` name the
/// offending column so callers can report row-level provenance instead of
/// surfacing a NaN much later.
struct CholeskyStatus {
  bool ok = false;
  std::size_t pivot_index = 0;
  double pivot_value = 0.0;
};

/// Dense Cholesky factorization of a symmetric positive definite matrix.
///
/// Used for the per-component Gram matrices `A_s A_s^T` in the local-update
/// precomputation (15b)-(15c); those are small (Table IV), so an O(m^3)
/// dense factorization is negligible and done once.
class Cholesky {
 public:
  /// Factor the SPD matrix `a` (only the lower triangle is read).
  /// Throws SingularMatrixError if a pivot falls below `tol`.
  explicit Cholesky(const Matrix& a, double tol = 1e-12);

  /// Status-returning factorization: returns nullopt (and fills `status`,
  /// if given) instead of throwing when `a` is not SPD within `tol`. This
  /// is the failure channel the preflight conditioning analyzer and the
  /// regularized-projector fallback are built on.
  static std::optional<Cholesky> try_factor(const Matrix& a,
                                            double tol = 1e-12,
                                            CholeskyStatus* status = nullptr);

  std::size_t dim() const noexcept { return l_.rows(); }

  /// Solve L L^T x = b.
  std::vector<double> solve(std::span<const double> b) const;

  /// Solve in place.
  void solve_in_place(std::span<double> x) const;

  /// Explicit inverse (tests / diagnostics only; prefer solve()).
  Matrix inverse() const;

  const Matrix& lower() const noexcept { return l_; }

 private:
  Cholesky() = default;  // for try_factor

  /// Shared factorization core; returns false (filling `status`) on a
  /// non-positive pivot instead of throwing.
  bool factor(const Matrix& a, double tol, CholeskyStatus* status);

  Matrix l_;
};

}  // namespace dopf::linalg
