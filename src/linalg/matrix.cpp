#include "linalg/matrix.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace dopf::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer list");
    }
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::zeros(std::size_t rows, std::size_t cols) {
  return Matrix(rows, cols);
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) {
      t(j, i) = (*this)(i, j);
    }
  }
  return t;
}

bool Matrix::approx_equal(const Matrix& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (std::size_t k = 0; k < data_.size(); ++k) {
    if (std::abs(data_[k] - other.data_[k]) > tol) return false;
  }
  return true;
}

std::string Matrix::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < rows_; ++i) {
    os << (i == 0 ? "[" : " ");
    for (std::size_t j = 0; j < cols_; ++j) {
      os << (*this)(i, j) << (j + 1 < cols_ ? " " : "");
    }
    os << (i + 1 < rows_ ? ";\n" : "]");
  }
  return os.str();
}

namespace {
void check(bool ok, const char* msg) {
  if (!ok) throw std::invalid_argument(msg);
}
}  // namespace

Matrix multiply(const Matrix& a, const Matrix& b) {
  check(a.cols() == b.rows(), "multiply: inner dimensions disagree");
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        c(i, j) += aik * b(k, j);
      }
    }
  }
  return c;
}

Matrix multiply_abt(const Matrix& a, const Matrix& b) {
  check(a.cols() == b.cols(), "multiply_abt: inner dimensions disagree");
  Matrix c(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.rows(); ++j) {
      double sum = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) sum += a(i, k) * b(j, k);
      c(i, j) = sum;
    }
  }
  return c;
}

Matrix multiply_atb(const Matrix& a, const Matrix& b) {
  check(a.rows() == b.rows(), "multiply_atb: inner dimensions disagree");
  Matrix c(a.cols(), b.cols());
  for (std::size_t k = 0; k < a.rows(); ++k) {
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const double aki = a(k, i);
      if (aki == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        c(i, j) += aki * b(k, j);
      }
    }
  }
  return c;
}

Matrix gram_aat(const Matrix& a) { return multiply_abt(a, a); }

std::vector<double> multiply(const Matrix& a, std::span<const double> x) {
  check(a.cols() == x.size(), "multiply: vector length disagrees");
  std::vector<double> y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double sum = 0.0;
    const auto row = a.row(i);
    for (std::size_t j = 0; j < row.size(); ++j) sum += row[j] * x[j];
    y[i] = sum;
  }
  return y;
}

std::vector<double> multiply_transpose(const Matrix& a,
                                       std::span<const double> x) {
  check(a.rows() == x.size(), "multiply_transpose: vector length disagrees");
  std::vector<double> y(a.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    const auto row = a.row(i);
    for (std::size_t j = 0; j < row.size(); ++j) y[j] += row[j] * xi;
  }
  return y;
}

void multiply_add(const Matrix& a, std::span<const double> x, double alpha,
                  std::span<double> y) {
  check(a.cols() == x.size() && a.rows() == y.size(),
        "multiply_add: dimensions disagree");
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double sum = 0.0;
    const auto row = a.row(i);
    for (std::size_t j = 0; j < row.size(); ++j) sum += row[j] * x[j];
    y[i] += alpha * sum;
  }
}

Matrix operator*(const Matrix& a, const Matrix& b) { return multiply(a, b); }

Matrix operator+(const Matrix& a, const Matrix& b) {
  check(a.rows() == b.rows() && a.cols() == b.cols(),
        "operator+: dimensions disagree");
  Matrix c = a;
  auto cd = c.data();
  auto bd = b.data();
  for (std::size_t k = 0; k < cd.size(); ++k) cd[k] += bd[k];
  return c;
}

Matrix operator-(const Matrix& a, const Matrix& b) {
  check(a.rows() == b.rows() && a.cols() == b.cols(),
        "operator-: dimensions disagree");
  Matrix c = a;
  auto cd = c.data();
  auto bd = b.data();
  for (std::size_t k = 0; k < cd.size(); ++k) cd[k] -= bd[k];
  return c;
}

}  // namespace dopf::linalg
