#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

/// Dense linear algebra used throughout the library.
///
/// Component subproblem matrices `A_s` in the paper are tiny (rows/cols in the
/// single or low double digits, Table IV), so a simple row-major dense matrix
/// with cache-friendly kernels is the right tool; all large objects in the
/// algorithm (B, B'B) are handled by `dopf::sparse` instead.
namespace dopf::linalg {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// Zero-initialized rows x cols matrix.
  Matrix(std::size_t rows, std::size_t cols);

  /// Build from nested initializer lists; all rows must have equal length.
  /// Intended for tests and small fixture matrices.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);
  static Matrix zeros(std::size_t rows, std::size_t cols);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }

  double& operator()(std::size_t i, std::size_t j) {
    return data_[i * cols_ + j];
  }
  double operator()(std::size_t i, std::size_t j) const {
    return data_[i * cols_ + j];
  }

  /// Contiguous row-major storage.
  std::span<double> data() noexcept { return data_; }
  std::span<const double> data() const noexcept { return data_; }

  /// View of row i.
  std::span<double> row(std::size_t i) {
    return std::span<double>(data_).subspan(i * cols_, cols_);
  }
  std::span<const double> row(std::size_t i) const {
    return std::span<const double>(data_).subspan(i * cols_, cols_);
  }

  Matrix transposed() const;

  /// Frobenius-norm comparison helper (mostly for tests).
  bool approx_equal(const Matrix& other, double tol) const;

  /// Human-readable dump, for diagnostics.
  std::string to_string() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// C = A * B. Dimensions must agree.
Matrix multiply(const Matrix& a, const Matrix& b);

/// C = A * B^T without forming B^T.
Matrix multiply_abt(const Matrix& a, const Matrix& b);

/// C = A^T * B without forming A^T.
Matrix multiply_atb(const Matrix& a, const Matrix& b);

/// Symmetric product A * A^T (returned matrix is rows(A) x rows(A)).
Matrix gram_aat(const Matrix& a);

/// y = A * x.
std::vector<double> multiply(const Matrix& a, std::span<const double> x);

/// y = A^T * x.
std::vector<double> multiply_transpose(const Matrix& a,
                                       std::span<const double> x);

/// y += alpha * A * x, in place. y.size() must equal rows(A).
void multiply_add(const Matrix& a, std::span<const double> x, double alpha,
                  std::span<double> y);

Matrix operator*(const Matrix& a, const Matrix& b);
Matrix operator+(const Matrix& a, const Matrix& b);
Matrix operator-(const Matrix& a, const Matrix& b);

}  // namespace dopf::linalg
