#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace dopf::linalg {

/// Result of row-reducing an augmented system [A | b].
struct RrefResult {
  /// Row-reduced A restricted to its first `rank` (independent) rows.
  Matrix a;
  /// Correspondingly reduced right-hand side.
  std::vector<double> b;
  /// Numerical row rank of [A] found during elimination.
  std::size_t rank = 0;
  /// True if a row reduced to [0 ... 0 | nonzero], i.e. A x = b has no
  /// solution. `a`/`b` still contain the reduced independent rows.
  bool inconsistent = false;
  /// Pivot column of each kept row, in order.
  std::vector<std::size_t> pivot_cols;
};

/// Reduce the augmented system [A | b] to reduced row echelon form with
/// partial (max-magnitude) pivoting, dropping dependent rows.
///
/// This is the preprocessing of Sec. IV-B of the paper: component equality
/// blocks `A_s x_s = b_s` coming out of the OPF model builder may contain
/// linearly dependent rows (e.g. a delta load's aggregate balance (4f) can be
/// implied by (4g)-(4j) combinations); the local update (15) requires
/// `A_s A_s^T` invertible, i.e. full row rank. Matrices are tiny (Table IV),
/// so O(m^2 n) elimination is negligible and run once per component.
///
/// `tol` is the magnitude below which a candidate pivot is considered zero,
/// scaled by the largest entry of A.
RrefResult row_reduce(const Matrix& a, std::vector<double> b,
                      double tol = 1e-10);

/// Scale each row of the augmented system [A | b] to unit infinity norm
/// (rows that are exactly zero are left untouched). Row scaling is an exact
/// remediation: it does not change the solution set {x : A x = b}, only the
/// conditioning of the Gram matrix `A A^T` the projector is built from —
/// mixed-unit feeder data (impedances spanning many decades) otherwise
/// drives `cond(A A^T)` beyond what the Cholesky tolerance survives.
/// Returns the applied per-row scale factors (1/row_inf_norm).
std::vector<double> equilibrate_rows(Matrix* a, std::vector<double>* b);

}  // namespace dopf::linalg
