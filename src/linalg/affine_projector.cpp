#include "linalg/affine_projector.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "linalg/cholesky.hpp"

namespace dopf::linalg {

void AffineProjector::assemble(const Matrix& a, std::span<const double> b,
                               const Cholesky& gram) {
  const std::size_t n = a.cols();
  // Abar = A^T (A A^T)^{-1} A - I, built column-block-wise:
  // solve (A A^T) Y = A  (Y is m x n), then Abar = A^T Y - I.
  Matrix y(m_, n);
  std::vector<double> col(m_);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < m_; ++i) col[i] = a(i, j);
    gram.solve_in_place(col);
    for (std::size_t i = 0; i < m_; ++i) y(i, j) = col[i];
  }
  abar_ = multiply_atb(a, y);
  for (std::size_t i = 0; i < n; ++i) abar_(i, i) -= 1.0;

  // bbar = A^T (A A^T)^{-1} b.
  const std::vector<double> gb = gram.solve(b);
  bbar_ = multiply_transpose(a, gb);
}

AffineProjector::AffineProjector(const Matrix& a, std::span<const double> b)
    : m_(a.rows()) {
  if (a.rows() != b.size()) {
    throw std::invalid_argument("AffineProjector: b size must match rows");
  }
  // Gram matrix A A^T is SPD iff A has full row rank.
  const Cholesky gram(gram_aat(a));
  assemble(a, b, gram);
}

std::optional<AffineProjector> AffineProjector::try_build(
    const Matrix& a, std::span<const double> b,
    const ProjectorOptions& options, ProjectorStatus* status) {
  if (a.rows() != b.size()) {
    throw std::invalid_argument("AffineProjector: b size must match rows");
  }
  ProjectorStatus local;
  ProjectorStatus& st = status != nullptr ? *status : local;
  st = ProjectorStatus{};

  Matrix gram = gram_aat(a);
  CholeskyStatus chol_status;
  std::optional<Cholesky> chol =
      Cholesky::try_factor(gram, options.chol_tol, &chol_status);

  double ridge = 0.0;
  if (!chol && options.auto_regularize) {
    // Ridge scale relative to the Gram diagonal: deterministic, and
    // reported so callers can surface the perturbation they accepted.
    double max_diag = 1.0;
    for (std::size_t i = 0; i < gram.rows(); ++i) {
      max_diag = std::max(max_diag, std::abs(gram(i, i)));
    }
    ridge = options.ridge_rel * max_diag;
    for (int attempt = 0; attempt <= options.max_ridge_doublings && !chol;
         ++attempt) {
      Matrix ridged = gram;
      for (std::size_t i = 0; i < ridged.rows(); ++i) {
        ridged(i, i) += ridge;
      }
      chol = Cholesky::try_factor(ridged, options.chol_tol, &chol_status);
      if (!chol) ridge *= 2.0;
    }
  }

  if (!chol) {
    st.ok = false;
    st.ridge = 0.0;
    st.pivot_index = chol_status.pivot_index;
    st.pivot_value = chol_status.pivot_value;
    return std::nullopt;
  }

  AffineProjector proj;
  proj.m_ = a.rows();
  proj.ridge_ = ridge;
  proj.assemble(a, b, *chol);
  if (options.keep_factorization) {
    proj.gram_ = std::move(*chol);
    proj.a_ = a;
  }
  st.ok = true;
  st.ridge = ridge;
  return proj;
}

void AffineProjector::rebind_rhs(std::span<const double> b) {
  if (!gram_.has_value()) {
    throw std::logic_error(
        "AffineProjector::rebind_rhs: projector was built without "
        "keep_factorization");
  }
  if (b.size() != m_) {
    throw std::invalid_argument("AffineProjector::rebind_rhs: b size mismatch");
  }
  // Exactly the bbar lines of assemble(), replayed through the retained
  // factor: bit-identical to a cold build with the same A and this b.
  const std::vector<double> gb = gram_->solve(b);
  bbar_ = multiply_transpose(a_, gb);
}

std::vector<double> AffineProjector::apply_paper_form(
    std::span<const double> d, double rho) const {
  std::vector<double> x = multiply(abar_, d);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = x[i] / rho + bbar_[i];
  return x;
}

std::vector<double> AffineProjector::project(std::span<const double> y) const {
  std::vector<double> out(dim());
  project_into(y, out);
  return out;
}

void AffineProjector::project_into(std::span<const double> y,
                                   std::span<double> out) const {
  // P(y) = -Abar y + bbar  (see header comment).
  const std::size_t n = dim();
  if (y.size() != n || out.size() != n) {
    throw std::invalid_argument("AffineProjector::project: size mismatch");
  }
  for (std::size_t i = 0; i < n; ++i) {
    double sum = 0.0;
    const auto row = abar_.row(i);
    for (std::size_t j = 0; j < n; ++j) sum += row[j] * y[j];
    out[i] = bbar_[i] - sum;
  }
}

}  // namespace dopf::linalg
