#include "linalg/cholesky.hpp"

#include <cmath>
#include <string>
#include <utility>

namespace dopf::linalg {

bool Cholesky::factor(const Matrix& a, double tol, CholeskyStatus* status) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("Cholesky: matrix must be square");
  }
  l_ = Matrix(a.rows(), a.cols());
  const std::size_t n = a.rows();
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l_(j, k) * l_(j, k);
    if (!(diag > tol)) {  // catches NaN pivots too
      if (status != nullptr) {
        status->ok = false;
        status->pivot_index = j;
        status->pivot_value = diag;
      }
      return false;
    }
    const double ljj = std::sqrt(diag);
    l_(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l_(i, k) * l_(j, k);
      l_(i, j) = sum / ljj;
    }
  }
  if (status != nullptr) status->ok = true;
  return true;
}

Cholesky::Cholesky(const Matrix& a, double tol) {
  CholeskyStatus status;
  if (!factor(a, tol, &status)) {
    throw SingularMatrixError(
        "Cholesky: matrix is not positive definite (pivot " +
        std::to_string(status.pivot_value) + " at " +
        std::to_string(status.pivot_index) + ")");
  }
}

std::optional<Cholesky> Cholesky::try_factor(const Matrix& a, double tol,
                                             CholeskyStatus* status) {
  Cholesky chol;
  CholeskyStatus local;
  if (!chol.factor(a, tol, status != nullptr ? status : &local)) {
    return std::nullopt;
  }
  return chol;
}

std::vector<double> Cholesky::solve(std::span<const double> b) const {
  std::vector<double> x(b.begin(), b.end());
  solve_in_place(x);
  return x;
}

void Cholesky::solve_in_place(std::span<double> x) const {
  const std::size_t n = dim();
  if (x.size() != n) {
    throw std::invalid_argument("Cholesky::solve: size mismatch");
  }
  // Forward substitution L y = b.
  for (std::size_t i = 0; i < n; ++i) {
    double sum = x[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l_(i, k) * x[k];
    x[i] = sum / l_(i, i);
  }
  // Back substitution L^T x = y.
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = x[ii];
    for (std::size_t k = ii + 1; k < n; ++k) sum -= l_(k, ii) * x[k];
    x[ii] = sum / l_(ii, ii);
  }
}

Matrix Cholesky::inverse() const {
  const std::size_t n = dim();
  Matrix inv(n, n);
  std::vector<double> e(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    e.assign(n, 0.0);
    e[j] = 1.0;
    solve_in_place(e);
    for (std::size_t i = 0; i < n; ++i) inv(i, j) = e[i];
  }
  return inv;
}

}  // namespace dopf::linalg
