#pragma once

#include <limits>
#include <span>
#include <vector>

/// Free-function BLAS-1 style kernels on contiguous double ranges.
///
/// All hot loops of the solver-free ADMM (global/dual updates, residuals,
/// eq. (13), (12), (16)) reduce to these; keeping them as plain span
/// functions lets the serial, SIMT-simulated, and virtual-cluster execution
/// paths share one implementation.
namespace dopf::linalg {

/// Value used to represent "no bound". Chosen finite so bound arithmetic
/// (midpoints, clips) stays well-defined; anything >= kInfinity/2 is treated
/// as unbounded by callers that care.
inline constexpr double kInfinity = 1e30;

/// True if a bound value means "unbounded" on its side.
inline bool is_unbounded(double bound) {
  return bound >= kInfinity / 2 || bound <= -kInfinity / 2;
}

double dot(std::span<const double> x, std::span<const double> y);
double norm2(std::span<const double> x);
double norm_inf(std::span<const double> x);

/// y += alpha * x.
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// x *= alpha.
void scale(std::span<double> x, double alpha);

/// Elementwise x = min(max(x, lo), hi); the projection used by the global
/// update (13)/(18).
void clip(std::span<double> x, std::span<const double> lo,
          std::span<const double> hi);

/// ||x - y||_2.
double distance2(std::span<const double> x, std::span<const double> y);

/// Fill with a constant.
void fill(std::span<double> x, double value);

std::vector<double> add(std::span<const double> x, std::span<const double> y);
std::vector<double> subtract(std::span<const double> x,
                             std::span<const double> y);

}  // namespace dopf::linalg
