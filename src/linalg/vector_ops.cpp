#include "linalg/vector_ops.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dopf::linalg {

namespace {
void check_same(std::size_t a, std::size_t b, const char* msg) {
  if (a != b) throw std::invalid_argument(msg);
}
}  // namespace

double dot(std::span<const double> x, std::span<const double> y) {
  check_same(x.size(), y.size(), "dot: size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) sum += x[i] * y[i];
  return sum;
}

double norm2(std::span<const double> x) { return std::sqrt(dot(x, x)); }

double norm_inf(std::span<const double> x) {
  double m = 0.0;
  for (double v : x) m = std::max(m, std::abs(v));
  return m;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  check_same(x.size(), y.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(std::span<double> x, double alpha) {
  for (double& v : x) v *= alpha;
}

void clip(std::span<double> x, std::span<const double> lo,
          std::span<const double> hi) {
  check_same(x.size(), lo.size(), "clip: lo size mismatch");
  check_same(x.size(), hi.size(), "clip: hi size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::min(std::max(x[i], lo[i]), hi[i]);
  }
}

double distance2(std::span<const double> x, std::span<const double> y) {
  check_same(x.size(), y.size(), "distance2: size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - y[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

void fill(std::span<double> x, double value) {
  std::fill(x.begin(), x.end(), value);
}

std::vector<double> add(std::span<const double> x, std::span<const double> y) {
  check_same(x.size(), y.size(), "add: size mismatch");
  std::vector<double> z(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) z[i] = x[i] + y[i];
  return z;
}

std::vector<double> subtract(std::span<const double> x,
                             std::span<const double> y) {
  check_same(x.size(), y.size(), "subtract: size mismatch");
  std::vector<double> z(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) z[i] = x[i] - y[i];
  return z;
}

}  // namespace dopf::linalg
