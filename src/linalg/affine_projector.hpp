#pragma once

#include <optional>
#include <span>
#include <vector>

#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"

namespace dopf::linalg {

/// Policy for building an AffineProjector when `A A^T` turns out not to be
/// numerically SPD (near-duplicate constraint rows that survived the RREF
/// tolerance). This is the preflight remediation knob: with
/// `auto_regularize` off the build fails with a status (strict behaviour);
/// with it on, a Tikhonov ridge `sigma I` is added to the Gram matrix —
/// starting at `ridge_rel * max(1, max diag(A A^T))` and doubling up to
/// `max_ridge_doublings` times — and the applied perturbation is reported.
struct ProjectorOptions {
  double chol_tol = 1e-12;
  bool auto_regularize = false;
  double ridge_rel = 1e-10;
  int max_ridge_doublings = 24;
  /// Retain A and the (possibly ridged) Cholesky factor of the Gram matrix
  /// so rebind_rhs() can re-derive bbar for a new b without refactorizing —
  /// the mechanism behind scenario rebinding (core::ScenarioBinding). Off
  /// by default: single-shot projectors keep today's memory footprint.
  bool keep_factorization = false;
};

/// Outcome of try_build: whether the projector exists, the Tikhonov ridge
/// that was applied (0 = exact projector), and on failure the offending
/// Cholesky pivot for row-level provenance.
struct ProjectorStatus {
  bool ok = false;
  double ridge = 0.0;
  std::size_t pivot_index = 0;
  double pivot_value = 0.0;
};

/// Precomputed orthogonal projector onto the affine set {x : A x = b} for a
/// full-row-rank A.
///
/// This is exactly the paper's local-update machinery (15):
///   Abar = A^T (A A^T)^{-1} A - I       (15b)
///   bbar = A^T (A A^T)^{-1} b           (15c)
///   x_s^{t+1} = (1/rho) * Abar * d + bbar,   d = -rho*v - lambda   (15a)
/// which algebraically equals the projection P(v + lambda/rho) with
///   P(y) = (I - A^T (A A^T)^{-1} A) y + bbar = -Abar y + ... note the
/// sign: Abar = A^T(AA^T)^{-1}A - I so P(y) = -Abar*y + ... Careful readers:
/// (1/rho)*Abar*(-rho*y) + bbar = -Abar*y + bbar = (I - A^T(AA^T)^{-1}A) y + bbar.
///
/// Construction is O(m^2 n + m^3) and happens once per component (the
/// "Precomputation" step, lines 2-3 of Algorithm 1); apply() is a dense
/// matvec, the entirety of the per-iteration local update.
class AffineProjector {
 public:
  /// `a` must have full row rank (run row_reduce() first if unsure).
  /// Throws SingularMatrixError if A A^T is numerically singular.
  AffineProjector(const Matrix& a, std::span<const double> b);

  /// Status-returning construction. Returns nullopt (with `status->ok`
  /// false) when `A A^T` is not SPD and regularization is off or
  /// exhausted; otherwise the built projector, with `status->ridge`
  /// recording any Tikhonov perturbation that was needed.
  static std::optional<AffineProjector> try_build(
      const Matrix& a, std::span<const double> b,
      const ProjectorOptions& options = {}, ProjectorStatus* status = nullptr);

  std::size_t dim() const noexcept { return abar_.rows(); }
  std::size_t num_constraints() const noexcept { return m_; }

  /// Tikhonov ridge baked into this projector (0 for an exact projector).
  double ridge() const noexcept { return ridge_; }

  /// True when the factorization was retained (keep_factorization), i.e.
  /// rebind_rhs() is available.
  bool can_rebind_rhs() const noexcept { return gram_.has_value(); }

  /// Recompute bbar (15c) for a new right-hand side through the retained
  /// factorization: bit-identical to a cold build with the same A and the
  /// new b, at the cost of one triangular solve instead of a full
  /// refactorization. Throws std::logic_error unless the projector was
  /// built with keep_factorization, std::invalid_argument on a size
  /// mismatch.
  void rebind_rhs(std::span<const double> b);

  /// The paper's (15a): x = (1/rho) * Abar * d + bbar.
  std::vector<double> apply_paper_form(std::span<const double> d,
                                       double rho) const;

  /// Equivalent projection form: returns argmin_{Ax=b} ||x - y||_2.
  std::vector<double> project(std::span<const double> y) const;

  /// project() writing into `out` (no allocation; hot path).
  void project_into(std::span<const double> y, std::span<double> out) const;

  /// Abar from (15b); exposed for the SIMT kernels, which index its rows
  /// directly from "device" memory.
  const Matrix& abar() const noexcept { return abar_; }
  /// bbar from (15c).
  std::span<const double> bbar() const noexcept { return bbar_; }

 private:
  AffineProjector() = default;  // for try_build

  /// Build Abar/bbar from `a`, `b` and the already-factored (possibly
  /// ridged) Gram matrix.
  void assemble(const Matrix& a, std::span<const double> b,
                const Cholesky& gram);

  std::size_t m_ = 0;
  double ridge_ = 0.0;
  Matrix abar_;                // (15b), n x n
  std::vector<double> bbar_;   // (15c), n
  // Retained only under keep_factorization (scenario rebinding).
  std::optional<Cholesky> gram_;
  Matrix a_;
};

}  // namespace dopf::linalg
