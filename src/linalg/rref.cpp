#include "linalg/rref.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace dopf::linalg {

RrefResult row_reduce(const Matrix& a_in, std::vector<double> b,
                      double tol) {
  if (a_in.rows() != b.size()) {
    throw std::invalid_argument("row_reduce: b size must match rows of A");
  }
  Matrix a = a_in;
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();

  double max_abs = 0.0;
  for (double v : a.data()) max_abs = std::max(max_abs, std::abs(v));
  const double eps = tol * std::max(1.0, max_abs);

  RrefResult result;
  std::size_t pivot_row = 0;
  for (std::size_t col = 0; col < n && pivot_row < m; ++col) {
    // Partial pivoting: pick the largest-magnitude entry in this column at or
    // below pivot_row.
    std::size_t best = pivot_row;
    double best_abs = std::abs(a(pivot_row, col));
    for (std::size_t r = pivot_row + 1; r < m; ++r) {
      const double v = std::abs(a(r, col));
      if (v > best_abs) {
        best = r;
        best_abs = v;
      }
    }
    if (best_abs <= eps) continue;  // no pivot in this column

    if (best != pivot_row) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(a(pivot_row, j), a(best, j));
      }
      std::swap(b[pivot_row], b[best]);
    }

    // Normalize pivot row.
    const double pivot = a(pivot_row, col);
    for (std::size_t j = col; j < n; ++j) a(pivot_row, j) /= pivot;
    b[pivot_row] /= pivot;
    a(pivot_row, col) = 1.0;  // avoid residual roundoff on the pivot itself

    // Eliminate the column everywhere else (full RREF, as in the paper).
    for (std::size_t r = 0; r < m; ++r) {
      if (r == pivot_row) continue;
      const double factor = a(r, col);
      if (factor == 0.0) continue;
      for (std::size_t j = col; j < n; ++j) {
        a(r, j) -= factor * a(pivot_row, j);
      }
      a(r, col) = 0.0;
      b[r] -= factor * b[pivot_row];
    }

    result.pivot_cols.push_back(col);
    ++pivot_row;
  }
  result.rank = pivot_row;

  // Rows below the rank are (numerically) zero rows of A; a nonzero RHS there
  // means the system is inconsistent.
  for (std::size_t r = result.rank; r < m; ++r) {
    if (std::abs(b[r]) > eps) {
      result.inconsistent = true;
      break;
    }
  }

  result.a = Matrix(result.rank, n);
  result.b.assign(b.begin(), b.begin() + static_cast<std::ptrdiff_t>(result.rank));
  for (std::size_t r = 0; r < result.rank; ++r) {
    for (std::size_t j = 0; j < n; ++j) result.a(r, j) = a(r, j);
  }
  return result;
}

std::vector<double> equilibrate_rows(Matrix* a, std::vector<double>* b) {
  if (a == nullptr || b == nullptr || a->rows() != b->size()) {
    throw std::invalid_argument("equilibrate_rows: b size must match rows");
  }
  const std::size_t m = a->rows();
  const std::size_t n = a->cols();
  std::vector<double> scale(m, 1.0);
  for (std::size_t r = 0; r < m; ++r) {
    double norm = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      norm = std::max(norm, std::abs((*a)(r, j)));
    }
    if (norm == 0.0) continue;  // zero row: nothing to scale
    const double s = 1.0 / norm;
    scale[r] = s;
    for (std::size_t j = 0; j < n; ++j) (*a)(r, j) *= s;
    (*b)[r] *= s;
  }
  return scale;
}

}  // namespace dopf::linalg
