#pragma once

#include "network/network.hpp"

namespace dopf::feeders {

/// Hand-built feeder modeled on the IEEE 13-bus test feeder.
///
/// Substitution note (see DESIGN.md): the authoritative IEEE13 definition is
/// an OpenDSS model we do not ship; this network reproduces its structure —
/// a short, heavily loaded 4.16 kV feeder with a substation regulator, an
/// in-line transformer, single/two/three-phase laterals, wye and delta loads
/// of constant-power/current/impedance types — extended with secondary
/// service buses so that the component graph matches the paper's Table III
/// counts for the 13-bus instance (29 nodes, 28 lines, 7 leaf nodes).
///
/// All quantities are per-unit on a 4.16 kV / 5 MVA base.
dopf::network::Network ieee13();

}  // namespace dopf::feeders
