#pragma once

#include <cstdint>

#include "network/network.hpp"

namespace dopf::feeders {

/// Parameters of the synthetic radial-feeder generator.
///
/// Substitution note (DESIGN.md): the IEEE 123- and 8500-bus OpenDSS models
/// are not shipped; instead this generator produces feeders whose *component
/// graph statistics* are calibrated to the paper's Table III (node / line /
/// leaf counts are hit exactly by construction) and whose phase and load
/// mixes track Table IV's subproblem-size distributions. The distributed
/// algorithm only ever sees the per-component blocks (A_s, b_s, B_s), so
/// matching these statistics preserves the computational behaviour under
/// study.
struct SyntheticSpec {
  /// Exact graph-node count (buses, including transformer-secondary buses).
  int num_buses = 147;
  /// Exact leaf count (degree-1 buses excluding the substation root).
  int num_leaves = 43;
  /// Lines beyond the spanning tree (parallel/tie lines; the 8500-bus
  /// instance's component graph has ~2.4k more lines than nodes-1).
  int num_extra_lines = 0;

  /// Probability that a child bus keeps all of its parent's phases; with the
  /// complement it drops to a single random phase of the parent.
  double keep_phases_prob = 0.55;
  /// Probability that a kept multi-phase set is reduced to two phases.
  double two_phase_prob = 0.15;

  /// Probability a non-root bus carries a load.
  double load_density = 0.45;
  /// Probability a load at a three-phase bus is delta-connected.
  double delta_prob = 0.25;
  /// Probability the ZIP exponents are 1 (constant current) / 2 (constant
  /// impedance); remainder is constant power.
  double const_current_prob = 0.15;
  double const_impedance_prob = 0.15;
  /// Mean per-phase load reference power, in power units. The library's
  /// power unit is ~100 kW (so a typical service-transformer load is ~0.25);
  /// keeping loads O(0.1-1) against per-unit voltages O(1) matches the
  /// scaling of the paper's OpenDSS-derived data, where both signals are
  /// visible to the relative residual criterion (16).
  double load_unit = 0.25;
  /// Guarantee at least this many delta loads (placed on three-phase buses)
  /// so the delta linearization (4f)-(4j) is exercised at every scale.
  int min_delta_loads = 2;
  /// Conductors are sized to keep the worst root-to-leaf squared-voltage
  /// drop within this budget at nominal load (how real feeders are
  /// engineered); line impedances are derived from downstream load.
  double drop_budget = 0.06;

  /// Fraction of tree lines that are service transformers.
  double transformer_prob = 0.15;

  /// Number of distributed generators in addition to the substation.
  int num_der = 2;

  std::uint64_t seed = 20250706;
};

/// Generate a connected feeder with exactly the requested node / line / leaf
/// counts. Throws std::invalid_argument for inconsistent counts
/// (need 2 <= num_leaves <= num_buses - 2 for a nontrivial tree).
dopf::network::Network synthetic_feeder(const SyntheticSpec& spec);

/// Calibrated stand-in for the IEEE 123-bus instance's component graph:
/// 147 nodes, 146 lines, 43 leaves (Table III), moderately single-phase.
SyntheticSpec ieee123_spec();

/// Calibrated stand-in for the IEEE 8500-bus instance's component graph:
/// 11932 nodes, 14291 lines, 1222 leaves (Table III), predominantly
/// single-phase secondaries (Table IV: mean m_s = 3.44).
SyntheticSpec ieee8500_spec();

/// A smaller instance of the 8500-class statistics for quick runs
/// (same phase/load mixes, ~1/10 the nodes).
SyntheticSpec ieee8500_mini_spec();

}  // namespace dopf::feeders
