#pragma once

#include <iosfwd>
#include <string>

#include "network/network.hpp"

namespace dopf::feeders {

/// Thrown on malformed feeder files.
class FeederFormatError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Plain-text feeder exchange format ("dopf feeder v1").
///
/// Line-oriented, whitespace-separated, '#' starts a comment. Records:
///
///   feeder v1
///   bus  <name> <phases> <wmin*3> <wmax*3> <gsh*3> <bsh*3>
///   gen  <name> <bus> <phases> <pmin*3> <pmax*3> <qmin*3> <qmax*3> <cost>
///   load <name> <bus> <phases> <wye|delta> <alpha*3> <beta*3> <p*3> <q*3>
///   line <name> <from> <to> <phases> <xfmr:0|1> <tap*3> <limit*3>
///        <r:9 row-major> <x:9 row-major> <gshf*3> <bshf*3> <gsht*3> <bsht*3>
///
/// `inf` / `-inf` tokens denote missing bounds. Buses are referenced by
/// name; components appear in file order, which fixes their ids. The writer
/// and parser round-trip losslessly (up to floating-point printing, 17
/// significant digits).
void write_feeder(const dopf::network::Network& net, std::ostream& out);
dopf::network::Network read_feeder(std::istream& in);

/// Convenience file wrappers.
void save_feeder(const dopf::network::Network& net, const std::string& path);
dopf::network::Network load_feeder(const std::string& path);

}  // namespace dopf::feeders
