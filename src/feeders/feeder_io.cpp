#include "feeders/feeder_io.hpp"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <map>
#include <sstream>
#include <vector>

namespace dopf::feeders {

using network::Bus;
using network::Connection;
using network::Generator;
using network::kInfinity;
using network::Line;
using network::Load;
using network::Network;
using network::PerPhase;
using network::PhaseMatrix;
using network::PhaseSet;

namespace {

void put(std::ostream& out, double v) {
  if (v >= kInfinity / 2) {
    out << " inf";
  } else if (v <= -kInfinity / 2) {
    out << " -inf";
  } else {
    out << ' ' << std::setprecision(17) << v;
  }
}

void put3(std::ostream& out, const PerPhase<double>& v) {
  for (double x : v.values) put(out, x);
}

void put9(std::ostream& out, const PhaseMatrix& m) {
  for (const auto& row : m.m) {
    for (double x : row) put(out, x);
  }
}

/// Token stream over one record line.
class Tokens {
 public:
  Tokens(std::string line, int line_no) : in_(std::move(line)), no_(line_no) {}

  std::string word(const char* what) {
    std::string t;
    if (!(in_ >> t)) fail(std::string("missing ") + what);
    return t;
  }

  double number(const char* what) {
    const std::string t = word(what);
    if (t == "inf") return kInfinity;
    if (t == "-inf") return -kInfinity;
    double v = 0.0;
    try {
      std::size_t pos = 0;
      v = std::stod(t, &pos);
      if (pos != t.size()) throw std::invalid_argument(t);
    } catch (const std::exception&) {
      fail(std::string("bad number '") + t + "' for " + what);
    }
    // Raw IEEE specials are always corrupt input: unboundedness is
    // spelled "inf"/"-inf" and mapped to the kInfinity sentinel above.
    if (!std::isfinite(v)) {
      fail(std::string("non-finite number '") + t + "' for " + what);
    }
    return v;
  }

  PhaseSet phases(const char* what) {
    const std::string t = word(what);
    try {
      return PhaseSet::parse(t);
    } catch (const std::exception& e) {
      fail(std::string("bad phase set '") + t + "' for " + what + ": " +
           e.what());
    }
  }

  PerPhase<double> triple(const char* what) {
    PerPhase<double> v;
    for (double& x : v.values) x = number(what);
    return v;
  }

  PhaseMatrix nine(const char* what) {
    PhaseMatrix m;
    for (auto& row : m.m) {
      for (double& x : row) x = number(what);
    }
    return m;
  }

  [[noreturn]] void fail(const std::string& msg) const {
    throw FeederFormatError("feeder line " + std::to_string(no_) + ": " + msg);
  }

 private:
  std::istringstream in_;
  int no_;
};

}  // namespace

void write_feeder(const Network& net, std::ostream& out) {
  out << "feeder v1\n";
  for (const Bus& b : net.buses()) {
    out << "bus " << b.name << ' ' << b.phases.to_string();
    put3(out, b.w_min);
    put3(out, b.w_max);
    put3(out, b.g_shunt);
    put3(out, b.b_shunt);
    out << '\n';
  }
  for (const Generator& g : net.generators()) {
    out << "gen " << g.name << ' ' << net.bus(g.bus).name << ' '
        << g.phases.to_string();
    put3(out, g.p_min);
    put3(out, g.p_max);
    put3(out, g.q_min);
    put3(out, g.q_max);
    put(out, g.cost);
    out << '\n';
  }
  for (const Load& l : net.loads()) {
    out << "load " << l.name << ' ' << net.bus(l.bus).name << ' '
        << l.phases.to_string() << ' '
        << (l.connection == Connection::kDelta ? "delta" : "wye");
    put3(out, l.alpha);
    put3(out, l.beta);
    put3(out, l.p_ref);
    put3(out, l.q_ref);
    out << '\n';
  }
  for (const Line& l : net.lines()) {
    out << "line " << l.name << ' ' << net.bus(l.from_bus).name << ' '
        << net.bus(l.to_bus).name << ' ' << l.phases.to_string() << ' '
        << (l.is_transformer ? 1 : 0);
    put3(out, l.tap_ratio);
    put3(out, l.flow_limit);
    put9(out, l.r);
    put9(out, l.x);
    put3(out, l.g_shunt_from);
    put3(out, l.b_shunt_from);
    put3(out, l.g_shunt_to);
    put3(out, l.b_shunt_to);
    out << '\n';
  }
}

Network read_feeder(std::istream& in) {
  Network net;
  std::map<std::string, int> bus_ids;
  std::string raw;
  int line_no = 0;
  bool header_seen = false;

  auto bus_id = [&](const std::string& name, Tokens& tok) {
    const auto it = bus_ids.find(name);
    if (it == bus_ids.end()) tok.fail("unknown bus '" + name + "'");
    return it->second;
  };

  while (std::getline(in, raw)) {
    ++line_no;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    Tokens tok(raw, line_no);
    std::string kind;
    {
      std::istringstream probe(raw);
      if (!(probe >> kind)) continue;  // blank / comment-only line
    }
    kind = tok.word("record kind");

    if (!header_seen) {
      if (kind != "feeder" || tok.word("version") != "v1") {
        tok.fail("expected header 'feeder v1'");
      }
      header_seen = true;
      continue;
    }

    if (kind == "bus") {
      Bus b;
      b.name = tok.word("bus name");
      b.phases = tok.phases("phases");
      b.w_min = tok.triple("wmin");
      b.w_max = tok.triple("wmax");
      b.g_shunt = tok.triple("gsh");
      b.b_shunt = tok.triple("bsh");
      if (bus_ids.count(b.name) != 0) tok.fail("duplicate bus " + b.name);
      const std::string name = b.name;
      bus_ids[name] = net.add_bus(std::move(b));
    } else if (kind == "gen") {
      Generator g;
      g.name = tok.word("gen name");
      g.bus = bus_id(tok.word("bus"), tok);
      g.phases = tok.phases("phases");
      g.p_min = tok.triple("pmin");
      g.p_max = tok.triple("pmax");
      g.q_min = tok.triple("qmin");
      g.q_max = tok.triple("qmax");
      g.cost = tok.number("cost");
      net.add_generator(std::move(g));
    } else if (kind == "load") {
      Load l;
      l.name = tok.word("load name");
      l.bus = bus_id(tok.word("bus"), tok);
      l.phases = tok.phases("phases");
      const std::string conn = tok.word("connection");
      if (conn == "wye") {
        l.connection = Connection::kWye;
      } else if (conn == "delta") {
        l.connection = Connection::kDelta;
      } else {
        tok.fail("connection must be wye or delta, got '" + conn + "'");
      }
      l.alpha = tok.triple("alpha");
      l.beta = tok.triple("beta");
      l.p_ref = tok.triple("p");
      l.q_ref = tok.triple("q");
      net.add_load(std::move(l));
    } else if (kind == "line") {
      Line l;
      l.name = tok.word("line name");
      l.from_bus = bus_id(tok.word("from"), tok);
      l.to_bus = bus_id(tok.word("to"), tok);
      l.phases = tok.phases("phases");
      l.is_transformer = tok.number("xfmr flag") != 0.0;
      l.tap_ratio = tok.triple("tap");
      l.flow_limit = tok.triple("limit");
      l.r = tok.nine("r");
      l.x = tok.nine("x");
      l.g_shunt_from = tok.triple("gshf");
      l.b_shunt_from = tok.triple("bshf");
      l.g_shunt_to = tok.triple("gsht");
      l.b_shunt_to = tok.triple("bsht");
      net.add_line(std::move(l));
    } else {
      tok.fail("unknown record kind '" + kind + "'");
    }
  }
  if (!header_seen) {
    throw FeederFormatError("feeder file is empty (missing 'feeder v1')");
  }
  net.validate();
  return net;
}

void save_feeder(const Network& net, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw FeederFormatError("cannot open for writing: " + path);
  write_feeder(net, out);
}

Network load_feeder(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw FeederFormatError("cannot open: " + path);
  return read_feeder(in);
}

}  // namespace dopf::feeders
