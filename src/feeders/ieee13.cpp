#include "feeders/ieee13.hpp"

#include <cmath>

namespace dopf::feeders {

using network::Bus;
using network::Connection;
using network::Generator;
using network::kInfinity;
using network::Line;
using network::Load;
using network::Network;
using network::PerPhase;
using network::Phase;
using network::PhaseMatrix;
using network::PhaseSet;

namespace {

/// Symmetric impedance block with the given self and mutual terms, populated
/// only on the phases the line carries.
PhaseMatrix impedance_block(PhaseSet ph, double self, double mutual) {
  PhaseMatrix m;
  for (Phase p : ph.phases()) {
    for (Phase q : ph.phases()) {
      m(p, q) = (p == q) ? self : mutual;
    }
  }
  return m;
}

struct LineKind {
  double r_self, r_mut, x_self, x_mut;
};

// Per-unit per-length-unit parameters for the conductor classes used below
// (4.16 kV / 5 MVA base; overhead trunk, lateral, underground, transformer).
constexpr LineKind kTrunk{0.016, 0.005, 0.045, 0.018};
constexpr LineKind kLateral{0.035, 0.010, 0.060, 0.020};
constexpr LineKind kUnderground{0.028, 0.008, 0.030, 0.008};
constexpr LineKind kXfmr{0.011, 0.0, 0.060, 0.0};
constexpr LineKind kSwitch{0.0008, 0.0, 0.0016, 0.0};

Line make_line(std::string name, int from, int to, PhaseSet ph,
               const LineKind& kind, double length, bool xfmr = false,
               double tap = 1.0) {
  Line l;
  l.name = std::move(name);
  l.from_bus = from;
  l.to_bus = to;
  l.phases = ph;
  l.r = impedance_block(ph, kind.r_self * length, kind.r_mut * length);
  l.x = impedance_block(ph, kind.x_self * length, kind.x_mut * length);
  l.is_transformer = xfmr;
  for (Phase p : ph.phases()) l.tap_ratio[p] = tap;
  return l;
}

Load wye_load(std::string name, int bus, PhaseSet ph, double p_per_phase,
              double pf_q_ratio, double alpha, double beta) {
  Load ld;
  ld.name = std::move(name);
  ld.bus = bus;
  ld.phases = ph;
  ld.connection = Connection::kWye;
  for (Phase p : ph.phases()) {
    ld.p_ref[p] = p_per_phase;
    ld.q_ref[p] = p_per_phase * pf_q_ratio;
    ld.alpha[p] = alpha;
    ld.beta[p] = beta;
  }
  return ld;
}

Load delta_load(std::string name, int bus, double p_per_phase,
                double pf_q_ratio, double alpha, double beta) {
  Load ld = wye_load(std::move(name), bus, PhaseSet::abc(), p_per_phase,
                     pf_q_ratio, alpha, beta);
  ld.connection = Connection::kDelta;
  return ld;
}

}  // namespace

Network ieee13() {
  Network net;

  auto add_bus = [&](std::string name, PhaseSet ph) {
    Bus b;
    b.name = std::move(name);
    b.phases = ph;
    return net.add_bus(std::move(b));
  };

  // --- Buses (29). Trunk and primary laterals follow the IEEE13 layout;
  // the s*/d* buses are secondary service or extension buses.
  const PhaseSet abc = PhaseSet::abc();
  const int source = add_bus("sourcebus", abc);
  const int rg60 = add_bus("rg60", abc);
  const int b632 = add_bus("632", abc);
  const int b670 = add_bus("670", abc);  // distributed-load midpoint
  const int b671 = add_bus("671", abc);
  const int b680 = add_bus("680", abc);
  const int s680a = add_bus("s680a", abc);
  const int s680b = add_bus("s680b", abc);
  const int b633 = add_bus("633", abc);
  const int b634 = add_bus("634", abc);
  const int s634a = add_bus("s634a", abc);
  const int s634b = add_bus("s634b", abc);
  const int b645 = add_bus("645", PhaseSet::bc());
  const int b646 = add_bus("646", PhaseSet::bc());
  const int s646a = add_bus("s646a", PhaseSet::bc());
  const int s646b = add_bus("s646b", PhaseSet::bc());
  const int b684 = add_bus("684", PhaseSet::ac());
  const int b611 = add_bus("611", PhaseSet::c());
  const int s611a = add_bus("s611a", PhaseSet::c());
  const int s611b = add_bus("s611b", PhaseSet::c());
  const int b652 = add_bus("652", PhaseSet::a());
  const int s652 = add_bus("s652", PhaseSet::a());
  const int b692 = add_bus("692", abc);
  const int b675 = add_bus("675", abc);
  const int s675a = add_bus("s675a", abc);
  const int s675b = add_bus("s675b", abc);
  const int d670a = add_bus("d670a", PhaseSet::b());
  const int d670b = add_bus("d670b", PhaseSet::b());
  const int d670c = add_bus("d670c", PhaseSet::b());

  // Pin the substation voltage to 1.0 pu (squared).
  {
    Bus& b = net.bus_mutable(source);
    b.w_min = PerPhase<double>::uniform(1.0);
    b.w_max = PerPhase<double>::uniform(1.0);
  }

  // --- Lines (28).
  // Substation regulator boosts the feeder side by ~2.5% (tap on |V|^2).
  net.add_line(make_line("reg650", source, rg60, abc, kXfmr, 1.0, true,
                         1.0 / (1.025 * 1.025)));
  net.add_line(make_line("650-632", rg60, b632, abc, kTrunk, 2.0));
  net.add_line(make_line("632-670", b632, b670, abc, kTrunk, 0.67));
  net.add_line(make_line("670-671", b670, b671, abc, kTrunk, 1.33));
  net.add_line(make_line("671-680", b671, b680, abc, kTrunk, 1.0));
  net.add_line(make_line("680-s680a", b680, s680a, abc, kXfmr, 1.0, true));
  net.add_line(make_line("s680a-s680b", s680a, s680b, abc, kLateral, 0.3));
  net.add_line(make_line("632-633", b632, b633, abc, kLateral, 0.5));
  net.add_line(make_line("xf633-634", b633, b634, abc, kXfmr, 1.0, true));
  net.add_line(make_line("634-s634a", b634, s634a, abc, kLateral, 0.2));
  net.add_line(make_line("s634a-s634b", s634a, s634b, abc, kLateral, 0.2));
  net.add_line(make_line("632-645", b632, b645, PhaseSet::bc(), kLateral, 0.5));
  net.add_line(make_line("645-646", b645, b646, PhaseSet::bc(), kLateral, 0.3));
  net.add_line(
      make_line("646-s646a", b646, s646a, PhaseSet::bc(), kXfmr, 1.0, true));
  net.add_line(
      make_line("s646a-s646b", s646a, s646b, PhaseSet::bc(), kLateral, 0.2));
  net.add_line(make_line("671-684", b671, b684, PhaseSet::ac(), kLateral, 0.3));
  net.add_line(make_line("684-611", b684, b611, PhaseSet::c(), kLateral, 0.3));
  net.add_line(
      make_line("611-s611a", b611, s611a, PhaseSet::c(), kXfmr, 1.0, true));
  net.add_line(
      make_line("s611a-s611b", s611a, s611b, PhaseSet::c(), kLateral, 0.15));
  net.add_line(
      make_line("684-652", b684, b652, PhaseSet::a(), kUnderground, 0.8));
  net.add_line(
      make_line("652-s652", b652, s652, PhaseSet::a(), kXfmr, 1.0, true));
  net.add_line(make_line("sw671-692", b671, b692, abc, kSwitch, 1.0));
  net.add_line(make_line("692-675", b692, b675, abc, kUnderground, 0.5));
  net.add_line(make_line("675-s675a", b675, s675a, abc, kXfmr, 1.0, true));
  net.add_line(make_line("s675a-s675b", s675a, s675b, abc, kLateral, 0.25));
  net.add_line(
      make_line("670-d670a", b670, d670a, PhaseSet::b(), kLateral, 0.4));
  net.add_line(
      make_line("d670a-d670b", d670a, d670b, PhaseSet::b(), kLateral, 0.3));
  net.add_line(
      make_line("d670b-d670c", d670b, d670c, PhaseSet::b(), kLateral, 0.3));

  // --- Substation source (the only unbounded generator).
  {
    Generator g;
    g.name = "substation";
    g.bus = source;
    g.phases = abc;
    g.p_min = PerPhase<double>::uniform(0.0);
    g.p_max = PerPhase<double>::uniform(kInfinity);
    g.q_min = PerPhase<double>::uniform(-kInfinity);
    g.q_max = PerPhase<double>::uniform(kInfinity);
    net.add_generator(std::move(g));
  }
  // A small three-phase PV plant at 680's secondary (DER).
  {
    Generator g;
    g.name = "pv680";
    g.bus = s680b;
    g.phases = abc;
    g.p_min = PerPhase<double>::uniform(0.0);
    g.p_max = PerPhase<double>::uniform(0.02);
    g.q_min = PerPhase<double>::uniform(-0.01);
    g.q_max = PerPhase<double>::uniform(0.01);
    net.add_generator(std::move(g));
  }

  // --- Loads. Active powers in pu (5 MVA base); alpha/beta encode constant
  // power (0), constant current (1), constant impedance (2) as labeled in
  // the IEEE13 data. Mix of wye and delta mirrors the test feeder.
  net.add_load(wye_load("ld634", s634b, abc, 0.032, 0.58, 0.0, 0.0));
  net.add_load(wye_load("ld645", b645, PhaseSet::bc(), 0.034, 0.73, 0.0, 0.0));
  net.add_load(
      wye_load("ld646", s646b, PhaseSet::bc(), 0.046, 0.57, 2.0, 2.0));
  net.add_load(delta_load("ld671", b671, 0.077, 0.58, 0.0, 0.0));
  net.add_load(wye_load("ld675", s675b, abc, 0.056, 0.44, 0.0, 0.0));
  net.add_load(wye_load("ld692", b692, abc, 0.0113, 0.45, 1.0, 1.0));
  net.add_load(wye_load("ld611", s611b, PhaseSet::c(), 0.034, 0.47, 1.0, 1.0));
  net.add_load(wye_load("ld652", s652, PhaseSet::a(), 0.0257, 0.67, 2.0, 2.0));
  net.add_load(delta_load("ld670", b670, 0.0113, 0.55, 0.0, 0.0));
  net.add_load(
      wye_load("ld670b", d670c, PhaseSet::b(), 0.0133, 0.57, 1.0, 1.0));
  net.add_load(wye_load("ld680", s680b, abc, 0.008, 0.5, 2.0, 2.0));

  net.validate();
  return net;
}

}  // namespace dopf::feeders
