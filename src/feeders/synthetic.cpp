#include "feeders/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>
#include <vector>

namespace dopf::feeders {

using network::Bus;
using network::Connection;
using network::Generator;
using network::kInfinity;
using network::Line;
using network::Load;
using network::Network;
using network::PerPhase;
using network::Phase;
using network::PhaseMatrix;
using network::PhaseSet;

namespace {

PhaseMatrix impedance_block(PhaseSet ph, double self, double mutual) {
  PhaseMatrix m;
  for (Phase p : ph.phases()) {
    for (Phase q : ph.phases()) m(p, q) = (p == q) ? self : mutual;
  }
  return m;
}

Phase random_phase_of(PhaseSet set, std::mt19937_64& rng) {
  std::vector<Phase> opts;
  for (Phase p : set.phases()) opts.push_back(p);
  return opts[std::uniform_int_distribution<std::size_t>(0, opts.size() - 1)(
      rng)];
}

/// Drop one random phase of a multi-phase set.
PhaseSet drop_one_phase(PhaseSet set, std::mt19937_64& rng) {
  const Phase victim = random_phase_of(set, rng);
  PhaseSet out;
  for (Phase p : set.phases()) {
    if (p != victim) out = out.with(p);
  }
  return out;
}

}  // namespace

SyntheticSpec ieee123_spec() {
  SyntheticSpec s;
  s.num_buses = 147;
  s.num_leaves = 43;
  s.num_extra_lines = 0;
  s.keep_phases_prob = 0.5;
  s.two_phase_prob = 0.15;
  s.load_density = 0.6;
  s.delta_prob = 0.2;
  s.num_der = 3;
  s.seed = 123123;
  return s;
}

SyntheticSpec ieee8500_spec() {
  SyntheticSpec s;
  s.num_buses = 11932;
  s.num_leaves = 1222;
  s.num_extra_lines = 14291 - (11932 - 1);
  // The 8500-node feeder is dominated by single-phase secondaries
  // (Table IV: mean m_s = 3.44 vs 9.08 for the 13-bus system).
  s.keep_phases_prob = 0.12;
  s.two_phase_prob = 0.1;
  // Load sits at service transformers: a modest fraction of graph nodes,
  // each carrying a realistically sized load.
  s.load_density = 0.1;
  s.delta_prob = 0.15;
  s.transformer_prob = 0.25;
  s.num_der = 20;
  s.seed = 85008500;
  return s;
}

SyntheticSpec ieee8500_mini_spec() {
  SyntheticSpec s = ieee8500_spec();
  s.num_buses = 1194;
  s.num_leaves = 123;
  s.num_extra_lines = 236;
  s.num_der = 4;
  s.seed = 850850;
  return s;
}

Network synthetic_feeder(const SyntheticSpec& spec) {
  const int n = spec.num_buses;
  const int leaves_target = spec.num_leaves;
  if (n < 3) {
    throw std::invalid_argument("synthetic_feeder: need at least 3 buses");
  }
  if (leaves_target < 1 || leaves_target > n - 2) {
    throw std::invalid_argument(
        "synthetic_feeder: need 1 <= num_leaves <= num_buses - 2");
  }
  std::mt19937_64 rng(spec.seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  Network net;

  // ---- Grow the tree with an exact leaf count.
  //
  // Node 1 attaches to the root; afterwards each attachment either targets a
  // current (non-root) leaf — leaf count unchanged, the leaf becomes
  // internal — or an internal node — leaf count + 1. Exactly
  // (leaves_target - 1) of the (n - 2) remaining attachments are scheduled
  // as the latter, at random positions.
  std::vector<PhaseSet> bus_phases(n);
  std::vector<int> parent(n, -1);

  bus_phases[0] = PhaseSet::abc();
  {
    Bus root;
    root.name = "sub";
    root.phases = PhaseSet::abc();
    root.w_min = PerPhase<double>::uniform(1.0);
    root.w_max = PerPhase<double>::uniform(1.0);
    net.add_bus(std::move(root));
  }

  auto child_phases = [&](PhaseSet parent_ph) {
    if (parent_ph.count() == 1) return parent_ph;
    if (unit(rng) < spec.keep_phases_prob) {
      if (parent_ph.count() == 3 && unit(rng) < spec.two_phase_prob) {
        return drop_one_phase(parent_ph, rng);
      }
      return parent_ph;
    }
    return PhaseSet::single(random_phase_of(parent_ph, rng));
  };

  std::vector<bool> grow_internal(std::max(0, n - 2), false);
  std::fill(grow_internal.begin(),
            grow_internal.begin() + (leaves_target - 1), true);
  std::shuffle(grow_internal.begin(), grow_internal.end(), rng);

  std::vector<int> leaf_nodes;      // current non-root leaves
  std::vector<int> internal_nodes;  // root + every node with a child
  internal_nodes.push_back(0);

  for (int i = 1; i < n; ++i) {
    int p;
    if (i == 1) {
      p = 0;
    } else if (grow_internal[i - 2] || leaf_nodes.empty()) {
      p = internal_nodes[std::uniform_int_distribution<std::size_t>(
          0, internal_nodes.size() - 1)(rng)];
    } else {
      const std::size_t k = std::uniform_int_distribution<std::size_t>(
          0, leaf_nodes.size() - 1)(rng);
      p = leaf_nodes[k];
      leaf_nodes[k] = leaf_nodes.back();
      leaf_nodes.pop_back();
      internal_nodes.push_back(p);
    }
    parent[i] = p;
    // The trunk section off the substation carries all three phases (also
    // required so every root-bus voltage variable is covered by a line
    // component); everything below may drop phases.
    bus_phases[i] = (i == 1) ? PhaseSet::abc() : child_phases(bus_phases[p]);
    leaf_nodes.push_back(i);

    Bus b;
    b.name = "n" + std::to_string(i);
    b.phases = bus_phases[i];
    b.w_min = PerPhase<double>::uniform(0.95 * 0.95);
    b.w_max = PerPhase<double>::uniform(1.05 * 1.05);
    // Occasional capacitor bank.
    if (bus_phases[i].count() == 3 && unit(rng) < 0.03) {
      b.b_shunt = PerPhase<double>::uniform(0.005);
    }
    net.add_bus(std::move(b));
  }

  // ---- Decide load placement and magnitudes first: the conductor sizing
  // below needs the downstream load each line must carry.
  std::uniform_real_distribution<double> load_mag(0.4 * spec.load_unit,
                                                  1.6 * spec.load_unit);
  struct PlannedLoad {
    int bus = -1;
    Connection connection = Connection::kWye;
    PerPhase<double> p, q;
    double zip = 0.0;
  };
  std::vector<PlannedLoad> planned;
  std::vector<double> bus_load_total(n, 0.0);
  int delta_count = 0;
  std::vector<int> three_phase_unloaded;

  for (int i = 1; i < n; ++i) {
    if (unit(rng) >= spec.load_density) {
      if (bus_phases[i].count() == 3) three_phase_unloaded.push_back(i);
      continue;
    }
    PlannedLoad pl;
    pl.bus = i;
    pl.connection =
        (bus_phases[i].count() == 3 && unit(rng) < spec.delta_prob)
            ? Connection::kDelta
            : Connection::kWye;
    if (pl.connection == Connection::kDelta) ++delta_count;
    const double roll = unit(rng);
    if (roll < spec.const_current_prob) {
      pl.zip = 1.0;
    } else if (roll < spec.const_current_prob + spec.const_impedance_prob) {
      pl.zip = 2.0;
    }
    for (Phase p : bus_phases[i].phases()) {
      pl.p[p] = load_mag(rng);
      pl.q[p] = pl.p[p] * (0.3 + 0.4 * unit(rng));
      bus_load_total[i] += pl.p[p];
    }
    planned.push_back(pl);
  }
  // Guarantee a minimum number of delta loads on spare three-phase buses so
  // the delta linearization (4f)-(4j) is exercised at every scale.
  for (int i : three_phase_unloaded) {
    if (delta_count >= spec.min_delta_loads) break;
    PlannedLoad pl;
    pl.bus = i;
    pl.connection = Connection::kDelta;
    for (Phase p : PhaseSet::abc().phases()) {
      pl.p[p] = load_mag(rng);
      pl.q[p] = pl.p[p] * (0.3 + 0.4 * unit(rng));
      bus_load_total[i] += pl.p[p];
    }
    planned.push_back(pl);
    ++delta_count;
  }

  // ---- Conductor sizing. Downstream load per tree line (children always
  // have larger indices, so one reverse sweep suffices) plus the tree depth
  // give a per-line resistance that keeps the worst root-to-leaf voltage
  // drop within spec.drop_budget at nominal load — the rule real feeders
  // are engineered to.
  std::vector<double> subtree_load(bus_load_total);
  std::vector<int> depth(n, 0);
  int depth_max = 1;
  for (int i = 1; i < n; ++i) {
    depth[i] = depth[parent[i]] + 1;
    depth_max = std::max(depth_max, depth[i]);
  }
  for (int i = n - 1; i >= 1; --i) subtree_load[parent[i]] += subtree_load[i];

  const double per_line_drop =
      spec.drop_budget / static_cast<double>(depth_max);
  std::uniform_real_distribution<double> length(0.5, 1.5);
  auto sized_resistance = [&](double flow_per_phase) {
    // The squared-voltage drop over a line per (5c) is ~ 2 r p + 2 x q plus
    // mutual-coupling terms; with x ~ 2r and q ~ 0.5p plus cross-phase
    // terms, a conservative total is ~ 8 r p. Size r so each line stays
    // within its share of the budget.
    return per_line_drop /
           (8.0 * std::max(flow_per_phase, 0.5 * spec.load_unit));
  };

  for (int i = 1; i < n; ++i) {
    const PhaseSet ph = bus_phases[i];
    Line l;
    l.name = "l" + std::to_string(i);
    l.from_bus = parent[i];
    l.to_bus = i;
    l.phases = ph;
    const bool xfmr = unit(rng) < spec.transformer_prob;
    const double r_self =
        sized_resistance(subtree_load[i] /
                         static_cast<double>(std::max<std::size_t>(
                             1, ph.count()))) *
        length(rng);
    if (xfmr) {
      l.is_transformer = true;
      l.r = impedance_block(ph, 0.5 * r_self, 0.0);
      l.x = impedance_block(ph, 2.5 * r_self, 0.0);
      // Nominal tap: a random off-nominal tap would demand w_i - tau*w_j
      // offsets that (5c) can only absorb through enormous circulating
      // flows (offset / 2r with tiny transformer r), which is unphysical
      // and wrecks ADMM conditioning; real regulators hold their secondary
      // near nominal.
      for (Phase p : ph.phases()) l.tap_ratio[p] = 1.0;
    } else {
      l.r = impedance_block(ph, r_self, 0.25 * r_self);
      l.x = impedance_block(ph, 2.0 * r_self, 0.6 * r_self);
    }
    net.add_line(std::move(l));
  }

  // ---- Extra (parallel / tie) lines between internal nodes, preserving
  // the leaf count. Endpoints must share at least one phase; ties are sized
  // like lightly loaded laterals.
  int added = 0;
  int attempts = 0;
  std::uniform_int_distribution<std::size_t> pick_internal(
      0, internal_nodes.size() - 1);
  while (added < spec.num_extra_lines && attempts < spec.num_extra_lines * 50) {
    ++attempts;
    const int u = internal_nodes[pick_internal(rng)];
    const int v = internal_nodes[pick_internal(rng)];
    if (u == v) continue;
    const PhaseSet common = bus_phases[u].intersect(bus_phases[v]);
    if (common.empty()) continue;
    Line l;
    l.name = "tie" + std::to_string(added);
    l.from_bus = u;
    l.to_bus = v;
    l.phases = common;
    const double r_self = sized_resistance(spec.load_unit) * length(rng);
    l.r = impedance_block(common, r_self, 0.25 * r_self);
    l.x = impedance_block(common, 2.0 * r_self, 0.6 * r_self);
    net.add_line(std::move(l));
    ++added;
  }
  if (added < spec.num_extra_lines) {
    throw std::runtime_error(
        "synthetic_feeder: could not place the requested extra lines");
  }

  // ---- Substation generator at the root.
  {
    Generator g;
    g.name = "substation";
    g.bus = 0;
    g.phases = PhaseSet::abc();
    g.p_min = PerPhase<double>::uniform(0.0);
    g.p_max = PerPhase<double>::uniform(kInfinity);
    g.q_min = PerPhase<double>::uniform(-kInfinity);
    g.q_max = PerPhase<double>::uniform(kInfinity);
    net.add_generator(std::move(g));
  }
  // Distributed generators at random non-root buses, each able to cover a
  // few typical loads.
  std::uniform_int_distribution<int> pick_bus(1, n - 1);
  for (int d = 0; d < spec.num_der; ++d) {
    const int bus = pick_bus(rng);
    Generator g;
    g.name = "der" + std::to_string(d);
    g.bus = bus;
    g.phases = bus_phases[bus];
    g.p_min = PerPhase<double>::uniform(0.0);
    const double cap = spec.load_unit * (1.0 + 3.0 * unit(rng));
    g.p_max = PerPhase<double>::uniform(cap);
    g.q_min = PerPhase<double>::uniform(-0.5 * cap);
    g.q_max = PerPhase<double>::uniform(0.5 * cap);
    net.add_generator(std::move(g));
  }

  // ---- Materialize the planned loads.
  for (const PlannedLoad& pl : planned) {
    Load ld;
    ld.name = (pl.connection == Connection::kDelta ? "ldD" : "ld") +
              std::to_string(pl.bus);
    ld.bus = pl.bus;
    ld.phases = pl.connection == Connection::kDelta ? PhaseSet::abc()
                                                    : bus_phases[pl.bus];
    ld.connection = pl.connection;
    for (Phase p : ld.phases.phases()) {
      ld.p_ref[p] = pl.p[p];
      ld.q_ref[p] = pl.q[p];
      ld.alpha[p] = pl.zip;
      ld.beta[p] = pl.zip;
    }
    net.add_load(std::move(ld));
  }

  net.validate();
  return net;
}

}  // namespace dopf::feeders
