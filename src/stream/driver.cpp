#include "stream/driver.hpp"

#include <cinttypes>
#include <cstdio>
#include <ostream>

#include "core/scenario_binding.hpp"
#include "core/solve_model.hpp"
#include "opf/model.hpp"
#include "robust/preflight.hpp"
#include "runtime/checkpoint.hpp"
#include "verify/codec.hpp"

namespace dopf::stream {

namespace {

std::string hex_u64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

}  // namespace

StreamDriver::StreamDriver(const dopf::network::Network& base,
                           const StreamProfile& profile,
                           StreamOptions options)
    : base_(&base), profile_(&profile), options_(std::move(options)) {
  if (profile.num_steps <= 0) {
    throw StreamError(0, "profile has no steps");
  }
  if (options_.checkpoint_at_step >= 0) {
    if (options_.checkpoint_path.empty()) {
      throw StreamError(options_.checkpoint_at_step,
                        "checkpoint step set but no checkpoint path");
    }
    if (options_.checkpoint_at_step >= profile.num_steps) {
      throw StreamError(options_.checkpoint_at_step,
                        "checkpoint step out of range (steps " +
                            std::to_string(profile.num_steps) + ")");
    }
  }
}

StreamResult StreamDriver::run() {
  const auto base_model = dopf::opf::build_model(*base_);
  auto base_problem =
      dopf::opf::decompose(*base_, base_model, options_.decompose);

  dopf::core::SolveModel model(base_problem, options_.admm.projector);
  dopf::core::ScenarioBinding binding(model);
  dopf::core::SolveSession session(binding, options_.admm);
  if (options_.make_backend) session.set_backend(options_.make_backend());

  dopf::robust::PreflightOptions popt;
  const bool preflight_on = options_.preflight != "off";
  if (preflight_on) {
    popt.policy = dopf::robust::parse_policy(options_.preflight);
    popt.decompose = options_.decompose;
  }

  StreamResult result;
  if (!options_.resume_path.empty()) {
    // Resume: profile blocks are absolute against base, so the binding is
    // fast-forwarded with ONE rebind to the checkpoint step's scenario;
    // the resulting pack is bit-identical to the uninterrupted run's pack
    // at that step (ScenarioBinding contract), which the checkpoint's
    // model/scenario fingerprints verify before any state is restored.
    const auto ck = dopf::runtime::load_checkpoint(options_.resume_path);
    const int k = ck.iteration;  // stream checkpoints store the step index
    if (k < 0 || k >= profile_->num_steps) {
      throw StreamError(k, "checkpoint step out of range (steps " +
                               std::to_string(profile_->num_steps) + ")");
    }
    if (k + 1 >= profile_->num_steps) {
      throw StreamError(k, "checkpoint taken at the final step; "
                           "nothing to resume");
    }
    const auto net_k = network_at_step(*base_, *profile_, k);
    auto problem_k =
        dopf::opf::decompose(net_k, dopf::opf::build_model(net_k),
                             options_.decompose);
    try {
      session.rebind(problem_k);
      ck.validate_for(session.solver(), profile_->name);
    } catch (const std::invalid_argument& e) {
      throw StreamError(k, std::string("layout change rejected: ") +
                               e.what());
    } catch (const dopf::runtime::CheckpointError& e) {
      throw StreamError(k, e.what());
    }
    session.solver().restore_state(0, ck.rho, ck.x, ck.z, ck.z_prev,
                                   ck.lambda);
    session.mark_warm();
    result.first_step = k + 1;
  }

  for (int k = result.first_step; k < profile_->num_steps; ++k) {
    const auto net_k = network_at_step(*base_, *profile_, k);
    const auto model_k = dopf::opf::build_model(net_k);
    auto problem_k = dopf::opf::decompose(net_k, model_k, options_.decompose);

    StreamStepRecord rec;
    rec.step = k;

    if (preflight_on) {
      const auto pre = dopf::robust::run_scenario_preflight(
          model.problem(), problem_k, popt);
      rec.preflight_ran = true;
      rec.preflight_reused = pre.scenario_components_reused;
      if (!pre.accepted) throw StreamPreflightError(k, pre.rejection);
    }

    try {
      rec.rebind = session.rebind(problem_k);
    } catch (const std::invalid_argument& e) {
      throw StreamError(k, std::string("layout change rejected: ") +
                               e.what());
    }
    rec.switched = rec.rebind.refactorizations > 0;
    if (options_.reset_on_switch && rec.switched) session.reset();

    const auto res = session.solve();
    rec.status = res.status;
    rec.converged = res.converged;
    rec.warm_started = res.warm_started;
    rec.iterations = res.iterations;
    rec.watchdog_stalls = res.watchdog.stalls;
    rec.objective = res.objective;
    rec.primal_residual = res.primal_residual;
    rec.dual_residual = res.dual_residual;
    rec.model_fp = binding.model_fingerprint();
    rec.scenario_fp = binding.scenario_fingerprint();
    result.all_converged = result.all_converged && res.converged;
    if (res.warm_started) result.warm_iterations += res.iterations;

    if (options_.cold_compare) {
      // Throwaway session on the SAME binding: identical pack and
      // factorizations, fresh iterate state — the cold baseline a warm
      // step is measured against.
      dopf::core::SolveSession cold(binding, options_.admm);
      if (options_.make_backend) cold.set_backend(options_.make_backend());
      rec.cold_iterations = cold.solve().iterations;
      result.cold_iterations += rec.cold_iterations;
    }

    if (k == options_.checkpoint_at_step) {
      dopf::runtime::save_checkpoint(
          dopf::runtime::AdmmCheckpoint::capture(session.solver(), k,
                                                 profile_->name),
          options_.checkpoint_path);
    }
    result.steps.push_back(rec);
  }

  result.session = session.stats();
  result.refactorizations = model.refactorizations();
  return result;
}

std::string record_line(const StreamStepRecord& rec) {
  std::string line = "step " + std::to_string(rec.step);
  line += " status ";
  line += dopf::core::to_string(rec.status);
  line += " converged " + std::to_string(rec.converged ? 1 : 0);
  line += " warm " + std::to_string(rec.warm_started ? 1 : 0);
  line += " switched " + std::to_string(rec.switched ? 1 : 0);
  line += " iterations " + std::to_string(rec.iterations);
  line += " cold_iterations " + std::to_string(rec.cold_iterations);
  line += " refactorizations " + std::to_string(rec.rebind.refactorizations);
  line += " rhs_rebinds " + std::to_string(rec.rebind.rhs_rebinds);
  line += " unchanged " + std::to_string(rec.rebind.unchanged);
  line += " preflight_reused ";
  line += rec.preflight_ran ? std::to_string(rec.preflight_reused) : "-";
  line += " watchdog_stalls " + std::to_string(rec.watchdog_stalls);
  line += " objective " + dopf::verify::hex_double(rec.objective);
  line += " primal " + dopf::verify::hex_double(rec.primal_residual);
  line += " dual " + dopf::verify::hex_double(rec.dual_residual);
  line += " model_fp " + hex_u64(rec.model_fp);
  line += " scenario_fp " + hex_u64(rec.scenario_fp);
  return line;
}

void write_records(const StreamResult& result, const StreamProfile& profile,
                   std::ostream& out) {
  out << "stream " << profile.name << " steps " << profile.num_steps
      << " first_step " << result.first_step << " dt "
      << dopf::verify::hex_double(profile.dt_seconds) << '\n';
  for (const StreamStepRecord& rec : result.steps) {
    out << record_line(rec) << '\n';
  }
  const auto& st = result.session;
  out << "session solves " << st.solves << " cold " << st.cold_solves
      << " warm " << st.warm_solves << " precompute_reuses "
      << st.precompute_reuses << " refactorizations " << st.refactorizations
      << " rhs_rebinds " << st.rhs_rebinds << " model_refactorizations "
      << result.refactorizations << " converged "
      << (result.all_converged ? 1 : 0) << '\n';
}

}  // namespace dopf::stream
