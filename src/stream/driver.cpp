#include "stream/driver.hpp"

#include <cinttypes>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>

#include "core/scenario_binding.hpp"
#include "core/solve_model.hpp"
#include "opf/model.hpp"
#include "robust/preflight.hpp"
#include "runtime/checkpoint.hpp"
#include "verify/codec.hpp"

namespace dopf::stream {

namespace {

std::string hex_u64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

}  // namespace

StreamDriver::StreamDriver(const dopf::network::Network& base,
                           const StreamProfile& profile,
                           StreamOptions options)
    : base_(&base), profile_(&profile), options_(std::move(options)) {
  if (profile.num_steps <= 0) {
    throw StreamError(0, "profile has no steps");
  }
  if (options_.checkpoint_at_step >= 0) {
    if (options_.checkpoint_path.empty()) {
      throw StreamError(options_.checkpoint_at_step,
                        "checkpoint step set but no checkpoint path");
    }
    if (options_.checkpoint_at_step >= profile.num_steps) {
      throw StreamError(options_.checkpoint_at_step,
                        "checkpoint step out of range (steps " +
                            std::to_string(profile.num_steps) + ")");
    }
  }
  if (options_.checkpoint_every_steps > 0 && options_.checkpoint_path.empty()) {
    throw StreamError(0, "checkpoint cadence set but no checkpoint path");
  }
}

StreamResult StreamDriver::run() {
  const auto base_model = dopf::opf::build_model(*base_);
  auto base_problem =
      dopf::opf::decompose(*base_, base_model, options_.decompose);

  // Thread the step-boundary token into the per-step solves too, so a
  // cancellation raised mid-solve stops within one check cadence instead
  // of waiting for the step to finish.
  if (options_.cancel != nullptr && options_.admm.cancel == nullptr) {
    options_.admm.cancel = options_.cancel;
  }

  dopf::core::SolveModel model(base_problem, options_.admm.projector);
  dopf::core::ScenarioBinding binding(model);
  dopf::core::SolveSession session(binding, options_.admm);
  if (options_.make_backend) session.set_backend(options_.make_backend());

  dopf::robust::PreflightOptions popt;
  const bool preflight_on = options_.preflight != "off";
  if (preflight_on) {
    popt.policy = dopf::robust::parse_policy(options_.preflight);
    popt.decompose = options_.decompose;
  }

  StreamResult result;
  if (!options_.resume_path.empty()) {
    // Resume: profile blocks are absolute against base, so the binding is
    // fast-forwarded with ONE rebind to the checkpoint step's scenario;
    // the resulting pack is bit-identical to the uninterrupted run's pack
    // at that step (ScenarioBinding contract), which the checkpoint's
    // model/scenario fingerprints verify before any state is restored.
    // A/B-store resumes prefer the newest valid generation and fall back
    // to the previous one (with a diagnostic) when the newest is torn.
    auto loaded =
        dopf::runtime::resolve_checkpoint(options_.resume_path,
                                          options_.durable);
    if (loaded.fell_back) result.resume_fallback = loaded.diagnostic;
    const auto ck = std::move(loaded.checkpoint);
    const int k = ck.iteration;  // stream checkpoints store the step index
    if (k < 0 || k >= profile_->num_steps) {
      throw StreamError(k, "checkpoint step out of range (steps " +
                               std::to_string(profile_->num_steps) + ")");
    }
    if (k + 1 >= profile_->num_steps) {
      throw StreamError(k, "checkpoint taken at the final step; "
                           "nothing to resume");
    }
    const auto net_k = network_at_step(*base_, *profile_, k);
    auto problem_k =
        dopf::opf::decompose(net_k, dopf::opf::build_model(net_k),
                             options_.decompose);
    try {
      session.rebind(problem_k);
      ck.validate_for(session.solver(), profile_->name);
    } catch (const std::invalid_argument& e) {
      throw StreamError(k, std::string("layout change rejected: ") +
                               e.what());
    } catch (const dopf::runtime::CheckpointError& e) {
      throw StreamError(k, e.what());
    }
    session.solver().restore_state(0, ck.rho, ck.x, ck.z, ck.z_prev,
                                   ck.lambda);
    session.mark_warm();
    result.first_step = k + 1;
  }

  // The A/B checkpoint store for the periodic cadence and for the final
  // on-cancel checkpoint; `last_good` is the state after the most recent
  // COMPLETED step (a mid-solve cancellation must not checkpoint the
  // half-iterated state it interrupted).
  dopf::runtime::CheckpointStore store(options_.checkpoint_path,
                                       options_.durable);
  dopf::runtime::AdmmCheckpoint last_good;
  bool have_last_good = false;
  const bool durable_checkpoints = !options_.checkpoint_path.empty();
  auto cancelled_now = [&] {
    return options_.cancel != nullptr && options_.cancel->cancelled();
  };
  auto finish_cancelled = [&] {
    result.cancelled = true;
    result.cancel_reason =
        options_.cancel != nullptr ? options_.cancel->reason() : "cancelled";
    if (durable_checkpoints && have_last_good) {
      result.io += store.save(last_good);
    }
  };

  for (int k = result.first_step; k < profile_->num_steps; ++k) {
    if (cancelled_now()) {
      finish_cancelled();
      break;
    }
    const auto net_k = network_at_step(*base_, *profile_, k);
    const auto model_k = dopf::opf::build_model(net_k);
    auto problem_k = dopf::opf::decompose(net_k, model_k, options_.decompose);

    StreamStepRecord rec;
    rec.step = k;

    if (preflight_on) {
      const auto pre = dopf::robust::run_scenario_preflight(
          model.problem(), problem_k, popt);
      rec.preflight_ran = true;
      rec.preflight_reused = pre.scenario_components_reused;
      if (!pre.accepted) throw StreamPreflightError(k, pre.rejection);
    }

    try {
      rec.rebind = session.rebind(problem_k);
    } catch (const std::invalid_argument& e) {
      throw StreamError(k, std::string("layout change rejected: ") +
                               e.what());
    }
    rec.switched = rec.rebind.refactorizations > 0;
    if (options_.reset_on_switch && rec.switched) session.reset();

    const auto res = session.solve();
    if (res.status == dopf::core::AdmmStatus::kCancelled) {
      // The half-solved step is discarded: recorded steps must stay a
      // byte-identical prefix of the uninterrupted run, and the durable
      // checkpoint must describe a completed step.
      finish_cancelled();
      break;
    }
    rec.status = res.status;
    rec.converged = res.converged;
    rec.warm_started = res.warm_started;
    rec.iterations = res.iterations;
    rec.watchdog_stalls = res.watchdog.stalls;
    rec.objective = res.objective;
    rec.primal_residual = res.primal_residual;
    rec.dual_residual = res.dual_residual;
    rec.model_fp = binding.model_fingerprint();
    rec.scenario_fp = binding.scenario_fingerprint();
    result.all_converged = result.all_converged && res.converged;
    if (res.warm_started) result.warm_iterations += res.iterations;

    if (options_.cold_compare) {
      // Throwaway session on the SAME binding: identical pack and
      // factorizations, fresh iterate state — the cold baseline a warm
      // step is measured against.
      dopf::core::SolveSession cold(binding, options_.admm);
      if (options_.make_backend) cold.set_backend(options_.make_backend());
      const auto cold_res = cold.solve();
      if (cold_res.status == dopf::core::AdmmStatus::kCancelled) {
        finish_cancelled();
        break;
      }
      rec.cold_iterations = cold_res.iterations;
      result.cold_iterations += rec.cold_iterations;
    }

    if (durable_checkpoints) {
      last_good = dopf::runtime::AdmmCheckpoint::capture(session.solver(), k,
                                                         profile_->name);
      have_last_good = true;
      if (k == options_.checkpoint_at_step) {
        // Single-file layout at the exact requested path (the historical
        // contract), atomically replaced.
        result.io += dopf::runtime::save_checkpoint(
            last_good, options_.checkpoint_path, options_.durable);
      }
      if (options_.checkpoint_every_steps > 0 &&
          (k + 1 - result.first_step) % options_.checkpoint_every_steps == 0) {
        result.io += store.save(last_good);
      }
    }
    result.steps.push_back(rec);
  }

  result.session = session.stats();
  result.refactorizations = model.refactorizations();
  return result;
}

std::string record_line(const StreamStepRecord& rec) {
  std::string line = "step " + std::to_string(rec.step);
  line += " status ";
  line += dopf::core::to_string(rec.status);
  line += " converged " + std::to_string(rec.converged ? 1 : 0);
  line += " warm " + std::to_string(rec.warm_started ? 1 : 0);
  line += " switched " + std::to_string(rec.switched ? 1 : 0);
  line += " iterations " + std::to_string(rec.iterations);
  line += " cold_iterations " + std::to_string(rec.cold_iterations);
  line += " refactorizations " + std::to_string(rec.rebind.refactorizations);
  line += " rhs_rebinds " + std::to_string(rec.rebind.rhs_rebinds);
  line += " unchanged " + std::to_string(rec.rebind.unchanged);
  line += " preflight_reused ";
  line += rec.preflight_ran ? std::to_string(rec.preflight_reused) : "-";
  line += " watchdog_stalls " + std::to_string(rec.watchdog_stalls);
  line += " objective " + dopf::verify::hex_double(rec.objective);
  line += " primal " + dopf::verify::hex_double(rec.primal_residual);
  line += " dual " + dopf::verify::hex_double(rec.dual_residual);
  line += " model_fp " + hex_u64(rec.model_fp);
  line += " scenario_fp " + hex_u64(rec.scenario_fp);
  return line;
}

void write_records(const StreamResult& result, const StreamProfile& profile,
                   std::ostream& out) {
  std::ostringstream body;
  body << "stream " << profile.name << " steps " << profile.num_steps
       << " first_step " << result.first_step << " dt "
       << dopf::verify::hex_double(profile.dt_seconds) << '\n';
  for (const StreamStepRecord& rec : result.steps) {
    body << record_line(rec) << '\n';
  }
  const auto& st = result.session;
  body << "session solves " << st.solves << " cold " << st.cold_solves
       << " warm " << st.warm_solves << " precompute_reuses "
       << st.precompute_reuses << " refactorizations " << st.refactorizations
       << " rhs_rebinds " << st.rhs_rebinds << " model_refactorizations "
       << result.refactorizations << " converged "
       << (result.all_converged ? 1 : 0) << '\n';
  // Trailing CRC over every byte above, so a truncated or bit-rotted
  // record file is detected at read time (mirrors the checkpoint format).
  const std::string text = body.str();
  char crc_line[32];
  std::snprintf(crc_line, sizeof(crc_line), "record_crc %08" PRIx32,
                dopf::verify::crc32(text));
  out << text << crc_line << '\n';
}

ReplayRecordFile read_records(std::istream& in) {
  std::ostringstream slurp;
  slurp << in.rdbuf();
  const std::string text = slurp.str();

  const auto crc_pos = text.rfind("\nrecord_crc ");
  if (crc_pos == std::string::npos) {
    throw StreamRecordError("missing record_crc line (truncated file?)");
  }
  const std::string body = text.substr(0, crc_pos + 1);
  std::uint32_t stored = 0;
  if (std::sscanf(text.c_str() + crc_pos + 1, "record_crc %8" SCNx32,
                  &stored) != 1) {
    throw StreamRecordError("malformed record_crc line");
  }
  const std::uint32_t actual = dopf::verify::crc32(body);
  if (stored != actual) {
    char msg[96];
    std::snprintf(msg, sizeof(msg),
                  "CRC mismatch (stored %08" PRIx32 ", payload %08" PRIx32
                  ") — file corrupted or truncated",
                  stored, actual);
    throw StreamRecordError(msg);
  }

  ReplayRecordFile file;
  std::istringstream lines(body);
  std::string line;
  if (!std::getline(lines, line)) {
    throw StreamRecordError("empty record file");
  }
  {
    std::istringstream header(line);
    std::string tag, steps_key, first_key, dt_key, dt_value;
    if (!(header >> tag >> file.profile >> steps_key >> file.num_steps >>
          first_key >> file.first_step >> dt_key >> dt_value) ||
        tag != "stream" || steps_key != "steps" ||
        first_key != "first_step" || dt_key != "dt") {
      throw StreamRecordError("malformed header line '" + line + "'");
    }
  }
  bool saw_session = false;
  while (std::getline(lines, line)) {
    if (line.rfind("step ", 0) == 0) {
      if (saw_session) {
        throw StreamRecordError("step line after session footer");
      }
      file.step_lines.push_back(line);
    } else if (line.rfind("session ", 0) == 0) {
      if (saw_session) throw StreamRecordError("duplicate session footer");
      saw_session = true;
      file.session_line = line;
    } else {
      throw StreamRecordError("unrecognized line '" + line + "'");
    }
  }
  if (!saw_session) {
    throw StreamRecordError("missing session footer (truncated file?)");
  }
  return file;
}

}  // namespace dopf::stream
