#include "stream/profile.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "network/phase.hpp"

namespace dopf::stream {

using dopf::network::Network;
using dopf::network::Phase;
using dopf::runtime::ScenarioOverride;

namespace {

[[noreturn]] void fail(int line_no, const std::string& message) {
  throw ProfileError("profile line " + std::to_string(line_no) + ": " +
                     message);
}

double parse_number(const std::string& token, int line_no, const char* what) {
  std::istringstream ss(token);
  double v = 0.0;
  char trailing = 0;
  if (!(ss >> v) || ss >> trailing || !std::isfinite(v)) {
    fail(line_no, std::string("bad ") + what + " '" + token + "'");
  }
  return v;
}

int parse_count(const std::string& token, int line_no, const char* what) {
  const double v = parse_number(token, line_no, what);
  if (v <= 0.0 || v != std::floor(v)) {
    fail(line_no,
         std::string(what) + " must be a positive integer, got '" + token +
             "'");
  }
  return static_cast<int>(v);
}

SwitchEvent parse_switch(const std::vector<std::string>& tokens,
                         int line_no) {
  if (tokens.size() < 3) {
    fail(line_no,
         "expected: switch <line> open|close|impedance-scale [<factor>]");
  }
  SwitchEvent ev;
  ev.line = tokens[1];
  ev.line_no = line_no;
  if (tokens[2] == "open" || tokens[2] == "close") {
    if (tokens.size() != 3) {
      fail(line_no, "expected: switch <line> " + tokens[2]);
    }
    ev.kind = tokens[2] == "open" ? SwitchEvent::Kind::kOpen
                                  : SwitchEvent::Kind::kClose;
  } else if (tokens[2] == "impedance-scale") {
    if (tokens.size() != 4) {
      fail(line_no, "expected: switch <line> impedance-scale <factor>");
    }
    ev.kind = SwitchEvent::Kind::kImpedanceScale;
    ev.factor = parse_number(tokens[3], line_no, "impedance factor");
    if (ev.factor <= 0.0) {
      fail(line_no, "impedance factor must be positive, got '" + tokens[3] +
                        "'");
    }
  } else {
    fail(line_no, "unknown switch action '" + tokens[2] + "'");
  }
  return ev;
}

void reject_duplicate_switch(const std::vector<SwitchEvent>& seen,
                             const SwitchEvent& ev, int step) {
  for (const SwitchEvent& prev : seen) {
    if (prev.line == ev.line) {
      fail(ev.line_no, "duplicate switch event for line '" + ev.line +
                           "' in step " + std::to_string(step) +
                           " (first on line " + std::to_string(prev.line_no) +
                           ")");
    }
  }
}

}  // namespace

const ProfileBlock* StreamProfile::block_for(int step) const {
  const ProfileBlock* active = nullptr;
  for (const ProfileBlock& block : blocks) {
    if (block.step > step) break;
    active = &block;
  }
  return active;
}

StreamProfile parse_profile(std::istream& in) {
  StreamProfile profile;
  bool have_steps = false, have_name = false, have_dt = false;
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream ss(raw);
    std::vector<std::string> tokens;
    std::string t;
    while (ss >> t) tokens.push_back(t);
    if (tokens.empty()) continue;

    if (tokens[0] == "profile") {
      if (have_name) fail(line_no, "duplicate 'profile' directive");
      if (tokens.size() != 2) fail(line_no, "expected: profile <name>");
      profile.name = tokens[1];
      have_name = true;
    } else if (tokens[0] == "steps") {
      if (have_steps) fail(line_no, "duplicate 'steps' directive");
      if (tokens.size() != 2) fail(line_no, "expected: steps <count>");
      profile.num_steps = parse_count(tokens[1], line_no, "step count");
      have_steps = true;
    } else if (tokens[0] == "dt") {
      if (have_dt) fail(line_no, "duplicate 'dt' directive");
      if (tokens.size() != 2) fail(line_no, "expected: dt <seconds>");
      profile.dt_seconds = parse_number(tokens[1], line_no, "dt");
      if (profile.dt_seconds <= 0.0) fail(line_no, "dt must be positive");
      have_dt = true;
    } else if (tokens[0] == "step") {
      if (!have_steps) fail(line_no, "'step' before 'steps <count>'");
      if (tokens.size() != 2) fail(line_no, "expected: step <index>");
      const double v = parse_number(tokens[1], line_no, "step index");
      if (v < 0.0 || v != std::floor(v)) {
        fail(line_no, "step index must be a non-negative integer");
      }
      const int step = static_cast<int>(v);
      if (step >= profile.num_steps) {
        fail(line_no, "step " + std::to_string(step) +
                          " out of range (steps " +
                          std::to_string(profile.num_steps) + ")");
      }
      if (!profile.blocks.empty() && step <= profile.blocks.back().step) {
        fail(line_no, "step " + std::to_string(step) +
                          " not increasing (previous block is step " +
                          std::to_string(profile.blocks.back().step) +
                          " on line " +
                          std::to_string(profile.blocks.back().line_no) + ")");
      }
      profile.blocks.push_back(ProfileBlock{step, {}, {}, line_no});
    } else if (tokens[0] == "load" || tokens[0] == "gen") {
      if (profile.blocks.empty()) {
        fail(line_no, "override outside a 'step' block");
      }
      ProfileBlock& block = profile.blocks.back();
      try {
        const ScenarioOverride ov =
            dopf::runtime::parse_scenario_override(tokens, line_no);
        dopf::runtime::reject_duplicate_override(
            block.overrides, ov, "step " + std::to_string(block.step));
        block.overrides.push_back(ov);
      } catch (const dopf::runtime::ScenarioError& e) {
        throw ProfileError(e.what());
      }
    } else if (tokens[0] == "switch") {
      if (profile.blocks.empty()) {
        fail(line_no, "switch event outside a 'step' block");
      }
      ProfileBlock& block = profile.blocks.back();
      const SwitchEvent ev = parse_switch(tokens, line_no);
      reject_duplicate_switch(block.switches, ev, block.step);
      block.switches.push_back(ev);
    } else {
      fail(line_no, "unknown directive '" + tokens[0] + "'");
    }
  }
  if (!have_steps) throw ProfileError("profile: missing 'steps <count>'");
  return profile;
}

StreamProfile load_profile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ProfileError("cannot open profile file: " + path);
  return parse_profile(in);
}

Network network_at_step(const Network& base, const StreamProfile& profile,
                        int step) {
  if (step < 0 || step >= profile.num_steps) {
    throw ProfileError("step " + std::to_string(step) +
                       " out of range (steps " +
                       std::to_string(profile.num_steps) + ")");
  }
  const ProfileBlock* block = profile.block_for(step);
  if (block == nullptr) return base;

  Network net = base;
  if (!block->overrides.empty()) {
    try {
      net = dopf::runtime::apply_scenario(
          net, dopf::runtime::Scenario{
                   profile.name + "@" + std::to_string(step),
                   block->overrides});
    } catch (const dopf::runtime::ScenarioError& e) {
      throw ProfileError("step " + std::to_string(step) + ": " + e.what());
    }
  }
  for (const SwitchEvent& ev : block->switches) {
    int line_id = -1;
    for (const auto& line : net.lines()) {
      if (line.name == ev.line) {
        line_id = line.id;
        break;
      }
    }
    if (line_id < 0) {
      throw ProfileError("step " + std::to_string(step) +
                         ": no line named '" + ev.line + "'");
    }
    auto& line = net.line_mutable(line_id);
    if (ev.kind == SwitchEvent::Kind::kClose) {
      // Blocks are absolute against base, so a closed switch is simply the
      // base line record the copy already carries; the marker documents
      // intent in hand-written profiles.
      continue;
    }
    const double scale = ev.kind == SwitchEvent::Kind::kOpen
                             ? kOpenImpedanceScale
                             : ev.factor;
    for (std::size_t i = 0; i < 3; ++i) {
      for (std::size_t j = 0; j < 3; ++j) {
        line.r(i, j) *= scale;
        line.x(i, j) *= scale;
      }
    }
    if (ev.kind == SwitchEvent::Kind::kOpen) {
      line.flow_limit =
          dopf::network::PerPhase<double>::uniform(kOpenFlowLimit);
    }
  }
  net.validate();
  return net;
}

}  // namespace dopf::stream
