#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "network/network.hpp"
#include "runtime/scenario.hpp"

namespace dopf::stream {

/// Thrown on malformed profile files or profile entries that reference
/// unknown network components.
class ProfileError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A switching event: topology actuation on a named line. Opening a switch
/// is modeled as a high-impedance open (series r/x blocks scaled by
/// kOpenImpedanceScale, per-phase flow limits collapsed to kOpenFlowLimit)
/// — the examples/dynamic_topology.cpp idiom plus an impedance change, so
/// the event genuinely edits the owning component's A_s block and exercises
/// the incremental-refactorization path. `impedance-scale` models a tap
/// change / reconfiguration that re-rates the series impedance without
/// touching the flow limits.
struct SwitchEvent {
  enum class Kind {
    kOpen,            ///< switch <line> open
    kClose,           ///< switch <line> close (explicit back-to-base marker)
    kImpedanceScale,  ///< switch <line> impedance-scale <factor>
  };
  Kind kind = Kind::kOpen;
  std::string line;
  double factor = 1.0;  ///< kImpedanceScale only
  int line_no = 0;      ///< source line (0 = constructed in code)
};

/// Impedance multiplier applied to an opened switch's series r/x blocks.
inline constexpr double kOpenImpedanceScale = 1e3;
/// Per-phase flow limit of an opened switch (effectively zero flow).
inline constexpr double kOpenFlowLimit = 1e-9;

/// The overrides in effect FROM `step` until the next block (piecewise
/// hold). Overrides are absolute against the BASE network — they do not
/// compose with earlier blocks — so any step's network is reconstructible
/// from the base plus exactly one block (what makes mid-stream resume a
/// single rebind instead of a replay of every earlier step).
struct ProfileBlock {
  int step = 0;
  std::vector<dopf::runtime::ScenarioOverride> overrides;
  std::vector<SwitchEvent> switches;
  int line_no = 0;  ///< source line of the `step` header
};

/// A parsed time-series profile: `num_steps` solve steps on a fixed step
/// clock (`dt_seconds` is informational — nothing in the replay driver
/// reads wall time), with piecewise-held override blocks.
struct StreamProfile {
  std::string name = "stream";
  int num_steps = 0;
  double dt_seconds = 300.0;
  std::vector<ProfileBlock> blocks;  ///< strictly increasing .step

  /// The block in effect at `step` (latest block with .step <= step), or
  /// nullptr when the base network applies.
  const ProfileBlock* block_for(int step) const;
};

/// Parse the streaming profile format consumed by `dopf_solve --stream`:
///
///   # 24h of 5-minute steps
///   profile day
///   steps 288
///   dt 300
///   step 0
///     load constant scale 0.95
///   step 96
///     load constant scale 1.10
///     switch l42 impedance-scale 1.5
///   step 192
///     load constant scale 1.02
///
/// `profile`/`dt` are optional; `steps N` is required before the first
/// `step` block; `step K` indices must be strictly increasing within
/// [0, N). Override lines reuse the scenario grammar (load/gen), plus
/// `switch <line> open|close|impedance-scale [<factor>]`. Duplicate load
/// overrides or duplicate switch events for the same target within one
/// block are rejected with both line numbers. Throws ProfileError with
/// line provenance on malformed input.
StreamProfile parse_profile(std::istream& in);
StreamProfile load_profile(const std::string& path);

/// The network in effect at `step`: the active block's overrides and
/// switch events applied to a copy of `base` (absolute, non-compounding).
/// Unknown load/gen/line targets raise ProfileError with step provenance.
dopf::network::Network network_at_step(const dopf::network::Network& base,
                                       const StreamProfile& profile,
                                       int step);

}  // namespace dopf::stream
