#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/solve_session.hpp"
#include "opf/decompose.hpp"
#include "stream/profile.hpp"

namespace dopf::stream {

/// Thrown when a stream step cannot be driven: layout-changing steps,
/// preflight rejections, bad checkpoint/resume state. Always carries step
/// provenance in the message.
class StreamError : public std::runtime_error {
 public:
  StreamError(int step, const std::string& message)
      : std::runtime_error("stream step " + std::to_string(step) + ": " +
                           message),
        step_(step) {}
  int step() const noexcept { return step_; }

 private:
  int step_ = -1;
};

/// A preflight rejection of one step's scenario delta (exit code 5 at the
/// CLI, matching the single-solve contract).
class StreamPreflightError : public StreamError {
 public:
  using StreamError::StreamError;
};

/// Everything one stream step did, recorded with deterministic fields only
/// (no wall-clock quantities), so a replay of the same profile serializes
/// byte-identically. See StreamDriver and record_line().
struct StreamStepRecord {
  int step = 0;
  dopf::core::AdmmStatus status = dopf::core::AdmmStatus::kIterationLimit;
  bool converged = false;
  bool warm_started = false;
  /// True when this step's rebind refactorized at least one component
  /// (a switching event reached the packed pool).
  bool switched = false;
  int iterations = 0;
  int cold_iterations = -1;  ///< -1 = cold comparison off
  dopf::core::RebindStats rebind;
  /// Per-step delta preflight: components skipped because their equality
  /// block was unchanged (0 when preflight is off).
  std::size_t preflight_reused = 0;
  bool preflight_ran = false;
  int watchdog_stalls = 0;
  double objective = 0.0;
  double primal_residual = 0.0;
  double dual_residual = 0.0;
  std::uint64_t model_fp = 0;
  std::uint64_t scenario_fp = 0;
};

struct StreamOptions {
  dopf::core::AdmmOptions admm;
  dopf::opf::DecomposeOptions decompose;
  /// Per-step scenario-delta preflight policy: "off", "warn", "auto",
  /// "strict" (robust::run_scenario_preflight). A rejection raises
  /// StreamPreflightError with step provenance.
  std::string preflight = "warn";
  /// Also solve every step cold (fresh iterate state on the same binding)
  /// and record cold_iterations.
  bool cold_compare = false;
  /// Warm-start reset policy: when true, a step whose rebind refactorized
  /// any component (a topology switch) drops the retained consensus state
  /// and solves cold — the conservative policy when switching events move
  /// the optimum far enough that stale duals mislead. Default keeps warm
  /// state across switches (Kim & Kim tracking).
  bool reset_on_switch = false;
  /// Capture a stream checkpoint after this step's solve (requires
  /// checkpoint_path); -1 disables.
  int checkpoint_at_step = -1;
  std::string checkpoint_path;
  /// Resume from a stream checkpoint captured by a previous run: the
  /// binding is fast-forwarded to the checkpoint's step with ONE rebind
  /// (profile blocks are absolute against base), the iterate state is
  /// restored, and the stream continues at the next step — byte-identical
  /// to the uninterrupted run from there (model/scenario fingerprints are
  /// validated before any state is touched).
  std::string resume_path;
  /// Execution backend factory (empty = serial); called once for the main
  /// session and once per cold comparison so every solve sees an
  /// equivalent backend.
  std::function<std::unique_ptr<dopf::core::ExecutionBackend>()> make_backend;
};

/// The full stream outcome: per-step records plus lifetime session
/// counters and the contract quantities the streaming bench certifies.
struct StreamResult {
  std::vector<StreamStepRecord> steps;
  dopf::core::SessionStats session;
  /// Model-level single-component refactorizations across the stream ==
  /// the number of switched components (each switch event touches exactly
  /// the components whose A_s changed).
  int refactorizations = 0;
  int first_step = 0;  ///< 0, or checkpoint step + 1 on a resumed run
  long long warm_iterations = 0;  ///< total over warm-started steps
  long long cold_iterations = 0;  ///< total cold_compare iterations (-1s skipped)
  bool all_converged = true;
};

/// Receding-horizon streaming driver: one long-lived SolveSession per
/// feeder consumes a StreamProfile step by step. Every step re-decomposes
/// the step network, routes it through ScenarioBinding::rebind (load-only
/// steps touch no factorization; a switching event refreshes exactly the
/// touched components), and warm-starts ADMM from the previous consensus
/// state. Deterministic by construction: fixed step clock, serial (or
/// deterministic threaded) backend, no wall-time dependence in any
/// recorded field — the backtest-replay shape.
class StreamDriver {
 public:
  /// `base` and `profile` must outlive the driver.
  StreamDriver(const dopf::network::Network& base,
               const StreamProfile& profile, StreamOptions options);

  /// Drive the whole stream (or the tail after a checkpoint resume).
  StreamResult run();

 private:
  const dopf::network::Network* base_;
  const StreamProfile* profile_;
  StreamOptions options_;
};

/// Serialize one step record as a single deterministic line (hex-float
/// doubles, hex fingerprints — byte-identical across replays of the same
/// profile).
std::string record_line(const StreamStepRecord& rec);

/// Write the full deterministic replay record: a header line, one line per
/// step, and a session-counter footer. Two runs of the same profile (and
/// an interrupted + resumed pair, over the shared steps) must produce
/// byte-identical output — the verify_stream_replay CI gate.
void write_records(const StreamResult& result, const StreamProfile& profile,
                   std::ostream& out);

}  // namespace dopf::stream
