#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/cancel.hpp"
#include "core/solve_session.hpp"
#include "opf/decompose.hpp"
#include "runtime/durable.hpp"
#include "stream/profile.hpp"

namespace dopf::stream {

/// Thrown when a stream step cannot be driven: layout-changing steps,
/// preflight rejections, bad checkpoint/resume state. Always carries step
/// provenance in the message.
class StreamError : public std::runtime_error {
 public:
  StreamError(int step, const std::string& message)
      : std::runtime_error("stream step " + std::to_string(step) + ": " +
                           message),
        step_(step) {}
  int step() const noexcept { return step_; }

 protected:
  /// File-level errors (no step provenance); see StreamRecordError.
  explicit StreamError(const std::string& message)
      : std::runtime_error(message) {}

 private:
  int step_ = -1;
};

/// Thrown by read_records on a malformed, truncated, or corrupted replay
/// record file — typed so callers (and the truncation fuzzer) can tell a
/// bad file from a driver bug.
class StreamRecordError : public StreamError {
 public:
  explicit StreamRecordError(const std::string& message)
      : StreamError("stream record: " + message) {}
};

/// A preflight rejection of one step's scenario delta (exit code 5 at the
/// CLI, matching the single-solve contract).
class StreamPreflightError : public StreamError {
 public:
  using StreamError::StreamError;
};

/// Everything one stream step did, recorded with deterministic fields only
/// (no wall-clock quantities), so a replay of the same profile serializes
/// byte-identically. See StreamDriver and record_line().
struct StreamStepRecord {
  int step = 0;
  dopf::core::AdmmStatus status = dopf::core::AdmmStatus::kIterationLimit;
  bool converged = false;
  bool warm_started = false;
  /// True when this step's rebind refactorized at least one component
  /// (a switching event reached the packed pool).
  bool switched = false;
  int iterations = 0;
  int cold_iterations = -1;  ///< -1 = cold comparison off
  dopf::core::RebindStats rebind;
  /// Per-step delta preflight: components skipped because their equality
  /// block was unchanged (0 when preflight is off).
  std::size_t preflight_reused = 0;
  bool preflight_ran = false;
  int watchdog_stalls = 0;
  double objective = 0.0;
  double primal_residual = 0.0;
  double dual_residual = 0.0;
  std::uint64_t model_fp = 0;
  std::uint64_t scenario_fp = 0;
};

struct StreamOptions {
  dopf::core::AdmmOptions admm;
  dopf::opf::DecomposeOptions decompose;
  /// Per-step scenario-delta preflight policy: "off", "warn", "auto",
  /// "strict" (robust::run_scenario_preflight). A rejection raises
  /// StreamPreflightError with step provenance.
  std::string preflight = "warn";
  /// Also solve every step cold (fresh iterate state on the same binding)
  /// and record cold_iterations.
  bool cold_compare = false;
  /// Warm-start reset policy: when true, a step whose rebind refactorized
  /// any component (a topology switch) drops the retained consensus state
  /// and solves cold — the conservative policy when switching events move
  /// the optimum far enough that stale duals mislead. Default keeps warm
  /// state across switches (Kim & Kim tracking).
  bool reset_on_switch = false;
  /// Capture a stream checkpoint after this step's solve (requires
  /// checkpoint_path); -1 disables.
  int checkpoint_at_step = -1;
  /// Durably checkpoint every k completed steps into the generation-
  /// numbered A/B pair `checkpoint_path + ".a"/".b"` (requires
  /// checkpoint_path); 0 disables. Unlike checkpoint_at_step's single
  /// file, a torn write here can always fall back to the previous
  /// generation on resume.
  int checkpoint_every_steps = 0;
  std::string checkpoint_path;
  /// Cooperative cancellation (not owned; must outlive run()). Checked at
  /// every step boundary AND passed into each step's solve via
  /// admm.cancel, so a signal/deadline lands within one check cadence. On
  /// cancellation the driver durably checkpoints the last COMPLETED step
  /// (when checkpoint_path is set) and returns with cancelled = true;
  /// partially-solved steps are discarded so the recorded steps stay a
  /// byte-identical prefix of the uninterrupted run.
  const dopf::core::CancelToken* cancel = nullptr;
  /// Durability policy (fsync, retry budget, failpoints) for every
  /// checkpoint write and resume read issued by the driver.
  dopf::runtime::DurableOptions durable;
  /// Resume from a stream checkpoint captured by a previous run: the
  /// binding is fast-forwarded to the checkpoint's step with ONE rebind
  /// (profile blocks are absolute against base), the iterate state is
  /// restored, and the stream continues at the next step — byte-identical
  /// to the uninterrupted run from there (model/scenario fingerprints are
  /// validated before any state is touched).
  std::string resume_path;
  /// Execution backend factory (empty = serial); called once for the main
  /// session and once per cold comparison so every solve sees an
  /// equivalent backend.
  std::function<std::unique_ptr<dopf::core::ExecutionBackend>()> make_backend;
};

/// The full stream outcome: per-step records plus lifetime session
/// counters and the contract quantities the streaming bench certifies.
struct StreamResult {
  std::vector<StreamStepRecord> steps;
  dopf::core::SessionStats session;
  /// Model-level single-component refactorizations across the stream ==
  /// the number of switched components (each switch event touches exactly
  /// the components whose A_s changed).
  int refactorizations = 0;
  int first_step = 0;  ///< 0, or checkpoint step + 1 on a resumed run
  long long warm_iterations = 0;  ///< total over warm-started steps
  long long cold_iterations = 0;  ///< total cold_compare iterations (-1s skipped)
  bool all_converged = true;
  /// Cooperative cancellation outcome: the stream stopped early after
  /// `steps.back().step` (no partial step is recorded).
  bool cancelled = false;
  std::string cancel_reason;
  /// Non-empty when the resume load had to fall back to the previous good
  /// generation (the newest slot was torn/corrupt).
  std::string resume_fallback;
  /// Durable-I/O work done by the driver (checkpoint writes, retries with
  /// their simulated backoff seconds).
  dopf::runtime::IoStats io;
};

/// Receding-horizon streaming driver: one long-lived SolveSession per
/// feeder consumes a StreamProfile step by step. Every step re-decomposes
/// the step network, routes it through ScenarioBinding::rebind (load-only
/// steps touch no factorization; a switching event refreshes exactly the
/// touched components), and warm-starts ADMM from the previous consensus
/// state. Deterministic by construction: fixed step clock, serial (or
/// deterministic threaded) backend, no wall-time dependence in any
/// recorded field — the backtest-replay shape.
class StreamDriver {
 public:
  /// `base` and `profile` must outlive the driver.
  StreamDriver(const dopf::network::Network& base,
               const StreamProfile& profile, StreamOptions options);

  /// Drive the whole stream (or the tail after a checkpoint resume).
  StreamResult run();

 private:
  const dopf::network::Network* base_;
  const StreamProfile* profile_;
  StreamOptions options_;
};

/// Serialize one step record as a single deterministic line (hex-float
/// doubles, hex fingerprints — byte-identical across replays of the same
/// profile).
std::string record_line(const StreamStepRecord& rec);

/// Write the full deterministic replay record: a header line, one line per
/// step, and a session-counter footer. Two runs of the same profile (and
/// an interrupted + resumed pair, over the shared steps) must produce
/// byte-identical output — the verify_stream_replay CI gate.
void write_records(const StreamResult& result, const StreamProfile& profile,
                   std::ostream& out);

/// A parsed replay record file (structure + CRC validated; step lines kept
/// verbatim so byte-level tail comparisons need no re-serialization).
struct ReplayRecordFile {
  std::string profile;
  int num_steps = 0;
  int first_step = 0;
  std::vector<std::string> step_lines;  ///< raw "step ..." lines, in order
  std::string session_line;             ///< raw "session ..." footer
};

/// Parse and validate a replay record written by write_records. Throws
/// StreamRecordError on missing/garbled header, step, session, or
/// record_crc lines, and on a CRC mismatch — never a crash or a silently
/// partial result.
ReplayRecordFile read_records(std::istream& in);

}  // namespace dopf::stream
