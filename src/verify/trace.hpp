#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/admm.hpp"

namespace dopf::verify {

/// Thrown on malformed trace files.
class TraceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A complete, deterministic record of one ADMM run: the solve profile, the
/// residual history sampled at every check, and the final iterate. Traces
/// serialize with C99 hex-float literals, so write/read round-trips preserve
/// every bit and two runs can be compared byte-for-byte through this format.
struct Trace {
  std::string network;    ///< instance label (e.g. "ieee13")
  std::string algorithm;  ///< "solver-free"
  /// Which backend produced the run. Informational only: the whole point of
  /// the golden comparison is that this field is the ONLY one allowed to
  /// differ between a matching pair of traces.
  std::string backend;
  double rho = 0.0;
  double eps_rel = 0.0;
  int check_every = 1;
  int record_every = 1;
  int iterations = 0;
  std::string status;
  double objective = 0.0;
  std::vector<dopf::core::IterationRecord> history;
  std::vector<double> x;  ///< final global iterate

  /// Capture a solve result under the given labels/options.
  static Trace from_result(const dopf::core::AdmmResult& result,
                           const dopf::core::AdmmOptions& options,
                           std::string network, std::string backend,
                           std::string algorithm = "solver-free");
};

void write_trace(const Trace& trace, std::ostream& out);
Trace read_trace(std::istream& in);
void save_trace(const Trace& trace, const std::string& path);
Trace load_trace(const std::string& path);

/// Outcome of a trace comparison. When traces disagree, `message` pinpoints
/// the first divergence (which field, which iteration, both values).
struct TraceDiff {
  bool identical = true;
  std::string message;
};

/// Compare `candidate` against `golden`. With tol == 0 every numeric field
/// must match bit-for-bit (the serial/threaded/simt contract); with tol > 0
/// values must satisfy |a - b| <= tol * max(1, |a|, |b|). The `backend`
/// field is deliberately excluded from the comparison.
TraceDiff compare_traces(const Trace& golden, const Trace& candidate,
                         double tol = 0.0);

/// The trace restricted to history records strictly after `after_iteration`
/// (profile metadata, final iterate, objective and status are kept). Used to
/// compare a resumed-from-checkpoint run against the full golden trace: the
/// resumed run only re-records the post-restart samples.
Trace trace_suffix(const Trace& trace, int after_iteration);

/// Order-sensitive FNV-1a digest over the bit patterns of the residual
/// history and the final iterate; equal digests over the same profile mean
/// bit-identical trajectories (seeded-determinism regression tests).
std::uint64_t trace_digest(const Trace& trace);

/// The pinned solve profile every committed golden trace is recorded and
/// replayed with. Changing it invalidates all golden files (see TESTING.md).
dopf::core::AdmmOptions golden_profile();

}  // namespace dopf::verify
