#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/admm.hpp"
#include "feeders/synthetic.hpp"
#include "verify/invariants.hpp"

namespace dopf::verify {

/// Property-based differential fuzzing of the whole pipeline: seeded random
/// radial feeders -> model -> decomposition -> all three execution backends
/// -> invariant checks against the interior-point reference.
struct FuzzOptions {
  int num_cases = 25;
  std::uint64_t base_seed = 20250807;
  /// ADMM profile for every case (default: default_fuzz_admm()).
  dopf::core::AdmmOptions admm;
  InvariantOptions invariants;
  /// Worker threads for the threaded backend leg.
  int threads = 4;
  /// Also solve each case with the centralized interior-point reference and
  /// check KKT stationarity / objective gap. Dominates the run time.
  bool run_reference = true;

  FuzzOptions();
};

/// The ADMM profile the fuzzer runs: paper defaults, eps_rel = 5e-3 (fast
/// but still meaningfully converged against the reference tolerances).
dopf::core::AdmmOptions default_fuzz_admm();

/// Outcome of one fuzz case. `digest` is the trace digest of the serial run
/// (see trace_digest) — the anchor for seeded-determinism regressions.
struct FuzzCase {
  std::uint64_t seed = 0;
  std::string feeder_summary;
  std::size_t components = 0;
  int iterations = 0;
  bool converged = false;
  double objective = 0.0;
  std::uint64_t digest = 0;
  std::vector<std::string> failures;

  bool passed() const { return failures.empty(); }
};

struct FuzzReport {
  std::vector<FuzzCase> cases;

  int num_failed() const;
  bool ok() const { return num_failed() == 0; }
  /// Multi-line report: one line per case, then a verdict.
  std::string summary() const;
};

/// Derive a randomized (but fully seed-determined) synthetic feeder spec:
/// 16-48 buses with randomized phase/load/transformer/DER mixes. Exposed so
/// determinism tests can compare generated feeders directly.
dopf::feeders::SyntheticSpec random_spec(std::uint64_t seed);

/// Run the fuzzer. Case i uses seed base_seed + i. Never throws on a
/// verification failure — failures land in the per-case reports — but does
/// propagate infrastructure errors (e.g. feeder generation throwing).
FuzzReport run_fuzz(const FuzzOptions& options);

}  // namespace dopf::verify
