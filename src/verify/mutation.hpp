#pragma once

#include <cstddef>
#include <memory>

#include "core/backend.hpp"

namespace dopf::verify {

/// A deliberate kernel defect, for proving the verification harness detects
/// divergence (mutation smoke test). The wrapped backend behaves exactly
/// like its inner backend except that on the `local_update_call`-th local
/// update it perturbs one entry of z by `delta` — the smallest realistic
/// model of a broken kernel or packing layout.
struct MutationSpec {
  /// 1-based local_update() call at which to strike.
  int local_update_call = 3;
  /// z position to perturb (wrapped modulo the total local dimension).
  std::size_t z_position = 7;
  double delta = 1e-6;
};

/// Wrap `inner` with the mutation. Takes ownership; name() reports
/// "mutant(<inner>)" so a mutated run can never masquerade as a clean one.
std::unique_ptr<dopf::core::ExecutionBackend> make_mutant_backend(
    std::unique_ptr<dopf::core::ExecutionBackend> inner,
    const MutationSpec& spec = {});

}  // namespace dopf::verify
