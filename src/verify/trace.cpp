#include "verify/trace.hpp"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "verify/codec.hpp"

namespace dopf::verify {

using dopf::core::AdmmOptions;
using dopf::core::AdmmResult;
using dopf::core::IterationRecord;

namespace {

/// Exact decimal-free rendering (shared codec; round-trips every bit).
std::string hex(double v) { return hex_double(v); }

double parse_number(const std::string& token, int line_no) {
  double v = 0.0;
  if (!parse_double_token(token, &v)) {
    throw TraceError("trace line " + std::to_string(line_no) +
                     ": bad number '" + token + "'");
  }
  return v;
}

class Lines {
 public:
  explicit Lines(std::istream& in) : in_(in) {}

  /// Next non-empty line split into tokens; empty result at EOF.
  std::vector<std::string> next() {
    std::string raw;
    while (std::getline(in_, raw)) {
      ++no_;
      std::istringstream ss(raw);
      std::vector<std::string> tokens;
      std::string t;
      while (ss >> t) tokens.push_back(t);
      if (!tokens.empty()) return tokens;
    }
    return {};
  }

  int line_no() const { return no_; }

 private:
  std::istream& in_;
  int no_ = 0;
};

bool matches(double golden, double candidate, double tol) {
  if (tol == 0.0) {
    // Bitwise: distinguishes -0.0/0.0 and compares NaNs sanely.
    return std::bit_cast<std::uint64_t>(golden) ==
           std::bit_cast<std::uint64_t>(candidate);
  }
  if (std::isnan(golden) || std::isnan(candidate)) return false;
  return std::abs(golden - candidate) <=
         tol * std::max({1.0, std::abs(golden), std::abs(candidate)});
}

std::string value_pair(double golden, double candidate) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "golden %.17g (%a), got %.17g (%a)", golden,
                golden, candidate, candidate);
  return buf;
}

void fnv(std::uint64_t* h, double v) {
  std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
  for (int byte = 0; byte < 8; ++byte) {
    *h ^= (bits >> (8 * byte)) & 0xffu;
    *h *= 0x100000001b3ull;
  }
}

}  // namespace

Trace Trace::from_result(const AdmmResult& result, const AdmmOptions& options,
                         std::string network, std::string backend,
                         std::string algorithm) {
  Trace t;
  t.network = std::move(network);
  t.backend = std::move(backend);
  t.algorithm = std::move(algorithm);
  t.rho = options.rho;
  t.eps_rel = options.eps_rel;
  t.check_every = options.check_every;
  t.record_every = options.record_every;
  t.iterations = result.iterations;
  t.status = dopf::core::to_string(result.status);
  t.objective = result.objective;
  t.history = result.history;
  t.x = result.x;
  return t;
}

void write_trace(const Trace& trace, std::ostream& out) {
  out << "dopf-trace v1\n";
  out << "network " << trace.network << '\n';
  out << "algorithm " << trace.algorithm << '\n';
  out << "backend " << trace.backend << '\n';
  out << "rho " << hex(trace.rho) << '\n';
  out << "eps_rel " << hex(trace.eps_rel) << '\n';
  out << "check_every " << trace.check_every << '\n';
  out << "record_every " << trace.record_every << '\n';
  out << "iterations " << trace.iterations << '\n';
  out << "status " << trace.status << '\n';
  out << "objective " << hex(trace.objective) << '\n';
  out << "history " << trace.history.size() << '\n';
  for (const IterationRecord& r : trace.history) {
    out << "h " << r.iteration << ' ' << hex(r.primal_residual) << ' '
        << hex(r.dual_residual) << ' ' << hex(r.eps_primal) << ' '
        << hex(r.eps_dual) << ' ' << hex(r.rho) << '\n';
  }
  out << "x " << trace.x.size() << '\n';
  for (double v : trace.x) out << "v " << hex(v) << '\n';
  out << "end\n";
}

Trace read_trace(std::istream& in) {
  Lines lines(in);
  auto expect = [&](const std::vector<std::string>& tokens, const char* key,
                    std::size_t count) {
    if (tokens.empty() || tokens[0] != key || tokens.size() != count + 1) {
      throw TraceError("trace line " + std::to_string(lines.line_no()) +
                       ": expected '" + key + "' with " +
                       std::to_string(count) + " value(s)");
    }
  };

  const auto header = lines.next();
  if (header.size() != 2 || header[0] != "dopf-trace" || header[1] != "v1") {
    throw TraceError("not a dopf-trace v1 file");
  }

  Trace t;
  auto tokens = lines.next();
  expect(tokens, "network", 1);
  t.network = tokens[1];
  tokens = lines.next();
  expect(tokens, "algorithm", 1);
  t.algorithm = tokens[1];
  tokens = lines.next();
  expect(tokens, "backend", 1);
  t.backend = tokens[1];
  tokens = lines.next();
  expect(tokens, "rho", 1);
  t.rho = parse_number(tokens[1], lines.line_no());
  tokens = lines.next();
  expect(tokens, "eps_rel", 1);
  t.eps_rel = parse_number(tokens[1], lines.line_no());
  tokens = lines.next();
  expect(tokens, "check_every", 1);
  t.check_every = static_cast<int>(parse_number(tokens[1], lines.line_no()));
  tokens = lines.next();
  expect(tokens, "record_every", 1);
  t.record_every = static_cast<int>(parse_number(tokens[1], lines.line_no()));
  tokens = lines.next();
  expect(tokens, "iterations", 1);
  t.iterations = static_cast<int>(parse_number(tokens[1], lines.line_no()));
  tokens = lines.next();
  expect(tokens, "status", 1);
  t.status = tokens[1];
  tokens = lines.next();
  expect(tokens, "objective", 1);
  t.objective = parse_number(tokens[1], lines.line_no());

  tokens = lines.next();
  expect(tokens, "history", 1);
  const auto hist_count =
      static_cast<std::size_t>(parse_number(tokens[1], lines.line_no()));
  t.history.reserve(hist_count);
  for (std::size_t k = 0; k < hist_count; ++k) {
    tokens = lines.next();
    expect(tokens, "h", 6);
    IterationRecord r;
    r.iteration = static_cast<int>(parse_number(tokens[1], lines.line_no()));
    r.primal_residual = parse_number(tokens[2], lines.line_no());
    r.dual_residual = parse_number(tokens[3], lines.line_no());
    r.eps_primal = parse_number(tokens[4], lines.line_no());
    r.eps_dual = parse_number(tokens[5], lines.line_no());
    r.rho = parse_number(tokens[6], lines.line_no());
    t.history.push_back(r);
  }

  tokens = lines.next();
  expect(tokens, "x", 1);
  const auto x_count =
      static_cast<std::size_t>(parse_number(tokens[1], lines.line_no()));
  t.x.reserve(x_count);
  for (std::size_t i = 0; i < x_count; ++i) {
    tokens = lines.next();
    expect(tokens, "v", 1);
    t.x.push_back(parse_number(tokens[1], lines.line_no()));
  }

  tokens = lines.next();
  if (tokens.empty() || tokens[0] != "end") {
    throw TraceError("trace line " + std::to_string(lines.line_no()) +
                     ": missing 'end' terminator (truncated trace?)");
  }
  return t;
}

void save_trace(const Trace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw TraceError("cannot open for writing: " + path);
  write_trace(trace, out);
  if (!out) throw TraceError("write failed: " + path);
}

Trace load_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw TraceError("cannot open: " + path);
  return read_trace(in);
}

TraceDiff compare_traces(const Trace& golden, const Trace& candidate,
                         double tol) {
  TraceDiff diff;
  auto fail = [&](const std::string& message) {
    diff.identical = false;
    diff.message = message;
    return diff;
  };

  // Profile metadata must agree exactly; a mismatch means the candidate was
  // not produced under the golden profile, which is a setup error rather
  // than a numeric divergence.
  if (golden.network != candidate.network) {
    return fail("network mismatch: golden '" + golden.network + "', got '" +
                candidate.network + "'");
  }
  if (golden.algorithm != candidate.algorithm) {
    return fail("algorithm mismatch: golden '" + golden.algorithm +
                "', got '" + candidate.algorithm + "'");
  }
  if (golden.rho != candidate.rho || golden.eps_rel != candidate.eps_rel ||
      golden.check_every != candidate.check_every ||
      golden.record_every != candidate.record_every) {
    return fail("solve profile mismatch (rho/eps_rel/check_every/"
                "record_every): candidate was not run under the golden "
                "profile");
  }

  if (golden.status != candidate.status) {
    return fail("status mismatch: golden '" + golden.status + "', got '" +
                candidate.status + "'");
  }
  if (golden.iterations != candidate.iterations) {
    return fail("iteration count mismatch: golden " +
                std::to_string(golden.iterations) + ", got " +
                std::to_string(candidate.iterations));
  }
  if (golden.history.size() != candidate.history.size()) {
    return fail("history length mismatch: golden " +
                std::to_string(golden.history.size()) + ", got " +
                std::to_string(candidate.history.size()));
  }
  for (std::size_t k = 0; k < golden.history.size(); ++k) {
    const IterationRecord& g = golden.history[k];
    const IterationRecord& c = candidate.history[k];
    if (g.iteration != c.iteration) {
      return fail("history[" + std::to_string(k) +
                  "] iteration mismatch: golden " +
                  std::to_string(g.iteration) + ", got " +
                  std::to_string(c.iteration));
    }
    struct Field {
      const char* name;
      double g, c;
    };
    for (const Field& f : {Field{"primal_residual", g.primal_residual,
                                 c.primal_residual},
                           Field{"dual_residual", g.dual_residual,
                                 c.dual_residual},
                           Field{"eps_primal", g.eps_primal, c.eps_primal},
                           Field{"eps_dual", g.eps_dual, c.eps_dual},
                           Field{"rho", g.rho, c.rho}}) {
      if (!matches(f.g, f.c, tol)) {
        return fail("first divergence at iteration " +
                    std::to_string(g.iteration) + ": " + f.name + " " +
                    value_pair(f.g, f.c));
      }
    }
  }
  if (golden.x.size() != candidate.x.size()) {
    return fail("iterate size mismatch: golden " +
                std::to_string(golden.x.size()) + ", got " +
                std::to_string(candidate.x.size()));
  }
  for (std::size_t i = 0; i < golden.x.size(); ++i) {
    if (!matches(golden.x[i], candidate.x[i], tol)) {
      return fail("final iterate diverges at x[" + std::to_string(i) +
                  "]: " + value_pair(golden.x[i], candidate.x[i]));
    }
  }
  if (!matches(golden.objective, candidate.objective, tol)) {
    return fail("objective diverges: " +
                value_pair(golden.objective, candidate.objective));
  }
  return diff;
}

Trace trace_suffix(const Trace& trace, int after_iteration) {
  Trace t = trace;
  t.history.clear();
  for (const IterationRecord& r : trace.history) {
    if (r.iteration > after_iteration) t.history.push_back(r);
  }
  return t;
}

std::uint64_t trace_digest(const Trace& trace) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const IterationRecord& r : trace.history) {
    fnv(&h, static_cast<double>(r.iteration));
    fnv(&h, r.primal_residual);
    fnv(&h, r.dual_residual);
    fnv(&h, r.eps_primal);
    fnv(&h, r.eps_dual);
    fnv(&h, r.rho);
  }
  for (double v : trace.x) fnv(&h, v);
  fnv(&h, trace.objective);
  return h;
}

AdmmOptions golden_profile() {
  AdmmOptions opt;
  opt.rho = 100.0;
  opt.eps_rel = 1e-3;
  opt.max_iterations = 50000;
  opt.check_every = 10;
  opt.record_every = 1;
  return opt;
}

}  // namespace dopf::verify
