#include "verify/mutation.hpp"

#include <string>
#include <utility>

namespace dopf::verify {

using dopf::core::ExecutionBackend;
using dopf::core::PackedLocalSolvers;
using dopf::core::PackedState;
using dopf::core::ResidualSums;

namespace {

class MutantBackend final : public ExecutionBackend {
 public:
  MutantBackend(std::unique_ptr<ExecutionBackend> inner, MutationSpec spec)
      : inner_(std::move(inner)),
        spec_(spec),
        name_("mutant(" + std::string(inner_->name()) + ")") {}

  const char* name() const override { return name_.c_str(); }

  void global_update(const PackedLocalSolvers& pack,
                     PackedState& state) override {
    inner_->global_update(pack, state);
  }

  void local_update(const PackedLocalSolvers& pack,
                    PackedState& state) override {
    inner_->local_update(pack, state);
    if (++calls_ == spec_.local_update_call && !state.z.empty()) {
      state.z[spec_.z_position % state.z.size()] += spec_.delta;
    }
  }

  void dual_update(const PackedLocalSolvers& pack,
                   PackedState& state) override {
    inner_->dual_update(pack, state);
  }

  ResidualSums residual_sums(const PackedLocalSolvers& pack,
                             const PackedState& state) override {
    return inner_->residual_sums(pack, state);
  }

 private:
  std::unique_ptr<ExecutionBackend> inner_;
  MutationSpec spec_;
  std::string name_;
  int calls_ = 0;
};

}  // namespace

std::unique_ptr<ExecutionBackend> make_mutant_backend(
    std::unique_ptr<ExecutionBackend> inner, const MutationSpec& spec) {
  return std::make_unique<MutantBackend>(std::move(inner), spec);
}

}  // namespace dopf::verify
