#include "verify/adversarial.hpp"

#include <cmath>
#include <cstdio>
#include <limits>
#include <random>
#include <utility>

#include "feeders/synthetic.hpp"
#include "linalg/cholesky.hpp"
#include "network/network.hpp"
#include "opf/decompose.hpp"
#include "opf/model.hpp"
#include "verify/fuzzer.hpp"

namespace dopf::verify {

using dopf::core::AdmmOptions;
using dopf::core::AdmmResult;
using dopf::core::SolverFreeAdmm;
using dopf::network::Network;
using dopf::network::Phase;
using dopf::network::PhaseSet;
using dopf::opf::OpfModel;
using dopf::robust::PreflightPolicy;

const char* to_string(AdversarialMutation mutation) {
  switch (mutation) {
    case AdversarialMutation::kScaleBlowup: return "scale-blowup";
    case AdversarialMutation::kScaleCollapse: return "scale-collapse";
    case AdversarialMutation::kMixedUnits: return "mixed-units";
    case AdversarialMutation::kDuplicateRow: return "duplicate-row";
    case AdversarialMutation::kNearDuplicateRow: return "near-duplicate-row";
    case AdversarialMutation::kInvertedBox: return "inverted-box";
    case AdversarialMutation::kDegenerateBox: return "degenerate-box";
    case AdversarialMutation::kOrphanPhase: return "orphan-phase";
    case AdversarialMutation::kNanLoad: return "nan-load";
    case AdversarialMutation::kInfImpedance: return "inf-impedance";
    case AdversarialMutation::kNegativeTap: return "negative-tap";
    case AdversarialMutation::kCount: break;
  }
  return "unknown";
}

const char* to_string(AdversarialOutcome outcome) {
  switch (outcome) {
    case AdversarialOutcome::kSolved: return "solved";
    case AdversarialOutcome::kRejected: return "rejected";
    case AdversarialOutcome::kDiverged: return "diverged";
    case AdversarialOutcome::kFailed: return "FAILED";
  }
  return "unknown";
}

AdversarialOptions::AdversarialOptions() {
  // The corpus cares about "finite result or typed rejection", not tight
  // convergence: a small budget keeps 200 cases inside a CI slice.
  admm.eps_rel = 1e-2;
  admm.max_iterations = 4000;
  admm.check_every = 10;
}

namespace {

/// Deliberately corrupt the feeder (network-stage mutations).
void mutate_network(Network* net, AdversarialMutation mutation,
                    std::mt19937_64* rng) {
  auto pick = [&](std::size_t n) {
    return static_cast<int>(
        std::uniform_int_distribution<std::size_t>(0, n - 1)(*rng));
  };
  switch (mutation) {
    case AdversarialMutation::kScaleBlowup:
    case AdversarialMutation::kScaleCollapse: {
      const double s =
          mutation == AdversarialMutation::kScaleBlowup ? 1e12 : 1e-12;
      auto& line = net->line_mutable(pick(net->num_lines()));
      for (std::size_t i = 0; i < 3; ++i) {
        for (std::size_t j = 0; j < 3; ++j) {
          line.r(i, j) *= s;
          line.x(i, j) *= s;
        }
      }
      break;
    }
    case AdversarialMutation::kMixedUnits: {
      // Column-scale the impedance blocks so single flow equations mix
      // coefficients 12 decades apart — the "ohms in one column, micro-ohms
      // in another" data-entry accident.
      static const double kScale[3] = {1.0, 1e8, 1e12};
      auto& line = net->line_mutable(pick(net->num_lines()));
      for (std::size_t i = 0; i < 3; ++i) {
        for (std::size_t j = 0; j < 3; ++j) {
          line.r(i, j) *= kScale[j];
          line.x(i, j) *= kScale[j];
        }
      }
      break;
    }
    case AdversarialMutation::kInvertedBox: {
      auto& bus = net->bus_mutable(pick(net->num_buses()));
      const Phase p = *bus.phases.phases().begin();
      std::swap(bus.w_min[p], bus.w_max[p]);
      bus.w_min[p] += 0.05;  // ensure strictly inverted even if equal
      break;
    }
    case AdversarialMutation::kDegenerateBox: {
      auto& bus = net->bus_mutable(pick(net->num_buses()));
      for (Phase p : bus.phases.phases()) bus.w_max[p] = bus.w_min[p];
      break;
    }
    case AdversarialMutation::kOrphanPhase: {
      // Claim all three phases on some bus whose service is narrower; if
      // every bus is already three-phase, narrow a line instead (orphaning
      // whatever it used to deliver downstream).
      const std::size_t n = net->num_buses();
      const std::size_t start = static_cast<std::size_t>(pick(n));
      for (std::size_t k = 0; k < n; ++k) {
        auto& bus = net->bus_mutable(static_cast<int>((start + k) % n));
        if (bus.phases.count() < 3) {
          bus.phases = PhaseSet::abc();
          return;
        }
      }
      auto& line = net->line_mutable(pick(net->num_lines()));
      line.phases = PhaseSet::single(*line.phases.phases().begin());
      break;
    }
    case AdversarialMutation::kNanLoad: {
      const double nan = std::numeric_limits<double>::quiet_NaN();
      if (net->num_loads() > 0) {
        auto& load = net->load_mutable(pick(net->num_loads()));
        load.p_ref[*load.phases.phases().begin()] = nan;
      } else {
        auto& bus = net->bus_mutable(pick(net->num_buses()));
        bus.w_max[*bus.phases.phases().begin()] = nan;
      }
      break;
    }
    case AdversarialMutation::kInfImpedance: {
      auto& line = net->line_mutable(pick(net->num_lines()));
      line.r(0, 0) = std::numeric_limits<double>::infinity();
      break;
    }
    case AdversarialMutation::kNegativeTap: {
      auto& line = net->line_mutable(pick(net->num_lines()));
      const Phase p = *line.phases.phases().begin();
      line.tap_ratio[p] = -line.tap_ratio[p];
      break;
    }
    default:
      break;
  }
}

/// Model-stage mutations: constraint-row damage the feeder format cannot
/// express directly.
void mutate_model(OpfModel* model, AdversarialMutation mutation,
                  std::mt19937_64* rng) {
  if (model->equations.empty()) return;
  const std::size_t k = std::uniform_int_distribution<std::size_t>(
      0, model->equations.size() - 1)(*rng);
  dopf::opf::Equation dup = model->equations[k];
  dup.name += "~dup";
  if (mutation == AdversarialMutation::kNearDuplicateRow) {
    // Consistent but nearly parallel: survives the RREF tolerance (1e-9)
    // yet drives the Gram pivot below the Cholesky tolerance — the
    // motivating failure for the conditioning analyzer.
    const double s = 1.0 + 1e-8;
    for (auto& term : dup.terms) term.second *= s;
    dup.rhs *= s;
  }
  model->equations.push_back(std::move(dup));
}

bool is_model_stage(AdversarialMutation mutation) {
  return mutation == AdversarialMutation::kDuplicateRow ||
         mutation == AdversarialMutation::kNearDuplicateRow;
}

AdversarialCase run_case(std::uint64_t seed, AdversarialMutation mutation,
                         PreflightPolicy policy, const AdmmOptions& admm_opt) {
  AdversarialCase result;
  result.seed = seed;
  result.mutation = mutation;
  result.policy = policy;
  std::mt19937_64 rng(seed ^ 0xc0ffee123456789ull);

  try {
    Network net = dopf::feeders::synthetic_feeder(random_spec(seed));
    if (!is_model_stage(mutation)) mutate_network(&net, mutation, &rng);
    OpfModel model = dopf::opf::build_model(net);
    if (is_model_stage(mutation)) mutate_model(&model, mutation, &rng);

    dopf::robust::PreflightOptions popt;
    popt.policy = policy;
    dopf::opf::DistributedProblem problem;
    const dopf::robust::PreflightReport report =
        dopf::robust::run_preflight(net, model, &problem, popt);
    if (!report.accepted) {
      result.outcome = AdversarialOutcome::kRejected;
      result.detail = report.rejection;
      return result;
    }

    AdmmOptions opt = admm_opt;
    opt.projector = report.projector_options();
    SolverFreeAdmm admm(problem, opt);
    const AdmmResult res = admm.solve();
    if (res.converged) {
      bool finite = std::isfinite(res.objective);
      for (double v : admm.x()) finite = finite && std::isfinite(v);
      for (double v : admm.z()) finite = finite && std::isfinite(v);
      if (!finite) {
        result.outcome = AdversarialOutcome::kFailed;
        result.detail = "converged result contains non-finite entries";
        return result;
      }
      result.outcome = AdversarialOutcome::kSolved;
    } else {
      result.outcome = AdversarialOutcome::kDiverged;
    }
    result.detail = dopf::core::to_string(res.status);
    return result;
  } catch (const dopf::robust::PreflightError& e) {
    result.outcome = AdversarialOutcome::kRejected;
    result.detail = e.what();
  } catch (const dopf::opf::ModelError& e) {
    result.outcome = AdversarialOutcome::kRejected;
    result.detail = e.what();
  } catch (const dopf::network::NetworkError& e) {
    result.outcome = AdversarialOutcome::kRejected;
    result.detail = e.what();
  } catch (const dopf::linalg::SingularMatrixError& e) {
    result.outcome = AdversarialOutcome::kRejected;
    result.detail = e.what();
  } catch (const std::invalid_argument& e) {
    result.outcome = AdversarialOutcome::kRejected;
    result.detail = e.what();
  } catch (const std::exception& e) {
    result.outcome = AdversarialOutcome::kFailed;
    result.detail = std::string("untyped exception escaped: ") + e.what();
  }
  return result;
}

}  // namespace

int AdversarialReport::num_failed() const {
  int failed = 0;
  for (const AdversarialCase& c : cases) {
    if (!c.acceptable()) ++failed;
  }
  return failed;
}

std::size_t AdversarialReport::count_outcome(AdversarialOutcome outcome) const {
  std::size_t n = 0;
  for (const AdversarialCase& c : cases) {
    if (c.outcome == outcome) ++n;
  }
  return n;
}

std::string AdversarialReport::summary() const {
  std::string out;
  for (const AdversarialCase& c : cases) {
    if (c.acceptable()) continue;
    char line[256];
    std::snprintf(line, sizeof(line),
                  "seed %llu [%s, policy=%s]: %s — %s\n",
                  static_cast<unsigned long long>(c.seed),
                  verify::to_string(c.mutation),
                  dopf::robust::to_string(c.policy),
                  verify::to_string(c.outcome), c.detail.c_str());
    out += line;
  }
  char verdict[192];
  std::snprintf(verdict, sizeof(verdict),
                "adversarial: %zu cases — %zu solved, %zu rejected, "
                "%zu diverged, %d FAILED\n",
                cases.size(), count_outcome(AdversarialOutcome::kSolved),
                count_outcome(AdversarialOutcome::kRejected),
                count_outcome(AdversarialOutcome::kDiverged), num_failed());
  out += verdict;
  return out;
}

AdversarialReport run_adversarial(const AdversarialOptions& options) {
  static const PreflightPolicy kPolicies[3] = {PreflightPolicy::kWarn,
                                               PreflightPolicy::kRemediate,
                                               PreflightPolicy::kStrict};
  const int num_mutations = static_cast<int>(AdversarialMutation::kCount);
  AdversarialReport report;
  report.cases.reserve(static_cast<std::size_t>(options.num_cases));
  for (int i = 0; i < options.num_cases; ++i) {
    report.cases.push_back(
        run_case(options.base_seed + static_cast<std::uint64_t>(i),
                 static_cast<AdversarialMutation>(i % num_mutations),
                 kPolicies[i % 3], options.admm));
  }
  return report;
}

}  // namespace dopf::verify
