#include "verify/invariants.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace dopf::verify {

using dopf::opf::Component;
using dopf::opf::DistributedProblem;
using dopf::opf::OpfModel;
using dopf::solver::LpSolution;

namespace {

std::string format_line(const char* name, double value) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "  %-18s %.6e", name, value);
  return buf;
}

std::string format_failure(const char* what, double value, double tol) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s: %.6e exceeds tolerance %.1e", what,
                value, tol);
  return buf;
}

}  // namespace

std::vector<std::string> InvariantReport::failures(
    const InvariantOptions& options) const {
  std::vector<std::string> out;
  if (local_feasibility > options.local_feasibility_tol) {
    out.push_back(
        format_failure("local feasibility ||A_s z_s - b_s||_inf",
                       local_feasibility, options.local_feasibility_tol) +
        (worst_component.empty() ? "" : " (component " + worst_component + ")"));
  }
  if (box_violation > options.box_tol) {
    out.push_back(format_failure("box violation of the global iterate",
                                 box_violation, options.box_tol));
  }
  if (consensus_gap > options.consensus_tol) {
    out.push_back(format_failure("consensus gap ||Bx - z||_inf", consensus_gap,
                                 options.consensus_tol));
  }
  if (model_residual >= 0.0 && model_residual > options.model_residual_tol) {
    out.push_back(format_failure("centralized model residual max|Ax - b|",
                                 model_residual, options.model_residual_tol));
  }
  if (kkt_stationarity >= 0.0 && kkt_stationarity > options.kkt_tol) {
    out.push_back(format_failure("KKT stationarity vs reference multipliers",
                                 kkt_stationarity, options.kkt_tol));
  }
  if (objective_gap >= 0.0 && objective_gap > options.objective_tol) {
    out.push_back(format_failure("relative objective gap vs reference",
                                 objective_gap, options.objective_tol));
  }
  return out;
}

std::string InvariantReport::to_string() const {
  std::string s = "invariants:\n";
  s += format_line("local_feasibility", local_feasibility);
  if (!worst_component.empty()) s += "  (worst: " + worst_component + ")";
  s += '\n';
  s += format_line("box_violation", box_violation) + '\n';
  s += format_line("consensus_gap", consensus_gap) + '\n';
  s += format_line("primal_residual", primal_residual) + '\n';
  if (model_residual >= 0.0) {
    s += format_line("model_residual", model_residual) + '\n';
  }
  if (kkt_stationarity >= 0.0) {
    s += format_line("kkt_stationarity", kkt_stationarity) + '\n';
  }
  if (objective_gap >= 0.0) {
    s += format_line("objective_gap", objective_gap) + '\n';
  }
  return s;
}

InvariantReport check_invariants(const DistributedProblem& problem,
                                 std::span<const double> x,
                                 std::span<const double> z) {
  if (x.size() != problem.num_vars) {
    throw std::invalid_argument("check_invariants: x has size " +
                                std::to_string(x.size()) + ", expected " +
                                std::to_string(problem.num_vars));
  }
  if (z.size() != problem.total_local_vars()) {
    throw std::invalid_argument("check_invariants: z has size " +
                                std::to_string(z.size()) + ", expected " +
                                std::to_string(problem.total_local_vars()));
  }

  InvariantReport report;
  double pres2 = 0.0;
  std::size_t offset = 0;
  for (const Component& comp : problem.components) {
    const std::size_t ns = comp.num_vars();
    const std::span<const double> zs = z.subspan(offset, ns);

    // A_s z_s = b_s, straight from the component's equality block.
    for (std::size_t r = 0; r < comp.num_rows(); ++r) {
      double axb = -comp.b[r];
      for (std::size_t j = 0; j < ns; ++j) {
        axb += comp.a(r, j) * zs[j];
      }
      if (std::abs(axb) > report.local_feasibility) {
        report.local_feasibility = std::abs(axb);
        report.worst_component = comp.name;
      }
    }

    // Consensus between the global iterate and this component's copies.
    for (std::size_t j = 0; j < ns; ++j) {
      const double gap = x[static_cast<std::size_t>(comp.global[j])] - zs[j];
      report.consensus_gap = std::max(report.consensus_gap, std::abs(gap));
      pres2 += gap * gap;
    }
    offset += ns;
  }
  report.primal_residual = std::sqrt(pres2);

  for (std::size_t i = 0; i < x.size(); ++i) {
    report.box_violation = std::max(
        {report.box_violation, problem.lb[i] - x[i], x[i] - problem.ub[i]});
  }
  return report;
}

void add_model_check(const OpfModel& model, std::span<const double> x,
                     InvariantReport* report) {
  report->model_residual = model.equation_residual(x);
}

void add_reference_check(const OpfModel& model, std::span<const double> x,
                         const LpSolution& reference,
                         InvariantReport* report) {
  if (reference.y.size() != model.num_equations()) {
    throw std::invalid_argument(
        "add_reference_check: reference multipliers do not match the model "
        "(" +
        std::to_string(reference.y.size()) + " vs " +
        std::to_string(model.num_equations()) + " equations)");
  }
  // Reduced gradient g = c - A'y, accumulated equation by equation so the
  // check shares no code with the solvers' CSR kernels.
  std::vector<double> grad(model.c.begin(), model.c.end());
  for (std::size_t e = 0; e < model.equations.size(); ++e) {
    const double ye = reference.y[e];
    if (ye == 0.0) continue;
    for (const auto& [var, coeff] : model.equations[e].terms) {
      grad[static_cast<std::size_t>(var)] -= coeff * ye;
    }
  }
  // Projected-gradient stationarity: at a KKT point of (7), stepping along
  // -g and clipping back to the box returns the same point.
  double stat = 0.0;
  for (std::size_t i = 0; i < grad.size(); ++i) {
    const double stepped =
        std::clamp(x[i] - grad[i], model.lb[i], model.ub[i]);
    stat = std::max(stat, std::abs(x[i] - stepped));
  }
  report->kkt_stationarity = stat;
  report->objective_gap = std::abs(model.objective(x) - reference.objective) /
                          (1.0 + std::abs(reference.objective));
}

}  // namespace dopf::verify
