#pragma once

#include <span>
#include <string>
#include <vector>

#include "opf/decompose.hpp"
#include "opf/model.hpp"
#include "solver/interior_point.hpp"

namespace dopf::verify {

/// Tolerances for the invariant checks. The defaults are calibrated for the
/// paper's termination profile (eps_rel ~ 1e-3..5e-3): tight where the
/// algorithm guarantees exactness (projection feasibility, bound clipping)
/// and loose where only eps-level agreement is promised (consensus, KKT).
struct InvariantOptions {
  /// ||A_s z_s - b_s||_inf per component: z is a projection output, so this
  /// is factorization roundoff, not an eps-level quantity.
  double local_feasibility_tol = 1e-7;
  /// Bound violation of the global iterate: the global update clips, so any
  /// violation beyond roundoff means the clip kernel broke.
  double box_tol = 1e-9;
  /// ||B x - z||_inf consensus gap at termination.
  double consensus_tol = 5e-2;
  /// max_e |A x - b|_e of the centralized model at the global iterate.
  double model_residual_tol = 5e-2;
  /// Projected-gradient KKT stationarity against the reference multipliers.
  double kkt_tol = 5e-2;
  /// Relative objective gap against the reference optimum.
  double objective_tol = 2e-2;
};

/// Results of the independent invariant checks for one ADMM state. Values
/// below 0 mean "not evaluated" (the corresponding inputs were not given).
/// Every quantity is recomputed directly from the DistributedProblem's
/// component blocks (A_s, b_s, B_s) or the centralized model — never through
/// the packed SoA pool, the AffineProjector objects, or any backend — so a
/// bug in those layers cannot certify itself.
struct InvariantReport {
  /// max over components of ||A_s z_s - b_s||_inf.
  double local_feasibility = 0.0;
  std::string worst_component;  ///< name of the argmax component
  /// max violation of lb <= x <= ub.
  double box_violation = 0.0;
  /// ||B x - z||_inf.
  double consensus_gap = 0.0;
  /// ||B x - z||_2, the independently recomputed primal residual of (16).
  double primal_residual = 0.0;
  /// max_e |A x - b|_e of the centralized model (7); needs the model.
  double model_residual = -1.0;
  /// ||x - clip(x - (c - A'y), lb, ub)||_inf with the reference solver's
  /// equality multipliers y: zero exactly at a KKT point of (7).
  double kkt_stationarity = -1.0;
  /// |c'x - objective*| / (1 + |objective*|).
  double objective_gap = -1.0;

  /// Human-readable one-line-per-failure diagnostics (empty = all pass).
  std::vector<std::string> failures(const InvariantOptions& options) const;
  bool ok(const InvariantOptions& options) const {
    return failures(options).empty();
  }
  std::string to_string() const;
};

/// Check the backend-independent invariants of an ADMM state: per-component
/// feasibility of the local iterates z, box satisfaction of the global
/// iterate x, and the consensus gap between them.
InvariantReport check_invariants(const dopf::opf::DistributedProblem& problem,
                                 std::span<const double> x,
                                 std::span<const double> z);

/// Add the centralized-model residual max|Ax - b| at x to `report`.
void add_model_check(const dopf::opf::OpfModel& model,
                     std::span<const double> x, InvariantReport* report);

/// Add the KKT stationarity and objective-gap checks against a solved
/// centralized reference (its x is NOT compared directly — LP optima need
/// not be unique — only its multipliers and optimal value are used).
void add_reference_check(const dopf::opf::OpfModel& model,
                         std::span<const double> x,
                         const dopf::solver::LpSolution& reference,
                         InvariantReport* report);

}  // namespace dopf::verify
