#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/admm.hpp"
#include "robust/preflight.hpp"

namespace dopf::verify {

/// The adversarial corpus: seeded random feeders, each deliberately damaged
/// in one of the ways the preflight layer exists to catch. Every case must
/// end in exactly one of two acceptable states — solved (finite iterate,
/// typed status) or rejected with a typed diagnostic. A NaN escaping into a
/// "solved" result, or an untyped exception, is a harness failure.
enum class AdversarialMutation {
  kScaleBlowup,      ///< one line's impedance block scaled by 1e12
  kScaleCollapse,    ///< one line's impedance block scaled by 1e-12
  kMixedUnits,       ///< impedance entries re-scaled per-phase by 1..1e12
  kDuplicateRow,     ///< one model equation duplicated verbatim
  kNearDuplicateRow, ///< duplicated with coefficients scaled by 1 + 1e-8
  kInvertedBox,      ///< a bus voltage box with w_min > w_max
  kDegenerateBox,    ///< a bus voltage box pinned to lb == ub
  kOrphanPhase,      ///< a bus claims a phase no incident line carries
  kNanLoad,          ///< a load reference becomes IEEE NaN
  kInfImpedance,     ///< an impedance entry becomes IEEE +inf
  kNegativeTap,      ///< a transformer tap ratio goes non-positive
  kCount             ///< number of mutations (not a mutation)
};

const char* to_string(AdversarialMutation mutation);

/// How one adversarial case ended.
enum class AdversarialOutcome {
  kSolved,    ///< preflight accepted; ADMM returned a finite iterate
  kRejected,  ///< preflight (or a typed exception) diagnosed the damage
  kDiverged,  ///< accepted but ADMM reported diverged/stalled/iter-limit
  kFailed     ///< NaN/inf in a "solved" result, or an untyped escape
};

const char* to_string(AdversarialOutcome outcome);

struct AdversarialOptions {
  int num_cases = 200;
  std::uint64_t base_seed = 20260807;
  /// Small-budget ADMM profile for the solve leg (the corpus cares about
  /// "finite and typed", not tight convergence).
  dopf::core::AdmmOptions admm;

  AdversarialOptions();
};

struct AdversarialCase {
  std::uint64_t seed = 0;
  AdversarialMutation mutation = AdversarialMutation::kScaleBlowup;
  dopf::robust::PreflightPolicy policy = dopf::robust::PreflightPolicy::kWarn;
  AdversarialOutcome outcome = AdversarialOutcome::kFailed;
  /// Rejection diagnostic, solve status, or failure description.
  std::string detail;

  bool acceptable() const {
    return outcome != AdversarialOutcome::kFailed;
  }
};

struct AdversarialReport {
  std::vector<AdversarialCase> cases;

  int num_failed() const;
  std::size_t count_outcome(AdversarialOutcome outcome) const;
  bool ok() const { return num_failed() == 0; }
  /// One line per failed case plus an outcome histogram and verdict.
  std::string summary() const;
};

/// Run the corpus. Case i uses seed base_seed + i, mutation i % kCount, and
/// preflight policy i % 3 (warn / remediate / strict), so a full run covers
/// every (mutation, policy) pair. Never throws on case outcomes.
AdversarialReport run_adversarial(const AdversarialOptions& options = {});

}  // namespace dopf::verify
