#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

namespace dopf::verify {

/// The bit-exact text codec shared by the golden-trace serializer
/// (src/verify/trace.cpp) and the checkpoint serializer
/// (src/runtime/checkpoint.cpp). Header-only so runtime can reuse it
/// without a link-time dependency on dopf::verify.

/// Exact decimal-free rendering: C99 hex-float round-trips every bit.
inline std::string hex_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

/// Parse a full numeric token (decimal or hex-float, inf/nan included).
/// Returns false if the token is empty or has trailing garbage.
inline bool parse_double_token(const std::string& token, double* out) {
  const char* begin = token.c_str();
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  if (end == begin || *end != '\0') return false;
  *out = v;
  return true;
}

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) over raw bytes.
/// Guards checkpoint payloads against truncation and bit rot.
inline std::uint32_t crc32(std::string_view bytes,
                           std::uint32_t crc = 0xffffffffu) {
  for (unsigned char c : bytes) {
    crc ^= c;
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ (0xedb88320u & (0u - (crc & 1u)));
    }
  }
  return crc ^ 0xffffffffu;
}

}  // namespace dopf::verify
