#include "verify/fuzzer.hpp"

#include <cstdio>
#include <memory>
#include <random>
#include <utility>

#include "opf/decompose.hpp"
#include "opf/model.hpp"
#include "runtime/threaded_backend.hpp"
#include "simt/simt_backend.hpp"
#include "solver/reference.hpp"
#include "verify/trace.hpp"

namespace dopf::verify {

using dopf::core::AdmmOptions;
using dopf::core::AdmmResult;
using dopf::core::SolverFreeAdmm;
using dopf::feeders::SyntheticSpec;
using dopf::opf::DistributedProblem;

FuzzOptions::FuzzOptions() : admm(default_fuzz_admm()) {
  // Random feeders produce component blocks with worse conditioning than the
  // curated networks, so the (exact) projection carries a larger roundoff
  // residual. Still orders of magnitude below any genuine kernel defect.
  invariants.local_feasibility_tol = 1e-5;
  // The objective gap at a fixed eps_rel varies with conditioning; random
  // draws produce legitimate ~3% outliers that a curated network never hits.
  invariants.objective_tol = 5e-2;
}

AdmmOptions default_fuzz_admm() {
  AdmmOptions opt;
  opt.eps_rel = 1e-3;
  opt.max_iterations = 50000;
  opt.check_every = 10;
  opt.record_every = 1;
  return opt;
}

SyntheticSpec random_spec(std::uint64_t seed) {
  std::mt19937_64 rng(seed ^ 0x9e3779b97f4a7c15ull);
  auto uniform = [&](double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(rng);
  };
  auto uniform_int = [&](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  };

  SyntheticSpec spec;
  spec.num_buses = uniform_int(16, 48);
  spec.num_leaves = uniform_int(2, std::max(2, (spec.num_buses - 2) / 2));
  // Strictly radial, like the distribution feeders the decomposition
  // targets: tie lines slow consensus badly enough to blow the iteration
  // budget on unlucky draws.
  spec.num_extra_lines = 0;
  spec.keep_phases_prob = uniform(0.3, 0.9);
  spec.two_phase_prob = uniform(0.0, 0.3);
  spec.load_density = uniform(0.25, 0.8);
  spec.delta_prob = uniform(0.0, 0.4);
  spec.const_current_prob = uniform(0.0, 0.25);
  spec.const_impedance_prob = uniform(0.0, 0.25);
  spec.load_unit = uniform(0.1, 0.45);
  spec.min_delta_loads = uniform_int(0, 2);
  spec.drop_budget = uniform(0.04, 0.08);
  spec.transformer_prob = uniform(0.0, 0.3);
  spec.num_der = uniform_int(0, 3);
  spec.seed = seed;
  return spec;
}

namespace {

std::string case_label(std::uint64_t seed) {
  return "fuzz-" + std::to_string(seed);
}

/// Run one backend over a fresh solver and capture its trace.
Trace run_backend(const DistributedProblem& problem, const AdmmOptions& opt,
                  std::unique_ptr<dopf::core::ExecutionBackend> backend,
                  const std::string& label) {
  SolverFreeAdmm admm(problem, opt);
  const std::string backend_name = backend ? backend->name() : "serial";
  if (backend) admm.set_backend(std::move(backend));
  return Trace::from_result(admm.solve(), opt, label, backend_name);
}

}  // namespace

int FuzzReport::num_failed() const {
  int failed = 0;
  for (const FuzzCase& c : cases) {
    if (!c.passed()) ++failed;
  }
  return failed;
}

std::string FuzzReport::summary() const {
  std::string out;
  for (const FuzzCase& c : cases) {
    char line[256];
    std::snprintf(line, sizeof(line),
                  "seed %llu: %s | %zu components, %d iterations, "
                  "objective %.6f -> %s\n",
                  static_cast<unsigned long long>(c.seed),
                  c.feeder_summary.c_str(), c.components, c.iterations,
                  c.objective, c.passed() ? "pass" : "FAIL");
    out += line;
    for (const std::string& f : c.failures) out += "    " + f + "\n";
  }
  char verdict[96];
  std::snprintf(verdict, sizeof(verdict), "fuzz: %d/%zu cases passed\n",
                static_cast<int>(cases.size()) - num_failed(), cases.size());
  out += verdict;
  return out;
}

FuzzReport run_fuzz(const FuzzOptions& options) {
  FuzzReport report;
  report.cases.reserve(static_cast<std::size_t>(options.num_cases));

  for (int i = 0; i < options.num_cases; ++i) {
    FuzzCase fuzz_case;
    fuzz_case.seed = options.base_seed + static_cast<std::uint64_t>(i);
    const std::string label = case_label(fuzz_case.seed);

    const SyntheticSpec spec = random_spec(fuzz_case.seed);
    const dopf::network::Network net = dopf::feeders::synthetic_feeder(spec);
    fuzz_case.feeder_summary = net.summary();
    const dopf::opf::OpfModel model = dopf::opf::build_model(net);
    const DistributedProblem problem = dopf::opf::decompose(net, model);
    fuzz_case.components = problem.num_components();

    // Serial run: the anchor trajectory (and the z for invariant checks).
    SolverFreeAdmm serial_solver(problem, options.admm);
    AdmmResult serial = serial_solver.solve();
    const Trace serial_trace =
        Trace::from_result(serial, options.admm, label, "serial");
    fuzz_case.iterations = serial.iterations;
    fuzz_case.converged = serial.converged;
    fuzz_case.objective = serial.objective;
    fuzz_case.digest = trace_digest(serial_trace);
    if (!serial.converged) {
      fuzz_case.failures.push_back(
          "serial run did not converge within " +
          std::to_string(options.admm.max_iterations) + " iterations (" +
          dopf::core::to_string(serial.status) + std::string(")"));
    }

    // Differential legs: threaded and SIMT must be byte-identical.
    {
      const Trace threaded = run_backend(
          problem, options.admm,
          dopf::runtime::make_threaded_backend(options.threads), label);
      const TraceDiff diff = compare_traces(serial_trace, threaded, 0.0);
      if (!diff.identical) {
        fuzz_case.failures.push_back("threaded backend diverges from serial: " +
                                     diff.message);
      }
    }
    {
      const Trace simt =
          run_backend(problem, options.admm,
                      std::make_unique<dopf::simt::SimtBackend>(), label);
      const TraceDiff diff = compare_traces(serial_trace, simt, 0.0);
      if (!diff.identical) {
        fuzz_case.failures.push_back("simt backend diverges from serial: " +
                                     diff.message);
      }
    }

    // Backend-independent invariants of the converged state.
    InvariantReport invariants =
        check_invariants(problem, serial_solver.x(), serial_solver.z());
    add_model_check(model, serial_solver.x(), &invariants);

    if (options.run_reference) {
      const dopf::solver::LpSolution reference =
          dopf::solver::reference_solve(model);
      if (reference.status != dopf::solver::LpStatus::kOptimal) {
        fuzz_case.failures.push_back(
            std::string("reference interior-point solve failed: ") +
            dopf::solver::to_string(reference.status));
      } else {
        add_reference_check(model, serial_solver.x(), reference, &invariants);
      }
    }
    for (std::string& failure : invariants.failures(options.invariants)) {
      fuzz_case.failures.push_back(std::move(failure));
    }

    report.cases.push_back(std::move(fuzz_case));
  }
  return report;
}

}  // namespace dopf::verify
