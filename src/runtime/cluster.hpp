#pragma once

#include <span>
#include <vector>

#include "runtime/comm_model.hpp"
#include "runtime/fault.hpp"
#include "runtime/partition.hpp"

namespace dopf::runtime {

/// Per-iteration cost of the distributed local-update phase on a virtual
/// cluster (the quantities of the paper's Fig. 1).
struct LocalUpdatePhase {
  double compute_seconds = 0.0;        ///< makespan of subproblem work
  double communication_seconds = 0.0;  ///< aggregator <-> rank traffic
  double staging_seconds = 0.0;        ///< GPU<->host staging (GPU ranks)

  double total() const {
    return compute_seconds + communication_seconds + staging_seconds;
  }
};

/// A virtual cluster of `ranks` workers coordinated by a central aggregator
/// (the "operator" of Sec. III-A). It prices one ADMM iteration's
/// local-update phase from
///   - measured (or simulated) per-component compute seconds, and
///   - the per-component consensus payload sizes (n_s doubles down,
///     2 n_s doubles up: x_s and lambda_s — Sec. IV-E),
/// under an alpha-beta communication model with the aggregator serializing
/// its per-rank messages. Compute decreases with ranks while communication
/// grows — exactly the trade-off of Fig. 1(b)/(c).
class VirtualCluster {
 public:
  VirtualCluster(std::size_t ranks, CommModel comm,
                 bool gpu_ranks = false, StagingModel staging = {});

  std::size_t ranks() const { return ranks_; }

  LocalUpdatePhase price_local_update(
      const Partition& partition,
      std::span<const double> component_seconds,
      std::span<const std::size_t> component_payload_vars) const;

  /// Convenience: block partition of the given component count.
  LocalUpdatePhase price_local_update(
      std::span<const double> component_seconds,
      std::span<const std::size_t> component_payload_vars) const;

  /// Fault-aware pricing: ranks hit by a straggle fault at `iteration` have
  /// their compute scaled by the injected factor, and dropped or corrupted
  /// rank uploads add the retry cost (detection timeouts + re-sends) of the
  /// recovery policy to the communication total. The functional result of
  /// the iteration is unchanged — only its simulated price moves.
  LocalUpdatePhase price_local_update(
      const Partition& partition,
      std::span<const double> component_seconds,
      std::span<const std::size_t> component_payload_vars,
      const FaultInjector& faults, int iteration,
      const RecoveryPolicy& recovery) const;

 private:
  std::size_t ranks_;
  CommModel comm_;
  bool gpu_ranks_;
  StagingModel staging_;
};

}  // namespace dopf::runtime
