#pragma once

#include <memory>
#include <string>
#include <vector>

#include "network/network.hpp"
#include "opf/decompose.hpp"
#include "opf/model.hpp"

namespace dopf::runtime {

/// A fully prepared test instance: feeder, centralized model (7), and
/// component-wise decomposition (9). Shared by the benches, examples and
/// integration tests.
struct Instance {
  std::string name;
  dopf::network::Network net;
  dopf::opf::OpfModel model;
  dopf::opf::DistributedProblem problem;
};

/// Build one of the paper's instances (or the quick stand-in):
/// "ieee13", "ieee123", "ieee8500", "ieee8500_mini". "ieee13_overload" is
/// ieee13 with loads scaled 50x past capacity — deliberately infeasible,
/// for stall/watchdog testing. Throws std::invalid_argument for unknown
/// names.
Instance make_instance(const std::string& name,
                       const dopf::opf::DecomposeOptions& options = {});

/// The three instances evaluated in the paper, in size order.
std::vector<std::string> paper_instance_names();

}  // namespace dopf::runtime
