#include "runtime/health.hpp"

#include <sstream>

namespace dopf::runtime {

const char* to_string(DeviceState state) {
  switch (state) {
    case DeviceState::kHealthy:
      return "healthy";
    case DeviceState::kDegraded:
      return "degraded";
    case DeviceState::kQuarantined:
      return "quarantined";
    case DeviceState::kProbation:
      return "probation";
  }
  return "?";
}

DeviceState DeviceHealth::state() const {
  if (quarantined_) {
    return probation_streak_ > 0 ? DeviceState::kProbation
                                 : DeviceState::kQuarantined;
  }
  return degraded_ ? DeviceState::kDegraded : DeviceState::kHealthy;
}

bool DeviceHealth::unhealthy_now() const {
  return ewma_straggle_ > policy_.straggle_threshold ||
         consecutive_failures_ >= policy_.failure_threshold;
}

DeviceState DeviceHealth::observe(double straggle_factor,
                                  int delivery_failures) {
  ewma_straggle_ = policy_.ewma_alpha * straggle_factor +
                   (1.0 - policy_.ewma_alpha) * ewma_straggle_;
  if (delivery_failures > 0) {
    ++consecutive_failures_;
  } else {
    consecutive_failures_ = 0;
  }

  if (quarantined_) {
    // Probation: the device is out of the partition but still probed. A
    // clean streak of `probation_iterations` observations earns readmission.
    if (unhealthy_now()) {
      probation_streak_ = 0;
    } else {
      ++probation_streak_;
      if (probation_streak_ >= policy_.probation_iterations) {
        readmission_pending_ = true;
      }
    }
    return state();
  }

  if (degraded_) {
    if (unhealthy_now()) {
      ++staleness_;
      if (staleness_ > policy_.staleness_bound) {
        // Past the bound the stale contribution is no longer trustworthy:
        // hand the device to the caller for quarantine + re-partition.
        quarantine_pending_ = true;
      }
    } else {
      // Recovered within the staleness bound: rejoin immediately.
      degraded_ = false;
      staleness_ = 0;
    }
    return state();
  }

  if (unhealthy_now()) {
    degraded_ = true;
    staleness_ = 1;
    if (staleness_ > policy_.staleness_bound) quarantine_pending_ = true;
  }
  return state();
}

void DeviceHealth::acknowledge() {
  if (quarantine_pending_) {
    quarantine_pending_ = false;
    quarantined_ = true;
    degraded_ = false;
    staleness_ = 0;
    probation_streak_ = 0;
  } else if (readmission_pending_) {
    readmission_pending_ = false;
    quarantined_ = false;
    probation_streak_ = 0;
    // Forgive the history that got the device quarantined so it is not
    // instantly re-degraded on its first healthy iteration back.
    ewma_straggle_ = 1.0;
    consecutive_failures_ = 0;
  }
}

std::string DeviceHealth::to_string() const {
  std::ostringstream out;
  out << dopf::runtime::to_string(state()) << " ewma=" << ewma_straggle_
      << " failures=" << consecutive_failures_;
  if (degraded_) out << " staleness=" << staleness_;
  if (quarantined_) out << " streak=" << probation_streak_;
  return out.str();
}

}  // namespace dopf::runtime
