#pragma once

#include "core/cancel.hpp"

namespace dopf::runtime {

/// Install `token->request("interrupted by signal")` as the SIGINT/SIGTERM
/// disposition, via sigaction WITHOUT SA_RESTART: a signal must interrupt
/// blocking I/O (accept, poll, read on a socket) with EINTR so the process
/// notices the cancellation promptly instead of only at the next solver
/// termination check. `std::signal` gives no such guarantee — glibc
/// installs SA_RESTART semantics through it, which can leave a drained
/// server wedged in accept() until the next connection arrives.
///
/// Shared by dopf_solve and dopf_serve so both tools have identical
/// shutdown behavior. The token must have static storage duration (the
/// handler runs until process exit). Calling again replaces the token.
void install_cancel_signal_handlers(dopf::core::CancelToken* token);

}  // namespace dopf::runtime
