#include "runtime/threaded_backend.hpp"

#include <chrono>

#include "core/packed_kernels.hpp"

namespace dopf::runtime {

using dopf::core::PackedLocalSolvers;
using dopf::core::PackedState;
using dopf::core::ResidualSums;
namespace kernels = dopf::core::kernels;

ThreadedBackend::ThreadedBackend(int threads) : pool_(threads) {}

void ThreadedBackend::global_update(const PackedLocalSolvers& pack,
                                    PackedState& state) {
  pool_.parallel_for(pack.num_global(),
                     [&](int, std::size_t begin, std::size_t end) {
                       for (std::size_t i = begin; i < end; ++i) {
                         kernels::global_entry(pack, state.z.data(),
                                               state.lambda.data(), state.rho,
                                               i, state.x.data());
                       }
                     });
}

void ThreadedBackend::local_update(const PackedLocalSolvers& pack,
                                   PackedState& state) {
  using Clock = std::chrono::steady_clock;
  const bool timed = !state.component_seconds.empty();
  pool_.parallel_for(
      pack.num_components(), [&](int, std::size_t begin, std::size_t end) {
        for (std::size_t s = begin; s < end; ++s) {
          const auto start = timed ? Clock::now() : Clock::time_point{};
          kernels::stage_component(pack, state.x.data(), state.lambda.data(),
                                   state.rho, s, state.y.data());
          kernels::project_component(pack, s, state.y.data(), state.z.data());
          if (timed) {
            state.component_seconds[s] +=
                std::chrono::duration<double>(Clock::now() - start).count();
          }
        }
      });
}

void ThreadedBackend::dual_update(const PackedLocalSolvers& pack,
                                  PackedState& state) {
  pool_.parallel_for(pack.total_local(),
                     [&](int, std::size_t begin, std::size_t end) {
                       for (std::size_t pos = begin; pos < end; ++pos) {
                         kernels::dual_entry(pack, state.x.data(),
                                             state.z.data(), state.rho, pos,
                                             state.lambda.data());
                       }
                     });
}

ResidualSums ThreadedBackend::residual_sums(const PackedLocalSolvers& pack,
                                            const PackedState& state) {
  // Chunk layout is fixed by total_local (see the deterministic-reduction
  // contract); only the chunk->lane assignment varies with thread count,
  // and each chunk's partial lands in its own slot.
  partials_.assign(dopf::core::residual_num_chunks(pack.total_local()),
                   ResidualSums{});
  pool_.parallel_for(partials_.size(),
                     [&](int, std::size_t begin, std::size_t end) {
                       for (std::size_t k = begin; k < end; ++k) {
                         dopf::core::residual_chunk(pack, state, k,
                                                    &partials_[k]);
                       }
                     });
  return dopf::core::combine_residual_chunks(partials_);
}

std::unique_ptr<dopf::core::ExecutionBackend> make_threaded_backend(
    int threads) {
  return std::make_unique<ThreadedBackend>(threads);
}

}  // namespace dopf::runtime
