#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "network/network.hpp"

namespace dopf::runtime {

/// Thrown on malformed scenario files or overrides that reference unknown
/// network components.
class ScenarioError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One override line of a scenario file.
struct ScenarioOverride {
  enum class Kind {
    kLoadScale,     ///< load <target> scale <factor>   (p_ref and q_ref)
    kGenCostScale,  ///< gen <target> cost-scale <factor>
    kGenPmaxScale,  ///< gen <target> pmax-scale <factor>
  };
  Kind kind = Kind::kLoadScale;
  /// Component name, "*" (all), or — for loads — "constant" (only loads
  /// with alpha = beta = 0 on every phase; scaling those is rhs-only, so a
  /// sweep over them needs zero projector refactorizations).
  std::string target = "*";
  double factor = 1.0;
  /// Source line of the override (0 = constructed in code); duplicate
  /// rejections name both offending lines.
  int line_no = 0;
};

/// Parse one override line already split into tokens ("load"/"gen" ...).
/// Shared by the scenario parser and the streaming profile parser
/// (stream/profile.hpp) so both formats accept identical override grammar.
/// Throws ScenarioError with `line_no` provenance on malformed input.
ScenarioOverride parse_scenario_override(
    const std::vector<std::string>& tokens, int line_no);

/// Reject `ov` if `seen` already holds a load override for the same target:
/// a later `load` line for a target would silently compound with the
/// earlier one, which is always an input mistake. The error names BOTH
/// line numbers. Overlapping targets ("*" plus a specific load) are
/// deliberate composition and stay legal. `where` names the enclosing
/// block ("scenario 'peak'", "step 12") for the diagnostic.
void reject_duplicate_override(const std::vector<ScenarioOverride>& seen,
                               const ScenarioOverride& ov,
                               const std::string& where);

/// A named scenario: a list of overrides applied to the BASE network (each
/// scenario is independent; they do not compose with one another).
struct Scenario {
  std::string name;
  std::vector<ScenarioOverride> overrides;
};

/// Parse the scenario-sweep format consumed by `dopf_solve --scenarios`:
///
///   # comment
///   scenario peak
///   load * scale 1.08
///   gen dg675 cost-scale 1.5
///   end
///
///   scenario pv-surge
///   load constant scale 0.95
///   gen * pmax-scale 2.0
///   end
///
/// Throws ScenarioError with line provenance on malformed input.
std::vector<Scenario> parse_scenarios(std::istream& in);
std::vector<Scenario> load_scenarios(const std::string& path);

/// Apply `scenario` to a copy of `base` and return it. Unknown component
/// names, non-finite or non-positive factors raise ScenarioError.
dopf::network::Network apply_scenario(const dopf::network::Network& base,
                                      const Scenario& scenario);

/// True when the load is constant-power on every phase (alpha = beta = 0),
/// i.e. its scaling only moves equation right-hand sides.
bool is_constant_power(const dopf::network::Load& load);

}  // namespace dopf::runtime
