#pragma once

#include <cstddef>

namespace dopf::runtime {

/// Alpha-beta (latency + bandwidth) cost model of one point-to-point
/// message, the standard first-order model of MPI transfer time.
///
/// Substitution note (DESIGN.md): the paper measures real MPI.jl traffic on
/// the Bebop/Swing clusters; on a single host we price the same traffic with
/// this model instead. Defaults approximate a 100 Gb/s cluster interconnect
/// with a few-microsecond MPI latency.
struct CommModel {
  double latency_s = 3e-6;       ///< per-message latency (alpha)
  double bandwidth_gb_s = 10.0;  ///< effective bandwidth (1/beta)

  double message_seconds(std::size_t bytes) const {
    return latency_s + static_cast<double>(bytes) / (bandwidth_gb_s * 1e9);
  }
};

/// Host <-> accelerator staging cost (PCIe), applied once per rank per
/// direction when ranks host GPUs; this is the "MPI requires transferring
/// data from GPU to CPU" overhead of Sec. IV-E.
struct StagingModel {
  double latency_s = 8e-6;
  double bandwidth_gb_s = 12.0;

  double transfer_seconds(std::size_t bytes) const {
    return latency_s + static_cast<double>(bytes) / (bandwidth_gb_s * 1e9);
  }
};

}  // namespace dopf::runtime
