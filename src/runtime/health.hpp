#pragma once

#include <string>

namespace dopf::runtime {

/// Opt-in graceful-degradation policy for the multi-device solver: instead
/// of blocking on (or failing over away from) a chronically slow or lossy
/// device, the aggregator stops waiting for it and proceeds on its last-good
/// contribution, bounded by `staleness_bound`. Strictly opt-in: with
/// `enabled == false` the solver behaves exactly as before, bit for bit.
struct DegradePolicy {
  bool enabled = false;
  /// EWMA smoothing weight for the observed per-iteration straggle factor
  /// (1.0 = instantaneous, small = slow to react and slow to forgive).
  double ewma_alpha = 0.5;
  /// EWMA straggle factor above which the device counts as unhealthy —
  /// the aggregator will no longer wait for its kernels.
  double straggle_threshold = 2.0;
  /// Consecutive iterations with delivery failures (drops or CRC
  /// rejections) above which the device counts as unhealthy.
  int failure_threshold = 3;
  /// Bounded staleness S: the number of consecutive iterations the global
  /// update may proceed on the device's last-good contribution. Past the
  /// bound the device is quarantined and its components re-partitioned
  /// onto the survivors.
  int staleness_bound = 8;
  /// Consecutive healthy observations a quarantined device must show
  /// before it is readmitted (probation protocol).
  int probation_iterations = 25;
};

/// Where a device stands in the degradation lifecycle.
enum class DeviceState {
  kHealthy,      ///< full participant
  kDegraded,     ///< not waited for; last-good contribution in use
  kQuarantined,  ///< components re-partitioned away; heartbeat-probed
  kProbation,    ///< quarantined, but showing a clean streak
};

const char* to_string(DeviceState state);

/// Per-device health tracker: EWMA of the straggle factor, a
/// consecutive-delivery-failure counter, and the
/// healthy -> degraded -> quarantined -> probation -> healthy state
/// machine of DESIGN.md §7. Driven purely by per-iteration observations,
/// so two identical runs trace identical state sequences.
class DeviceHealth {
 public:
  DeviceHealth() = default;
  explicit DeviceHealth(const DegradePolicy& policy) : policy_(policy) {}

  /// Feed one iteration's observations: the device's kernel-time multiplier
  /// (1.0 = nominal) and how many delivery failures (drops + CRC rejects)
  /// its uploads suffered. Quarantined devices are probed with the same
  /// signals. Returns the state after the transition, if any.
  DeviceState observe(double straggle_factor, int delivery_failures);

  DeviceState state() const;
  /// True when the tracker currently trusts the device (kHealthy only).
  bool participating() const { return state() == DeviceState::kHealthy; }
  /// True when the device crossed the staleness bound this observe() call
  /// and must be quarantined by the caller (one-shot edge signal).
  bool quarantine_pending() const { return quarantine_pending_; }
  /// True when the device completed probation this observe() call and must
  /// be readmitted by the caller (one-shot edge signal).
  bool readmission_pending() const { return readmission_pending_; }
  /// Acknowledge the pending transition (after re-partitioning).
  void acknowledge();

  double ewma_straggle() const { return ewma_straggle_; }
  int consecutive_failures() const { return consecutive_failures_; }
  /// Iterations the device's contribution has been stale (degraded only).
  int staleness() const { return staleness_; }
  /// Clean streak accumulated towards readmission (quarantine only).
  int probation_streak() const { return probation_streak_; }

  std::string to_string() const;

 private:
  bool unhealthy_now() const;

  DegradePolicy policy_;
  double ewma_straggle_ = 1.0;
  int consecutive_failures_ = 0;
  int staleness_ = 0;
  int probation_streak_ = 0;
  bool degraded_ = false;
  bool quarantined_ = false;
  bool quarantine_pending_ = false;
  bool readmission_pending_ = false;
};

}  // namespace dopf::runtime
