#include "runtime/checkpoint.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "core/solve_model.hpp"
#include "verify/codec.hpp"

namespace dopf::runtime {

namespace {

using dopf::verify::crc32;
using dopf::verify::hex_double;
using dopf::verify::parse_double_token;

void write_vector(std::ostream& out, const char* name,
                  const std::vector<double>& v) {
  out << name << ' ' << v.size() << '\n';
  for (double value : v) out << "v " << hex_double(value) << '\n';
}

class Lines {
 public:
  explicit Lines(std::istream& in) : in_(in) {}

  std::vector<std::string> next() {
    std::string raw;
    while (std::getline(in_, raw)) {
      ++no_;
      std::istringstream ss(raw);
      std::vector<std::string> tokens;
      std::string t;
      while (ss >> t) tokens.push_back(t);
      if (!tokens.empty()) return tokens;
    }
    return {};
  }

  int line_no() const { return no_; }

 private:
  std::istream& in_;
  int no_ = 0;
};

double parse_number(const std::string& token, int line_no) {
  double v = 0.0;
  if (!parse_double_token(token, &v)) {
    throw CheckpointError("checkpoint line " + std::to_string(line_no) +
                          ": bad number '" + token + "'");
  }
  return v;
}

std::string hex_u64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

std::string payload_string(const AdmmCheckpoint& ck) {
  std::ostringstream body;
  body << "label " << (ck.label.empty() ? "-" : ck.label) << '\n';
  body << "iteration " << ck.iteration << '\n';
  body << "rho " << hex_double(ck.rho) << '\n';
  // Fingerprint lines are emitted only when known, so a legacy-shaped
  // checkpoint (both zero) round-trips byte-for-byte.
  if (ck.model_fingerprint != 0) {
    body << "model_fp " << hex_u64(ck.model_fingerprint) << '\n';
  }
  if (ck.scenario_fingerprint != 0) {
    body << "scenario_fp " << hex_u64(ck.scenario_fingerprint) << '\n';
  }
  write_vector(body, "x", ck.x);
  write_vector(body, "z", ck.z);
  write_vector(body, "z_prev", ck.z_prev);
  write_vector(body, "lambda", ck.lambda);
  return body.str();
}

}  // namespace

AdmmCheckpoint AdmmCheckpoint::capture(const dopf::core::SolverFreeAdmm& admm,
                                       int iteration, std::string label) {
  AdmmCheckpoint ck;
  ck.label = std::move(label);
  ck.iteration = iteration;
  ck.rho = admm.rho();
  ck.model_fingerprint = dopf::core::topology_fingerprint(admm.packed());
  ck.scenario_fingerprint = dopf::core::scenario_fingerprint(admm.packed());
  ck.x.assign(admm.x().begin(), admm.x().end());
  ck.z.assign(admm.z().begin(), admm.z().end());
  ck.z_prev.assign(admm.z_prev().begin(), admm.z_prev().end());
  ck.lambda.assign(admm.lambda().begin(), admm.lambda().end());
  return ck;
}

void AdmmCheckpoint::validate_for(const dopf::core::SolverFreeAdmm& admm,
                                  const std::string& expected_label) const {
  if (!expected_label.empty() && !label.empty() && label != expected_label) {
    throw CheckpointError("checkpoint was recorded on '" + label +
                          "' but this run solves '" + expected_label +
                          "' — refusing to restore");
  }
  auto check = [&](const char* name, std::size_t got, std::size_t want) {
    if (got != want) {
      throw CheckpointError(
          "checkpoint" + (label.empty() ? std::string() : " '" + label + "'") +
          " does not fit this problem: " + name + " has " +
          std::to_string(got) + " value(s), solver expects " +
          std::to_string(want) + " — wrong feeder or partition?");
    }
  };
  check("x", x.size(), admm.x().size());
  check("z", z.size(), admm.z().size());
  check("z_prev", z_prev.size(), admm.z_prev().size());
  check("lambda", lambda.size(), admm.lambda().size());
  if (model_fingerprint != 0 &&
      model_fingerprint != dopf::core::topology_fingerprint(admm.packed())) {
    throw CheckpointError(
        "checkpoint model fingerprint does not match the solver's bound "
        "topology — the model was edited (or is a different feeder) since "
        "this checkpoint was recorded; refusing to restore");
  }
  if (scenario_fingerprint != 0 &&
      scenario_fingerprint !=
          dopf::core::scenario_fingerprint(admm.packed())) {
    throw CheckpointError(
        "checkpoint scenario fingerprint does not match the solver's bound "
        "scenario data — loads/costs/bounds were rebound since this "
        "checkpoint was recorded; refusing to restore");
  }
}

void AdmmCheckpoint::restore(dopf::core::SolverFreeAdmm* admm,
                             const std::string& expected_label) const {
  validate_for(*admm, expected_label);
  admm->restore_state(iteration, rho, x, z, z_prev, lambda);
}

void write_checkpoint(const AdmmCheckpoint& ck, std::ostream& out) {
  const std::string body = payload_string(ck);
  char crc_line[32];
  std::snprintf(crc_line, sizeof(crc_line), "crc %08" PRIx32, crc32(body));
  out << "dopf-checkpoint v1\n" << body << crc_line << "\nend\n";
}

AdmmCheckpoint read_checkpoint(std::istream& in) {
  // Slurp so the CRC can cover the exact payload bytes between the header
  // line and the crc line.
  std::ostringstream slurp;
  slurp << in.rdbuf();
  const std::string text = slurp.str();

  const auto header_end = text.find('\n');
  if (header_end == std::string::npos ||
      text.substr(0, header_end) != "dopf-checkpoint v1") {
    throw CheckpointError("not a dopf-checkpoint v1 file");
  }
  const auto crc_pos = text.rfind("\ncrc ");
  if (crc_pos == std::string::npos || crc_pos < header_end) {
    throw CheckpointError("checkpoint: missing crc line (truncated file?)");
  }
  const std::string body = text.substr(header_end + 1,
                                       crc_pos + 1 - (header_end + 1));

  std::istringstream tail(text.substr(crc_pos + 1));
  Lines tail_lines(tail);
  const auto crc_tokens = tail_lines.next();
  if (crc_tokens.size() != 2 || crc_tokens[0] != "crc") {
    throw CheckpointError("checkpoint: malformed crc line");
  }
  std::uint32_t stored = 0;
  if (std::sscanf(crc_tokens[1].c_str(), "%8" SCNx32, &stored) != 1) {
    throw CheckpointError("checkpoint: malformed crc value '" +
                          crc_tokens[1] + "'");
  }
  const std::uint32_t actual = crc32(body);
  if (stored != actual) {
    char msg[96];
    std::snprintf(msg, sizeof(msg),
                  "checkpoint: CRC mismatch (stored %08" PRIx32
                  ", payload %08" PRIx32 ") — file corrupted",
                  stored, actual);
    throw CheckpointError(msg);
  }
  const auto end_tokens = tail_lines.next();
  if (end_tokens.empty() || end_tokens[0] != "end") {
    throw CheckpointError("checkpoint: missing 'end' terminator");
  }

  std::istringstream body_in(body);
  Lines lines(body_in);
  auto expect = [&](const std::vector<std::string>& tokens, const char* key,
                    std::size_t count) {
    if (tokens.empty() || tokens[0] != key || tokens.size() != count + 1) {
      throw CheckpointError("checkpoint line " +
                            std::to_string(lines.line_no()) + ": expected '" +
                            key + "' with " + std::to_string(count) +
                            " value(s)");
    }
  };
  auto read_vector = [&](std::vector<std::string> header, const char* name,
                         std::vector<double>* out) {
    expect(header, name, 1);
    const auto count =
        static_cast<std::size_t>(parse_number(header[1], lines.line_no()));
    out->reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      const auto tokens = lines.next();
      expect(tokens, "v", 1);
      out->push_back(parse_number(tokens[1], lines.line_no()));
    }
  };

  AdmmCheckpoint ck;
  auto tokens = lines.next();
  expect(tokens, "label", 1);
  ck.label = tokens[1] == "-" ? std::string() : tokens[1];
  tokens = lines.next();
  expect(tokens, "iteration", 1);
  ck.iteration = static_cast<int>(parse_number(tokens[1], lines.line_no()));
  tokens = lines.next();
  expect(tokens, "rho", 1);
  ck.rho = parse_number(tokens[1], lines.line_no());
  // Optional fingerprint lines (absent in legacy v1 files: 0 = unknown).
  tokens = lines.next();
  auto parse_fp = [&](const char* key, std::uint64_t* out) {
    if (tokens.empty() || tokens[0] != key) return;
    expect(tokens, key, 1);
    char* end = nullptr;
    *out = std::strtoull(tokens[1].c_str(), &end, 16);
    if (end == nullptr || *end != '\0') {
      throw CheckpointError("checkpoint line " +
                            std::to_string(lines.line_no()) +
                            ": bad fingerprint '" + tokens[1] + "'");
    }
    tokens = lines.next();
  };
  parse_fp("model_fp", &ck.model_fingerprint);
  parse_fp("scenario_fp", &ck.scenario_fingerprint);
  read_vector(tokens, "x", &ck.x);
  read_vector(lines.next(), "z", &ck.z);
  read_vector(lines.next(), "z_prev", &ck.z_prev);
  read_vector(lines.next(), "lambda", &ck.lambda);
  return ck;
}

void save_checkpoint(const AdmmCheckpoint& ck, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw CheckpointError("cannot open for writing: " + path);
  write_checkpoint(ck, out);
  if (!out) throw CheckpointError("write failed: " + path);
}

AdmmCheckpoint load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw CheckpointError("cannot open: " + path);
  return read_checkpoint(in);
}

std::size_t checkpoint_bytes(const AdmmCheckpoint& ck) {
  return sizeof(double) *
             (ck.x.size() + ck.z.size() + ck.z_prev.size() +
              ck.lambda.size()) +
         sizeof(double) + sizeof(int);
}

}  // namespace dopf::runtime
