#include "runtime/checkpoint.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "core/solve_model.hpp"
#include "verify/codec.hpp"

namespace dopf::runtime {

namespace {

using dopf::verify::crc32;
using dopf::verify::hex_double;
using dopf::verify::parse_double_token;

void write_vector(std::ostream& out, const char* name,
                  const std::vector<double>& v) {
  out << name << ' ' << v.size() << '\n';
  for (double value : v) out << "v " << hex_double(value) << '\n';
}

class Lines {
 public:
  explicit Lines(std::istream& in) : in_(in) {}

  std::vector<std::string> next() {
    std::string raw;
    while (std::getline(in_, raw)) {
      ++no_;
      std::istringstream ss(raw);
      std::vector<std::string> tokens;
      std::string t;
      while (ss >> t) tokens.push_back(t);
      if (!tokens.empty()) return tokens;
    }
    return {};
  }

  int line_no() const { return no_; }

 private:
  std::istream& in_;
  int no_ = 0;
};

double parse_number(const std::string& token, int line_no) {
  double v = 0.0;
  if (!parse_double_token(token, &v)) {
    throw CheckpointError("checkpoint line " + std::to_string(line_no) +
                          ": bad number '" + token + "'");
  }
  return v;
}

std::string hex_u64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

std::string payload_string(const AdmmCheckpoint& ck) {
  std::ostringstream body;
  body << "label " << (ck.label.empty() ? "-" : ck.label) << '\n';
  body << "iteration " << ck.iteration << '\n';
  body << "rho " << hex_double(ck.rho) << '\n';
  // Fingerprint lines are emitted only when known, so a legacy-shaped
  // checkpoint (both zero) round-trips byte-for-byte.
  if (ck.model_fingerprint != 0) {
    body << "model_fp " << hex_u64(ck.model_fingerprint) << '\n';
  }
  if (ck.scenario_fingerprint != 0) {
    body << "scenario_fp " << hex_u64(ck.scenario_fingerprint) << '\n';
  }
  // Like the fingerprints: only A/B-store checkpoints carry a generation,
  // so single-file checkpoints (and the committed goldens) are unchanged.
  if (ck.generation != 0) {
    body << "generation " << ck.generation << '\n';
  }
  write_vector(body, "x", ck.x);
  write_vector(body, "z", ck.z);
  write_vector(body, "z_prev", ck.z_prev);
  write_vector(body, "lambda", ck.lambda);
  return body.str();
}

}  // namespace

AdmmCheckpoint AdmmCheckpoint::capture(const dopf::core::SolverFreeAdmm& admm,
                                       int iteration, std::string label) {
  AdmmCheckpoint ck;
  ck.label = std::move(label);
  ck.iteration = iteration;
  ck.rho = admm.rho();
  ck.model_fingerprint = dopf::core::topology_fingerprint(admm.packed());
  ck.scenario_fingerprint = dopf::core::scenario_fingerprint(admm.packed());
  ck.x.assign(admm.x().begin(), admm.x().end());
  ck.z.assign(admm.z().begin(), admm.z().end());
  ck.z_prev.assign(admm.z_prev().begin(), admm.z_prev().end());
  ck.lambda.assign(admm.lambda().begin(), admm.lambda().end());
  return ck;
}

void AdmmCheckpoint::validate_for(const dopf::core::SolverFreeAdmm& admm,
                                  const std::string& expected_label) const {
  if (!expected_label.empty() && !label.empty() && label != expected_label) {
    throw CheckpointError("checkpoint was recorded on '" + label +
                          "' but this run solves '" + expected_label +
                          "' — refusing to restore");
  }
  auto check = [&](const char* name, std::size_t got, std::size_t want) {
    if (got != want) {
      throw CheckpointError(
          "checkpoint" + (label.empty() ? std::string() : " '" + label + "'") +
          " does not fit this problem: " + name + " has " +
          std::to_string(got) + " value(s), solver expects " +
          std::to_string(want) + " — wrong feeder or partition?");
    }
  };
  check("x", x.size(), admm.x().size());
  check("z", z.size(), admm.z().size());
  check("z_prev", z_prev.size(), admm.z_prev().size());
  check("lambda", lambda.size(), admm.lambda().size());
  if (model_fingerprint != 0 &&
      model_fingerprint != dopf::core::topology_fingerprint(admm.packed())) {
    throw CheckpointError(
        "checkpoint model fingerprint does not match the solver's bound "
        "topology — the model was edited (or is a different feeder) since "
        "this checkpoint was recorded; refusing to restore");
  }
  if (scenario_fingerprint != 0 &&
      scenario_fingerprint !=
          dopf::core::scenario_fingerprint(admm.packed())) {
    throw CheckpointError(
        "checkpoint scenario fingerprint does not match the solver's bound "
        "scenario data — loads/costs/bounds were rebound since this "
        "checkpoint was recorded; refusing to restore");
  }
}

void AdmmCheckpoint::restore(dopf::core::SolverFreeAdmm* admm,
                             const std::string& expected_label) const {
  validate_for(*admm, expected_label);
  admm->restore_state(iteration, rho, x, z, z_prev, lambda);
}

void write_checkpoint(const AdmmCheckpoint& ck, std::ostream& out) {
  const std::string body = payload_string(ck);
  char crc_line[32];
  std::snprintf(crc_line, sizeof(crc_line), "crc %08" PRIx32, crc32(body));
  out << "dopf-checkpoint v1\n" << body << crc_line << "\nend\n";
}

AdmmCheckpoint read_checkpoint(std::istream& in) {
  // Slurp so the CRC can cover the exact payload bytes between the header
  // line and the crc line.
  std::ostringstream slurp;
  slurp << in.rdbuf();
  const std::string text = slurp.str();

  const auto header_end = text.find('\n');
  if (header_end == std::string::npos ||
      text.substr(0, header_end) != "dopf-checkpoint v1") {
    throw CheckpointError("not a dopf-checkpoint v1 file");
  }
  const auto crc_pos = text.rfind("\ncrc ");
  if (crc_pos == std::string::npos || crc_pos < header_end) {
    throw CheckpointError("checkpoint: missing crc line (truncated file?)");
  }
  const std::string body = text.substr(header_end + 1,
                                       crc_pos + 1 - (header_end + 1));

  std::istringstream tail(text.substr(crc_pos + 1));
  Lines tail_lines(tail);
  const auto crc_tokens = tail_lines.next();
  if (crc_tokens.size() != 2 || crc_tokens[0] != "crc") {
    throw CheckpointError("checkpoint: malformed crc line");
  }
  std::uint32_t stored = 0;
  if (std::sscanf(crc_tokens[1].c_str(), "%8" SCNx32, &stored) != 1) {
    throw CheckpointError("checkpoint: malformed crc value '" +
                          crc_tokens[1] + "'");
  }
  const std::uint32_t actual = crc32(body);
  if (stored != actual) {
    char msg[96];
    std::snprintf(msg, sizeof(msg),
                  "checkpoint: CRC mismatch (stored %08" PRIx32
                  ", payload %08" PRIx32 ") — file corrupted",
                  stored, actual);
    throw CheckpointError(msg);
  }
  const auto end_tokens = tail_lines.next();
  if (end_tokens.empty() || end_tokens[0] != "end") {
    throw CheckpointError("checkpoint: missing 'end' terminator");
  }

  std::istringstream body_in(body);
  Lines lines(body_in);
  auto expect = [&](const std::vector<std::string>& tokens, const char* key,
                    std::size_t count) {
    if (tokens.empty() || tokens[0] != key || tokens.size() != count + 1) {
      throw CheckpointError("checkpoint line " +
                            std::to_string(lines.line_no()) + ": expected '" +
                            key + "' with " + std::to_string(count) +
                            " value(s)");
    }
  };
  auto read_vector = [&](std::vector<std::string> header, const char* name,
                         std::vector<double>* out) {
    expect(header, name, 1);
    const auto count =
        static_cast<std::size_t>(parse_number(header[1], lines.line_no()));
    out->reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      const auto tokens = lines.next();
      expect(tokens, "v", 1);
      out->push_back(parse_number(tokens[1], lines.line_no()));
    }
  };

  AdmmCheckpoint ck;
  auto tokens = lines.next();
  expect(tokens, "label", 1);
  ck.label = tokens[1] == "-" ? std::string() : tokens[1];
  tokens = lines.next();
  expect(tokens, "iteration", 1);
  ck.iteration = static_cast<int>(parse_number(tokens[1], lines.line_no()));
  tokens = lines.next();
  expect(tokens, "rho", 1);
  ck.rho = parse_number(tokens[1], lines.line_no());
  // Optional fingerprint lines (absent in legacy v1 files: 0 = unknown).
  tokens = lines.next();
  auto parse_fp = [&](const char* key, std::uint64_t* out) {
    if (tokens.empty() || tokens[0] != key) return;
    expect(tokens, key, 1);
    char* end = nullptr;
    *out = std::strtoull(tokens[1].c_str(), &end, 16);
    if (end == nullptr || *end != '\0') {
      throw CheckpointError("checkpoint line " +
                            std::to_string(lines.line_no()) +
                            ": bad fingerprint '" + tokens[1] + "'");
    }
    tokens = lines.next();
  };
  parse_fp("model_fp", &ck.model_fingerprint);
  parse_fp("scenario_fp", &ck.scenario_fingerprint);
  if (!tokens.empty() && tokens[0] == "generation") {
    expect(tokens, "generation", 1);
    char* end = nullptr;
    ck.generation = std::strtoull(tokens[1].c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
      throw CheckpointError("checkpoint line " +
                            std::to_string(lines.line_no()) +
                            ": bad generation '" + tokens[1] + "'");
    }
    tokens = lines.next();
  }
  read_vector(tokens, "x", &ck.x);
  read_vector(lines.next(), "z", &ck.z);
  read_vector(lines.next(), "z_prev", &ck.z_prev);
  read_vector(lines.next(), "lambda", &ck.lambda);
  return ck;
}

IoStats save_checkpoint(const AdmmCheckpoint& ck, const std::string& path,
                        const DurableOptions& opts) {
  std::ostringstream out;
  write_checkpoint(ck, out);
  if (!out) {
    throw CheckpointError("checkpoint serialization failed for: " + path);
  }
  return durable_write_file(path, out.str(), opts);
}

AdmmCheckpoint load_checkpoint(const std::string& path,
                               const DurableOptions& opts) {
  std::string text;
  try {
    text = durable_read_file(path, opts);
  } catch (const IoError& e) {
    throw CheckpointError(std::string("checkpoint: ") + e.what());
  }
  std::istringstream in(text);
  return read_checkpoint(in);
}

std::size_t checkpoint_bytes(const AdmmCheckpoint& ck) {
  return sizeof(double) *
             (ck.x.size() + ck.z.size() + ck.z_prev.size() +
              ck.lambda.size()) +
         sizeof(double) + sizeof(int);
}

namespace {

bool file_exists(const std::string& path) {
  return std::ifstream(path, std::ios::binary).good();
}

/// Best-effort slot probe: a missing, torn, or corrupt slot yields
/// (false, diagnostic) instead of throwing — the store decides whether
/// falling back or failing is appropriate.
bool probe_slot(const std::string& path, const DurableOptions& opts,
                AdmmCheckpoint* out, std::string* diagnostic) {
  if (!file_exists(path)) {
    *diagnostic = path + ": no such file";
    return false;
  }
  try {
    *out = load_checkpoint(path, opts);
    return true;
  } catch (const CheckpointError& e) {
    *diagnostic = path + ": " + e.what();
    return false;
  }
}

}  // namespace

CheckpointStore::CheckpointStore(std::string base_path, DurableOptions opts)
    : base_path_(std::move(base_path)), opts_(opts) {}

bool CheckpointStore::any_slot_exists() const {
  return file_exists(slot_a()) || file_exists(slot_b());
}

IoStats CheckpointStore::save(AdmmCheckpoint ck) {
  if (!scanned_) {
    // Adopt whatever generations are already on disk (a resumed process
    // must keep the counter monotonic, or load() would prefer stale state).
    AdmmCheckpoint a, b;
    std::string ignore;
    const bool a_ok = probe_slot(slot_a(), opts_, &a, &ignore);
    const bool b_ok = probe_slot(slot_b(), opts_, &b, &ignore);
    const std::uint64_t gen_a = a_ok ? a.generation : 0;
    const std::uint64_t gen_b = b_ok ? b.generation : 0;
    next_generation_ = (gen_a > gen_b ? gen_a : gen_b) + 1;
    // Overwrite the OLDER slot; the newest valid generation stays intact
    // until the replacement write has fully landed.
    next_slot_ = gen_a > gen_b ? 1 : 0;
    scanned_ = true;
  }
  ck.generation = next_generation_;
  const std::string path = next_slot_ == 0 ? slot_a() : slot_b();
  const IoStats stats = save_checkpoint(ck, path, opts_);
  ++next_generation_;
  next_slot_ = 1 - next_slot_;
  return stats;
}

CheckpointStore::Loaded CheckpointStore::load() const {
  AdmmCheckpoint a, b;
  std::string diag_a, diag_b;
  const bool a_ok = probe_slot(slot_a(), opts_, &a, &diag_a);
  const bool b_ok = probe_slot(slot_b(), opts_, &b, &diag_b);
  if (!a_ok && !b_ok) {
    throw CheckpointError("checkpoint store '" + base_path_ +
                          "': no loadable slot (" + diag_a + "; " + diag_b +
                          ")");
  }
  Loaded loaded;
  if (a_ok && b_ok) {
    const bool prefer_a = a.generation >= b.generation;
    loaded.checkpoint = prefer_a ? a : b;
    loaded.path = prefer_a ? slot_a() : slot_b();
    return loaded;
  }
  // Exactly one slot is loadable. That is the normal state before the
  // second save ever happened (the other slot is simply missing); it is a
  // torn-write FALLBACK when the dead slot exists but failed its CRC.
  loaded.checkpoint = a_ok ? a : b;
  loaded.path = a_ok ? slot_a() : slot_b();
  const std::string& dead_diag = a_ok ? diag_b : diag_a;
  const std::string dead_path = a_ok ? slot_b() : slot_a();
  if (file_exists(dead_path)) {
    loaded.fell_back = true;
    loaded.diagnostic = "fell back to generation " +
                        std::to_string(loaded.checkpoint.generation) + " (" +
                        loaded.path + "): " + dead_diag;
  }
  return loaded;
}

CheckpointStore::Loaded resolve_checkpoint(const std::string& path,
                                           const DurableOptions& opts) {
  const CheckpointStore store(path, opts);
  if (store.any_slot_exists()) return store.load();
  CheckpointStore::Loaded loaded;
  loaded.checkpoint = load_checkpoint(path, opts);
  loaded.path = path;
  return loaded;
}

}  // namespace dopf::runtime
