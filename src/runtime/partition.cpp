#include "runtime/partition.hpp"

#include <algorithm>
#include <numeric>
#include <queue>
#include <stdexcept>

namespace dopf::runtime {

Partition block_partition(std::size_t num_components, std::size_t ranks) {
  if (ranks == 0) throw std::invalid_argument("block_partition: 0 ranks");
  Partition parts(ranks);
  const std::size_t base = num_components / ranks;
  const std::size_t extra = num_components % ranks;
  std::size_t next = 0;
  for (std::size_t r = 0; r < ranks; ++r) {
    const std::size_t count = base + (r < extra ? 1 : 0);
    parts[r].reserve(count);
    for (std::size_t k = 0; k < count; ++k) parts[r].push_back(next++);
  }
  return parts;
}

Partition lpt_partition(std::span<const double> weights, std::size_t ranks) {
  if (ranks == 0) throw std::invalid_argument("lpt_partition: 0 ranks");
  std::vector<std::size_t> order(weights.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return weights[a] > weights[b];
  });
  Partition parts(ranks);
  using Entry = std::pair<double, std::size_t>;  // (load, rank)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (std::size_t r = 0; r < ranks; ++r) heap.push({0.0, r});
  for (std::size_t s : order) {
    auto [load, r] = heap.top();
    heap.pop();
    parts[r].push_back(s);
    heap.push({load + weights[s], r});
  }
  return parts;
}

double makespan(const Partition& partition, std::span<const double> weights) {
  double worst = 0.0;
  for (const auto& part : partition) {
    double load = 0.0;
    for (std::size_t s : part) load += weights[s];
    worst = std::max(worst, load);
  }
  return worst;
}

}  // namespace dopf::runtime
