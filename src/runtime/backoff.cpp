#include "runtime/backoff.hpp"

namespace dopf::runtime {

Backoff::Backoff(BackoffOptions opts) : opts_(opts), rng_(opts.seed) {}

double Backoff::delay(int attempt, double floor_hint) {
  // Iterative growth, not pow(): the durable-write retry prices its
  // simulated seconds with the exact `d *= factor` accumulation, and
  // switching to pow() could move the last ulp of priced retry time.
  double d = opts_.base;
  for (int i = 0; i < attempt && d < opts_.max; ++i) d *= opts_.factor;
  if (d > opts_.max) d = opts_.max;
  if (opts_.jitter_min != opts_.jitter_max) {
    std::uniform_real_distribution<double> jitter(opts_.jitter_min,
                                                  opts_.jitter_max);
    d *= jitter(rng_);
  }
  if (d < floor_hint) d = floor_hint;
  if (d > opts_.max) d = opts_.max;
  return d;
}

double Backoff::next(double floor_hint) {
  return delay(attempt_++, floor_hint);
}

}  // namespace dopf::runtime
