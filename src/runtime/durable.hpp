#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>

#include "runtime/fault.hpp"

namespace dopf::runtime {

/// Thrown when a durable file operation fails after exhausting its retry
/// budget (or on an unrecoverable read error). Carries the failing path and
/// errno so callers can surface a typed, actionable diagnostic instead of a
/// silently-torn file.
class IoError : public std::runtime_error {
 public:
  IoError(const std::string& op, std::string path, int error_code,
          const std::string& detail = {})
      : std::runtime_error("io error: " + op + " '" + path + "': " +
                           message_for(error_code) +
                           (detail.empty() ? "" : " (" + detail + ")")),
        path_(std::move(path)),
        error_code_(error_code) {}

  const std::string& path() const { return path_; }
  /// errno of the failing syscall (0 when the failure has no errno).
  int error_code() const { return error_code_; }

 private:
  static std::string message_for(int error_code);

  std::string path_;
  int error_code_ = 0;
};

/// Thrown by the kCrashAfterTemp failpoint: the simulated process dies
/// after the temp file is durable but before the atomic rename — exactly
/// the window a torn-write bug would hide in. Deliberately NOT derived from
/// IoError: a crash must not be caught and retried by the durability layer
/// itself; it propagates to the process boundary (exit code 7).
class SimulatedCrash : public std::runtime_error {
 public:
  explicit SimulatedCrash(const std::string& path)
      : std::runtime_error("simulated crash: temp written, rename pending for '" +
                           path + "'") {}
};

/// Durability policy for durable_write_file / durable_read_file. The retry
/// schedule mirrors RecoveryPolicy (bounded retries, exponential backoff)
/// and is priced the same way: simulated seconds, accumulated in IoStats,
/// never a real sleep.
struct DurableOptions {
  /// fsync the temp file before rename and the directory after (the full
  /// crash-consistency protocol). Off trades durability for speed in
  /// benches; the atomic temp+rename is kept either way.
  bool fsync = true;
  /// Transient-failure retry budget per write (a write is attempted at most
  /// 1 + max_retries times before IoError).
  int max_retries = 3;
  /// Simulated detection timeout charged per failed attempt.
  double retry_timeout_s = 5e-3;
  /// Exponential backoff factor applied to successive timeouts.
  double backoff_factor = 2.0;
  /// Deterministic failpoint registry (not owned; nullptr = no faults).
  FsFaultInjector* faults = nullptr;
};

/// Work performed by the durability layer, reported like device recovery:
/// real operation counts plus *simulated* backoff seconds.
struct IoStats {
  int writes = 0;    ///< durable writes that reached the rename
  int reads = 0;     ///< whole-file reads
  int retries = 0;   ///< failed write attempts that were retried
  double retry_seconds = 0.0;  ///< simulated backoff cost of those retries

  IoStats& operator+=(const IoStats& other) {
    writes += other.writes;
    reads += other.reads;
    retries += other.retries;
    retry_seconds += other.retry_seconds;
    return *this;
  }
};

/// Atomically replace `path` with `content`: write `path + ".tmp"`, fsync
/// it, rename over `path`, fsync the directory. Readers never observe a
/// torn file — they see either the old bytes or the new bytes. Transient
/// failures (short write, ENOSPC, failed rename) are retried up to
/// `opts.max_retries` times with exponential backoff; exhaustion throws
/// IoError. The kCrashAfterTemp failpoint throws SimulatedCrash, leaving
/// the temp file on disk and `path` untouched.
IoStats durable_write_file(const std::string& path, std::string_view content,
                           const DurableOptions& opts = {});

/// Read the whole file (applying any armed kCorruptRead failpoint). Throws
/// IoError when the file cannot be opened or read.
std::string durable_read_file(const std::string& path,
                              const DurableOptions& opts = {},
                              IoStats* stats = nullptr);

}  // namespace dopf::runtime
