#include "runtime/fault.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <sstream>

namespace dopf::runtime {

namespace {

const char* kind_name(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::kKillDevice:
      return "kill";
    case FaultEvent::Kind::kDropMessage:
      return "drop";
    case FaultEvent::Kind::kCorruptMessage:
      return "corrupt";
    case FaultEvent::Kind::kStraggle:
      return "straggle";
  }
  return "?";
}

double parse_value(const std::string& token, const std::string& event) {
  const char* begin = token.c_str();
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  if (end == begin || *end != '\0') {
    throw FaultError("fault spec: bad number '" + token + "' in '" + event +
                     "'");
  }
  return v;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::istringstream ss(s);
  std::string part;
  while (std::getline(ss, part, sep)) {
    // Trim surrounding whitespace so "a; b" parses.
    const auto b = part.find_first_not_of(" \t");
    const auto e = part.find_last_not_of(" \t");
    out.push_back(b == std::string::npos ? std::string()
                                         : part.substr(b, e - b + 1));
  }
  return out;
}

}  // namespace

bool FaultEvent::active_at(int t) const {
  if (persistent || kind == Kind::kStraggle) {
    return t >= iteration && t <= until;
  }
  return t == iteration;
}

std::string FaultEvent::to_string() const {
  std::ostringstream out;
  out << kind_name(kind) << ":device=" << device
      << (persistent ? ",from=" : ",iter=") << iteration;
  if (kind == Kind::kDropMessage && count != 1) out << ",count=" << count;
  if (kind == Kind::kCorruptMessage) out << ",scale=" << factor;
  if (persistent && until != std::numeric_limits<int>::max()) {
    out << ",until=" << until;
  }
  if (kind == Kind::kStraggle) {
    if (!persistent && until > iteration) out << ",until=" << until;
    out << ",factor=" << factor;
  }
  return out.str();
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  for (const std::string& entry : split(spec, ';')) {
    if (entry.empty()) continue;
    const auto colon = entry.find(':');
    if (colon == std::string::npos) {
      throw FaultError("fault spec: missing ':' in '" + entry + "'");
    }
    const std::string kind = entry.substr(0, colon);
    FaultEvent ev;
    if (kind == "kill") {
      ev.kind = FaultEvent::Kind::kKillDevice;
    } else if (kind == "drop") {
      ev.kind = FaultEvent::Kind::kDropMessage;
    } else if (kind == "corrupt") {
      ev.kind = FaultEvent::Kind::kCorruptMessage;
      ev.factor = 16.0;  // default corruption scale
    } else if (kind == "straggle") {
      ev.kind = FaultEvent::Kind::kStraggle;
      ev.factor = 4.0;  // default slowdown
    } else {
      throw FaultError("fault spec: unknown fault kind '" + kind + "' in '" +
                       entry + "'");
    }
    bool have_device = false, have_iter = false, have_until = false;
    for (const std::string& kv : split(entry.substr(colon + 1), ',')) {
      if (kv.empty()) continue;
      const auto eq = kv.find('=');
      if (eq == std::string::npos) {
        throw FaultError("fault spec: expected key=value, got '" + kv +
                         "' in '" + entry + "'");
      }
      const std::string key = kv.substr(0, eq);
      const double value = parse_value(kv.substr(eq + 1), entry);
      if (key == "device") {
        if (value < 0) throw FaultError("fault spec: negative device");
        ev.device = static_cast<std::size_t>(value);
        have_device = true;
      } else if (key == "iter" || key == "from") {
        if (have_iter) {
          throw FaultError("fault spec: '" + entry +
                           "' has both iter= and from= (pick one)");
        }
        ev.iteration = static_cast<int>(value);
        ev.persistent = key == "from";
        have_iter = true;
      } else if (key == "until") {
        ev.until = static_cast<int>(value);
        have_until = true;
      } else if (key == "count") {
        ev.count = static_cast<int>(value);
      } else if (key == "scale" || key == "factor") {
        ev.factor = value;
      } else {
        throw FaultError("fault spec: unknown key '" + key + "' in '" +
                         entry + "'");
      }
    }
    if (!have_device || !have_iter) {
      throw FaultError("fault spec: '" + entry +
                       "' needs at least device= and iter= (or from=)");
    }
    if (ev.persistent && ev.kind == FaultEvent::Kind::kKillDevice) {
      throw FaultError("fault spec: kill cannot be persistent (from=) in '" +
                       entry + "' — a device dies once");
    }
    if (ev.iteration < 1) {
      throw FaultError("fault spec: iter must be >= 1 in '" + entry + "'");
    }
    if (ev.persistent && !have_until) {
      ev.until = std::numeric_limits<int>::max();  // open-ended recurrence
    }
    if (ev.until < ev.iteration) ev.until = ev.iteration;
    if (ev.kind == FaultEvent::Kind::kDropMessage && ev.count < 1) {
      throw FaultError("fault spec: drop count must be >= 1 in '" + entry +
                       "'");
    }
    for (std::size_t i = 0; i < plan.events.size(); ++i) {
      const FaultEvent& prev = plan.events[i];
      if (prev.kind == ev.kind && prev.device == ev.device &&
          prev.iteration == ev.iteration) {
        throw FaultError("fault spec: entry " +
                         std::to_string(plan.events.size() + 1) + " ('" +
                         entry + "') duplicates entry " + std::to_string(i + 1) +
                         " ('" + prev.to_string() +
                         "'): same kind, device and iteration");
      }
    }
    plan.events.push_back(ev);
  }
  return plan;
}

bool FaultPlan::has_persistent() const {
  return std::any_of(events.begin(), events.end(),
                     [](const FaultEvent& ev) { return ev.persistent; });
}

std::string FaultPlan::to_string() const {
  std::string out;
  for (const FaultEvent& ev : events) {
    if (!out.empty()) out += ';';
    out += ev.to_string();
  }
  return out;
}

double retry_cost_seconds(const RecoveryPolicy& policy, const CommModel& comm,
                          std::size_t message_bytes, int failures) {
  double seconds = 0.0;
  double timeout = policy.retry_timeout_s;
  for (int attempt = 0; attempt < failures; ++attempt) {
    seconds += timeout + comm.message_seconds(message_bytes);
    timeout *= policy.backoff_factor;
  }
  return seconds;
}

void FaultInjector::mark_consumed(std::size_t idx) {
  if (consumed_.size() < plan_.events.size()) {
    consumed_.resize(plan_.events.size(), false);
  }
  consumed_[idx] = true;
}

bool FaultInjector::kill_scheduled(std::size_t device, int iteration) const {
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& ev = plan_.events[i];
    if (ev.kind == FaultEvent::Kind::kKillDevice && ev.device == device &&
        ev.iteration == iteration && !is_consumed(i)) {
      return true;
    }
  }
  return false;
}

void FaultInjector::consume_kill(std::size_t device, int iteration) {
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& ev = plan_.events[i];
    if (ev.kind == FaultEvent::Kind::kKillDevice && ev.device == device &&
        ev.iteration == iteration && !is_consumed(i)) {
      mark_consumed(i);
      return;
    }
  }
}

int FaultInjector::message_drops(std::size_t device, int iteration) const {
  int drops = 0;
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& ev = plan_.events[i];
    if (ev.kind == FaultEvent::Kind::kDropMessage && ev.device == device &&
        ev.active_at(iteration) && !is_consumed(i)) {
      drops += ev.count;
    }
  }
  return drops;
}

void FaultInjector::consume_drops(std::size_t device, int iteration) {
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& ev = plan_.events[i];
    if (ev.kind == FaultEvent::Kind::kDropMessage && !ev.persistent &&
        ev.device == device && ev.active_at(iteration) && !is_consumed(i)) {
      mark_consumed(i);
    }
  }
}

const FaultEvent* FaultInjector::corruption(std::size_t device,
                                            int iteration) const {
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& ev = plan_.events[i];
    if (ev.kind == FaultEvent::Kind::kCorruptMessage && ev.device == device &&
        ev.active_at(iteration) && !is_consumed(i)) {
      return &ev;
    }
  }
  return nullptr;
}

void FaultInjector::consume_corruption(std::size_t device, int iteration) {
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& ev = plan_.events[i];
    if (ev.kind == FaultEvent::Kind::kCorruptMessage && !ev.persistent &&
        ev.device == device && ev.active_at(iteration) && !is_consumed(i)) {
      mark_consumed(i);
      return;
    }
  }
}

double FaultInjector::straggle_factor(std::size_t device,
                                      int iteration) const {
  double factor = 1.0;
  for (const FaultEvent& ev : plan_.events) {
    if (ev.kind == FaultEvent::Kind::kStraggle && ev.device == device &&
        ev.active_at(iteration)) {
      factor *= ev.factor;
    }
  }
  return factor;
}

namespace {

const char* fs_kind_name(FsFailpoint::Kind kind) {
  switch (kind) {
    case FsFailpoint::Kind::kShortWrite:
      return "short";
    case FsFailpoint::Kind::kNoSpace:
      return "enospc";
    case FsFailpoint::Kind::kFailRename:
      return "rename";
    case FsFailpoint::Kind::kCrashAfterTemp:
      return "crash";
    case FsFailpoint::Kind::kCorruptRead:
      return "corrupt-read";
  }
  return "?";
}

bool is_write_kind(FsFailpoint::Kind kind) {
  return kind != FsFailpoint::Kind::kCorruptRead;
}

}  // namespace

bool FsFailpoint::matches_path(const std::string& path) const {
  return path_contains.empty() ||
         path.find(path_contains) != std::string::npos;
}

std::string FsFailpoint::to_string() const {
  std::ostringstream out;
  out << fs_kind_name(kind) << ":op=" << op;
  if (times != 1) out << ",times=" << times;
  if (kind == Kind::kShortWrite) out << ",bytes=" << bytes;
  if (!path_contains.empty()) out << ",path=" << path_contains;
  return out.str();
}

FsFaultPlan FsFaultPlan::parse(const std::string& spec) {
  FsFaultPlan plan;
  for (const std::string& entry : split(spec, ';')) {
    if (entry.empty()) continue;
    const auto colon = entry.find(':');
    if (colon == std::string::npos) {
      throw FaultError("io fault spec: missing ':' in '" + entry + "'");
    }
    const std::string kind = entry.substr(0, colon);
    FsFailpoint ev;
    if (kind == "short") {
      ev.kind = FsFailpoint::Kind::kShortWrite;
    } else if (kind == "enospc") {
      ev.kind = FsFailpoint::Kind::kNoSpace;
    } else if (kind == "rename") {
      ev.kind = FsFailpoint::Kind::kFailRename;
    } else if (kind == "crash") {
      ev.kind = FsFailpoint::Kind::kCrashAfterTemp;
    } else if (kind == "corrupt-read") {
      ev.kind = FsFailpoint::Kind::kCorruptRead;
    } else {
      throw FaultError("io fault spec: unknown failpoint kind '" + kind +
                       "' in '" + entry + "'");
    }
    bool have_op = false;
    for (const std::string& kv : split(entry.substr(colon + 1), ',')) {
      if (kv.empty()) continue;
      const auto eq = kv.find('=');
      if (eq == std::string::npos) {
        throw FaultError("io fault spec: expected key=value, got '" + kv +
                         "' in '" + entry + "'");
      }
      const std::string key = kv.substr(0, eq);
      if (key == "path") {
        ev.path_contains = kv.substr(eq + 1);
        continue;
      }
      const double value = parse_value(kv.substr(eq + 1), entry);
      if (key == "op") {
        ev.op = static_cast<int>(value);
        have_op = true;
      } else if (key == "times") {
        ev.times = static_cast<int>(value);
      } else if (key == "bytes") {
        if (value < 0) throw FaultError("io fault spec: negative bytes");
        ev.bytes = static_cast<std::size_t>(value);
      } else {
        throw FaultError("io fault spec: unknown key '" + key + "' in '" +
                         entry + "'");
      }
    }
    if (!have_op) {
      throw FaultError("io fault spec: '" + entry + "' needs op=");
    }
    if (ev.op < 1) {
      throw FaultError("io fault spec: op must be >= 1 in '" + entry + "'");
    }
    if (ev.times < 1) {
      throw FaultError("io fault spec: times must be >= 1 in '" + entry +
                       "'");
    }
    if (ev.kind == FsFailpoint::Kind::kCrashAfterTemp && ev.times != 1) {
      throw FaultError("io fault spec: crash fires once (drop times=) in '" +
                       entry + "'");
    }
    for (std::size_t i = 0; i < plan.events.size(); ++i) {
      const FsFailpoint& prev = plan.events[i];
      if (prev.kind == ev.kind && prev.op == ev.op &&
          prev.path_contains == ev.path_contains) {
        throw FaultError("io fault spec: entry " +
                         std::to_string(plan.events.size() + 1) + " ('" +
                         entry + "') duplicates entry " +
                         std::to_string(i + 1) + " ('" + prev.to_string() +
                         "'): same kind, op and path filter");
      }
    }
    plan.events.push_back(ev);
  }
  return plan;
}

std::string FsFaultPlan::to_string() const {
  std::string out;
  for (const FsFailpoint& ev : events) {
    if (!out.empty()) out += ';';
    out += ev.to_string();
  }
  return out;
}

const FsFailpoint* FsFaultInjector::advance(const std::string& path,
                                            bool write_side) {
  const FsFailpoint* fired = nullptr;
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const FsFailpoint& ev = plan_.events[i];
    if (is_write_kind(ev.kind) != write_side || !ev.matches_path(path)) {
      continue;
    }
    const int n = ++seen_[i];
    if (fired == nullptr && n >= ev.op && n < ev.op + ev.times) {
      fired = &ev;
    }
  }
  return fired;
}

const FsFailpoint* FsFaultInjector::on_write_attempt(const std::string& path) {
  return advance(path, /*write_side=*/true);
}

const FsFailpoint* FsFaultInjector::on_read(const std::string& path) {
  return advance(path, /*write_side=*/false);
}

}  // namespace dopf::runtime
