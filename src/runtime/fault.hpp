#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "runtime/comm_model.hpp"

namespace dopf::runtime {

/// Thrown on malformed fault specs and on unrecoverable injected faults
/// (a device lost with failover disabled, or retries exhausted).
class FaultError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One scheduled fault. All faults are keyed by (device, iteration), so a
/// plan is fully deterministic: the same plan against the same run injects
/// the same faults at the same points, every time.
struct FaultEvent {
  enum class Kind {
    kKillDevice,       ///< device dies at the start of `iteration`
    kDropMessage,      ///< the device's consensus upload is lost `count` times
    kCorruptMessage,   ///< the upload payload is scaled by `factor`
    kStraggle,         ///< kernel time multiplied by `factor` on [iter, until]
  };
  Kind kind = Kind::kKillDevice;
  std::size_t device = 0;
  int iteration = 1;
  int until = 0;        ///< straggle end (inclusive; defaults to `iteration`)
  int count = 1;        ///< drop repetitions before the message gets through
  double factor = 0.0;  ///< straggle multiplier / corruption scale
  /// Persistent (recurring) fault: fires on EVERY iteration of
  /// [iteration, until] and is never consumed — the model of a chronically
  /// lossy link or a permanently slow device, as opposed to the one-shot
  /// transient semantics above. Parsed from `from=` instead of `iter=`.
  bool persistent = false;

  /// True when the event applies at `iteration` (persistent events cover
  /// their whole window; one-shot events match the exact iteration only —
  /// except straggle, whose [iter, until] window was always inclusive).
  bool active_at(int t) const;

  std::string to_string() const;
};

/// A deterministic schedule of faults, parseable from a CLI spec string:
///
///   kill:device=D,iter=K
///   drop:device=D,iter=K[,count=C]
///   corrupt:device=D,iter=K[,scale=S]
///   straggle:device=D,iter=K[,until=L][,factor=F]
///
/// drop/corrupt/straggle also accept `from=K` in place of `iter=K` for a
/// PERSISTENT fault that recurs on every iteration from K on (optionally
/// bounded by `until=L`), e.g. a permanent straggler
/// "straggle:device=1,from=1,factor=8" or a link that goes bad mid-run
/// "drop:device=2,from=200". Persistent events are never consumed.
///
/// Events are separated by ';'. Example:
///   "kill:device=1,iter=137;straggle:device=2,iter=10,until=40,factor=4"
///
/// Duplicate (kind, device, iteration) entries are rejected with an
/// entry-numbered error: a duplicated event is almost always an editing
/// mistake, and silently keeping both would double-fire the fault.
struct FaultPlan {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }
  /// True when any event is persistent (recurring).
  bool has_persistent() const;

  /// Parse a spec string; throws FaultError with the offending token on
  /// malformed input. An empty/whitespace spec yields an empty plan.
  static FaultPlan parse(const std::string& spec);

  std::string to_string() const;
};

/// How the runtime reacts to injected faults. The costs of every recovery
/// action are priced through the CommModel so simulated time reflects them.
struct RecoveryPolicy {
  /// Re-partition a dead device's components onto the survivors and resume
  /// from the last checkpoint. Off: a kill raises FaultError.
  bool failover = true;
  /// CRC-verify consensus payloads; a corrupted message is detected and
  /// re-sent (priced as one retry) instead of silently entering the state.
  /// Off: corruption silently perturbs the consensus iterate.
  bool verify_messages = true;
  /// Message retry budget before a dropped link escalates to a device loss.
  int max_retries = 3;
  /// Detection timeout charged per failed delivery attempt.
  double retry_timeout_s = 100e-6;
  /// Exponential backoff factor applied to successive timeouts.
  double backoff_factor = 2.0;
};

/// Simulated seconds spent recovering a message that failed `failures`
/// times: each failure costs one (backed-off) detection timeout plus the
/// re-send priced through the alpha-beta model.
double retry_cost_seconds(const RecoveryPolicy& policy, const CommModel& comm,
                          std::size_t message_bytes, int failures);

/// Query-side view of a FaultPlan used inside the iteration loop. Kill
/// events are consumed (a device dies once); everything else is a pure
/// deterministic function of (device, iteration). Persistent events are
/// exempt from consumption: consume_* calls skip them, so they re-fire on
/// every covered iteration (including post-failover replays).
class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  const FaultPlan& plan() const { return plan_; }
  bool empty() const { return plan_.empty(); }

  /// True when a not-yet-consumed kill is scheduled at (device, iteration).
  bool kill_scheduled(std::size_t device, int iteration) const;
  /// Consume the kill so a post-failover replay does not re-trigger it.
  void consume_kill(std::size_t device, int iteration);

  /// Number of times the device's upload is dropped at this iteration.
  int message_drops(std::size_t device, int iteration) const;
  /// Consume the drop events once retried, so a post-failover replay of the
  /// same iteration sees a clean link (transient-fault semantics).
  void consume_drops(std::size_t device, int iteration);

  /// The corruption event hitting the device's upload this iteration, or
  /// nullptr. Corruption applies on the first pass only (consumed like a
  /// kill), so a rolled-back replay is clean — matching a real transient.
  const FaultEvent* corruption(std::size_t device, int iteration) const;
  void consume_corruption(std::size_t device, int iteration);

  /// Kernel-time multiplier for the device at this iteration (1.0 = none).
  double straggle_factor(std::size_t device, int iteration) const;

 private:
  FaultPlan plan_;
  std::vector<bool> consumed_ = {};  // parallel to plan_.events

  bool is_consumed(std::size_t idx) const {
    return idx < consumed_.size() && consumed_[idx];
  }
  void mark_consumed(std::size_t idx);
};

/// One scheduled filesystem failpoint. Where the FaultEvent family above is
/// keyed by (device, iteration), filesystem failpoints are keyed by the
/// 1-based ordinal of the matching I/O attempt — deterministic for the same
/// run, independent of wall time.
struct FsFailpoint {
  enum class Kind {
    kShortWrite,      ///< temp file receives only `bytes` bytes, then EIO
    kNoSpace,         ///< write fails immediately with ENOSPC
    kFailRename,      ///< temp written fine; the atomic rename fails (EIO)
    kCrashAfterTemp,  ///< process "crashes" after fsync(temp), before rename
    kCorruptRead,     ///< a read returns the file with one byte flipped
  };
  Kind kind = Kind::kNoSpace;
  /// 1-based ordinal of the first matching operation this failpoint fires
  /// on. Write-kind failpoints count write *attempts* (so a retry of a
  /// failed save is attempt N+1); kCorruptRead counts reads.
  int op = 1;
  /// Fire on `times` consecutive matching operations [op, op+times-1]
  /// (transient-fault semantics: times < max_retries is survivable).
  int times = 1;
  std::size_t bytes = 0;      ///< short-write length (kShortWrite)
  std::string path_contains;  ///< only ops whose path contains this count

  bool matches_path(const std::string& path) const;
  std::string to_string() const;
};

/// A deterministic schedule of filesystem failpoints, parseable from a CLI
/// spec string (same grammar family as FaultPlan):
///
///   short:op=N[,times=K][,bytes=B][,path=SUBSTR]
///   enospc:op=N[,times=K][,path=SUBSTR]
///   rename:op=N[,times=K][,path=SUBSTR]
///   crash:op=N[,path=SUBSTR]
///   corrupt-read:op=N[,times=K][,path=SUBSTR]
///
/// Events are separated by ';'. Example: the third checkpoint write attempt
/// hits a full disk twice, then succeeds on retry:
///   "enospc:op=3,times=2,path=day.ckpt"
struct FsFaultPlan {
  std::vector<FsFailpoint> events;

  bool empty() const { return events.empty(); }
  static FsFaultPlan parse(const std::string& spec);
  std::string to_string() const;
};

/// Query-side view of an FsFaultPlan used inside durable_write_file /
/// durable_read_file. Each failpoint keeps its own attempt counter over the
/// operations matching its path filter, so two failpoints with different
/// filters fire independently and deterministically.
class FsFaultInjector {
 public:
  FsFaultInjector() = default;
  explicit FsFaultInjector(FsFaultPlan plan) : plan_(std::move(plan)) {
    seen_.assign(plan_.events.size(), 0);
  }

  const FsFaultPlan& plan() const { return plan_; }
  bool empty() const { return plan_.empty(); }

  /// Register one write attempt of `path`; returns the failpoint to apply
  /// (the first armed match), or nullptr for a clean write.
  const FsFailpoint* on_write_attempt(const std::string& path);
  /// Register one read of `path`; returns an armed kCorruptRead or nullptr.
  const FsFailpoint* on_read(const std::string& path);

 private:
  const FsFailpoint* advance(const std::string& path, bool write_side);

  FsFaultPlan plan_;
  std::vector<int> seen_;  // per-event matching-operation counters
};

}  // namespace dopf::runtime
