#include "runtime/instances.hpp"

#include <stdexcept>

#include "feeders/ieee13.hpp"
#include "feeders/synthetic.hpp"

namespace dopf::runtime {

Instance make_instance(const std::string& name,
                       const dopf::opf::DecomposeOptions& options) {
  dopf::network::Network net;
  if (name == "ieee13") {
    net = dopf::feeders::ieee13();
  } else if (name == "ieee123") {
    net = dopf::feeders::synthetic_feeder(dopf::feeders::ieee123_spec());
  } else if (name == "ieee8500") {
    net = dopf::feeders::synthetic_feeder(dopf::feeders::ieee8500_spec());
  } else if (name == "ieee8500_mini") {
    net = dopf::feeders::synthetic_feeder(dopf::feeders::ieee8500_mini_spec());
  } else if (name == "ieee13_overload") {
    // ieee13 with every load scaled far past the generation and flow
    // capacity: the OPF is infeasible, so ADMM's primal residual stays
    // bounded away from zero. A deterministic stall for watchdog tests.
    net = dopf::feeders::ieee13();
    for (std::size_t i = 0; i < net.num_loads(); ++i) {
      auto& load = net.load_mutable(static_cast<int>(i));
      for (double& v : load.p_ref.values) v *= 50.0;
      for (double& v : load.q_ref.values) v *= 50.0;
    }
  } else {
    throw std::invalid_argument("make_instance: unknown instance '" + name +
                                "'");
  }
  dopf::opf::OpfModel model = dopf::opf::build_model(net);
  dopf::opf::DistributedProblem problem =
      dopf::opf::decompose(net, model, options);
  return Instance{name, std::move(net), std::move(model), std::move(problem)};
}

std::vector<std::string> paper_instance_names() {
  return {"ieee13", "ieee123", "ieee8500"};
}

}  // namespace dopf::runtime
