#include "runtime/thread_pool.hpp"

#include <algorithm>

namespace dopf::runtime {

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  errors_.resize(static_cast<std::size_t>(threads));
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int lane = 1; lane < threads; ++lane) {
    workers_.emplace_back([this, lane] { worker_loop(lane); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::run_lane(int lane) {
  const std::size_t T = static_cast<std::size_t>(size());
  const std::size_t lo = static_cast<std::size_t>(lane);
  const std::size_t begin = job_n_ * lo / T;
  const std::size_t end = job_n_ * (lo + 1) / T;
  if (begin >= end) return;
  try {
    (*job_)(lane, begin, end);
  } catch (...) {
    errors_[static_cast<std::size_t>(lane)] = std::current_exception();
  }
}

void ThreadPool::worker_loop(int lane) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    run_lane(lane);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--pending_ == 0) done_cv_.notify_one();
    }
  }
}

void ThreadPool::parallel_for(
    std::size_t n,
    const std::function<void(int, std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  std::fill(errors_.begin(), errors_.end(), std::exception_ptr{});
  job_ = &fn;
  job_n_ = n;
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      pending_ = static_cast<int>(workers_.size());
      ++generation_;
    }
    work_cv_.notify_all();
  }
  run_lane(0);
  if (!workers_.empty()) {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return pending_ == 0; });
  }
  job_ = nullptr;
  for (std::exception_ptr& e : errors_) {
    if (e) {
      std::exception_ptr first = e;
      std::fill(errors_.begin(), errors_.end(), std::exception_ptr{});
      std::rethrow_exception(first);
    }
  }
}

}  // namespace dopf::runtime
