#include "runtime/signals.hpp"

#include <csignal>

namespace dopf::runtime {
namespace {

/// The handler target. Written once from install_cancel_signal_handlers
/// (before any signal can be delivered through it) and read from signal
/// context; CancelToken::request is async-signal-safe by contract.
dopf::core::CancelToken* g_signal_token = nullptr;

extern "C" void dopf_cancel_signal_handler(int) {
  if (g_signal_token != nullptr) {
    g_signal_token->request("interrupted by signal");
  }
}

}  // namespace

void install_cancel_signal_handlers(dopf::core::CancelToken* token) {
  g_signal_token = token;
  struct sigaction sa;
  sa.sa_handler = dopf_cancel_signal_handler;
  sigemptyset(&sa.sa_mask);
  // No SA_RESTART: blocking syscalls must return EINTR so accept/read
  // loops observe the cancellation instead of silently resuming.
  sa.sa_flags = 0;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

}  // namespace dopf::runtime
