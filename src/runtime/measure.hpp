#pragma once

#include <memory>
#include <vector>

#include "baseline/benchmark_admm.hpp"
#include "core/admm.hpp"
#include "core/backend.hpp"
#include "opf/decompose.hpp"

namespace dopf::runtime {

/// Measured per-iteration costs of one ADMM variant on this host:
/// per-component local-update seconds (averaged over the measured
/// iterations) plus the aggregator-side global/dual update seconds. These
/// feed the VirtualCluster, which turns them into multi-rank projections.
struct IterationCosts {
  std::vector<double> component_seconds;  ///< avg seconds per iteration
  std::vector<std::size_t> payload_vars;  ///< n_s per component
  double global_update_seconds = 0.0;
  double dual_update_seconds = 0.0;
  double local_update_seconds = 0.0;  ///< serial sum (1-rank makespan)
  /// Measured wall seconds of the local-update phase per iteration. Equals
  /// `local_update_seconds` under the serial backend; under a parallel
  /// backend it is the makespan actually achieved on this host.
  double local_update_wall_seconds = 0.0;
  int measured_iterations = 0;
};

/// Run `iterations` solver-free ADMM iterations with per-component timers.
/// When `backend` is non-null the solver-free updates execute on it (e.g. a
/// ThreadedBackend), so `local_update_wall_seconds` reflects that backend;
/// per-component timers keep their serial-sum meaning either way.
IterationCosts measure_solver_free(
    const dopf::opf::DistributedProblem& problem,
    dopf::core::AdmmOptions options, int iterations,
    std::unique_ptr<dopf::core::ExecutionBackend> backend = nullptr);

/// Run `iterations` benchmark-ADMM iterations with per-component timers.
IterationCosts measure_benchmark(const dopf::opf::DistributedProblem& problem,
                                 dopf::core::AdmmOptions options,
                                 int iterations);

}  // namespace dopf::runtime
