#include "runtime/durable.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "runtime/backoff.hpp"

namespace dopf::runtime {

namespace {

/// Directory part of `path` ("." when the path has no separator), for the
/// directory fsync that makes the rename itself durable.
std::string dir_of(const std::string& path) {
  const auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

void fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;  // best effort: some filesystems refuse dir handles
  ::fsync(fd);
  ::close(fd);
}

/// Write the full buffer, looping over partial writes and EINTR.
bool write_all(int fd, const char* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

/// One write attempt: temp file -> fsync -> rename -> fsync dir. Returns
/// true on success; on failure fills (err, detail) and cleans up the temp
/// file. Throws SimulatedCrash when the crash failpoint is armed.
bool attempt_write(const std::string& path, const std::string& tmp,
                   std::string_view content, const DurableOptions& opts,
                   int& err, std::string& detail) {
  const FsFailpoint* fault =
      opts.faults ? opts.faults->on_write_attempt(path) : nullptr;
  if (fault && fault->kind == FsFailpoint::Kind::kNoSpace) {
    err = ENOSPC;
    detail = "injected " + fault->to_string();
    return false;
  }

  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    err = errno;
    detail = "open temp";
    return false;
  }
  std::size_t to_write = content.size();
  bool injected_short = false;
  if (fault && fault->kind == FsFailpoint::Kind::kShortWrite) {
    to_write = fault->bytes < to_write ? fault->bytes : to_write;
    injected_short = true;
  }
  if (!write_all(fd, content.data(), to_write)) {
    err = errno;
    detail = "write temp";
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  if (injected_short) {
    // The device accepted only a prefix: a real short write surfaces as a
    // failed/partial write syscall. The torn temp file must not survive
    // into the rename, so the attempt fails and the temp is removed.
    err = EIO;
    detail = "injected " + fault->to_string();
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  if (opts.fsync && ::fsync(fd) != 0) {
    err = errno;
    detail = "fsync temp";
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  if (::close(fd) != 0) {
    err = errno;
    detail = "close temp";
    ::unlink(tmp.c_str());
    return false;
  }

  if (fault && fault->kind == FsFailpoint::Kind::kCrashAfterTemp) {
    // Durable temp, no rename: the exact torn-write window. Leave the temp
    // file in place (a crashed process cleans nothing) and abandon ship.
    throw SimulatedCrash(path);
  }
  if (fault && fault->kind == FsFailpoint::Kind::kFailRename) {
    err = EIO;
    detail = "injected " + fault->to_string();
    ::unlink(tmp.c_str());
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    err = errno;
    detail = "rename";
    ::unlink(tmp.c_str());
    return false;
  }
  if (opts.fsync) fsync_dir(dir_of(path));
  return true;
}

}  // namespace

std::string IoError::message_for(int error_code) {
  if (error_code == 0) return "i/o failure";
  return std::strerror(error_code);
}

IoStats durable_write_file(const std::string& path, std::string_view content,
                           const DurableOptions& opts) {
  IoStats stats;
  const std::string tmp = path + ".tmp";
  int err = 0;
  std::string detail;
  BackoffOptions bo;
  bo.base = opts.retry_timeout_s;
  bo.factor = opts.backoff_factor;
  Backoff backoff(bo);  // jitter-free: priced retry time is deterministic
  const int attempts = 1 + (opts.max_retries > 0 ? opts.max_retries : 0);
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    if (attempt_write(path, tmp, content, opts, err, detail)) {
      ++stats.writes;
      return stats;
    }
    if (attempt < attempts) {
      // Transient-failure semantics mirror message retries: charge one
      // (backed-off) detection timeout in simulated seconds and try again.
      ++stats.retries;
      stats.retry_seconds += backoff.next();
    }
  }
  throw IoError("durable write of", path, err,
                detail + ", " + std::to_string(attempts) +
                    " attempt(s) exhausted");
}

std::string durable_read_file(const std::string& path,
                              const DurableOptions& opts, IoStats* stats) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw IoError("read of", path, errno, "open");
  std::string content;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      throw IoError("read of", path, err);
    }
    if (n == 0) break;
    content.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  if (stats) ++stats->reads;
  const FsFailpoint* fault = opts.faults ? opts.faults->on_read(path) : nullptr;
  if (fault && fault->kind == FsFailpoint::Kind::kCorruptRead &&
      !content.empty()) {
    // One flipped bit mid-file: enough to fail the CRC, deterministic.
    content[content.size() / 2] ^= 0x01;
  }
  return content;
}

}  // namespace dopf::runtime
