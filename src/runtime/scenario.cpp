#include "runtime/scenario.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "network/phase.hpp"

namespace dopf::runtime {

using dopf::network::Load;
using dopf::network::Network;
using dopf::network::Phase;

namespace {

[[noreturn]] void fail(int line_no, const std::string& message) {
  throw ScenarioError("scenario file line " + std::to_string(line_no) + ": " +
                      message);
}

double parse_factor(const std::string& token, int line_no) {
  std::istringstream ss(token);
  double v = 0.0;
  char trailing = 0;
  if (!(ss >> v) || ss >> trailing) {
    fail(line_no, "bad factor '" + token + "'");
  }
  if (!std::isfinite(v) || v <= 0.0) {
    fail(line_no, "factor must be finite and positive, got '" + token + "'");
  }
  return v;
}

constexpr Phase kPhases[] = {Phase::kA, Phase::kB, Phase::kC};

}  // namespace

bool is_constant_power(const Load& load) {
  for (Phase p : kPhases) {
    if (load.alpha[p] != 0.0 || load.beta[p] != 0.0) return false;
  }
  return true;
}

ScenarioOverride parse_scenario_override(
    const std::vector<std::string>& tokens, int line_no) {
  if (tokens[0] == "load") {
    if (tokens.size() != 4 || tokens[2] != "scale") {
      fail(line_no, "expected: load <name|*|constant> scale <factor>");
    }
    return {ScenarioOverride::Kind::kLoadScale, tokens[1],
            parse_factor(tokens[3], line_no), line_no};
  }
  if (tokens[0] == "gen") {
    if (tokens.size() != 4 ||
        (tokens[2] != "cost-scale" && tokens[2] != "pmax-scale")) {
      fail(line_no, "expected: gen <name|*> cost-scale|pmax-scale <factor>");
    }
    const auto kind = tokens[2] == "cost-scale"
                          ? ScenarioOverride::Kind::kGenCostScale
                          : ScenarioOverride::Kind::kGenPmaxScale;
    return {kind, tokens[1], parse_factor(tokens[3], line_no), line_no};
  }
  fail(line_no, "unknown directive '" + tokens[0] + "'");
}

void reject_duplicate_override(const std::vector<ScenarioOverride>& seen,
                               const ScenarioOverride& ov,
                               const std::string& where) {
  // A later `load` line for the same target would silently compound with
  // (and visually overwrite) the earlier one; that is always an input
  // mistake, so both lines are named. Overlapping targets ("*" plus a
  // specific load) are deliberate composition and stay legal.
  if (ov.kind != ScenarioOverride::Kind::kLoadScale) return;
  for (const ScenarioOverride& prev : seen) {
    if (prev.kind == ov.kind && prev.target == ov.target) {
      fail(ov.line_no, "duplicate load override for '" + ov.target + "' in " +
                           where + " (first on line " +
                           std::to_string(prev.line_no) + ")");
    }
  }
}

std::vector<Scenario> parse_scenarios(std::istream& in) {
  std::vector<Scenario> scenarios;
  bool open = false;
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream ss(raw);
    std::vector<std::string> tokens;
    std::string t;
    while (ss >> t) tokens.push_back(t);
    if (tokens.empty()) continue;

    if (tokens[0] == "scenario") {
      if (open) fail(line_no, "missing 'end' before new scenario");
      if (tokens.size() != 2) fail(line_no, "expected: scenario <name>");
      scenarios.push_back(Scenario{tokens[1], {}});
      open = true;
    } else if (tokens[0] == "end") {
      if (!open) fail(line_no, "'end' outside a scenario block");
      if (tokens.size() != 1) fail(line_no, "expected: end");
      open = false;
    } else if (tokens[0] == "load" || tokens[0] == "gen") {
      if (!open) fail(line_no, "override outside a scenario block");
      const ScenarioOverride ov = parse_scenario_override(tokens, line_no);
      reject_duplicate_override(scenarios.back().overrides, ov,
                                "scenario '" + scenarios.back().name + "'");
      scenarios.back().overrides.push_back(ov);
    } else {
      fail(line_no, "unknown directive '" + tokens[0] + "'");
    }
  }
  if (open) {
    throw ScenarioError("scenario file: unterminated scenario '" +
                        scenarios.back().name + "' (missing 'end')");
  }
  if (scenarios.empty()) {
    throw ScenarioError("scenario file: no scenarios defined");
  }
  return scenarios;
}

std::vector<Scenario> load_scenarios(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ScenarioError("cannot open scenario file: " + path);
  return parse_scenarios(in);
}

Network apply_scenario(const Network& base, const Scenario& scenario) {
  Network net = base;
  for (const ScenarioOverride& ov : scenario.overrides) {
    bool matched = false;
    if (ov.kind == ScenarioOverride::Kind::kLoadScale) {
      for (std::size_t i = 0; i < net.num_loads(); ++i) {
        Load& load = net.load_mutable(static_cast<int>(i));
        if (ov.target == "constant") {
          if (!is_constant_power(load)) continue;
        } else if (ov.target != "*" && load.name != ov.target) {
          continue;
        }
        for (Phase p : kPhases) {
          load.p_ref[p] *= ov.factor;
          load.q_ref[p] *= ov.factor;
        }
        matched = true;
      }
    } else {
      for (std::size_t i = 0; i < net.num_generators(); ++i) {
        auto& gen = net.generator_mutable(static_cast<int>(i));
        if (ov.target != "*" && gen.name != ov.target) continue;
        if (ov.kind == ScenarioOverride::Kind::kGenCostScale) {
          gen.cost *= ov.factor;
        } else {
          for (Phase p : kPhases) gen.p_max[p] *= ov.factor;
        }
        matched = true;
      }
    }
    if (!matched) {
      throw ScenarioError("scenario '" + scenario.name +
                          "': no component matches target '" + ov.target +
                          "'");
    }
  }
  return net;
}

}  // namespace dopf::runtime
