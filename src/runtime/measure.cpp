#include "runtime/measure.hpp"

#include <stdexcept>

#include "core/scenario_binding.hpp"
#include "core/solve_model.hpp"
#include "core/solve_session.hpp"

namespace dopf::runtime {

namespace {

IterationCosts finalize(const dopf::opf::DistributedProblem& problem,
                        std::span<const double> comp_seconds,
                        const dopf::core::TimingBreakdown& timing,
                        int iterations) {
  IterationCosts costs;
  costs.measured_iterations = iterations;
  const double scale = 1.0 / static_cast<double>(iterations);
  costs.component_seconds.assign(comp_seconds.begin(), comp_seconds.end());
  for (double& s : costs.component_seconds) {
    s *= scale;
    costs.local_update_seconds += s;
  }
  costs.payload_vars.reserve(problem.components.size());
  for (const auto& comp : problem.components) {
    costs.payload_vars.push_back(comp.num_vars());
  }
  costs.global_update_seconds = timing.global_update * scale;
  costs.dual_update_seconds = timing.dual_update * scale;
  costs.local_update_wall_seconds = timing.local_update * scale;
  return costs;
}

}  // namespace

namespace {
void check_iterations(int iterations) {
  if (iterations < 1) {
    throw std::invalid_argument("measure: iterations must be >= 1");
  }
}
}  // namespace

IterationCosts measure_solver_free(
    const dopf::opf::DistributedProblem& problem,
    dopf::core::AdmmOptions options, int iterations,
    std::unique_ptr<dopf::core::ExecutionBackend> backend) {
  check_iterations(iterations);
  options.record_component_times = true;
  options.max_iterations = iterations;
  options.check_every = iterations + 1;  // never terminate early
  // Measurement runs through the session layers explicitly: the model owns
  // the factorizations, the binding the pack, the session the solve.
  dopf::core::SolveModel model(problem, options.projector);
  dopf::core::ScenarioBinding binding(model);
  dopf::core::SolveSession session(binding, options);
  if (backend) session.set_backend(std::move(backend));
  const auto result = session.solve();
  return finalize(problem, result.component_seconds, result.timing,
                  result.iterations);
}

IterationCosts measure_benchmark(const dopf::opf::DistributedProblem& problem,
                                 dopf::core::AdmmOptions options,
                                 int iterations) {
  check_iterations(iterations);
  options.record_component_times = true;
  options.max_iterations = iterations;
  options.check_every = iterations + 1;
  dopf::baseline::BenchmarkAdmm admm(problem, options);
  const auto result = admm.solve();
  return finalize(problem, result.component_seconds, result.timing,
                  result.iterations);
}

}  // namespace dopf::runtime
