#include "runtime/cluster.hpp"

#include <algorithm>
#include <stdexcept>

namespace dopf::runtime {

VirtualCluster::VirtualCluster(std::size_t ranks, CommModel comm,
                               bool gpu_ranks, StagingModel staging)
    : ranks_(ranks), comm_(comm), gpu_ranks_(gpu_ranks), staging_(staging) {
  if (ranks_ == 0) throw std::invalid_argument("VirtualCluster: 0 ranks");
}

LocalUpdatePhase VirtualCluster::price_local_update(
    const Partition& partition, std::span<const double> component_seconds,
    std::span<const std::size_t> component_payload_vars) const {
  if (component_seconds.size() != component_payload_vars.size()) {
    throw std::invalid_argument("price_local_update: size mismatch");
  }
  LocalUpdatePhase phase;
  double staging_worst = 0.0;
  for (const auto& part : partition) {
    double compute = 0.0;
    std::size_t vars = 0;
    for (std::size_t s : part) {
      compute += component_seconds[s];
      vars += component_payload_vars[s];
    }
    phase.compute_seconds = std::max(phase.compute_seconds, compute);

    // Aggregator -> rank: x restricted to the rank's copies (n_s doubles per
    // component); rank -> aggregator: x_s and lambda_s (2 n_s doubles).
    // The aggregator handles ranks serially, so per-message latencies add up
    // — this is what makes communication grow with the rank count.
    const std::size_t down_bytes = vars * sizeof(double);
    const std::size_t up_bytes = 2 * vars * sizeof(double);
    phase.communication_seconds += comm_.message_seconds(down_bytes) +
                                   comm_.message_seconds(up_bytes);

    if (gpu_ranks_) {
      // Each rank stages its payload across PCIe before/after MPI; ranks
      // stage concurrently, so take the slowest.
      const double stage = staging_.transfer_seconds(down_bytes) +
                           staging_.transfer_seconds(up_bytes);
      staging_worst = std::max(staging_worst, stage);
    }
  }
  phase.staging_seconds = staging_worst;
  return phase;
}

LocalUpdatePhase VirtualCluster::price_local_update(
    std::span<const double> component_seconds,
    std::span<const std::size_t> component_payload_vars) const {
  return price_local_update(
      block_partition(component_seconds.size(), ranks_), component_seconds,
      component_payload_vars);
}

LocalUpdatePhase VirtualCluster::price_local_update(
    const Partition& partition, std::span<const double> component_seconds,
    std::span<const std::size_t> component_payload_vars,
    const FaultInjector& faults, int iteration,
    const RecoveryPolicy& recovery) const {
  LocalUpdatePhase phase =
      price_local_update(partition, component_seconds, component_payload_vars);

  // Straggle: the makespan is re-derived with each rank's compute scaled by
  // its injected slowdown.
  double compute = 0.0;
  for (std::size_t r = 0; r < partition.size(); ++r) {
    double rank_compute = 0.0;
    std::size_t vars = 0;
    for (std::size_t s : partition[r]) {
      rank_compute += component_seconds[s];
      vars += component_payload_vars[s];
    }
    rank_compute *= faults.straggle_factor(r, iteration);
    compute = std::max(compute, rank_compute);

    // Drops / detected corruption on the rank -> aggregator upload: the
    // aggregator times out and the rank re-sends, with backoff.
    const std::size_t up_bytes = 2 * vars * sizeof(double);
    const int drops = faults.message_drops(r, iteration);
    if (drops > 0) {
      if (drops > recovery.max_retries) {
        throw FaultError("rank " + std::to_string(r) + " lost at iteration " +
                         std::to_string(iteration) + ": " +
                         std::to_string(drops) + " drops exceed the retry "
                         "budget");
      }
      phase.communication_seconds +=
          retry_cost_seconds(recovery, comm_, up_bytes, drops);
    }
    if (recovery.verify_messages &&
        faults.corruption(r, iteration) != nullptr) {
      phase.communication_seconds +=
          retry_cost_seconds(recovery, comm_, up_bytes, 1);
    }
  }
  phase.compute_seconds = compute;
  return phase;
}

}  // namespace dopf::runtime
