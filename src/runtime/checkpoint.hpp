#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/admm.hpp"
#include "runtime/durable.hpp"

namespace dopf::runtime {

/// Thrown on malformed, truncated, or corrupted checkpoint files.
class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A complete restart point of the solver-free ADMM: everything the
/// deterministic updates read, captured after iteration `iteration`.
/// Serialized with the same C99 hex-float codec as the golden traces
/// (src/verify/codec.hpp) so a save/load round-trip preserves every bit,
/// and guarded by a CRC-32 of the payload so truncation or bit rot is
/// detected at load time instead of silently corrupting a resumed run.
struct AdmmCheckpoint {
  std::string label;  ///< instance label (informational, e.g. "ieee13")
  /// FNV-1a fingerprint of the model topology (Abar pool, gather
  /// structure) the checkpoint was recorded against; 0 = unknown (legacy
  /// file). See core::topology_fingerprint.
  std::uint64_t model_fingerprint = 0;
  /// FNV-1a fingerprint of the bound scenario data (bbar, c, bounds, x0);
  /// 0 = unknown. A resume against edited loads fails validation loudly
  /// instead of silently continuing on the wrong scenario.
  std::uint64_t scenario_fingerprint = 0;
  /// Monotonic save counter assigned by CheckpointStore (0 = not stored in
  /// an A/B pair, the single-file layout). The store picks the slot with
  /// the highest valid generation on load, so a torn newest write falls
  /// back to the previous good one.
  std::uint64_t generation = 0;
  int iteration = 0;  ///< the state is AFTER this iteration's dual update
  double rho = 0.0;
  std::vector<double> x;       ///< global iterate
  std::vector<double> z;       ///< local solutions, concatenated
  std::vector<double> z_prev;  ///< previous local solutions
  std::vector<double> lambda;  ///< duals, concatenated

  /// Snapshot the solver's current state (use from a checkpoint hook or
  /// between step-level calls; the state must be post-dual-update).
  static AdmmCheckpoint capture(const dopf::core::SolverFreeAdmm& admm,
                                int iteration, std::string label = {});

  /// Check this checkpoint against the solver's problem layout BEFORE any
  /// state is overwritten: x/z/z_prev/lambda dimensions must match, and —
  /// when `expected_label` is non-empty and the checkpoint carries a label —
  /// the labels must agree. When the checkpoint carries fingerprints
  /// (non-zero), the solver's bound model topology AND scenario data must
  /// fingerprint-match too, so a warm-session resume against edited loads
  /// is rejected. A CRC-valid checkpoint recorded on a different feeder or
  /// scenario fails here with a message naming both sides instead of
  /// silently corrupting the run. Throws CheckpointError.
  void validate_for(const dopf::core::SolverFreeAdmm& admm,
                    const std::string& expected_label = {}) const;

  /// Push this state back into a solver over the same problem layout
  /// (validated via validate_for first); its next solve() resumes from
  /// iteration + 1.
  void restore(dopf::core::SolverFreeAdmm* admm,
               const std::string& expected_label = {}) const;
};

void write_checkpoint(const AdmmCheckpoint& ck, std::ostream& out);
AdmmCheckpoint read_checkpoint(std::istream& in);
/// Atomically (write-temp -> fsync -> rename) replace `path` with the
/// serialized checkpoint. A failed or short write surfaces as IoError with
/// path + errno — never a silently-torn file. Returns the I/O work done
/// (retries are priced in simulated seconds like message recovery).
IoStats save_checkpoint(const AdmmCheckpoint& ck, const std::string& path,
                        const DurableOptions& opts = {});
AdmmCheckpoint load_checkpoint(const std::string& path,
                               const DurableOptions& opts = {});

/// Serialized size in bytes (what a rank must ship to recover a peer); used
/// to price failover through the communication model.
std::size_t checkpoint_bytes(const AdmmCheckpoint& ck);

/// Generation-numbered A/B checkpoint pair: saves alternate between
/// `base.a` and `base.b`, each stamped with a monotonically increasing
/// generation, and every write is atomic+durable. The slot holding the
/// PREVIOUS generation is never touched while the new one is written, so a
/// crash or torn write at any point leaves at least one loadable
/// checkpoint: load() prefers the highest valid generation and falls back
/// to the other slot — with a diagnostic naming what was wrong — when the
/// newest is corrupt.
class CheckpointStore {
 public:
  explicit CheckpointStore(std::string base_path, DurableOptions opts = {});

  const std::string& base_path() const { return base_path_; }
  std::string slot_a() const { return base_path_ + ".a"; }
  std::string slot_b() const { return base_path_ + ".b"; }
  /// True when either slot file exists on disk.
  bool any_slot_exists() const;

  /// Durably write `ck` (stamped generation latest+1) into the slot NOT
  /// holding the newest valid checkpoint. Throws IoError / SimulatedCrash.
  IoStats save(AdmmCheckpoint ck);

  struct Loaded {
    AdmmCheckpoint checkpoint;
    std::string path;        ///< the slot the checkpoint came from
    bool fell_back = false;  ///< newest-generation slot was rejected
    std::string diagnostic;  ///< why the preferred slot was rejected
  };
  /// Load the newest valid generation. Throws CheckpointError (with both
  /// slots' diagnoses) when neither slot holds a valid checkpoint.
  Loaded load() const;

 private:
  std::string base_path_;
  DurableOptions opts_;
  /// Next generation to stamp and the slot to write it to; scanned lazily
  /// from the on-disk slots on the first save.
  std::uint64_t next_generation_ = 0;
  int next_slot_ = 0;  // 0 = .a, 1 = .b
  bool scanned_ = false;
};

/// Resolve a `--resume PATH` argument against both layouts: when PATH.a or
/// PATH.b exists the A/B store is consulted (torn-write fallback included);
/// otherwise PATH itself is loaded as a single-file checkpoint.
CheckpointStore::Loaded resolve_checkpoint(const std::string& path,
                                           const DurableOptions& opts = {});

}  // namespace dopf::runtime
