#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dopf::runtime {

/// Assignment of S components to N ranks. parts[r] lists component ids
/// owned by rank r.
using Partition = std::vector<std::vector<std::size_t>>;

/// Contiguous near-even split of S components over N ranks — the paper's
/// "we distribute S subsystems nearly evenly, assigning each one to a
/// distinct node" (Sec. V-A).
Partition block_partition(std::size_t num_components, std::size_t ranks);

/// Weighted longest-processing-time greedy: balance the measured
/// per-component costs instead of the counts (ablation of the paper's
/// even-count rule).
Partition lpt_partition(std::span<const double> weights, std::size_t ranks);

/// max over ranks of the summed weights (the compute makespan).
double makespan(const Partition& partition, std::span<const double> weights);

}  // namespace dopf::runtime
