#pragma once

#include <memory>
#include <vector>

#include "core/backend.hpp"
#include "runtime/thread_pool.hpp"

namespace dopf::runtime {

/// Multi-threaded CPU execution backend: the per-iteration updates of
/// Algorithm 1 over a persistent ThreadPool with static contiguous
/// chunking (components for the local update, global variables / z
/// positions for the elementwise updates).
///
/// Bit-reproducibility: every output element is written by exactly one
/// lane with the same per-element expression as the serial backend, and
/// residual sums follow the deterministic chunk-tree reduction of
/// core::backend.hpp (chunk layout independent of thread count), so
/// iterates and residual histories are byte-identical to the serial and
/// SIMT backends at any thread count.
class ThreadedBackend final : public dopf::core::ExecutionBackend {
 public:
  /// `threads` <= 0 selects std::thread::hardware_concurrency().
  explicit ThreadedBackend(int threads = 0);

  int threads() const { return pool_.size(); }

  const char* name() const override { return "threaded"; }
  void global_update(const dopf::core::PackedLocalSolvers& pack,
                     dopf::core::PackedState& state) override;
  void local_update(const dopf::core::PackedLocalSolvers& pack,
                    dopf::core::PackedState& state) override;
  void dual_update(const dopf::core::PackedLocalSolvers& pack,
                   dopf::core::PackedState& state) override;
  dopf::core::ResidualSums residual_sums(
      const dopf::core::PackedLocalSolvers& pack,
      const dopf::core::PackedState& state) override;

 private:
  ThreadPool pool_;
  std::vector<dopf::core::ResidualSums> partials_;
};

std::unique_ptr<dopf::core::ExecutionBackend> make_threaded_backend(
    int threads = 0);

}  // namespace dopf::runtime
