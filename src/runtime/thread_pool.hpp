#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dopf::runtime {

/// A persistent pool of worker threads for static-chunked data parallelism.
///
/// A pool of size T runs parallel_for bodies on T lanes: lane 0 executes on
/// the calling thread, lanes 1..T-1 on persistent workers (so a 1-lane pool
/// is plain serial execution with zero synchronization). Workers park on a
/// condition variable between jobs; the pool is reusable across any number
/// of parallel_for calls and joins its workers on destruction.
///
/// parallel_for is not reentrant and the pool must be driven from one thread
/// at a time.
class ThreadPool {
 public:
  /// `threads` <= 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of lanes (calling thread included).
  int size() const { return static_cast<int>(workers_.size()) + 1; }

  /// Partition [0, n) statically into size() contiguous chunks (lane i gets
  /// [i*n/T, (i+1)*n/T)) and invoke fn(lane, begin, end) for every non-empty
  /// chunk. Blocks until all lanes finish; if any lane throws, the first
  /// exception (in lane order) is rethrown here and the pool stays usable.
  void parallel_for(std::size_t n,
                    const std::function<void(int lane, std::size_t begin,
                                             std::size_t end)>& fn);

 private:
  void worker_loop(int lane);
  void run_lane(int lane);

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  int pending_ = 0;
  bool stop_ = false;
  const std::function<void(int, std::size_t, std::size_t)>* job_ = nullptr;
  std::size_t job_n_ = 0;
  std::vector<std::exception_ptr> errors_;  // one slot per lane
};

}  // namespace dopf::runtime
