#pragma once

#include <cstdint>
#include <limits>
#include <random>

namespace dopf::runtime {

/// Policy for one seeded, optionally-jittered exponential backoff sequence.
/// Three retry loops share this shape (and previously each hand-rolled it):
/// the serve client's shed/transport retry (real sleeps, jittered so
/// retrying clients de-synchronize), the durable-write retry (simulated
/// seconds, deterministic, no jitter), and the supervisor's worker-restart
/// backoff (real sleeps, jittered per slot). Units are the caller's — the
/// policy only computes delays, it never sleeps.
struct BackoffOptions {
  /// Delay for attempt 0, before jitter.
  double base = 1.0;
  /// Multiplicative growth per attempt.
  double factor = 2.0;
  /// Cap on the delay, applied both before and after jitter (a floor from
  /// delay()'s hint may not exceed it either). Default: uncapped.
  double max = std::numeric_limits<double>::infinity();
  /// Multiplicative jitter drawn from U[jitter_min, jitter_max) per call.
  /// Equal bounds (the default) disable jitter AND the RNG draw, so a
  /// jitter-free sequence is exactly base * factor^attempt.
  double jitter_min = 1.0;
  double jitter_max = 1.0;
  /// Seed for the jitter stream: storms and restart schedules are
  /// reproducible run to run.
  std::uint64_t seed = 1;
};

/// Computes the delay sequence for a retry loop. Stateful in two ways: the
/// jitter RNG advances one draw per jittered call, and next() tracks the
/// attempt counter for callers that do not keep their own.
class Backoff {
 public:
  explicit Backoff(BackoffOptions opts);

  /// Delay for the 0-based `attempt`:
  ///   min(base * factor^attempt, max) * U[jitter_min, jitter_max)
  /// floored by `floor_hint` (a server's retry-after hint outranks local
  /// impatience) and finally clamped to `max`.
  double delay(int attempt, double floor_hint = 0.0);

  /// delay(n) for the internally-tracked attempt counter n, then n += 1.
  double next(double floor_hint = 0.0);

  /// Rewind the attempt counter (the jitter stream keeps advancing — a
  /// reset loop should not replay the exact jitter of the previous one).
  void reset() { attempt_ = 0; }

  int attempt() const { return attempt_; }

 private:
  BackoffOptions opts_;
  std::mt19937_64 rng_;
  int attempt_ = 0;
};

}  // namespace dopf::runtime
