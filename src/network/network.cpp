#include "network/network.hpp"

#include <algorithm>
#include <queue>
#include <sstream>

namespace dopf::network {

void Network::check_bus_exists(int bus, const char* what) const {
  if (bus < 0 || static_cast<std::size_t>(bus) >= buses_.size()) {
    throw NetworkError(std::string(what) + ": unknown bus id " +
                       std::to_string(bus));
  }
}

int Network::add_bus(Bus bus) {
  bus.id = static_cast<int>(buses_.size());
  if (bus.phases.empty()) {
    throw NetworkError("add_bus: bus must carry at least one phase");
  }
  buses_.push_back(std::move(bus));
  gens_at_.emplace_back();
  loads_at_.emplace_back();
  lines_at_.emplace_back();
  return buses_.back().id;
}

int Network::add_generator(Generator gen) {
  check_bus_exists(gen.bus, "add_generator");
  gen.id = static_cast<int>(generators_.size());
  generators_.push_back(std::move(gen));
  gens_at_[generators_.back().bus].push_back(generators_.back().id);
  return generators_.back().id;
}

int Network::add_load(Load load) {
  check_bus_exists(load.bus, "add_load");
  load.id = static_cast<int>(loads_.size());
  loads_.push_back(std::move(load));
  loads_at_[loads_.back().bus].push_back(loads_.back().id);
  return loads_.back().id;
}

int Network::add_line(Line line) {
  check_bus_exists(line.from_bus, "add_line");
  check_bus_exists(line.to_bus, "add_line");
  if (line.from_bus == line.to_bus) {
    throw NetworkError("add_line: self-loop on bus " +
                       std::to_string(line.from_bus));
  }
  line.id = static_cast<int>(lines_.size());
  lines_.push_back(std::move(line));
  const Line& l = lines_.back();
  lines_at_[l.from_bus].push_back({l.id, true});
  lines_at_[l.to_bus].push_back({l.id, false});
  return l.id;
}

std::vector<int> Network::leaf_buses() const {
  std::vector<int> leaves;
  for (const Bus& b : buses_) {
    if (lines_at_[b.id].size() == 1) leaves.push_back(b.id);
  }
  return leaves;
}

bool Network::is_connected() const {
  if (buses_.empty()) return true;
  std::vector<bool> seen(buses_.size(), false);
  std::queue<int> frontier;
  frontier.push(0);
  seen[0] = true;
  std::size_t count = 1;
  while (!frontier.empty()) {
    const int u = frontier.front();
    frontier.pop();
    for (const LineIncidence& inc : lines_at_[u]) {
      const Line& l = lines_[inc.line];
      const int v = inc.from_side ? l.to_bus : l.from_bus;
      if (!seen[v]) {
        seen[v] = true;
        ++count;
        frontier.push(v);
      }
    }
  }
  return count == buses_.size();
}

bool Network::is_radial() const {
  return is_connected() && lines_.size() + 1 == buses_.size();
}

void Network::validate() const {
  for (const Generator& g : generators_) {
    const Bus& b = buses_.at(g.bus);
    if (!g.phases.subset_of(b.phases)) {
      throw NetworkError("generator " + std::to_string(g.id) + " phases " +
                         g.phases.to_string() + " not a subset of bus " +
                         std::to_string(g.bus) + " phases " +
                         b.phases.to_string());
    }
    for (Phase p : g.phases.phases()) {
      if (g.p_min[p] > g.p_max[p] || g.q_min[p] > g.q_max[p]) {
        throw NetworkError("generator " + std::to_string(g.id) +
                           ": inverted bounds");
      }
    }
  }
  for (const Load& l : loads_) {
    const Bus& b = buses_.at(l.bus);
    if (!l.phases.subset_of(b.phases)) {
      throw NetworkError("load " + std::to_string(l.id) +
                         " phases not a subset of its bus phases");
    }
    if (l.connection == Connection::kDelta && l.phases != PhaseSet::abc()) {
      throw NetworkError(
          "load " + std::to_string(l.id) +
          ": delta loads must be three-phase (linearization (4f)-(4j) "
          "assumes a full delta)");
    }
    for (Phase p : l.phases.phases()) {
      if (l.alpha[p] < 0.0 || l.beta[p] < 0.0) {
        throw NetworkError("load " + std::to_string(l.id) +
                           ": negative ZIP exponent");
      }
    }
  }
  for (const Line& l : lines_) {
    const Bus& from = buses_.at(l.from_bus);
    const Bus& to = buses_.at(l.to_bus);
    if (!l.phases.subset_of(from.phases) || !l.phases.subset_of(to.phases)) {
      throw NetworkError("line " + std::to_string(l.id) +
                         " phases not a subset of its endpoint bus phases");
    }
    if (l.phases.empty()) {
      throw NetworkError("line " + std::to_string(l.id) + " carries no phase");
    }
    for (Phase p : l.phases.phases()) {
      if (l.tap_ratio[p] <= 0.0) {
        throw NetworkError("line " + std::to_string(l.id) +
                           ": non-positive tap ratio");
      }
      if (l.flow_limit[p] <= 0.0) {
        throw NetworkError("line " + std::to_string(l.id) +
                           ": non-positive flow limit");
      }
    }
  }
  for (const Bus& b : buses_) {
    for (Phase p : b.phases.phases()) {
      if (b.w_min[p] > b.w_max[p] || b.w_min[p] < 0.0) {
        throw NetworkError("bus " + std::to_string(b.id) +
                           ": bad voltage bounds");
      }
    }
  }
  if (generators_.empty()) {
    throw NetworkError("network has no generator (no substation modeled)");
  }
  if (!is_connected()) {
    throw NetworkError("network graph is not connected");
  }
}

std::string Network::summary() const {
  std::ostringstream os;
  std::size_t n_delta = 0;
  for (const Load& l : loads_) {
    if (l.connection == Connection::kDelta) ++n_delta;
  }
  std::size_t n_xfmr = 0;
  for (const Line& l : lines_) {
    if (l.is_transformer) ++n_xfmr;
  }
  os << "network: " << buses_.size() << " buses, " << lines_.size()
     << " lines (" << n_xfmr << " transformers), " << generators_.size()
     << " generators, " << loads_.size() << " loads (" << n_delta
     << " delta), " << leaf_buses().size() << " leaves, "
     << (is_radial() ? "radial" : "meshed");
  return os.str();
}

}  // namespace dopf::network
