#pragma once

#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "network/components.hpp"

namespace dopf::network {

/// Thrown when network construction or validation fails.
class NetworkError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Incidence of a line at a bus, with the orientation needed by the power
/// balance (3): `from_side` is true when the bus is the line's from-bus, in
/// which case the (eij) flow variables enter the balance; otherwise (eji).
struct LineIncidence {
  int line = -1;
  bool from_side = true;
};

/// A multi-phase distribution network: buses, generators, ZIP loads
/// (wye/delta), lines and transformers.
///
/// The class owns all component records and maintains adjacency. Components
/// are identified by dense integer ids assigned at insertion (the index into
/// the corresponding vector), which downstream modules use directly.
class Network {
 public:
  /// Adds a component; the id field is overwritten with the assigned id,
  /// which is returned. References (bus ids) must already exist.
  int add_bus(Bus bus);
  int add_generator(Generator gen);
  int add_load(Load load);
  int add_line(Line line);

  std::size_t num_buses() const noexcept { return buses_.size(); }
  std::size_t num_generators() const noexcept { return generators_.size(); }
  std::size_t num_loads() const noexcept { return loads_.size(); }
  std::size_t num_lines() const noexcept { return lines_.size(); }

  std::span<const Bus> buses() const noexcept { return buses_; }
  std::span<const Generator> generators() const noexcept {
    return generators_;
  }
  std::span<const Load> loads() const noexcept { return loads_; }
  std::span<const Line> lines() const noexcept { return lines_; }

  const Bus& bus(int id) const { return buses_.at(id); }
  const Generator& generator(int id) const { return generators_.at(id); }
  const Load& load(int id) const { return loads_.at(id); }
  const Line& line(int id) const { return lines_.at(id); }

  /// Mutable access for scenario edits (e.g. topology reconfiguration
  /// examples); callers must re-run validate() afterwards.
  Bus& bus_mutable(int id) { return buses_.at(id); }
  Line& line_mutable(int id) { return lines_.at(id); }
  Load& load_mutable(int id) { return loads_.at(id); }
  Generator& generator_mutable(int id) { return generators_.at(id); }

  std::span<const int> generators_at(int bus) const {
    return gens_at_.at(bus);
  }
  std::span<const int> loads_at(int bus) const { return loads_at_.at(bus); }
  std::span<const LineIncidence> lines_at(int bus) const {
    return lines_at_.at(bus);
  }

  std::size_t degree(int bus) const { return lines_at_.at(bus).size(); }

  /// Buses with exactly one incident line (the leaf nodes merged with their
  /// line in the paper's decomposition, Sec. V-A).
  std::vector<int> leaf_buses() const;

  /// True if the network graph is connected and acyclic (a radial feeder).
  bool is_radial() const;

  /// True if every bus is reachable from bus 0.
  bool is_connected() const;

  /// Structural validation: phase consistency (line/generator/load phases
  /// must be subsets of their buses' phases), delta loads must be
  /// three-phase (the linearization (4f)-(4j) is written for full delta),
  /// bounds ordered, at least one generator. Throws NetworkError.
  void validate() const;

  /// One-line description, e.g. "network: 13 buses, 12 lines, ...".
  std::string summary() const;

 private:
  void check_bus_exists(int bus, const char* what) const;

  std::vector<Bus> buses_;
  std::vector<Generator> generators_;
  std::vector<Load> loads_;
  std::vector<Line> lines_;

  std::vector<std::vector<int>> gens_at_;
  std::vector<std::vector<int>> loads_at_;
  std::vector<std::vector<LineIncidence>> lines_at_;
};

}  // namespace dopf::network
