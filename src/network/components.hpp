#pragma once

#include <string>

#include "linalg/vector_ops.hpp"
#include "network/phase.hpp"

namespace dopf::network {

using dopf::linalg::kInfinity;

/// A bus (node) of the feeder. Voltage magnitudes are modeled squared
/// (the `w` variables of the paper), so the bounds here are on |V|^2.
struct Bus {
  int id = -1;
  std::string name;
  PhaseSet phases = PhaseSet::abc();
  /// Bounds on squared voltage magnitude, per phase (eq. (2b)). Typical
  /// ANSI band 0.95^2 .. 1.05^2.
  PerPhase<double> w_min = PerPhase<double>::uniform(0.95 * 0.95);
  PerPhase<double> w_max = PerPhase<double>::uniform(1.05 * 1.05);
  /// Shunt conductance / susceptance (eq. (3)).
  PerPhase<double> g_shunt = PerPhase<double>::uniform(0.0);
  PerPhase<double> b_shunt = PerPhase<double>::uniform(0.0);
};

/// A (distributed) generator or the substation head. The paper's objective
/// (6a) minimizes total generated real power with unit cost; `cost` scales
/// this component's contribution.
struct Generator {
  int id = -1;
  std::string name;
  int bus = -1;
  PhaseSet phases = PhaseSet::abc();
  PerPhase<double> p_min = PerPhase<double>::uniform(0.0);
  PerPhase<double> p_max = PerPhase<double>::uniform(kInfinity);
  PerPhase<double> q_min = PerPhase<double>::uniform(-kInfinity);
  PerPhase<double> q_max = PerPhase<double>::uniform(kInfinity);
  double cost = 1.0;
};

/// Load connection type (Table I: wye loads Y_i, delta loads D_i).
enum class Connection { kWye, kDelta };

/// A ZIP-style voltage-dependent load (eq. (4)): alpha/beta = 0 constant
/// power, 1 constant current, 2 constant impedance, per the linearization
/// of [16]. `p_ref`/`q_ref` are the a_{l,phi}, b_{l,phi} reference values.
struct Load {
  int id = -1;
  std::string name;
  int bus = -1;
  PhaseSet phases = PhaseSet::abc();
  Connection connection = Connection::kWye;
  PerPhase<double> p_ref = PerPhase<double>::uniform(0.0);
  PerPhase<double> q_ref = PerPhase<double>::uniform(0.0);
  PerPhase<double> alpha = PerPhase<double>::uniform(0.0);
  PerPhase<double> beta = PerPhase<double>::uniform(0.0);
};

/// A branch or transformer connecting two buses. Modeled by the linearized
/// flow equations (5a)-(5c) with the 3x3 series impedance blocks r/x and the
/// voltage-magnitude coupling matrices M^p / M^q derived from them.
struct Line {
  int id = -1;
  std::string name;
  int from_bus = -1;
  int to_bus = -1;
  PhaseSet phases = PhaseSet::abc();
  /// Series resistance / reactance blocks (per unit).
  PhaseMatrix r;
  PhaseMatrix x;
  /// Shunt conductance / susceptance at the from (i) and to (j) ends
  /// (g^s_{eij,phi}, b^s_{eij,phi} in (5)).
  PerPhase<double> g_shunt_from = PerPhase<double>::uniform(0.0);
  PerPhase<double> b_shunt_from = PerPhase<double>::uniform(0.0);
  PerPhase<double> g_shunt_to = PerPhase<double>::uniform(0.0);
  PerPhase<double> b_shunt_to = PerPhase<double>::uniform(0.0);
  /// Tap ratio tau of (5c); 1.0 for plain branches.
  PerPhase<double> tap_ratio = PerPhase<double>::uniform(1.0);
  /// Symmetric per-phase flow limits: p,q in [-limit, +limit] (2c)-(2d);
  /// kInfinity disables the bound.
  PerPhase<double> flow_limit = PerPhase<double>::uniform(kInfinity);
  /// Transformers are lines with is_transformer=true; the component graph of
  /// Sec. V-A inserts an internal node for them.
  bool is_transformer = false;
};

}  // namespace dopf::network
