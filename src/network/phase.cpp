#include "network/phase.hpp"

#include <stdexcept>

namespace dopf::network {

PhaseSet PhaseSet::parse(const std::string& text) {
  if (text == "-") return PhaseSet::none();
  PhaseSet s;
  for (char c : text) {
    switch (c) {
      case 'a':
      case 'A':
        s = s.with(Phase::kA);
        break;
      case 'b':
      case 'B':
        s = s.with(Phase::kB);
        break;
      case 'c':
      case 'C':
        s = s.with(Phase::kC);
        break;
      default:
        throw std::invalid_argument("PhaseSet::parse: bad phase char '" +
                                    std::string(1, c) + "' in \"" + text +
                                    "\"");
    }
  }
  return s;
}

}  // namespace dopf::network
