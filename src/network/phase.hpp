#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace dopf::network {

/// One of the three phases of a distribution feeder. The paper indexes
/// phases 1..3; we use a/b/c = 0..2.
enum class Phase : std::uint8_t { kA = 0, kB = 1, kC = 2 };

inline constexpr std::array<Phase, 3> kAllPhases = {Phase::kA, Phase::kB,
                                                    Phase::kC};

constexpr std::size_t index(Phase p) { return static_cast<std::size_t>(p); }

/// Compact set of phases present on a component (the paper's P_c). Stored as
/// a 3-bit mask; value-semantic and trivially copyable.
class PhaseSet {
 public:
  constexpr PhaseSet() = default;

  static constexpr PhaseSet a() { return PhaseSet(0b001); }
  static constexpr PhaseSet b() { return PhaseSet(0b010); }
  static constexpr PhaseSet c() { return PhaseSet(0b100); }
  static constexpr PhaseSet ab() { return PhaseSet(0b011); }
  static constexpr PhaseSet ac() { return PhaseSet(0b101); }
  static constexpr PhaseSet bc() { return PhaseSet(0b110); }
  static constexpr PhaseSet abc() { return PhaseSet(0b111); }
  static constexpr PhaseSet none() { return PhaseSet(0b000); }

  static constexpr PhaseSet single(Phase p) {
    return PhaseSet(static_cast<std::uint8_t>(1u << index(p)));
  }

  constexpr bool has(Phase p) const {
    return (mask_ & (1u << index(p))) != 0;
  }
  constexpr std::size_t count() const {
    return static_cast<std::size_t>((mask_ & 1u) + ((mask_ >> 1) & 1u) +
                                    ((mask_ >> 2) & 1u));
  }
  constexpr bool empty() const { return mask_ == 0; }

  constexpr PhaseSet with(Phase p) const {
    return PhaseSet(static_cast<std::uint8_t>(mask_ | (1u << index(p))));
  }
  constexpr PhaseSet intersect(PhaseSet other) const {
    return PhaseSet(static_cast<std::uint8_t>(mask_ & other.mask_));
  }
  constexpr bool subset_of(PhaseSet other) const {
    return (mask_ & ~other.mask_) == 0;
  }

  constexpr std::uint8_t mask() const { return mask_; }
  constexpr bool operator==(const PhaseSet&) const = default;

  /// Iteration support: `for (Phase p : set.phases())`.
  class Range {
   public:
    class Iterator {
     public:
      Iterator(std::uint8_t mask, std::uint8_t pos) : mask_(mask), pos_(pos) {
        advance();
      }
      Phase operator*() const { return static_cast<Phase>(pos_); }
      Iterator& operator++() {
        ++pos_;
        advance();
        return *this;
      }
      bool operator!=(const Iterator& other) const {
        return pos_ != other.pos_;
      }

     private:
      void advance() {
        while (pos_ < 3 && (mask_ & (1u << pos_)) == 0) ++pos_;
      }
      std::uint8_t mask_;
      std::uint8_t pos_;
    };
    explicit Range(std::uint8_t mask) : mask_(mask) {}
    Iterator begin() const { return Iterator(mask_, 0); }
    Iterator end() const { return Iterator(mask_, 3); }

   private:
    std::uint8_t mask_;
  };
  Range phases() const { return Range(mask_); }

  std::string to_string() const {
    std::string s;
    if (has(Phase::kA)) s += 'a';
    if (has(Phase::kB)) s += 'b';
    if (has(Phase::kC)) s += 'c';
    return s.empty() ? "-" : s;
  }

  /// Parse "a", "bc", "abc", "-" (case-insensitive). Throws on other input.
  static PhaseSet parse(const std::string& text);

 private:
  explicit constexpr PhaseSet(std::uint8_t mask) : mask_(mask) {}
  std::uint8_t mask_ = 0;
};

/// Per-phase scalar container indexed by Phase.
template <typename T>
struct PerPhase {
  std::array<T, 3> values{};

  T& operator[](Phase p) { return values[index(p)]; }
  const T& operator[](Phase p) const { return values[index(p)]; }

  static PerPhase uniform(T v) { return PerPhase{{v, v, v}}; }
};

/// Dense 3x3 per-phase matrix (line impedance blocks, M^p / M^q of (5c)).
struct PhaseMatrix {
  std::array<std::array<double, 3>, 3> m{};

  double& operator()(Phase i, Phase j) { return m[index(i)][index(j)]; }
  double operator()(Phase i, Phase j) const { return m[index(i)][index(j)]; }
  double& operator()(std::size_t i, std::size_t j) { return m[i][j]; }
  double operator()(std::size_t i, std::size_t j) const { return m[i][j]; }

  static PhaseMatrix diagonal(double v) {
    PhaseMatrix pm;
    pm.m[0][0] = pm.m[1][1] = pm.m[2][2] = v;
    return pm;
  }
};

}  // namespace dopf::network
