#include "solver/reference.hpp"

#include <cmath>

#include "linalg/vector_ops.hpp"

namespace dopf::solver {

using dopf::linalg::is_unbounded;

LpProblem reference_problem(const dopf::opf::OpfModel& model,
                            const ReferenceOptions& options) {
  LpProblem p;
  p.a = model.constraint_matrix();
  p.b = model.rhs();
  p.c = model.c;
  p.lb = model.lb;
  p.ub = model.ub;
  const double big_m = options.big_m;
  for (std::size_t i = 0; i < p.c.size(); ++i) {
    if (is_unbounded(p.lb[i]) && !is_unbounded(-big_m)) p.lb[i] = -big_m;
    if (is_unbounded(p.ub[i]) && !is_unbounded(big_m)) p.ub[i] = big_m;
    if (p.ub[i] - p.lb[i] < options.min_box_width) {
      const double mid = 0.5 * (p.lb[i] + p.ub[i]);
      p.lb[i] = mid - 0.5 * options.min_box_width;
      p.ub[i] = mid + 0.5 * options.min_box_width;
    }
  }
  return p;
}

LpSolution reference_solve(const dopf::opf::OpfModel& model,
                           const ReferenceOptions& options) {
  return solve_lp(reference_problem(model, options), options.lp);
}

}  // namespace dopf::solver
