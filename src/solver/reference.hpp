#pragma once

#include "opf/model.hpp"
#include "solver/interior_point.hpp"

namespace dopf::solver {

struct ReferenceOptions {
  /// Artificial bound magnitude substituted for unbounded variables; set to
  /// linalg::kInfinity (the default) to pass free variables through to the
  /// interior-point method, which handles them via primal regularization.
  /// A finite value must exceed any flow the optimum needs (trunk flows
  /// reach the total feeder load).
  double big_m = 1e30;
  /// Fixed variables (lb == ub, e.g. the pinned substation voltage) are
  /// widened to this box width so the interior-point method has an interior.
  double min_box_width = 1e-7;
  LpOptions lp;
};

/// Solve the centralized OPF LP (7) with the interior-point method, after
/// replacing infinite bounds by +-big_m and widening zero-width boxes.
/// This provides the ground-truth objective/solution that both distributed
/// methods are validated against in tests and EXPERIMENTS.md.
LpSolution reference_solve(const dopf::opf::OpfModel& model,
                           const ReferenceOptions& options = {});

/// The LpProblem handed to solve_lp by reference_solve (exposed for tests).
LpProblem reference_problem(const dopf::opf::OpfModel& model,
                            const ReferenceOptions& options = {});

}  // namespace dopf::solver
