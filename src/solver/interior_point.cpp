#include "solver/interior_point.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "linalg/cholesky.hpp"
#include "linalg/vector_ops.hpp"
#include "sparse/ldlt.hpp"
#include "sparse/normal_equations.hpp"

namespace dopf::solver {

using dopf::linalg::is_unbounded;
using dopf::linalg::norm2;

const char* to_string(LpStatus status) {
  switch (status) {
    case LpStatus::kOptimal:
      return "optimal";
    case LpStatus::kMaxIterations:
      return "max-iterations";
    case LpStatus::kNumericalFailure:
      return "numerical-failure";
  }
  return "?";
}

namespace {

/// Per-variable bound bookkeeping: slacks and duals exist only for finite
/// bounds.
struct Bounds {
  std::vector<bool> has_lb, has_ub;
  std::size_t n_l = 0, n_u = 0;

  explicit Bounds(const LpProblem& p) {
    const std::size_t n = p.c.size();
    has_lb.resize(n);
    has_ub.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      has_lb[i] = !is_unbounded(p.lb[i]);
      has_ub[i] = !is_unbounded(p.ub[i]);
      n_l += has_lb[i];
      n_u += has_ub[i];
    }
  }
};

double step_to_boundary(std::span<const double> v, std::span<const double> dv) {
  double alpha = 1.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (dv[i] < 0.0) alpha = std::min(alpha, -v[i] / dv[i]);
  }
  return alpha;
}

}  // namespace

LpSolution solve_lp(const LpProblem& problem, const LpOptions& options) {
  const std::size_t n = problem.c.size();
  const std::size_t m = problem.b.size();
  if (problem.a.rows() != m || problem.a.cols() != n ||
      problem.lb.size() != n || problem.ub.size() != n) {
    throw std::invalid_argument("solve_lp: dimension mismatch");
  }
  const Bounds bounds(problem);
  const auto& A = problem.a;

  LpSolution sol;
  sol.x.assign(n, 0.0);
  sol.y.assign(m, 0.0);

  // Interior starting point: x strictly inside its box where bounded
  // (slacks consistent with x by construction), duals = 1. Zero-width boxes
  // are rejected — callers must widen fixed variables slightly (the OPF
  // reference wrapper does).
  std::vector<double> sl(n, 0.0), su(n, 0.0), zl(n, 0.0), zu(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    if (bounds.has_lb[i] && bounds.has_ub[i]) {
      const double range = problem.ub[i] - problem.lb[i];
      if (range <= 0.0) {
        throw std::invalid_argument(
            "solve_lp: zero-width bound box at variable " + std::to_string(i) +
            "; widen fixed variables before calling");
      }
      sl[i] = 0.5 * range;
      su[i] = 0.5 * range;
      sol.x[i] = problem.lb[i] + sl[i];
      zl[i] = zu[i] = 1.0;
    } else if (bounds.has_lb[i]) {
      sl[i] = 1.0;
      sol.x[i] = problem.lb[i] + 1.0;
      zl[i] = 1.0;
    } else if (bounds.has_ub[i]) {
      su[i] = 1.0;
      sol.x[i] = problem.ub[i] - 1.0;
      zu[i] = 1.0;
    } else {
      sol.x[i] = 0.0;
    }
  }

  dopf::sparse::NormalEquations normal(A);
  // Symbolic analysis happens once on the fixed pattern.
  std::vector<double> d(n, 1.0);
  dopf::sparse::SparseLdlt ldlt(normal.compute(A, d),
                                dopf::sparse::Ordering::kRcm);

  const double bnorm = 1.0 + norm2(problem.b);
  const double cnorm = 1.0 + norm2(problem.c);
  const std::size_t n_compl = std::max<std::size_t>(1, bounds.n_l + bounds.n_u);

  std::vector<double> rp(m), rd(n), theta(n), rhat(n), rhs(m);
  std::vector<double> dx(n), dy(m), dzl(n), dzu(n), dsl(n), dsu(n);
  std::vector<double> dx_a(n), dzl_a(n), dzu_a(n), dsl_a(n), dsu_a(n);

  auto compute_residuals = [&]() {
    // rp = b - A x
    A.multiply(sol.x, rp, -1.0, 0.0);
    for (std::size_t i = 0; i < m; ++i) rp[i] += problem.b[i];
    // rd = c - A'y - zl + zu
    A.multiply_transpose(sol.y, rd, -1.0, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      rd[j] += problem.c[j] - zl[j] + zu[j];
    }
  };

  auto mu_of = [&]() {
    double mu = 0.0;
    for (std::size_t j = 0; j < n; ++j) mu += sl[j] * zl[j] + su[j] * zu[j];
    return mu / static_cast<double>(n_compl);
  };

  // Solves the Newton system for given complementarity targets
  // (tl = target for Sl Zl e, tu for Su Zu e), writing dx/dy/dzl/dzu/dsl/dsu.
  auto newton_solve = [&](std::span<const double> tl,
                          std::span<const double> tu) {
    for (std::size_t j = 0; j < n; ++j) {
      double t = options.reg_primal;
      if (bounds.has_lb[j]) t += zl[j] / sl[j];
      if (bounds.has_ub[j]) t += zu[j] / su[j];
      theta[j] = t;
      d[j] = 1.0 / t;
      // rhat = rd - Sl^{-1} tl + Su^{-1} tu  (tl/tu already include signs)
      double r = rd[j];
      if (bounds.has_lb[j]) r -= tl[j] / sl[j];
      if (bounds.has_ub[j]) r += tu[j] / su[j];
      rhat[j] = r;
    }
    // (A D A' + reg) dy = rp + A D rhat
    for (std::size_t j = 0; j < n; ++j) dx[j] = d[j] * rhat[j];
    A.multiply(dx, rhs, 1.0, 0.0);
    for (std::size_t i = 0; i < m; ++i) rhs[i] += rp[i];
    // Factor with escalating regularization: the Theta spread between free
    // and nearly-active variables can push the normal equations to the edge
    // of positive definiteness late in the solve.
    normal.compute(A, d);
    double shift = options.reg_dual;
    for (int attempt = 0;; ++attempt) {
      try {
        ldlt.factorize(normal.matrix(), shift);
        break;
      } catch (const dopf::linalg::SingularMatrixError&) {
        if (attempt >= 6) throw;
        shift = std::max(shift * 100.0, 1e-12);
      }
    }
    dy = ldlt.solve(rhs);
    // dx = D (A' dy - rhat)
    A.multiply_transpose(dy, dx, 1.0, 0.0);
    for (std::size_t j = 0; j < n; ++j) dx[j] = d[j] * (dx[j] - rhat[j]);
    // dsl = dx, dsu = -dx ; dz from complementarity rows.
    for (std::size_t j = 0; j < n; ++j) {
      if (bounds.has_lb[j]) {
        dsl[j] = dx[j];
        dzl[j] = (tl[j] - zl[j] * dsl[j]) / sl[j];
      } else {
        dsl[j] = dzl[j] = 0.0;
      }
      if (bounds.has_ub[j]) {
        dsu[j] = -dx[j];
        dzu[j] = (tu[j] - zu[j] * dsu[j]) / su[j];
      } else {
        dsu[j] = dzu[j] = 0.0;
      }
    }
  };

  std::vector<double> tl(n, 0.0), tu(n, 0.0);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    sol.iterations = iter;
    compute_residuals();
    const double mu = mu_of();
    sol.primal_infeasibility = norm2(rp) / bnorm;
    sol.dual_infeasibility = norm2(rd) / cnorm;
    sol.objective = dopf::linalg::dot(problem.c, sol.x);
    const double dual_obj = [&] {
      double v = dopf::linalg::dot(problem.b, sol.y);
      for (std::size_t j = 0; j < n; ++j) {
        if (bounds.has_lb[j]) v += problem.lb[j] * zl[j];
        if (bounds.has_ub[j]) v -= problem.ub[j] * zu[j];
      }
      return v;
    }();
    sol.gap = std::abs(sol.objective - dual_obj) /
              (1.0 + std::abs(sol.objective));
    if (options.verbose) {
      std::printf("ipm %3d  obj %+.8e  pinf %.2e  dinf %.2e  gap %.2e\n",
                  iter, sol.objective, sol.primal_infeasibility,
                  sol.dual_infeasibility, sol.gap);
    }
    if (sol.primal_infeasibility < options.tolerance &&
        sol.dual_infeasibility < options.tolerance &&
        sol.gap < options.gap_tolerance) {
      sol.status = LpStatus::kOptimal;
      return sol;
    }

    try {
      // ---- Affine (predictor) direction: drive complementarity to zero.
      for (std::size_t j = 0; j < n; ++j) {
        tl[j] = bounds.has_lb[j] ? -sl[j] * zl[j] : 0.0;
        tu[j] = bounds.has_ub[j] ? -su[j] * zu[j] : 0.0;
      }
      newton_solve(tl, tu);
      dx_a = dx;
      dsl_a = dsl;
      dsu_a = dsu;
      dzl_a = dzl;
      dzu_a = dzu;

      double ap = std::min(step_to_boundary(sl, dsl_a),
                           step_to_boundary(su, dsu_a));
      double ad = std::min(step_to_boundary(zl, dzl_a),
                           step_to_boundary(zu, dzu_a));
      double mu_aff = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (bounds.has_lb[j]) {
          mu_aff += (sl[j] + ap * dsl_a[j]) * (zl[j] + ad * dzl_a[j]);
        }
        if (bounds.has_ub[j]) {
          mu_aff += (su[j] + ap * dsu_a[j]) * (zu[j] + ad * dzu_a[j]);
        }
      }
      mu_aff /= static_cast<double>(n_compl);
      const double sigma =
          mu > 0.0 ? std::pow(std::clamp(mu_aff / mu, 0.0, 1.0), 3) : 0.0;

      // ---- Corrector: recenter and cancel the second-order term.
      for (std::size_t j = 0; j < n; ++j) {
        tl[j] = bounds.has_lb[j]
                    ? sigma * mu - sl[j] * zl[j] - dsl_a[j] * dzl_a[j]
                    : 0.0;
        tu[j] = bounds.has_ub[j]
                    ? sigma * mu - su[j] * zu[j] - dsu_a[j] * dzu_a[j]
                    : 0.0;
      }
      newton_solve(tl, tu);
    } catch (const dopf::linalg::SingularMatrixError&) {
      sol.status = LpStatus::kNumericalFailure;
      return sol;
    }

    const double eta = 0.995;
    const double ap = eta * std::min(step_to_boundary(sl, dsl),
                                     step_to_boundary(su, dsu));
    const double ad = eta * std::min(step_to_boundary(zl, dzl),
                                     step_to_boundary(zu, dzu));

    for (std::size_t j = 0; j < n; ++j) {
      sol.x[j] += ap * dx[j];
      if (bounds.has_lb[j]) {
        sl[j] += ap * dsl[j];
        zl[j] += ad * dzl[j];
      }
      if (bounds.has_ub[j]) {
        su[j] += ap * dsu[j];
        zu[j] += ad * dzu[j];
      }
    }
    for (std::size_t i = 0; i < m; ++i) sol.y[i] += ad * dy[i];
  }
  sol.status = LpStatus::kMaxIterations;
  return sol;
}

}  // namespace dopf::solver
