#include "solver/box_qp.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/cholesky.hpp"
#include "linalg/vector_ops.hpp"

namespace dopf::solver {

using dopf::linalg::Cholesky;
using dopf::linalg::Matrix;
using dopf::linalg::norm_inf;

namespace {
const Matrix& check_dimensions(const Matrix& a, const std::vector<double>& b,
                               const std::vector<double>& lb,
                               const std::vector<double>& ub) {
  if (lb.size() != a.cols() || ub.size() != a.cols() ||
      b.size() != a.rows()) {
    throw std::invalid_argument("BoxQp: dimension mismatch");
  }
  return a;
}
}  // namespace

BoxQp::BoxQp(Matrix a, std::vector<double> b, std::vector<double> lb,
             std::vector<double> ub)
    : a_(std::move(a)),
      b_(std::move(b)),
      lb_(std::move(lb)),
      ub_(std::move(ub)),
      affine_(check_dimensions(a_, b_, lb_, ub_), b_) {}

void BoxQp::x_of_mu(std::span<const double> y, std::span<const double> mu,
                    std::span<double> x) const {
  // x(mu) = clip(y - A^T mu, lb, ub)
  const std::size_t n = a_.cols();
  for (std::size_t j = 0; j < n; ++j) x[j] = y[j];
  for (std::size_t i = 0; i < a_.rows(); ++i) {
    const double mi = mu[i];
    if (mi == 0.0) continue;
    const auto row = a_.row(i);
    for (std::size_t j = 0; j < n; ++j) x[j] -= row[j] * mi;
  }
  for (std::size_t j = 0; j < n; ++j) {
    x[j] = std::min(std::max(x[j], lb_[j]), ub_[j]);
  }
}

double BoxQp::dual_value(std::span<const double> y, std::span<const double> mu,
                         std::span<double> x_scratch) const {
  x_of_mu(y, mu, x_scratch);
  double val = 0.0;
  for (std::size_t j = 0; j < a_.cols(); ++j) {
    const double d = x_scratch[j] - y[j];
    val += 0.5 * d * d;
  }
  for (std::size_t i = 0; i < a_.rows(); ++i) {
    double axi = 0.0;
    const auto row = a_.row(i);
    for (std::size_t j = 0; j < row.size(); ++j) axi += row[j] * x_scratch[j];
    val += mu[i] * (axi - b_[i]);
  }
  return val;
}

BoxQp::Result BoxQp::project(std::span<const double> y, const Options& options,
                             std::vector<double>* mu_warm) const {
  const std::size_t m = a_.rows();
  const std::size_t n = a_.cols();
  if (y.size() != n) throw std::invalid_argument("BoxQp::project: bad y size");

  Result res;
  std::vector<double> mu =
      (mu_warm != nullptr && mu_warm->size() == m) ? *mu_warm
                                                   : std::vector<double>(m, 0.0);
  std::vector<double> x(n), grad(m), dmu(m), mu_trial(m), x_trial(n);

  for (int it = 0; it < options.max_newton; ++it) {
    res.newton_iterations = it + 1;
    x_of_mu(y, mu, x);
    // grad g(mu) = A x(mu) - b
    for (std::size_t i = 0; i < m; ++i) {
      double sum = -b_[i];
      const auto row = a_.row(i);
      for (std::size_t j = 0; j < n; ++j) sum += row[j] * x[j];
      grad[i] = sum;
    }
    res.residual = norm_inf(grad);
    if (res.residual <= options.tol) {
      res.converged = true;
      res.x = std::move(x);
      if (mu_warm != nullptr) *mu_warm = std::move(mu);
      return res;
    }

    // Generalized Hessian H = A D A^T with D = diag(strictly-inside mask),
    // regularized so the Newton system is always solvable.
    Matrix h(m, m);
    for (std::size_t j = 0; j < n; ++j) {
      if (x[j] <= lb_[j] || x[j] >= ub_[j]) continue;  // clipped: D_jj = 0
      for (std::size_t i = 0; i < m; ++i) {
        const double aij = a_(i, j);
        if (aij == 0.0) continue;
        for (std::size_t k = 0; k <= i; ++k) {
          h(i, k) += aij * a_(k, j);
        }
      }
    }
    const double reg =
        std::max(options.regularization, 1e-10 * (1.0 + res.residual));
    for (std::size_t i = 0; i < m; ++i) {
      h(i, i) += reg;
      for (std::size_t k = i + 1; k < m; ++k) h(i, k) = h(k, i);
    }
    // Maximizing the concave dual: mu+ = mu + H^{-1} grad.
    const Cholesky chol(h);
    dmu = chol.solve(grad);

    // Armijo backtracking on the dual value.
    const double g0 = dual_value(y, mu, x_trial);
    const double slope = dopf::linalg::dot(grad, dmu);
    double step = 1.0;
    bool accepted = false;
    for (int ls = 0; ls < 40; ++ls) {
      for (std::size_t i = 0; i < m; ++i) mu_trial[i] = mu[i] + step * dmu[i];
      if (dual_value(y, mu_trial, x_trial) >= g0 + 1e-4 * step * slope) {
        accepted = true;
        break;
      }
      step *= 0.5;
    }
    if (!accepted) break;  // stalled: hand over to Dykstra
    mu.swap(mu_trial);
  }

  // Fallback: Dykstra's alternating projections (always convergent).
  Result dres = dykstra(y, options);
  dres.newton_iterations = res.newton_iterations;
  if (mu_warm != nullptr) {
    std::fill(mu_warm->begin(), mu_warm->end(), 0.0);
  }
  return dres;
}

BoxQp::Result BoxQp::dykstra(std::span<const double> y,
                             const Options& options) const {
  const std::size_t n = a_.cols();
  Result res;
  std::vector<double> x(y.begin(), y.end());
  std::vector<double> p(n, 0.0), q(n, 0.0), box(n), tmp(n), prev(n);

  for (int it = 0; it < options.max_dykstra; ++it) {
    res.dykstra_iterations = it + 1;
    prev = x;
    // Box step with correction p.
    for (std::size_t j = 0; j < n; ++j) {
      const double v = x[j] + p[j];
      box[j] = std::min(std::max(v, lb_[j]), ub_[j]);
      p[j] = v - box[j];
    }
    // Affine step with correction q.
    for (std::size_t j = 0; j < n; ++j) tmp[j] = box[j] + q[j];
    affine_.project_into(tmp, x);
    for (std::size_t j = 0; j < n; ++j) q[j] = tmp[j] - x[j];

    double delta = 0.0;
    double box_violation = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      delta = std::max(delta, std::abs(x[j] - prev[j]));
      box_violation = std::max(box_violation,
                               std::max(lb_[j] - x[j], x[j] - ub_[j]));
    }
    if (delta <= options.tol * 0.1 && box_violation <= options.tol) {
      res.converged = true;
      break;
    }
  }
  // x satisfies A x = b exactly (last step was the affine projection);
  // report the box violation as the residual.
  double viol = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    viol = std::max(viol, std::max(lb_[j] - x[j], x[j] - ub_[j]));
  }
  res.residual = viol;
  res.x = std::move(x);
  return res;
}

}  // namespace dopf::solver
