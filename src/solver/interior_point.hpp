#pragma once

#include <span>
#include <string>
#include <vector>

#include "sparse/csr.hpp"

namespace dopf::solver {

/// Linear program in the form of (7):
///   min c'x   s.t.  A x = b,  lb <= x <= ub
/// (entries of lb/ub at +-linalg::kInfinity denote absent bounds).
struct LpProblem {
  dopf::sparse::CsrMatrix a;
  std::vector<double> b;
  std::vector<double> c;
  std::vector<double> lb;
  std::vector<double> ub;
};

enum class LpStatus { kOptimal, kMaxIterations, kNumericalFailure };

struct LpOptions {
  int max_iterations = 250;
  /// Relative primal/dual feasibility tolerance.
  double tolerance = 1e-7;
  /// Relative duality-gap tolerance; looser than `tolerance` because the
  /// primal-dual regularization puts the attainable gap plateau around
  /// 1e-6..1e-5 on large instances.
  double gap_tolerance = 1e-5;
  double reg_primal = 1e-9;      ///< Theta shift (also handles free vars)
  double reg_dual = 1e-9;        ///< normal-equations diagonal shift
  bool verbose = false;
};

struct LpSolution {
  LpStatus status = LpStatus::kNumericalFailure;
  std::vector<double> x;
  std::vector<double> y;  ///< equality multipliers
  double objective = 0.0;
  int iterations = 0;
  double primal_infeasibility = 0.0;  ///< ||Ax-b|| / (1+||b||)
  double dual_infeasibility = 0.0;
  double gap = 0.0;
};

/// Mehrotra predictor-corrector primal-dual interior-point method with
/// normal-equations linear algebra (sparse LDL^T, RCM-ordered; the pattern
/// is analyzed once and refactorized each iteration).
///
/// This is the repository's *reference* solver: it provides the centralized
/// optimum that the distributed ADMM methods are validated against. It is
/// not on any distributed hot path.
LpSolution solve_lp(const LpProblem& problem, const LpOptions& options = {});

const char* to_string(LpStatus status);

}  // namespace dopf::solver
