#pragma once

#include <span>
#include <vector>

#include "linalg/affine_projector.hpp"
#include "linalg/matrix.hpp"

namespace dopf::solver {

/// Exact solver for the benchmark ADMM's local subproblem (Sec. V-B):
///
///   min  1/2 ||x - y||^2   s.t.  A x = b,  lb <= x <= ub,
///
/// i.e. the Euclidean projection of y onto the polyhedron. (The paper's
/// local QP (14) with bound constraints reduces to this with
/// y = B_s x^(t+1) + lambda_s / rho.)
///
/// Substitution note (DESIGN.md): the paper's benchmark calls an
/// off-the-shelf QP solver here; this class is our from-scratch equivalent.
/// The primary method is a semismooth Newton iteration on the dual of the
/// equality constraints (x(mu) = clip(y - A' mu); solve A x(mu) = b), which
/// is exact and fast for the tiny per-component systems; a Dykstra
/// alternating-projection fallback guarantees convergence in degenerate
/// corner cases.
struct BoxQpOptions {
  double tol = 1e-9;        ///< infinity-norm tolerance on A x - b
  int max_newton = 60;      ///< semismooth Newton iteration cap
  int max_dykstra = 20000;  ///< fallback iteration cap
  double regularization = 1e-12;
};

class BoxQp {
 public:
  /// `a` must have full row rank (use linalg::row_reduce first).
  BoxQp(dopf::linalg::Matrix a, std::vector<double> b, std::vector<double> lb,
        std::vector<double> ub);

  using Options = BoxQpOptions;

  struct Result {
    std::vector<double> x;
    int newton_iterations = 0;
    int dykstra_iterations = 0;
    bool converged = false;
    double residual = 0.0;  ///< final ||A x - b||_inf
  };

  /// Project `y`; `mu_warm` (size m) warm-starts the dual iteration and is
  /// overwritten with the final multipliers when non-null.
  Result project(std::span<const double> y, const Options& options = BoxQpOptions(),
                 std::vector<double>* mu_warm = nullptr) const;

  std::size_t num_vars() const { return a_.cols(); }
  std::size_t num_constraints() const { return a_.rows(); }

 private:
  double dual_value(std::span<const double> y, std::span<const double> mu,
                    std::span<double> x_scratch) const;
  void x_of_mu(std::span<const double> y, std::span<const double> mu,
               std::span<double> x) const;
  Result dykstra(std::span<const double> y, const Options& options) const;

  dopf::linalg::Matrix a_;
  std::vector<double> b_;
  std::vector<double> lb_;
  std::vector<double> ub_;
  dopf::linalg::AffineProjector affine_;
};

}  // namespace dopf::solver
