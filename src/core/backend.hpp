#pragma once

#include <memory>
#include <span>

#include "core/packed_solvers.hpp"

namespace dopf::core {

/// The mutable per-iteration state Algorithm 1 runs over, as spans into
/// solver-owned storage. Backends read/write through these spans only.
struct PackedState {
  double rho = 0.0;
  std::span<double> x;             ///< global iterate (n)
  std::span<double> z;             ///< local solutions, concatenated
  std::span<const double> z_prev;  ///< previous local solutions
  std::span<double> lambda;        ///< duals, concatenated
  std::span<double> y;             ///< staging scratch (total_local)
  /// Optional per-component cumulative local-update seconds (size S, or
  /// empty to disable the timers). Adds per-component timer overhead.
  std::span<double> component_seconds;
};

/// The five partial sums behind the residual criterion (16).
struct ResidualSums {
  double pres2 = 0.0;  ///< ||Bx - z||^2
  double bx2 = 0.0;    ///< ||Bx||^2
  double z2 = 0.0;     ///< ||z||^2
  double dz2 = 0.0;    ///< ||z - z_prev||^2
  double l2 = 0.0;     ///< ||lambda||^2
};

/// Deterministic-reduction contract: every backend computes residual sums by
/// (1) accumulating each fixed-size chunk of kResidualChunk consecutive z
/// positions linearly, then (2) combining the chunk partials with the fixed
/// pairwise tree of combine_residual_chunks. Chunk layout depends only on
/// total_local, never on thread/block count, so residual histories are
/// byte-identical across backends and across any threaded configuration.
inline constexpr std::size_t kResidualChunk = 1024;

inline std::size_t residual_num_chunks(std::size_t total_local) {
  return (total_local + kResidualChunk - 1) / kResidualChunk;
}

/// Linear accumulation of chunk `chunk` ([chunk*kResidualChunk, ...)) of the
/// residual sums; the single shared definition of the per-entry expressions.
void residual_chunk(const PackedLocalSolvers& pack, const PackedState& state,
                    std::size_t chunk, ResidualSums* out);

/// Fixed pairwise-tree combination of chunk partials (destroys `partials`).
ResidualSums combine_residual_chunks(std::span<ResidualSums> partials);

/// One execution strategy for the per-iteration updates of Algorithm 1 over
/// the packed storage. Implementations:
///   - serial   (core, make_serial_backend): plain loops, kernel-shaped;
///   - threaded (runtime::make_threaded_backend): persistent thread pool,
///     static chunking;
///   - simt     (simt::SimtBackend): bit-exact host execution plus a
///     simulated-GPU cost ledger.
/// All three produce byte-identical iterates and residual histories; the
/// caller owns the state vectors and the update sequencing (including the
/// z/z_prev swap before local_update).
class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  virtual const char* name() const = 0;

  /// Global update (13)/(18): x = clip((rho B'z - c - B'lambda)/(rho deg)).
  virtual void global_update(const PackedLocalSolvers& pack,
                             PackedState& state) = 0;
  /// Local update (15): z = proj_{A_s x = b_s}(B_s x + lambda_s/rho).
  virtual void local_update(const PackedLocalSolvers& pack,
                            PackedState& state) = 0;
  /// Dual update (12): lambda += rho (B x - z).
  virtual void dual_update(const PackedLocalSolvers& pack,
                           PackedState& state) = 0;
  /// Residual partial sums of (16) under the deterministic-reduction
  /// contract above.
  virtual ResidualSums residual_sums(const PackedLocalSolvers& pack,
                                     const PackedState& state) = 0;
};

/// The serial reference backend (the paper's single-CPU path).
std::unique_ptr<ExecutionBackend> make_serial_backend();

}  // namespace dopf::core
