#pragma once

#include <atomic>
#include <chrono>

namespace dopf::core {

/// Cooperative cancellation with an optional absolute deadline.
///
/// A single token is shared between the requesting side (a SIGINT/SIGTERM
/// handler, a deadline, a controlling thread) and the solver loops, which
/// poll `cancelled()` at their termination-check cadence and at stream step
/// boundaries — so cancellation costs nothing on the per-iteration hot path
/// and always lands at a state boundary where a durable checkpoint is
/// well-defined.
///
/// `request()` is async-signal-safe: it performs two lock-free atomic
/// stores and the reason must be a string literal (or other static-storage
/// string), so a signal handler may call it directly.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Request cancellation. `reason` must point to static storage.
  void request(const char* reason = "cancel requested") noexcept {
    reason_.store(reason, std::memory_order_relaxed);
    flag_.store(true, std::memory_order_release);
  }

  /// Arm a deadline `seconds` from now (<= 0 cancels immediately on the
  /// next poll). Not async-signal-safe; call before handing the token to
  /// the solver.
  void set_deadline_after(double seconds) {
    deadline_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(seconds));
    has_deadline_.store(true, std::memory_order_release);
  }

  /// True once cancellation has been requested or the deadline has passed.
  bool cancelled() const {
    if (flag_.load(std::memory_order_acquire)) return true;
    return has_deadline_.load(std::memory_order_acquire) &&
           Clock::now() >= deadline_;
  }

  /// Human-readable reason; meaningful once cancelled() is true.
  const char* reason() const {
    if (const char* r = reason_.load(std::memory_order_relaxed)) return r;
    return "deadline exceeded";
  }

 private:
  using Clock = std::chrono::steady_clock;
  std::atomic<bool> flag_{false};
  std::atomic<const char*> reason_{nullptr};
  std::atomic<bool> has_deadline_{false};
  Clock::time_point deadline_{};
};

}  // namespace dopf::core
