#pragma once

#include <atomic>
#include <chrono>
#include <limits>

namespace dopf::core {

/// Cooperative cancellation with an optional absolute deadline.
///
/// A single token is shared between the requesting side (a SIGINT/SIGTERM
/// handler, a deadline, a controlling thread) and the solver loops, which
/// poll `cancelled()` at their termination-check cadence and at stream step
/// boundaries — so cancellation costs nothing on the per-iteration hot path
/// and always lands at a state boundary where a durable checkpoint is
/// well-defined.
///
/// `request()` is async-signal-safe: it performs two lock-free atomic
/// stores and the reason must be a string literal (or other static-storage
/// string), so a signal handler may call it directly.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Request cancellation. `reason` must point to static storage.
  void request(const char* reason = "cancel requested") noexcept {
    reason_.store(reason, std::memory_order_relaxed);
    flag_.store(true, std::memory_order_release);
  }

  /// Arm a deadline `seconds` from now (<= 0 cancels immediately on the
  /// next poll). Not async-signal-safe; call before handing the token to
  /// the solver.
  void set_deadline_after(double seconds) {
    deadline_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(seconds));
    has_deadline_.store(true, std::memory_order_release);
  }

  /// Link a parent token: this token reports cancelled whenever the parent
  /// does, in addition to its own flag/deadline. Used by the solve server,
  /// where every per-request token (deadline) is linked to the process-wide
  /// drain token (SIGTERM) so one solver poll observes both. Not
  /// async-signal-safe; call before handing the token to the solver. The
  /// parent must outlive this token.
  void link_parent(const CancelToken* parent) { parent_ = parent; }
  const CancelToken* parent() const { return parent_; }

  /// True once cancellation has been requested on this token or a linked
  /// parent, or once the deadline has passed.
  bool cancelled() const {
    if (flag_.load(std::memory_order_acquire)) return true;
    if (parent_ != nullptr && parent_->cancelled()) return true;
    return deadline_exceeded();
  }

  /// True once this token's own deadline has passed (parent and explicit
  /// requests are NOT consulted): lets a server worker distinguish a
  /// per-request deadline (typed kDeadline rejection) from a drain
  /// cancellation (checkpoint + kDrained).
  bool deadline_exceeded() const {
    return has_deadline_.load(std::memory_order_acquire) &&
           Clock::now() >= deadline_;
  }

  /// Seconds until this token's own deadline: +infinity when none is armed,
  /// negative once it has passed. The solve server uses this to rewrite a
  /// request's relative deadline_ms to the time REMAINING when the request
  /// is handed to a worker subprocess — queue wait stays charged against
  /// the deadline even though the worker arms a fresh token.
  double deadline_remaining_seconds() const {
    if (!has_deadline_.load(std::memory_order_acquire)) {
      return std::numeric_limits<double>::infinity();
    }
    return std::chrono::duration<double>(deadline_ - Clock::now()).count();
  }

  /// Human-readable reason; meaningful once cancelled() is true. An own
  /// request() wins, then a cancelled parent's reason, then the deadline.
  const char* reason() const {
    if (const char* r = reason_.load(std::memory_order_relaxed)) return r;
    if (parent_ != nullptr && parent_->cancelled()) return parent_->reason();
    return "deadline exceeded";
  }

 private:
  using Clock = std::chrono::steady_clock;
  std::atomic<bool> flag_{false};
  std::atomic<const char*> reason_{nullptr};
  std::atomic<bool> has_deadline_{false};
  Clock::time_point deadline_{};
  const CancelToken* parent_ = nullptr;
};

}  // namespace dopf::core
