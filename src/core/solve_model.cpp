#include "core/solve_model.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

namespace dopf::core {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv_bytes(std::uint64_t& h, const void* data, std::size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

template <typename T>
void fnv_vec(std::uint64_t& h, const std::vector<T>& v) {
  const std::uint64_t len = v.size();
  fnv_bytes(h, &len, sizeof(len));
  fnv_bytes(h, v.data(), v.size() * sizeof(T));
}

}  // namespace

SolveModel::SolveModel(const dopf::opf::DistributedProblem& problem,
                       dopf::linalg::ProjectorOptions options)
    : problem_(problem), options_(options) {
  // Retention is what makes this a model rather than a one-shot pack: the
  // factors must survive so scenario rebinds can reuse them.
  options_.keep_factorization = true;
  const auto start = std::chrono::steady_clock::now();
  solvers_ = LocalSolvers::precompute(problem_, options_);
  precompute_seconds_ = seconds_since(start);
}

SolveModel::SolveModel(const dopf::opf::DistributedProblem& problem,
                       dopf::linalg::ProjectorOptions options,
                       LocalSolvers solvers)
    : problem_(problem), options_(options), solvers_(std::move(solvers)) {
  options_.keep_factorization = true;
  if (solvers_.projectors.size() != problem_.components.size()) {
    throw std::invalid_argument(
        "SolveModel: solver count does not match component count");
  }
}

std::vector<double> SolveModel::rebind_rhs(std::size_t s,
                                           std::span<const double> b) {
  // The projector's bbar is scratch here: bindings copy the result into
  // their own packs, so a model shared by several bindings stays usable.
  dopf::linalg::AffineProjector& proj = solvers_.projectors[s];
  proj.rebind_rhs(b);
  return std::vector<double>(proj.bbar().begin(), proj.bbar().end());
}

void SolveModel::refresh_component(std::size_t s,
                                   const dopf::opf::Component& comp) {
  if (s >= num_components()) {
    throw std::invalid_argument("SolveModel::refresh_component: bad index");
  }
  if (comp.global != problem_.components[s].global) {
    throw std::invalid_argument(
        "SolveModel::refresh_component: component '" + comp.name +
        "' has a different variable set; that is a different model");
  }
  dopf::linalg::ProjectorStatus status;
  std::optional<dopf::linalg::AffineProjector> proj =
      dopf::linalg::AffineProjector::try_build(comp.a, comp.b, options_,
                                               &status);
  if (!proj) {
    throw dopf::opf::ConditioningError(comp.name, status.pivot_index,
                                       status.pivot_value);
  }
  solvers_.max_ridge = std::max(solvers_.max_ridge, status.ridge);
  solvers_.projectors[s] = std::move(*proj);
  problem_.components[s] = comp;
  ++refactorizations_;
}

std::uint64_t topology_fingerprint(const PackedLocalSolvers& pack) {
  std::uint64_t h = kFnvOffset;
  const std::uint64_t n = pack.num_global();
  fnv_bytes(h, &n, sizeof(n));
  fnv_vec(h, pack.comp_offset);
  fnv_vec(h, pack.abar_offset);
  fnv_vec(h, pack.comp_nvars);
  fnv_vec(h, pack.abar);
  fnv_vec(h, pack.global_idx);
  fnv_vec(h, pack.gather_ptr);
  fnv_vec(h, pack.gather_pos);
  return h;
}

std::uint64_t scenario_fingerprint(const PackedLocalSolvers& pack) {
  std::uint64_t h = kFnvOffset;
  fnv_vec(h, pack.bbar);
  fnv_vec(h, pack.c);
  fnv_vec(h, pack.lb);
  fnv_vec(h, pack.ub);
  fnv_vec(h, pack.x0);
  return h;
}

}  // namespace dopf::core
