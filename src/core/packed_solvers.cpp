#include "core/packed_solvers.hpp"

#include <algorithm>
#include <utility>

namespace dopf::core {

using dopf::opf::Component;
using dopf::opf::DistributedProblem;

LocalSolvers LocalSolvers::precompute(
    const DistributedProblem& problem,
    const dopf::linalg::ProjectorOptions& options) {
  LocalSolvers solvers;
  solvers.projectors.reserve(problem.components.size());
  for (const Component& comp : problem.components) {
    dopf::linalg::ProjectorStatus status;
    std::optional<dopf::linalg::AffineProjector> proj =
        dopf::linalg::AffineProjector::try_build(comp.a, comp.b, options,
                                                 &status);
    if (!proj) {
      throw dopf::opf::ConditioningError(comp.name, status.pivot_index,
                                         status.pivot_value);
    }
    solvers.max_ridge = std::max(solvers.max_ridge, status.ridge);
    solvers.projectors.push_back(std::move(*proj));
  }
  return solvers;
}

std::size_t PackedLocalSolvers::bytes() const {
  return sizeof(std::int64_t) * (comp_offset.size() + abar_offset.size() +
                                 gather_ptr.size() + gather_pos.size()) +
         sizeof(int) * (comp_nvars.size() + global_idx.size()) +
         sizeof(double) * (abar.size() + bbar.size() + c.size() + lb.size() +
                           ub.size() + x0.size());
}

PackedLocalSolvers PackedLocalSolvers::build(const DistributedProblem& problem,
                                             const LocalSolvers& solvers) {
  PackedLocalSolvers pack;
  const std::size_t S = problem.components.size();
  pack.comp_offset.reserve(S);
  pack.abar_offset.reserve(S);
  pack.comp_nvars.reserve(S);

  std::size_t abar_total = 0, local_total = 0;
  for (const Component& comp : problem.components) {
    local_total += comp.num_vars();
    abar_total += comp.num_vars() * comp.num_vars();
  }
  pack.abar.reserve(abar_total);
  pack.bbar.reserve(local_total);
  pack.global_idx.reserve(local_total);

  std::int64_t zoff = 0, aoff = 0;
  for (std::size_t s = 0; s < S; ++s) {
    const Component& comp = problem.components[s];
    const auto& proj = solvers.projectors[s];
    const std::size_t ns = comp.num_vars();
    pack.comp_offset.push_back(zoff);
    pack.abar_offset.push_back(aoff);
    pack.comp_nvars.push_back(static_cast<int>(ns));

    const auto& abar = proj.abar();
    pack.abar.insert(pack.abar.end(), abar.data().begin(), abar.data().end());
    pack.bbar.insert(pack.bbar.end(), proj.bbar().begin(), proj.bbar().end());
    pack.global_idx.insert(pack.global_idx.end(), comp.global.begin(),
                           comp.global.end());
    zoff += static_cast<std::int64_t>(ns);
    aoff += static_cast<std::int64_t>(ns * ns);
  }

  const std::size_t n = problem.num_vars;
  pack.c = problem.c;
  pack.lb = problem.lb;
  pack.ub = problem.ub;
  pack.x0 = problem.x0;
  // Gather lists: z positions per global variable, in ascending z order so
  // per-variable summation matches the component-order scatter bit-for-bit.
  pack.gather_ptr.assign(n + 1, 0);
  for (int g : pack.global_idx) ++pack.gather_ptr[g + 1];
  for (std::size_t i = 0; i < n; ++i) {
    pack.gather_ptr[i + 1] += pack.gather_ptr[i];
  }
  pack.gather_pos.resize(pack.global_idx.size());
  std::vector<std::int64_t> cursor(pack.gather_ptr.begin(),
                                   pack.gather_ptr.end() - 1);
  for (std::size_t pos = 0; pos < pack.global_idx.size(); ++pos) {
    pack.gather_pos[cursor[pack.global_idx[pos]]++] =
        static_cast<std::int64_t>(pos);
  }
  return pack;
}

}  // namespace dopf::core
