#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/affine_projector.hpp"
#include "opf/decompose.hpp"

namespace dopf::core {

/// Precomputed closed-form local solvers: the Abar_s / bbar_s pairs of
/// (15b)-(15c), one AffineProjector per component (lines 2-3 of
/// Algorithm 1). Reusable across solver instances and rho values; the
/// per-iteration machinery consumes the packed form below.
struct LocalSolvers {
  std::vector<dopf::linalg::AffineProjector> projectors;
  /// Largest Tikhonov ridge any projector needed (0 = all exact). Nonzero
  /// only when `options.auto_regularize` was set (preflight remediation).
  double max_ridge = 0.0;

  /// Build one projector per component. A component whose Gram matrix is
  /// not SPD (and that the `options` policy cannot regularize) raises
  /// opf::ConditioningError with component/row provenance instead of a
  /// bare SingularMatrixError from deep inside the factorization.
  static LocalSolvers precompute(
      const dopf::opf::DistributedProblem& problem,
      const dopf::linalg::ProjectorOptions& options = {});
};

/// Packed structure-of-arrays image of everything the per-iteration updates
/// touch — the flat device-array layout of the paper's Sec. IV-C/IV-D,
/// shared by every execution backend (serial / threaded / SIMT):
///
///   - all Abar_s matrices row-major in one contiguous pool, addressed by
///     per-component {abar_offset, comp_nvars} descriptors;
///   - all bbar_s concatenated (same {comp_offset, comp_nvars} layout as z);
///   - each B_s lowered to the flat gather array `global_idx`
///     (z position -> global variable), plus the transposed CSR
///     `gather_ptr`/`gather_pos` that turns the B' scatter of the global
///     update (18) into independent per-variable gathers;
///   - the global objective/bounds (c, lb, ub).
///
/// Gather lists store z positions in ascending order, so per-variable sums
/// accumulate in exactly the order the component-by-component scatter would
/// produce — this is what keeps all backends bit-identical.
struct PackedLocalSolvers {
  // Per component s:
  std::vector<std::int64_t> comp_offset;  ///< start of x_s within z
  std::vector<std::int64_t> abar_offset;  ///< start of Abar_s (row-major)
  std::vector<int> comp_nvars;            ///< n_s
  // Concatenated payloads:
  std::vector<double> abar;     ///< all Abar_s, row-major per component
  std::vector<double> bbar;     ///< all bbar_s
  std::vector<int> global_idx;  ///< z position -> global variable (B_s)
  // Per global variable i (CSR over z positions holding copies of i):
  std::vector<std::int64_t> gather_ptr;
  std::vector<std::int64_t> gather_pos;
  std::vector<double> c, lb, ub;
  std::vector<double> x0;  ///< global initial iterate (scenario data)

  std::size_t num_components() const { return comp_nvars.size(); }
  std::size_t num_global() const { return c.size(); }
  std::size_t total_local() const { return global_idx.size(); }
  /// Packed footprint in bytes (diagnostics; the SIMT upload charge).
  std::size_t bytes() const;

  /// Pack the precomputed projectors once; the projector objects are not
  /// needed afterwards.
  static PackedLocalSolvers build(const dopf::opf::DistributedProblem& problem,
                                  const LocalSolvers& solvers);
};

}  // namespace dopf::core
