#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/solve_model.hpp"

namespace dopf::core {

/// What one rebind() did, per component: how many components were left
/// untouched, how many needed only a right-hand-side re-derivation through
/// the cached factorization, and how many were genuinely refactorized.
struct RebindStats {
  int unchanged = 0;
  int rhs_rebinds = 0;
  int refactorizations = 0;
  bool objective_changed = false;
  bool bounds_changed = false;
  bool initial_point_changed = false;

  bool any_change() const {
    return rhs_rebinds > 0 || refactorizations > 0 || objective_changed ||
           bounds_changed || initial_point_changed;
  }
};

/// Layer 2 of the session architecture: the per-scenario half of a solve.
/// A ScenarioBinding owns the packed SoA pool (the image every execution
/// backend iterates over) and rebinds its scenario slices — bbar, c,
/// lb/ub, x0 — in place against an unchanging SolveModel.
///
/// Dirty tracking is per component: rebind() diffs a re-decomposed
/// scenario problem against the currently bound data and
///   - leaves untouched components alone,
///   - routes b_s-only changes through SolveModel::rebind_rhs (zero
///     refactorizations, bbar bit-identical to a cold build),
///   - routes A_s changes through SolveModel::refresh_component (exactly
///     that component refactorized).
/// A scenario whose component variable sets differ from the model's is
/// rejected with std::invalid_argument — that is a different model, not a
/// scenario.
class ScenarioBinding {
 public:
  /// Bind the model's base scenario. `model` must outlive the binding.
  explicit ScenarioBinding(SolveModel& model);

  SolveModel& model() { return *model_; }
  const SolveModel& model() const { return *model_; }

  /// The packed image backends iterate over. Invalidated slices are
  /// updated in place by the setters below; the reference stays stable.
  const PackedLocalSolvers& pack() const { return pack_; }

  /// Wall seconds spent packing the base scenario (the non-factorization
  /// part of the legacy precompute).
  double bind_seconds() const { return bind_seconds_; }

  /// Rebind component s to a new right-hand side b_s through the cached
  /// factorization (no refactorization).
  void set_rhs(std::size_t s, std::span<const double> b);
  /// Re-derive component s from an edited topology block (exactly one
  /// refactorization); repacks that component's Abar/bbar slices.
  void refresh_component(std::size_t s, const dopf::opf::Component& comp);
  void set_objective(std::span<const double> c);
  void set_bounds(std::span<const double> lb, std::span<const double> ub);
  void set_initial_point(std::span<const double> x0);

  /// Diff `scenario` (a re-decomposition of the same network under edited
  /// loads/costs/bounds) against the bound data and apply the minimal
  /// update per the dirty-tracking rules above.
  RebindStats rebind(const dopf::opf::DistributedProblem& scenario);

  /// Totals accumulated across every rebind since construction.
  const RebindStats& lifetime() const { return lifetime_; }

  std::uint64_t model_fingerprint() const {
    return topology_fingerprint(pack_);
  }
  std::uint64_t scenario_fingerprint() const {
    return dopf::core::scenario_fingerprint(pack_);
  }

 private:
  std::span<double> bbar_slice(std::size_t s);
  std::span<double> abar_slice(std::size_t s);

  SolveModel* model_;
  PackedLocalSolvers pack_;
  /// Currently bound right-hand sides, per component (diff baseline: the
  /// model's base b_s is not updated by rhs-only rebinds).
  std::vector<std::vector<double>> bound_b_;
  RebindStats lifetime_;
  double bind_seconds_ = 0.0;
};

}  // namespace dopf::core
