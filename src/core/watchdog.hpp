#pragma once

#include <limits>

#include "core/admm.hpp"

namespace dopf::core {

/// Stall/oscillation monitor over the residual-check stream of an ADMM run.
///
/// The scalar progress measure is the merit
///   merit(rec) = max(pres / eps_primal, dres / eps_dual),
/// which is <= 1 exactly when the termination criterion (16) holds, so
/// "making progress" and "approaching convergence" coincide. The watchdog
/// watches for a relative merit improvement of at least `min_improvement`
/// within every `window` ITERATIONS (not checks — ADMM merit plateaus
/// legitimately span hundreds of iterations on converging runs, and the
/// verdict must not depend on check_every); when none lands, it reports a
/// stall and asks the solver to escalate:
///
///   stall #1             -> kNudgeRho (forced residual balancing)
///   stalls #2..restarts+1 -> kRestartFromBest (solver reloads its best
///                            iterate; see Decision::new_best)
///   afterwards           -> kStop (solver reports AdmmStatus::kStalled)
///
/// Oscillation (the merit bouncing up and down instead of creeping) is
/// classified by counting sign flips of the merit delta within the stalled
/// window and flagged in the summary. Purely deterministic: the same
/// residual stream always produces the same decisions.
class ConvergenceWatchdog {
 public:
  enum class Action {
    kNone,             ///< keep iterating
    kNudgeRho,         ///< apply the residual-balancing rho rule now
    kRestartFromBest,  ///< reload the best-merit iterate snapshot
    kStop,             ///< give up cleanly: report kStalled
  };

  struct Decision {
    Action action = Action::kNone;
    /// This check produced the best merit so far — snapshot the iterate.
    bool new_best = false;
  };

  ConvergenceWatchdog(int window, double min_improvement, int max_restarts);

  /// max(pres/eps_p, dres/eps_d); +inf when a tolerance is still zero
  /// (guards the first checks where lambda == 0 makes eps_dual zero).
  static double merit(const IterationRecord& rec);

  /// Feed one residual check; returns what the solver should do.
  Decision observe(const IterationRecord& rec);

  const WatchdogSummary& summary() const { return summary_; }
  double best_merit() const { return best_merit_; }

 private:
  int window_;
  double min_improvement_;
  int max_restarts_;

  double best_merit_;
  double improvement_base_;  ///< merit the next improvement is measured from
  double last_merit_;
  double last_delta_ = 0.0;
  int last_progress_iteration_ = std::numeric_limits<int>::min();
  int stalled_checks_ = 0;
  int sign_flips_ = 0;
  int escalation_ = 0;  ///< 0 = none yet, 1 = nudged, 2.. = restarts
  WatchdogSummary summary_;
};

}  // namespace dopf::core
