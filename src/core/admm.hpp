#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <random>
#include <vector>

#include "core/backend.hpp"
#include "core/cancel.hpp"
#include "core/packed_solvers.hpp"
#include "opf/decompose.hpp"

namespace dopf::core {

class SolveModel;
class ScenarioBinding;

/// Options shared by the solver-free ADMM and the benchmark ADMM.
/// The extension fields (adaptive_rho, relaxation, quantize_bits) are
/// honoured by core::SolverFreeAdmm only; the benchmark ADMM reproduces the
/// paper's comparison configuration and ignores them.
struct AdmmOptions {
  double rho = 100.0;     ///< penalty parameter (paper default)
  double eps_rel = 1e-3;  ///< relative tolerance in (16) (paper default)
  int max_iterations = 200000;
  /// Wall-clock budget in seconds; <= 0 disables. Checked at the same
  /// cadence as the termination criterion.
  double time_limit_seconds = 0.0;
  /// Evaluate the termination criterion every k iterations (1 = paper).
  int check_every = 1;
  /// Record an IterationRecord every k checks (for residual plots).
  int record_every = 1;

  /// Residual balancing [29] (extension; off reproduces the paper).
  bool adaptive_rho = false;
  double adaptive_ratio = 10.0;  ///< trigger when residuals differ by this
  double adaptive_factor = 2.0;  ///< multiply/divide rho by this
  int adaptive_every = 100;      ///< check cadence
  int adaptive_until = 10000;    ///< freeze rho afterwards (keeps theory)

  /// Over-relaxation factor alpha (standard ADMM acceleration; 1.0
  /// reproduces the paper, 1.5-1.8 typically reduces iterations). The
  /// local/dual updates see alpha*B_s x + (1-alpha)*x_s^(t) instead of
  /// B_s x. Note: the paper's ref [30] (multiple local updates) targets
  /// *inexact* local solvers and is a no-op for closed-form local steps,
  /// so this is the acceleration we expose instead.
  double relaxation = 1.0;

  /// Communication compression (the future-work direction of the paper's
  /// ref [37]): quantize every operator<->agent message to this many bits
  /// per entry with per-component uniform quantization. 0 disables
  /// (lossless, reproduces the paper). Inexact-ADMM territory: expect more
  /// iterations in exchange for an 8x-64/bits reduction in traffic.
  int quantize_bits = 0;

  /// Asynchronous (partial-participation) mode: each iteration, every
  /// component performs its local/dual update only with this probability;
  /// the others keep their stale iterates — the straggler/lossy-agent
  /// setting of the paper's non-ideal-communication references [12], [14].
  /// 1.0 reproduces the synchronous paper algorithm. Applies to
  /// SolverFreeAdmm only.
  double async_fraction = 1.0;
  /// Seed for the async participation draws (runs stay reproducible).
  std::uint64_t async_seed = 1;

  /// Accumulate per-component local-update wall time (adds timer overhead;
  /// enable only for the runtime/cluster measurement benches).
  bool record_component_times = false;

  /// Convergence watchdog (extension; off reproduces the paper): monitor
  /// the residual merit max(pres/eps_primal, dres/eps_dual) at every
  /// termination check, remember the best iterate seen, and when no
  /// relative merit improvement of at least `watchdog_min_improvement`
  /// lands within `watchdog_window` iterations, escalate through
  /// safeguarded actions: a residual-balancing rho nudge (the adaptive_rho
  /// rule, forced), then restart-from-best-iterate (up to
  /// `watchdog_max_restarts` times), then a clean kStalled stop. The
  /// window is counted in iterations, not checks, so the verdict does not
  /// depend on check_every; the default rides out the multi-hundred-
  /// iteration merit plateaus healthy ADMM runs exhibit.
  bool watchdog = false;
  int watchdog_window = 1000;  ///< stall window, counted in iterations
  double watchdog_min_improvement = 1e-3;  ///< relative merit improvement
  int watchdog_max_restarts = 2;  ///< restart-from-best budget before kStalled

  /// Cooperative cancellation/deadline token (not owned; must outlive the
  /// solve). Polled at the termination-check cadence, so a request lands
  /// within `check_every` iterations at zero hot-path cost. nullptr
  /// disables. A cancelled solve stops cleanly with AdmmStatus::kCancelled
  /// and a valid (restorable) iterate.
  const CancelToken* cancel = nullptr;

  /// Local-solver factorization policy (the preflight remediation knob,
  /// robust::Preflight): default builds exact projectors and raises
  /// opf::ConditioningError on a non-SPD Gram matrix; with
  /// `projector.auto_regularize` set, a reported Tikhonov ridge is applied
  /// instead. Precompute-only — does not affect the per-iteration kernels.
  dopf::linalg::ProjectorOptions projector;
};

/// One sampled point of the residual trajectories (Fig. 2).
struct IterationRecord {
  int iteration = 0;
  double primal_residual = 0.0;
  double dual_residual = 0.0;
  double eps_primal = 0.0;
  double eps_dual = 0.0;
  double rho = 0.0;
};

/// Wall-clock breakdown per update kind (Fig. 3): seconds spent in total,
/// and the number of iterations over which they accumulated.
struct TimingBreakdown {
  double precompute = 0.0;
  double global_update = 0.0;
  double local_update = 0.0;
  double dual_update = 0.0;
  double residuals = 0.0;
  /// Simulated seconds spent recovering from injected faults (checkpoint
  /// redistribution + problem re-upload on device failover). Zero on
  /// fault-free runs; populated by simt::MultiGpuSolverFreeAdmm.
  double recovery = 0.0;
  /// Simulated seconds spent on graceful degradation (exhausted retry
  /// budgets on stale iterations, quarantine/readmission re-partitioning).
  /// Zero unless a DegradePolicy is enabled and trips.
  double degrade = 0.0;
  int iterations = 0;
  /// Iterations where at least one device's contribution was stale or
  /// quarantined (degraded-mode consensus); 0 on healthy runs.
  int degraded_iterations = 0;
  /// How many times this solve reused an existing precompute instead of
  /// paying it: bumped when solve() runs again on the same solver (the
  /// precompute field is zeroed then, fixing the old double-count) and for
  /// every warm session solve that needed no factorization work.
  int precompute_reuse_count = 0;
  /// Single-component projector re-derivations performed for this solve
  /// (topology edits routed through ScenarioBinding); 0 for load-only
  /// rebinds and single-shot runs.
  int refactorizations = 0;

  /// Per-iteration update time only: the one-time `precompute` (local-solver
  /// factorization + packing) is deliberately EXCLUDED, because the paper's
  /// per-iteration figures (Fig. 3/4) amortize it away. Use
  /// total_with_precompute() for end-to-end wall time.
  double total() const {
    return global_update + local_update + dual_update + residuals + recovery +
           degrade;
  }

  /// End-to-end: precompute plus every per-iteration phase.
  double total_with_precompute() const { return precompute + total(); }
};

/// Why the iteration stopped.
enum class AdmmStatus {
  kConverged,       ///< (16) satisfied
  kIterationLimit,  ///< max_iterations reached
  kTimeLimit,       ///< time_limit_seconds exceeded
  kDiverged,        ///< non-finite residuals (model inconsistent or rho bad)
  kStalled,         ///< watchdog: no residual progress, safeguards exhausted
  kCancelled,       ///< cooperative cancellation (signal, deadline, caller)
};

const char* to_string(AdmmStatus status);

/// What the convergence watchdog did during a solve (all zero when off).
struct WatchdogSummary {
  int stalls = 0;      ///< stall windows detected
  int rho_nudges = 0;  ///< forced residual-balancing rho adjustments
  int restarts = 0;    ///< restart-from-best-iterate actions
  bool oscillation_detected = false;  ///< merit bounced rather than crept
};

struct AdmmResult {
  std::vector<double> x;  ///< global solution (clipped to bounds)
  AdmmStatus status = AdmmStatus::kIterationLimit;
  bool converged = false;
  /// True when this solve started from retained session state rather than
  /// the paper's initial point (set by core::SolveSession).
  bool warm_started = false;
  int iterations = 0;
  double objective = 0.0;
  double primal_residual = 0.0;
  double dual_residual = 0.0;
  double final_rho = 0.0;
  std::vector<IterationRecord> history;
  TimingBreakdown timing;
  WatchdogSummary watchdog;  ///< populated when options.watchdog is on
  /// Per-component cumulative local-update seconds (empty unless
  /// record_component_times).
  std::vector<double> component_seconds;
};

/// The paper's contribution (Algorithm 1): solver-free consensus ADMM for
/// the component-wise distributed model (9).
///
/// Per iteration:
///   global update (13)/(18): x = clip((rho*B'z - c - B'lambda) / (rho*deg))
///   local update  (15):      x_s = proj_{A_s x = b_s}(B_s x + lambda_s/rho)
///   dual update   (12):      lambda_s += rho*(B_s x - x_s)
/// with termination by the relative primal/dual residuals (16).
///
/// Execution is delegated to an ExecutionBackend over the packed SoA
/// storage (serial by default; inject runtime::make_threaded_backend or a
/// simt::SimtBackend via set_backend). All backends produce byte-identical
/// iterates. The extension options (relaxation != 1, quantize_bits,
/// async_fraction < 1) run on a built-in serial path regardless of the
/// selected backend; the plain paper configuration always uses the backend.
///
/// The class also exposes the individual updates so the SIMT-simulated GPU
/// solvers and the virtual-cluster harness can drive one step at a time.
class SolverFreeAdmm {
 public:
  /// Single-shot entry points: thin wrappers that build an owned
  /// SolveModel + ScenarioBinding internally (model+bind+solve in one
  /// call) — byte-identical to the historical fused precompute.
  /// Precomputes the local solvers unless a precomputed set is supplied.
  SolverFreeAdmm(const dopf::opf::DistributedProblem& problem,
                 AdmmOptions options);
  SolverFreeAdmm(const dopf::opf::DistributedProblem& problem,
                 AdmmOptions options, LocalSolvers solvers);
  /// Session entry point: iterate over an externally owned binding's pack
  /// (zero precompute here; the model already paid it). `binding` must
  /// outlive the solver; its in-place scenario rebinds are picked up by
  /// the next solve automatically.
  SolverFreeAdmm(ScenarioBinding& binding, AdmmOptions options);
  ~SolverFreeAdmm();

  /// Replace the execution backend (nullptr restores the serial backend).
  /// The iterate state is untouched, so backends may even be swapped
  /// mid-solve without perturbing the trajectory.
  void set_backend(std::unique_ptr<ExecutionBackend> backend);
  ExecutionBackend& backend() { return *backend_; }
  const ExecutionBackend& backend() const { return *backend_; }

  /// Run Algorithm 1 to termination.
  AdmmResult solve();

  // --- Step-level API (state machine: call in global->local->dual order).
  void global_update();
  void local_update();
  void dual_update();
  /// Residuals of (16) for the current iterate.
  IterationRecord compute_residuals(int iteration);
  bool termination_satisfied(const IterationRecord& rec) const;

  std::span<const double> x() const { return x_; }
  /// Concatenated local solutions z = [x_1; ...; x_S] of (17).
  std::span<const double> z() const { return z_; }
  /// Previous local solutions (needed to restart the dual residual).
  std::span<const double> z_prev() const { return z_prev_; }
  std::span<const double> lambda() const { return lambda_; }
  double rho() const { return rho_; }
  /// The packed per-iteration problem image shared by every backend.
  const PackedLocalSolvers& packed() const { return *pack_; }
  /// Start offset of component s within z / lambda.
  std::size_t offset(std::size_t s) const {
    return static_cast<std::size_t>(pack_->comp_offset[s]);
  }

  /// Reset iterates to the paper's initial point (Sec. V-A).
  void reset();

  /// Warm-start from a previous solution of a problem with the same
  /// variable layout (e.g. after a load or price change on an unchanged
  /// topology): x seeds the global iterate, z_s = B_s x, and `lambda`
  /// (concatenated, size = total local dimension) seeds the duals — pass an
  /// empty span to zero them. Cuts re-solve iterations substantially for
  /// small perturbations; see examples/dynamic_topology.
  void warm_start(std::span<const double> x,
                  std::span<const double> lambda = {});

  /// Restore the complete iterate state captured after iteration
  /// `iteration` (checkpoint restart): a subsequent solve() continues at
  /// iteration+1 and — because every update is deterministic — reproduces
  /// the uninterrupted run bit-for-bit from that point. Defined for the
  /// plain paper configuration; the extension paths carry RNG state that a
  /// checkpoint does not capture.
  void restore_state(int iteration, double rho, std::span<const double> x,
                     std::span<const double> z,
                     std::span<const double> z_prev,
                     std::span<const double> lambda);
  /// Iteration the next solve() resumes after (0 = fresh run).
  int start_iteration() const { return start_iteration_; }

  /// Invoke `hook` every `every` iterations inside solve() with the solver's
  /// current state (periodic checkpointing; see runtime/checkpoint.hpp).
  /// every <= 0 or an empty hook disables.
  using CheckpointHook = std::function<void(const SolverFreeAdmm&, int)>;
  void set_checkpoint_hook(int every, CheckpointHook hook);

  const dopf::opf::DistributedProblem& problem() const { return *problem_; }
  const AdmmOptions& options() const { return options_; }

  /// Objective c'x of the current global iterate.
  double objective() const;

  std::span<const double> component_seconds() const {
    return component_seconds_;
  }
  TimingBreakdown& timing() { return timing_; }

 private:
  void init_storage();
  PackedState packed_state();
  /// True when the configured options follow the plain paper algorithm for
  /// the local/dual updates (no relaxation / quantization / async), i.e.
  /// when those updates can be delegated to the backend.
  bool plain_path() const;
  void local_update_extension();
  void dual_update_extension();

  const dopf::opf::DistributedProblem* problem_ = nullptr;
  AdmmOptions options_;
  // Owned only on the single-shot wrapper paths; the session path borrows
  // an external binding. Either way the iteration loop sees one pack.
  std::unique_ptr<SolveModel> owned_model_;
  std::unique_ptr<ScenarioBinding> owned_binding_;
  const PackedLocalSolvers* pack_ = nullptr;
  std::unique_ptr<ExecutionBackend> backend_;
  double rho_;
  int solves_run_ = 0;
  int start_iteration_ = 0;
  int checkpoint_every_ = 0;
  CheckpointHook checkpoint_hook_;

  std::size_t total_local_ = 0;  // sum n_s

  std::vector<double> x_;       // global iterate (n)
  std::vector<double> z_;       // local solutions, concatenated
  std::vector<double> z_prev_;  // previous local solutions (for dres)
  std::vector<double> lambda_;  // duals, concatenated
  std::vector<double> y_scratch_;

  std::vector<double> component_seconds_;
  TimingBreakdown timing_;

  // Asynchronous-mode state: which components participate this iteration.
  std::vector<char> active_;
  std::mt19937_64 async_rng_;
};

}  // namespace dopf::core
