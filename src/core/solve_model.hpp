#pragma once

#include <cstdint>
#include <span>

#include "core/packed_solvers.hpp"
#include "opf/decompose.hpp"

namespace dopf::core {

/// Layer 1 of the session architecture: the immutable-topology half of a
/// solve. A SolveModel owns the decomposed problem and the per-component
/// projector factorizations — the O(m^2 n + m^3) "Precomputation" step of
/// Algorithm 1 that is identical across load-only scenario variations.
/// Scenario data (b_s, c, bounds, x0) lives one layer up in
/// ScenarioBinding, which rebinds against this model without repaying the
/// factorization.
///
/// The projectors are built with keep_factorization so rebind_rhs() can
/// re-derive bbar_s for a new b_s through the retained Cholesky factor —
/// bit-identical to a cold build, at triangular-solve cost. A genuine
/// topology edit (A_s changed) goes through refresh_component(), which
/// refactorizes exactly that component and nothing else.
class SolveModel {
 public:
  /// Factorize every component of `problem` (one full precompute).
  /// Throws opf::ConditioningError with component provenance when a Gram
  /// matrix is not SPD under `options`.
  explicit SolveModel(const dopf::opf::DistributedProblem& problem,
                      dopf::linalg::ProjectorOptions options = {});

  /// Adopt already-precomputed solvers (legacy injection path). Projectors
  /// built without keep_factorization cannot rebind_rhs; rebinds against
  /// such a model fall back to full component refreshes.
  SolveModel(const dopf::opf::DistributedProblem& problem,
             dopf::linalg::ProjectorOptions options, LocalSolvers solvers);

  /// The base problem this model was built from (owned copy; topology rows
  /// track refresh_component edits).
  const dopf::opf::DistributedProblem& problem() const { return problem_; }

  std::size_t num_components() const { return solvers_.projectors.size(); }
  std::size_t num_vars() const { return problem_.num_vars; }

  /// Wall seconds spent in the initial factorization pass (0 for adopted
  /// solvers).
  double precompute_seconds() const { return precompute_seconds_; }
  /// Largest Tikhonov ridge any projector needed (0 = all exact).
  double max_ridge() const { return solvers_.max_ridge; }
  /// Lifetime count of single-component refactorizations performed via
  /// refresh_component (the initial full precompute is not counted).
  int refactorizations() const { return refactorizations_; }

  const dopf::linalg::AffineProjector& projector(std::size_t s) const {
    return solvers_.projectors[s];
  }
  bool can_rebind_rhs(std::size_t s) const {
    return solvers_.projectors[s].can_rebind_rhs();
  }

  /// Pack topology + base-scenario data into the flat SoA pool consumed by
  /// every execution backend. Byte-identical to the legacy
  /// precompute-then-build path.
  PackedLocalSolvers make_pack() const {
    return PackedLocalSolvers::build(problem_, solvers_);
  }

  /// bbar_s for a new right-hand side via the retained factorization — no
  /// refactorization, bit-identical to a cold build with the same A_s.
  std::vector<double> rebind_rhs(std::size_t s, std::span<const double> b);

  /// Re-derive component `s` from an edited topology block: exactly one
  /// factorization. The component's variable set (global map, n_s) must be
  /// unchanged — a different variable layout is a different model. Updates
  /// the stored base problem so later scenario diffs compare against the
  /// edited topology.
  void refresh_component(std::size_t s, const dopf::opf::Component& comp);

 private:
  dopf::opf::DistributedProblem problem_;
  dopf::linalg::ProjectorOptions options_;
  LocalSolvers solvers_;
  double precompute_seconds_ = 0.0;
  int refactorizations_ = 0;
};

/// FNV-1a fingerprint of a pack's topology arrays (dims, offsets, Abar
/// bits, gather structure). Two packs with equal topology fingerprints
/// came from the same SolveModel precompute.
std::uint64_t topology_fingerprint(const PackedLocalSolvers& pack);

/// FNV-1a fingerprint of a pack's scenario arrays (bbar, c, lb, ub, x0).
/// Changes whenever a ScenarioBinding rebinds data; checkpoints carry both
/// fingerprints so a resume against edited loads fails loudly.
std::uint64_t scenario_fingerprint(const PackedLocalSolvers& pack);

}  // namespace dopf::core
