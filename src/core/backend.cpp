#include "core/backend.hpp"

#include <chrono>
#include <vector>

#include "core/packed_kernels.hpp"

namespace dopf::core {

void residual_chunk(const PackedLocalSolvers& pack, const PackedState& state,
                    std::size_t chunk, ResidualSums* out) {
  const std::size_t total = pack.total_local();
  const std::size_t begin = chunk * kResidualChunk;
  const std::size_t end = std::min(total, begin + kResidualChunk);
  ResidualSums acc;
  for (std::size_t pos = begin; pos < end; ++pos) {
    const double bx = state.x[pack.global_idx[pos]];
    const double d = bx - state.z[pos];
    acc.pres2 += d * d;
    acc.bx2 += bx * bx;
    acc.z2 += state.z[pos] * state.z[pos];
    const double dz = state.z[pos] - state.z_prev[pos];
    acc.dz2 += dz * dz;
    acc.l2 += state.lambda[pos] * state.lambda[pos];
  }
  *out = acc;
}

ResidualSums combine_residual_chunks(std::span<ResidualSums> partials) {
  std::size_t n = partials.size();
  if (n == 0) return {};
  // Pairwise rounds: partial i' = partial 2i + partial 2i+1, odd tail kept.
  // The tree depends only on the chunk count, never on thread count.
  while (n > 1) {
    const std::size_t half = n / 2;
    for (std::size_t i = 0; i < half; ++i) {
      const ResidualSums& a = partials[2 * i];
      const ResidualSums& b = partials[2 * i + 1];
      partials[i] = ResidualSums{a.pres2 + b.pres2, a.bx2 + b.bx2,
                                 a.z2 + b.z2, a.dz2 + b.dz2, a.l2 + b.l2};
    }
    if (n % 2 != 0) {
      partials[half] = partials[n - 1];
      n = half + 1;
    } else {
      n = half;
    }
  }
  return partials[0];
}

namespace {

using Clock = std::chrono::steady_clock;

class SerialBackend final : public ExecutionBackend {
 public:
  const char* name() const override { return "serial"; }

  void global_update(const PackedLocalSolvers& pack,
                     PackedState& state) override {
    const std::size_t n = pack.num_global();
    for (std::size_t i = 0; i < n; ++i) {
      kernels::global_entry(pack, state.z.data(), state.lambda.data(),
                            state.rho, i, state.x.data());
    }
  }

  void local_update(const PackedLocalSolvers& pack,
                    PackedState& state) override {
    const std::size_t S = pack.num_components();
    const bool timed = !state.component_seconds.empty();
    for (std::size_t s = 0; s < S; ++s) {
      const auto start = timed ? Clock::now() : Clock::time_point{};
      kernels::stage_component(pack, state.x.data(), state.lambda.data(),
                               state.rho, s, state.y.data());
      kernels::project_component(pack, s, state.y.data(), state.z.data());
      if (timed) {
        state.component_seconds[s] +=
            std::chrono::duration<double>(Clock::now() - start).count();
      }
    }
  }

  void dual_update(const PackedLocalSolvers& pack,
                   PackedState& state) override {
    const std::size_t total = pack.total_local();
    for (std::size_t pos = 0; pos < total; ++pos) {
      kernels::dual_entry(pack, state.x.data(), state.z.data(), state.rho,
                          pos, state.lambda.data());
    }
  }

  ResidualSums residual_sums(const PackedLocalSolvers& pack,
                             const PackedState& state) override {
    partials_.assign(residual_num_chunks(pack.total_local()), ResidualSums{});
    for (std::size_t k = 0; k < partials_.size(); ++k) {
      residual_chunk(pack, state, k, &partials_[k]);
    }
    return combine_residual_chunks(partials_);
  }

 private:
  std::vector<ResidualSums> partials_;
};

}  // namespace

std::unique_ptr<ExecutionBackend> make_serial_backend() {
  return std::make_unique<SerialBackend>();
}

}  // namespace dopf::core
