#pragma once

#include "core/admm.hpp"
#include "core/scenario_binding.hpp"

namespace dopf::core {

/// Lifetime counters for a SolveSession (the numbers the scenario sweep
/// CLI and the session-reuse bench report).
struct SessionStats {
  int solves = 0;
  int cold_solves = 0;
  int warm_solves = 0;
  /// Warm solves that also needed zero factorization work since the
  /// previous solve — the full precompute-reuse case.
  int precompute_reuses = 0;
  /// Component refactorizations applied through rebind()/the binding.
  int refactorizations = 0;
  /// RHS-only component rebinds (cached-factorization re-derivations).
  int rhs_rebinds = 0;
};

/// Layer 3 of the session architecture: iterate state that survives across
/// solves. A SolveSession drives one SolverFreeAdmm over a ScenarioBinding
/// and keeps the consensus state (x, z, lambda) between solve() calls, so
/// after a scenario rebind the next solve warm-starts from the previous
/// solution instead of the paper's initial point — the warm-start tracking
/// setting of Kim & Kim (arXiv:2110.06879).
///
/// Per-solve TimingBreakdown is cleaned up here: the one-time model
/// precompute is attributed to the first solve only; later solves report
/// precompute_reuse_count plus exactly the refactorizations their rebinds
/// caused.
class SolveSession {
 public:
  /// `binding` must outlive the session.
  SolveSession(ScenarioBinding& binding, AdmmOptions options);

  /// Replace the execution backend (nullptr restores serial).
  void set_backend(std::unique_ptr<ExecutionBackend> backend) {
    solver_.set_backend(std::move(backend));
  }

  ScenarioBinding& binding() { return *binding_; }
  /// The underlying stepper (checkpoint hooks, step-level API).
  SolverFreeAdmm& solver() { return solver_; }
  const SolverFreeAdmm& solver() const { return solver_; }
  const SessionStats& stats() const { return stats_; }
  /// True when the next solve() will start from retained state.
  bool warm() const { return warm_; }

  /// Rebind the scenario through the binding, folding its per-component
  /// work into the session counters. Warm state is kept: the previous
  /// solution seeds the perturbed problem.
  RebindStats rebind(const dopf::opf::DistributedProblem& scenario);

  /// Solve the currently bound scenario: cold on the first call (or after
  /// reset()), warm-started from the previous solution afterwards.
  AdmmResult solve();

  /// Drop the warm state and solve from the paper's initial point.
  AdmmResult solve_cold();

  /// Forget the retained iterate state; the next solve() starts cold.
  void reset() { warm_ = false; }

  /// Mark the session warm after an external state restore (streaming
  /// checkpoint resume): the caller has placed a previous solve's iterate
  /// state into solver() via restore_state, and the next solve() must
  /// treat it as retained warm state instead of resetting it.
  void mark_warm() { warm_ = true; }

 private:
  ScenarioBinding* binding_;
  SolverFreeAdmm solver_;
  SessionStats stats_;
  bool warm_ = false;
  int model_refactorizations_seen_ = 0;
};

}  // namespace dopf::core
