#include "core/watchdog.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dopf::core {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

ConvergenceWatchdog::ConvergenceWatchdog(int window, double min_improvement,
                                         int max_restarts)
    : window_(std::max(window, 1)),
      min_improvement_(min_improvement),
      max_restarts_(std::max(max_restarts, 0)),
      best_merit_(kInf),
      improvement_base_(kInf),
      last_merit_(kInf) {}

double ConvergenceWatchdog::merit(const IterationRecord& rec) {
  if (rec.eps_primal <= 0.0 || rec.eps_dual <= 0.0) return kInf;
  return std::max(rec.primal_residual / rec.eps_primal,
                  rec.dual_residual / rec.eps_dual);
}

ConvergenceWatchdog::Decision ConvergenceWatchdog::observe(
    const IterationRecord& rec) {
  Decision d;
  const double m = merit(rec);
  if (!std::isfinite(m)) {
    // Either still warming up (zero tolerance) or diverging — the solver's
    // non-finite guard owns the latter. An infinite merit is never progress,
    // but it must not count towards a stall window either.
    return d;
  }

  if (m < best_merit_) {
    best_merit_ = m;
    d.new_best = true;
  }

  // Oscillation bookkeeping: count direction changes of the merit within
  // the current stall window.
  const double delta = m - last_merit_;
  if (std::isfinite(last_merit_) && delta * last_delta_ < 0.0) ++sign_flips_;
  if (delta != 0.0) last_delta_ = delta;
  last_merit_ = m;

  if (m <= (1.0 - min_improvement_) * improvement_base_) {
    improvement_base_ = m;
    last_progress_iteration_ = rec.iteration;
    stalled_checks_ = 0;
    sign_flips_ = 0;
    return d;
  }
  if (last_progress_iteration_ == std::numeric_limits<int>::min()) {
    // First finite merit and it is not an improvement over +inf — cannot
    // happen, but never measure a stall from an unset origin.
    last_progress_iteration_ = rec.iteration;
  }

  ++stalled_checks_;
  // The window is measured in ITERATIONS, not residual checks: ADMM merit
  // plateaus legitimately span hundreds of iterations on converging runs,
  // and a check-count window would make the verdict depend on check_every.
  if (rec.iteration - last_progress_iteration_ < window_) return d;

  // A full window elapsed without meaningful improvement: stall.
  ++summary_.stalls;
  if (stalled_checks_ >= 4 && sign_flips_ >= stalled_checks_ / 2) {
    summary_.oscillation_detected = true;
  }
  if (escalation_ == 0) {
    d.action = Action::kNudgeRho;
    ++summary_.rho_nudges;
  } else if (escalation_ <= max_restarts_) {
    d.action = Action::kRestartFromBest;
    ++summary_.restarts;
  } else {
    d.action = Action::kStop;
    return d;
  }
  ++escalation_;
  // Give the action a fresh window, measured from the best merit seen (a
  // restart puts the iterate back there).
  stalled_checks_ = 0;
  sign_flips_ = 0;
  improvement_base_ = best_merit_;
  last_progress_iteration_ = rec.iteration;
  return d;
}

}  // namespace dopf::core
