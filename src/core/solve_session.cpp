#include "core/solve_session.hpp"

namespace dopf::core {

SolveSession::SolveSession(ScenarioBinding& binding, AdmmOptions options)
    : binding_(&binding),
      solver_(binding, options),
      model_refactorizations_seen_(binding.model().refactorizations()) {}

RebindStats SolveSession::rebind(const dopf::opf::DistributedProblem& scenario) {
  const RebindStats st = binding_->rebind(scenario);
  stats_.refactorizations += st.refactorizations;
  stats_.rhs_rebinds += st.rhs_rebinds;
  return st;
}

AdmmResult SolveSession::solve() {
  if (!warm_) solver_.reset();

  // Per-solve timing: attribute the one-time precompute to the first solve
  // only, and report exactly the factorization work done since the last
  // solve (refactorizations routed around the session included).
  const int model_refactorizations = binding_->model().refactorizations();
  const int refactorizations =
      model_refactorizations - model_refactorizations_seen_;
  model_refactorizations_seen_ = model_refactorizations;

  TimingBreakdown fresh;
  if (stats_.solves == 0) {
    fresh.precompute = binding_->model().precompute_seconds() +
                       binding_->bind_seconds();
  }
  fresh.refactorizations = refactorizations;
  solver_.timing() = fresh;

  const bool warm = warm_;
  AdmmResult result = solver_.solve();
  result.warm_started = warm;

  ++stats_.solves;
  if (warm) {
    ++stats_.warm_solves;
    if (refactorizations == 0) ++stats_.precompute_reuses;
  } else {
    ++stats_.cold_solves;
  }
  warm_ = true;
  return result;
}

AdmmResult SolveSession::solve_cold() {
  reset();
  return solve();
}

}  // namespace dopf::core
