#include "core/scenario_binding.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace dopf::core {

using dopf::opf::Component;
using dopf::opf::DistributedProblem;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

bool same_matrix(const dopf::linalg::Matrix& a, const dopf::linalg::Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  const std::span<const double> da = a.data();
  const std::span<const double> db = b.data();
  return std::equal(da.begin(), da.end(), db.begin());
}

void copy_span(std::span<const double> from, std::vector<double>& to,
               const char* what) {
  if (from.size() != to.size()) {
    throw std::invalid_argument(std::string("ScenarioBinding: ") + what +
                                " size mismatch");
  }
  std::copy(from.begin(), from.end(), to.begin());
}

}  // namespace

ScenarioBinding::ScenarioBinding(SolveModel& model) : model_(&model) {
  const auto start = std::chrono::steady_clock::now();
  pack_ = model.make_pack();
  bound_b_.reserve(model.num_components());
  for (const Component& comp : model.problem().components) {
    bound_b_.push_back(comp.b);
  }
  bind_seconds_ = seconds_since(start);
}

std::span<double> ScenarioBinding::bbar_slice(std::size_t s) {
  return std::span<double>(pack_.bbar)
      .subspan(static_cast<std::size_t>(pack_.comp_offset[s]),
               static_cast<std::size_t>(pack_.comp_nvars[s]));
}

std::span<double> ScenarioBinding::abar_slice(std::size_t s) {
  const std::size_t ns = static_cast<std::size_t>(pack_.comp_nvars[s]);
  return std::span<double>(pack_.abar)
      .subspan(static_cast<std::size_t>(pack_.abar_offset[s]), ns * ns);
}

void ScenarioBinding::set_rhs(std::size_t s, std::span<const double> b) {
  const std::vector<double> bbar = model_->rebind_rhs(s, b);
  std::span<double> slice = bbar_slice(s);
  std::copy(bbar.begin(), bbar.end(), slice.begin());
  bound_b_[s].assign(b.begin(), b.end());
  ++lifetime_.rhs_rebinds;
}

void ScenarioBinding::refresh_component(std::size_t s, const Component& comp) {
  model_->refresh_component(s, comp);
  const dopf::linalg::AffineProjector& proj = model_->projector(s);
  std::span<double> abar = abar_slice(s);
  const std::span<const double> fresh = proj.abar().data();
  std::copy(fresh.begin(), fresh.end(), abar.begin());
  std::span<double> bbar = bbar_slice(s);
  std::copy(proj.bbar().begin(), proj.bbar().end(), bbar.begin());
  bound_b_[s] = comp.b;
  ++lifetime_.refactorizations;
}

void ScenarioBinding::set_objective(std::span<const double> c) {
  copy_span(c, pack_.c, "objective");
  lifetime_.objective_changed = true;
}

void ScenarioBinding::set_bounds(std::span<const double> lb,
                                 std::span<const double> ub) {
  copy_span(lb, pack_.lb, "lower bound");
  copy_span(ub, pack_.ub, "upper bound");
  lifetime_.bounds_changed = true;
}

void ScenarioBinding::set_initial_point(std::span<const double> x0) {
  copy_span(x0, pack_.x0, "initial point");
  lifetime_.initial_point_changed = true;
}

RebindStats ScenarioBinding::rebind(const DistributedProblem& scenario) {
  const DistributedProblem& base = model_->problem();
  if (scenario.num_vars != base.num_vars ||
      scenario.components.size() != base.components.size()) {
    throw std::invalid_argument(
        "ScenarioBinding::rebind: scenario has a different decomposition "
        "shape; rebuild the SolveModel instead");
  }
  for (std::size_t s = 0; s < base.components.size(); ++s) {
    if (scenario.components[s].global != base.components[s].global) {
      throw std::invalid_argument(
          "ScenarioBinding::rebind: component '" +
          scenario.components[s].name +
          "' covers a different variable set; that is a different model");
    }
  }

  RebindStats st;
  for (std::size_t s = 0; s < base.components.size(); ++s) {
    const Component& sc = scenario.components[s];
    const Component& bc = base.components[s];
    if (!same_matrix(sc.a, bc.a)) {
      refresh_component(s, sc);
      ++st.refactorizations;
    } else if (sc.b != bound_b_[s]) {
      if (model_->can_rebind_rhs(s)) {
        set_rhs(s, sc.b);
        ++st.rhs_rebinds;
      } else {
        // Adopted legacy solvers without retained factors: fall back to a
        // full (counted) re-derivation.
        refresh_component(s, sc);
        ++st.refactorizations;
      }
    } else {
      ++st.unchanged;
    }
  }

  if (scenario.c != pack_.c) {
    set_objective(scenario.c);
    st.objective_changed = true;
  }
  if (scenario.lb != pack_.lb || scenario.ub != pack_.ub) {
    set_bounds(scenario.lb, scenario.ub);
    st.bounds_changed = true;
  }
  if (scenario.x0 != pack_.x0) {
    set_initial_point(scenario.x0);
    st.initial_point_changed = true;
  }
  return st;
}

}  // namespace dopf::core
