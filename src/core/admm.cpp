#include "core/admm.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "core/packed_kernels.hpp"
#include "core/scenario_binding.hpp"
#include "core/solve_model.hpp"
#include "core/watchdog.hpp"
#include "linalg/vector_ops.hpp"

namespace dopf::core {

using Clock = std::chrono::steady_clock;
using dopf::opf::DistributedProblem;

namespace {
double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Uniform per-message quantization (communication-compression extension):
/// snap every entry to one of 2^bits levels spanning [-max|v|, +max|v|].
void quantize_message(std::span<double> v, int bits) {
  if (bits <= 0 || bits >= 52 || v.empty()) return;
  double scale = 0.0;
  for (double x : v) scale = std::max(scale, std::abs(x));
  if (scale == 0.0) return;
  const double levels = std::ldexp(1.0, bits) - 1.0;  // 2^bits - 1
  const double delta = 2.0 * scale / levels;
  for (double& x : v) x = std::round(x / delta) * delta;
}
}  // namespace

const char* to_string(AdmmStatus status) {
  switch (status) {
    case AdmmStatus::kConverged:
      return "converged";
    case AdmmStatus::kIterationLimit:
      return "iteration-limit";
    case AdmmStatus::kTimeLimit:
      return "time-limit";
    case AdmmStatus::kDiverged:
      return "diverged";
    case AdmmStatus::kStalled:
      return "stalled";
    case AdmmStatus::kCancelled:
      return "cancelled";
  }
  return "?";
}

SolverFreeAdmm::SolverFreeAdmm(const DistributedProblem& problem,
                               AdmmOptions options)
    : options_(options), backend_(make_serial_backend()), rho_(options.rho) {
  // Thin wrapper over the session layers: model (factorize) + binding
  // (pack) in one call. The pack bytes match the historical fused
  // precompute exactly, so golden traces are unaffected.
  owned_model_ = std::make_unique<SolveModel>(problem, options.projector);
  owned_binding_ = std::make_unique<ScenarioBinding>(*owned_model_);
  problem_ = &owned_model_->problem();
  pack_ = &owned_binding_->pack();
  timing_.precompute =
      owned_model_->precompute_seconds() + owned_binding_->bind_seconds();
  init_storage();
}

SolverFreeAdmm::SolverFreeAdmm(const DistributedProblem& problem,
                               AdmmOptions options, LocalSolvers solvers)
    : options_(options), backend_(make_serial_backend()), rho_(options.rho) {
  owned_model_ = std::make_unique<SolveModel>(problem, options.projector,
                                              std::move(solvers));
  owned_binding_ = std::make_unique<ScenarioBinding>(*owned_model_);
  problem_ = &owned_model_->problem();
  pack_ = &owned_binding_->pack();
  init_storage();
}

SolverFreeAdmm::SolverFreeAdmm(ScenarioBinding& binding, AdmmOptions options)
    : problem_(&binding.model().problem()),
      options_(options),
      pack_(&binding.pack()),
      backend_(make_serial_backend()),
      rho_(options.rho) {
  timing_.precompute =
      binding.model().precompute_seconds() + binding.bind_seconds();
  init_storage();
}

SolverFreeAdmm::~SolverFreeAdmm() = default;

void SolverFreeAdmm::set_backend(std::unique_ptr<ExecutionBackend> backend) {
  backend_ = backend ? std::move(backend) : make_serial_backend();
}

void SolverFreeAdmm::init_storage() {
  total_local_ = pack_->total_local();
  x_.assign(pack_->num_global(), 0.0);
  z_.assign(total_local_, 0.0);
  z_prev_.assign(total_local_, 0.0);
  lambda_.assign(total_local_, 0.0);
  y_scratch_.assign(total_local_, 0.0);
  reset();
}

PackedState SolverFreeAdmm::packed_state() {
  PackedState st;
  st.rho = rho_;
  st.x = x_;
  st.z = z_;
  st.z_prev = z_prev_;
  st.lambda = lambda_;
  st.y = y_scratch_;
  if (options_.record_component_times) {
    st.component_seconds = component_seconds_;
  }
  return st;
}

bool SolverFreeAdmm::plain_path() const {
  return options_.relaxation == 1.0 && options_.quantize_bits == 0 &&
         options_.async_fraction >= 1.0;
}

void SolverFreeAdmm::reset() {
  rho_ = options_.rho;
  start_iteration_ = 0;
  active_.assign(pack_->num_components(), 1);
  async_rng_.seed(options_.async_seed);
  x_ = pack_->x0;
  std::fill(lambda_.begin(), lambda_.end(), 0.0);
  // z_s = B_s x0 (the paper's per-element initial values are encoded in x0).
  for (std::size_t pos = 0; pos < total_local_; ++pos) {
    z_[pos] = pack_->x0[pack_->global_idx[pos]];
  }
  z_prev_ = z_;
  component_seconds_.assign(pack_->num_components(), 0.0);
  timing_.global_update = timing_.local_update = timing_.dual_update =
      timing_.residuals = 0.0;
  timing_.iterations = 0;
}

void SolverFreeAdmm::warm_start(std::span<const double> x,
                                std::span<const double> lambda) {
  if (x.size() != pack_->num_global()) {
    throw std::invalid_argument("warm_start: x size mismatch");
  }
  if (!lambda.empty() && lambda.size() != total_local_) {
    throw std::invalid_argument("warm_start: lambda size mismatch");
  }
  std::copy(x.begin(), x.end(), x_.begin());
  for (std::size_t pos = 0; pos < total_local_; ++pos) {
    z_[pos] = x_[pack_->global_idx[pos]];
  }
  z_prev_ = z_;
  if (lambda.empty()) {
    std::fill(lambda_.begin(), lambda_.end(), 0.0);
  } else {
    std::copy(lambda.begin(), lambda.end(), lambda_.begin());
  }
}

void SolverFreeAdmm::restore_state(int iteration, double rho,
                                   std::span<const double> x,
                                   std::span<const double> z,
                                   std::span<const double> z_prev,
                                   std::span<const double> lambda) {
  if (iteration < 0) {
    throw std::invalid_argument("restore_state: negative iteration");
  }
  if (x.size() != pack_->num_global() || z.size() != total_local_ ||
      z_prev.size() != total_local_ || lambda.size() != total_local_) {
    throw std::invalid_argument("restore_state: state size mismatch");
  }
  start_iteration_ = iteration;
  rho_ = rho;
  std::copy(x.begin(), x.end(), x_.begin());
  std::copy(z.begin(), z.end(), z_.begin());
  std::copy(z_prev.begin(), z_prev.end(), z_prev_.begin());
  std::copy(lambda.begin(), lambda.end(), lambda_.begin());
}

void SolverFreeAdmm::set_checkpoint_hook(int every, CheckpointHook hook) {
  checkpoint_every_ = every;
  checkpoint_hook_ = std::move(hook);
}

void SolverFreeAdmm::global_update() {
  // (18) runs on the backend unconditionally: the extensions only alter the
  // local/dual messages, never the operator-side consensus step.
  PackedState st = packed_state();
  backend_->global_update(*pack_, st);
}

void SolverFreeAdmm::local_update() {
  z_prev_.swap(z_);
  PackedState st = packed_state();
  if (plain_path()) {
    backend_->local_update(*pack_, st);
    return;
  }
  local_update_extension();
}

void SolverFreeAdmm::local_update_extension() {
  // (15) with the CPU-side extensions (over-relaxation, quantized messages,
  // asynchronous participation). Runs serially over the packed pool; the
  // extensions model agent-side message mangling and are inherently
  // sequential to keep their RNG draws reproducible.
  const bool timed = options_.record_component_times;
  const int qbits = options_.quantize_bits;
  const double alpha = options_.relaxation;
  const bool async = options_.async_fraction < 1.0;
  if (async) {
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    for (char& a : active_) {
      a = unit(async_rng_) < options_.async_fraction ? 1 : 0;
    }
  }
  for (std::size_t s = 0; s < pack_->num_components(); ++s) {
    const std::size_t ns = static_cast<std::size_t>(pack_->comp_nvars[s]);
    const std::size_t off = static_cast<std::size_t>(pack_->comp_offset[s]);
    if (async && !active_[s]) {
      // Straggler: keep the stale local solution.
      std::copy(z_prev_.begin() + static_cast<std::ptrdiff_t>(off),
                z_prev_.begin() + static_cast<std::ptrdiff_t>(off + ns),
                z_.begin() + static_cast<std::ptrdiff_t>(off));
      continue;
    }
    double* y = y_scratch_.data() + off;
    const double* ls = lambda_.data() + off;
    double* zs = z_.data() + off;
    const double* zp = z_prev_.data() + off;

    const auto start = timed ? Clock::now() : Clock::time_point{};
    if (alpha == 1.0) {
      for (std::size_t j = 0; j < ns; ++j) {
        y[j] = x_[pack_->global_idx[off + j]];
      }
    } else {
      for (std::size_t j = 0; j < ns; ++j) {
        y[j] = alpha * x_[pack_->global_idx[off + j]] +
               (1.0 - alpha) * zp[j];
      }
    }
    if (qbits > 0) {
      // The operator -> agent broadcast of B_s x is compressed; the agent's
      // own dual variables stay exact.
      quantize_message({y, ns}, qbits);
    }
    for (std::size_t j = 0; j < ns; ++j) {
      y[j] += ls[j] / rho_;
    }
    kernels::project_component(*pack_, s, y_scratch_.data(), z_.data());
    if (qbits > 0) {
      // The agent -> operator reply (x_s) is compressed symmetrically.
      quantize_message({zs, ns}, qbits);
    }
    if (timed) component_seconds_[s] += seconds_since(start);
  }
}

void SolverFreeAdmm::dual_update() {
  if (plain_path()) {
    PackedState st = packed_state();
    backend_->dual_update(*pack_, st);
    return;
  }
  dual_update_extension();
}

void SolverFreeAdmm::dual_update_extension() {
  // (12) with extensions: under over-relaxation B_s x is replaced by the
  // same relaxed combination the local update saw.
  const double alpha = options_.relaxation;
  const bool async = options_.async_fraction < 1.0;
  for (std::size_t s = 0; s < pack_->num_components(); ++s) {
    if (async && !active_[s]) continue;  // straggler keeps stale duals
    const std::size_t ns = static_cast<std::size_t>(pack_->comp_nvars[s]);
    const std::size_t off = static_cast<std::size_t>(pack_->comp_offset[s]);
    double* ls = lambda_.data() + off;
    const double* zs = z_.data() + off;
    const double* zp = z_prev_.data() + off;
    if (alpha == 1.0) {
      for (std::size_t j = 0; j < ns; ++j) {
        ls[j] += rho_ * (x_[pack_->global_idx[off + j]] - zs[j]);
      }
    } else {
      for (std::size_t j = 0; j < ns; ++j) {
        const double relaxed =
            alpha * x_[pack_->global_idx[off + j]] + (1.0 - alpha) * zp[j];
        ls[j] += rho_ * (relaxed - zs[j]);
      }
    }
    if (options_.quantize_bits > 0) {
      // lambda_s rides along in the agent -> operator message.
      quantize_message({ls, ns}, options_.quantize_bits);
    }
  }
}

IterationRecord SolverFreeAdmm::compute_residuals(int iteration) {
  // With each row of B_s selecting one distinct global variable,
  //   pres  = ||Bx - z||, dres = rho ||z - z_prev||,
  //   eps_p = eps_rel * max(||Bx||, ||z||), eps_d = eps_rel * ||lambda||.
  IterationRecord rec;
  rec.iteration = iteration;
  rec.rho = rho_;
  const PackedState st = packed_state();
  const ResidualSums sums = backend_->residual_sums(*pack_, st);
  rec.primal_residual = std::sqrt(sums.pres2);
  rec.dual_residual = rho_ * std::sqrt(sums.dz2);
  rec.eps_primal = options_.eps_rel * std::sqrt(std::max(sums.bx2, sums.z2));
  rec.eps_dual = options_.eps_rel * std::sqrt(sums.l2);
  return rec;
}

bool SolverFreeAdmm::termination_satisfied(const IterationRecord& rec) const {
  return rec.primal_residual <= rec.eps_primal &&
         rec.dual_residual <= rec.eps_dual;
}

double SolverFreeAdmm::objective() const {
  return dopf::linalg::dot(pack_->c, x_);
}

AdmmResult SolverFreeAdmm::solve() {
  if (solves_run_ > 0) {
    // A repeat run reuses the factorization: zero the one-time precompute
    // (it used to be re-reported — and re-summed — on every run) and count
    // the reuse instead.
    timing_.precompute = 0.0;
    ++timing_.precompute_reuse_count;
  }
  ++solves_run_;
  AdmmResult result;
  int recorded = 0;
  const auto wall_start = Clock::now();
  // Watchdog state: the monitor plus the best-merit iterate snapshot it can
  // roll the solver back to. Untouched (and cost-free) when watchdog is off.
  ConvergenceWatchdog watchdog(options_.watchdog_window,
                               options_.watchdog_min_improvement,
                               options_.watchdog_max_restarts);
  std::vector<double> best_x, best_z, best_z_prev, best_lambda;
  double best_rho = rho_;
  // A restored checkpoint resumes at start_iteration_ + 1; the iterate state
  // was already placed by restore_state, so the loop body is oblivious.
  result.iterations = start_iteration_;
  for (int t = start_iteration_ + 1; t <= options_.max_iterations; ++t) {
    auto tic = Clock::now();
    global_update();
    timing_.global_update += seconds_since(tic);

    tic = Clock::now();
    local_update();
    timing_.local_update += seconds_since(tic);

    tic = Clock::now();
    dual_update();
    timing_.dual_update += seconds_since(tic);
    ++timing_.iterations;

    result.iterations = t;
    if (t % options_.check_every == 0) {
      tic = Clock::now();
      const IterationRecord rec = compute_residuals(t);
      timing_.residuals += seconds_since(tic);
      if (++recorded % options_.record_every == 0) {
        result.history.push_back(rec);
      }
      result.primal_residual = rec.primal_residual;
      result.dual_residual = rec.dual_residual;
      // Divergence guard first: a non-finite residual, tolerance, or rho
      // means the iterate itself is non-finite (NaN/Inf propagates into
      // every sum), and NaN comparisons must never be read as convergence.
      if (!std::isfinite(rec.primal_residual) ||
          !std::isfinite(rec.dual_residual) ||
          !std::isfinite(rec.eps_primal) || !std::isfinite(rec.eps_dual) ||
          !std::isfinite(rec.rho)) {
        result.status = AdmmStatus::kDiverged;
        break;
      }
      if (termination_satisfied(rec)) {
        result.converged = true;
        result.status = AdmmStatus::kConverged;
        break;
      }
      // Cooperative cancellation (signal/deadline/caller): stop at the same
      // cadence as the termination test, leaving a valid restorable iterate.
      if (options_.cancel && options_.cancel->cancelled()) {
        result.status = AdmmStatus::kCancelled;
        break;
      }
      if (options_.time_limit_seconds > 0.0 &&
          seconds_since(wall_start) > options_.time_limit_seconds) {
        result.status = AdmmStatus::kTimeLimit;
        break;
      }
      if (options_.watchdog) {
        const auto decision = watchdog.observe(rec);
        if (decision.new_best) {
          best_x = x_;
          best_z = z_;
          best_z_prev = z_prev_;
          best_lambda = lambda_;
          best_rho = rho_;
        }
        if (decision.action == ConvergenceWatchdog::Action::kNudgeRho) {
          // Forced residual balancing: same rule as adaptive_rho, but
          // applied regardless of the adaptive_ratio trigger.
          if (rec.primal_residual > rec.dual_residual) {
            rho_ *= options_.adaptive_factor;
          } else {
            rho_ /= options_.adaptive_factor;
          }
        } else if (decision.action ==
                   ConvergenceWatchdog::Action::kRestartFromBest) {
          if (!best_x.empty()) {
            x_ = best_x;
            z_ = best_z;
            z_prev_ = best_z_prev;
            lambda_ = best_lambda;
            rho_ = best_rho;
          }
        } else if (decision.action == ConvergenceWatchdog::Action::kStop) {
          result.status = AdmmStatus::kStalled;
          result.watchdog = watchdog.summary();
          break;
        }
        result.watchdog = watchdog.summary();
      }
      // Residual balancing (extension): scale rho toward balanced residuals.
      if (options_.adaptive_rho && t <= options_.adaptive_until &&
          t % options_.adaptive_every == 0) {
        if (rec.primal_residual >
            options_.adaptive_ratio * rec.dual_residual) {
          rho_ *= options_.adaptive_factor;
        } else if (rec.dual_residual >
                   options_.adaptive_ratio * rec.primal_residual) {
          rho_ /= options_.adaptive_factor;
        }
      }
    }
    if (checkpoint_every_ > 0 && checkpoint_hook_ &&
        t % checkpoint_every_ == 0) {
      checkpoint_hook_(*this, t);
    }
  }
  result.x.assign(x_.begin(), x_.end());
  result.objective = objective();
  result.final_rho = rho_;
  result.timing = timing_;
  result.component_seconds.assign(component_seconds_.begin(),
                                  component_seconds_.end());
  return result;
}

}  // namespace dopf::core
