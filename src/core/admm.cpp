#include "core/admm.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <cmath>

#include "linalg/vector_ops.hpp"

namespace dopf::core {

using Clock = std::chrono::steady_clock;
using dopf::opf::Component;
using dopf::opf::DistributedProblem;

namespace {
double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Uniform per-message quantization (communication-compression extension):
/// snap every entry to one of 2^bits levels spanning [-max|v|, +max|v|].
void quantize_message(std::span<double> v, int bits) {
  if (bits <= 0 || bits >= 52 || v.empty()) return;
  double scale = 0.0;
  for (double x : v) scale = std::max(scale, std::abs(x));
  if (scale == 0.0) return;
  const double levels = std::ldexp(1.0, bits) - 1.0;  // 2^bits - 1
  const double delta = 2.0 * scale / levels;
  for (double& x : v) x = std::round(x / delta) * delta;
}
}  // namespace

const char* to_string(AdmmStatus status) {
  switch (status) {
    case AdmmStatus::kConverged:
      return "converged";
    case AdmmStatus::kIterationLimit:
      return "iteration-limit";
    case AdmmStatus::kTimeLimit:
      return "time-limit";
    case AdmmStatus::kDiverged:
      return "diverged";
  }
  return "?";
}

LocalSolvers LocalSolvers::precompute(const DistributedProblem& problem) {
  LocalSolvers solvers;
  solvers.projectors.reserve(problem.components.size());
  for (const Component& comp : problem.components) {
    solvers.projectors.emplace_back(comp.a, comp.b);
  }
  return solvers;
}

SolverFreeAdmm::SolverFreeAdmm(const DistributedProblem& problem,
                               AdmmOptions options)
    : problem_(&problem), options_(options), rho_(options.rho) {
  const auto start = Clock::now();
  solvers_ = LocalSolvers::precompute(problem);
  timing_.precompute = seconds_since(start);
  init_storage();
}

SolverFreeAdmm::SolverFreeAdmm(const DistributedProblem& problem,
                               AdmmOptions options, LocalSolvers solvers)
    : problem_(&problem),
      options_(options),
      solvers_(std::move(solvers)),
      rho_(options.rho) {
  init_storage();
}

void SolverFreeAdmm::init_storage() {
  offsets_.clear();
  offsets_.reserve(problem_->components.size());
  total_local_ = 0;
  for (const Component& comp : problem_->components) {
    offsets_.push_back(total_local_);
    total_local_ += comp.num_vars();
  }
  x_.assign(problem_->num_vars, 0.0);
  z_.assign(total_local_, 0.0);
  z_prev_.assign(total_local_, 0.0);
  lambda_.assign(total_local_, 0.0);
  y_scratch_.assign(total_local_, 0.0);
  reset();
}

void SolverFreeAdmm::reset() {
  rho_ = options_.rho;
  active_.assign(problem_->components.size(), 1);
  async_rng_.seed(options_.async_seed);
  x_ = problem_->x0;
  std::fill(lambda_.begin(), lambda_.end(), 0.0);
  // z_s = B_s x0 (the paper's per-element initial values are encoded in x0).
  for (std::size_t s = 0; s < problem_->components.size(); ++s) {
    const Component& comp = problem_->components[s];
    double* zs = z_.data() + offsets_[s];
    for (std::size_t j = 0; j < comp.num_vars(); ++j) {
      zs[j] = problem_->x0[comp.global[j]];
    }
  }
  z_prev_ = z_;
  component_seconds_.assign(problem_->components.size(), 0.0);
  timing_.global_update = timing_.local_update = timing_.dual_update =
      timing_.residuals = 0.0;
  timing_.iterations = 0;
}

void SolverFreeAdmm::warm_start(std::span<const double> x,
                                std::span<const double> lambda) {
  if (x.size() != problem_->num_vars) {
    throw std::invalid_argument("warm_start: x size mismatch");
  }
  if (!lambda.empty() && lambda.size() != total_local_) {
    throw std::invalid_argument("warm_start: lambda size mismatch");
  }
  std::copy(x.begin(), x.end(), x_.begin());
  for (std::size_t s = 0; s < problem_->components.size(); ++s) {
    const Component& comp = problem_->components[s];
    double* zs = z_.data() + offsets_[s];
    for (std::size_t j = 0; j < comp.num_vars(); ++j) {
      zs[j] = x_[comp.global[j]];
    }
  }
  z_prev_ = z_;
  if (lambda.empty()) {
    std::fill(lambda_.begin(), lambda_.end(), 0.0);
  } else {
    std::copy(lambda.begin(), lambda.end(), lambda_.begin());
  }
}

void SolverFreeAdmm::global_update() {
  // (18): xhat_i = (rho * sum of copies - c_i - (B'lambda)_i) / (rho * deg_i)
  // then clip to the bounds (the step that owns (9d)).
  const std::size_t n = problem_->num_vars;
  const double* c = problem_->c.data();
  const int* deg = problem_->copy_count.data();

  // accum = rho * B'z - B'lambda, scattered component by component.
  std::vector<double>& accum = x_;  // overwrite in place
  std::fill(accum.begin(), accum.end(), 0.0);
  for (std::size_t s = 0; s < problem_->components.size(); ++s) {
    const Component& comp = problem_->components[s];
    const double* zs = z_.data() + offsets_[s];
    const double* ls = lambda_.data() + offsets_[s];
    for (std::size_t j = 0; j < comp.num_vars(); ++j) {
      accum[comp.global[j]] += rho_ * zs[j] - ls[j];
    }
  }
  const double* lb = problem_->lb.data();
  const double* ub = problem_->ub.data();
  for (std::size_t i = 0; i < n; ++i) {
    const double xhat = (accum[i] - c[i]) / (rho_ * deg[i]);
    x_[i] = std::min(std::max(xhat, lb[i]), ub[i]);
  }
}

void SolverFreeAdmm::local_update() {
  // (15): x_s = proj_{A_s x = b_s}(B_s x + lambda_s / rho).
  z_prev_.swap(z_);
  const bool timed = options_.record_component_times;
  const int qbits = options_.quantize_bits;
  const bool async = options_.async_fraction < 1.0;
  if (async) {
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    for (char& a : active_) {
      a = unit(async_rng_) < options_.async_fraction ? 1 : 0;
    }
  }
  for (std::size_t s = 0; s < problem_->components.size(); ++s) {
    const Component& comp = problem_->components[s];
    if (async && !active_[s]) {
      // Straggler: keep the stale local solution.
      std::copy(z_prev_.begin() + static_cast<std::ptrdiff_t>(offsets_[s]),
                z_prev_.begin() +
                    static_cast<std::ptrdiff_t>(offsets_[s] + comp.num_vars()),
                z_.begin() + static_cast<std::ptrdiff_t>(offsets_[s]));
      continue;
    }
    const std::size_t ns = comp.num_vars();
    double* y = y_scratch_.data() + offsets_[s];
    const double* ls = lambda_.data() + offsets_[s];
    double* zs = z_.data() + offsets_[s];

    const auto start = timed ? Clock::now() : Clock::time_point{};
    const double alpha = options_.relaxation;
    const double* zp = z_prev_.data() + offsets_[s];
    if (alpha == 1.0) {
      for (std::size_t j = 0; j < ns; ++j) {
        y[j] = x_[comp.global[j]];
      }
    } else {
      for (std::size_t j = 0; j < ns; ++j) {
        y[j] = alpha * x_[comp.global[j]] + (1.0 - alpha) * zp[j];
      }
    }
    if (qbits > 0) {
      // The operator -> agent broadcast of B_s x is compressed; the agent's
      // own dual variables stay exact.
      quantize_message({y, ns}, qbits);
    }
    for (std::size_t j = 0; j < ns; ++j) {
      y[j] += ls[j] / rho_;
    }
    solvers_.projectors[s].project_into({y, ns}, {zs, ns});
    if (qbits > 0) {
      // The agent -> operator reply (x_s) is compressed symmetrically.
      quantize_message({zs, ns}, qbits);
    }
    if (timed) component_seconds_[s] += seconds_since(start);
  }
}

void SolverFreeAdmm::dual_update() {
  // (12): lambda_s += rho * (B_s x - x_s); under over-relaxation B_s x is
  // replaced by the same relaxed combination the local update saw.
  const double alpha = options_.relaxation;
  const bool async = options_.async_fraction < 1.0;
  for (std::size_t s = 0; s < problem_->components.size(); ++s) {
    const Component& comp = problem_->components[s];
    if (async && !active_[s]) continue;  // straggler keeps stale duals
    double* ls = lambda_.data() + offsets_[s];
    const double* zs = z_.data() + offsets_[s];
    const double* zp = z_prev_.data() + offsets_[s];
    if (alpha == 1.0) {
      for (std::size_t j = 0; j < comp.num_vars(); ++j) {
        ls[j] += rho_ * (x_[comp.global[j]] - zs[j]);
      }
    } else {
      for (std::size_t j = 0; j < comp.num_vars(); ++j) {
        const double relaxed =
            alpha * x_[comp.global[j]] + (1.0 - alpha) * zp[j];
        ls[j] += rho_ * (relaxed - zs[j]);
      }
    }
    if (options_.quantize_bits > 0) {
      // lambda_s rides along in the agent -> operator message.
      quantize_message({ls, comp.num_vars()}, options_.quantize_bits);
    }
  }
}

IterationRecord SolverFreeAdmm::compute_residuals(int iteration) const {
  // With each row of B_s selecting one distinct global variable,
  //   pres  = ||Bx - z||, dres = rho ||z - z_prev||,
  //   eps_p = eps_rel * max(||Bx||, ||z||), eps_d = eps_rel * ||lambda||.
  IterationRecord rec;
  rec.iteration = iteration;
  rec.rho = rho_;
  double pres2 = 0.0, bx2 = 0.0, z2 = 0.0, dz2 = 0.0, l2 = 0.0;
  for (std::size_t s = 0; s < problem_->components.size(); ++s) {
    const Component& comp = problem_->components[s];
    const double* zs = z_.data() + offsets_[s];
    const double* zp = z_prev_.data() + offsets_[s];
    const double* ls = lambda_.data() + offsets_[s];
    for (std::size_t j = 0; j < comp.num_vars(); ++j) {
      const double bx = x_[comp.global[j]];
      const double d = bx - zs[j];
      pres2 += d * d;
      bx2 += bx * bx;
      z2 += zs[j] * zs[j];
      const double dz = zs[j] - zp[j];
      dz2 += dz * dz;
      l2 += ls[j] * ls[j];
    }
  }
  rec.primal_residual = std::sqrt(pres2);
  rec.dual_residual = rho_ * std::sqrt(dz2);
  rec.eps_primal = options_.eps_rel * std::sqrt(std::max(bx2, z2));
  rec.eps_dual = options_.eps_rel * std::sqrt(l2);
  return rec;
}

bool SolverFreeAdmm::termination_satisfied(const IterationRecord& rec) const {
  return rec.primal_residual <= rec.eps_primal &&
         rec.dual_residual <= rec.eps_dual;
}

double SolverFreeAdmm::objective() const {
  return dopf::linalg::dot(problem_->c, x_);
}

AdmmResult SolverFreeAdmm::solve() {
  AdmmResult result;
  int recorded = 0;
  const auto wall_start = Clock::now();
  for (int t = 1; t <= options_.max_iterations; ++t) {
    auto tic = Clock::now();
    global_update();
    timing_.global_update += seconds_since(tic);

    tic = Clock::now();
    local_update();
    timing_.local_update += seconds_since(tic);

    tic = Clock::now();
    dual_update();
    timing_.dual_update += seconds_since(tic);
    ++timing_.iterations;

    result.iterations = t;
    if (t % options_.check_every == 0) {
      tic = Clock::now();
      const IterationRecord rec = compute_residuals(t);
      timing_.residuals += seconds_since(tic);
      if (++recorded % options_.record_every == 0) {
        result.history.push_back(rec);
      }
      result.primal_residual = rec.primal_residual;
      result.dual_residual = rec.dual_residual;
      if (termination_satisfied(rec)) {
        result.converged = true;
        result.status = AdmmStatus::kConverged;
        break;
      }
      if (!std::isfinite(rec.primal_residual) ||
          !std::isfinite(rec.dual_residual)) {
        result.status = AdmmStatus::kDiverged;
        break;
      }
      if (options_.time_limit_seconds > 0.0 &&
          seconds_since(wall_start) > options_.time_limit_seconds) {
        result.status = AdmmStatus::kTimeLimit;
        break;
      }
      // Residual balancing (extension): scale rho toward balanced residuals.
      if (options_.adaptive_rho && t <= options_.adaptive_until &&
          t % options_.adaptive_every == 0) {
        if (rec.primal_residual >
            options_.adaptive_ratio * rec.dual_residual) {
          rho_ *= options_.adaptive_factor;
        } else if (rec.dual_residual >
                   options_.adaptive_ratio * rec.primal_residual) {
          rho_ /= options_.adaptive_factor;
        }
      }
    }
  }
  result.x.assign(x_.begin(), x_.end());
  result.objective = objective();
  result.final_rho = rho_;
  result.timing = timing_;
  result.component_seconds.assign(component_seconds_.begin(),
                                  component_seconds_.end());
  return result;
}

}  // namespace dopf::core
