#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "core/packed_solvers.hpp"

/// The per-entry update expressions of Algorithm 1 over the packed SoA
/// storage. Every execution backend (serial, threaded, SIMT single- and
/// multi-device) calls these same inline kernels, so the floating-point
/// expression and summation order of each update exist in exactly one
/// place — which is what makes cross-backend bit-identity a structural
/// property instead of a test-enforced coincidence.
namespace dopf::core::kernels {

/// Global update (18), one global variable i:
///   x_i = clip((sum_{copies} (rho z - lambda) - c_i) / (rho deg_i)).
/// The CSR gather visits z positions in ascending order (see
/// PackedLocalSolvers::build), fixing the summation order.
inline void global_entry(const PackedLocalSolvers& p, const double* z,
                         const double* lambda, double rho, std::size_t i,
                         double* x) {
  const std::int64_t p0 = p.gather_ptr[i];
  const std::int64_t p1 = p.gather_ptr[i + 1];
  double acc = 0.0;
  for (std::int64_t k = p0; k < p1; ++k) {
    const std::int64_t pos = p.gather_pos[k];
    acc += rho * z[pos] - lambda[pos];
  }
  const double deg = static_cast<double>(p1 - p0);
  const double xhat = (acc - p.c[i]) / (rho * deg);
  x[i] = std::min(std::max(xhat, p.lb[i]), p.ub[i]);
}

/// Local update (15), staging half for component s:
///   y_s = B_s x + lambda_s / rho, written into the scratch pool.
inline void stage_component(const PackedLocalSolvers& p, const double* x,
                            const double* lambda, double rho, std::size_t s,
                            double* y_pool) {
  const std::size_t ns = static_cast<std::size_t>(p.comp_nvars[s]);
  const std::int64_t off = p.comp_offset[s];
  double* y = y_pool + off;
  for (std::size_t j = 0; j < ns; ++j) {
    const std::int64_t pos = off + static_cast<std::int64_t>(j);
    y[j] = x[p.global_idx[pos]] + lambda[pos] / rho;
  }
}

/// Local update (15), projection half for component s:
///   x_s = bbar_s - Abar_s y_s   (the projection form; dense matvec over the
/// packed row-major Abar_s block).
inline void project_component(const PackedLocalSolvers& p, std::size_t s,
                              const double* y_pool, double* z) {
  const std::size_t ns = static_cast<std::size_t>(p.comp_nvars[s]);
  const std::int64_t off = p.comp_offset[s];
  const std::int64_t aoff = p.abar_offset[s];
  const double* y = y_pool + off;
  for (std::size_t i = 0; i < ns; ++i) {
    const double* row = p.abar.data() + aoff + static_cast<std::int64_t>(i * ns);
    double sum = 0.0;
    for (std::size_t j = 0; j < ns; ++j) sum += row[j] * y[j];
    z[off + static_cast<std::int64_t>(i)] =
        p.bbar[off + static_cast<std::int64_t>(i)] - sum;
  }
}

/// Dual update (12), one z position: lambda += rho (B x - x_s).
inline void dual_entry(const PackedLocalSolvers& p, const double* x,
                       const double* z, double rho, std::size_t pos,
                       double* lambda) {
  lambda[pos] += rho * (x[p.global_idx[pos]] - z[pos]);
}

}  // namespace dopf::core::kernels
