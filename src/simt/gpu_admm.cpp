#include "simt/gpu_admm.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/vector_ops.hpp"

namespace dopf::simt {

using dopf::core::AdmmResult;
using dopf::core::IterationRecord;
using dopf::core::LocalSolvers;
using dopf::opf::Component;
using dopf::opf::DistributedProblem;

std::size_t DeviceProblem::bytes() const {
  return sizeof(std::int64_t) * (comp_offset.size() + abar_offset.size() +
                                 gather_ptr.size() + gather_pos.size()) +
         sizeof(int) * (comp_nvars.size() + global_idx.size()) +
         sizeof(double) *
             (abar.size() + bbar.size() + c.size() + lb.size() + ub.size());
}

DeviceProblem DeviceProblem::build(const DistributedProblem& problem,
                                   const LocalSolvers& solvers) {
  DeviceProblem img;
  const std::size_t S = problem.components.size();
  img.comp_offset.reserve(S);
  img.abar_offset.reserve(S);
  img.comp_nvars.reserve(S);

  std::int64_t zoff = 0, aoff = 0;
  for (std::size_t s = 0; s < S; ++s) {
    const Component& comp = problem.components[s];
    const auto& proj = solvers.projectors[s];
    const std::size_t ns = comp.num_vars();
    img.comp_offset.push_back(zoff);
    img.abar_offset.push_back(aoff);
    img.comp_nvars.push_back(static_cast<int>(ns));

    const auto& abar = proj.abar();
    img.abar.insert(img.abar.end(), abar.data().begin(), abar.data().end());
    img.bbar.insert(img.bbar.end(), proj.bbar().begin(), proj.bbar().end());
    img.global_idx.insert(img.global_idx.end(), comp.global.begin(),
                          comp.global.end());
    zoff += static_cast<std::int64_t>(ns);
    aoff += static_cast<std::int64_t>(ns * ns);
  }

  const std::size_t n = problem.num_vars;
  img.c = problem.c;
  img.lb = problem.lb;
  img.ub = problem.ub;
  // Gather lists: z positions per global variable, in ascending z order so
  // GPU-path summation matches the CPU scatter order bit-for-bit.
  img.gather_ptr.assign(n + 1, 0);
  for (int g : img.global_idx) ++img.gather_ptr[g + 1];
  for (std::size_t i = 0; i < n; ++i) {
    img.gather_ptr[i + 1] += img.gather_ptr[i];
  }
  img.gather_pos.resize(img.global_idx.size());
  std::vector<std::int64_t> cursor(img.gather_ptr.begin(),
                                   img.gather_ptr.end() - 1);
  for (std::size_t pos = 0; pos < img.global_idx.size(); ++pos) {
    img.gather_pos[cursor[img.global_idx[pos]]++] =
        static_cast<std::int64_t>(pos);
  }
  return img;
}

GpuSolverFreeAdmm::GpuSolverFreeAdmm(const DistributedProblem& problem,
                                     GpuAdmmOptions options, Device device)
    : problem_(&problem),
      options_(options),
      device_(std::move(device)),
      rho_(options.admm.rho) {
  const LocalSolvers solvers = LocalSolvers::precompute(problem);
  image_ = DeviceProblem::build(problem, solvers);

  x_ = problem.x0;
  z_.assign(image_.total_local(), 0.0);
  z_prev_.assign(image_.total_local(), 0.0);
  lambda_.assign(image_.total_local(), 0.0);
  y_scratch_.assign(image_.total_local(), 0.0);
  for (std::size_t pos = 0; pos < z_.size(); ++pos) {
    z_[pos] = problem.x0[image_.global_idx[pos]];
  }
  z_prev_ = z_;
  upload();
}

void GpuSolverFreeAdmm::upload() {
  device_.record_transfer(image_.bytes() +
                          sizeof(double) * (x_.size() + z_.size() +
                                            lambda_.size()));
}

void GpuSolverFreeAdmm::global_update() {
  // One thread per global variable (Sec. IV-C): the Gram matrix B'B is
  // diagonal, so each entry is an independent gather + clip.
  const std::size_t n = image_.num_global();
  const int T = options_.elementwise_block;
  const int blocks = static_cast<int>((n + T - 1) / T);
  device_.launch("global_update", blocks, T, [&](BlockContext& ctx) {
    const std::size_t begin = static_cast<std::size_t>(ctx.block_index) * T;
    const std::size_t end = std::min(n, begin + T);
    double max_flops = 0.0, max_bytes = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      const std::int64_t p0 = image_.gather_ptr[i];
      const std::int64_t p1 = image_.gather_ptr[i + 1];
      double acc = 0.0;
      for (std::int64_t k = p0; k < p1; ++k) {
        const std::int64_t pos = image_.gather_pos[k];
        acc += rho_ * z_[pos] - lambda_[pos];
      }
      const double deg = static_cast<double>(p1 - p0);
      const double xhat = (acc - image_.c[i]) / (rho_ * deg);
      x_[i] = std::min(std::max(xhat, image_.lb[i]), image_.ub[i]);
      max_flops = std::max(max_flops, 3.0 * deg + 5.0);
      max_bytes = std::max(max_bytes, 24.0 * deg + 40.0);
    }
    ctx.charge(end - begin, max_flops, max_bytes);
  });
}

void GpuSolverFreeAdmm::local_update() {
  // One block per component, T threads per block (Sec. IV-D): the block
  // first stages y_s = B_s x + lambda_s / rho cooperatively, then thread t
  // computes entries t, t+T, ... of x_s = bbar_s - Abar'... (the projection
  // form of (15), matching the CPU path exactly).
  z_prev_.swap(z_);
  const int T = options_.threads_per_block;
  device_.launch(
      "local_update", static_cast<int>(image_.num_components()), T,
      [&](BlockContext& ctx) {
        const std::size_t s = static_cast<std::size_t>(ctx.block_index);
        const std::size_t ns = image_.comp_nvars[s];
        const std::int64_t off = image_.comp_offset[s];
        const std::int64_t aoff = image_.abar_offset[s];
        double* y = y_scratch_.data() + off;
        for (std::size_t j = 0; j < ns; ++j) {
          y[j] = x_[image_.global_idx[off + static_cast<std::int64_t>(j)]] +
                 lambda_[off + static_cast<std::int64_t>(j)] / rho_;
        }
        ctx.charge(ns, 3.0, 28.0);  // staging pass
        for (std::size_t i = 0; i < ns; ++i) {
          const double* row = image_.abar.data() + aoff +
                              static_cast<std::int64_t>(i * ns);
          double sum = 0.0;
          for (std::size_t j = 0; j < ns; ++j) sum += row[j] * y[j];
          z_[off + static_cast<std::int64_t>(i)] =
              image_.bbar[off + static_cast<std::int64_t>(i)] - sum;
        }
        ctx.charge(ns, 2.0 * static_cast<double>(ns) + 1.0,
                   8.0 * static_cast<double>(ns) + 24.0);
      });
}

void GpuSolverFreeAdmm::dual_update() {
  const std::size_t total = image_.total_local();
  const int T = options_.elementwise_block;
  const int blocks = static_cast<int>((total + T - 1) / T);
  device_.launch("dual_update", blocks, T, [&](BlockContext& ctx) {
    const std::size_t begin = static_cast<std::size_t>(ctx.block_index) * T;
    const std::size_t end = std::min(total, begin + T);
    for (std::size_t pos = begin; pos < end; ++pos) {
      lambda_[pos] += rho_ * (x_[image_.global_idx[pos]] - z_[pos]);
    }
    ctx.charge(end - begin, 3.0, 44.0);
  });
}

IterationRecord GpuSolverFreeAdmm::compute_residuals(int iteration) const {
  // Functional twin of SolverFreeAdmm::compute_residuals (same summation
  // order); charged as a fused reduction kernel.
  IterationRecord rec;
  rec.iteration = iteration;
  rec.rho = rho_;
  double pres2 = 0.0, bx2 = 0.0, z2 = 0.0, dz2 = 0.0, l2 = 0.0;
  const std::size_t total = image_.total_local();
  for (std::size_t pos = 0; pos < total; ++pos) {
    const double bx = x_[image_.global_idx[pos]];
    const double d = bx - z_[pos];
    pres2 += d * d;
    bx2 += bx * bx;
    z2 += z_[pos] * z_[pos];
    const double dz = z_[pos] - z_prev_[pos];
    dz2 += dz * dz;
    l2 += lambda_[pos] * lambda_[pos];
  }
  rec.primal_residual = std::sqrt(pres2);
  rec.dual_residual = rho_ * std::sqrt(dz2);
  const auto& opt = options_.admm;
  rec.eps_primal = opt.eps_rel * std::sqrt(std::max(bx2, z2));
  rec.eps_dual = opt.eps_rel * std::sqrt(l2);

  // Reduction cost (const_cast-free: ledger updates happen in the non-const
  // solve loop; here we only price it when called through solve()).
  return rec;
}

bool GpuSolverFreeAdmm::termination_satisfied(
    const IterationRecord& rec) const {
  return rec.primal_residual <= rec.eps_primal &&
         rec.dual_residual <= rec.eps_dual;
}

AdmmResult GpuSolverFreeAdmm::solve() {
  AdmmResult result;
  const auto& opt = options_.admm;
  int recorded = 0;
  for (int t = 1; t <= opt.max_iterations; ++t) {
    global_update();
    local_update();
    dual_update();
    ++iterations_run_;
    result.iterations = t;
    if (t % opt.check_every == 0) {
      const IterationRecord rec = compute_residuals(t);
      // Price the residual reduction as an elementwise kernel + d2h of the
      // five partial sums.
      const std::size_t total = image_.total_local();
      const int T = options_.elementwise_block;
      device_.launch("residuals", static_cast<int>((total + T - 1) / T), T,
                     [&](BlockContext& ctx) {
                       const std::size_t begin =
                           static_cast<std::size_t>(ctx.block_index) * T;
                       const std::size_t end = std::min(total, begin + T);
                       ctx.charge(end - begin, 10.0, 48.0);
                     });
      device_.record_transfer(5 * sizeof(double));
      if (++recorded % opt.record_every == 0) result.history.push_back(rec);
      result.primal_residual = rec.primal_residual;
      result.dual_residual = rec.dual_residual;
      if (termination_satisfied(rec)) {
        result.converged = true;
        break;
      }
    }
  }
  result.x.assign(x_.begin(), x_.end());
  result.objective = dopf::linalg::dot(problem_->c, x_);
  result.final_rho = rho_;
  // Report *simulated* seconds in the timing breakdown.
  const auto& by = device_.ledger().by_kernel;
  auto get = [&](const char* k) {
    const auto it = by.find(k);
    return it == by.end() ? 0.0 : it->second;
  };
  result.timing.global_update = get("global_update");
  result.timing.local_update = get("local_update");
  result.timing.dual_update = get("dual_update");
  result.timing.residuals = get("residuals");
  result.timing.iterations = iterations_run_;
  return result;
}

GpuSolverFreeAdmm::KernelAverages GpuSolverFreeAdmm::kernel_averages() const {
  KernelAverages avg;
  if (iterations_run_ == 0) return avg;
  const auto& by = device_.ledger().by_kernel;
  auto get = [&](const char* k) {
    const auto it = by.find(k);
    return it == by.end() ? 0.0
                          : it->second / static_cast<double>(iterations_run_);
  };
  avg.global_update = get("global_update");
  avg.local_update = get("local_update");
  avg.dual_update = get("dual_update");
  return avg;
}

double local_update_kernel_seconds(const Device& device,
                                   const DeviceProblem& image,
                                   std::span<const std::size_t> components,
                                   int threads_per_block) {
  const double tf = device.flop_seconds();
  const double tb = device.byte_seconds();
  const int T = threads_per_block;
  double total = 0.0, worst = 0.0;
  for (std::size_t s : components) {
    const double ns = static_cast<double>(image.comp_nvars[s]);
    const double rounds = std::ceil(ns / static_cast<double>(T));
    const double stage = rounds * (3.0 * tf + 28.0 * tb);
    const double dot = rounds * ((2.0 * ns + 1.0) * tf + (8.0 * ns + 24.0) * tb);
    const double block = stage + dot;
    total += block;
    worst = std::max(worst, block);
  }
  const double conc =
      static_cast<double>(device.concurrent_blocks(threads_per_block));
  return device.spec().kernel_launch_us * 1e-6 +
         std::max(total / conc, worst);
}

}  // namespace dopf::simt
