#include "simt/gpu_admm.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/vector_ops.hpp"

namespace dopf::simt {

using dopf::core::AdmmResult;
using dopf::core::IterationRecord;
using dopf::core::LocalSolvers;
using dopf::core::PackedState;
using dopf::core::ResidualSums;
using dopf::opf::DistributedProblem;

GpuSolverFreeAdmm::GpuSolverFreeAdmm(const DistributedProblem& problem,
                                     GpuAdmmOptions options, Device device)
    : problem_(&problem),
      options_(options),
      backend_(std::move(device),
               SimtBackend::Config{options.threads_per_block,
                                   options.elementwise_block}),
      rho_(options.admm.rho) {
  // Single-shot wrapper: precompute through a throwaway SolveModel (same
  // factorization path as the session layers, byte-identical image).
  const dopf::core::SolveModel model(problem, options.admm.projector);
  image_ = model.make_pack();
  init_state();
}

GpuSolverFreeAdmm::GpuSolverFreeAdmm(const dopf::core::SolveModel& model,
                                     GpuAdmmOptions options, Device device)
    : problem_(&model.problem()),
      options_(options),
      backend_(std::move(device),
               SimtBackend::Config{options.threads_per_block,
                                   options.elementwise_block}),
      rho_(options.admm.rho) {
  image_ = model.make_pack();
  init_state();
}

void GpuSolverFreeAdmm::init_state() {
  x_ = image_.x0;
  z_.assign(image_.total_local(), 0.0);
  z_prev_.assign(image_.total_local(), 0.0);
  lambda_.assign(image_.total_local(), 0.0);
  y_scratch_.assign(image_.total_local(), 0.0);
  for (std::size_t pos = 0; pos < z_.size(); ++pos) {
    z_[pos] = image_.x0[image_.global_idx[pos]];
  }
  z_prev_ = z_;
  upload();
}

PackedState GpuSolverFreeAdmm::packed_state() {
  PackedState st;
  st.rho = rho_;
  st.x = x_;
  st.z = z_;
  st.z_prev = z_prev_;
  st.lambda = lambda_;
  st.y = y_scratch_;
  return st;
}

void GpuSolverFreeAdmm::upload() {
  backend_.device().record_transfer(
      image_.bytes() +
      sizeof(double) * (x_.size() + z_.size() + lambda_.size()));
}

void GpuSolverFreeAdmm::global_update() {
  PackedState st = packed_state();
  backend_.global_update(image_, st);
}

void GpuSolverFreeAdmm::local_update() {
  z_prev_.swap(z_);
  PackedState st = packed_state();
  backend_.local_update(image_, st);
}

void GpuSolverFreeAdmm::dual_update() {
  PackedState st = packed_state();
  backend_.dual_update(image_, st);
}

IterationRecord GpuSolverFreeAdmm::compute_residuals(int iteration) {
  IterationRecord rec;
  rec.iteration = iteration;
  rec.rho = rho_;
  const PackedState st = packed_state();
  const ResidualSums sums = backend_.residual_sums(image_, st);
  const auto& opt = options_.admm;
  rec.primal_residual = std::sqrt(sums.pres2);
  rec.dual_residual = rho_ * std::sqrt(sums.dz2);
  rec.eps_primal = opt.eps_rel * std::sqrt(std::max(sums.bx2, sums.z2));
  rec.eps_dual = opt.eps_rel * std::sqrt(sums.l2);
  return rec;
}

bool GpuSolverFreeAdmm::termination_satisfied(
    const IterationRecord& rec) const {
  return rec.primal_residual <= rec.eps_primal &&
         rec.dual_residual <= rec.eps_dual;
}

AdmmResult GpuSolverFreeAdmm::solve() {
  AdmmResult result;
  const auto& opt = options_.admm;
  int recorded = 0;
  for (int t = 1; t <= opt.max_iterations; ++t) {
    global_update();
    local_update();
    dual_update();
    ++iterations_run_;
    result.iterations = t;
    if (t % opt.check_every == 0) {
      const IterationRecord rec = compute_residuals(t);
      if (++recorded % opt.record_every == 0) result.history.push_back(rec);
      result.primal_residual = rec.primal_residual;
      result.dual_residual = rec.dual_residual;
      if (termination_satisfied(rec)) {
        result.converged = true;
        break;
      }
      if (opt.cancel && opt.cancel->cancelled()) {
        result.status = dopf::core::AdmmStatus::kCancelled;
        break;
      }
    }
  }
  result.x.assign(x_.begin(), x_.end());
  result.objective = dopf::linalg::dot(problem_->c, x_);
  result.final_rho = rho_;
  // Report *simulated* seconds in the timing breakdown.
  const auto& by = backend_.device().ledger().by_kernel;
  auto get = [&](const char* k) {
    const auto it = by.find(k);
    return it == by.end() ? 0.0 : it->second;
  };
  result.timing.global_update = get("global_update");
  result.timing.local_update = get("local_update");
  result.timing.dual_update = get("dual_update");
  result.timing.residuals = get("residuals");
  result.timing.iterations = iterations_run_;
  return result;
}

GpuSolverFreeAdmm::KernelAverages GpuSolverFreeAdmm::kernel_averages() const {
  KernelAverages avg;
  if (iterations_run_ == 0) return avg;
  const auto& by = backend_.device().ledger().by_kernel;
  auto get = [&](const char* k) {
    const auto it = by.find(k);
    return it == by.end() ? 0.0
                          : it->second / static_cast<double>(iterations_run_);
  };
  avg.global_update = get("global_update");
  avg.local_update = get("local_update");
  avg.dual_update = get("dual_update");
  return avg;
}

double local_update_kernel_seconds(const Device& device,
                                   const DeviceProblem& image,
                                   std::span<const std::size_t> components,
                                   int threads_per_block) {
  const double tf = device.flop_seconds();
  const double tb = device.byte_seconds();
  const int T = threads_per_block;
  double total = 0.0, worst = 0.0;
  for (std::size_t s : components) {
    const double ns = static_cast<double>(image.comp_nvars[s]);
    const double rounds = std::ceil(ns / static_cast<double>(T));
    const double stage = rounds * (3.0 * tf + 28.0 * tb);
    const double dot = rounds * ((2.0 * ns + 1.0) * tf + (8.0 * ns + 24.0) * tb);
    const double block = stage + dot;
    total += block;
    worst = std::max(worst, block);
  }
  const double conc =
      static_cast<double>(device.concurrent_blocks(threads_per_block));
  return device.spec().kernel_launch_us * 1e-6 +
         std::max(total / conc, worst);
}

}  // namespace dopf::simt
