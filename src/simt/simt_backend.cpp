#include "simt/simt_backend.hpp"

#include <algorithm>

#include "core/packed_kernels.hpp"

namespace dopf::simt {

using dopf::core::PackedLocalSolvers;
using dopf::core::PackedState;
using dopf::core::ResidualSums;
namespace kernels = dopf::core::kernels;

SimtBackend::SimtBackend(Device device, Config config)
    : device_(std::move(device)), config_(config) {}

void SimtBackend::global_update(const PackedLocalSolvers& pack,
                                PackedState& state) {
  // One thread per global variable (Sec. IV-C): the Gram matrix B'B is
  // diagonal, so each entry is an independent gather + clip.
  const std::size_t n = pack.num_global();
  const int T = config_.elementwise_block;
  const int blocks = static_cast<int>((n + T - 1) / T);
  device_.launch("global_update", blocks, T, [&](BlockContext& ctx) {
    const std::size_t begin = static_cast<std::size_t>(ctx.block_index) * T;
    const std::size_t end = std::min(n, begin + T);
    double max_flops = 0.0, max_bytes = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      kernels::global_entry(pack, state.z.data(), state.lambda.data(),
                            state.rho, i, state.x.data());
      const double deg =
          static_cast<double>(pack.gather_ptr[i + 1] - pack.gather_ptr[i]);
      max_flops = std::max(max_flops, 3.0 * deg + 5.0);
      max_bytes = std::max(max_bytes, 24.0 * deg + 40.0);
    }
    ctx.charge(end - begin, max_flops, max_bytes);
  });
}

void SimtBackend::local_update(const PackedLocalSolvers& pack,
                               PackedState& state) {
  // One block per component, T threads per block (Sec. IV-D): the block
  // first stages y_s = B_s x + lambda_s / rho cooperatively, then thread t
  // computes entries t, t+T, ... of x_s = bbar_s - Abar_s y_s.
  const int T = config_.threads_per_block;
  device_.launch("local_update", static_cast<int>(pack.num_components()), T,
                 [&](BlockContext& ctx) {
                   const std::size_t s =
                       static_cast<std::size_t>(ctx.block_index);
                   const std::size_t ns =
                       static_cast<std::size_t>(pack.comp_nvars[s]);
                   kernels::stage_component(pack, state.x.data(),
                                            state.lambda.data(), state.rho, s,
                                            state.y.data());
                   ctx.charge(ns, 3.0, 28.0);  // staging pass
                   kernels::project_component(pack, s, state.y.data(),
                                              state.z.data());
                   ctx.charge(ns, 2.0 * static_cast<double>(ns) + 1.0,
                              8.0 * static_cast<double>(ns) + 24.0);
                 });
}

void SimtBackend::dual_update(const PackedLocalSolvers& pack,
                              PackedState& state) {
  const std::size_t total = pack.total_local();
  const int T = config_.elementwise_block;
  const int blocks = static_cast<int>((total + T - 1) / T);
  device_.launch("dual_update", blocks, T, [&](BlockContext& ctx) {
    const std::size_t begin = static_cast<std::size_t>(ctx.block_index) * T;
    const std::size_t end = std::min(total, begin + T);
    for (std::size_t pos = begin; pos < end; ++pos) {
      kernels::dual_entry(pack, state.x.data(), state.z.data(), state.rho,
                          pos, state.lambda.data());
    }
    ctx.charge(end - begin, 3.0, 44.0);
  });
}

ResidualSums SimtBackend::residual_sums(const PackedLocalSolvers& pack,
                                        const PackedState& state) {
  // Same deterministic chunk-tree reduction as every other backend; priced
  // as one fused elementwise reduction kernel plus the d2h copy of the five
  // partial sums.
  partials_.assign(dopf::core::residual_num_chunks(pack.total_local()),
                   ResidualSums{});
  for (std::size_t k = 0; k < partials_.size(); ++k) {
    dopf::core::residual_chunk(pack, state, k, &partials_[k]);
  }
  const std::size_t total = pack.total_local();
  const int T = config_.elementwise_block;
  device_.launch("residuals", static_cast<int>((total + T - 1) / T), T,
                 [&](BlockContext& ctx) {
                   const std::size_t begin =
                       static_cast<std::size_t>(ctx.block_index) * T;
                   const std::size_t end = std::min(total, begin + T);
                   ctx.charge(end - begin, 10.0, 48.0);
                 });
  device_.record_transfer(5 * sizeof(double));
  return dopf::core::combine_residual_chunks(partials_);
}

}  // namespace dopf::simt
