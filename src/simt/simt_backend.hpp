#pragma once

#include <vector>

#include "core/backend.hpp"
#include "simt/device.hpp"

namespace dopf::simt {

/// SIMT execution backend: runs the packed update kernels bit-exactly on the
/// host (same core::kernels expressions as the serial/threaded backends)
/// while charging a simulated GPU Device ledger per launch — the grid/block
/// mapping of the paper's Sec. IV-C/IV-D (one block per component for the
/// local update, elementwise grids for global/dual, a fused reduction kernel
/// plus a 5-double d2h transfer for the residuals).
class SimtBackend final : public dopf::core::ExecutionBackend {
 public:
  struct Config {
    /// Threads per block T for the local-update kernel (paper sweeps 1..64).
    int threads_per_block = 32;
    /// Threads per block for the elementwise global/dual/residual kernels.
    int elementwise_block = 256;
  };

  SimtBackend() : SimtBackend(Device()) {}
  explicit SimtBackend(Device device) : SimtBackend(std::move(device), Config()) {}
  SimtBackend(Device device, Config config);

  const char* name() const override { return "simt"; }
  void global_update(const dopf::core::PackedLocalSolvers& pack,
                     dopf::core::PackedState& state) override;
  void local_update(const dopf::core::PackedLocalSolvers& pack,
                    dopf::core::PackedState& state) override;
  void dual_update(const dopf::core::PackedLocalSolvers& pack,
                   dopf::core::PackedState& state) override;
  dopf::core::ResidualSums residual_sums(
      const dopf::core::PackedLocalSolvers& pack,
      const dopf::core::PackedState& state) override;

  const Device& device() const { return device_; }
  Device& device() { return device_; }
  const Config& config() const { return config_; }

 private:
  Device device_;
  Config config_;
  std::vector<dopf::core::ResidualSums> partials_;
};

}  // namespace dopf::simt
