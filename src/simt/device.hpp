#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

/// SIMT execution simulator.
///
/// Substitution note (DESIGN.md): the paper runs CUDA.jl kernels on NVIDIA
/// A100 GPUs, which this environment does not have. This module provides a
/// functional stand-in: kernels execute bit-exactly on the host (so the
/// algorithm's trajectory is identical to a real GPU run, which is also what
/// the paper's Fig. 2 demonstrates), while a calibrated cost model
/// accumulates the *simulated* execution time a grid/block/thread launch
/// would take — including launch overhead, SM occupancy (work-span
/// makespan), per-thread arithmetic/memory cost, and host<->device transfer
/// cost. Timing claims derived from it are about shape, not absolute
/// seconds.
namespace dopf::simt {

/// Hardware parameters of the simulated device. Defaults approximate one
/// NVIDIA A100-40GB (the paper's Swing nodes).
struct DeviceSpec {
  std::string name = "sim-a100";
  int sm_count = 108;
  int warp_size = 32;
  int max_threads_per_block = 1024;
  /// Resident blocks per SM cap (occupancy limiter for small blocks).
  int max_blocks_per_sm = 16;
  /// Per-thread double-precision throughput (FMA = 2 flops/cycle).
  double clock_ghz = 1.41;
  double flops_per_cycle = 2.0;
  /// Effective global-memory bandwidth.
  double mem_bandwidth_gb_s = 1400.0;
  /// Fixed kernel launch overhead.
  double kernel_launch_us = 4.0;
  /// Host <-> device transfer (PCIe) parameters.
  double pcie_bandwidth_gb_s = 12.0;
  double pcie_latency_us = 8.0;
};

/// Cost charged by a kernel's block for one thread-parallel section.
struct BlockContext {
  int block_index = 0;
  int threads = 1;

  /// Charge a section where `items` independent work items are distributed
  /// round-robin over the block's threads; each item costs the given flops
  /// and bytes. The block's simulated time grows by
  /// ceil(items / threads) * per-item time (the SIMT serialization the
  /// paper's thread sweep in Fig. 3 exercises).
  void charge(std::size_t items, double flops_per_item, double bytes_per_item);

  double seconds = 0.0;  ///< accumulated simulated block time

 private:
  friend class Device;
  double flop_time_s_ = 0.0;
  double byte_time_s_ = 0.0;
};

/// Accumulated simulated time, by category and kernel name.
struct TimeLedger {
  double kernel_seconds = 0.0;
  double transfer_seconds = 0.0;
  std::map<std::string, double> by_kernel;

  double total() const { return kernel_seconds + transfer_seconds; }
  void clear() {
    kernel_seconds = transfer_seconds = 0.0;
    by_kernel.clear();
  }
};

/// A simulated GPU. Launch kernels on it and read the ledger.
class Device {
 public:
  explicit Device(DeviceSpec spec = {});

  const DeviceSpec& spec() const { return spec_; }

  /// Execute `body(ctx)` once per block (serially, bit-exact), then charge
  /// the grid's makespan under the occupancy model:
  ///   time = launch_overhead + max(sum(block times)/concurrent_blocks,
  ///                                max block time).
  void launch(const std::string& kernel_name, int num_blocks,
              int threads_per_block,
              const std::function<void(BlockContext&)>& body);

  /// Charge a host->device or device->host copy of `bytes`.
  void record_transfer(std::size_t bytes);

  const TimeLedger& ledger() const { return ledger_; }
  TimeLedger& ledger() { return ledger_; }

  /// Concurrent blocks the device sustains for a given block size.
  int concurrent_blocks(int threads_per_block) const;

  /// Per-thread cost coefficients (exposed for pure cost estimation).
  double flop_seconds() const { return flop_time_s_; }
  double byte_seconds() const { return byte_time_s_; }

 private:
  DeviceSpec spec_;
  TimeLedger ledger_;
  double flop_time_s_;
  double byte_time_s_;
};

}  // namespace dopf::simt
