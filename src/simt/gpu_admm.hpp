#pragma once

#include <cstdint>
#include <vector>

#include "core/admm.hpp"
#include "core/solve_model.hpp"
#include "opf/decompose.hpp"
#include "simt/device.hpp"
#include "simt/simt_backend.hpp"

namespace dopf::simt {

/// Flattened, "device-resident" image of the distributed problem — the
/// arrays a CUDA implementation would upload once before the ADMM loop
/// (Sec. IV-C/IV-D). This IS the shared packed SoA storage every execution
/// backend runs over; the SIMT path adds nothing on top of it.
using DeviceProblem = dopf::core::PackedLocalSolvers;

struct GpuAdmmOptions {
  /// Note: the simulated GPU paths execute the paper's Algorithm 1 exactly;
  /// the CPU-side extension fields of AdmmOptions (adaptive_rho, relaxation,
  /// quantize_bits) are ignored here so GPU runs stay bit-comparable to the
  /// plain CPU path.
  dopf::core::AdmmOptions admm;
  /// Threads per block T for the local-update kernel (paper sweeps 1..64).
  int threads_per_block = 32;
  /// Threads per block for the elementwise global/dual kernels.
  int elementwise_block = 256;
};

/// GPU-simulated execution of Algorithm 1, driving the SimtBackend over the
/// packed problem image.
///
/// Produces iterates *bit-identical* to core::SolverFreeAdmm (both paths
/// execute the same core::kernels expressions over the same packed pool),
/// which is the property the paper's Fig. 2 demonstrates for CPU vs GPU;
/// the simulated ledger provides the per-kernel timing for Figs. 3-4.
class GpuSolverFreeAdmm {
 public:
  /// Single-shot wrapper: precomputes through an internal SolveModel.
  GpuSolverFreeAdmm(const dopf::opf::DistributedProblem& problem,
                    GpuAdmmOptions options, Device device = Device());
  /// Session path: upload an existing model's precompute (no
  /// factorization here). `model` must outlive the solver.
  GpuSolverFreeAdmm(const dopf::core::SolveModel& model,
                    GpuAdmmOptions options, Device device = Device());

  dopf::core::AdmmResult solve();

  // Step API, mirroring the CPU solver.
  void upload();  ///< charge the one-time h2d transfer of the problem image
  void global_update();
  void local_update();
  void dual_update();
  dopf::core::IterationRecord compute_residuals(int iteration);
  bool termination_satisfied(const dopf::core::IterationRecord& rec) const;

  std::span<const double> x() const { return x_; }
  std::span<const double> z() const { return z_; }
  const Device& device() const { return backend_.device(); }
  Device& device() { return backend_.device(); }
  const DeviceProblem& image() const { return image_; }

  /// Simulated seconds per update kind, averaged over iterations run.
  struct KernelAverages {
    double global_update = 0.0;
    double local_update = 0.0;
    double dual_update = 0.0;
    double total() const { return global_update + local_update + dual_update; }
  };
  KernelAverages kernel_averages() const;

 private:
  dopf::core::PackedState packed_state();
  void init_state();

  const dopf::opf::DistributedProblem* problem_;
  GpuAdmmOptions options_;
  DeviceProblem image_;
  SimtBackend backend_;
  double rho_;
  int iterations_run_ = 0;

  std::vector<double> x_, z_, z_prev_, lambda_, y_scratch_;
};

/// Pure cost helper: simulated seconds of one local-update kernel launch for
/// the given subset of components with T threads per block. Used by the
/// virtual cluster to price multi-GPU partitions without re-executing.
double local_update_kernel_seconds(const Device& device,
                                   const DeviceProblem& image,
                                   std::span<const std::size_t> components,
                                   int threads_per_block);

}  // namespace dopf::simt
