#pragma once

#include <cstdint>
#include <vector>

#include "core/admm.hpp"
#include "opf/decompose.hpp"
#include "simt/device.hpp"

namespace dopf::simt {

/// Flattened, "device-resident" image of the distributed problem — the
/// arrays a CUDA implementation would upload once before the ADMM loop
/// (Sec. IV-C/IV-D): concatenated Abar_s / bbar_s blocks, the consensus map,
/// and the per-variable gather lists that make the diagonal global update
/// (18) a one-thread-per-entry kernel.
struct DeviceProblem {
  // Per component s:
  std::vector<std::int64_t> comp_offset;   ///< start of x_s within z
  std::vector<std::int64_t> abar_offset;   ///< start of Abar_s (row-major)
  std::vector<int> comp_nvars;             ///< n_s
  // Concatenated payloads:
  std::vector<double> abar;      ///< all Abar_s, row-major per component
  std::vector<double> bbar;      ///< all bbar_s
  std::vector<int> global_idx;   ///< z position -> global variable
  // Per global variable i (CSR over z positions holding copies of i):
  std::vector<std::int64_t> gather_ptr;
  std::vector<std::int64_t> gather_pos;
  std::vector<double> c, lb, ub;

  std::size_t num_components() const { return comp_nvars.size(); }
  std::size_t num_global() const { return c.size(); }
  std::size_t total_local() const { return global_idx.size(); }
  /// Device-resident footprint in bytes (diagnostics).
  std::size_t bytes() const;

  static DeviceProblem build(const dopf::opf::DistributedProblem& problem,
                             const dopf::core::LocalSolvers& solvers);
};

struct GpuAdmmOptions {
  /// Note: the simulated GPU paths execute the paper's Algorithm 1 exactly;
  /// the CPU-side extension fields of AdmmOptions (adaptive_rho, relaxation,
  /// quantize_bits) are ignored here so GPU runs stay bit-comparable to the
  /// plain CPU path.
  dopf::core::AdmmOptions admm;
  /// Threads per block T for the local-update kernel (paper sweeps 1..64).
  int threads_per_block = 32;
  /// Threads per block for the elementwise global/dual kernels.
  int elementwise_block = 256;
};

/// GPU-simulated execution of Algorithm 1.
///
/// Produces iterates *bit-identical* to core::SolverFreeAdmm (the update
/// expressions and floating-point summation orders match), which is the
/// property the paper's Fig. 2 demonstrates for CPU vs GPU; the simulated
/// ledger provides the per-kernel timing for Figs. 3-4.
class GpuSolverFreeAdmm {
 public:
  GpuSolverFreeAdmm(const dopf::opf::DistributedProblem& problem,
                    GpuAdmmOptions options, Device device = Device());

  dopf::core::AdmmResult solve();

  // Step API, mirroring the CPU solver.
  void upload();  ///< charge the one-time h2d transfer of the problem image
  void global_update();
  void local_update();
  void dual_update();
  dopf::core::IterationRecord compute_residuals(int iteration) const;
  bool termination_satisfied(const dopf::core::IterationRecord& rec) const;

  std::span<const double> x() const { return x_; }
  std::span<const double> z() const { return z_; }
  const Device& device() const { return device_; }
  Device& device() { return device_; }
  const DeviceProblem& image() const { return image_; }

  /// Simulated seconds per update kind, averaged over iterations run.
  struct KernelAverages {
    double global_update = 0.0;
    double local_update = 0.0;
    double dual_update = 0.0;
    double total() const { return global_update + local_update + dual_update; }
  };
  KernelAverages kernel_averages() const;

 private:
  const dopf::opf::DistributedProblem* problem_;
  GpuAdmmOptions options_;
  Device device_;
  DeviceProblem image_;
  double rho_;
  int iterations_run_ = 0;

  std::vector<double> x_, z_, z_prev_, lambda_, y_scratch_;
};

/// Pure cost helper: simulated seconds of one local-update kernel launch for
/// the given subset of components with T threads per block. Used by the
/// virtual cluster to price multi-GPU partitions without re-executing.
double local_update_kernel_seconds(const Device& device,
                                   const DeviceProblem& image,
                                   std::span<const std::size_t> components,
                                   int threads_per_block);

}  // namespace dopf::simt
