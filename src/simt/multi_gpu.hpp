#pragma once

#include <vector>

#include "runtime/comm_model.hpp"
#include "runtime/partition.hpp"
#include "simt/gpu_admm.hpp"

namespace dopf::simt {

struct MultiGpuOptions {
  GpuAdmmOptions gpu;
  std::size_t num_devices = 2;
  /// Hardware model used for every device (defaults to the A100-like spec).
  DeviceSpec device_spec;
  dopf::runtime::CommModel comm;        ///< inter-node MPI model
  dopf::runtime::StagingModel staging;  ///< GPU <-> host PCIe model
};

/// Functional multi-GPU execution of Algorithm 1 (the paper's Sec. IV-E /
/// Fig. 3 middle row): components are block-partitioned across `num_devices`
/// simulated GPUs; device 0 doubles as the aggregator running the global
/// update. Every device executes its kernels bit-exactly (component order is
/// preserved, so results equal the single-device and CPU paths), while the
/// per-iteration *simulated* time accounts for
///   max over devices of the local/dual kernel time
///   + PCIe staging of each device's consensus payload
///   + MPI messages between the aggregator and the other devices.
class MultiGpuSolverFreeAdmm {
 public:
  MultiGpuSolverFreeAdmm(const dopf::opf::DistributedProblem& problem,
                         MultiGpuOptions options);

  dopf::core::AdmmResult solve();

  void global_update();
  void local_update();
  void dual_update();
  dopf::core::IterationRecord compute_residuals(int iteration);

  std::span<const double> x() const { return x_; }
  std::size_t num_devices() const { return devices_.size(); }
  const Device& device(std::size_t d) const { return devices_[d]; }

  /// Average simulated seconds per iteration, by phase (Fig. 3 middle row).
  struct IterationAverages {
    double global_update = 0.0;
    double local_update = 0.0;  ///< kernel span + staging + MPI
    double dual_update = 0.0;
    double total() const { return global_update + local_update + dual_update; }
  };
  IterationAverages iteration_averages() const;

 private:
  const dopf::opf::DistributedProblem* problem_;
  MultiGpuOptions options_;
  DeviceProblem image_;
  std::vector<Device> devices_;
  dopf::runtime::Partition partition_;
  std::vector<std::size_t> payload_vars_;  // per device
  double rho_;
  int iterations_run_ = 0;

  double sim_global_ = 0.0;
  double sim_local_ = 0.0;
  double sim_dual_ = 0.0;

  std::vector<double> x_, z_, z_prev_, lambda_, y_scratch_;

  double launch_local_on(std::size_t d);
  double launch_dual_on(std::size_t d);
};

}  // namespace dopf::simt
