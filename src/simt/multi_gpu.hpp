#pragma once

#include <string>
#include <vector>

#include "runtime/checkpoint.hpp"
#include "runtime/comm_model.hpp"
#include "runtime/fault.hpp"
#include "runtime/health.hpp"
#include "runtime/partition.hpp"
#include "simt/gpu_admm.hpp"

namespace dopf::simt {

struct MultiGpuOptions {
  GpuAdmmOptions gpu;
  std::size_t num_devices = 2;
  /// Hardware model used for every device (defaults to the A100-like spec).
  DeviceSpec device_spec;
  dopf::runtime::CommModel comm;        ///< inter-node MPI model
  dopf::runtime::StagingModel staging;  ///< GPU <-> host PCIe model

  /// Deterministic fault schedule injected into the run (empty = none).
  dopf::runtime::FaultPlan faults;
  /// Reaction to injected faults: message retry/backoff, CRC verification
  /// of consensus payloads, and checkpoint-based device failover.
  dopf::runtime::RecoveryPolicy recovery;
  /// Refresh the in-memory restart checkpoint every N iterations (0 keeps
  /// only the initial state as the restart point).
  int checkpoint_every = 0;
  /// Also persist each checkpoint to this file (empty = in-memory only).
  std::string checkpoint_path;
  /// Label written into persisted checkpoints (e.g. "ieee13").
  std::string label;

  /// Graceful degradation under persistent faults (runtime/health.hpp):
  /// per-device health tracking with bounded-staleness consensus,
  /// quarantine past the staleness bound, and probation-based readmission.
  /// Off by default, and strictly opt-in at the bit level: a run whose
  /// devices never trip the policy is byte-identical to one without it.
  dopf::runtime::DegradePolicy degrade;
};

/// Functional multi-GPU execution of Algorithm 1 (the paper's Sec. IV-E /
/// Fig. 3 middle row): components are block-partitioned across `num_devices`
/// simulated GPUs; the lowest-indexed live device doubles as the aggregator
/// running the global update. Every device executes its kernels bit-exactly
/// (component order is preserved, so results equal the single-device and CPU
/// paths), while the per-iteration *simulated* time accounts for
///   max over devices of the local/dual kernel time
///   + PCIe staging of each device's consensus payload
///   + MPI messages between the aggregator and the other devices.
///
/// Fault tolerance (options.faults / options.recovery): injected message
/// drops and CRC-detected corruption are re-sent with timeout+backoff
/// (priced through the CommModel); stragglers multiply a device's kernel
/// span; a killed device triggers failover — its components are
/// re-partitioned onto the survivors, the consensus state rolls back to the
/// last checkpoint, and the run resumes deterministically, so a recovered
/// run's trace is byte-identical to the fault-free one. Recovery cost is
/// reported in TimingBreakdown::recovery.
///
/// Degraded mode (options.degrade.enabled): persistent pathologies that
/// would livelock the transient machinery (a chronic straggler, a link
/// whose uploads keep failing) are absorbed instead of retried forever. A
/// per-device DeviceHealth tracker (EWMA straggle + consecutive delivery
/// failures) decides when the aggregator stops waiting for a device; the
/// global update then proceeds on that device's last-good contribution
/// (its z / lambda slices freeze) for up to `staleness_bound` iterations.
/// Past the bound the device is quarantined — its components re-partition
/// onto the survivors with NO rollback — and it is readmitted after a
/// clean probation streak. Degraded iterations are counted in
/// TimingBreakdown::degraded_iterations and their cost (give-up timeouts,
/// re-partition traffic) priced in TimingBreakdown::degrade. Traces of a
/// degraded run legitimately diverge bitwise from the fault-free one, but
/// must converge to the same solution within tolerance.
class MultiGpuSolverFreeAdmm {
 public:
  /// Single-shot wrapper: precomputes through an internal SolveModel.
  MultiGpuSolverFreeAdmm(const dopf::opf::DistributedProblem& problem,
                         MultiGpuOptions options);
  /// Session path: distribute an existing model's precompute across the
  /// simulated devices (no factorization here). `model` must outlive the
  /// solver.
  MultiGpuSolverFreeAdmm(const dopf::core::SolveModel& model,
                         MultiGpuOptions options);

  dopf::core::AdmmResult solve();

  void global_update();
  void local_update(int iteration = 0);
  void dual_update(int iteration = 0);
  dopf::core::IterationRecord compute_residuals(int iteration);

  std::span<const double> x() const { return x_; }
  std::span<const double> z() const { return z_; }
  std::size_t num_devices() const { return devices_.size(); }
  std::size_t alive_devices() const;
  const Device& device(std::size_t d) const { return devices_[d]; }

  /// Resume from a persisted checkpoint: the state becomes the restart
  /// point, and solve() continues at checkpoint.iteration + 1.
  void restore_state(const dopf::runtime::AdmmCheckpoint& checkpoint);

  /// Fault-handling counters for the last solve().
  int failovers() const { return failovers_; }
  int message_retries() const { return retries_; }
  /// Simulated seconds spent in failover recovery.
  double recovery_seconds() const { return sim_recovery_; }

  /// Degraded-mode counters for the last solve() (all zero unless
  /// options.degrade.enabled and the policy tripped).
  int degraded_iterations() const { return degraded_iterations_; }
  int quarantines() const { return quarantines_; }
  int readmissions() const { return readmissions_; }
  /// Simulated seconds spent on degradation (give-up timeouts on stale
  /// devices, quarantine/readmission re-partition traffic).
  double degrade_seconds() const { return sim_degrade_; }
  const dopf::runtime::DeviceHealth& device_health(std::size_t d) const {
    return health_[d];
  }

  /// Average simulated seconds per iteration, by phase (Fig. 3 middle row).
  struct IterationAverages {
    double global_update = 0.0;
    double local_update = 0.0;  ///< kernel span + staging + MPI
    double dual_update = 0.0;
    double total() const { return global_update + local_update + dual_update; }
  };
  IterationAverages iteration_averages() const;

 private:
  void init_state();

  const dopf::opf::DistributedProblem* problem_;
  MultiGpuOptions options_;
  DeviceProblem image_;
  std::vector<Device> devices_;
  std::vector<char> alive_;
  std::size_t aggregator_ = 0;
  dopf::runtime::Partition partition_;     // per device; empty when dead
  std::vector<std::size_t> payload_vars_;  // per device
  dopf::runtime::FaultInjector injector_;
  double rho_;
  int start_iteration_ = 0;
  int iterations_run_ = 0;
  int failovers_ = 0;
  int retries_ = 0;

  // Degraded-mode state (all inert unless options_.degrade.enabled).
  std::vector<dopf::runtime::DeviceHealth> health_;  // per device
  std::vector<char> quarantined_;  // per device; re-partitioned away
  std::vector<char> stale_;        // per device, this iteration only
  int degraded_iterations_ = 0;
  int quarantines_ = 0;
  int readmissions_ = 0;

  double sim_global_ = 0.0;
  double sim_local_ = 0.0;
  double sim_dual_ = 0.0;
  double sim_recovery_ = 0.0;
  double sim_degrade_ = 0.0;

  std::vector<double> x_, z_, z_prev_, lambda_, y_scratch_;

  // Restart point: the functional state after checkpoint_.iteration, plus
  // the result-bookkeeping needed to rewind the residual history.
  dopf::runtime::AdmmCheckpoint checkpoint_;
  std::size_t ck_history_size_ = 0;
  int ck_recorded_ = 0;

  double launch_local_on(std::size_t d);
  double launch_dual_on(std::size_t d);
  /// Recompute the partition over the live devices (aggregator = lowest).
  void repartition();
  void take_checkpoint(int iteration, const dopf::core::AdmmResult& result,
                       int recorded);
  /// Handle kill / retry-exhaustion faults scheduled at `iteration`.
  /// Returns true when a failover rolled the state back (the caller must
  /// rewind its iteration counter to checkpoint_.iteration + 1).
  bool process_device_faults(int iteration, dopf::core::AdmmResult* result,
                             int* recorded);
  void fail_over(std::size_t device, dopf::core::AdmmResult* result,
                 int* recorded);
  /// Degraded-mode health pass for `iteration`: feed every device's
  /// observations to its tracker, mark stale devices, and execute pending
  /// quarantines/readmissions. Returns true when this iteration runs
  /// degraded (some device stale or quarantined).
  bool degrade_step(int iteration);
  /// Freeze a stale device's contribution: restore its z slices to the
  /// previous iterate (called after z_prev_/z_ swapped).
  void keep_stale_contribution(std::size_t d);
};

}  // namespace dopf::simt
