#include "simt/device.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dopf::simt {

void BlockContext::charge(std::size_t items, double flops_per_item,
                          double bytes_per_item) {
  if (items == 0) return;
  const std::size_t rounds = (items + threads - 1) / threads;
  seconds += static_cast<double>(rounds) *
             (flops_per_item * flop_time_s_ + bytes_per_item * byte_time_s_);
}

Device::Device(DeviceSpec spec) : spec_(std::move(spec)) {
  // Per-thread arithmetic time. The device-wide throughput is
  // sm_count*warp_size lanes; a single thread sees the per-lane rate.
  flop_time_s_ = 1.0 / (spec_.clock_ghz * 1e9 * spec_.flops_per_cycle);
  // Per-thread effective memory time: the full bandwidth is shared by all
  // concurrently resident lanes; a single thread's share is bandwidth /
  // (sm_count * warp_size).
  const double lanes = static_cast<double>(spec_.sm_count) *
                       static_cast<double>(spec_.warp_size);
  byte_time_s_ = lanes / (spec_.mem_bandwidth_gb_s * 1e9);
}

int Device::concurrent_blocks(int threads_per_block) const {
  const int warps =
      (threads_per_block + spec_.warp_size - 1) / spec_.warp_size;
  const int max_warps_per_sm = 64;  // A100
  const int by_warps = std::max(1, max_warps_per_sm / std::max(1, warps));
  const int per_sm = std::min(spec_.max_blocks_per_sm, by_warps);
  return spec_.sm_count * per_sm;
}

void Device::launch(const std::string& kernel_name, int num_blocks,
                    int threads_per_block,
                    const std::function<void(BlockContext&)>& body) {
  if (threads_per_block < 1 ||
      threads_per_block > spec_.max_threads_per_block) {
    throw std::invalid_argument("Device::launch: bad threads_per_block");
  }
  if (num_blocks < 0) {
    throw std::invalid_argument("Device::launch: negative grid");
  }
  double total_block_time = 0.0;
  double max_block_time = 0.0;
  for (int b = 0; b < num_blocks; ++b) {
    BlockContext ctx;
    ctx.block_index = b;
    ctx.threads = threads_per_block;
    ctx.flop_time_s_ = flop_time_s_;
    ctx.byte_time_s_ = byte_time_s_;
    body(ctx);
    total_block_time += ctx.seconds;
    max_block_time = std::max(max_block_time, ctx.seconds);
  }
  const double concurrency =
      static_cast<double>(concurrent_blocks(threads_per_block));
  const double makespan =
      std::max(total_block_time / concurrency, max_block_time);
  const double time = spec_.kernel_launch_us * 1e-6 + makespan;
  ledger_.kernel_seconds += time;
  ledger_.by_kernel[kernel_name] += time;
}

void Device::record_transfer(std::size_t bytes) {
  const double time = spec_.pcie_latency_us * 1e-6 +
                      static_cast<double>(bytes) /
                          (spec_.pcie_bandwidth_gb_s * 1e9);
  ledger_.transfer_seconds += time;
}

}  // namespace dopf::simt
