#include "simt/multi_gpu.hpp"

#include <algorithm>
#include <cmath>

#include "core/packed_kernels.hpp"
#include "linalg/vector_ops.hpp"

namespace dopf::simt {

using dopf::core::AdmmResult;
using dopf::core::IterationRecord;
using dopf::core::LocalSolvers;
using dopf::core::ResidualSums;
using dopf::opf::DistributedProblem;
namespace kernels = dopf::core::kernels;

MultiGpuSolverFreeAdmm::MultiGpuSolverFreeAdmm(
    const DistributedProblem& problem, MultiGpuOptions options)
    : problem_(&problem),
      options_(options),
      rho_(options.gpu.admm.rho) {
  const LocalSolvers solvers = LocalSolvers::precompute(problem);
  image_ = DeviceProblem::build(problem, solvers);
  devices_.assign(std::max<std::size_t>(1, options.num_devices),
                  Device(options.device_spec));
  partition_ = dopf::runtime::block_partition(problem.components.size(),
                                              devices_.size());
  payload_vars_.assign(devices_.size(), 0);
  for (std::size_t d = 0; d < devices_.size(); ++d) {
    for (std::size_t s : partition_[d]) {
      payload_vars_[d] += problem.components[s].num_vars();
    }
  }

  x_ = problem.x0;
  z_.assign(image_.total_local(), 0.0);
  lambda_.assign(image_.total_local(), 0.0);
  y_scratch_.assign(image_.total_local(), 0.0);
  for (std::size_t pos = 0; pos < z_.size(); ++pos) {
    z_[pos] = problem.x0[image_.global_idx[pos]];
  }
  z_prev_ = z_;
  // Each device uploads its slice of the problem image once.
  for (std::size_t d = 0; d < devices_.size(); ++d) {
    devices_[d].record_transfer(image_.bytes() / devices_.size());
  }
}

void MultiGpuSolverFreeAdmm::global_update() {
  // Aggregator (device 0) runs the diagonal global update over all entries.
  const std::size_t n = image_.num_global();
  const int T = options_.gpu.elementwise_block;
  const int blocks = static_cast<int>((n + T - 1) / T);
  const double before = devices_[0].ledger().kernel_seconds;
  devices_[0].launch("global_update", blocks, T, [&](BlockContext& ctx) {
    const std::size_t begin = static_cast<std::size_t>(ctx.block_index) * T;
    const std::size_t end = std::min(n, begin + T);
    double max_flops = 0.0, max_bytes = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      kernels::global_entry(image_, z_.data(), lambda_.data(), rho_, i,
                            x_.data());
      const double deg = static_cast<double>(image_.gather_ptr[i + 1] -
                                             image_.gather_ptr[i]);
      max_flops = std::max(max_flops, 3.0 * deg + 5.0);
      max_bytes = std::max(max_bytes, 24.0 * deg + 40.0);
    }
    ctx.charge(end - begin, max_flops, max_bytes);
  });
  sim_global_ += devices_[0].ledger().kernel_seconds - before;
}

double MultiGpuSolverFreeAdmm::launch_local_on(std::size_t d) {
  const int T = options_.gpu.threads_per_block;
  const double before = devices_[d].ledger().kernel_seconds;
  const auto& part = partition_[d];
  if (part.empty()) return 0.0;  // idle rank: skip the zero-block launch
  devices_[d].launch(
      "local_update", static_cast<int>(part.size()), T,
      [&](BlockContext& ctx) {
        const std::size_t s = part[ctx.block_index];
        const std::size_t ns = static_cast<std::size_t>(image_.comp_nvars[s]);
        kernels::stage_component(image_, x_.data(), lambda_.data(), rho_, s,
                                 y_scratch_.data());
        ctx.charge(ns, 3.0, 28.0);
        kernels::project_component(image_, s, y_scratch_.data(), z_.data());
        ctx.charge(ns, 2.0 * static_cast<double>(ns) + 1.0,
                   8.0 * static_cast<double>(ns) + 24.0);
      });
  return devices_[d].ledger().kernel_seconds - before;
}

void MultiGpuSolverFreeAdmm::local_update() {
  z_prev_.swap(z_);
  // Devices run concurrently: the phase time is the slowest kernel plus the
  // consensus traffic (PCIe staging per device, MPI to the aggregator; the
  // aggregator handles peers serially).
  double span = 0.0;
  double comm = 0.0;
  double staging = 0.0;
  for (std::size_t d = 0; d < devices_.size(); ++d) {
    span = std::max(span, launch_local_on(d));
    const std::size_t down = payload_vars_[d] * sizeof(double);
    const std::size_t up = 2 * payload_vars_[d] * sizeof(double);
    if (devices_.size() > 1) {
      staging = std::max(staging, options_.staging.transfer_seconds(down) +
                                      options_.staging.transfer_seconds(up));
      devices_[d].record_transfer(down + up);
      if (d != 0) {
        comm += options_.comm.message_seconds(down) +
                options_.comm.message_seconds(up);
      }
    }
  }
  sim_local_ += span + comm + staging;
}

double MultiGpuSolverFreeAdmm::launch_dual_on(std::size_t d) {
  const int T = options_.gpu.elementwise_block;
  const double before = devices_[d].ledger().kernel_seconds;
  const auto& part = partition_[d];
  if (part.empty()) return 0.0;  // idle rank: skip the zero-block launch
  devices_[d].launch("dual_update", static_cast<int>(part.size()), T,
                     [&](BlockContext& ctx) {
                       const std::size_t s = part[ctx.block_index];
                       const std::size_t ns =
                           static_cast<std::size_t>(image_.comp_nvars[s]);
                       const std::size_t off =
                           static_cast<std::size_t>(image_.comp_offset[s]);
                       for (std::size_t j = 0; j < ns; ++j) {
                         kernels::dual_entry(image_, x_.data(), z_.data(),
                                             rho_, off + j, lambda_.data());
                       }
                       ctx.charge(ns, 3.0, 44.0);
                     });
  return devices_[d].ledger().kernel_seconds - before;
}

void MultiGpuSolverFreeAdmm::dual_update() {
  double span = 0.0;
  for (std::size_t d = 0; d < devices_.size(); ++d) {
    span = std::max(span, launch_dual_on(d));
  }
  sim_dual_ += span;
}

IterationRecord MultiGpuSolverFreeAdmm::compute_residuals(int iteration) {
  // Same deterministic chunk-tree reduction as every single-device backend,
  // so the multi-GPU residual history stays byte-identical to them.
  IterationRecord rec;
  rec.iteration = iteration;
  rec.rho = rho_;
  dopf::core::PackedState st;
  st.rho = rho_;
  st.x = x_;
  st.z = z_;
  st.z_prev = z_prev_;
  st.lambda = lambda_;
  st.y = y_scratch_;
  std::vector<ResidualSums> partials(
      dopf::core::residual_num_chunks(image_.total_local()));
  for (std::size_t k = 0; k < partials.size(); ++k) {
    dopf::core::residual_chunk(image_, st, k, &partials[k]);
  }
  const ResidualSums sums = dopf::core::combine_residual_chunks(partials);
  rec.primal_residual = std::sqrt(sums.pres2);
  rec.dual_residual = rho_ * std::sqrt(sums.dz2);
  rec.eps_primal =
      options_.gpu.admm.eps_rel * std::sqrt(std::max(sums.bx2, sums.z2));
  rec.eps_dual = options_.gpu.admm.eps_rel * std::sqrt(sums.l2);
  return rec;
}

AdmmResult MultiGpuSolverFreeAdmm::solve() {
  AdmmResult result;
  const auto& opt = options_.gpu.admm;
  int recorded = 0;
  for (int t = 1; t <= opt.max_iterations; ++t) {
    global_update();
    local_update();
    dual_update();
    ++iterations_run_;
    result.iterations = t;
    if (t % opt.check_every == 0) {
      const IterationRecord rec = compute_residuals(t);
      if (++recorded % opt.record_every == 0) result.history.push_back(rec);
      result.primal_residual = rec.primal_residual;
      result.dual_residual = rec.dual_residual;
      if (rec.primal_residual <= rec.eps_primal &&
          rec.dual_residual <= rec.eps_dual) {
        result.converged = true;
        break;
      }
    }
  }
  result.x.assign(x_.begin(), x_.end());
  result.objective = dopf::linalg::dot(problem_->c, x_);
  result.final_rho = rho_;
  result.timing.global_update = sim_global_;
  result.timing.local_update = sim_local_;
  result.timing.dual_update = sim_dual_;
  result.timing.iterations = iterations_run_;
  return result;
}

MultiGpuSolverFreeAdmm::IterationAverages
MultiGpuSolverFreeAdmm::iteration_averages() const {
  IterationAverages avg;
  if (iterations_run_ == 0) return avg;
  const double n = static_cast<double>(iterations_run_);
  avg.global_update = sim_global_ / n;
  avg.local_update = sim_local_ / n;
  avg.dual_update = sim_dual_ / n;
  return avg;
}

}  // namespace dopf::simt
