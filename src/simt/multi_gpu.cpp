#include "simt/multi_gpu.hpp"

#include <algorithm>
#include <cmath>

#include "core/packed_kernels.hpp"
#include "core/watchdog.hpp"
#include "linalg/vector_ops.hpp"
#include "runtime/checkpoint.hpp"

namespace dopf::simt {

using dopf::core::AdmmResult;
using dopf::core::AdmmStatus;
using dopf::core::IterationRecord;
using dopf::core::LocalSolvers;
using dopf::core::ResidualSums;
using dopf::opf::DistributedProblem;
using dopf::runtime::AdmmCheckpoint;
using dopf::runtime::DeviceHealth;
using dopf::runtime::DeviceState;
using dopf::runtime::FaultError;
using dopf::runtime::FaultEvent;
using dopf::runtime::retry_cost_seconds;
namespace kernels = dopf::core::kernels;

MultiGpuSolverFreeAdmm::MultiGpuSolverFreeAdmm(
    const DistributedProblem& problem, MultiGpuOptions options)
    : problem_(&problem),
      options_(options),
      rho_(options.gpu.admm.rho) {
  // Single-shot wrapper: precompute through a throwaway SolveModel (same
  // factorization path as the session layers, byte-identical image).
  const dopf::core::SolveModel model(problem, options.gpu.admm.projector);
  image_ = model.make_pack();
  init_state();
}

MultiGpuSolverFreeAdmm::MultiGpuSolverFreeAdmm(
    const dopf::core::SolveModel& model, MultiGpuOptions options)
    : problem_(&model.problem()),
      options_(options),
      rho_(options.gpu.admm.rho) {
  image_ = model.make_pack();
  init_state();
}

void MultiGpuSolverFreeAdmm::init_state() {
  devices_.assign(std::max<std::size_t>(1, options_.num_devices),
                  Device(options_.device_spec));
  alive_.assign(devices_.size(), 1);
  health_.assign(devices_.size(), DeviceHealth(options_.degrade));
  quarantined_.assign(devices_.size(), 0);
  stale_.assign(devices_.size(), 0);
  repartition();

  x_ = image_.x0;
  z_.assign(image_.total_local(), 0.0);
  lambda_.assign(image_.total_local(), 0.0);
  y_scratch_.assign(image_.total_local(), 0.0);
  for (std::size_t pos = 0; pos < z_.size(); ++pos) {
    z_[pos] = image_.x0[image_.global_idx[pos]];
  }
  z_prev_ = z_;
  // Each device uploads its slice of the problem image once.
  for (std::size_t d = 0; d < devices_.size(); ++d) {
    devices_[d].record_transfer(image_.bytes() / devices_.size());
  }
}

std::size_t MultiGpuSolverFreeAdmm::alive_devices() const {
  return static_cast<std::size_t>(
      std::count(alive_.begin(), alive_.end(), char(1)));
}

void MultiGpuSolverFreeAdmm::repartition() {
  std::vector<std::size_t> live;
  for (std::size_t d = 0; d < devices_.size(); ++d) {
    if (alive_[d] && !quarantined_[d]) live.push_back(d);
  }
  if (live.empty()) {
    throw FaultError("multi-gpu: no surviving devices");
  }
  aggregator_ = live.front();
  const dopf::runtime::Partition parts =
      dopf::runtime::block_partition(problem_->components.size(), live.size());
  partition_.assign(devices_.size(), {});
  payload_vars_.assign(devices_.size(), 0);
  for (std::size_t i = 0; i < live.size(); ++i) {
    partition_[live[i]] = parts[i];
    for (std::size_t s : parts[i]) {
      payload_vars_[live[i]] += problem_->components[s].num_vars();
    }
  }
}

void MultiGpuSolverFreeAdmm::restore_state(const AdmmCheckpoint& checkpoint) {
  if (!options_.label.empty() && !checkpoint.label.empty() &&
      checkpoint.label != options_.label) {
    throw FaultError("multi-gpu restore: checkpoint was recorded on '" +
                     checkpoint.label + "' but this run solves '" +
                     options_.label + "' — refusing to restore");
  }
  if (checkpoint.x.size() != x_.size() ||
      checkpoint.z.size() != z_.size() ||
      checkpoint.z_prev.size() != z_prev_.size() ||
      checkpoint.lambda.size() != lambda_.size()) {
    throw FaultError(
        "multi-gpu restore: checkpoint does not fit this problem (x " +
        std::to_string(checkpoint.x.size()) + "/" +
        std::to_string(x_.size()) + ", z " +
        std::to_string(checkpoint.z.size()) + "/" +
        std::to_string(z_.size()) + " values) — wrong feeder?");
  }
  if (checkpoint.model_fingerprint != 0 &&
      checkpoint.model_fingerprint !=
          dopf::core::topology_fingerprint(image_)) {
    throw FaultError(
        "multi-gpu restore: checkpoint model fingerprint does not match "
        "this run's topology — refusing to restore");
  }
  if (checkpoint.scenario_fingerprint != 0 &&
      checkpoint.scenario_fingerprint !=
          dopf::core::scenario_fingerprint(image_)) {
    throw FaultError(
        "multi-gpu restore: checkpoint scenario fingerprint does not match "
        "this run's bound loads/costs/bounds — refusing to restore");
  }
  x_ = checkpoint.x;
  z_ = checkpoint.z;
  z_prev_ = checkpoint.z_prev;
  lambda_ = checkpoint.lambda;
  rho_ = checkpoint.rho;
  start_iteration_ = checkpoint.iteration;
}

void MultiGpuSolverFreeAdmm::global_update() {
  // The aggregator runs the diagonal global update over all entries.
  const std::size_t n = image_.num_global();
  const int T = options_.gpu.elementwise_block;
  const int blocks = static_cast<int>((n + T - 1) / T);
  Device& agg = devices_[aggregator_];
  const double before = agg.ledger().kernel_seconds;
  agg.launch("global_update", blocks, T, [&](BlockContext& ctx) {
    const std::size_t begin = static_cast<std::size_t>(ctx.block_index) * T;
    const std::size_t end = std::min(n, begin + T);
    double max_flops = 0.0, max_bytes = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      kernels::global_entry(image_, z_.data(), lambda_.data(), rho_, i,
                            x_.data());
      const double deg = static_cast<double>(image_.gather_ptr[i + 1] -
                                             image_.gather_ptr[i]);
      max_flops = std::max(max_flops, 3.0 * deg + 5.0);
      max_bytes = std::max(max_bytes, 24.0 * deg + 40.0);
    }
    ctx.charge(end - begin, max_flops, max_bytes);
  });
  sim_global_ += agg.ledger().kernel_seconds - before;
}

double MultiGpuSolverFreeAdmm::launch_local_on(std::size_t d) {
  const int T = options_.gpu.threads_per_block;
  const double before = devices_[d].ledger().kernel_seconds;
  const auto& part = partition_[d];
  if (part.empty()) return 0.0;  // idle rank: skip the zero-block launch
  devices_[d].launch(
      "local_update", static_cast<int>(part.size()), T,
      [&](BlockContext& ctx) {
        const std::size_t s = part[ctx.block_index];
        const std::size_t ns = static_cast<std::size_t>(image_.comp_nvars[s]);
        kernels::stage_component(image_, x_.data(), lambda_.data(), rho_, s,
                                 y_scratch_.data());
        ctx.charge(ns, 3.0, 28.0);
        kernels::project_component(image_, s, y_scratch_.data(), z_.data());
        ctx.charge(ns, 2.0 * static_cast<double>(ns) + 1.0,
                   8.0 * static_cast<double>(ns) + 24.0);
      });
  return devices_[d].ledger().kernel_seconds - before;
}

void MultiGpuSolverFreeAdmm::local_update(int iteration) {
  z_prev_.swap(z_);
  // Devices run concurrently: the phase time is the slowest kernel plus the
  // consensus traffic (PCIe staging per device, MPI to the aggregator; the
  // aggregator handles peers serially). Injected faults price in here:
  // stragglers stretch a device's kernel span, dropped or CRC-rejected
  // uploads cost timeout+backoff retries, and undetected corruption mangles
  // the payload itself.
  double span = 0.0;
  double comm = 0.0;
  double staging = 0.0;
  const bool multi = alive_devices() > 1;
  for (std::size_t d = 0; d < devices_.size(); ++d) {
    if (!alive_[d] || quarantined_[d]) continue;
    if (stale_[d]) {
      // Degraded: the aggregator stops waiting for this device. Its
      // last-good contribution stays in the consensus state, and the only
      // cost is the give-up timeout (no kernels, no staging, no retries).
      keep_stale_contribution(d);
      sim_degrade_ += options_.recovery.retry_timeout_s;
      continue;
    }
    double dev_span = launch_local_on(d);
    dev_span *= injector_.straggle_factor(d, iteration);
    span = std::max(span, dev_span);
    const std::size_t down = payload_vars_[d] * sizeof(double);
    const std::size_t up = 2 * payload_vars_[d] * sizeof(double);
    if (multi) {
      staging = std::max(staging, options_.staging.transfer_seconds(down) +
                                      options_.staging.transfer_seconds(up));
      devices_[d].record_transfer(down + up);
      if (d != aggregator_) {
        comm += options_.comm.message_seconds(down) +
                options_.comm.message_seconds(up);

        const int drops = injector_.message_drops(d, iteration);
        if (drops > 0) {
          // process_device_faults already escalated budget overruns, so
          // here the retries always succeed; price them and move on.
          comm += retry_cost_seconds(options_.recovery, options_.comm, up,
                                     drops);
          retries_ += drops;
          injector_.consume_drops(d, iteration);
        }
        if (const FaultEvent* ev = injector_.corruption(d, iteration)) {
          if (options_.recovery.verify_messages) {
            // CRC rejects the payload; one re-send restores it intact.
            comm += retry_cost_seconds(options_.recovery, options_.comm, up,
                                       1);
            ++retries_;
          } else {
            // Undetected: the mangled x_s silently enters the consensus
            // state (this is what the invariant checker / golden
            // comparator must catch).
            for (std::size_t s : partition_[d]) {
              const auto off = static_cast<std::size_t>(image_.comp_offset[s]);
              const auto ns = static_cast<std::size_t>(image_.comp_nvars[s]);
              for (std::size_t j = 0; j < ns; ++j) {
                z_[off + j] *= ev->factor;
              }
            }
          }
          injector_.consume_corruption(d, iteration);
        }
      }
    }
  }
  sim_local_ += span + comm + staging;
}

double MultiGpuSolverFreeAdmm::launch_dual_on(std::size_t d) {
  const int T = options_.gpu.elementwise_block;
  const double before = devices_[d].ledger().kernel_seconds;
  const auto& part = partition_[d];
  if (part.empty()) return 0.0;  // idle rank: skip the zero-block launch
  devices_[d].launch("dual_update", static_cast<int>(part.size()), T,
                     [&](BlockContext& ctx) {
                       const std::size_t s = part[ctx.block_index];
                       const std::size_t ns =
                           static_cast<std::size_t>(image_.comp_nvars[s]);
                       const std::size_t off =
                           static_cast<std::size_t>(image_.comp_offset[s]);
                       for (std::size_t j = 0; j < ns; ++j) {
                         kernels::dual_entry(image_, x_.data(), z_.data(),
                                             rho_, off + j, lambda_.data());
                       }
                       ctx.charge(ns, 3.0, 44.0);
                     });
  return devices_[d].ledger().kernel_seconds - before;
}

void MultiGpuSolverFreeAdmm::dual_update(int iteration) {
  double span = 0.0;
  for (std::size_t d = 0; d < devices_.size(); ++d) {
    // A stale device's duals freeze along with its local solution (the
    // device never received x, so it cannot have updated lambda).
    if (!alive_[d] || quarantined_[d] || stale_[d]) continue;
    span = std::max(span,
                    launch_dual_on(d) * injector_.straggle_factor(d, iteration));
  }
  sim_dual_ += span;
}

void MultiGpuSolverFreeAdmm::keep_stale_contribution(std::size_t d) {
  // local_update swapped z_prev_/z_, so the device's last-good solution
  // lives in z_prev_; copy it back so z keeps the stale contribution.
  for (std::size_t s : partition_[d]) {
    const auto off = static_cast<std::size_t>(image_.comp_offset[s]);
    const auto ns = static_cast<std::size_t>(image_.comp_nvars[s]);
    std::copy(z_prev_.begin() + static_cast<std::ptrdiff_t>(off),
              z_prev_.begin() + static_cast<std::ptrdiff_t>(off + ns),
              z_.begin() + static_cast<std::ptrdiff_t>(off));
  }
}

bool MultiGpuSolverFreeAdmm::degrade_step(int iteration) {
  const std::size_t image_slice = image_.bytes() / devices_.size();
  bool degraded = false;
  for (std::size_t d = 0; d < devices_.size(); ++d) {
    stale_[d] = 0;
    if (!alive_[d]) continue;
    const int drops = injector_.message_drops(d, iteration);
    const FaultEvent* corr = injector_.corruption(d, iteration);
    const int failures =
        drops + ((corr && options_.recovery.verify_messages) ? 1 : 0);
    health_[d].observe(injector_.straggle_factor(d, iteration), failures);

    if (health_[d].quarantine_pending()) {
      quarantined_[d] = 1;
      health_[d].acknowledge();
      repartition();  // survivors take over; NO rollback — state is global
      sim_degrade_ += options_.staging.transfer_seconds(image_slice) +
                      options_.comm.message_seconds(image_slice);
      ++quarantines_;
    } else if (health_[d].readmission_pending()) {
      quarantined_[d] = 0;
      health_[d].acknowledge();
      repartition();
      // The readmitted device re-uploads its slice of the problem image.
      sim_degrade_ += options_.staging.transfer_seconds(image_slice) +
                      options_.comm.message_seconds(image_slice);
      devices_[d].record_transfer(image_slice);
      ++readmissions_;
    }

    if (quarantined_[d]) {
      degraded = true;
      continue;
    }
    // Stale when the tracker degraded the device, or when this iteration's
    // delivery failures exceed the retry budget (stop waiting instead of
    // escalating to failover, which would livelock on a persistent fault).
    if (health_[d].state() == DeviceState::kDegraded ||
        drops > options_.recovery.max_retries) {
      stale_[d] = 1;
      degraded = true;
    }
  }
  return degraded;
}

IterationRecord MultiGpuSolverFreeAdmm::compute_residuals(int iteration) {
  // Same deterministic chunk-tree reduction as every single-device backend,
  // so the multi-GPU residual history stays byte-identical to them.
  IterationRecord rec;
  rec.iteration = iteration;
  rec.rho = rho_;
  dopf::core::PackedState st;
  st.rho = rho_;
  st.x = x_;
  st.z = z_;
  st.z_prev = z_prev_;
  st.lambda = lambda_;
  st.y = y_scratch_;
  std::vector<ResidualSums> partials(
      dopf::core::residual_num_chunks(image_.total_local()));
  for (std::size_t k = 0; k < partials.size(); ++k) {
    dopf::core::residual_chunk(image_, st, k, &partials[k]);
  }
  const ResidualSums sums = dopf::core::combine_residual_chunks(partials);
  rec.primal_residual = std::sqrt(sums.pres2);
  rec.dual_residual = rho_ * std::sqrt(sums.dz2);
  rec.eps_primal =
      options_.gpu.admm.eps_rel * std::sqrt(std::max(sums.bx2, sums.z2));
  rec.eps_dual = options_.gpu.admm.eps_rel * std::sqrt(sums.l2);
  return rec;
}

void MultiGpuSolverFreeAdmm::take_checkpoint(int iteration,
                                             const AdmmResult& result,
                                             int recorded) {
  checkpoint_.label = options_.label;
  checkpoint_.model_fingerprint = dopf::core::topology_fingerprint(image_);
  checkpoint_.scenario_fingerprint = dopf::core::scenario_fingerprint(image_);
  checkpoint_.iteration = iteration;
  checkpoint_.rho = rho_;
  checkpoint_.x = x_;
  checkpoint_.z = z_;
  checkpoint_.z_prev = z_prev_;
  checkpoint_.lambda = lambda_;
  ck_history_size_ = result.history.size();
  ck_recorded_ = recorded;
  if (!options_.checkpoint_path.empty()) {
    dopf::runtime::save_checkpoint(checkpoint_, options_.checkpoint_path);
  }
}

void MultiGpuSolverFreeAdmm::fail_over(std::size_t device, AdmmResult* result,
                                       int* recorded) {
  alive_[device] = 0;
  repartition();  // throws FaultError when nobody survives

  // Deterministic recovery: roll the consensus state back to the restart
  // point and replay. Every survivor executes the identical kernel
  // expressions over the identical component order, so the replayed
  // trajectory is bit-for-bit the fault-free one.
  x_ = checkpoint_.x;
  z_ = checkpoint_.z;
  z_prev_ = checkpoint_.z_prev;
  lambda_ = checkpoint_.lambda;
  rho_ = checkpoint_.rho;
  result->history.resize(ck_history_size_);
  *recorded = ck_recorded_;

  // Price the recovery: the aggregator re-stages the checkpoint across
  // PCIe, ships it to every survivor, and the dead device's slice of the
  // problem image is re-uploaded to its new owners.
  const std::size_t ck_bytes = dopf::runtime::checkpoint_bytes(checkpoint_);
  const std::size_t image_slice = image_.bytes() / devices_.size();
  double cost = options_.staging.transfer_seconds(ck_bytes);
  for (std::size_t d = 0; d < devices_.size(); ++d) {
    if (!alive_[d]) continue;
    if (d != aggregator_) cost += options_.comm.message_seconds(ck_bytes);
    cost += options_.staging.transfer_seconds(
        image_slice / std::max<std::size_t>(1, alive_devices()));
    devices_[d].record_transfer(ck_bytes);
  }
  sim_recovery_ += cost;
  ++failovers_;
}

bool MultiGpuSolverFreeAdmm::process_device_faults(int iteration,
                                                   AdmmResult* result,
                                                   int* recorded) {
  for (std::size_t d = 0; d < devices_.size(); ++d) {
    if (!alive_[d]) continue;
    const bool killed = injector_.kill_scheduled(d, iteration);
    // In degraded mode an exhausted retry budget makes the iteration stale
    // (degrade_step) instead of escalating to a rollback failover — a
    // persistent drop would otherwise replay the same window forever.
    const bool link_lost = !killed && !options_.degrade.enabled &&
                           d != aggregator_ &&
                           injector_.message_drops(d, iteration) >
                               options_.recovery.max_retries;
    if (!killed && !link_lost) continue;
    if (!options_.recovery.failover) {
      throw FaultError(
          "device " + std::to_string(d) +
          (killed ? " failed" : " exhausted its message retry budget") +
          " at iteration " + std::to_string(iteration) +
          " and failover is disabled");
    }
    if (killed) {
      injector_.consume_kill(d, iteration);
    } else {
      injector_.consume_drops(d, iteration);
    }
    fail_over(d, result, recorded);
    return true;
  }
  return false;
}

AdmmResult MultiGpuSolverFreeAdmm::solve() {
  AdmmResult result;
  const auto& opt = options_.gpu.admm;
  injector_ = dopf::runtime::FaultInjector(options_.faults);
  int recorded = 0;
  result.iterations = start_iteration_;
  // The initial state is always a valid restart point; periodic
  // checkpointing (options_.checkpoint_every) refreshes it.
  take_checkpoint(start_iteration_, result, recorded);

  // Watchdog state (inert unless opt.watchdog): mirror of the core solver.
  dopf::core::ConvergenceWatchdog watchdog(opt.watchdog_window,
                                           opt.watchdog_min_improvement,
                                           opt.watchdog_max_restarts);
  std::vector<double> best_x, best_z, best_z_prev, best_lambda;
  double best_rho = rho_;

  int t = start_iteration_ + 1;
  while (t <= opt.max_iterations) {
    if (!injector_.empty() &&
        process_device_faults(t, &result, &recorded)) {
      t = checkpoint_.iteration + 1;  // rolled back: replay from the restart
      continue;
    }
    if (options_.degrade.enabled && degrade_step(t)) {
      ++degraded_iterations_;
    }
    global_update();
    local_update(t);
    dual_update(t);
    ++iterations_run_;
    result.iterations = t;
    if (t % opt.check_every == 0) {
      const IterationRecord rec = compute_residuals(t);
      if (++recorded % opt.record_every == 0) result.history.push_back(rec);
      result.primal_residual = rec.primal_residual;
      result.dual_residual = rec.dual_residual;
      if (!std::isfinite(rec.primal_residual) ||
          !std::isfinite(rec.dual_residual) ||
          !std::isfinite(rec.eps_primal) || !std::isfinite(rec.eps_dual)) {
        result.status = AdmmStatus::kDiverged;
        break;
      }
      if (rec.primal_residual <= rec.eps_primal &&
          rec.dual_residual <= rec.eps_dual) {
        result.converged = true;
        result.status = AdmmStatus::kConverged;
        break;
      }
      if (opt.cancel && opt.cancel->cancelled()) {
        result.status = AdmmStatus::kCancelled;
        break;
      }
      if (opt.watchdog) {
        const auto decision = watchdog.observe(rec);
        if (decision.new_best) {
          best_x = x_;
          best_z = z_;
          best_z_prev = z_prev_;
          best_lambda = lambda_;
          best_rho = rho_;
        }
        using Action = dopf::core::ConvergenceWatchdog::Action;
        if (decision.action == Action::kNudgeRho) {
          if (rec.primal_residual > rec.dual_residual) {
            rho_ *= opt.adaptive_factor;
          } else {
            rho_ /= opt.adaptive_factor;
          }
        } else if (decision.action == Action::kRestartFromBest) {
          if (!best_x.empty()) {
            x_ = best_x;
            z_ = best_z;
            z_prev_ = best_z_prev;
            lambda_ = best_lambda;
            rho_ = best_rho;
          }
        } else if (decision.action == Action::kStop) {
          result.status = AdmmStatus::kStalled;
          result.watchdog = watchdog.summary();
          break;
        }
        result.watchdog = watchdog.summary();
      }
    }
    if (options_.checkpoint_every > 0 &&
        t % options_.checkpoint_every == 0) {
      take_checkpoint(t, result, recorded);
    }
    ++t;
  }
  result.x.assign(x_.begin(), x_.end());
  result.objective = dopf::linalg::dot(problem_->c, x_);
  result.final_rho = rho_;
  result.timing.global_update = sim_global_;
  result.timing.local_update = sim_local_;
  result.timing.dual_update = sim_dual_;
  result.timing.recovery = sim_recovery_;
  result.timing.degrade = sim_degrade_;
  result.timing.iterations = iterations_run_;
  result.timing.degraded_iterations = degraded_iterations_;
  return result;
}

MultiGpuSolverFreeAdmm::IterationAverages
MultiGpuSolverFreeAdmm::iteration_averages() const {
  IterationAverages avg;
  if (iterations_run_ == 0) return avg;
  const double n = static_cast<double>(iterations_run_);
  avg.global_update = sim_global_ / n;
  avg.local_update = sim_local_ / n;
  avg.dual_update = sim_dual_ / n;
  return avg;
}

}  // namespace dopf::simt
