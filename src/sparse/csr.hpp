#pragma once

#include <cstdint>
#include <span>
#include <vector>

/// Sparse linear algebra for the "large" objects of the algorithm: the
/// concatenated consensus matrix B of (17), the diagonal Gram matrix B^T B of
/// (18), the centralized constraint matrix A of (7), and the normal-equations
/// systems of the reference interior-point solver.
namespace dopf::sparse {

/// One coordinate-form entry; used to assemble matrices.
struct Triplet {
  std::int64_t row = 0;
  std::int64_t col = 0;
  double value = 0.0;
};

/// Compressed sparse row matrix. Column indices within each row are sorted
/// and unique after construction (duplicate triplets are summed).
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// rows x cols matrix with no stored entries.
  CsrMatrix(std::size_t rows, std::size_t cols);

  static CsrMatrix from_triplets(std::size_t rows, std::size_t cols,
                                 std::span<const Triplet> triplets,
                                 double drop_tol = 0.0);

  static CsrMatrix identity(std::size_t n);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t nnz() const noexcept { return values_.size(); }

  std::span<const std::int64_t> row_ptr() const noexcept { return row_ptr_; }
  std::span<const std::int64_t> col_idx() const noexcept { return col_idx_; }
  std::span<const double> values() const noexcept { return values_; }
  std::span<double> values_mutable() noexcept { return values_; }

  /// y = alpha * A * x + beta * y.
  void multiply(std::span<const double> x, std::span<double> y,
                double alpha = 1.0, double beta = 0.0) const;

  /// y = alpha * A^T * x + beta * y (no transpose is materialized).
  void multiply_transpose(std::span<const double> x, std::span<double> y,
                          double alpha = 1.0, double beta = 0.0) const;

  CsrMatrix transposed() const;

  /// Entry lookup by binary search within the row; 0.0 if not stored.
  double at(std::size_t i, std::size_t j) const;

  /// diag(A^T A) as a dense vector; for the consensus matrix B this is the
  /// copy-count diagonal of (18) (each column of B holds the 0/1 incidences
  /// of one global variable).
  std::vector<double> column_sq_norms() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::int64_t> row_ptr_;
  std::vector<std::int64_t> col_idx_;
  std::vector<double> values_;
};

}  // namespace dopf::sparse
