#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sparse/csr.hpp"

namespace dopf::sparse {

/// Incrementally re-evaluated normal-equations matrix  C = A diag(d) A^T.
///
/// The reference interior-point LP solver refactorizes C every iteration
/// with new scaling d but a fixed sparsity pattern. This class computes the
/// pattern once (lower triangle of C in CSR form, suitable for SparseLdlt)
/// and precomputes, for every column k of A, the list of entry pairs it
/// contributes to, so the numeric update is a single linear sweep.
class NormalEquations {
 public:
  explicit NormalEquations(const CsrMatrix& a);

  /// Recompute values for scaling `d` (size = cols(A)); the diagonal shift
  /// is applied by the factorization, not here. Returns the lower-triangular
  /// CSR matrix (pattern is identical across calls).
  const CsrMatrix& compute(const CsrMatrix& a, std::span<const double> d);

  const CsrMatrix& matrix() const noexcept { return c_; }

 private:
  std::size_t m_ = 0;  // rows of A
  std::size_t n_ = 0;  // cols of A

  struct Contribution {
    std::int64_t a_entry_i;  // index into A.values()
    std::int64_t a_entry_j;  // index into A.values()
    std::int64_t c_entry;    // index into c_.values()
    std::int64_t column;     // shared column k (selects d[k])
  };
  std::vector<Contribution> contributions_;
  CsrMatrix c_;
};

}  // namespace dopf::sparse
