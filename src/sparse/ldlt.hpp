#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sparse/csr.hpp"

namespace dopf::sparse {

/// Ordering applied before factorization.
enum class Ordering {
  kNatural,  ///< factor A as given
  kRcm,      ///< reverse Cuthill-McKee (good for near-tree feeder systems)
};

/// Simplicial sparse LDL^T factorization (up-looking, elimination-tree
/// based, in the style of the LDL package of Davis).
///
/// Splits into a one-time symbolic analysis of the pattern and a numeric
/// phase that can be repeated with new values on the same pattern — the use
/// case of the reference interior-point solver, whose normal-equations
/// matrix A D A^T changes values (not pattern) every iteration.
///
/// The input is a square symmetric matrix in CSR form; only the lower
/// triangle (column indices <= row) is read, so callers may pass either the
/// full symmetric matrix or just its lower triangle.
class SparseLdlt {
 public:
  /// Symbolic analysis (and ordering) of the pattern of `a`.
  explicit SparseLdlt(const CsrMatrix& a, Ordering ordering = Ordering::kRcm);

  /// Numeric factorization of a matrix with the *same pattern* as the one
  /// analyzed. `diag_shift` is added to every diagonal entry (primal-dual
  /// regularization); a zero or negative pivot after shifting throws.
  void factorize(const CsrMatrix& a, double diag_shift = 0.0);

  /// Solve A x = b using the current factors.
  std::vector<double> solve(std::span<const double> b) const;

  std::size_t dim() const noexcept { return n_; }
  std::size_t nnz_l() const noexcept { return li_.size(); }
  bool factorized() const noexcept { return factorized_; }
  std::span<const int> permutation() const noexcept { return perm_; }

 private:
  std::size_t n_ = 0;
  std::vector<int> perm_;   // perm_[new] = old
  std::vector<int> iperm_;  // iperm_[old] = new

  // Permuted upper-triangular pattern in CSC form; ai_ holds row indices,
  // asrc_ maps each entry back into the analyzed matrix's CSR value array.
  std::vector<std::int64_t> ap_;
  std::vector<int> ai_;
  std::vector<std::int64_t> asrc_;

  // Elimination tree and column counts from the symbolic phase.
  std::vector<int> parent_;
  std::vector<std::int64_t> lp_;  // column pointers of L (size n+1)

  // Numeric factors: L (unit lower triangular, CSC) and diagonal D.
  std::vector<int> li_;
  std::vector<double> lx_;
  std::vector<double> d_;
  bool factorized_ = false;
};

}  // namespace dopf::sparse
