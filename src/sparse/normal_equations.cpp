#include "sparse/normal_equations.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace dopf::sparse {

NormalEquations::NormalEquations(const CsrMatrix& a)
    : m_(a.rows()), n_(a.cols()) {
  // Per-column adjacency of A: (row, value-index) pairs.
  std::vector<std::vector<std::pair<int, std::int64_t>>> col_entries(n_);
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  for (std::size_t i = 0; i < m_; ++i) {
    for (std::int64_t k = rp[i]; k < rp[i + 1]; ++k) {
      col_entries[ci[k]].push_back({static_cast<int>(i), k});
    }
  }

  // Pattern: every pair of rows sharing a column produces a lower-triangle
  // entry. Collect as triplets first (duplicates merged by from_triplets).
  std::vector<Triplet> pattern;
  for (std::size_t k = 0; k < n_; ++k) {
    const auto& col = col_entries[k];
    for (std::size_t p = 0; p < col.size(); ++p) {
      for (std::size_t q = 0; q <= p; ++q) {
        const int i = std::max(col[p].first, col[q].first);
        const int j = std::min(col[p].first, col[q].first);
        pattern.push_back({i, j, 1.0});
      }
    }
  }
  // Make sure the full diagonal exists even for empty rows of A, so the
  // factorization's regularization shift has somewhere to land.
  for (std::size_t i = 0; i < m_; ++i) {
    pattern.push_back({static_cast<int>(i), static_cast<int>(i), 1.0});
  }
  c_ = CsrMatrix::from_triplets(m_, m_, pattern);

  // Map each (column, pair) contribution to its entry in c_.
  contributions_.reserve(pattern.size());
  const auto crp = c_.row_ptr();
  const auto cci = c_.col_idx();
  auto locate = [&](int i, int j) -> std::int64_t {
    const auto begin = cci.begin() + crp[i];
    const auto end = cci.begin() + crp[i + 1];
    const auto it = std::lower_bound(begin, end, static_cast<std::int64_t>(j));
    return it - cci.begin();
  };
  for (std::size_t k = 0; k < n_; ++k) {
    const auto& col = col_entries[k];
    for (std::size_t p = 0; p < col.size(); ++p) {
      for (std::size_t q = 0; q <= p; ++q) {
        const int i = std::max(col[p].first, col[q].first);
        const int j = std::min(col[p].first, col[q].first);
        const std::int64_t vi =
            col[p].first >= col[q].first ? col[p].second : col[q].second;
        const std::int64_t vj =
            col[p].first >= col[q].first ? col[q].second : col[p].second;
        contributions_.push_back(
            {vi, vj, locate(i, j), static_cast<std::int64_t>(k)});
      }
    }
  }
}

const CsrMatrix& NormalEquations::compute(const CsrMatrix& a,
                                          std::span<const double> d) {
  if (a.rows() != m_ || a.cols() != n_ || d.size() != n_) {
    throw std::invalid_argument("NormalEquations::compute: shape mismatch");
  }
  const auto ax = a.values();
  auto cx = c_.values_mutable();
  std::fill(cx.begin(), cx.end(), 0.0);
  for (const Contribution& t : contributions_) {
    cx[t.c_entry] += d[t.column] * ax[t.a_entry_i] * ax[t.a_entry_j];
  }
  return c_;
}

}  // namespace dopf::sparse
