#include "sparse/csr.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace dopf::sparse {

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), row_ptr_(rows + 1, 0) {}

CsrMatrix CsrMatrix::from_triplets(std::size_t rows, std::size_t cols,
                                   std::span<const Triplet> triplets,
                                   double drop_tol) {
  for (const Triplet& t : triplets) {
    if (t.row < 0 || t.col < 0 || static_cast<std::size_t>(t.row) >= rows ||
        static_cast<std::size_t>(t.col) >= cols) {
      throw std::out_of_range("CsrMatrix::from_triplets: index out of range");
    }
  }
  // Counting sort by row, then sort each row segment by column and compress
  // duplicates. Stable O(nnz log nnz_row) overall.
  CsrMatrix m(rows, cols);
  std::vector<std::int64_t> counts(rows + 1, 0);
  for (const Triplet& t : triplets) ++counts[t.row + 1];
  std::partial_sum(counts.begin(), counts.end(), counts.begin());

  std::vector<std::pair<std::int64_t, double>> entries(triplets.size());
  std::vector<std::int64_t> cursor(counts.begin(), counts.end() - 1);
  for (const Triplet& t : triplets) {
    entries[cursor[t.row]++] = {t.col, t.value};
  }

  m.row_ptr_.assign(rows + 1, 0);
  m.col_idx_.reserve(triplets.size());
  m.values_.reserve(triplets.size());
  for (std::size_t r = 0; r < rows; ++r) {
    auto first = entries.begin() + counts[r];
    auto last = entries.begin() + counts[r + 1];
    std::sort(first, last, [](const auto& a, const auto& b) {
      return a.first < b.first;
    });
    for (auto it = first; it != last;) {
      const std::int64_t col = it->first;
      double sum = 0.0;
      while (it != last && it->first == col) {
        sum += it->second;
        ++it;
      }
      if (std::abs(sum) > drop_tol) {
        m.col_idx_.push_back(col);
        m.values_.push_back(sum);
      }
    }
    m.row_ptr_[r + 1] = static_cast<std::int64_t>(m.col_idx_.size());
  }
  return m;
}

CsrMatrix CsrMatrix::identity(std::size_t n) {
  CsrMatrix m(n, n);
  m.col_idx_.resize(n);
  m.values_.assign(n, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    m.col_idx_[i] = static_cast<std::int64_t>(i);
    m.row_ptr_[i + 1] = static_cast<std::int64_t>(i + 1);
  }
  return m;
}

void CsrMatrix::multiply(std::span<const double> x, std::span<double> y,
                         double alpha, double beta) const {
  if (x.size() != cols_ || y.size() != rows_) {
    throw std::invalid_argument("CsrMatrix::multiply: size mismatch");
  }
  for (std::size_t i = 0; i < rows_; ++i) {
    double sum = 0.0;
    for (std::int64_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      sum += values_[k] * x[col_idx_[k]];
    }
    y[i] = alpha * sum + beta * y[i];
  }
}

void CsrMatrix::multiply_transpose(std::span<const double> x,
                                   std::span<double> y, double alpha,
                                   double beta) const {
  if (x.size() != rows_ || y.size() != cols_) {
    throw std::invalid_argument(
        "CsrMatrix::multiply_transpose: size mismatch");
  }
  if (beta == 0.0) {
    std::fill(y.begin(), y.end(), 0.0);
  } else if (beta != 1.0) {
    for (double& v : y) v *= beta;
  }
  for (std::size_t i = 0; i < rows_; ++i) {
    const double xi = alpha * x[i];
    if (xi == 0.0) continue;
    for (std::int64_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      y[col_idx_[k]] += values_[k] * xi;
    }
  }
}

CsrMatrix CsrMatrix::transposed() const {
  CsrMatrix t(cols_, rows_);
  t.col_idx_.resize(nnz());
  t.values_.resize(nnz());
  std::vector<std::int64_t> counts(cols_ + 1, 0);
  for (std::int64_t c : col_idx_) ++counts[c + 1];
  std::partial_sum(counts.begin(), counts.end(), counts.begin());
  t.row_ptr_ = counts;
  std::vector<std::int64_t> cursor(counts.begin(), counts.end() - 1);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::int64_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      const std::int64_t pos = cursor[col_idx_[k]]++;
      t.col_idx_[pos] = static_cast<std::int64_t>(i);
      t.values_[pos] = values_[k];
    }
  }
  return t;
}

double CsrMatrix::at(std::size_t i, std::size_t j) const {
  if (i >= rows_ || j >= cols_) {
    throw std::out_of_range("CsrMatrix::at: index out of range");
  }
  const auto begin = col_idx_.begin() + row_ptr_[i];
  const auto end = col_idx_.begin() + row_ptr_[i + 1];
  const auto it = std::lower_bound(begin, end, static_cast<std::int64_t>(j));
  if (it == end || *it != static_cast<std::int64_t>(j)) return 0.0;
  return values_[it - col_idx_.begin()];
}

std::vector<double> CsrMatrix::column_sq_norms() const {
  std::vector<double> d(cols_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::int64_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      d[col_idx_[k]] += values_[k] * values_[k];
    }
  }
  return d;
}

}  // namespace dopf::sparse
