#pragma once

#include <span>
#include <vector>

#include "sparse/csr.hpp"

namespace dopf::sparse {

/// Reverse Cuthill-McKee fill-reducing ordering of a symmetric pattern.
///
/// The normal-equations matrices arising from radial distribution feeders are
/// nearly tree-structured, for which bandwidth-style orderings are close to
/// optimal; RCM keeps the reference interior-point factorization sparse even
/// on the 8500-bus instance.
///
/// Returns `perm` with perm[new_index] = old_index. Works on the pattern of
/// `a` symmetrized with its transpose; `a` must be square.
std::vector<int> reverse_cuthill_mckee(const CsrMatrix& a);

/// inverse[perm[k]] = k.
std::vector<int> invert_permutation(std::span<const int> perm);

/// P A P^T for a square matrix; entry (i,j) moves to (iperm[i], iperm[j]).
CsrMatrix permute_symmetric(const CsrMatrix& a, std::span<const int> perm);

}  // namespace dopf::sparse
