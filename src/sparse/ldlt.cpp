#include "sparse/ldlt.hpp"

#include <stdexcept>
#include <string>

#include "linalg/cholesky.hpp"  // for SingularMatrixError
#include "sparse/ordering.hpp"

namespace dopf::sparse {

SparseLdlt::SparseLdlt(const CsrMatrix& a, Ordering ordering) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("SparseLdlt: matrix must be square");
  }
  n_ = a.rows();

  if (ordering == Ordering::kRcm) {
    perm_ = reverse_cuthill_mckee(a);
  } else {
    perm_.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) perm_[i] = static_cast<int>(i);
  }
  iperm_ = invert_permutation(perm_);

  // Build the permuted upper-triangular pattern in CSC form. Entry (i, j) of
  // the original lower triangle (j <= i) maps to permuted coordinates
  // (pi, pj) = (iperm[i], iperm[j]); we store it in the column max(pi, pj)
  // with row index min(pi, pj), which is the upper-CSC convention.
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  struct Entry {
    int row;
    std::int64_t src;
  };
  std::vector<std::vector<Entry>> cols(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::int64_t k = rp[i]; k < rp[i + 1]; ++k) {
      const std::size_t j = static_cast<std::size_t>(ci[k]);
      if (j > i) continue;  // read lower triangle (and diagonal) only
      const int pi = iperm_[i];
      const int pj = iperm_[j];
      const int col = pi > pj ? pi : pj;
      const int row = pi > pj ? pj : pi;
      cols[col].push_back({row, k});
    }
  }
  ap_.assign(n_ + 1, 0);
  for (std::size_t c = 0; c < n_; ++c) {
    ap_[c + 1] = ap_[c] + static_cast<std::int64_t>(cols[c].size());
  }
  ai_.resize(static_cast<std::size_t>(ap_[n_]));
  asrc_.resize(ai_.size());
  for (std::size_t c = 0; c < n_; ++c) {
    std::int64_t pos = ap_[c];
    for (const Entry& e : cols[c]) {
      ai_[pos] = e.row;
      asrc_[pos] = e.src;
      ++pos;
    }
  }

  // Symbolic phase (LDL-package style): elimination tree + column counts.
  parent_.assign(n_, -1);
  std::vector<int> flag(n_);
  std::vector<std::int64_t> lnz(n_, 0);
  for (std::size_t k = 0; k < n_; ++k) {
    flag[k] = static_cast<int>(k);
    for (std::int64_t p = ap_[k]; p < ap_[k + 1]; ++p) {
      int i = ai_[p];
      if (i >= static_cast<int>(k)) continue;
      for (; flag[i] != static_cast<int>(k); i = parent_[i]) {
        if (parent_[i] == -1) parent_[i] = static_cast<int>(k);
        ++lnz[i];
        flag[i] = static_cast<int>(k);
      }
    }
  }
  lp_.assign(n_ + 1, 0);
  for (std::size_t k = 0; k < n_; ++k) lp_[k + 1] = lp_[k] + lnz[k];
  li_.resize(static_cast<std::size_t>(lp_[n_]));
  lx_.resize(li_.size());
  d_.resize(n_);
}

void SparseLdlt::factorize(const CsrMatrix& a, double diag_shift) {
  if (a.rows() != n_ || a.cols() != n_) {
    throw std::invalid_argument("SparseLdlt::factorize: dimension mismatch");
  }
  const auto ax = a.values();

  std::vector<double> y(n_, 0.0);
  std::vector<int> pattern(n_);
  std::vector<int> flag(n_, -1);
  std::vector<std::int64_t> lnz_count(n_, 0);

  for (std::size_t k = 0; k < n_; ++k) {
    std::size_t top = n_;
    flag[k] = static_cast<int>(k);
    y[k] = 0.0;
    for (std::int64_t p = ap_[k]; p < ap_[k + 1]; ++p) {
      int i = ai_[p];
      if (i > static_cast<int>(k)) continue;
      y[i] += ax[asrc_[p]];
      int len = 0;
      // Reuse the tail of `pattern` as a temporary stack for the path to the
      // root, then commit it in reverse so the row pattern stays topological.
      static thread_local std::vector<int> stack;
      stack.clear();
      for (; flag[i] != static_cast<int>(k); i = parent_[i]) {
        stack.push_back(i);
        flag[i] = static_cast<int>(k);
        ++len;
      }
      while (len > 0) pattern[--top] = stack[--len];
    }

    double dk = y[k] + diag_shift;
    y[k] = 0.0;
    for (; top < n_; ++top) {
      const int i = pattern[top];
      const double yi = y[i];
      y[i] = 0.0;
      const std::int64_t p2 = lp_[i] + lnz_count[i];
      for (std::int64_t p = lp_[i]; p < p2; ++p) {
        y[li_[p]] -= lx_[p] * yi;
      }
      const double lki = yi / d_[i];
      dk -= lki * yi;
      li_[p2] = static_cast<int>(k);
      lx_[p2] = lki;
      ++lnz_count[i];
    }
    if (dk <= 0.0) {
      throw dopf::linalg::SingularMatrixError(
          "SparseLdlt: non-positive pivot " + std::to_string(dk) +
          " at column " + std::to_string(k) +
          " (matrix not positive definite; increase diag_shift)");
    }
    d_[k] = dk;
  }
  factorized_ = true;
}

std::vector<double> SparseLdlt::solve(std::span<const double> b) const {
  if (!factorized_) {
    throw std::logic_error("SparseLdlt::solve: factorize() first");
  }
  if (b.size() != n_) {
    throw std::invalid_argument("SparseLdlt::solve: size mismatch");
  }
  // Permute, L y = Pb, D z = y, L^T w = z, un-permute.
  std::vector<double> x(n_);
  for (std::size_t k = 0; k < n_; ++k) x[k] = b[perm_[k]];
  for (std::size_t j = 0; j < n_; ++j) {
    const double xj = x[j];
    if (xj == 0.0) continue;
    for (std::int64_t p = lp_[j]; p < lp_[j + 1]; ++p) {
      x[li_[p]] -= lx_[p] * xj;
    }
  }
  for (std::size_t j = 0; j < n_; ++j) x[j] /= d_[j];
  for (std::size_t jj = n_; jj-- > 0;) {
    double sum = x[jj];
    for (std::int64_t p = lp_[jj]; p < lp_[jj + 1]; ++p) {
      sum -= lx_[p] * x[li_[p]];
    }
    x[jj] = sum;
  }
  std::vector<double> out(n_);
  for (std::size_t k = 0; k < n_; ++k) out[perm_[k]] = x[k];
  return out;
}

}  // namespace dopf::sparse
