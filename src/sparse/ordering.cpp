#include "sparse/ordering.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace dopf::sparse {

namespace {

/// Symmetrized adjacency (pattern of A + A^T, excluding the diagonal).
std::vector<std::vector<int>> build_adjacency(const CsrMatrix& a) {
  const std::size_t n = a.rows();
  std::vector<std::vector<int>> adj(n);
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::int64_t k = rp[i]; k < rp[i + 1]; ++k) {
      const int j = static_cast<int>(ci[k]);
      if (static_cast<std::size_t>(j) == i) continue;
      adj[i].push_back(j);
      adj[j].push_back(static_cast<int>(i));
    }
  }
  for (auto& row : adj) {
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
  }
  return adj;
}

}  // namespace

std::vector<int> reverse_cuthill_mckee(const CsrMatrix& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("reverse_cuthill_mckee: matrix must be square");
  }
  const std::size_t n = a.rows();
  const auto adj = build_adjacency(a);

  std::vector<int> degree(n);
  for (std::size_t i = 0; i < n; ++i) degree[i] = static_cast<int>(adj[i].size());

  std::vector<bool> visited(n, false);
  std::vector<int> order;
  order.reserve(n);

  // Process each connected component from a minimum-degree start node
  // (a cheap peripheral-node heuristic).
  for (std::size_t pass = 0; pass < n; ++pass) {
    if (order.size() == n) break;
    int start = -1;
    int best_deg = static_cast<int>(n) + 1;
    for (std::size_t i = 0; i < n; ++i) {
      if (!visited[i] && degree[i] < best_deg) {
        best_deg = degree[i];
        start = static_cast<int>(i);
      }
    }
    if (start < 0) break;

    std::queue<int> frontier;
    frontier.push(start);
    visited[start] = true;
    std::vector<int> neighbors;
    while (!frontier.empty()) {
      const int u = frontier.front();
      frontier.pop();
      order.push_back(u);
      neighbors.clear();
      for (int v : adj[u]) {
        if (!visited[v]) {
          visited[v] = true;
          neighbors.push_back(v);
        }
      }
      std::sort(neighbors.begin(), neighbors.end(),
                [&](int x, int y) { return degree[x] < degree[y]; });
      for (int v : neighbors) frontier.push(v);
    }
  }

  std::reverse(order.begin(), order.end());
  return order;
}

std::vector<int> invert_permutation(std::span<const int> perm) {
  std::vector<int> inv(perm.size());
  for (std::size_t k = 0; k < perm.size(); ++k) {
    inv[perm[k]] = static_cast<int>(k);
  }
  return inv;
}

CsrMatrix permute_symmetric(const CsrMatrix& a, std::span<const int> perm) {
  if (a.rows() != a.cols() || perm.size() != a.rows()) {
    throw std::invalid_argument("permute_symmetric: dimension mismatch");
  }
  const auto iperm = invert_permutation(perm);
  std::vector<Triplet> trips;
  trips.reserve(a.nnz());
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  const auto v = a.values();
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::int64_t k = rp[i]; k < rp[i + 1]; ++k) {
      trips.push_back({iperm[i], iperm[ci[k]], v[k]});
    }
  }
  return CsrMatrix::from_triplets(a.rows(), a.cols(), trips);
}

}  // namespace dopf::sparse
