#include "multiperiod/multiperiod.hpp"

#include <stdexcept>

#include "linalg/vector_ops.hpp"

namespace dopf::multiperiod {

using dopf::linalg::kInfinity;
using dopf::network::Generator;
using dopf::network::Network;
using dopf::network::PerPhase;
using dopf::network::Phase;
using dopf::opf::Component;
using dopf::opf::DistributedProblem;
using dopf::opf::ModelError;

double MultiPeriodProblem::net_injection(std::span<const double> x,
                                         std::size_t k, int t) const {
  double total = 0.0;
  for (int idx : storage_vars[k].charge[t]) {
    if (idx >= 0) total += x[idx];
  }
  for (int idx : storage_vars[k].discharge[t]) {
    if (idx >= 0) total += x[idx];
  }
  return total;
}

MultiPeriodProblem build_multiperiod(
    const Network& net, const MultiPeriodSpec& spec,
    const dopf::opf::DecomposeOptions& decompose_options) {
  if (spec.periods < 1) {
    throw std::invalid_argument("build_multiperiod: periods must be >= 1");
  }
  std::vector<double> load_scale = spec.load_scale;
  if (load_scale.empty()) load_scale.assign(spec.periods, 1.0);
  std::vector<double> price = spec.price;
  if (price.empty()) price.assign(spec.periods, 1.0);
  if (load_scale.size() != static_cast<std::size_t>(spec.periods) ||
      price.size() != static_cast<std::size_t>(spec.periods)) {
    throw std::invalid_argument(
        "build_multiperiod: load_scale/price must have one entry per period");
  }
  for (const Storage& st : spec.storages) {
    if (st.bus < 0 || static_cast<std::size_t>(st.bus) >= net.num_buses()) {
      throw std::invalid_argument("build_multiperiod: storage at unknown bus");
    }
    if (st.energy_init > st.energy_max || st.energy_init < 0.0 ||
        st.charge_max < 0.0 || st.discharge_max < 0.0 ||
        st.efficiency <= 0.0 || st.efficiency > 1.0) {
      throw std::invalid_argument(
          "build_multiperiod: inconsistent storage parameters for '" +
          st.name + "'");
    }
  }

  MultiPeriodProblem mp;
  mp.periods = spec.periods;
  mp.period_hours = spec.period_hours;
  mp.storage_vars.resize(spec.storages.size());
  for (auto& sv : mp.storage_vars) {
    sv.soc.assign(spec.periods, -1);
    sv.charge.assign(spec.periods, {-1, -1, -1});
    sv.discharge.assign(spec.periods, {-1, -1, -1});
  }

  DistributedProblem& stacked = mp.problem;

  // ---- Per-period blocks.
  for (int t = 0; t < spec.periods; ++t) {
    Network period_net = net;  // value copy
    for (std::size_t l = 0; l < period_net.num_loads(); ++l) {
      auto& load = period_net.load_mutable(static_cast<int>(l));
      for (Phase p : load.phases.phases()) {
        load.p_ref[p] *= load_scale[t];
        load.q_ref[p] *= load_scale[t];
      }
    }
    // Time-varying substation energy price (generator 0 by convention).
    period_net.generator_mutable(0).cost = price[t];

    // Storage shows up in each period as a charge "generator" (p <= 0) and
    // a discharge generator (p >= 0) at its bus; costs are zero — the value
    // of storage comes from shifting substation purchases across periods.
    for (std::size_t k = 0; k < spec.storages.size(); ++k) {
      const Storage& st = spec.storages[k];
      Generator chg;
      chg.name = st.name + ".chg";
      chg.bus = st.bus;
      chg.phases = st.phases;
      chg.p_min = PerPhase<double>::uniform(-st.charge_max);
      chg.p_max = PerPhase<double>::uniform(0.0);
      chg.q_min = PerPhase<double>::uniform(0.0);
      chg.q_max = PerPhase<double>::uniform(0.0);
      chg.cost = 0.0;
      Generator dis = chg;
      dis.name = st.name + ".dis";
      dis.p_min = PerPhase<double>::uniform(0.0);
      dis.p_max = PerPhase<double>::uniform(st.discharge_max);
      const int chg_id = period_net.add_generator(std::move(chg));
      const int dis_id = period_net.add_generator(std::move(dis));
      if (t == 0) mp.storage_gen_ids.push_back({chg_id, dis_id});
    }
    period_net.validate();

    dopf::opf::OpfModel model = dopf::opf::build_model(period_net);
    DistributedProblem block =
        dopf::opf::decompose(period_net, model, decompose_options);

    const std::size_t offset = stacked.num_vars;
    mp.period_offset.push_back(offset);
    stacked.num_vars += block.num_vars;
    stacked.c.insert(stacked.c.end(), block.c.begin(), block.c.end());
    stacked.lb.insert(stacked.lb.end(), block.lb.begin(), block.lb.end());
    stacked.ub.insert(stacked.ub.end(), block.ub.begin(), block.ub.end());
    stacked.x0.insert(stacked.x0.end(), block.x0.begin(), block.x0.end());
    for (Component& comp : block.components) {
      for (int& g : comp.global) g += static_cast<int>(offset);
      comp.name = "t" + std::to_string(t) + ":" + comp.name;
      stacked.components.push_back(std::move(comp));
    }

    // Record storage variable positions inside this block.
    for (std::size_t k = 0; k < spec.storages.size(); ++k) {
      const auto [chg_id, dis_id] = mp.storage_gen_ids[k];
      for (Phase p : spec.storages[k].phases.phases()) {
        mp.storage_vars[k].charge[t][dopf::network::index(p)] =
            model.vars.gen_p(chg_id, p) + static_cast<int>(offset);
        mp.storage_vars[k].discharge[t][dopf::network::index(p)] =
            model.vars.gen_p(dis_id, p) + static_cast<int>(offset);
      }
    }
    mp.period_models.push_back(std::move(model));
    mp.period_nets.push_back(std::move(period_net));
  }

  // ---- State-of-charge variables (appended after all period blocks).
  for (std::size_t k = 0; k < spec.storages.size(); ++k) {
    const Storage& st = spec.storages[k];
    for (int t = 0; t < spec.periods; ++t) {
      mp.storage_vars[k].soc[t] = static_cast<int>(stacked.num_vars++);
      stacked.c.push_back(0.0);
      stacked.lb.push_back(0.0);
      stacked.ub.push_back(st.energy_max);
      stacked.x0.push_back(st.energy_init);
    }
    if (st.sustain) {
      // Final SOC must return to at least the initial level.
      stacked.lb[mp.storage_vars[k].soc[spec.periods - 1]] = st.energy_init;
    }
  }

  // ---- One time-coupling component per storage device:
  //   e_t - e_{t-1} + h * (sum_ph dis + eta * sum_ph chg) = 0,
  // with e_{-1} := energy_init moved to the right-hand side.
  const double h = spec.period_hours;
  for (std::size_t k = 0; k < spec.storages.size(); ++k) {
    const Storage& st = spec.storages[k];
    Component comp;
    comp.name = "storage:" + st.name;

    // Local variable set: first all SOCs, then all power copies.
    auto local_of = [&](int global) {
      for (std::size_t j = 0; j < comp.global.size(); ++j) {
        if (comp.global[j] == global) return static_cast<int>(j);
      }
      comp.global.push_back(global);
      return static_cast<int>(comp.global.size() - 1);
    };

    std::vector<std::vector<std::pair<int, double>>> rows(spec.periods);
    std::vector<double> rhs(spec.periods, 0.0);
    for (int t = 0; t < spec.periods; ++t) {
      rows[t].push_back({local_of(mp.storage_vars[k].soc[t]), 1.0});
      if (t == 0) {
        rhs[t] = st.energy_init;
      } else {
        rows[t].push_back({local_of(mp.storage_vars[k].soc[t - 1]), -1.0});
      }
      for (int idx : mp.storage_vars[k].discharge[t]) {
        if (idx >= 0) rows[t].push_back({local_of(idx), h});
      }
      for (int idx : mp.storage_vars[k].charge[t]) {
        if (idx >= 0) rows[t].push_back({local_of(idx), h * st.efficiency});
      }
    }
    comp.a = dopf::linalg::Matrix(spec.periods, comp.global.size());
    comp.b = rhs;
    for (int t = 0; t < spec.periods; ++t) {
      for (const auto& [j, coeff] : rows[t]) {
        comp.a(t, j) += coeff;
      }
    }
    comp.rows_before_reduction = spec.periods;
    stacked.components.push_back(std::move(comp));
  }

  // ---- Consensus copy counts over the stacked problem.
  stacked.copy_count.assign(stacked.num_vars, 0);
  for (const Component& comp : stacked.components) {
    for (int g : comp.global) ++stacked.copy_count[g];
  }
  for (std::size_t i = 0; i < stacked.copy_count.size(); ++i) {
    if (stacked.copy_count[i] == 0) {
      throw ModelError("multiperiod: variable " + std::to_string(i) +
                       " covered by no component");
    }
  }
  return mp;
}

}  // namespace dopf::multiperiod
