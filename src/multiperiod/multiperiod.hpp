#pragma once

#include <array>
#include <vector>

#include "network/network.hpp"
#include "opf/decompose.hpp"
#include "opf/model.hpp"

/// Multi-period distributed OPF with energy storage.
///
/// Extension beyond the paper's single-period evaluation: its component-wise
/// consensus formulation accommodates *time-coupled* components naturally
/// (the setting of the paper's ref [15], "distributed multi-period
/// three-phase OPF"). Each period contributes a full copy of the
/// single-period model (9); each storage device contributes one extra
/// component whose equality block links its state of charge across periods
/// and whose consensus copies tie into every period's bus balance. The
/// result is an ordinary DistributedProblem, solvable unchanged by
/// core::SolverFreeAdmm (or its GPU-simulated twin).
namespace dopf::multiperiod {

/// A grid-connected battery attached to a bus. Charging and discharging are
/// separate per-phase variables (so the round-trip efficiency stays linear:
/// it is applied on the charge side); the network sees their sum as an
/// injection.
struct Storage {
  std::string name;
  int bus = -1;
  dopf::network::PhaseSet phases = dopf::network::PhaseSet::abc();
  double charge_max = 0.5;     ///< per-phase charging limit (power units)
  double discharge_max = 0.5;  ///< per-phase discharging limit
  double energy_max = 2.0;     ///< usable capacity (power units x hours)
  double energy_init = 1.0;    ///< state of charge at t = 0
  double efficiency = 0.9;     ///< round-trip, applied on the charge side
  /// Require the final state of charge to be >= energy_init
  /// (sustainability over the horizon).
  bool sustain = true;
};

struct MultiPeriodSpec {
  int periods = 24;
  double period_hours = 1.0;
  /// Per-period multiplier applied to every load's reference power
  /// (size == periods; defaults to all-ones).
  std::vector<double> load_scale;
  /// Per-period marginal price of substation energy (size == periods;
  /// defaults to all-ones). Price spread is what makes storage useful.
  std::vector<double> price;
  std::vector<Storage> storages;
};

/// Index bookkeeping for one storage device in the stacked problem.
struct StorageVars {
  /// Global index of the state of charge e_t, per period.
  std::vector<int> soc;
  /// Global indices of the charging power (<= 0) per period and phase
  /// (-1 where the phase is absent).
  std::vector<std::array<int, 3>> charge;
  /// Global indices of the discharging power (>= 0) per period and phase.
  std::vector<std::array<int, 3>> discharge;
};

/// The stacked multi-period problem plus the maps needed to interpret its
/// solution.
struct MultiPeriodProblem {
  dopf::opf::DistributedProblem problem;
  int periods = 0;
  double period_hours = 1.0;
  /// Global-variable offset of each period's block.
  std::vector<std::size_t> period_offset;
  /// Per-period single-period models (loads scaled, storage injections
  /// added as generators) for residual checks / SolutionView.
  std::vector<dopf::opf::OpfModel> period_models;
  /// Per-period networks matching period_models.
  std::vector<dopf::network::Network> period_nets;
  std::vector<StorageVars> storage_vars;
  /// Generator ids (charge, discharge) of storage device k inside every
  /// period net.
  std::vector<std::pair<int, int>> storage_gen_ids;

  /// State of charge of storage k after period t (0-based), from a solved x.
  double soc(std::span<const double> x, std::size_t k, int t) const {
    return x[storage_vars[k].soc[t]];
  }
  /// Net injection of storage k in period t summed over phases.
  double net_injection(std::span<const double> x, std::size_t k, int t) const;
};

/// Stack `spec.periods` copies of the network's OPF, wire in the storage
/// devices, and decompose. Throws ModelError / invalid_argument on
/// inconsistent specs.
MultiPeriodProblem build_multiperiod(const dopf::network::Network& net,
                                     const MultiPeriodSpec& spec,
                                     const dopf::opf::DecomposeOptions&
                                         decompose_options = {});

}  // namespace dopf::multiperiod
