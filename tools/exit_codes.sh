#!/bin/sh
# Exit-code contract for dopf_solve. Scripts and CI dispatch on these, so
# each documented code is pinned here:
#   0  converged / reference optimal
#   1  usage or input errors
#   2  iteration or time limit without convergence
#   3  divergence (non-finite iterates)
#   4  stalled (watchdog gave up on a persistent stall)
#
# usage: exit_codes.sh <path-to-dopf_solve>
set -u

solve="$1"
failures=0

expect() {
  want="$1"; label="$2"; shift 2
  "$@" >/dev/null 2>&1
  got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL: $label: expected exit $want, got $got" >&2
    failures=$((failures + 1))
  else
    echo "ok: $label -> $got"
  fi
}

expect 0 "converged" \
  "$solve" builtin:ieee13 --eps 1e-2 --max-iters 20000
expect 1 "usage error" \
  "$solve" --frobnicate builtin:ieee13
expect 1 "bad input" \
  "$solve" /nonexistent.feeder
expect 2 "iteration limit" \
  "$solve" builtin:ieee13 --max-iters 5
expect 3 "diverged" \
  "$solve" builtin:ieee13 --rho 1e308 --max-iters 1000
expect 4 "stalled" \
  "$solve" builtin:ieee13_overload --max-iters 20000 --watchdog

exit "$failures"
