#!/bin/sh
# Exit-code contract for dopf_solve. Scripts and CI dispatch on these, so
# each documented code is pinned here:
#   0  converged / reference optimal
#   1  usage or input errors
#   2  iteration or time limit without convergence
#   3  divergence (non-finite iterates)
#   4  stalled (watchdog gave up on a persistent stall)
#   5  preflight rejected the input (sanitation or conditioning)
#   6  cancelled (signal or --deadline) — final durable checkpoint written
#   7  durable I/O failure (retries exhausted or simulated crash)
#
# usage: exit_codes.sh <path-to-dopf_solve>
set -u

solve="$1"
failures=0

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT INT TERM

# A numerically degenerate (but structurally valid and feasible) feeder:
# line l1's impedance is constructed so its two voltage-coupling rows are
# nearly parallel (1 - |cos| ~ 1e-13) — the raw Gram matrix is on the edge
# of losing positive definiteness. Strict preflight must refuse it with row
# provenance (exit 5); warn/auto must solve it (exit 0) since RREF recovers
# a well-conditioned block.
degenerate="$tmpdir/degenerate.feeder"
cat > "$degenerate" <<'EOF'
feeder v1
bus src ab 1 1 1 1 1 1 0 0 0 0 0 0
bus b1 ab 0.9025 0.9025 0.9025 1.1025 1.1025 1.1025 0 0 0 0 0 0
bus b2 ab 0.9025 0.9025 0.9025 1.1025 1.1025 1.1025 0 0 0 0 0 0
gen g1 src ab 0 0 0 inf inf inf -inf -inf -inf inf inf inf 1
load d1 b2 ab wye 0 0 0 0 0 0 1e-8 1e-8 0 0 0 0
line l1 src b1 ab 0 1 1 1 inf inf inf 866025 0 0 0 866025 0 0 0 0 500000 1000000 0 -1000000 -500000 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0
line l2 b1 b2 ab 0 1 1 1 inf inf inf 0.01 0 0 0 0.01 0 0 0 0 0.01 0 0 0 0.01 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0
EOF

# And a structurally corrupt one: NaN load data must be rejected by every
# preflight policy (and by the feeder parser's non-finite gate, exit 1,
# before preflight even sees it).
corrupt="$tmpdir/corrupt.feeder"
sed 's/1e-8 1e-8 0/nan 1e-8 0/' "$degenerate" > "$corrupt"

expect() {
  want="$1"; label="$2"; shift 2
  "$@" >/dev/null 2>&1
  got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL: $label: expected exit $want, got $got" >&2
    failures=$((failures + 1))
  else
    echo "ok: $label -> $got"
  fi
}

expect 0 "converged" \
  "$solve" builtin:ieee13 --eps 1e-2 --max-iters 20000
expect 1 "usage error" \
  "$solve" --frobnicate builtin:ieee13
expect 1 "bad input" \
  "$solve" /nonexistent.feeder
expect 2 "iteration limit" \
  "$solve" builtin:ieee13 --max-iters 5
expect 3 "diverged" \
  "$solve" builtin:ieee13 --rho 1e308 --max-iters 1000
expect 4 "stalled" \
  "$solve" builtin:ieee13_overload --max-iters 20000 --watchdog
expect 5 "preflight strict rejection" \
  "$solve" "$degenerate" --strict
expect 5 "preflight strict rejection (preflight-only)" \
  "$solve" "$degenerate" --strict --preflight-only
expect 0 "preflight auto remediation solves the degenerate feeder" \
  "$solve" "$degenerate" --preflight auto --eps 1e-2 --max-iters 20000
expect 0 "default warn policy also solves it" \
  "$solve" "$degenerate" --eps 1e-2 --max-iters 20000
expect 1 "non-finite feeder data rejected by the parser" \
  "$solve" "$corrupt" --preflight off

# --- cancellation (6) and durable I/O failure (7) ------------------------

# A deadline that cannot be met (tight eps on ieee123) must exit 6 and still
# write a valid final checkpoint.
expect 6 "deadline cancellation" \
  "$solve" builtin:ieee123 --eps 1e-12 --max-iters 100000000 \
    --deadline 0.05 --checkpoint "$tmpdir/deadline.ckpt"
if ! head -n 1 "$tmpdir/deadline.ckpt" | grep -q "dopf-checkpoint v1"; then
  echo "FAIL: deadline cancellation left no valid checkpoint" >&2
  failures=$((failures + 1))
else
  echo "ok: deadline cancellation wrote a valid checkpoint"
fi

# SIGINT mid-stream: the handler requests cooperative cancellation, the
# driver finishes the in-flight step boundary, durably checkpoints the last
# completed step into the A/B pair, and exits 6.
profile="$tmpdir/sigint.profile"
{
  echo "profile sigint"
  echo "steps 400"
  awk 'BEGIN { for (k = 0; k < 400; k += 2)
    printf "step %d\n  load constant scale %s\n", k, (k % 4 ? "0.95" : "1.05") }'
} > "$profile"
"$solve" --stream "$profile" --eps 1e-6 \
  --checkpoint "$tmpdir/sigint.ckpt" --checkpoint-every-steps 1 \
  builtin:ieee13 >/dev/null 2>&1 &
pid=$!
sleep 1
kill -INT "$pid" 2>/dev/null
wait "$pid"
got=$?
if [ "$got" -ne 6 ]; then
  echo "FAIL: SIGINT mid-stream: expected exit 6, got $got" >&2
  failures=$((failures + 1))
else
  echo "ok: SIGINT mid-stream -> 6"
fi
slot=""
for s in "$tmpdir/sigint.ckpt.a" "$tmpdir/sigint.ckpt.b"; do
  [ -f "$s" ] && slot="$s"
done
if [ -z "$slot" ] || ! head -n 1 "$slot" | grep -q "dopf-checkpoint v1"; then
  echo "FAIL: SIGINT left no durable A/B checkpoint slot" >&2
  failures=$((failures + 1))
else
  echo "ok: SIGINT wrote durable checkpoint slot $(basename "$slot")"
fi

# Simulated crash during a checkpoint write: exit 7, temp file left behind
# (a crashed process cleans nothing up), target never torn.
expect 7 "simulated crash during durable write" \
  "$solve" builtin:ieee13 --eps 1e-2 --max-iters 20000 \
    --checkpoint "$tmpdir/crash.ckpt" --checkpoint-every 10 \
    --io-faults "crash:op=1,path=crash.ckpt"

# Persistent ENOSPC with the retry budget exhausted: exit 7.
expect 7 "durable write retries exhausted" \
  "$solve" builtin:ieee13 --eps 1e-2 --max-iters 20000 \
    --checkpoint "$tmpdir/enospc.ckpt" --checkpoint-every 10 \
    --io-faults "enospc:op=1,times=99,path=enospc.ckpt"

exit "$failures"
