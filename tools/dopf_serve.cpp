// dopf_serve — long-lived distributed-OPF solve server.
//
// Usage:
//   dopf_serve --socket PATH [options]
//
//   --socket PATH         unix-domain socket to listen on (required)
//   --workers N           solve worker threads (default 2)
//   --queue-depth N       bounded request ring depth (default 16); a full
//                         ring sheds with a typed kOverloaded rejection
//   --cache-budget-mb M   model-cache resident budget (default 256)
//   --checkpoint-dir DIR  durable drain checkpoints for in-flight solves;
//                         without it drained work is shed, not resumable
//   --serve-faults SPEC   deterministic transport fault schedule, e.g.
//                         "drop:op=2,frame=response;delay:op=1,ms=80"
//                         (see src/serve/fault.hpp)
//   --no-fsync            skip fsync in drain checkpoints (tests on tmpfs)
//   --metrics-json        print a JSON stats object on exit (field names
//                         shared with dopf_solve --json)
//
// Lifecycle: serves until SIGTERM/SIGINT, then drains — stops admitting,
// sheds queued-but-unstarted work with kShuttingDown, lets in-flight
// solves finish or checkpoints them durably (kDrained), joins, exits.
//
// Exit codes: 0 clean drain, 1 usage/startup failure, 6 drained with
// checkpoints written (resubmit those requests with resume), 7 durable
// I/O failure while checkpointing.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/cancel.hpp"
#include "runtime/signals.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH [--workers N] [--queue-depth N]\n"
               "  [--cache-budget-mb M] [--checkpoint-dir DIR]\n"
               "  [--serve-faults SPEC] [--no-fsync] [--metrics-json]\n",
               argv0);
  std::exit(1);
}

dopf::core::CancelToken g_drain;

long parse_long(const char* arg, const char* what, const char* argv0) {
  char* end = nullptr;
  const long v = std::strtol(arg, &end, 10);
  if (end == arg || *end != '\0') {
    std::fprintf(stderr, "%s: bad integer value '%s' for %s\n", argv0, arg,
                 what);
    usage(argv0);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  dopf::serve::ServeOptions opts;
  opts.drain = &g_drain;
  bool metrics_json = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", argv[0], arg.c_str());
        usage(argv[0]);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      opts.socket_path = next();
    } else if (arg == "--workers") {
      opts.workers = static_cast<int>(parse_long(next(), "--workers", argv[0]));
    } else if (arg == "--queue-depth") {
      const long v = parse_long(next(), "--queue-depth", argv[0]);
      if (v < 1) {
        std::fprintf(stderr, "%s: --queue-depth must be >= 1\n", argv[0]);
        return 1;
      }
      opts.queue_depth = static_cast<std::size_t>(v);
    } else if (arg == "--cache-budget-mb") {
      const long v = parse_long(next(), "--cache-budget-mb", argv[0]);
      if (v < 1) {
        std::fprintf(stderr, "%s: --cache-budget-mb must be >= 1\n", argv[0]);
        return 1;
      }
      opts.cache_budget_bytes = static_cast<std::size_t>(v) << 20;
    } else if (arg == "--checkpoint-dir") {
      opts.checkpoint_dir = next();
    } else if (arg == "--serve-faults") {
      try {
        opts.faults = dopf::serve::ServeFaultPlan::parse(next());
      } catch (const dopf::serve::WireError& e) {
        std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
        return 1;
      }
    } else if (arg == "--no-fsync") {
      opts.durable.fsync = false;
    } else if (arg == "--metrics-json") {
      metrics_json = true;
    } else {
      std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0], arg.c_str());
      usage(argv[0]);
    }
  }
  if (opts.socket_path.empty()) {
    std::fprintf(stderr, "%s: --socket PATH is required\n", argv[0]);
    usage(argv[0]);
  }
  if (opts.workers < 1) {
    std::fprintf(stderr, "%s: --workers must be >= 1\n", argv[0]);
    return 1;
  }

  dopf::runtime::install_cancel_signal_handlers(&g_drain);

  dopf::serve::Server server(opts);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: startup failed: %s\n", argv[0], e.what());
    return 1;
  }
  std::printf("dopf_serve: listening on %s (%d workers, queue %zu)\n",
              opts.socket_path.c_str(), opts.workers, opts.queue_depth);
  std::fflush(stdout);

  const int code = server.run();
  const auto st = server.stats();
  std::printf(
      "dopf_serve: drained (%s): admitted=%llu solved=%llu "
      "rejected{overload=%llu deadline=%llu preflight=%llu bad=%llu "
      "wire=%llu shutdown=%llu} drained_checkpointed=%llu pings=%llu "
      "cache{hits=%llu misses=%llu evictions=%llu} "
      "faults{drop=%d corrupt=%d truncate=%d delay=%d}\n",
      g_drain.reason(), static_cast<unsigned long long>(st.admitted),
      static_cast<unsigned long long>(st.solved),
      static_cast<unsigned long long>(st.rejected_overload),
      static_cast<unsigned long long>(st.rejected_deadline),
      static_cast<unsigned long long>(st.rejected_preflight),
      static_cast<unsigned long long>(st.rejected_bad_request),
      static_cast<unsigned long long>(st.rejected_wire),
      static_cast<unsigned long long>(st.rejected_shutdown),
      static_cast<unsigned long long>(st.drain_checkpointed),
      static_cast<unsigned long long>(st.pings),
      static_cast<unsigned long long>(st.cache.hits),
      static_cast<unsigned long long>(st.cache.misses),
      static_cast<unsigned long long>(st.cache.evictions), st.faults.dropped,
      st.faults.corrupted, st.faults.truncated, st.faults.delayed);
  if (metrics_json) {
    // Same "io"/"session" vocabulary as dopf_solve --json.
    std::printf(
        "{\"admitted\":%llu,\"solved\":%llu,"
        "\"rejected\":{\"overload\":%llu,\"deadline\":%llu,"
        "\"preflight\":%llu,\"bad_request\":%llu,\"wire\":%llu,"
        "\"shutdown\":%llu},\"drained_checkpointed\":%llu,"
        "\"io\":{\"writes\":%d,\"reads\":%d,\"retries\":%d,"
        "\"retry_seconds\":%.6f},"
        "\"session\":{\"solves\":%d,\"cold_solves\":%d,\"warm_solves\":%d,"
        "\"precompute_reuses\":%d,\"refactorizations\":%d,"
        "\"rhs_rebinds\":%d},"
        "\"cache\":{\"hits\":%llu,\"misses\":%llu,\"evictions\":%llu,"
        "\"resident_bytes\":%zu}}\n",
        static_cast<unsigned long long>(st.admitted),
        static_cast<unsigned long long>(st.solved),
        static_cast<unsigned long long>(st.rejected_overload),
        static_cast<unsigned long long>(st.rejected_deadline),
        static_cast<unsigned long long>(st.rejected_preflight),
        static_cast<unsigned long long>(st.rejected_bad_request),
        static_cast<unsigned long long>(st.rejected_wire),
        static_cast<unsigned long long>(st.rejected_shutdown),
        static_cast<unsigned long long>(st.drain_checkpointed), st.io.writes,
        st.io.reads, st.io.retries, st.io.retry_seconds, st.session.solves,
        st.session.cold_solves, st.session.warm_solves,
        st.session.precompute_reuses, st.session.refactorizations,
        st.session.rhs_rebinds, static_cast<unsigned long long>(st.cache.hits),
        static_cast<unsigned long long>(st.cache.misses),
        static_cast<unsigned long long>(st.cache.evictions),
        st.cache.resident_bytes);
  }
  return code;
}
