// dopf_serve — long-lived distributed-OPF solve server with supervised
// worker subprocesses (crash isolation).
//
// Usage:
//   dopf_serve --socket PATH [options]
//
//   --socket PATH         unix-domain socket to listen on (required)
//   --workers N           supervised solve worker subprocesses (default 2)
//   --queue-depth N       bounded request ring depth (default 16); a full
//                         ring sheds with a typed kOverloaded rejection
//   --max-conns N         concurrent client connection cap (default 64);
//                         excess connections shed with kOverloaded
//   --cache-budget-mb M   per-worker model-cache resident budget (default
//                         256)
//   --checkpoint-dir DIR  durable drain checkpoints for in-flight solves;
//                         without it drained work is shed, not resumable
//   --serve-faults SPEC   deterministic transport fault schedule, e.g.
//                         "drop:op=2,frame=response;delay:op=1,ms=80"
//                         (see src/serve/fault.hpp)
//   --crash-faults SPEC   deterministic worker-crash schedule keyed by
//                         dispatch ordinal, e.g. "signal:request=2" or
//                         "exit:request=5;hang:request=7" (see
//                         src/serve/supervisor.hpp)
//   --io-faults SPEC      filesystem failpoints forwarded to the workers'
//                         durable checkpoint I/O (src/runtime/fault.hpp)
//   --restart-budget N    worker restarts per slot before it degrades
//                         (default 8); a degraded server sheds typed, it
//                         never exits on a worker crash
//   --hang-timeout-ms N   SIGKILL a worker that takes longer than N ms to
//                         answer one dispatch (default 0 = disabled)
//   --quarantine-ttl-ms N how long a twice-crashing request content hash
//                         stays quarantined before readmission (default
//                         60000)
//   --no-fsync            skip fsync in drain checkpoints (tests on tmpfs)
//   --metrics-json        print a JSON stats object on exit (field names
//                         shared with dopf_solve --json)
//
// Worker mode (internal; the supervisor execs these):
//   dopf_serve --worker --worker-fd N [--cache-budget-mb M]
//     [--checkpoint-dir DIR] [--io-faults SPEC] [--no-fsync]
//
// Lifecycle: serves until SIGTERM/SIGINT, then drains — stops admitting,
// forwards the signal to the workers (in-flight solves checkpoint durably,
// kDrained), sheds queued-but-unstarted work with kShuttingDown, collects
// worker farewell stats, joins, exits. A worker crash (SIGSEGV, SIGABRT,
// OOM kill, unclean exit) is contained: the victim request is re-queued
// once, the worker restarted under a jittered backoff, and content that
// crashes workers twice is quarantined with a typed kQuarantined reject.
//
// Exit codes: 0 clean drain, 1 usage/startup failure, 6 drained with
// checkpoints written (resubmit those requests with resume), 7 durable
// I/O failure while checkpointing (in any worker).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/cancel.hpp"
#include "runtime/fault.hpp"
#include "runtime/signals.hpp"
#include "serve/server.hpp"
#include "serve/supervisor.hpp"
#include "serve/wire.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH [--workers N] [--queue-depth N]\n"
               "  [--max-conns N] [--cache-budget-mb M] [--checkpoint-dir "
               "DIR]\n"
               "  [--serve-faults SPEC] [--crash-faults SPEC] [--io-faults "
               "SPEC]\n"
               "  [--restart-budget N] [--hang-timeout-ms N]\n"
               "  [--quarantine-ttl-ms N] [--no-fsync] [--metrics-json]\n",
               argv0);
  std::exit(1);
}

dopf::core::CancelToken g_drain;

long parse_long(const char* arg, const char* what, const char* argv0) {
  char* end = nullptr;
  const long v = std::strtol(arg, &end, 10);
  if (end == arg || *end != '\0') {
    std::fprintf(stderr, "%s: bad integer value '%s' for %s\n", argv0, arg,
                 what);
    usage(argv0);
  }
  return v;
}

/// Worker mode: everything after "--worker" configures one subprocess that
/// serves solve requests over the inherited socketpair fd.
int worker_mode(int argc, char** argv) {
  dopf::serve::WorkerConfig cfg;
  int fd = -1;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", argv[0], arg.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--worker-fd") {
      fd = static_cast<int>(parse_long(next(), "--worker-fd", argv[0]));
    } else if (arg == "--cache-budget-mb") {
      cfg.cache_budget_bytes =
          static_cast<std::size_t>(
              parse_long(next(), "--cache-budget-mb", argv[0]))
          << 20;
    } else if (arg == "--checkpoint-dir") {
      cfg.checkpoint_dir = next();
    } else if (arg == "--io-faults") {
      try {
        cfg.fs_faults = dopf::runtime::FsFaultPlan::parse(next());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s (worker): %s\n", argv[0], e.what());
        return 1;
      }
    } else if (arg == "--no-fsync") {
      cfg.durable.fsync = false;
    } else {
      std::fprintf(stderr, "%s (worker): unknown option '%s'\n", argv[0],
                   arg.c_str());
      return 1;
    }
  }
  if (fd < 0) {
    std::fprintf(stderr, "%s (worker): --worker-fd is required\n", argv[0]);
    return 1;
  }
  return dopf::serve::worker_main(fd, cfg);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--worker") == 0) {
    return worker_mode(argc, argv);
  }

  dopf::serve::ServeOptions opts;
  opts.drain = &g_drain;
  bool metrics_json = false;
  long cache_budget_mb = 256;
  std::string io_faults_spec;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", argv[0], arg.c_str());
        usage(argv[0]);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      opts.socket_path = next();
    } else if (arg == "--workers") {
      opts.workers = static_cast<int>(parse_long(next(), "--workers", argv[0]));
    } else if (arg == "--queue-depth") {
      const long v = parse_long(next(), "--queue-depth", argv[0]);
      if (v < 1) {
        std::fprintf(stderr, "%s: --queue-depth must be >= 1\n", argv[0]);
        return 1;
      }
      opts.queue_depth = static_cast<std::size_t>(v);
    } else if (arg == "--max-conns") {
      const long v = parse_long(next(), "--max-conns", argv[0]);
      if (v < 1) {
        std::fprintf(stderr, "%s: --max-conns must be >= 1\n", argv[0]);
        return 1;
      }
      opts.max_connections = static_cast<int>(v);
    } else if (arg == "--cache-budget-mb") {
      cache_budget_mb = parse_long(next(), "--cache-budget-mb", argv[0]);
      if (cache_budget_mb < 1) {
        std::fprintf(stderr, "%s: --cache-budget-mb must be >= 1\n", argv[0]);
        return 1;
      }
      opts.cache_budget_bytes = static_cast<std::size_t>(cache_budget_mb)
                                << 20;
    } else if (arg == "--checkpoint-dir") {
      opts.checkpoint_dir = next();
    } else if (arg == "--serve-faults") {
      try {
        opts.faults = dopf::serve::ServeFaultPlan::parse(next());
      } catch (const dopf::serve::WireError& e) {
        std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
        return 1;
      }
    } else if (arg == "--crash-faults") {
      try {
        opts.crash_faults = dopf::serve::CrashFaultPlan::parse(next());
      } catch (const dopf::serve::WireError& e) {
        std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
        return 1;
      }
    } else if (arg == "--io-faults") {
      io_faults_spec = next();
      try {
        (void)dopf::runtime::FsFaultPlan::parse(io_faults_spec);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
        return 1;
      }
    } else if (arg == "--restart-budget") {
      const long v = parse_long(next(), "--restart-budget", argv[0]);
      if (v < 0) {
        std::fprintf(stderr, "%s: --restart-budget must be >= 0\n", argv[0]);
        return 1;
      }
      opts.restart_budget = static_cast<int>(v);
    } else if (arg == "--hang-timeout-ms") {
      const long v = parse_long(next(), "--hang-timeout-ms", argv[0]);
      if (v < 0) {
        std::fprintf(stderr, "%s: --hang-timeout-ms must be >= 0\n", argv[0]);
        return 1;
      }
      opts.hang_timeout_ms = static_cast<int>(v);
    } else if (arg == "--quarantine-ttl-ms") {
      const long v = parse_long(next(), "--quarantine-ttl-ms", argv[0]);
      if (v < 1) {
        std::fprintf(stderr, "%s: --quarantine-ttl-ms must be >= 1\n",
                     argv[0]);
        return 1;
      }
      opts.quarantine_ttl_ms = static_cast<int>(v);
    } else if (arg == "--no-fsync") {
      opts.durable.fsync = false;
    } else if (arg == "--metrics-json") {
      metrics_json = true;
    } else {
      std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0], arg.c_str());
      usage(argv[0]);
    }
  }
  if (opts.socket_path.empty()) {
    std::fprintf(stderr, "%s: --socket PATH is required\n", argv[0]);
    usage(argv[0]);
  }
  if (opts.workers < 1) {
    std::fprintf(stderr, "%s: --workers must be >= 1\n", argv[0]);
    return 1;
  }

  // The worker re-exec command: /proc/self/exe survives $PATH games and
  // cwd changes; the supervisor appends "--worker-fd N" per spawn.
  opts.worker_command = {"/proc/self/exe", "--worker", "--cache-budget-mb",
                         std::to_string(cache_budget_mb)};
  if (!opts.checkpoint_dir.empty()) {
    opts.worker_command.push_back("--checkpoint-dir");
    opts.worker_command.push_back(opts.checkpoint_dir);
  }
  if (!io_faults_spec.empty()) {
    opts.worker_command.push_back("--io-faults");
    opts.worker_command.push_back(io_faults_spec);
  }
  if (!opts.durable.fsync) opts.worker_command.push_back("--no-fsync");

  dopf::runtime::install_cancel_signal_handlers(&g_drain);

  dopf::serve::Server server(opts);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: startup failed: %s\n", argv[0], e.what());
    return 1;
  }
  std::printf("dopf_serve: listening on %s (%d workers, queue %zu)\n",
              opts.socket_path.c_str(), opts.workers, opts.queue_depth);
  std::fflush(stdout);

  const int code = server.run();
  const auto st = server.stats();
  std::printf(
      "dopf_serve: drained (%s): admitted=%llu solved=%llu "
      "rejected{overload=%llu deadline=%llu preflight=%llu bad=%llu "
      "wire=%llu shutdown=%llu quarantined=%llu degraded=%llu} "
      "drained_checkpointed=%llu pings=%llu "
      "workers{crashes=%llu restarts=%llu degraded=%llu requeued=%llu "
      "quarantined=%llu} "
      "cache{hits=%llu misses=%llu evictions=%llu} "
      "faults{drop=%d corrupt=%d truncate=%d delay=%d} "
      "crash_faults{signal=%d exit=%d hang=%d}\n",
      g_drain.reason(), static_cast<unsigned long long>(st.admitted),
      static_cast<unsigned long long>(st.solved),
      static_cast<unsigned long long>(st.rejected_overload),
      static_cast<unsigned long long>(st.rejected_deadline),
      static_cast<unsigned long long>(st.rejected_preflight),
      static_cast<unsigned long long>(st.rejected_bad_request),
      static_cast<unsigned long long>(st.rejected_wire),
      static_cast<unsigned long long>(st.rejected_shutdown),
      static_cast<unsigned long long>(st.rejected_quarantined),
      static_cast<unsigned long long>(st.rejected_degraded),
      static_cast<unsigned long long>(st.drain_checkpointed),
      static_cast<unsigned long long>(st.pings),
      static_cast<unsigned long long>(st.worker_crashes),
      static_cast<unsigned long long>(st.worker_restarts),
      static_cast<unsigned long long>(st.workers_degraded),
      static_cast<unsigned long long>(st.requeued),
      static_cast<unsigned long long>(st.quarantined),
      static_cast<unsigned long long>(st.cache.hits),
      static_cast<unsigned long long>(st.cache.misses),
      static_cast<unsigned long long>(st.cache.evictions), st.faults.dropped,
      st.faults.corrupted, st.faults.truncated, st.faults.delayed,
      st.crash_faults.signaled, st.crash_faults.exited, st.crash_faults.hung);
  if (metrics_json) {
    // Same "io"/"session" vocabulary as dopf_solve --json.
    std::printf(
        "{\"admitted\":%llu,\"solved\":%llu,"
        "\"rejected\":{\"overload\":%llu,\"deadline\":%llu,"
        "\"preflight\":%llu,\"bad_request\":%llu,\"wire\":%llu,"
        "\"shutdown\":%llu,\"quarantined\":%llu,\"degraded\":%llu},"
        "\"drained_checkpointed\":%llu,"
        "\"workers\":{\"crashes\":%llu,\"restarts\":%llu,"
        "\"degraded\":%llu,\"requeued\":%llu,\"quarantined\":%llu},"
        "\"io\":{\"writes\":%d,\"reads\":%d,\"retries\":%d,"
        "\"retry_seconds\":%.6f},"
        "\"session\":{\"solves\":%d,\"cold_solves\":%d,\"warm_solves\":%d,"
        "\"precompute_reuses\":%d,\"refactorizations\":%d,"
        "\"rhs_rebinds\":%d},"
        "\"cache\":{\"hits\":%llu,\"misses\":%llu,\"evictions\":%llu,"
        "\"resident_bytes\":%zu}}\n",
        static_cast<unsigned long long>(st.admitted),
        static_cast<unsigned long long>(st.solved),
        static_cast<unsigned long long>(st.rejected_overload),
        static_cast<unsigned long long>(st.rejected_deadline),
        static_cast<unsigned long long>(st.rejected_preflight),
        static_cast<unsigned long long>(st.rejected_bad_request),
        static_cast<unsigned long long>(st.rejected_wire),
        static_cast<unsigned long long>(st.rejected_shutdown),
        static_cast<unsigned long long>(st.rejected_quarantined),
        static_cast<unsigned long long>(st.rejected_degraded),
        static_cast<unsigned long long>(st.drain_checkpointed),
        static_cast<unsigned long long>(st.worker_crashes),
        static_cast<unsigned long long>(st.worker_restarts),
        static_cast<unsigned long long>(st.workers_degraded),
        static_cast<unsigned long long>(st.requeued),
        static_cast<unsigned long long>(st.quarantined), st.io.writes,
        st.io.reads, st.io.retries, st.io.retry_seconds, st.session.solves,
        st.session.cold_solves, st.session.warm_solves,
        st.session.precompute_reuses, st.session.refactorizations,
        st.session.rhs_rebinds, static_cast<unsigned long long>(st.cache.hits),
        static_cast<unsigned long long>(st.cache.misses),
        static_cast<unsigned long long>(st.cache.evictions),
        st.cache.resident_bytes);
  }
  return code;
}
