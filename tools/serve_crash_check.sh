#!/bin/sh
# Worker-crash property harness: replay a fixed request storm against
# dopf_serve while its solve workers are killed out from under it, and
# assert the server-level contract:
#   - zero healthy requests dropped: every storm request still ends as a
#     response BYTE-IDENTICAL to the fault-free baseline (a crashed
#     worker's victim request is re-queued and re-solved deterministically)
#   - a hung worker is SIGKILLed by --hang-timeout-ms and its request
#     retried, client-invisibly
#   - poison requests (content that crashes workers twice) are rejected
#     with the typed kQuarantined code + TTL hint (client exit 9), and
#     readmitted after the TTL expires
#   - a fully degraded server (restart budget 0) sheds typed kInternal
#     rejections but NEVER exits on a worker crash, and still drains
#     cleanly on SIGTERM (exit 0)
#   - drain-mid-solve still checkpoints durably from inside a worker (exit
#     6) even when checkpoint writes hit transient ENOSPC, and a resume
#     completes byte-identically to an uninterrupted run
#
# Usage: serve_crash_check.sh <dopf_serve> <dopf_client> <scratch-dir>
set -eu

SERVE="$1"
CLIENT="$2"
DIR="$3"
work=$(mktemp -d "$DIR/serve_crash.XXXXXX")
SOCK="$work/s.sock"
SRV_PID=""

# TERM -> bounded wait -> KILL: a wedged server must not wedge CI cleanup.
cleanup() {
  if [ -n "$SRV_PID" ]; then
    kill -TERM "$SRV_PID" 2>/dev/null || true
    for _ in 1 2 3 4 5 6 7 8 9 10; do
      kill -0 "$SRV_PID" 2>/dev/null || break
      sleep 0.2
    done
    kill -KILL "$SRV_PID" 2>/dev/null || true
    wait "$SRV_PID" 2>/dev/null || true
  fi
  rm -rf "$work"
}
trap cleanup EXIT INT TERM

failures=0
fail() {
  echo "FAIL: $1" >&2
  failures=$((failures + 1))
}

# Same storm shape as serve_fault_check.sh: three distinct contents, twice
# each, submitted sequentially so dispatch ordinals are deterministic.
cat > "$work/storm.req" <<'EOF'
builtin:ieee13||0|0
builtin:ieee13|load * scale 1.05|0|0
builtin:ieee13|gen * cost-scale 1.2|0|0
builtin:ieee13||0|0
builtin:ieee13|load * scale 1.05|0|0
builtin:ieee13|gen * cost-scale 1.2|0|0
EOF

start_server() {
  # $1 = extra server flags (unquoted word list)
  # shellcheck disable=SC2086
  "$SERVE" --socket "$SOCK" $1 --no-fsync > "$work/server.log" 2>&1 &
  SRV_PID=$!
  for _ in 1 2 3 4 5 6 7 8 9 10; do
    if "$CLIENT" --socket "$SOCK" --ping > /dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  cat "$work/server.log" >&2
  echo "FAIL: server never became ready" >&2
  exit 1
}

stop_server() {
  # $1 = expected exit code
  kill -TERM "$SRV_PID" 2>/dev/null || true
  rc=0
  wait "$SRV_PID" || rc=$?
  SRV_PID=""
  [ "$rc" = "$1" ] || { cat "$work/server.log" >&2; \
    fail "server exited $rc (want $1)"; }
}

run_storm() {
  # $1 = output file. A crash costs one worker-restart backoff plus a full
  # re-solve, so the per-attempt timeout is looser than the fault check's.
  "$CLIENT" --socket "$SOCK" --requests "$work/storm.req" --eps 1e-2 \
    --timeout-ms 30000 > "$1" 2> "$1.err"
}

# ---- Fault-free baseline ---------------------------------------------------
start_server "--workers 2 --queue-depth 8"
run_storm "$work/baseline.out" || { cat "$work/baseline.out.err" >&2; \
  echo "FAIL: fault-free storm did not complete" >&2; exit 1; }
stop_server 0
[ "$(grep -c '^response ' "$work/baseline.out")" = 6 ] \
  || { echo "FAIL: baseline storm returned $(cat "$work/baseline.out")" >&2; \
       exit 1; }
echo "serve crash: fault-free baseline recorded (6 responses)"

# ---- Crash chaos: segfault + unclean exit mid-storm ------------------------
# Dispatch ordinal 2 (request 2) segfaults its worker; its re-dispatch is
# ordinal 3, so ordinal 5 (request 4) then dies with exit(3). Each content
# crashes at most once -- no quarantine -- and a response delay fault rides
# along to prove the planes compose. The client must see NOTHING: same six
# responses, byte-identical.
start_server "--workers 2 --queue-depth 8 \
  --crash-faults signal:request=2;exit:request=5 \
  --serve-faults delay:op=2,ms=100,frame=response"
rc=0
run_storm "$work/chaos.out" || rc=$?
[ "$rc" = 0 ] || { cat "$work/chaos.out.err" >&2; \
  fail "crash chaos storm exited $rc (want 0)"; }
if cmp -s "$work/chaos.out" "$work/baseline.out"; then
  echo "serve crash: chaos storm byte-identical to fault-free baseline"
else
  fail "crash chaos responses differ from the fault-free baseline"
  diff "$work/baseline.out" "$work/chaos.out" >&2 || true
fi
stop_server 0
grep -Eq 'workers\{crashes=2 restarts=2 degraded=0 requeued=2' \
  "$work/server.log" \
  || fail "chaos: expected 2 crashes / 2 restarts / 2 requeues: \
$(grep 'drained' "$work/server.log")"
grep -Eq 'crash_faults\{signal=1 exit=1 hang=0' "$work/server.log" \
  || fail "chaos: crash fault plan never fully fired"

# ---- Hung worker: SIGKILL by the hang reaper, client-invisible -------------
start_server "--workers 2 --queue-depth 8 --hang-timeout-ms 2000 \
  --crash-faults hang:request=2"
rc=0
run_storm "$work/hang.out" || rc=$?
[ "$rc" = 0 ] || fail "hang storm exited $rc (want 0)"
if cmp -s "$work/hang.out" "$work/baseline.out"; then
  echo "serve crash: hung worker reaped; storm byte-identical"
else
  fail "hang storm responses differ from the fault-free baseline"
  diff "$work/baseline.out" "$work/hang.out" >&2 || true
fi
stop_server 0
grep -Eq 'crash_faults\{signal=0 exit=0 hang=1' "$work/server.log" \
  || fail "hang fault never fired"

# ---- Poison request: quarantine + TTL readmission --------------------------
# The same content crashes a worker on dispatch 1 AND its requeue
# (ordinal 2): that's the two-strike threshold, so the client gets a typed
# kQuarantined reject (exit 9). A resubmission inside the TTL is rejected
# at admission without touching a worker; after the TTL it is readmitted
# and must solve cleanly.
start_server "--workers 2 --queue-depth 8 --quarantine-ttl-ms 3000 \
  --crash-faults signal:request=1,times=2"
rc=0
"$CLIENT" --socket "$SOCK" --feeder builtin:ieee13 --eps 1e-2 \
  --timeout-ms 30000 > "$work/poison1.out" 2> /dev/null || rc=$?
[ "$rc" = 9 ] || fail "poisoned request exited $rc (want 9: quarantined)"
grep -q '^reject id=1 code=quarantined ' "$work/poison1.out" \
  || fail "expected a typed quarantined reject: $(cat "$work/poison1.out")"
rc=0
"$CLIENT" --socket "$SOCK" --feeder builtin:ieee13 --eps 1e-2 \
  --timeout-ms 30000 > "$work/poison2.out" 2> /dev/null || rc=$?
[ "$rc" = 9 ] || fail "in-TTL resubmission exited $rc (want 9)"
sleep 3.2
rc=0
"$CLIENT" --socket "$SOCK" --feeder builtin:ieee13 --eps 1e-2 \
  --timeout-ms 30000 > "$work/poison3.out" 2> /dev/null || rc=$?
[ "$rc" = 0 ] || fail "post-TTL readmission exited $rc (want 0)"
grep -q '^response id=1 status=converged ' "$work/poison3.out" \
  || fail "readmitted request did not converge: $(cat "$work/poison3.out")"
stop_server 0
grep -Eq 'rejected\{[^}]*quarantined=2' "$work/server.log" \
  || fail "expected 2 quarantined rejections in the stats line"
grep -Eq 'workers\{[^}]*quarantined=1\}' "$work/server.log" \
  || fail "expected 1 quarantined content hash in the stats line"
echo "serve crash: poison request quarantined typed, readmitted after TTL"

# ---- Degraded server: budget 0, still standing, still drains ---------------
start_server "--workers 1 --restart-budget 0 --crash-faults exit:request=1"
rc=0
"$CLIENT" --socket "$SOCK" --feeder builtin:ieee13 --eps 1e-2 --retries 0 \
  --timeout-ms 30000 > "$work/degraded1.out" 2> /dev/null || rc=$?
[ "$rc" = 4 ] || fail "degrading request exited $rc (want 4: internal)"
grep -q '^reject id=1 code=internal ' "$work/degraded1.out" \
  || fail "expected a typed internal reject: $(cat "$work/degraded1.out")"
# The server must still be alive and answering...
"$CLIENT" --socket "$SOCK" --ping > /dev/null 2>&1 \
  || fail "degraded server stopped answering pings"
# ...shedding solve work typed at admission...
rc=0
"$CLIENT" --socket "$SOCK" --feeder builtin:ieee13 --eps 1e-2 --retries 0 \
  --timeout-ms 30000 > "$work/degraded2.out" 2> /dev/null || rc=$?
[ "$rc" = 4 ] || fail "post-degrade request exited $rc (want 4)"
# ...and still honoring the SIGTERM drain contract.
stop_server 0
grep -Eq 'workers\{[^}]*degraded=1' "$work/server.log" \
  || fail "expected 1 degraded worker slot in the stats line"
grep -Eq 'rejected\{[^}]*degraded=[1-9]' "$work/server.log" \
  || fail "expected degraded-shed rejections in the stats line"
echo "serve crash: degraded server shed typed and drained cleanly"

# ---- Drain mid-solve + transient ENOSPC in the worker's checkpoint ---------
# Uninterrupted reference (ieee123 at eps 1e-5 runs to the iteration
# limit, a deterministic multi-second endpoint).
start_server "--workers 1 --queue-depth 8"
rc=0
"$CLIENT" --socket "$SOCK" --feeder builtin:ieee123 --eps 1e-5 \
  --timeout-ms 300000 > "$work/long_ref.out" 2> /dev/null || rc=$?
[ "$rc" = 2 ] || fail "long reference exited $rc (want 2: iteration limit)"
stop_server 0

# SIGTERM mid-solve; the worker's drain checkpoint write hits ENOSPC twice
# and must be absorbed by the durable retry loop (server exit 6, not 7).
mkdir -p "$work/ckpt"
start_server "--workers 1 --queue-depth 8 --checkpoint-dir $work/ckpt \
  --io-faults enospc:op=1,times=2"
rc=0
"$CLIENT" --socket "$SOCK" --feeder builtin:ieee123 --eps 1e-5 \
  --timeout-ms 300000 > "$work/drained.out" 2> /dev/null &
CLI_PID=$!
sleep 1
kill -TERM "$SRV_PID"
wait "$SRV_PID" || rc=$?
SRV_PID=""
[ "$rc" = 6 ] || fail "drain-mid-solve server exited $rc (want 6)"
rc=0
wait "$CLI_PID" || rc=$?
[ "$rc" = 6 ] || fail "drained client exited $rc (want 6)"
grep -q '^reject id=1 code=drained ' "$work/drained.out" \
  || fail "expected a typed drained rejection: $(cat "$work/drained.out")"
ls "$work/ckpt"/req-*.ckpt.* > /dev/null 2>&1 \
  || fail "drain left no durable checkpoint behind"

start_server "--workers 1 --queue-depth 8 --checkpoint-dir $work/ckpt"
rc=0
"$CLIENT" --socket "$SOCK" --feeder builtin:ieee123 --eps 1e-5 --resume \
  --timeout-ms 300000 > "$work/resumed.out" 2> /dev/null || rc=$?
[ "$rc" = 2 ] || fail "resumed solve exited $rc (want 2: iteration limit)"
stop_server 0
if cmp -s "$work/resumed.out" "$work/long_ref.out"; then
  echo "serve crash: drained solve resumed byte-identically under ENOSPC"
else
  fail "resumed solve differs from the uninterrupted reference"
  diff "$work/long_ref.out" "$work/resumed.out" >&2 || true
fi

if [ "$failures" -gt 0 ]; then
  echo "serve crash: $failures failure(s)" >&2
  exit 1
fi
echo "serve crash: all checks passed"
