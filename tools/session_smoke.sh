#!/bin/sh
# Session-reuse smoke: a 3-scenario sweep on ieee13 through one SolveSession
# must (a) perform exactly one full topology precompute, (b) need zero
# refactorizations for load/cost-only scenarios, and (c) converge warm in
# fewer total iterations than the same scenarios solved cold.
#
# Usage: session_smoke.sh <dopf_solve-binary> <scratch-dir>
set -eu

SOLVE="$1"
DIR="$2"
work=$(mktemp -d "$DIR/session_smoke.XXXXXX")
trap 'rm -rf "$work"' EXIT INT TERM
SCEN="$work/session_smoke.scenarios"
OUT="$work/session_smoke.out"

cat > "$SCEN" <<'EOF'
# Three perturbations of the base feeder; each applies to the BASE case.
scenario light
  load constant scale 0.9
end
scenario heavy
  load constant scale 1.1
end
scenario pricey
  gen * cost-scale 1.3
end
EOF

"$SOLVE" --scenarios "$SCEN" --cold-compare builtin:ieee13 | tee "$OUT"

grep -q "1 full precompute" "$OUT" || {
  echo "FAIL: expected exactly one full precompute for the sweep" >&2
  exit 1
}
grep -q "3 precompute reuse(s), 0 refactorization(s)" "$OUT" || {
  echo "FAIL: load/cost-only sweep must reuse the precompute with zero" \
       "refactorizations" >&2
  exit 1
}

# Per-scenario lines read "... in W iterations (warm) vs C cold ...";
# the warm-started sweep must need fewer iterations in total.
awk '
  /\(warm\) vs [0-9]+ cold/ {
    for (i = 1; i <= NF; ++i) {
      if ($i == "in") warm += $(i + 1)
      if ($i == "vs") cold += $(i + 1)
    }
  }
  END {
    printf "session smoke: warm %d vs cold %d total iterations\n", warm, cold
    if (warm <= 0 || warm >= cold) {
      print "FAIL: warm-started sweep not faster than cold" > "/dev/stderr"
      exit 1
    }
  }' "$OUT"
