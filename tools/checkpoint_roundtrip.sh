#!/bin/sh
# CLI checkpoint round-trip: solve while writing periodic checkpoints, then
# resume from the written file. Both invocations must converge (exit 0).
#
# usage: checkpoint_roundtrip.sh <path-to-dopf_solve> <scratch-dir>
set -eu

solve="$1"
dir="$2"
work=$(mktemp -d "$dir/roundtrip.XXXXXX")
trap 'rm -rf "$work"' EXIT INT TERM
ck="$work/roundtrip.ckpt"

"$solve" builtin:ieee13 --eps 1e-2 --max-iters 20000 \
  --checkpoint-every 40 --checkpoint "$ck"
test -s "$ck" || { echo "checkpoint file was not written" >&2; exit 1; }
head -1 "$ck" | grep -q '^dopf-checkpoint v1$' || {
  echo "unexpected checkpoint header" >&2; exit 1;
}

"$solve" builtin:ieee13 --eps 1e-2 --max-iters 20000 --resume "$ck"
