#!/bin/sh
# Stream replay gate (tier2): two full runs of the same ieee123 profile must
# serialize byte-identical replay records, and a run interrupted at step K
# then resumed from its checkpoint must reproduce the remaining step records
# byte-for-byte (deterministic backtest/replay contract, see DESIGN.md §9).
#
# Usage: stream_replay_check.sh <dopf_solve-binary> <scratch-dir>
set -eu

SOLVE="$1"
DIR="$2"
work=$(mktemp -d "$DIR/stream_replay.XXXXXX")
trap 'rm -rf "$work"' EXIT INT TERM
PROFILE="$work/stream_replay.profile"
REC1="$work/stream_replay.rec1"
REC2="$work/stream_replay.rec2"
RECFULL="$work/stream_replay.full"
RECTAIL="$work/stream_replay.tail"
CKPT="$work/stream_replay.ckpt"

cat > "$PROFILE" <<'EOF'
profile replaygate
steps 12
dt 300
step 0
  load constant scale 0.92
step 3
  load constant scale 1.04
step 6
  load constant scale 1.10
  switch l17 impedance-scale 2.0
step 9
  load constant scale 0.98
EOF

RUN="$SOLVE --stream $PROFILE --eps 1e-2 --max-iters 40000 builtin:ieee123"

# 1) Two identical runs -> byte-identical records.
$RUN --stream-record "$REC1" > /dev/null
$RUN --stream-record "$REC2" > /dev/null
cmp "$REC1" "$REC2" || {
  echo "FAIL: replay records differ between two identical runs" >&2
  exit 1
}
echo "stream replay: two full runs byte-identical"

# 2) Interrupt at step 5, resume, compare the shared tail records.
$RUN --stream-record "$RECFULL" --checkpoint "$CKPT" \
  --checkpoint-at-step 5 > /dev/null
$RUN --stream-record "$RECTAIL" --resume "$CKPT" > /dev/null
grep "^step " "$RECFULL" | awk '$2 >= 6' > "$work/full_tail.txt"
grep "^step " "$RECTAIL" > "$work/resume_tail.txt"
cmp "$work/full_tail.txt" "$work/resume_tail.txt" || {
  echo "FAIL: resumed stream tail differs from the uninterrupted run" >&2
  exit 1
}
echo "stream replay: resumed tail (steps 6..11) byte-identical"
