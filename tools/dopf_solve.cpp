// dopf_solve — command-line distributed OPF solver.
//
// Usage:
//   dopf_solve [options] <feeder-file | builtin:NAME>
//
//   builtin:NAME          one of ieee13, ieee123, ieee8500, ieee8500_mini
//   --algorithm ALG       solver-free (default) | benchmark | reference
//   --backend B           serial (default) | threaded | simt | multigpu
//                         (solver-free only)
//   --threads N           worker threads for --backend threaded
//                         (default: hardware concurrency)
//   --devices N           simulated devices for --backend multigpu (default 2)
//   --rho R               ADMM penalty (default 100)
//   --eps E               relative tolerance (default 1e-3)
//   --max-iters N         iteration cap (default 200000)
//   --relaxation A        over-relaxation factor (default 1.0)
//   --quantize-bits B     message quantization (default 0 = exact)
//   --faults SPEC         deterministic fault schedule (multigpu only), e.g.
//                         "kill:device=1,iter=137;straggle:device=2,iter=5,
//                         until=20,factor=4" (see runtime/fault.hpp)
//   --no-recovery         disable failover + message verification (faults
//                         then corrupt or abort the run — for testing)
//   --degrade             enable graceful degradation (multigpu only):
//                         bounded-staleness consensus + device quarantine
//                         instead of blocking on persistent faults
//   --staleness-bound S   iterations a degraded device may stay stale
//                         before quarantine (default 8; implies --degrade)
//   --watchdog            enable the convergence watchdog (stall detection,
//                         rho nudge, restart-from-best, kStalled)
//   --checkpoint-every N  capture a restart checkpoint every N iterations
//   --checkpoint FILE     checkpoint file to (over)write
//   --resume FILE         restore state from FILE before solving
//   --preflight MODE      input sanitation + conditioning analysis before
//                         solving: off | warn (default) | auto | strict.
//                         warn reports and rejects only hard errors; auto
//                         additionally remediates (row equilibration +
//                         reported Tikhonov ridge); strict also refuses
//                         numerically degenerate component blocks
//   --strict              shorthand for --preflight strict
//   --preflight-only      run preflight, print the report, and exit without
//                         solving (0 accepted, 5 rejected)
//   --scenarios FILE      solve a scenario sweep through one SolveSession:
//                         the feeder is precomputed once, each scenario in
//                         FILE (see src/runtime/scenario.hpp for the format)
//                         is rebound in place and warm-started from the
//                         previous solution. Requires --algorithm
//                         solver-free with --backend serial or threaded.
//   --stream FILE         receding-horizon streaming replay: drive one
//                         long-lived SolveSession through the time-series
//                         profile in FILE (see src/stream/profile.hpp for
//                         the format), warm-starting every step from the
//                         previous consensus and refactorizing only
//                         switched components. Same algorithm/backend
//                         requirements as --scenarios. With --stream,
//                         --checkpoint FILE + --checkpoint-at-step K
//                         capture a stream checkpoint after step K, and
//                         --resume FILE fast-forwards to the checkpoint
//                         step and replays the remaining steps
//                         byte-identically.
//   --stream-record FILE  with --stream, write the deterministic replay
//                         record (hex-float, byte-identical across runs)
//   --checkpoint-at-step K  with --stream, capture the checkpoint after
//                         step K (requires --checkpoint FILE)
//   --checkpoint-every-steps N  with --stream, durably checkpoint every N
//                         completed steps into the generation-numbered A/B
//                         pair FILE.a/FILE.b (requires --checkpoint FILE);
//                         --resume FILE picks the newest valid generation
//                         and falls back to the previous one when the
//                         newest is torn
//   --deadline S          cooperative deadline: cancel the solve/stream S
//                         seconds after start (exit code 6; with --stream
//                         and --checkpoint, a final durable checkpoint of
//                         the last completed step is written first).
//                         SIGINT/SIGTERM trigger the same path
//   --io-faults SPEC      deterministic filesystem failpoints applied to
//                         every durable write/read, e.g.
//                         "enospc:op=3,times=2,path=day.ckpt;crash:op=5"
//                         (see runtime/fault.hpp FsFaultPlan). Transient
//                         failures are retried with backoff and reported;
//                         exhausted retries and crashes exit 7
//   --no-fsync            skip fsync in durable writes (benchmarks only;
//                         atomic temp+rename is kept)
//   --reset-on-switch     with --stream, drop warm state on steps whose
//                         rebind refactorized a component
//   --cold-compare        with --scenarios/--stream, also solve every
//                         scenario/step cold (fresh iterate state) and
//                         report both counts
//   --json                print a machine-readable JSON summary (single
//                         solve, scenario sweep, or stream) on stdout
//   --report              print the full dispatch/voltage report
//   --residuals FILE      dump residual history as CSV
//   --output FILE         dump the solution (per-variable CSV)
//
// Exit codes (scriptable): 0 converged/optimal, 1 usage or input errors,
// 2 iteration/time limit, 3 diverged, 4 stalled (watchdog gave up),
// 5 preflight rejected the input (see src/robust/preflight.hpp),
// 6 cancelled (SIGINT/SIGTERM or --deadline; durable checkpoint written
// when configured), 7 durable I/O failure (retries exhausted or an
// injected crash failpoint).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "baseline/benchmark_admm.hpp"
#include "core/admm.hpp"
#include "core/cancel.hpp"
#include "core/scenario_binding.hpp"
#include "core/solve_model.hpp"
#include "core/solve_session.hpp"
#include "feeders/feeder_io.hpp"
#include "opf/solution.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/durable.hpp"
#include "runtime/fault.hpp"
#include "runtime/instances.hpp"
#include "robust/preflight.hpp"
#include "runtime/scenario.hpp"
#include "runtime/signals.hpp"
#include "runtime/threaded_backend.hpp"
#include "verify/codec.hpp"
#include "simt/gpu_admm.hpp"
#include "simt/multi_gpu.hpp"
#include "solver/reference.hpp"
#include "stream/driver.hpp"
#include "stream/profile.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options] <feeder-file | builtin:NAME>\n"
      "  --algorithm solver-free|benchmark|reference\n"
      "  --backend serial|threaded|simt|multigpu  --threads N  --devices N\n"
      "  --rho R  --eps E  --max-iters N  --relaxation A  --quantize-bits B\n"
      "  --faults SPEC  --no-recovery\n"
      "  --degrade  --staleness-bound S  --watchdog\n"
      "  --checkpoint-every N  --checkpoint FILE  --resume FILE\n"
      "  --preflight off|warn|auto|strict  --strict  --preflight-only\n"
      "  --scenarios FILE  --cold-compare  --json\n"
      "  --stream FILE  --stream-record FILE  --checkpoint-at-step K\n"
      "  --checkpoint-every-steps N  --reset-on-switch\n"
      "  --deadline S  --io-faults SPEC  --no-fsync\n"
      "  --report  --residuals FILE  --output FILE\n",
      argv0);
  std::exit(1);
}

/// Process-wide cancellation token: SIGINT/SIGTERM and --deadline feed it,
/// every solver loop and stream step boundary polls it.
dopf::core::CancelToken g_cancel;

/// Strict numeric parsing: the whole token must be a number, otherwise the
/// tool prints a pointed diagnostic plus the usage text and exits 1.
const char* g_argv0 = "dopf_solve";

double parse_double(const char* arg, const char* what) {
  char* end = nullptr;
  const double v = std::strtod(arg, &end);
  if (end == arg || *end != '\0') {
    std::fprintf(stderr, "%s: bad numeric value '%s' for %s\n", g_argv0, arg,
                 what);
    usage(g_argv0);
  }
  return v;
}

int parse_int(const char* arg, const char* what) {
  char* end = nullptr;
  const long v = std::strtol(arg, &end, 10);
  if (end == arg || *end != '\0') {
    std::fprintf(stderr, "%s: bad integer value '%s' for %s\n", g_argv0, arg,
                 what);
    usage(g_argv0);
  }
  return static_cast<int>(v);
}

/// One row of the scenario sweep, for the text table and --json.
struct SweepRow {
  std::string name;
  dopf::core::AdmmResult result;
  dopf::core::RebindStats rebind;
  std::size_t components_reused = 0;
  int cold_iterations = -1;  ///< -1 = --cold-compare off
};

int exit_code_for(const dopf::core::AdmmResult& res) {
  using dopf::core::AdmmStatus;
  if (res.converged) return 0;
  if (res.status == AdmmStatus::kDiverged) return 3;
  if (res.status == AdmmStatus::kStalled) return 4;
  if (res.status == AdmmStatus::kCancelled) return 6;
  return 2;
}

void print_result_json(const dopf::core::AdmmResult& res,
                       const std::string& algorithm,
                       const std::string& backend,
                       const dopf::runtime::IoStats& io) {
  // "io" counts the durable checkpoint traffic of this run; "session" uses
  // the SessionStats vocabulary (core/solve_session.hpp) so single-shot
  // runs, sweeps and the serve metrics all speak the same field names. A
  // single-shot run is by definition one cold solve with no rebinds.
  std::printf(
      "{\"algorithm\":\"%s\",\"backend\":\"%s\",\"status\":\"%s\","
      "\"converged\":%s,\"warm_started\":%s,\"iterations\":%d,"
      "\"objective\":%.17g,\"objective_hex\":\"%s\","
      "\"primal_residual\":%.17g,"
      "\"dual_residual\":%.17g,\"timing\":{\"total\":%.6f,"
      "\"precompute\":%.6f,\"global_update\":%.6f,\"local_update\":%.6f,"
      "\"dual_update\":%.6f,\"precompute_reuse_count\":%d,"
      "\"refactorizations\":%d},"
      "\"io\":{\"writes\":%d,\"reads\":%d,\"retries\":%d,"
      "\"retry_seconds\":%.6f},"
      "\"session\":{\"solves\":1,\"cold_solves\":%d,\"warm_solves\":%d,"
      "\"precompute_reuses\":%d,\"refactorizations\":%d,"
      "\"rhs_rebinds\":0}}\n",
      algorithm.c_str(), backend.c_str(), dopf::core::to_string(res.status),
      res.converged ? "true" : "false", res.warm_started ? "true" : "false",
      res.iterations, res.objective,
      dopf::verify::hex_double(res.objective).c_str(), res.primal_residual,
      res.dual_residual, res.timing.total(), res.timing.precompute,
      res.timing.global_update, res.timing.local_update,
      res.timing.dual_update, res.timing.precompute_reuse_count,
      res.timing.refactorizations, io.writes, io.reads, io.retries,
      io.retry_seconds, res.warm_started ? 0 : 1, res.warm_started ? 1 : 0,
      res.timing.precompute_reuse_count, res.timing.refactorizations);
}

/// Scenario sweep: one SolveModel/ScenarioBinding/SolveSession drives every
/// scenario; topology precompute happens exactly once, each scenario is
/// rebound in place and warm-started from the previous solution.
int run_scenario_sweep(const dopf::network::Network& net,
                       const std::string& label,
                       dopf::opf::DistributedProblem problem,
                       const dopf::core::AdmmOptions& opt,
                       const std::string& scenario_file,
                       const std::string& preflight_mode,
                       const dopf::opf::DecomposeOptions& dec,
                       const std::string& backend, int threads,
                       bool cold_compare, bool json) {
  const auto scenarios = dopf::runtime::load_scenarios(scenario_file);
  std::printf("scenario sweep: %zu scenario(s) from %s\n", scenarios.size(),
              scenario_file.c_str());

  dopf::core::SolveModel solve_model(problem, opt.projector);
  dopf::core::ScenarioBinding binding(solve_model);
  dopf::core::SolveSession session(binding, opt);
  std::string backend_label = backend;
  if (backend == "threaded") {
    auto tb = std::make_unique<dopf::runtime::ThreadedBackend>(threads);
    backend_label = "threaded(" + std::to_string(tb->threads()) + " threads)";
    session.set_backend(std::move(tb));
  }

  // Cold comparisons run through a second session on the same binding:
  // same pack, same factorizations, fresh iterate state every solve.
  auto solve_cold_copy = [&]() {
    dopf::core::SolveSession cold(binding, opt);
    if (backend == "threaded") {
      cold.set_backend(
          std::make_unique<dopf::runtime::ThreadedBackend>(threads));
    }
    return cold.solve();
  };

  std::vector<SweepRow> rows;
  SweepRow base;
  base.name = "base";
  base.result = session.solve();
  base.components_reused = problem.num_components();
  std::printf(
      "  base: %s in %d iterations (cold), objective %.8f, "
      "precompute %.2fs\n",
      dopf::core::to_string(base.result.status), base.result.iterations,
      base.result.objective, base.result.timing.precompute);
  int code = exit_code_for(base.result);
  rows.push_back(std::move(base));

  for (const auto& sc : scenarios) {
    const auto net_s = dopf::runtime::apply_scenario(net, sc);
    const auto model_s = dopf::opf::build_model(net_s);
    auto problem_s = dopf::opf::decompose(net_s, model_s, dec);

    SweepRow row;
    row.name = sc.name;
    if (preflight_mode != "off") {
      dopf::robust::PreflightOptions popt;
      popt.policy = dopf::robust::parse_policy(preflight_mode);
      popt.decompose = dec;
      const auto pre = dopf::robust::run_scenario_preflight(
          solve_model.problem(), problem_s, popt);
      if (!pre.accepted) {
        std::fprintf(stderr, "scenario '%s' rejected by preflight: %s\n",
                     sc.name.c_str(), pre.rejection.c_str());
        return 5;
      }
      row.components_reused = pre.scenario_components_reused;
    }

    row.rebind = session.rebind(problem_s);
    row.result = session.solve();
    if (cold_compare) {
      row.cold_iterations = solve_cold_copy().iterations;
    }
    std::printf(
        "  %s: %s in %d iterations (%s)%s, objective %.8f "
        "[%d refactorization(s), %d rhs rebind(s), %d unchanged]\n",
        row.name.c_str(), dopf::core::to_string(row.result.status),
        row.result.iterations, row.result.warm_started ? "warm" : "cold",
        row.cold_iterations >= 0
            ? (" vs " + std::to_string(row.cold_iterations) + " cold").c_str()
            : "",
        row.result.objective, row.rebind.refactorizations,
        row.rebind.rhs_rebinds, row.rebind.unchanged);
    code = std::max(code, exit_code_for(row.result));
    rows.push_back(std::move(row));
  }

  const auto& st = session.stats();
  std::printf(
      "session: %d solve(s) (%d cold, %d warm), 1 full precompute, "
      "%d precompute reuse(s), %d refactorization(s), %d rhs rebind(s)\n",
      st.solves, st.cold_solves, st.warm_solves, st.precompute_reuses,
      st.refactorizations, st.rhs_rebinds);

  if (json) {
    std::printf("{\"feeder\":\"%s\",\"backend\":\"%s\",\"scenarios\":[",
                label.c_str(), backend_label.c_str());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto& r = rows[i];
      std::printf(
          "%s{\"name\":\"%s\",\"status\":\"%s\",\"converged\":%s,"
          "\"warm_started\":%s,\"iterations\":%d,\"cold_iterations\":%d,"
          "\"objective\":%.17g,\"refactorizations\":%d,\"rhs_rebinds\":%d,"
          "\"components_unchanged\":%d,\"components_reused\":%zu,"
          "\"precompute_reuse_count\":%d}",
          i == 0 ? "" : ",", r.name.c_str(),
          dopf::core::to_string(r.result.status),
          r.result.converged ? "true" : "false",
          r.result.warm_started ? "true" : "false", r.result.iterations,
          r.cold_iterations, r.result.objective, r.rebind.refactorizations,
          r.rebind.rhs_rebinds, r.rebind.unchanged, r.components_reused,
          r.result.timing.precompute_reuse_count);
    }
    std::printf(
        "],\"session\":{\"solves\":%d,\"cold_solves\":%d,\"warm_solves\":%d,"
        "\"precompute_reuses\":%d,\"refactorizations\":%d,"
        "\"rhs_rebinds\":%d,\"precompute_seconds\":%.6f}}\n",
        st.solves, st.cold_solves, st.warm_solves, st.precompute_reuses,
        st.refactorizations, st.rhs_rebinds,
        solve_model.precompute_seconds() + binding.bind_seconds());
  }
  return code;
}

int exit_code_for_step(const dopf::stream::StreamStepRecord& rec) {
  using dopf::core::AdmmStatus;
  if (rec.converged) return 0;
  if (rec.status == AdmmStatus::kDiverged) return 3;
  if (rec.status == AdmmStatus::kStalled) return 4;
  if (rec.status == AdmmStatus::kCancelled) return 6;
  return 2;
}

/// Streaming replay: one long-lived SolveSession consumes the profile step
/// by step; load-only steps rebind without refactorizing, switching events
/// refresh exactly the touched components, every step warm-starts from the
/// previous consensus.
int run_stream(const dopf::network::Network& net, const std::string& label,
               const dopf::core::AdmmOptions& opt,
               const std::string& profile_file,
               const std::string& preflight_mode,
               const dopf::opf::DecomposeOptions& dec,
               const std::string& backend, int threads, bool cold_compare,
               bool reset_on_switch, int checkpoint_at_step,
               int checkpoint_every_steps, const std::string& checkpoint_file,
               const std::string& resume_file, const std::string& record_file,
               const dopf::runtime::DurableOptions& durable, bool json) {
  const auto profile = dopf::stream::load_profile(profile_file);
  std::printf("stream: profile '%s', %d step(s), dt %.0fs, %zu block(s)\n",
              profile.name.c_str(), profile.num_steps, profile.dt_seconds,
              profile.blocks.size());

  dopf::stream::StreamOptions sopt;
  sopt.admm = opt;
  sopt.decompose = dec;
  sopt.preflight = preflight_mode;
  sopt.cold_compare = cold_compare;
  sopt.reset_on_switch = reset_on_switch;
  sopt.checkpoint_at_step = checkpoint_at_step;
  sopt.checkpoint_every_steps = checkpoint_every_steps;
  sopt.checkpoint_path = checkpoint_file;
  sopt.resume_path = resume_file;
  sopt.cancel = &g_cancel;
  sopt.durable = durable;
  std::string backend_label = backend;
  if (backend == "threaded") {
    const int n =
        dopf::runtime::ThreadedBackend(threads).threads();
    backend_label = "threaded(" + std::to_string(n) + " threads)";
    sopt.make_backend = [threads]() {
      return std::make_unique<dopf::runtime::ThreadedBackend>(threads);
    };
  }

  dopf::stream::StreamResult result;
  try {
    dopf::stream::StreamDriver driver(net, profile, sopt);
    if (!resume_file.empty()) {
      std::printf("resuming stream from %s\n", resume_file.c_str());
    }
    result = driver.run();
  } catch (const dopf::stream::StreamPreflightError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 5;
  } catch (const dopf::stream::StreamError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  if (!result.resume_fallback.empty()) {
    std::printf("resume fallback: %s\n", result.resume_fallback.c_str());
  }

  int code = 0;
  long long warm_iters = 0, warm_steps = 0;
  for (const auto& rec : result.steps) {
    std::printf(
        "  step %d: %s in %d iterations (%s)%s%s "
        "[%d refactorization(s), %d rhs rebind(s), %d unchanged]\n",
        rec.step, dopf::core::to_string(rec.status), rec.iterations,
        rec.warm_started ? "warm" : "cold",
        rec.cold_iterations >= 0
            ? (" vs " + std::to_string(rec.cold_iterations) + " cold").c_str()
            : "",
        rec.switched ? " [switched]" : "", rec.rebind.refactorizations,
        rec.rebind.rhs_rebinds, rec.rebind.unchanged);
    code = std::max(code, exit_code_for_step(rec));
    if (rec.warm_started) {
      warm_iters += rec.iterations;
      ++warm_steps;
    }
  }
  const auto& st = result.session;
  std::printf(
      "stream: %zu step(s) from step %d (%lld warm), "
      "%d component refactorization(s)\n"
      "session: %d solve(s) (%d cold, %d warm), %d precompute reuse(s), "
      "%d refactorization(s), %d rhs rebind(s)\n",
      result.steps.size(), result.first_step, warm_steps,
      result.refactorizations, st.solves, st.cold_solves, st.warm_solves,
      st.precompute_reuses, st.refactorizations, st.rhs_rebinds);
  if (cold_compare && result.cold_iterations > 0) {
    std::printf("warm/cold iteration ratio: %lld/%lld = %.3f\n",
                result.warm_iterations, result.cold_iterations,
                static_cast<double>(result.warm_iterations) /
                    static_cast<double>(result.cold_iterations));
  }
  if (result.cancelled) {
    code = 6;
    std::printf("stream cancelled (%s) after %zu completed step(s)\n",
                result.cancel_reason.c_str(), result.steps.size());
    if (!checkpoint_file.empty() && !result.steps.empty()) {
      std::printf("final durable checkpoint written to %s.a/.b (step %d)\n",
                  checkpoint_file.c_str(), result.steps.back().step);
    }
  }
  if (checkpoint_at_step >= 0 && checkpoint_at_step >= result.first_step &&
      !result.cancelled) {
    std::printf("stream checkpoint written to %s (step %d)\n",
                checkpoint_file.c_str(), checkpoint_at_step);
  }
  if (result.io.writes > 0 || result.io.retries > 0) {
    std::printf(
        "durability: %d durable checkpoint write(s), %d retried attempt(s), "
        "%.2e simulated retry seconds\n",
        result.io.writes, result.io.retries, result.io.retry_seconds);
  }
  if (!record_file.empty()) {
    // The replay record goes through the same atomic durable path as
    // checkpoints (and the same failpoints): readers never see a torn
    // record file.
    std::ostringstream out;
    dopf::stream::write_records(result, profile, out);
    dopf::runtime::durable_write_file(record_file, out.str(), durable);
    std::printf("stream record written to %s\n", record_file.c_str());
  }

  if (json) {
    std::printf("{\"feeder\":\"%s\",\"backend\":\"%s\",\"profile\":\"%s\","
                "\"num_steps\":%d,\"first_step\":%d,\"steps\":[",
                label.c_str(), backend_label.c_str(), profile.name.c_str(),
                profile.num_steps, result.first_step);
    for (std::size_t i = 0; i < result.steps.size(); ++i) {
      const auto& rec = result.steps[i];
      std::printf(
          "%s{\"step\":%d,\"status\":\"%s\",\"converged\":%s,"
          "\"warm_started\":%s,\"switched\":%s,\"iterations\":%d,"
          "\"cold_iterations\":%d,\"refactorizations\":%d,"
          "\"rhs_rebinds\":%d,\"objective\":%.17g}",
          i == 0 ? "" : ",", rec.step, dopf::core::to_string(rec.status),
          rec.converged ? "true" : "false",
          rec.warm_started ? "true" : "false",
          rec.switched ? "true" : "false", rec.iterations,
          rec.cold_iterations, rec.rebind.refactorizations,
          rec.rebind.rhs_rebinds, rec.objective);
    }
    std::printf(
        "],\"session\":{\"solves\":%d,\"cold_solves\":%d,\"warm_solves\":%d,"
        "\"precompute_reuses\":%d,\"refactorizations\":%d,"
        "\"rhs_rebinds\":%d},\"model_refactorizations\":%d,"
        "\"warm_iterations\":%lld,\"cold_iterations\":%lld,"
        "\"all_converged\":%s}\n",
        st.solves, st.cold_solves, st.warm_solves, st.precompute_reuses,
        st.refactorizations, st.rhs_rebinds, result.refactorizations,
        result.warm_iterations, result.cold_iterations,
        result.all_converged ? "true" : "false");
  }
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  g_argv0 = argv[0];
  std::string input, algorithm = "solver-free", residual_file, output_file;
  std::string backend = "serial";
  std::string fault_spec, checkpoint_file, resume_file;
  int threads = 0;  // 0 = hardware concurrency
  int devices = 2;
  int checkpoint_every = 0;
  int staleness_bound = -1;  // -1 = policy default
  bool report = false, no_recovery = false, degrade = false;
  std::string preflight_mode = "warn";
  bool preflight_only = false;
  std::string scenario_file;
  std::string stream_file, stream_record_file;
  int checkpoint_at_step = -1;
  int checkpoint_every_steps = 0;
  bool reset_on_switch = false;
  bool cold_compare = false, json = false;
  std::string io_fault_spec;
  double deadline_seconds = 0.0;
  bool no_fsync = false;
  dopf::core::AdmmOptions opt;
  opt.check_every = 10;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s expects a value\n", argv[0], arg.c_str());
        usage(argv[0]);
      }
      return argv[++i];
    };
    if (arg == "--algorithm") {
      algorithm = next();
    } else if (arg == "--backend") {
      backend = next();
    } else if (arg == "--threads") {
      threads = parse_int(next(), "--threads");
    } else if (arg == "--devices") {
      devices = parse_int(next(), "--devices");
    } else if (arg == "--rho") {
      opt.rho = parse_double(next(), "--rho");
    } else if (arg == "--eps") {
      opt.eps_rel = parse_double(next(), "--eps");
    } else if (arg == "--max-iters") {
      opt.max_iterations = parse_int(next(), "--max-iters");
    } else if (arg == "--relaxation") {
      opt.relaxation = parse_double(next(), "--relaxation");
    } else if (arg == "--quantize-bits") {
      opt.quantize_bits = parse_int(next(), "--quantize-bits");
    } else if (arg == "--faults") {
      fault_spec = next();
    } else if (arg == "--no-recovery") {
      no_recovery = true;
    } else if (arg == "--degrade") {
      degrade = true;
    } else if (arg == "--staleness-bound") {
      staleness_bound = parse_int(next(), "--staleness-bound");
      degrade = true;
    } else if (arg == "--watchdog") {
      opt.watchdog = true;
    } else if (arg == "--checkpoint-every") {
      checkpoint_every = parse_int(next(), "--checkpoint-every");
    } else if (arg == "--checkpoint") {
      checkpoint_file = next();
    } else if (arg == "--resume") {
      resume_file = next();
    } else if (arg == "--preflight") {
      preflight_mode = next();
    } else if (arg == "--strict") {
      preflight_mode = "strict";
    } else if (arg == "--preflight-only") {
      preflight_only = true;
    } else if (arg == "--scenarios") {
      scenario_file = next();
    } else if (arg == "--stream") {
      stream_file = next();
    } else if (arg == "--stream-record") {
      stream_record_file = next();
    } else if (arg == "--checkpoint-at-step") {
      checkpoint_at_step = parse_int(next(), "--checkpoint-at-step");
    } else if (arg == "--checkpoint-every-steps") {
      checkpoint_every_steps = parse_int(next(), "--checkpoint-every-steps");
    } else if (arg == "--deadline") {
      deadline_seconds = parse_double(next(), "--deadline");
    } else if (arg == "--io-faults") {
      io_fault_spec = next();
    } else if (arg == "--no-fsync") {
      no_fsync = true;
    } else if (arg == "--reset-on-switch") {
      reset_on_switch = true;
    } else if (arg == "--cold-compare") {
      cold_compare = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--report") {
      report = true;
    } else if (arg == "--residuals") {
      residual_file = next();
    } else if (arg == "--output") {
      output_file = next();
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "%s: unknown option %s\n", argv[0], arg.c_str());
      usage(argv[0]);
    } else {
      input = arg;
    }
  }
  if (input.empty()) {
    std::fprintf(stderr, "%s: missing feeder input\n", argv[0]);
    usage(argv[0]);
  }
  if (!fault_spec.empty() && backend != "multigpu") {
    std::fprintf(stderr, "%s: --faults requires --backend multigpu\n",
                 argv[0]);
    return 1;
  }
  if (degrade && backend != "multigpu") {
    std::fprintf(stderr,
                 "%s: --degrade/--staleness-bound require --backend multigpu\n",
                 argv[0]);
    return 1;
  }
  if (checkpoint_every > 0 && checkpoint_file.empty() &&
      backend != "multigpu") {
    // multigpu keeps an in-memory restart point; other backends need a file.
    std::fprintf(stderr, "%s: --checkpoint-every needs --checkpoint FILE\n",
                 argv[0]);
    return 1;
  }
  if (!scenario_file.empty()) {
    if (algorithm != "solver-free" ||
        (backend != "serial" && backend != "threaded")) {
      std::fprintf(stderr,
                   "%s: --scenarios requires --algorithm solver-free with "
                   "--backend serial or threaded\n",
                   argv[0]);
      return 1;
    }
    if (!resume_file.empty() || checkpoint_every > 0) {
      std::fprintf(stderr,
                   "%s: --scenarios is incompatible with checkpointing "
                   "options\n",
                   argv[0]);
      return 1;
    }
    if (!stream_file.empty()) {
      std::fprintf(stderr, "%s: --scenarios and --stream are exclusive\n",
                   argv[0]);
      return 1;
    }
  }
  if (!stream_file.empty()) {
    if (algorithm != "solver-free" ||
        (backend != "serial" && backend != "threaded")) {
      std::fprintf(stderr,
                   "%s: --stream requires --algorithm solver-free with "
                   "--backend serial or threaded\n",
                   argv[0]);
      return 1;
    }
    if (checkpoint_every > 0) {
      std::fprintf(stderr,
                   "%s: --stream uses --checkpoint-at-step, not "
                   "--checkpoint-every\n",
                   argv[0]);
      return 1;
    }
    if (checkpoint_at_step >= 0 && checkpoint_file.empty()) {
      std::fprintf(stderr,
                   "%s: --checkpoint-at-step needs --checkpoint FILE\n",
                   argv[0]);
      return 1;
    }
    if (checkpoint_every_steps > 0 && checkpoint_file.empty()) {
      std::fprintf(stderr,
                   "%s: --checkpoint-every-steps needs --checkpoint FILE\n",
                   argv[0]);
      return 1;
    }
  } else {
    if (checkpoint_at_step >= 0 || checkpoint_every_steps > 0 ||
        !stream_record_file.empty() || reset_on_switch) {
      std::fprintf(stderr,
                   "%s: --checkpoint-at-step/--checkpoint-every-steps/"
                   "--stream-record/--reset-on-switch require --stream FILE\n",
                   argv[0]);
      return 1;
    }
  }
  if (cold_compare && scenario_file.empty() && stream_file.empty()) {
    std::fprintf(stderr,
                 "%s: --cold-compare requires --scenarios or --stream\n",
                 argv[0]);
    return 1;
  }

  // Cooperative shutdown: a signal (or the deadline) flips the token; the
  // solver loops notice at their next termination check, checkpoint
  // durably, and exit with the pinned code 6 — never a torn file. The
  // handlers are installed via sigaction WITHOUT SA_RESTART so a signal
  // also interrupts blocked I/O (shared with dopf_serve).
  dopf::runtime::install_cancel_signal_handlers(&g_cancel);
  if (deadline_seconds > 0.0) g_cancel.set_deadline_after(deadline_seconds);
  opt.cancel = &g_cancel;

  dopf::runtime::FsFaultInjector io_faults;
  dopf::runtime::DurableOptions durable;
  durable.fsync = !no_fsync;

  try {
    if (!io_fault_spec.empty()) {
      io_faults = dopf::runtime::FsFaultInjector(
          dopf::runtime::FsFaultPlan::parse(io_fault_spec));
      durable.faults = &io_faults;
    }
    dopf::network::Network net;
    if (input.rfind("builtin:", 0) == 0) {
      net = dopf::runtime::make_instance(input.substr(8)).net;
    } else {
      net = dopf::feeders::load_feeder(input);
    }
    std::printf("%s\n", net.summary().c_str());
    const auto model = dopf::opf::build_model(net);
    std::printf("model: %zu equations, %zu variables\n",
                model.num_equations(), model.num_vars());

    // Preflight: sanitize + analyze conditioning before any solve work.
    // On acceptance the preflighted decomposition is reused below (under
    // warn/strict it is identical to a plain decompose, so traces stay
    // byte-for-byte); on rejection the report is the output and the exit
    // code is the pinned 5.
    dopf::opf::DistributedProblem preflighted;
    bool have_preflighted = false;
    bool preflight_equilibrated = false;
    if (preflight_only && preflight_mode == "off") preflight_mode = "warn";
    if (preflight_mode != "off") {
      dopf::robust::PreflightOptions popt;
      popt.policy = dopf::robust::parse_policy(preflight_mode);
      const dopf::robust::PreflightReport pre =
          dopf::robust::run_preflight(net, model, &preflighted, popt);
      std::printf("%s", pre.summary().c_str());
      if (!pre.accepted) return 5;
      have_preflighted = true;
      preflight_equilibrated = pre.equilibrated;
      opt.projector = pre.projector_options();
    }
    if (preflight_only) return 0;

    if (!stream_file.empty()) {
      // The stream driver builds its own base decomposition so checkpoint
      // fingerprints stay self-consistent; the preflighted projector
      // options and row-equilibration choice carry over through opt/dec.
      dopf::opf::DecomposeOptions dec;
      dec.equilibrate_rows = preflight_equilibrated;
      return run_stream(net, input, opt, stream_file, preflight_mode, dec,
                        backend, threads, cold_compare, reset_on_switch,
                        checkpoint_at_step, checkpoint_every_steps,
                        checkpoint_file, resume_file, stream_record_file,
                        durable, json);
    }

    if (!scenario_file.empty()) {
      auto problem = have_preflighted ? std::move(preflighted)
                                      : dopf::opf::decompose(net, model);
      std::printf("decomposition: %zu components\n",
                  problem.num_components());
      // Scenario re-decompositions must use the same profile as the base so
      // a load-only edit diffs as rhs-only against the bound model.
      dopf::opf::DecomposeOptions dec;
      dec.equilibrate_rows = preflight_equilibrated;
      return run_scenario_sweep(net, input, std::move(problem), opt,
                                scenario_file, preflight_mode, dec, backend,
                                threads, cold_compare, json);
    }

    std::vector<double> x;
    bool ok = false;
    int fail_code = 2;  // iteration/time limit; 3 = diverged, 4 = stalled
    std::vector<dopf::core::IterationRecord> history;

    if (algorithm == "reference") {
      const auto sol = dopf::solver::reference_solve(model);
      std::printf("reference IPM: %s, objective %.8f, %d iterations\n",
                  dopf::solver::to_string(sol.status), sol.objective,
                  sol.iterations);
      x = sol.x;
      ok = sol.status == dopf::solver::LpStatus::kOptimal;
    } else {
      const auto problem = have_preflighted
                               ? std::move(preflighted)
                               : dopf::opf::decompose(net, model);
      std::printf("decomposition: %zu components\n",
                  problem.num_components());
      if (backend != "serial" && algorithm != "solver-free") {
        std::fprintf(stderr, "--backend %s requires --algorithm solver-free\n",
                     backend.c_str());
        return 1;
      }
      std::string backend_label = backend;
      dopf::core::AdmmResult res;
      dopf::runtime::IoStats run_io;  // durable checkpoint traffic (--json)
      if (algorithm == "benchmark") {
        dopf::baseline::BenchmarkAdmm admm(problem, opt);
        res = admm.solve();
      } else if (algorithm == "solver-free" && backend == "multigpu") {
        dopf::simt::MultiGpuOptions mo;
        mo.gpu.admm = opt;
        mo.num_devices = static_cast<std::size_t>(std::max(1, devices));
        mo.faults = dopf::runtime::FaultPlan::parse(fault_spec);
        if (no_recovery) {
          mo.recovery.failover = false;
          mo.recovery.verify_messages = false;
        }
        mo.checkpoint_every = checkpoint_every;
        mo.checkpoint_path = checkpoint_file;
        mo.label = input;
        mo.degrade.enabled = degrade;
        if (staleness_bound >= 0) mo.degrade.staleness_bound = staleness_bound;
        backend_label = "multigpu(" + std::to_string(mo.num_devices) + ")";
        dopf::simt::MultiGpuSolverFreeAdmm admm(problem, mo);
        if (!resume_file.empty()) {
          admm.restore_state(dopf::runtime::load_checkpoint(resume_file));
          ++run_io.reads;
          std::printf("resumed from %s\n", resume_file.c_str());
        }
        res = admm.solve();
        if (admm.failovers() > 0 || admm.message_retries() > 0) {
          std::printf(
              "fault recovery: %d failover(s), %d message retr%s, %zu/%zu "
              "devices alive, %.2e simulated recovery seconds\n",
              admm.failovers(), admm.message_retries(),
              admm.message_retries() == 1 ? "y" : "ies", admm.alive_devices(),
              admm.num_devices(), admm.recovery_seconds());
        }
        if (admm.degraded_iterations() > 0) {
          std::printf(
              "degraded mode: %d degraded iteration(s), %d quarantine(s), "
              "%d readmission(s), %.2e simulated degrade seconds\n",
              admm.degraded_iterations(), admm.quarantines(),
              admm.readmissions(), admm.degrade_seconds());
        }
      } else if (algorithm == "solver-free" && backend == "simt") {
        dopf::simt::GpuAdmmOptions gpu_opt;
        gpu_opt.admm = opt;
        dopf::simt::GpuSolverFreeAdmm admm(problem, gpu_opt);
        res = admm.solve();
      } else if (algorithm == "solver-free") {
        dopf::core::SolverFreeAdmm admm(problem, opt);
        if (backend == "threaded") {
          auto tb = std::make_unique<dopf::runtime::ThreadedBackend>(threads);
          backend_label =
              "threaded(" + std::to_string(tb->threads()) + " threads)";
          admm.set_backend(std::move(tb));
        } else if (backend != "serial") {
          std::fprintf(stderr, "unknown backend '%s'\n", backend.c_str());
          return 1;
        }
        if (!resume_file.empty()) {
          const auto ck = dopf::runtime::load_checkpoint(resume_file, durable);
          ck.restore(&admm);
          ++run_io.reads;
          std::printf("resumed from %s (iteration %d)\n", resume_file.c_str(),
                      ck.iteration);
        }
        if (checkpoint_every > 0) {
          admm.set_checkpoint_hook(
              checkpoint_every,
              [&](const dopf::core::SolverFreeAdmm& solver, int iteration) {
                run_io += dopf::runtime::save_checkpoint(
                    dopf::runtime::AdmmCheckpoint::capture(solver, iteration,
                                                           input),
                    checkpoint_file, durable);
              });
        }
        res = admm.solve();
        if (res.status == dopf::core::AdmmStatus::kCancelled &&
            !checkpoint_file.empty()) {
          // Graceful shutdown contract: the last complete iterate goes out
          // durably before the pinned exit code 6.
          run_io += dopf::runtime::save_checkpoint(
              dopf::runtime::AdmmCheckpoint::capture(admm, res.iterations,
                                                     input),
              checkpoint_file, durable);
          std::printf("final durable checkpoint written to %s (iteration %d)\n",
                      checkpoint_file.c_str(), res.iterations);
        }
      } else {
        std::fprintf(stderr, "unknown algorithm '%s'\n", algorithm.c_str());
        return 1;
      }
      std::printf(
          "%s ADMM [backend: %s]: %s in %d iterations, objective %.8f\n"
          "residuals: primal %.3e dual %.3e; wall %.2fs "
          "(global %.2fs local %.2fs dual %.2fs, +%.2fs precompute)\n",
          algorithm.c_str(), backend_label.c_str(),
          dopf::core::to_string(res.status), res.iterations,
          res.objective, res.primal_residual, res.dual_residual,
          res.timing.total(), res.timing.global_update,
          res.timing.local_update, res.timing.dual_update,
          res.timing.precompute);
      if (opt.watchdog && res.watchdog.stalls > 0) {
        std::printf(
            "watchdog: %d stall(s)%s, %d rho nudge(s), %d restart(s) from "
            "best iterate\n",
            res.watchdog.stalls,
            res.watchdog.oscillation_detected ? " (oscillating)" : "",
            res.watchdog.rho_nudges, res.watchdog.restarts);
      }
      if (res.status == dopf::core::AdmmStatus::kDiverged) fail_code = 3;
      if (res.status == dopf::core::AdmmStatus::kStalled) fail_code = 4;
      if (res.status == dopf::core::AdmmStatus::kCancelled) {
        std::printf("cancelled (%s) after %d iteration(s)\n",
                    g_cancel.reason(), res.iterations);
        fail_code = 6;
      }
      if (json) print_result_json(res, algorithm, backend_label, run_io);
      x = res.x;
      ok = res.converged;
      history = res.history;
    }

    if (!residual_file.empty() && !history.empty()) {
      std::ofstream out(residual_file);
      out << "iteration,primal,dual,eps_primal,eps_dual,rho\n";
      for (const auto& r : history) {
        out << r.iteration << ',' << r.primal_residual << ','
            << r.dual_residual << ',' << r.eps_primal << ',' << r.eps_dual
            << ',' << r.rho << '\n';
      }
      std::printf("residual history written to %s\n", residual_file.c_str());
    }

    if (!output_file.empty() && !x.empty()) {
      std::ofstream out(output_file);
      out << "variable,value\n";
      for (std::size_t i = 0; i < x.size(); ++i) {
        out << model.vars.name(net, static_cast<int>(i)) << ',' << x[i]
            << '\n';
      }
      std::printf("solution written to %s\n", output_file.c_str());
    }
    if (report && !x.empty()) {
      const dopf::opf::SolutionView view(net, model, x);
      std::printf("\n%s", view.report().c_str());
    }
    return ok ? 0 : fail_code;
  } catch (const dopf::runtime::SimulatedCrash& e) {
    // The crash failpoint models an abrupt process death after the temp
    // file is durable but before the rename: no cleanup, no final output,
    // just the pinned durability-failure code.
    std::fprintf(stderr, "%s\n", e.what());
    return 7;
  } catch (const dopf::runtime::IoError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 7;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
