// dopf_client — driver for the dopf_serve solve server.
//
// Usage:
//   dopf_client --socket PATH [options]
//
//   --ping                liveness probe (pong round-trip), then exit
//   --feeder F            single request: "builtin:NAME" or a feeder path
//   --override "L"        scenario override line (repeatable, composed in
//                         order; runtime/scenario.hpp grammar)
//   --requests FILE       batch mode: one request per line,
//                         "feeder|ovr1;ovr2|deadline_ms|resume" ('#'
//                         comments; trailing fields optional)
//   --repeat N            submit each request N times (distinct ids,
//                         identical content — exercises coalescing)
//   --concurrency C       client lanes, one connection each (default 1)
//   --id N                base request id (default 1)
//   --deadline-ms N       per-request deadline, armed at server admission
//   --resume              ask the server to resume from its drain
//                         checkpoint of this exact request
//   --rho R --eps E --max-iters N --check-every N
//                         solver options (dopf_solve defaults)
//   --preflight MODE      off | warn | auto | strict (default warn)
//   --retries N           retry budget for transport faults / shedding
//   --backoff-ms N        jittered exponential backoff base (default 20)
//   --timeout-ms N        response wait per attempt (default 120000)
//   --seed S              jitter seed (deterministic storms)
//
// Output: one line per request, in request-id order:
//   response id=... status=... iterations=... objective=0x1.…p+… ...
//   reject id=... code=... msg=...
// Response lines are byte-identical for identical requests — the property
// tools/serve_fault_check.sh asserts under injected transport faults.
//
// Exit codes (worst across requests): 0 all converged; 1 usage; 2 a
// response did not converge; 4 bad-request/internal reject; 5 preflight
// reject; 6 deadline/drained/shutting-down reject; 7 shed-by-overload
// retry budget exhausted; 8 connect/transport retry budget exhausted;
// 9 quarantined (the request's content crashed solve workers twice —
// retrying before the quarantine TTL expires returns the same reject).

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/admm.hpp"
#include "serve/client.hpp"
#include "verify/codec.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --socket PATH (--ping | --feeder F [--override L]... |\n"
      "  --requests FILE) [--repeat N] [--concurrency C] [--id N]\n"
      "  [--deadline-ms N] [--resume] [--rho R] [--eps E] [--max-iters N]\n"
      "  [--check-every N] [--preflight MODE] [--retries N]\n"
      "  [--backoff-ms N] [--timeout-ms N] [--seed S]\n",
      argv0);
  std::exit(1);
}

long parse_long(const char* arg, const char* what, const char* argv0) {
  char* end = nullptr;
  const long v = std::strtol(arg, &end, 10);
  if (end == arg || *end != '\0') {
    std::fprintf(stderr, "%s: bad integer value '%s' for %s\n", argv0, arg,
                 what);
    usage(argv0);
  }
  return v;
}

double parse_double(const char* arg, const char* what, const char* argv0) {
  char* end = nullptr;
  const double v = std::strtod(arg, &end);
  if (end == arg || *end != '\0') {
    std::fprintf(stderr, "%s: bad numeric value '%s' for %s\n", argv0, arg,
                 what);
    usage(argv0);
  }
  return v;
}

/// Parse one --requests line: "feeder|ovr1;ovr2|deadline_ms|resume".
/// Empty trailing fields are optional; ';' in the scenario field becomes a
/// newline (the wire scenario format).
dopf::serve::SolveRequest parse_request_line(
    const dopf::serve::SolveRequest& defaults, const std::string& line,
    int line_no) {
  std::vector<std::string> fields;
  std::string cur;
  for (char c : line) {
    if (c == '|') {
      fields.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  fields.push_back(cur);
  dopf::serve::SolveRequest req = defaults;
  if (fields.empty() || fields[0].empty()) {
    throw std::runtime_error("requests file line " + std::to_string(line_no) +
                             ": empty feeder field");
  }
  req.feeder = fields[0];
  if (fields.size() > 1) {
    std::string sc = fields[1];
    std::replace(sc.begin(), sc.end(), ';', '\n');
    req.scenario = sc;
  }
  if (fields.size() > 2 && !fields[2].empty()) {
    req.deadline_ms = static_cast<std::uint32_t>(
        std::strtoul(fields[2].c_str(), nullptr, 10));
  }
  if (fields.size() > 3 && !fields[3].empty()) {
    req.resume = fields[3] == "1" || fields[3] == "true";
  }
  if (fields.size() > 4) {
    throw std::runtime_error("requests file line " + std::to_string(line_no) +
                             ": too many '|' fields");
  }
  return req;
}

std::string format_outcome(const dopf::serve::Outcome& out) {
  char buf[512];
  if (out.kind == dopf::serve::Outcome::Kind::kResponse) {
    const auto& r = out.response;
    std::snprintf(
        buf, sizeof(buf),
        "response id=%" PRIu64
        " status=%s converged=%d iterations=%u objective=%s primal=%s "
        "dual=%s model_fp=%016" PRIx64 " scenario_fp=%016" PRIx64,
        r.request_id,
        dopf::core::to_string(static_cast<dopf::core::AdmmStatus>(r.status)),
        r.converged ? 1 : 0, r.iterations,
        dopf::verify::hex_double(r.objective).c_str(),
        dopf::verify::hex_double(r.primal_residual).c_str(),
        dopf::verify::hex_double(r.dual_residual).c_str(), r.model_fp,
        r.scenario_fp);
  } else {
    const auto& rej = out.reject;
    std::snprintf(buf, sizeof(buf), "reject id=%" PRIu64 " code=%s msg=%s",
                  rej.request_id, dopf::serve::to_string(rej.code),
                  rej.message.c_str());
  }
  return buf;
}

int outcome_exit_code(const dopf::serve::Outcome& out) {
  using dopf::serve::RejectCode;
  if (out.kind == dopf::serve::Outcome::Kind::kResponse) {
    return out.response.converged ? 0 : 2;
  }
  switch (out.reject.code) {
    case RejectCode::kPreflight: return 5;
    case RejectCode::kDeadline:
    case RejectCode::kDrained:
    case RejectCode::kShuttingDown: return 6;
    case RejectCode::kQuarantined: return 9;
    default: return 4;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path, requests_file;
  dopf::serve::SolveRequest base;
  std::vector<std::string> overrides;
  dopf::serve::ClientOptions copts;
  bool ping = false;
  int repeat = 1, concurrency = 1;
  std::uint64_t base_id = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", argv[0], arg.c_str());
        usage(argv[0]);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      socket_path = next();
    } else if (arg == "--ping") {
      ping = true;
    } else if (arg == "--feeder") {
      base.feeder = next();
    } else if (arg == "--override") {
      overrides.push_back(next());
    } else if (arg == "--requests") {
      requests_file = next();
    } else if (arg == "--repeat") {
      repeat = static_cast<int>(parse_long(next(), "--repeat", argv[0]));
    } else if (arg == "--concurrency") {
      concurrency =
          static_cast<int>(parse_long(next(), "--concurrency", argv[0]));
    } else if (arg == "--id") {
      base_id = static_cast<std::uint64_t>(parse_long(next(), "--id", argv[0]));
    } else if (arg == "--deadline-ms") {
      base.deadline_ms = static_cast<std::uint32_t>(
          parse_long(next(), "--deadline-ms", argv[0]));
    } else if (arg == "--resume") {
      base.resume = true;
    } else if (arg == "--rho") {
      base.rho = parse_double(next(), "--rho", argv[0]);
    } else if (arg == "--eps") {
      base.eps_rel = parse_double(next(), "--eps", argv[0]);
    } else if (arg == "--max-iters") {
      base.max_iterations = static_cast<std::uint32_t>(
          parse_long(next(), "--max-iters", argv[0]));
    } else if (arg == "--check-every") {
      base.check_every = static_cast<std::uint32_t>(
          parse_long(next(), "--check-every", argv[0]));
    } else if (arg == "--preflight") {
      base.preflight = next();
    } else if (arg == "--retries") {
      copts.retries = static_cast<int>(parse_long(next(), "--retries", argv[0]));
    } else if (arg == "--backoff-ms") {
      copts.backoff_base_ms =
          static_cast<int>(parse_long(next(), "--backoff-ms", argv[0]));
    } else if (arg == "--timeout-ms") {
      copts.response_timeout_ms =
          static_cast<int>(parse_long(next(), "--timeout-ms", argv[0]));
    } else if (arg == "--seed") {
      copts.seed = static_cast<std::uint64_t>(
          parse_long(next(), "--seed", argv[0]));
    } else {
      std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0], arg.c_str());
      usage(argv[0]);
    }
  }
  if (socket_path.empty()) {
    std::fprintf(stderr, "%s: --socket PATH is required\n", argv[0]);
    usage(argv[0]);
  }
  copts.socket_path = socket_path;
  if (repeat < 1 || concurrency < 1) {
    std::fprintf(stderr, "%s: --repeat/--concurrency must be >= 1\n", argv[0]);
    return 1;
  }

  if (ping) {
    dopf::serve::Client client(copts);
    if (client.ping(base_id)) {
      std::printf("pong id=%" PRIu64 "\n", base_id);
      return 0;
    }
    std::fprintf(stderr, "%s: no pong from %s\n", argv[0],
                 socket_path.c_str());
    return 8;
  }

  // Assemble the request list.
  std::vector<dopf::serve::SolveRequest> jobs;
  try {
    if (!requests_file.empty()) {
      std::ifstream in(requests_file);
      if (!in) {
        std::fprintf(stderr, "%s: cannot open %s\n", argv[0],
                     requests_file.c_str());
        return 1;
      }
      std::string line;
      int line_no = 0;
      while (std::getline(in, line)) {
        ++line_no;
        std::string trimmed = line;
        trimmed.erase(0, trimmed.find_first_not_of(" \t"));
        if (trimmed.empty() || trimmed[0] == '#') continue;
        jobs.push_back(parse_request_line(base, trimmed, line_no));
      }
    } else if (!base.feeder.empty()) {
      dopf::serve::SolveRequest req = base;
      std::string sc;
      for (const auto& ovr : overrides) {
        sc += ovr;
        sc += '\n';
      }
      req.scenario = sc;
      jobs.push_back(req);
    } else {
      std::fprintf(stderr, "%s: need --ping, --feeder or --requests\n",
                   argv[0]);
      usage(argv[0]);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 1;
  }

  // Expand repeats and assign ids.
  std::vector<dopf::serve::SolveRequest> expanded;
  for (int r = 0; r < repeat; ++r) {
    for (const auto& j : jobs) expanded.push_back(j);
  }
  for (std::size_t i = 0; i < expanded.size(); ++i) {
    expanded[i].request_id = base_id + i;
  }

  std::vector<std::string> lines(expanded.size());
  std::vector<int> codes(expanded.size(), 0);

  const int lanes =
      std::min<int>(concurrency, static_cast<int>(expanded.size()));
  auto run_lane = [&](int lane) {
    dopf::serve::ClientOptions lane_opts = copts;
    lane_opts.seed = copts.seed + static_cast<std::uint64_t>(lane);
    dopf::serve::Client client(lane_opts);
    for (std::size_t i = static_cast<std::size_t>(lane); i < expanded.size();
         i += static_cast<std::size_t>(lanes)) {
      try {
        const auto out = client.submit(expanded[i]);
        lines[i] = format_outcome(out);
        codes[i] = outcome_exit_code(out);
        if (out.attempts > 1) {
          std::fprintf(stderr, "request %" PRIu64 ": %d attempt(s)\n",
                       expanded[i].request_id, out.attempts);
        }
      } catch (const dopf::serve::ClientError& e) {
        lines[i] = "error id=" + std::to_string(expanded[i].request_id) +
                   " msg=" + e.what();
        codes[i] =
            e.kind() == dopf::serve::ClientError::Kind::kOverloaded ? 7 : 8;
      }
    }
  };

  if (lanes <= 1) {
    run_lane(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(lanes));
    for (int lane = 0; lane < lanes; ++lane) {
      threads.emplace_back(run_lane, lane);
    }
    for (auto& th : threads) th.join();
  }

  int code = 0;
  for (std::size_t i = 0; i < expanded.size(); ++i) {
    std::printf("%s\n", lines[i].c_str());
    code = std::max(code, codes[i]);
  }
  return code;
}
