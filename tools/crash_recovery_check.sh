#!/bin/sh
# Crash-recovery property harness: a streaming day under seeded filesystem
# failpoints must either complete with byte-identical replay records, or
# fail with the pinned durable-I/O exit code (7) and resume from the last
# durable A/B checkpoint generation such that the resumed tail records are
# a byte-identical suffix of the uninterrupted reference day.
#
# Failure shapes exercised (tools/dopf_solve --io-faults grammar):
#   - transient ENOSPC        retried+priced, run completes, records intact
#   - simulated process crash temp file left, target never torn, resume ok
#   - persistent short write  retry budget exhausted -> exit 7, resume ok
#   - persistent rename fail  exit 7, resume ok
#   - corrupt read on resume  newest slot rejected by CRC, generation
#                             fallback taken, tail still byte-identical
#
# Usage: crash_recovery_check.sh <dopf_solve> <scratch-dir> \
#          [feeder] [steps] [switch-line] [eps]
# Defaults run a fast ieee13 day (tier1 smoke); the tier2 gate passes
# builtin:ieee123 with a full 288-step day (tools/CMakeLists.txt).
set -eu

SOLVE="$1"
DIR="$2"
FEEDER="${3:-builtin:ieee13}"
STEPS="${4:-24}"
SWITCH="${5:-632-645}"
EPS="${6:-1e-4}"

work=$(mktemp -d "$DIR/crash_recovery.XXXXXX")
trap 'rm -rf "$work"' EXIT INT TERM

profile="$work/day.profile"
{
  echo "profile crashday"
  echo "steps $STEPS"
  echo "dt 300"
  awk -v steps="$STEPS" -v sw="$SWITCH" 'BEGIN {
    third = int(steps / 3)
    for (k = 0; k < steps; k += 2) {
      # A morning ramp, midday peak, and evening descent, plus one
      # switching event at each day-third boundary.
      scale = 0.92 + 0.12 * (k % 8) / 8.0
      printf "step %d\n  load constant scale %.4f\n", k, scale
      if (k == third)     printf "  switch %s impedance-scale 1.5\n", sw
      if (k == 2 * third) printf "  switch %s impedance-scale 1.5\n", sw
    }
  }'
} > "$profile"

failures=0
fail() {
  echo "FAIL: $1" >&2
  failures=$((failures + 1))
}

# Reference: the uninterrupted day, no durability in play.
"$SOLVE" --stream "$profile" --eps "$EPS" \
  --stream-record "$work/ref.rec" "$FEEDER" > "$work/ref.out" 2>&1 || {
  cat "$work/ref.out" >&2
  echo "FAIL: reference day did not complete" >&2
  exit 1
}
grep '^step ' "$work/ref.rec" > "$work/ref.steps"
echo "crash recovery: reference day done ($(wc -l < "$work/ref.steps") steps)"

# The resumed tail must be a byte-identical suffix of the reference steps.
expect_tail_suffix() {
  rec="$1"; label="$2"
  grep '^step ' "$rec" > "$work/tail.steps"
  n=$(wc -l < "$work/tail.steps")
  if [ "$n" -lt 1 ] || [ "$n" -ge "$STEPS" ]; then
    fail "$label: resumed tail has $n steps (expected a proper suffix)"
    return
  fi
  if tail -n "$n" "$work/ref.steps" | cmp -s - "$work/tail.steps"; then
    echo "crash recovery: $label tail of $n steps byte-identical"
  else
    fail "$label: resumed tail records differ from the reference suffix"
  fi
}

# Run a day expected to die with the durable-I/O exit code, then resume.
die_and_resume() {
  label="$1"; faults="$2"; resume_faults="${3:-}"
  ckpt="$work/$label.ckpt"
  set +e
  "$SOLVE" --stream "$profile" --eps "$EPS" --checkpoint "$ckpt" \
    --checkpoint-every-steps 2 --io-faults "$faults" "$FEEDER" \
    > "$work/$label.out" 2>&1
  got=$?
  set -e
  if [ "$got" -ne 7 ]; then
    cat "$work/$label.out" >&2
    fail "$label: expected durable-I/O exit 7, got $got"
    return
  fi
  if [ ! -f "$ckpt.a" ] && [ ! -f "$ckpt.b" ]; then
    fail "$label: no durable A/B slot survived the failure"
    return
  fi
  resume_args=""
  [ -n "$resume_faults" ] && resume_args="--io-faults $resume_faults"
  # shellcheck disable=SC2086  # resume_args is an intentional word split
  "$SOLVE" --stream "$profile" --eps "$EPS" --resume "$ckpt" \
    --stream-record "$work/$label.rec" $resume_args "$FEEDER" \
    > "$work/$label.resume.out" 2>&1 || {
    cat "$work/$label.resume.out" >&2
    fail "$label: resume from the durable pair did not complete"
    return
  }
  expect_tail_suffix "$work/$label.rec" "$label"
}

# 1. Transient ENOSPC on two checkpoint writes: retried, priced, and the
#    replay records stay byte-for-byte those of the reference day.
"$SOLVE" --stream "$profile" --eps "$EPS" --checkpoint "$work/t.ckpt" \
  --checkpoint-every-steps 2 --io-faults "enospc:op=2,times=2,path=t.ckpt" \
  --stream-record "$work/t.rec" "$FEEDER" > "$work/t.out" 2>&1 || {
  cat "$work/t.out" >&2
  fail "transient ENOSPC day did not complete"
}
if [ -f "$work/t.rec" ]; then
  cmp -s "$work/ref.rec" "$work/t.rec" ||
    fail "transient faults perturbed the replay records"
  grep -q "retried attempt(s)" "$work/t.out" ||
    fail "retries were not reported in the durability summary"
  echo "crash recovery: transient ENOSPC retried, records intact"
fi

# 2. Simulated crash mid-write: the interrupted write's temp file survives,
#    no slot is torn, and the resume replays the rest of the day.
die_and_resume crash "crash:op=3,path=crash.ckpt"

# 3. Persistent short writes exhaust the retry budget.
die_and_resume short "short:op=2,times=99,bytes=32,path=short.ckpt"

# 4. Persistent rename failures exhaust the retry budget.
die_and_resume rename "rename:op=4,times=99,path=rename.ckpt"

# 5. Corrupt read on resume: crash a day, then resume with one slot's read
#    corrupted — the CRC rejects that slot and the store falls back to the
#    surviving generation; the resumed tail is still a byte-identical suffix.
die_and_resume fallback "crash:op=3,path=fallback.ckpt" \
  "corrupt-read:op=1,path=fallback.ckpt"
grep -q "resume fallback: fell back to generation" "$work/fallback.resume.out" ||
  fail "corrupt-read resume did not report the generation fallback"

if [ "$failures" -ne 0 ]; then
  echo "crash recovery: $failures case(s) FAILED" >&2
  exit 1
fi
echo "crash recovery: all seeded failpoint cases recovered"
