#!/bin/sh
# Serve fault property harness: replay the same request storm against
# dopf_serve under each transport fault kind and assert the client-visible
# outcome is INDISTINGUISHABLE from the fault-free run — every request ends
# as a response byte-identical to its fault-free solo solve, or as a typed
# rejection. Zero crashes, zero silent wrong answers. Also exercises:
#   - overload shedding: a storm against a 1-deep queue must shed with
#     typed kOverloaded rejections and still converge, via client retries,
#     to byte-identical responses
#   - graceful drain mid-storm: SIGTERM checkpoints the in-flight solve
#     durably (server exit 6, typed kDrained), and a resubmission with
#     resume completes byte-identically to an uninterrupted run
#
# Usage: serve_fault_check.sh <dopf_serve> <dopf_client> <scratch-dir>
set -eu

SERVE="$1"
CLIENT="$2"
DIR="$3"
work=$(mktemp -d "$DIR/serve_faults.XXXXXX")
SOCK="$work/s.sock"
SRV_PID=""

# TERM -> bounded wait -> KILL: a wedged server must not wedge CI cleanup.
cleanup() {
  if [ -n "$SRV_PID" ]; then
    kill -TERM "$SRV_PID" 2>/dev/null || true
    for _ in 1 2 3 4 5 6 7 8 9 10; do
      kill -0 "$SRV_PID" 2>/dev/null || break
      sleep 0.2
    done
    kill -KILL "$SRV_PID" 2>/dev/null || true
    wait "$SRV_PID" 2>/dev/null || true
  fi
  rm -rf "$work"
}
trap cleanup EXIT INT TERM

failures=0
fail() {
  echo "FAIL: $1" >&2
  failures=$((failures + 1))
}

# The storm: base case plus load/cost scenario variants of ieee13, twice
# each, so the model cache coalesces and every fault kind sees several
# response frames. Format: feeder|overrides|deadline_ms|resume.
cat > "$work/storm.req" <<'EOF'
builtin:ieee13||0|0
builtin:ieee13|load * scale 1.05|0|0
builtin:ieee13|gen * cost-scale 1.2|0|0
builtin:ieee13||0|0
builtin:ieee13|load * scale 1.05|0|0
builtin:ieee13|gen * cost-scale 1.2|0|0
EOF

start_server() {
  # $1 = extra server flags (unquoted word list)
  # shellcheck disable=SC2086
  "$SERVE" --socket "$SOCK" $1 --no-fsync > "$work/server.log" 2>&1 &
  SRV_PID=$!
  for _ in 1 2 3 4 5 6 7 8 9 10; do
    if "$CLIENT" --socket "$SOCK" --ping > /dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  cat "$work/server.log" >&2
  echo "FAIL: server never became ready" >&2
  exit 1
}

stop_server() {
  # $1 = expected exit code
  kill -TERM "$SRV_PID" 2>/dev/null || true
  rc=0
  wait "$SRV_PID" || rc=$?
  SRV_PID=""
  [ "$rc" = "$1" ] || { cat "$work/server.log" >&2; \
    fail "server exited $rc (want $1)"; }
}

run_storm() {
  # $1 = output file; client stdout is deterministic (one line per request
  # in id order, retries logged to stderr only), so whole-file compares.
  # The per-attempt response timeout is how long a DROPPED response frame
  # stalls the client before it retries, so keep it tight: these are
  # sub-second ieee13 solves, and 5 s covers a loaded CI machine.
  "$CLIENT" --socket "$SOCK" --requests "$work/storm.req" --eps 1e-2 \
    --timeout-ms 5000 > "$1" 2> "$1.err"
}

# ---- Fault-free baseline ---------------------------------------------------
start_server "--workers 2 --queue-depth 8"
run_storm "$work/baseline.out" || { cat "$work/baseline.out.err" >&2; \
  echo "FAIL: fault-free storm did not complete" >&2; exit 1; }
stop_server 0
[ "$(grep -c '^response ' "$work/baseline.out")" = 6 ] \
  || { echo "FAIL: baseline storm returned $(cat "$work/baseline.out")" >&2; \
       exit 1; }
echo "serve faults: fault-free baseline recorded (6 responses)"

# ---- Each fault kind, same storm, byte-compared outcome --------------------
# Each plan targets response frames by sent-frame ordinal (deterministic for
# a fixed schedule); times=2 makes the client retry more than once.
for spec in \
  "drop:op=1,times=2,frame=response" \
  "corrupt:op=2,times=2,frame=response" \
  "truncate:op=1,frame=response;truncate:op=4,frame=response" \
  "delay:op=2,ms=250,frame=response;drop:op=5,frame=response" \
; do
  kind=$(printf '%s' "$spec" | cut -d: -f1)
  start_server "--workers 2 --queue-depth 8 --serve-faults $spec"
  rc=0
  run_storm "$work/$kind.out" || rc=$?
  [ "$rc" = 0 ] || fail "$kind: storm exited $rc (want 0)"
  if cmp -s "$work/$kind.out" "$work/baseline.out"; then
    echo "serve faults: $kind storm byte-identical to fault-free baseline"
  else
    fail "$kind: responses differ from the fault-free baseline"
    diff "$work/baseline.out" "$work/$kind.out" >&2 || true
  fi
  stop_server 0
  grep -Eq 'faults\{.*(drop=[1-9]|corrupt=[1-9]|truncate=[1-9]|delay=[1-9])' \
    "$work/server.log" \
    || fail "$kind: fault plan never fired (stale schedule?)"
done

# ---- Overload shedding -----------------------------------------------------
# A 1-worker, 1-deep server under an 8-lane storm MUST shed (typed
# kOverloaded with a retry-after hint); client backoff must converge every
# lane to the same byte-identical response.
start_server "--workers 1 --queue-depth 1"
rc=0
"$CLIENT" --socket "$SOCK" --feeder builtin:ieee13 --eps 1e-2 \
  --repeat 8 --concurrency 8 --timeout-ms 60000 \
  > "$work/overload.out" 2> /dev/null || rc=$?
[ "$rc" = 0 ] || fail "overload storm exited $rc (want 0)"
[ "$(grep -c '^response ' "$work/overload.out")" = 8 ] \
  || fail "overload storm lost responses: $(cat "$work/overload.out")"
[ "$(sed 's/id=[0-9]*/id=N/' "$work/overload.out" | sort -u | wc -l)" = 1 ] \
  || fail "overload storm responses are not byte-identical"
stop_server 0
if grep -Eq 'rejected\{overload=[1-9]' "$work/server.log"; then
  echo "serve faults: overload storm shed and converged byte-identically"
else
  fail "overload storm never hit the bounded queue (no shed observed)"
fi

# ---- Drain mid-storm + durable resume --------------------------------------
# Uninterrupted reference for the long request (ieee123 at eps 1e-5 runs to
# the iteration limit, a deterministic multi-second endpoint).
start_server "--workers 1 --queue-depth 8"
rc=0
"$CLIENT" --socket "$SOCK" --feeder builtin:ieee123 --eps 1e-5 \
  --timeout-ms 300000 > "$work/long_ref.out" 2> /dev/null || rc=$?
[ "$rc" = 2 ] || fail "long reference exited $rc (want 2: iteration limit)"
stop_server 0

# Same request, SIGTERM mid-solve: typed kDrained + durable checkpoint.
mkdir -p "$work/ckpt"
start_server "--workers 1 --queue-depth 8 --checkpoint-dir $work/ckpt"
rc=0
"$CLIENT" --socket "$SOCK" --feeder builtin:ieee123 --eps 1e-5 \
  --timeout-ms 300000 > "$work/drained.out" 2> /dev/null &
CLI_PID=$!
sleep 1
kill -TERM "$SRV_PID"
wait "$SRV_PID" || rc=$?
SRV_PID=""
[ "$rc" = 6 ] || fail "drain-mid-solve server exited $rc (want 6)"
rc=0
wait "$CLI_PID" || rc=$?
[ "$rc" = 6 ] || fail "drained client exited $rc (want 6)"
grep -q '^reject id=1 code=drained ' "$work/drained.out" \
  || fail "expected a typed drained rejection: $(cat "$work/drained.out")"
ls "$work/ckpt"/req-*.ckpt.* > /dev/null 2>&1 \
  || fail "drain left no durable checkpoint behind"

# Restart + resume: the finished solve must be byte-identical to the
# uninterrupted reference (warm restore from the absolute iteration).
start_server "--workers 1 --queue-depth 8 --checkpoint-dir $work/ckpt"
rc=0
"$CLIENT" --socket "$SOCK" --feeder builtin:ieee123 --eps 1e-5 --resume \
  --timeout-ms 300000 > "$work/resumed.out" 2> /dev/null || rc=$?
[ "$rc" = 2 ] || fail "resumed solve exited $rc (want 2: iteration limit)"
stop_server 0
if cmp -s "$work/resumed.out" "$work/long_ref.out"; then
  echo "serve faults: drained solve resumed byte-identically"
else
  fail "resumed solve differs from the uninterrupted reference"
  diff "$work/long_ref.out" "$work/resumed.out" >&2 || true
fi

if [ "$failures" -gt 0 ]; then
  echo "serve faults: $failures failure(s)" >&2
  exit 1
fi
echo "serve faults: all checks passed"
