#!/usr/bin/env bash
# CI gate: run the verify suite three times — a plain Release pass, an
# ASan+UBSan pass (-DDOPF_SANITIZE=ON), and a ThreadSanitizer pass
# (-DDOPF_SANITIZE_THREAD=ON) scoped to the thread-dense serve/runtime
# suites. All must be green.
#
# Test tiers (see TESTING.md):
#   tier1 — fast deterministic tests; run in BOTH configurations. This
#           includes the fault-injection, checkpoint round-trip, and CLI
#           argument-audit suites (fault_test, checkpoint_test,
#           fault_recovery_test, cli_checkpoint_roundtrip, cli_* smoke
#           tests), so recovery paths are exercised under ASan/UBSan too.
#   tier2 — fuzz / differential / golden-trace suites (including the
#           verify_fault_* failover/corruption gates and the
#           verify_resume_* checkpoint-restart gates); Release only, so the
#           sanitizer pass stays fast and golden byte-for-byte comparisons
#           are never run under a differently-optimized build.
#
# Usage: tools/ci.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

run_pass() {
  local dir="$1"
  local ctest_extra="$2"
  shift 2
  echo "=== configure ${dir} ($*) ==="
  cmake -B "${dir}" -S . "$@"
  echo "=== build ${dir} ==="
  cmake --build "${dir}" -j "${JOBS}"
  echo "=== test ${dir} (ctest ${ctest_extra:-<all tiers>}) ==="
  # shellcheck disable=SC2086  # ctest_extra is a deliberate word list
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" ${ctest_extra}
}

# Release: the full suite, tier1 + tier2 (golden traces, fuzzing).
run_pass build "" -DCMAKE_BUILD_TYPE=Release -DDOPF_SANITIZE=OFF

# Preflight gate: every builtin feeder — including the deliberately
# stressed ieee13_overload — must clear input sanitation + conditioning
# analysis (exit 0 from --preflight-only) before it is allowed to anchor
# benchmarks or golden traces.
echo "=== preflight smoke (all builtin feeders) ==="
for feeder in ieee13 ieee123 ieee8500_mini ieee8500 ieee13_overload; do
  ./build/tools/dopf_solve "builtin:${feeder}" --preflight-only
done

# Session-reuse gate: a scenario sweep through one SolveSession must
# precompute the topology exactly once, rebind load/cost scenarios without
# refactorizing, and warm-start in fewer total iterations than cold.
echo "=== session-reuse smoke (ieee13 scenario sweep) ==="
sh tools/session_smoke.sh ./build/tools/dopf_solve ./build

# Streaming gate: a receding-horizon stream must warm-start every step
# after the first, refactorize exactly the switched components, and write
# replay records that are byte-identical across runs (the tier2
# verify_stream_replay entry additionally proves checkpoint-resume tails
# replay byte-for-byte on ieee123).
echo "=== streaming smoke (ieee13 stream replay) ==="
sh tools/stream_smoke.sh ./build/tools/dopf_solve ./build

# Crash-recovery gate: a streaming day under seeded filesystem failpoints
# must either complete with byte-identical replay records or exit with the
# pinned durable-I/O code and resume from the last durable A/B checkpoint
# generation (the tier2 verify_crash_recovery entry runs the full 288-step
# ieee123 day).
echo "=== crash-recovery smoke (ieee13 failpoint sweep) ==="
sh tools/crash_recovery_check.sh ./build/tools/dopf_solve ./build

# Solve-server gate: a mixed request schedule through dopf_serve — ping,
# coalesced byte-identical solves, typed preflight/deadline/bad-request
# rejections, clean SIGTERM drain (the tier2 verify_serve_faults entry
# additionally replays storms under injected transport faults and proves
# drain-mid-solve resumes byte-identically from the durable checkpoint).
echo "=== serve smoke (mixed requests + graceful drain) ==="
sh tools/serve_smoke.sh ./build/tools/dopf_serve ./build/tools/dopf_client \
  ./build
# Sanitizers: tier1 only.
run_pass build-asan "-LE tier2" -DCMAKE_BUILD_TYPE=RelWithDebInfo -DDOPF_SANITIZE=ON

# ThreadSanitizer lane: the serve stack is the most thread-dense code in
# the tree (connection readers, dispatcher threads, supervisor drain
# signaling, the MPSC ring), so it gets a dedicated TSan pass over the
# serve-side suites plus the shared-runtime concurrency tests. Scoped by
# the `threads` label (set in tests/CMakeLists.txt and on the cli_serve_*
# script tests) so the lane stays minutes, not hours; -R by suite name
# would silently match nothing, since gtest_discover_tests registers
# per-case names without the binary prefix.
run_pass build-tsan \
  "-L threads" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DDOPF_SANITIZE_THREAD=ON

echo "=== ci.sh: all passes green ==="
