#!/usr/bin/env bash
# CI gate: run the tier-1 verify twice — a plain Release pass and an
# ASan+UBSan pass (-DDOPF_SANITIZE=ON). Both must be green.
#
# Usage: tools/ci.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

run_pass() {
  local dir="$1"
  shift
  echo "=== configure ${dir} ($*) ==="
  cmake -B "${dir}" -S . "$@"
  echo "=== build ${dir} ==="
  cmake --build "${dir}" -j "${JOBS}"
  echo "=== test ${dir} ==="
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}"
}

run_pass build -DCMAKE_BUILD_TYPE=Release -DDOPF_SANITIZE=OFF
run_pass build-asan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DDOPF_SANITIZE=ON

echo "=== ci.sh: both passes green ==="
